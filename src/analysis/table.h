// Fixed-width ASCII table printer shared by the benches.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace speedscale::analysis {

/// Builds a table row by row; prints with aligned columns and a rule under
/// the header.  Cells are strings; use cell(double) for consistent numbers.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  void print(std::ostream& os) const;

  /// Formats a double with `digits` significant digits.
  [[nodiscard]] static std::string cell(double value, int digits = 5);
  [[nodiscard]] static std::string cell(long value);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace speedscale::analysis
