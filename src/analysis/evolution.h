// Evolving-instance analysis: machine-checking the differential steps of
// the paper's Section 3 proofs, not just their end results.
//
// The paper's inductive framework studies the family of instances I(T),
// where job weights are what Algorithm NC has processed by time T.  Its
// key differential identities (uniform density):
//
//   Eqn (4):  d E^C(I(T)) / dT   = W^C(r_j^-) + Wbreve_j(T)
//             (the clairvoyant energy grows at the power level NC runs at)
//   Eqn (5):  d F^NC / dT        = (T - r_j) * dWbreve_j/dT
//   Lemma 4:  d E^C / dT         = (1 - 1/alpha) * d F^NC / dT
//   Lemma 8:  d F^NC_int / dT   <= (2 - 1/alpha) * d F^NC / dT
//
// This module builds I(T) snapshots along an NC run, evaluates both sides
// of each identity by finite differences of *exact* runs, and reports the
// worst deviation.  Tests drive it with tight tolerances; the E3 bench
// prints the curves.
#pragma once

#include <vector>

#include "src/core/instance.h"

namespace speedscale::analysis {

/// One finite-difference probe of the evolution identities at time T.
struct EvolutionProbe {
  double T = 0.0;            ///< snapshot time (mid-processing of some job)
  JobId job = kNoJob;        ///< the job NC is processing at T
  double nc_power = 0.0;     ///< W^C(r_j^-) + Wbreve_j(T): NC's power level
  double dEc_dT = 0.0;       ///< finite-difference d E^C(I(T)) / dT
  double dFnc_dT = 0.0;      ///< finite-difference d F^NC / dT
  double dFint_dT = 0.0;     ///< finite-difference d F^NC_int / dT
};

struct EvolutionReport {
  std::vector<EvolutionProbe> probes;
  double worst_eqn4_error = 0.0;    ///< max |dEc_dT - nc_power| / scale
  double worst_lemma4_error = 0.0;  ///< max |dEc_dT - (1-1/a) dFnc_dT| / scale
  double worst_lemma8_excess = 0.0; ///< max (dFint - (2-1/a) dFnc) / scale, <= 0 if Lemma 8 holds
};

/// Probes the identities at `n_probes` times spread across the NC run of a
/// uniform-density instance.  `h` is the finite-difference step in T,
/// relative to the run's makespan.
[[nodiscard]] EvolutionReport analyze_evolution(const Instance& instance, double alpha,
                                                int n_probes = 24, double h = 1e-5);

}  // namespace speedscale::analysis
