// Competitive-ratio harness: runs the algorithm suite on an instance and
// reports each algorithm's objectives against a reference (numerical OPT or
// the clairvoyant Algorithm C).
//
// Robustness: each algorithm runs under its own guard.  One algorithm
// tripping a typed diagnostic (unbracketed root, NaN, invariant breach)
// marks *its* outcome as failed — with the diagnostic preserved — and the
// rest of the suite still runs; ratios of failed outcomes read as 0.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "src/core/instance.h"
#include "src/core/metrics.h"
#include "src/robust/diagnostics.h"

namespace speedscale::analysis {

struct AlgoOutcome {
  std::string name;
  Metrics metrics;
  bool integral_only = false;  ///< reduction outputs have no fractional flow
  robust::RunStatus status = robust::RunStatus::kOk;
  std::string diagnostic;      ///< non-empty iff status != kOk

  // Per-event competitiveness certificates (src/obs/cert/), filled when
  // SuiteOptions::certify is set and the algorithm's event stream supports
  // the potential-function ledger (C and NC-uniform).
  bool certified = false;
  double cert_min_slack = 0.0;      ///< min fractional release slack
  double cert_min_slack_int = 0.0;  ///< min integral release slack
  std::size_t cert_records = 0;
  std::size_t cert_violations = 0;  ///< records with negative slack
  /// The full byte-stable certificate stream (certificates_jsonl) of this
  /// outcome's run; empty unless certified.  Kept so parallel sweeps can
  /// emit per-point certificate JSONL identical to a serial run's.
  std::string cert_jsonl;

  [[nodiscard]] bool ok() const { return status != robust::RunStatus::kFailed; }
};

struct SuiteOptions {
  bool include_opt = true;        ///< run the convex OPT solver
  bool include_nonuniform = true; ///< run NC-nonuniform even on uniform inputs
  double reduction_eps = 0.5;     ///< eps of the Lemma 15 reduction rows
  int opt_slots = 500;
  /// Capture the C and NC-uniform event streams and run the per-event
  /// certificate ledger over them (docs/observability.md).  Enables tracing
  /// for the duration of those runs.
  bool certify = false;
};

struct SuiteResult {
  std::vector<AlgoOutcome> outcomes;
  std::optional<double> opt_fractional;  ///< numerical lower-bound reference

  /// Ratio of an outcome's objective to opt (fractional); 0 if opt missing
  /// or the outcome failed.
  [[nodiscard]] double frac_ratio(const AlgoOutcome& o) const;
  [[nodiscard]] double int_ratio(const AlgoOutcome& o) const;

  /// True when every algorithm (and OPT, if requested) completed kOk.
  [[nodiscard]] bool all_ok() const;
};

/// Runs every applicable algorithm on the instance.  Uniform-density inputs
/// additionally get Algorithm NC (uniform) and the naive ablation.  A
/// failing algorithm yields a kFailed outcome instead of aborting the suite.
[[nodiscard]] SuiteResult run_suite(const Instance& instance, double alpha,
                                    const SuiteOptions& options = {});

/// Writes the current observability report (metrics registry snapshot plus
/// per-algorithm profiler breakdown) as one JSON object.  run_suite times
/// each algorithm under "suite.*" profile labels, so calling this after one
/// or more suites yields a ready-made wall-clock breakdown.
void write_suite_observability(std::ostream& os);

}  // namespace speedscale::analysis
