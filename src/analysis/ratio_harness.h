// Competitive-ratio harness: runs the algorithm suite on an instance and
// reports each algorithm's objectives against a reference (numerical OPT or
// the clairvoyant Algorithm C).
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "src/core/instance.h"
#include "src/core/metrics.h"

namespace speedscale::analysis {

struct AlgoOutcome {
  std::string name;
  Metrics metrics;
  bool integral_only = false;  ///< reduction outputs have no fractional flow
};

struct SuiteOptions {
  bool include_opt = true;        ///< run the convex OPT solver
  bool include_nonuniform = true; ///< run NC-nonuniform even on uniform inputs
  double reduction_eps = 0.5;     ///< eps of the Lemma 15 reduction rows
  int opt_slots = 500;
};

struct SuiteResult {
  std::vector<AlgoOutcome> outcomes;
  std::optional<double> opt_fractional;  ///< numerical lower-bound reference

  /// Ratio of an outcome's objective to opt (fractional); 0 if opt missing.
  [[nodiscard]] double frac_ratio(const AlgoOutcome& o) const;
  [[nodiscard]] double int_ratio(const AlgoOutcome& o) const;
};

/// Runs every applicable algorithm on the instance.  Uniform-density inputs
/// additionally get Algorithm NC (uniform) and the naive ablation.
[[nodiscard]] SuiteResult run_suite(const Instance& instance, double alpha,
                                    const SuiteOptions& options = {});

/// Writes the current observability report (metrics registry snapshot plus
/// per-algorithm profiler breakdown) as one JSON object.  run_suite times
/// each algorithm under "suite.*" profile labels, so calling this after one
/// or more suites yields a ready-made wall-clock breakdown.
void write_suite_observability(std::ostream& os);

}  // namespace speedscale::analysis
