#include "src/analysis/pinned_suite.h"

#include <chrono>
#include <cmath>
#include <cstdint>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_nonuniform.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/analysis/sweep.h"
#include "src/engine/job_source.h"
#include "src/engine/stream_engine.h"
#include "src/core/power.h"
#include "src/numerics/roots.h"
#include "src/obs/cert/potential_tracker.h"
#include "src/obs/fleet/cost_ledger.h"
#include "src/obs/fleet/fleet_trace.h"
#include "src/obs/history/cost_model.h"
#include "src/obs/history/history_store.h"
#include "src/obs/history/sentinel.h"
#include "src/obs/live/telemetry_hub.h"
#include "src/obs/perf/bench_ledger.h"
#include "src/obs/log/logger.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/robust/guarded_engine.h"
#include "src/sim/numeric_engine.h"
#include "src/workload/generators.h"

namespace speedscale::analysis {

namespace {

constexpr double kAlpha = kPinnedBenchAlpha;
constexpr int kEngineSubsteps = kPinnedBenchEngineSubsteps;

Instance make_uniform(int n, std::uint64_t seed, double rate = 2.0) {
  return workload::generate({.n_jobs = n, .arrival_rate = rate, .seed = seed});
}

NumericConfig engine_config() {
  NumericConfig cfg;
  cfg.substeps_per_interval = kEngineSubsteps;
  return cfg;
}

/// One sweep-suite workload: the full ratio-harness suite (with certificate
/// capture) over 8 pinned uniform instances, sharded across `jobs` inner
/// workers.  The /8x1 and /8x8 entries run the *same* points, so their
/// counter snapshots must be identical — the committed proof that the sweep
/// engine's parallelism is unobservable — while their wall times expose the
/// speedup (tracked in BENCH_PR5.json; wall is advisory in the gate).
void run_sweep_suite_bench(std::size_t jobs) {
  std::vector<analysis::SuitePoint> points;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    points.push_back({make_uniform(20, seed), kAlpha});
  }
  analysis::SuiteOptions suite;
  suite.include_nonuniform = false;
  suite.certify = true;
  suite.opt_slots = 200;
  analysis::SweepOptions sweep;
  sweep.jobs = jobs;
  (void)analysis::run_suite_sweep(points, suite, sweep);
}

/// The pinned suite.  Changing a seed, size, or config here invalidates the
/// committed baseline — regenerate BENCH_PR3.json in the same change.
std::vector<PinnedBench> build_pinned_suite() {
  return {
      {"sim.algorithm_c/1024",
       [] { (void)run_algorithm_c(make_uniform(1024, 1), kAlpha); }},
      {"sim.algorithm_c/4096",
       [] { (void)run_algorithm_c(make_uniform(4096, 1), kAlpha); }},
      {"sim.nc_uniform/1024", [] { (void)run_nc_uniform(make_uniform(1024, 1), kAlpha); }},
      {"sim.nc_nonuniform/8",
       [] {
         const Instance inst = workload::generate(
             {.n_jobs = 8, .density_mode = workload::DensityMode::kClasses, .seed = 2});
         (void)run_nc_nonuniform(inst, kAlpha);
       }},
      {"sim.preemption_burst/256",
       [] {
         // Bursty arrivals with mixed densities: later, denser jobs displace
         // the running one, so this pins the preemption counter.
         const Instance inst = workload::generate({.n_jobs = 256,
                                                   .arrival_rate = 4.0,
                                                   .density_mode = workload::DensityMode::kClasses,
                                                   .seed = 6});
         (void)run_algorithm_c(inst, kAlpha);
       }},
      {"engine.numeric_c/16",
       [] {
         const PowerLaw p(kAlpha);
         (void)run_generic_c(make_uniform(16, 3, 1.5), p, engine_config());
       }},
      {"engine.numeric_nc/12",
       [] {
         const PowerLaw p(kAlpha);
         (void)run_generic_nc_uniform(make_uniform(12, 4, 1.5), p, engine_config());
       }},
      {"robust.guarded_nc/8",
       [] {
         const PowerLaw p(kAlpha);
         robust::GuardedNumericOptions options;
         options.base.substeps_per_interval = 256;
         options.alpha = kAlpha;
         (void)robust::run_generic_nc_uniform_guarded(make_uniform(8, 5, 1.5), p, options);
       }},
      {"cert.nc_uniform/24",
       [] {
         // Certificate ledger over a captured NC run.  Single-job OPT mode:
         // closed-form, so obs.cert.records / obs.cert.opt_lb_updates are
         // deterministic work counters — the convex-solve mode would add
         // iteration counts that drift with solver tuning.  The capture is
         // thread-exclusive (ScopedThreadCapture): global ScopedTracing
         // would interleave sibling benches' events at --jobs > 1.
         obs::RingBufferSink ring(1 << 16);
         {
           obs::ScopedThreadCapture capture(&ring);
           (void)run_nc_uniform(make_uniform(24, 7), kAlpha);
         }
         obs::cert::CertOptions copts;
         copts.opt_lb = obs::cert::OptLbMode::kSingleJob;
         (void)obs::cert::certify_events(ring.events(), kAlpha, copts);
       }},
      {"numerics.roots/sweep",
       [] {
         // 48 bracketing root solves: pins brent/bisect iteration counts and
         // the geometric bracket-expansion tally.
         for (int k = 1; k <= 48; ++k) {
           const double target = static_cast<double>(k);
           (void)numerics::find_root_increasing(
               [target](double x) { return x * x * x - target; }, 0.0, 0.5, 1e-12);
         }
       }},
      {"live.nc_uniform_sampled/256",
       [] {
         // NC-uniform with the live telemetry sampler scraping the registry
         // at 1 ms (src/obs/live/).  The hub writes gauges only, so the
         // shard's counter delta must pin exactly the same work counters as
         // an unsampled run — the committed proof that live telemetry is
         // unobservable in the deterministic half of the ledger.
         obs::live::TelemetryOptions topts;
         topts.period = std::chrono::milliseconds(1);
         topts.publish_sweep_gauges = false;
         obs::live::TelemetryHub hub(topts);
         hub.start();
         (void)run_nc_uniform(make_uniform(256, 9), kAlpha);
         hub.stop();
       }},
      // The streaming engine (PR 10): pinned synthetic streams through
      // src/engine/.  The engine batches its engine.stream.* counters once
      // at end of run (jobs, arena high-water/slots, recorder tallies), so
      // backlog scale — the O(active) memory contract — and the ring-drop
      // accounting sit under the hard counter gate.  Kept in their own
      // ledger (BENCH_PR10.json) via run_bench_suite.py --filter/--exclude
      // engine.stream; the 10M-job run with the RSS plateau assertion lives
      // in bench/bench_engine_stream.cpp, merged into the same ledger.
      {"engine.stream/100k",
       [] {
         // The 10M-run mode at smoke scale: recording off, metrics online-only.
         engine::SyntheticJobSource::Params params;
         params.n_jobs = 100'000;
         params.seed = 21;
         engine::SyntheticJobSource source(params);
         engine::StreamOptions options;
         options.alpha = kAlpha;
         options.recorder.mode = engine::RecordMode::kOff;
         engine::StreamEngine eng(options);
         (void)eng.run(source);
       }},
      {"engine.stream_ring/20k",
       [] {
         // Ring recording over a deliberately undersized ring (drops pinned)
         // on two round-robin machines (the dispatch path pinned too).
         engine::SyntheticJobSource::Params params;
         params.n_jobs = 20'000;
         params.seed = 22;
         engine::SyntheticJobSource source(params);
         engine::StreamOptions options;
         options.alpha = kAlpha;
         options.machines = 2;
         options.recorder.mode = engine::RecordMode::kRing;
         options.recorder.ring_capacity = 1 << 10;
         engine::StreamEngine eng(options);
         (void)eng.run(source);
       }},
      // The fleet observability plane (PR 8): serialize/parse round-trips of
      // its three wire formats over fixed corpora, pinning the byte and
      // record tallies.  The formats are byte-diffability contracts (golden
      // fleet artifacts, merged logs), so a drift in encoded size is a drift
      // in the contract — the gate forces it to be a conscious change.  The
      // tallies are counted here in the bench body: the plane's library code
      // deliberately never touches the registry (log volume must not perturb
      // per-item counter deltas).
      {"obs.fleet_log/512",
       [] {
         std::int64_t bytes = 0;
         for (int i = 0; i < 512; ++i) {
           obs::log::LogRecord record;
           record.ts = static_cast<double>(i) / 1000.0;
           record.seq = static_cast<std::uint64_t>(i);
           record.level = (i % 3 == 0) ? obs::log::Level::kWarn : obs::log::Level::kInfo;
           record.component = (i % 2 == 0) ? "supervisor" : "sweep_worker";
           record.message = "pinned fleet log record";
           record.fields = {obs::log::kv("item", static_cast<std::int64_t>(i)),
                            obs::log::kv("path", "/tmp/shard_0.jsonl"),
                            obs::log::kv("ratio", 1.0 + static_cast<double>(i % 7))};
           record.tags = {"bench", i % 4, i % 2};
           const std::string line = obs::log::record_json(record);
           obs::log::LogRecord back;
           if (!obs::log::parse_record(line, back) || obs::log::record_json(back) != line) {
             throw ModelError("obs.fleet_log bench: record round-trip drifted");
           }
           bytes += static_cast<std::int64_t>(line.size());
         }
         OBS_COUNT("obs.fleet.log_records", 512);
         OBS_COUNT("obs.fleet.log_bytes", bytes);
       }},
      {"obs.fleet_trace/64",
       [] {
         // A synthetic chaos run: 4 shards, 2 incarnations each, 8 items per
         // shard with the crash landing mid-item — every renderer feature
         // (process tracks, slices, lost-item instants) on a fixed input.
         obs::fleet::FleetTraceInput input;
         input.run_id = "bench";
         double ts = 0.0;
         auto ev = [&ts, &input](std::size_t shard) {
           obs::fleet::FleetEvent e;
           e.run_id = "bench";
           e.ts = ts;
           ts += 0.001;
           e.shard = static_cast<long>(shard);
           return e;
         };
         for (std::size_t shard = 0; shard < 4; ++shard) {
           std::vector<obs::fleet::FleetEvent> events;
           for (long inc = 0; inc < 2; ++inc) {
             obs::fleet::FleetEvent start = ev(shard);
             start.kind = obs::fleet::FleetEventKind::kWorkerStart;
             start.incarnation = inc;
             events.push_back(start);
             for (std::int64_t item = inc * 4; item < inc * 4 + 4; ++item) {
               obs::fleet::FleetEvent begin = ev(shard);
               begin.kind = obs::fleet::FleetEventKind::kItemBegin;
               begin.incarnation = inc;
               begin.item = item;
               events.push_back(begin);
               if (inc == 0 && item == 3) break;  // the crash: begun, never ended
               obs::fleet::FleetEvent end = begin;
               end.kind = obs::fleet::FleetEventKind::kItemEnd;
               end.ts = ts;
               ts += 0.001;
               end.wall_ms = 1.5;
               events.push_back(end);
             }
           }
           input.worker_events.push_back(std::move(events));
           obs::fleet::FleetEvent spawn = ev(shard);
           spawn.kind = obs::fleet::FleetEventKind::kSpawn;
           spawn.incarnation = 0;
           spawn.detail = "pid 1";
           input.supervisor_events.push_back(spawn);
         }
         const std::string trace = obs::fleet::fleet_chrome_trace_json(input);
         if (trace != obs::fleet::fleet_chrome_trace_json(input)) {
           throw ModelError("obs.fleet_trace bench: trace serialization unstable");
         }
         OBS_COUNT("obs.fleet.trace_bytes", static_cast<std::int64_t>(trace.size()));
       }},
      {"obs.fleet_cost/256",
       [] {
         std::vector<obs::fleet::CostRow> rows;
         for (std::int64_t i = 0; i < 256; ++i) {
           obs::fleet::CostRow row;
           row.index = i;
           row.shard = i % 8;
           row.incarnation = (i % 16 == 0) ? 1 : 0;
           row.wall_ms = 0.5 + static_cast<double>(i % 11);
           row.work = {{"sim.segments", 10 + i % 5}, {"opt.cache.hits", i % 3}};
           rows.push_back(std::move(row));
         }
         const obs::fleet::FleetCostReport report =
             obs::fleet::build_cost_report(std::move(rows), "bench");
         const std::string doc = report.to_json();
         if (obs::fleet::parse_cost_report(doc).to_json() != doc) {
           throw ModelError("obs.fleet_cost bench: ledger round-trip drifted");
         }
         OBS_COUNT("obs.fleet.cost_bytes", static_cast<std::int64_t>(doc.size()));
         OBS_COUNT("obs.fleet.cost_table_bytes",
                   static_cast<std::int64_t>(report.table().size()));
       }},
      // The perf-history observatory (PR 9): a fixed synthetic trajectory —
      // four bench-ledger runs (one injected counter regression in the last
      // run) plus a cost-ledger run — pushed through the full stack: strict
      // round-trip must be byte-stable, the lenient loader must count a torn
      // line and a duplicate exactly, and the sentinel must flag exactly the
      // injected regression.  The byte/record/verdict tallies pin the
      // speedscale.history/1 wire format and the sentinel's policy.
      {"obs.history_store/48",
       [] {
         obs::history::HistoryStore store;
         for (int run = 0; run < 4; ++run) {
           obs::perf::BenchLedger ledger("pinned-history");
           ledger.set_config("git_hash", "deadbeefcafe");
           ledger.set_config("mode", "pinned");
           for (int b = 0; b < 6; ++b) {
             auto& e = ledger.entry("pinned.series/" + std::to_string(b));
             e.repetitions = 2;
             e.wall_ns = {1000.0 + 10.0 * (run % 3) + b, 990.0 + b};
             e.counters["sim.steps"] = 100 + b * 10 + (run == 3 && b == 5 ? 7 : 0);
             e.counters["opt.iters"] = 40 + b;
           }
           store.ingest_bench_ledger(ledger.to_json());
         }
         std::vector<obs::fleet::CostRow> rows;
         for (std::int64_t i = 0; i < 24; ++i) {
           obs::fleet::CostRow row;
           row.index = i;
           row.shard = i % 3;
           row.incarnation = 0;
           row.wall_ms = 1.0 + static_cast<double>(i % 7);
           row.work = {{"sim.segments", 5 + i % 4}};
           rows.push_back(std::move(row));
         }
         store.ingest_cost_report(
             obs::fleet::build_cost_report(std::move(rows), "pinned").to_json());

         const std::string doc = store.to_jsonl();
         const obs::history::HistoryStore reparsed =
             obs::history::HistoryStore::parse(doc, obs::history::LoadMode::kStrict);
         if (reparsed.to_jsonl() != doc) {
           throw ModelError("obs.history_store bench: round-trip drifted");
         }
         // Lenient load over a corpus with one torn line and one duplicate.
         obs::history::LoadStats stats;
         const std::string corrupted =
             doc + "{\"torn\n" + store.records()[4].to_json() + "\n";
         const obs::history::HistoryStore lenient = obs::history::HistoryStore::parse(
             corrupted, obs::history::LoadMode::kLenient, &stats);
         if (stats.skipped_lines != 1 || stats.duplicates != 1 ||
             lenient.to_jsonl() != doc) {
           throw ModelError("obs.history_store bench: lenient load drifted");
         }
         const obs::history::SentinelReport report = obs::history::analyze(store);
         if (report.n_regression != 1 ||
             report.overall() != obs::history::Verdict::kRegression) {
           throw ModelError("obs.history_store bench: sentinel missed the regression");
         }
         OBS_COUNT("obs.history.records", static_cast<std::int64_t>(store.records().size()));
         OBS_COUNT("obs.history.bytes", static_cast<std::int64_t>(doc.size()));
         OBS_COUNT("obs.history.sentinel_ok", static_cast<std::int64_t>(report.n_ok));
         OBS_COUNT("obs.history.sentinel_advisory",
                   static_cast<std::int64_t>(report.n_advisory));
         OBS_COUNT("obs.history.sentinel_regression",
                   static_cast<std::int64_t>(report.n_regression));
       }},
      // The cost-model shard planner (PR 9): a fixed skewed cost vector
      // through deterministic LPT.  The moved-item and makespan tallies pin
      // the plan — any change to the balancing policy must arrive with a
      // baseline refresh, exactly like a wire-format drift.
      {"supervisor.plan_balance/256",
       [] {
         std::vector<double> costs(256);
         for (std::size_t i = 0; i < costs.size(); ++i) {
           costs[i] = 1.0 + static_cast<double>(i % 17) + (i % 5 == 0 ? 9.0 : 0.0);
         }
         const obs::history::ShardPlan plan = obs::history::plan_assignment(costs, 8);
         const obs::history::ShardPlan again = obs::history::plan_assignment(costs, 8);
         if (plan.assignment != again.assignment) {
           throw ModelError("supervisor.plan_balance bench: plan not deterministic");
         }
         if (plan.makespan > plan.static_makespan) {
           throw ModelError("supervisor.plan_balance bench: LPT worse than static");
         }
         OBS_COUNT("supervisor.plan.items", static_cast<std::int64_t>(plan.assignment.size()));
         OBS_COUNT("supervisor.plan.moved_items", static_cast<std::int64_t>(plan.moved_items));
         OBS_COUNT("supervisor.plan.makespan_milli",
                   static_cast<std::int64_t>(std::llround(plan.makespan * 1000.0)));
         OBS_COUNT("supervisor.plan.static_makespan_milli",
                   static_cast<std::int64_t>(std::llround(plan.static_makespan * 1000.0)));
       }},
      // The sweep-engine determinism pair: same 8-point suite grid at inner
      // jobs 1 and 8.  Identical counters (incl. opt.cache.hits/misses from
      // the per-point memoized OPT solves), different wall — the committed
      // speedup evidence.  Heavier than the rest; run_bench_suite.py keeps
      // them in their own ledger (--exclude / --filter analysis.sweep_suite).
      {"analysis.sweep_suite/8x1", [] { run_sweep_suite_bench(1); }},
      {"analysis.sweep_suite/8x8", [] { run_sweep_suite_bench(8); }},
  };
}

}  // namespace

const std::vector<PinnedBench>& pinned_bench_suite() {
  static const std::vector<PinnedBench> suite = build_pinned_suite();
  return suite;
}

const PinnedBench* find_pinned_bench(const std::string& name) {
  for (const PinnedBench& b : pinned_bench_suite()) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

}  // namespace speedscale::analysis
