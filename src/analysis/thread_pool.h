// A small fixed-size thread pool with a parallel_for helper.
//
// Benches sweep (alpha x seed x size) grids of independent simulations; the
// pool gives near-linear speedup on those embarrassingly-parallel sweeps
// while keeping per-task code single-threaded and deterministic.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace speedscale::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace speedscale::obs

namespace speedscale::analysis {

class ThreadPool {
 public:
  /// n_threads = 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Tasks must not throw (wrap and capture if needed).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;

  // Metric handles resolved once at construction; recording stays gated on
  // obs::metrics_enabled() so an idle observability layer costs nothing here.
  obs::Counter& tasks_metric_;
  obs::Gauge& queue_depth_metric_;
  obs::Histogram& latency_metric_;
};

/// Runs body(i) for i in [0, n) across the pool; blocks until all complete.
/// `body` must be thread-safe across distinct indices and must not throw.
void parallel_for(ThreadPool& pool, std::size_t n, const std::function<void(std::size_t)>& body);

}  // namespace speedscale::analysis
