// A small fixed-size thread pool with a parallel_for helper.
//
// Benches sweep (alpha x seed x size) grids of independent simulations; the
// pool gives near-linear speedup on those embarrassingly-parallel sweeps
// while keeping per-task code single-threaded and deterministic.
//
// Failure contract: tasks MAY throw.  A worker catches the exception, counts
// it ("analysis.thread_pool.task_failures"), and stores the first one; the
// next wait_idle() rethrows it on the caller's thread after the queue
// drains.  Exceptions can never reach a worker's stack frame boundary, so
// pool teardown with failing in-flight tasks cannot std::terminate.  An
// error still pending at destruction cannot be rethrown (destructors must
// not throw), but it is not silent either: the destructor reports it on
// stderr and bumps "analysis.thread_pool.dropped_errors", which — like the
// lifetime failure counters — survives the pool itself.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace speedscale::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace speedscale::obs

namespace speedscale::analysis {

class ThreadPool {
 public:
  /// n_threads = 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Throwing tasks are captured, not fatal (see the
  /// failure contract above).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.  If any task threw
  /// since the last wait_idle(), rethrows the *first* captured exception
  /// (later ones are only counted); the pool stays usable afterwards.
  void wait_idle();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Tasks that threw since construction (all of them, not just the first).
  [[nodiscard]] std::size_t failed_tasks() const;

 private:
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  mutable std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;    // first uncollected task failure
  std::size_t failed_tasks_ = 0;      // lifetime count

  // Metric handles resolved once at construction; recording stays gated on
  // obs::metrics_enabled() so an idle observability layer costs nothing here.
  obs::Counter& tasks_metric_;
  obs::Counter& failures_metric_;
  obs::Counter& dropped_errors_metric_;
  obs::Gauge& queue_depth_metric_;
  obs::Histogram& latency_metric_;
};

/// Runs body(i) for i in [0, n) across the pool; blocks until all complete.
/// `body` must be thread-safe across distinct indices.  If any index throws,
/// the first exception is rethrown here after the sweep drains.
void parallel_for(ThreadPool& pool, std::size_t n, const std::function<void(std::size_t)>& body);

}  // namespace speedscale::analysis
