// Empirical worst-case search: how tight are the paper's bounds?
//
// The online problem is a game (paper, Section 1.2): the adversary commits
// to volumes/releases and the algorithm must be competitive at every
// stopping point.  This module searches instance space for the adversary:
//
//  * single-job stopping game: the adversary stops the job at the volume V
//    maximizing algo(V) / opt(V).  For Algorithm NC the ratio is constant in
//    V (scale invariance), so this is exact; for guess-based policies the
//    stopping point matters and the search exposes it.
//
//  * multi-job coordinate ascent: within the family "n uniform-density jobs
//    with free release gaps and volumes", hill-climb the ratio
//    NC / numerical-OPT by multiplicative perturbations.  The result is a
//    certified *lower bound* on the competitive ratio (any instance is),
//    printed by bench_adversarial_ratio next to the Theorem 5 upper bound.
//
// Robustness: these searches can run for hours, so they degrade instead of
// dying — a wall-clock budget stops the ascent with the best-known instance
// (RunStatus::kDegraded + kBudgetExhausted diagnostic); a JSONL checkpoint
// (robust/checkpoint.h) is appended after every round so a killed process
// resumes from its best-known state and replays the uninterrupted
// trajectory exactly; an evaluation that throws (unbracketed root, NaN) is
// counted and treated as non-improving rather than aborting the search.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/core/instance.h"
#include "src/obs/cert/potential_tracker.h"
#include "src/robust/diagnostics.h"

namespace speedscale::analysis {

/// A policy evaluated by the single-job game: returns the fractional
/// objective the policy pays on a single job of volume v (unit density).
using SingleJobCost = std::function<double(double v)>;

struct SingleJobGameResult {
  double worst_ratio = 0.0;
  double worst_volume = 0.0;
};

/// Sweeps stopping volumes over a log grid and returns the worst
/// cost(V) / opt(V).  `v_lo`/`v_hi` bound the adversary's choices.
[[nodiscard]] SingleJobGameResult single_job_game(const SingleJobCost& cost, double alpha,
                                                  double v_lo = 1e-3, double v_hi = 1e3,
                                                  int grid = 241);

struct WorstCaseResult {
  Instance instance;        ///< the worst instance found
  double ratio = 0.0;       ///< NC fractional objective / numerical OPT
  int evaluations = 0;      ///< successful ratio evaluations (all restarts)
  int failed_evaluations = 0;  ///< probes that raised a typed diagnostic
  int rounds_completed = 0;    ///< of the winning restart
  int restarts_run = 1;
  robust::RunStatus status = robust::RunStatus::kOk;
  std::vector<robust::Diagnostic> diagnostics;  ///< budget/eval-failure trail
  /// The K tightest certificates (smallest fractional release slack) from
  /// re-running NC on the worst instance under the potential-function ledger
  /// (src/obs/cert/), sorted tightest first.  Empty unless
  /// WorstCaseOptions::report_tightest > 0 — or when the certification
  /// re-run itself failed (recorded as a diagnostic, never fatal).
  std::vector<obs::cert::CertRecord> tightest_certificates;
};

struct WorstCaseOptions {
  int n_jobs = 3;
  int rounds = 12;          ///< coordinate-ascent sweeps
  int opt_slots = 400;      ///< discretization of the OPT reference
  std::uint64_t seed = 1;   ///< seed of the random restart
  /// Wall-clock budget in seconds; exceeding it returns the best-so-far
  /// result as kDegraded with a kBudgetExhausted diagnostic.  Default: none.
  double wall_clock_budget_s = kInf;
  /// When non-empty, a JSONL checkpoint line is appended after every round
  /// and (with `resume`) the search restarts from the last valid line.
  std::string checkpoint_path;
  bool resume = true;
  /// When > 0, re-run NC on the winning instance under the certificate
  /// ledger and report this many tightest (lowest release slack) records.
  int report_tightest = 0;
  /// Independent seeded restarts (seeds seed, seed+1, ...).  The result is
  /// the best ratio across restarts (ties break to the lowest restart
  /// index), with evaluation counts summed over all of them; per-restart
  /// checkpoints get a ".r<i>" path suffix.  1 = the classic single search.
  int restarts = 1;
  /// Worker threads for the restart sweep (0 = hardware concurrency).  The
  /// result and the merged work counters are identical for any value — the
  /// restarts are sharded through the sweep scheduler (src/analysis/sweep.h).
  std::size_t jobs = 1;
};

/// Coordinate-ascent search for instances maximizing the ratio of Algorithm
/// NC (uniform density, fractional objective) to the numerical OPT.
[[nodiscard]] WorstCaseResult find_worst_nc_instance(double alpha,
                                                     const WorstCaseOptions& options = {});

}  // namespace speedscale::analysis
