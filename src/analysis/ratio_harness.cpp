#include "src/analysis/ratio_harness.h"

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_nonuniform.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/baselines.h"
#include "src/algo/frac_to_int.h"
#include "src/opt/convex_opt.h"

namespace speedscale::analysis {

double SuiteResult::frac_ratio(const AlgoOutcome& o) const {
  if (!opt_fractional || *opt_fractional <= 0.0 || o.integral_only) return 0.0;
  return o.metrics.fractional_objective() / *opt_fractional;
}

double SuiteResult::int_ratio(const AlgoOutcome& o) const {
  // fractional OPT <= integral OPT, so this over-states the true integral
  // competitive ratio — a safe upper bound for checking theorem bounds.
  if (!opt_fractional || *opt_fractional <= 0.0) return 0.0;
  return o.metrics.integral_objective() / *opt_fractional;
}

SuiteResult run_suite(const Instance& instance, double alpha, const SuiteOptions& options) {
  SuiteResult out;

  const RunResult c = run_c(instance, alpha);
  out.outcomes.push_back({"C (clairvoyant)", c.metrics, false});

  const bool uniform = instance.uniform_density();
  if (uniform) {
    const RunResult nc = run_nc_uniform(instance, alpha);
    out.outcomes.push_back({"NC (uniform)", nc.metrics, false});

    const IntReductionRun red = reduce_frac_to_int(instance, nc.schedule, options.reduction_eps);
    Metrics red_m;
    red_m.energy = red.energy;
    red_m.integral_flow = red.integral_flow;
    out.outcomes.push_back({"NC + reduction (int)", red_m, true});

    const RunResult naive = run_naive_nc(instance, alpha);
    out.outcomes.push_back({"NaiveNC (ablation)", naive.metrics, false});
  }

  if (options.include_nonuniform) {
    const NCNonUniformRun ncn = run_nc_nonuniform(instance, alpha);
    out.outcomes.push_back({"NC (non-uniform)", ncn.result.metrics, false});
  }

  const SharedRun ps = run_active_count(instance, alpha);
  out.outcomes.push_back({"ActiveCount PS", ps.metrics, false});

  if (options.include_opt) {
    ConvexOptParams p;
    p.slots = options.opt_slots;
    const ConvexOptResult opt = solve_fractional_opt(instance, alpha, p);
    out.opt_fractional = opt.objective;
  }
  return out;
}

}  // namespace speedscale::analysis
