#include "src/analysis/ratio_harness.h"

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_nonuniform.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/baselines.h"
#include "src/algo/frac_to_int.h"
#include "src/obs/profiler.h"
#include "src/obs/report.h"
#include "src/obs/trace.h"
#include "src/opt/convex_opt.h"

namespace speedscale::analysis {

double SuiteResult::frac_ratio(const AlgoOutcome& o) const {
  if (!opt_fractional || *opt_fractional <= 0.0 || o.integral_only) return 0.0;
  return o.metrics.fractional_objective() / *opt_fractional;
}

double SuiteResult::int_ratio(const AlgoOutcome& o) const {
  // fractional OPT <= integral OPT, so this over-states the true integral
  // competitive ratio — a safe upper bound for checking theorem bounds.
  if (!opt_fractional || *opt_fractional <= 0.0) return 0.0;
  return o.metrics.integral_objective() / *opt_fractional;
}

SuiteResult run_suite(const Instance& instance, double alpha, const SuiteOptions& options) {
  SuiteResult out;
  TRACE_EVENT(.kind = obs::EventKind::kPhaseBoundary, .t = 0.0,
              .value = static_cast<double>(instance.size()), .aux = alpha,
              .label = "suite.begin");

  {
    OBS_TIMED_SCOPE("suite.c");
    const RunResult c = run_c(instance, alpha);
    out.outcomes.push_back({"C (clairvoyant)", c.metrics, false});
  }

  const bool uniform = instance.uniform_density();
  if (uniform) {
    Schedule nc_schedule(alpha);
    {
      OBS_TIMED_SCOPE("suite.nc_uniform");
      RunResult nc = run_nc_uniform(instance, alpha);
      out.outcomes.push_back({"NC (uniform)", nc.metrics, false});
      nc_schedule = std::move(nc.schedule);
    }
    {
      OBS_TIMED_SCOPE("suite.reduction");
      const IntReductionRun red = reduce_frac_to_int(instance, nc_schedule, options.reduction_eps);
      Metrics red_m;
      red_m.energy = red.energy;
      red_m.integral_flow = red.integral_flow;
      out.outcomes.push_back({"NC + reduction (int)", red_m, true});
    }
    {
      OBS_TIMED_SCOPE("suite.naive");
      const RunResult naive = run_naive_nc(instance, alpha);
      out.outcomes.push_back({"NaiveNC (ablation)", naive.metrics, false});
    }
  }

  if (options.include_nonuniform) {
    OBS_TIMED_SCOPE("suite.nc_nonuniform");
    const NCNonUniformRun ncn = run_nc_nonuniform(instance, alpha);
    out.outcomes.push_back({"NC (non-uniform)", ncn.result.metrics, false});
  }

  {
    OBS_TIMED_SCOPE("suite.active_count_ps");
    const SharedRun ps = run_active_count(instance, alpha);
    out.outcomes.push_back({"ActiveCount PS", ps.metrics, false});
  }

  if (options.include_opt) {
    OBS_TIMED_SCOPE("suite.opt");
    ConvexOptParams p;
    p.slots = options.opt_slots;
    const ConvexOptResult opt = solve_fractional_opt(instance, alpha, p);
    out.opt_fractional = opt.objective;
  }
  TRACE_EVENT(.kind = obs::EventKind::kPhaseBoundary, .t = 0.0,
              .value = static_cast<double>(out.outcomes.size()),
              .aux = out.opt_fractional.value_or(0.0), .label = "suite.end");
  return out;
}

void write_suite_observability(std::ostream& os) { obs::write_observability_report(os); }

}  // namespace speedscale::analysis
