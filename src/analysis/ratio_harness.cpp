#include "src/analysis/ratio_harness.h"

#include <functional>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_nonuniform.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/baselines.h"
#include "src/algo/frac_to_int.h"
#include "src/obs/cert/potential_tracker.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/profiler.h"
#include "src/obs/report.h"
#include "src/obs/trace.h"
#include "src/opt/convex_opt.h"

namespace speedscale::analysis {

double SuiteResult::frac_ratio(const AlgoOutcome& o) const {
  if (!opt_fractional || *opt_fractional <= 0.0 || o.integral_only || !o.ok()) return 0.0;
  return o.metrics.fractional_objective() / *opt_fractional;
}

double SuiteResult::int_ratio(const AlgoOutcome& o) const {
  // fractional OPT <= integral OPT, so this over-states the true integral
  // competitive ratio — a safe upper bound for checking theorem bounds.
  if (!opt_fractional || *opt_fractional <= 0.0 || !o.ok()) return 0.0;
  return o.metrics.integral_objective() / *opt_fractional;
}

bool SuiteResult::all_ok() const {
  for (const AlgoOutcome& o : outcomes) {
    if (o.status != robust::RunStatus::kOk) return false;
  }
  return true;
}

namespace {

/// Runs one algorithm under guard: a typed (or any) exception becomes a
/// kFailed outcome carrying the diagnostic, and the suite moves on.
void guarded_outcome(SuiteResult& out, const char* name, bool integral_only,
                     const std::function<Metrics()>& body) {
  AlgoOutcome o;
  o.name = name;
  o.integral_only = integral_only;
  try {
    o.metrics = body();
  } catch (const robust::RobustError& e) {
    o.status = robust::RunStatus::kFailed;
    o.diagnostic = e.diagnostic().to_string();
  } catch (const std::exception& e) {
    o.status = robust::RunStatus::kFailed;
    o.diagnostic = robust::Diagnostic{robust::ErrorCode::kNoConvergence, e.what()}.to_string();
  }
  if (o.status == robust::RunStatus::kFailed) {
    OBS_COUNT("analysis.suite.algo_failures", 1);
    TRACE_EVENT(.kind = obs::EventKind::kPhaseBoundary, .t = 0.0,
                .value = static_cast<double>(out.outcomes.size()), .aux = 0.0,
                .label = "suite.algo_failed");
  }
  out.outcomes.push_back(std::move(o));
}

/// Certificate summary captured inside a guarded body, applied to the
/// outcome once guarded_outcome has pushed it (the outcome does not exist
/// while the body runs).
struct CertCapture {
  bool set = false;
  double min_slack = 0.0;
  double min_slack_int = 0.0;
  std::size_t records = 0;
  std::size_t violations = 0;
  std::string jsonl;

  /// Runs `body` with its event stream captured, then certifies the stream.
  /// The capture is thread-exclusive (ScopedThreadCapture), so concurrent
  /// suites on sweep workers never interleave events; certification happens
  /// outside the capture scope so the ledger's own virtual solves never
  /// pollute the recorded run.
  Metrics run(double alpha, const std::function<Metrics()>& body) {
    obs::RingBufferSink ring(1 << 18);
    Metrics m;
    {
      obs::ScopedThreadCapture capture(&ring);
      m = body();
    }
    const obs::cert::CertificateLedger ledger = obs::cert::certify_events(ring.events(), alpha);
    set = true;
    min_slack = ledger.min_slack_frac;
    min_slack_int = ledger.min_slack_int;
    records = ledger.records.size();
    violations = ledger.violations();
    jsonl = obs::cert::certificates_jsonl(ledger);
    return m;
  }

  void apply(AlgoOutcome& o) {
    if (!set) return;
    o.certified = true;
    o.cert_min_slack = min_slack;
    o.cert_min_slack_int = min_slack_int;
    o.cert_records = records;
    o.cert_violations = violations;
    o.cert_jsonl = std::move(jsonl);
  }
};

}  // namespace

SuiteResult run_suite(const Instance& instance, double alpha, const SuiteOptions& options) {
  SuiteResult out;
  TRACE_EVENT(.kind = obs::EventKind::kPhaseBoundary, .t = 0.0,
              .value = static_cast<double>(instance.size()), .aux = alpha,
              .label = "suite.begin");

  CertCapture c_cert;
  guarded_outcome(out, "C (clairvoyant)", false, [&] {
    OBS_TIMED_SCOPE("suite.c");
    const auto body = [&] { return run_c(instance, alpha).metrics; };
    return options.certify ? c_cert.run(alpha, body) : body();
  });
  c_cert.apply(out.outcomes.back());

  const bool uniform = instance.uniform_density();
  if (uniform) {
    Schedule nc_schedule(alpha);
    bool nc_ok = false;
    CertCapture nc_cert;
    guarded_outcome(out, "NC (uniform)", false, [&] {
      OBS_TIMED_SCOPE("suite.nc_uniform");
      const auto body = [&] {
        RunResult nc = run_nc_uniform(instance, alpha);
        nc_schedule = std::move(nc.schedule);
        nc_ok = true;
        return nc.metrics;
      };
      return options.certify ? nc_cert.run(alpha, body) : body();
    });
    nc_cert.apply(out.outcomes.back());
    if (nc_ok) {
      // The reduction replays NC's schedule; it only makes sense when NC ran.
      guarded_outcome(out, "NC + reduction (int)", true, [&] {
        OBS_TIMED_SCOPE("suite.reduction");
        const IntReductionRun red =
            reduce_frac_to_int(instance, nc_schedule, options.reduction_eps);
        Metrics red_m;
        red_m.energy = red.energy;
        red_m.integral_flow = red.integral_flow;
        return red_m;
      });
    }
    guarded_outcome(out, "NaiveNC (ablation)", false, [&] {
      OBS_TIMED_SCOPE("suite.naive");
      return run_naive_nc(instance, alpha).metrics;
    });
  }

  if (options.include_nonuniform) {
    guarded_outcome(out, "NC (non-uniform)", false, [&] {
      OBS_TIMED_SCOPE("suite.nc_nonuniform");
      return run_nc_nonuniform(instance, alpha).result.metrics;
    });
  }

  guarded_outcome(out, "ActiveCount PS", false, [&] {
    OBS_TIMED_SCOPE("suite.active_count_ps");
    return run_active_count(instance, alpha).metrics;
  });

  if (options.include_opt) {
    OBS_TIMED_SCOPE("suite.opt");
    try {
      ConvexOptParams p;
      p.slots = options.opt_slots;
      const ConvexOptResult opt = solve_fractional_opt(instance, alpha, p);
      out.opt_fractional = opt.objective;
    } catch (const std::exception&) {
      // No reference: ratios read 0, per-algorithm objectives still stand.
      OBS_COUNT("analysis.suite.opt_failures", 1);
      out.opt_fractional.reset();
    }
  }
  TRACE_EVENT(.kind = obs::EventKind::kPhaseBoundary, .t = 0.0,
              .value = static_cast<double>(out.outcomes.size()),
              .aux = out.opt_fractional.value_or(0.0), .label = "suite.end");
  return out;
}

void write_suite_observability(std::ostream& os) { obs::write_observability_report(os); }

}  // namespace speedscale::analysis
