// Minimal ASCII line chart so benches can show the *shape* of each figure
// (power curves, lower-bound growth, crossovers) directly in the terminal.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace speedscale::analysis {

struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
  char glyph = '*';
};

/// Renders all series into one `width` x `height` character grid with simple
/// linear axes and a legend.  Safe with empty input (prints a note).
void plot(std::ostream& os, const std::vector<Series>& series, int width = 72, int height = 18,
          const std::string& title = "");

/// One-line trend glyph run for a value series (perf_report trend tables):
/// each value maps onto the ASCII ramp "_.-=^#" scaled to the series' own
/// min/max.  Series longer than `width` keep their most recent `width`
/// values; a flat series renders as '-' marks; empty input gives "".
[[nodiscard]] std::string sparkline(const std::vector<double>& values, std::size_t width = 16);

}  // namespace speedscale::analysis
