// Parallel sharded sweep engine with deterministic reduction.
//
// Every experiment here is a grid of independent (instance, alpha) runs, and
// the grids were executed serially even though the pool exists.  The sweep
// scheduler shards items across a ThreadPool and makes the parallelism
// *unobservable* in every recorded artifact:
//
//   * results land in an index-addressed vector, so output order is the
//     submission order regardless of completion order;
//   * each item runs inside its own obs::ShardMetricsScope; after the sweep
//     drains, the per-item counter deltas are merged toward the caller in
//     index order (into the calling thread's own shard scope when one is
//     active — sweeps nest — else the global registry).  Totals are
//     therefore byte-identical for --jobs 1 and --jobs N, which keeps the
//     bench ledger's counter gate (scripts/bench_compare.py) meaningful at
//     any thread count;
//   * each item gets a private OptSolveCache (src/opt/opt_cache.h), so
//     convex OPT memoization hits depend only on the item's own solve
//     sequence, never on which sibling shard got scheduled first;
//   * --jobs 1 still routes through a one-worker pool, so pool counters
//     ("analysis.thread_pool.tasks") do not depend on the thread count
//     either.
//
// If any item throws, the first exception is rethrown on the caller after
// the sweep drains (ThreadPool's failure contract) and *no* deltas are
// merged — a failed sweep contributes nothing to the ledger.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/ratio_harness.h"
#include "src/core/instance.h"

namespace speedscale::analysis {

struct SweepOptions {
  /// Worker threads; 0 = hardware concurrency.  1 is the deterministic
  /// reference execution (still pooled — see above).
  std::size_t jobs = 1;
  /// Capacity of each item's private OPT solve cache; 0 disables caching.
  std::size_t opt_cache_capacity = 256;
};

/// Runs item(i) for i in [0, n) across a pool with per-shard metric capture
/// and the deterministic index-ordered reduction described above.  Returns
/// the per-item counter deltas (what each item added, by counter name).
class SweepScheduler {
 public:
  explicit SweepScheduler(const SweepOptions& options = {});

  std::vector<std::map<std::string, std::int64_t>> run(
      std::size_t n, const std::function<void(std::size_t)>& item);

 private:
  SweepOptions options_;
};

/// One grid point of a suite sweep.
struct SuitePoint {
  Instance instance;
  double alpha = 2.0;
};

/// Index-ordered results of run_suite over a point grid, with deterministic
/// serializations: equal inputs produce byte-identical strings at any --jobs.
struct SuiteSweepResult {
  struct PointInfo {
    double alpha = 2.0;
    std::size_t n_jobs = 0;
  };

  std::vector<SuiteResult> suites;     ///< suites[i] = run_suite(points[i])
  std::vector<PointInfo> info;         ///< per-point header data for JSON
  /// Per-point counter deltas and their index-ordered sum (what the sweep
  /// merged into the caller's scope / the registry).
  std::vector<std::map<std::string, std::int64_t>> point_counters;
  std::map<std::string, std::int64_t> merged_counters;

  /// One JSON object for the whole sweep (sorted structure, "%.17g"
  /// locale-independent numbers — see src/obs/json_util.h).
  [[nodiscard]] std::string suite_json() const;
  /// Concatenated certificate streams: a {"kind":"cert_stream",...} header
  /// line per certified outcome, then its certificates_jsonl records.
  [[nodiscard]] std::string cert_jsonl() const;
};

/// Runs the ratio-harness suite on every point, sharded per SweepOptions.
[[nodiscard]] SuiteSweepResult run_suite_sweep(const std::vector<SuitePoint>& points,
                                               const SuiteOptions& suite_options,
                                               const SweepOptions& sweep_options = {});

// --- Per-point serialization primitives ----------------------------------
//
// The multi-process fleet (src/robust/supervisor/) ships suite points to
// worker processes and merges their results back into one artifact that must
// be byte-identical to a serial run's.  That only works if the per-point
// fragments are produced by the *same* serialization code in both paths, so
// the pieces SuiteSweepResult::suite_json()/cert_jsonl() are assembled from
// are exposed here.

/// The `{"point":i,...}` object embedded in suite_json()'s "points" array.
[[nodiscard]] std::string suite_point_json(std::size_t index,
                                           const SuiteSweepResult::PointInfo& info,
                                           const SuiteResult& suite);

/// One point's slice of cert_jsonl(): a {"kind":"cert_stream",...} header
/// line per certified outcome followed by its certificate records.  Empty
/// when nothing in the point certified.
[[nodiscard]] std::string suite_point_cert_jsonl(std::size_t index, const SuiteResult& suite);

/// Assembles the whole-sweep JSON document from per-point fragments (in
/// index order) and the merged counter map — the inverse decomposition of
/// SuiteSweepResult::suite_json().
[[nodiscard]] std::string assemble_suite_sweep_json(
    const std::vector<std::string>& point_fragments,
    const std::map<std::string, std::int64_t>& merged_counters);

}  // namespace speedscale::analysis
