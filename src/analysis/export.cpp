#include "src/analysis/export.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>

namespace speedscale::analysis {

void export_speed_profile(std::ostream& os, const Schedule& schedule, int samples) {
  os << "t,speed,power\n";
  os << std::setprecision(12);
  const double T = schedule.makespan();
  for (int i = 0; i <= samples; ++i) {
    const double t = T * static_cast<double>(i) / static_cast<double>(samples);
    const double s = schedule.speed_at(t);
    os << t << ',' << s << ',' << std::pow(s, schedule.alpha()) << '\n';
  }
}

void export_speed_profile_file(const std::string& path, const Schedule& schedule, int samples) {
  std::ofstream f(path);
  if (!f) throw ModelError("export_speed_profile_file: cannot open " + path);
  export_speed_profile(f, schedule, samples);
}

void export_job_summary(std::ostream& os, const Instance& instance, const Schedule& schedule) {
  os << "job,release,volume,density,completion,flow_time\n";
  os << std::setprecision(12);
  for (const Job& j : instance.jobs()) {
    const double c = schedule.completion(j.id);
    os << j.id << ',' << j.release << ',' << j.volume << ',' << j.density << ',' << c << ','
       << (c - j.release) << '\n';
  }
}

}  // namespace speedscale::analysis
