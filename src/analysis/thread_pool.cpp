#include "src/analysis/thread_pool.h"

#include <algorithm>
#include <utility>

#include "src/obs/metrics_registry.h"
#include "src/robust/diagnostics.h"
#include "src/robust/fault_injection.h"

namespace speedscale::analysis {

namespace {
// Queue latency buckets, in microseconds: sub-µs dispatch through 1 s stalls.
const std::vector<double> kLatencyBoundsUs = {1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6};
}  // namespace

ThreadPool::ThreadPool(std::size_t n_threads)
    : tasks_metric_(obs::registry().counter("analysis.thread_pool.tasks")),
      failures_metric_(obs::registry().counter("analysis.thread_pool.task_failures")),
      queue_depth_metric_(obs::registry().gauge("analysis.thread_pool.queue_depth")),
      latency_metric_(
          obs::registry().histogram("analysis.thread_pool.task_latency_us", kLatencyBoundsUs)) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    // A pending first_error_ dies with the pool: destructors cannot throw,
    // and the workers have already counted it in failed_tasks_.
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const bool metered = obs::metrics_enabled();
  {
    std::lock_guard<std::mutex> lk(mu_);
    tasks_.push({std::move(task),
                 metered ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{}});
    ++in_flight_;
    if (metered) {
      tasks_metric_.add(1);
      queue_depth_metric_.set(static_cast<double>(tasks_.size()));
    }
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lk.unlock();
    std::rethrow_exception(err);
  }
}

std::size_t ThreadPool::failed_tasks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return failed_tasks_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      if (obs::metrics_enabled()) {
        queue_depth_metric_.set(static_cast<double>(tasks_.size()));
      }
    }
    if (obs::metrics_enabled() &&
        task.enqueued != std::chrono::steady_clock::time_point{}) {
      const auto waited = std::chrono::steady_clock::now() - task.enqueued;
      latency_metric_.observe(
          std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(waited).count());
    }
    std::exception_ptr err;
    try {
      if (robust::fault_fire(robust::FaultSite::kPoolTask)) {
        throw robust::RobustError(robust::ErrorCode::kTaskFailed,
                                  "thread_pool: injected task fault");
      }
      task.fn();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (err) {
        ++failed_tasks_;
        if (!first_error_) first_error_ = err;
        if (obs::metrics_enabled()) failures_metric_.add(1);
      }
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n, const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([i, &body] { body(i); });
  }
  pool.wait_idle();
}

}  // namespace speedscale::analysis
