#include "src/analysis/thread_pool.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/obs/metrics_registry.h"
#include "src/robust/diagnostics.h"
#include "src/robust/fault_injection.h"

namespace speedscale::analysis {

namespace {
// Queue latency buckets, in microseconds: sub-µs dispatch through 1 s stalls.
const std::vector<double> kLatencyBoundsUs = {1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6};
}  // namespace

ThreadPool::ThreadPool(std::size_t n_threads)
    : tasks_metric_(obs::registry().counter("analysis.thread_pool.tasks")),
      failures_metric_(obs::registry().counter("analysis.thread_pool.task_failures")),
      dropped_errors_metric_(obs::registry().counter("analysis.thread_pool.dropped_errors")),
      queue_depth_metric_(obs::registry().gauge("analysis.thread_pool.queue_depth")),
      latency_metric_(
          obs::registry().histogram("analysis.thread_pool.task_latency_us", kLatencyBoundsUs)) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
  // A first_error_ never collected by wait_idle() cannot be rethrown here
  // (destructors must not throw) — but it must not vanish silently: report
  // it on stderr and count it.  The counter add is deliberately ungated so
  // the drop is visible even with the hot-path metrics switched off.
  if (first_error_) {
    try {
      std::rethrow_exception(first_error_);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ThreadPool: dropping uncollected task failure at teardown: %s\n",
                   e.what());
    } catch (...) {
      std::fprintf(stderr,
                   "ThreadPool: dropping uncollected non-std task failure at teardown\n");
    }
    dropped_errors_metric_.add(1);
  }
}

void ThreadPool::submit(std::function<void()> task) {
  const bool metered = obs::metrics_enabled();
  {
    std::lock_guard<std::mutex> lk(mu_);
    tasks_.push({std::move(task),
                 metered ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{}});
    ++in_flight_;
    if (metered) {
      tasks_metric_.add(1);
      queue_depth_metric_.set(static_cast<double>(tasks_.size()));
    }
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  // in_flight_ counts queued AND running tasks, and a nested submit() bumps
  // it before the submitting task's own decrement — so in_flight_ == 0 does
  // imply the queue is empty.  The queue check makes that invariant explicit
  // rather than implicit: if the accounting is ever broken, wait_idle()
  // blocks (and the regression test fails) instead of returning with work
  // still queued.
  cv_idle_.wait(lk, [this] { return in_flight_ == 0 && tasks_.empty(); });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lk.unlock();
    std::rethrow_exception(err);
  }
}

std::size_t ThreadPool::failed_tasks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return failed_tasks_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      if (obs::metrics_enabled()) {
        queue_depth_metric_.set(static_cast<double>(tasks_.size()));
      }
    }
    if (obs::metrics_enabled() &&
        task.enqueued != std::chrono::steady_clock::time_point{}) {
      const auto waited = std::chrono::steady_clock::now() - task.enqueued;
      latency_metric_.observe(
          std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(waited).count());
    }
    std::exception_ptr err;
    try {
      if (robust::fault_fire(robust::FaultSite::kPoolTask)) {
        throw robust::RobustError(robust::ErrorCode::kTaskFailed,
                                  "thread_pool: injected task fault");
      }
      task.fn();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (err) {
        ++failed_tasks_;
        if (!first_error_) first_error_ = err;
        if (obs::metrics_enabled()) failures_metric_.add(1);
      }
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n, const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([i, &body] { body(i); });
  }
  pool.wait_idle();
}

}  // namespace speedscale::analysis
