#include "src/analysis/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace speedscale::analysis {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(width[c])) << std::left << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::cell(double value, int digits) {
  std::ostringstream ss;
  ss << std::setprecision(digits) << value;
  return ss.str();
}

std::string Table::cell(long value) { return std::to_string(value); }

}  // namespace speedscale::analysis
