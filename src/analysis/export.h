// CSV exporters for plotting schedules and runs with external tools.
#pragma once

#include <iosfwd>
#include <string>

#include "src/core/instance.h"
#include "src/core/schedule.h"

namespace speedscale::analysis {

/// Samples speed(t) (and power = speed^alpha) at `samples` uniform points
/// over [0, makespan] and writes "t,speed,power" rows.
void export_speed_profile(std::ostream& os, const Schedule& schedule, int samples = 512);
void export_speed_profile_file(const std::string& path, const Schedule& schedule,
                               int samples = 512);

/// Per-job summary: "job,release,volume,density,completion,flow_time".
void export_job_summary(std::ostream& os, const Instance& instance, const Schedule& schedule);

}  // namespace speedscale::analysis
