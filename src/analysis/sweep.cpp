#include "src/analysis/sweep.h"

#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "src/analysis/thread_pool.h"
#include "src/obs/json_util.h"
#include "src/obs/live/straggler.h"
#include "src/obs/shard_scope.h"
#include "src/opt/opt_cache.h"
#include "src/robust/fault_injection.h"

namespace speedscale::analysis {

namespace {

/// Claims the heartbeat plane for the outermost sweep (nested sweeps report
/// nothing) and releases it on every exit path — including the rethrow of a
/// failed item at wait_idle().
struct HeartbeatGuard {
  bool owner;
  HeartbeatGuard(std::size_t n, std::size_t workers)
      : owner(obs::live::SweepHeartbeats::instance().begin_sweep(n, workers)) {}
  ~HeartbeatGuard() {
    if (owner) obs::live::SweepHeartbeats::instance().end_sweep();
  }
  HeartbeatGuard(const HeartbeatGuard&) = delete;
  HeartbeatGuard& operator=(const HeartbeatGuard&) = delete;
};

}  // namespace

SweepScheduler::SweepScheduler(const SweepOptions& options) : options_(options) {}

std::vector<std::map<std::string, std::int64_t>> SweepScheduler::run(
    std::size_t n, const std::function<void(std::size_t)>& item) {
  std::vector<std::map<std::string, std::int64_t>> deltas(n);
  {
    ThreadPool pool(options_.jobs);
    // Live heartbeats for the scrape endpoint: wall-clock only, published as
    // gauges — no effect on any counter delta, so the determinism contract
    // below is unchanged.
    HeartbeatGuard heartbeats(n, pool.size());
    auto& hb = obs::live::SweepHeartbeats::instance();
    parallel_for(pool, n, [&](std::size_t i) {
      std::size_t slot = 0;
      if (heartbeats.owner) slot = hb.item_started(i);
      // Injected straggler (tests): stall this item long enough for the
      // detector to flag the shard.  Pure wall time, no counter effect.
      if (robust::fault_fire(robust::FaultSite::kSweepItemStall)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
      }
      // Shard isolation: counters divert into this item's private scope, and
      // OPT solves memoize in this item's private cache — so what the item
      // records depends only on the item, never on sibling scheduling.
      obs::ShardMetricsScope scope;
      std::optional<OptSolveCache> cache;
      std::optional<ScopedOptSolveCache> bind;
      if (options_.opt_cache_capacity > 0) {
        cache.emplace(options_.opt_cache_capacity);
        bind.emplace(&*cache);
      }
      item(i);
      bind.reset();
      scope.stop();
      deltas[i] = scope.counters();
      if (heartbeats.owner) hb.item_finished(slot);
    });
    // parallel_for rethrows the first item failure here, before any merge:
    // a failed sweep contributes nothing to the ledger.
  }
  // Deterministic reduction, on the caller's thread: index order, routed
  // through the caller's own shard scope when sweeps nest.
  for (const auto& delta : deltas) {
    for (const auto& [name, v] : delta) obs::shard_aware_add(name, v);
  }
  return deltas;
}

namespace {

void append_outcome_json(std::string& out, const SuiteResult& suite, const AlgoOutcome& o) {
  out += "{\"name\":";
  obs::append_json_string(out, o.name);
  out += ",\"status\":";
  obs::append_json_string(out, robust::run_status_name(o.status));
  out += ",\"energy\":";
  obs::append_json_number(out, o.metrics.energy);
  out += ",\"fractional_flow\":";
  obs::append_json_number(out, o.metrics.fractional_flow);
  out += ",\"integral_flow\":";
  obs::append_json_number(out, o.metrics.integral_flow);
  out += ",\"frac_ratio\":";
  obs::append_json_number(out, suite.frac_ratio(o));
  out += ",\"int_ratio\":";
  obs::append_json_number(out, suite.int_ratio(o));
  if (o.certified) {
    out += ",\"cert_records\":" + std::to_string(o.cert_records);
    out += ",\"cert_violations\":" + std::to_string(o.cert_violations);
    out += ",\"cert_min_slack\":";
    obs::append_json_number(out, o.cert_min_slack);
    out += ",\"cert_min_slack_int\":";
    obs::append_json_number(out, o.cert_min_slack_int);
  }
  if (!o.diagnostic.empty()) {
    out += ",\"diagnostic\":";
    obs::append_json_string(out, o.diagnostic);
  }
  out += '}';
}

}  // namespace

std::string suite_point_json(std::size_t index, const SuiteSweepResult::PointInfo& info,
                             const SuiteResult& suite) {
  std::string out = "{\"point\":" + std::to_string(index);
  out += ",\"alpha\":";
  obs::append_json_number(out, info.alpha);
  out += ",\"n_jobs\":" + std::to_string(info.n_jobs);
  out += ",\"opt_fractional\":";
  if (suite.opt_fractional) {
    obs::append_json_number(out, *suite.opt_fractional);
  } else {
    out += "null";
  }
  out += ",\"outcomes\":[";
  for (std::size_t k = 0; k < suite.outcomes.size(); ++k) {
    if (k > 0) out += ',';
    append_outcome_json(out, suite, suite.outcomes[k]);
  }
  out += "]}";
  return out;
}

std::string suite_point_cert_jsonl(std::size_t index, const SuiteResult& suite) {
  std::string out;
  for (const AlgoOutcome& o : suite.outcomes) {
    if (!o.certified) continue;
    out += "{\"kind\":\"cert_stream\",\"point\":" + std::to_string(index) + ",\"algo\":";
    obs::append_json_string(out, o.name);
    out += "}\n";
    out += o.cert_jsonl;
  }
  return out;
}

std::string assemble_suite_sweep_json(const std::vector<std::string>& point_fragments,
                                      const std::map<std::string, std::int64_t>& merged_counters) {
  std::string out = "{\"schema\":\"speedscale.suite_sweep/1\",\"points\":[";
  for (std::size_t i = 0; i < point_fragments.size(); ++i) {
    if (i > 0) out += ',';
    out += point_fragments[i];
  }
  out += "],\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : merged_counters) {
    if (!first) out += ',';
    first = false;
    obs::append_json_string(out, name);
    out += ':' + std::to_string(v);
  }
  out += "}}";
  return out;
}

std::string SuiteSweepResult::suite_json() const {
  std::vector<std::string> fragments;
  fragments.reserve(suites.size());
  for (std::size_t i = 0; i < suites.size(); ++i) {
    fragments.push_back(suite_point_json(i, info[i], suites[i]));
  }
  return assemble_suite_sweep_json(fragments, merged_counters);
}

std::string SuiteSweepResult::cert_jsonl() const {
  std::string out;
  for (std::size_t i = 0; i < suites.size(); ++i) {
    out += suite_point_cert_jsonl(i, suites[i]);
  }
  return out;
}

SuiteSweepResult run_suite_sweep(const std::vector<SuitePoint>& points,
                                 const SuiteOptions& suite_options,
                                 const SweepOptions& sweep_options) {
  SuiteSweepResult out;
  out.suites.resize(points.size());
  out.info.reserve(points.size());
  for (const SuitePoint& p : points) out.info.push_back({p.alpha, p.instance.size()});

  SweepScheduler scheduler(sweep_options);
  out.point_counters = scheduler.run(points.size(), [&](std::size_t i) {
    out.suites[i] = run_suite(points[i].instance, points[i].alpha, suite_options);
  });
  for (const auto& delta : out.point_counters) {
    for (const auto& [name, v] : delta) out.merged_counters[name] += v;
  }
  return out;
}

}  // namespace speedscale::analysis
