#include "src/analysis/worst_case.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "src/algo/algorithm_nc_uniform.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/opt/convex_opt.h"
#include "src/opt/single_job_opt.h"

namespace speedscale::analysis {

SingleJobGameResult single_job_game(const SingleJobCost& cost, double alpha, double v_lo,
                                    double v_hi, int grid) {
  SingleJobGameResult out;
  for (int i = 0; i < grid; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(grid - 1);
    const double v = v_lo * std::pow(v_hi / v_lo, f);
    const double opt = single_job_frac_opt(v, 1.0, alpha).objective;
    const double ratio = cost(v) / opt;
    if (ratio > out.worst_ratio) {
      out.worst_ratio = ratio;
      out.worst_volume = v;
    }
  }
  return out;
}

namespace {

/// Parameter vector: [gap_1..gap_{n-1}, vol_1..vol_n], all positive; job i's
/// release is the prefix sum of gaps (job 0 at time 0).
Instance decode(const std::vector<double>& x, int n) {
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(n));
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    if (i > 0) t += x[static_cast<std::size_t>(i - 1)];
    jobs.push_back(Job{kNoJob, t, x[static_cast<std::size_t>(n - 1 + i)], 1.0});
  }
  return Instance(std::move(jobs));
}

}  // namespace

WorstCaseResult find_worst_nc_instance(double alpha, const WorstCaseOptions& options) {
  const int n = options.n_jobs;
  ConvexOptParams opt_params;
  opt_params.slots = options.opt_slots;
  opt_params.max_iters = 2500;

  WorstCaseResult best;
  int evals = 0;
  const auto evaluate = [&](const std::vector<double>& x) {
    ++evals;
    OBS_COUNT("analysis.worst_case.evaluations", 1);
    const Instance inst = decode(x, n);
    const double nc = run_nc_uniform(inst, alpha).metrics.fractional_objective();
    const double opt = solve_fractional_opt(inst, alpha, opt_params).objective;
    return opt > 0.0 ? nc / opt : 0.0;
  };

  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> u(0.2, 2.0);
  std::vector<double> x(static_cast<std::size_t>(2 * n - 1));
  for (double& v : x) v = u(rng);

  double cur = evaluate(x);
  Instance cur_inst = decode(x, n);

  // Coordinate ascent with a shrinking multiplicative step.
  double step = 2.0;
  for (int round = 0; round < options.rounds; ++round) {
    OBS_TIMED_SCOPE("worst_case.round");
    bool improved = false;
    for (std::size_t d = 0; d < x.size(); ++d) {
      for (const double mult : {step, 1.0 / step}) {
        std::vector<double> y = x;
        y[d] = std::clamp(y[d] * mult, 1e-4, 1e4);
        const double r = evaluate(y);
        if (r > cur * (1.0 + 1e-9)) {
          cur = r;
          x = y;
          improved = true;
        }
      }
    }
    if (!improved) step = std::max(std::sqrt(step), 1.05);
    TRACE_EVENT(.kind = obs::EventKind::kPhaseBoundary, .t = static_cast<double>(round),
                .value = static_cast<double>(round), .aux = cur, .label = "worst_case.round");
  }

  best.instance = decode(x, n);
  best.ratio = cur;
  best.evaluations = evals;
  return best;
}

}  // namespace speedscale::analysis
