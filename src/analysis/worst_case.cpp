#include "src/analysis/worst_case.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <random>

#include "src/algo/algorithm_nc_uniform.h"
#include "src/analysis/sweep.h"
#include "src/obs/cert/potential_tracker.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/opt/convex_opt.h"
#include "src/opt/opt_cache.h"
#include "src/opt/single_job_opt.h"
#include "src/robust/checkpoint.h"

namespace speedscale::analysis {

SingleJobGameResult single_job_game(const SingleJobCost& cost, double alpha, double v_lo,
                                    double v_hi, int grid) {
  SingleJobGameResult out;
  for (int i = 0; i < grid; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(grid - 1);
    const double v = v_lo * std::pow(v_hi / v_lo, f);
    const double opt = single_job_frac_opt(v, 1.0, alpha).objective;
    const double ratio = cost(v) / opt;
    if (ratio > out.worst_ratio) {
      out.worst_ratio = ratio;
      out.worst_volume = v;
    }
  }
  return out;
}

namespace {

/// Parameter vector: [gap_1..gap_{n-1}, vol_1..vol_n], all positive; job i's
/// release is the prefix sum of gaps (job 0 at time 0).
Instance decode(const std::vector<double>& x, int n) {
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(n));
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    if (i > 0) t += x[static_cast<std::size_t>(i - 1)];
    jobs.push_back(Job{kNoJob, t, x[static_cast<std::size_t>(n - 1 + i)], 1.0});
  }
  return Instance(std::move(jobs));
}

/// One seeded coordinate-ascent search (the pre-restart find_worst body,
/// minus the certificate re-run, which runs once on the overall winner).
WorstCaseResult run_single_search(double alpha, const WorstCaseOptions& options) {
  const int n = options.n_jobs;
  ConvexOptParams opt_params;
  opt_params.slots = options.opt_slots;
  opt_params.max_iters = 2500;

  // Once the ascent's step factor saturates at its 1.05 floor a stuck search
  // re-probes identical coordinates round after round; the memoized solver
  // turns those repeats into lookups.  Hits/misses depend only on this
  // search's own probe sequence (the cache is private), so the work counters
  // stay deterministic at any restart-sweep thread count.
  OptSolveCache opt_cache(512);
  ScopedOptSolveCache opt_cache_scope(&opt_cache);

  WorstCaseResult best;
  const auto t_start = std::chrono::steady_clock::now();
  const auto elapsed_s = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start).count();
  };

  // A probe that trips a guard (unbracketed root, NaN, malformed instance)
  // is a non-improving candidate, not a fatal error: the search records the
  // first diagnostic, degrades its status, and keeps climbing.
  const auto evaluate = [&](const std::vector<double>& x) {
    OBS_COUNT("analysis.worst_case.evaluations", 1);
    try {
      const Instance inst = decode(x, n);
      const double nc = run_nc_uniform(inst, alpha).metrics.fractional_objective();
      const double opt = solve_fractional_opt(inst, alpha, opt_params).objective;
      ++best.evaluations;
      return opt > 0.0 ? nc / opt : 0.0;
    } catch (const robust::RobustError& e) {
      ++best.failed_evaluations;
      OBS_COUNT("analysis.worst_case.failed_evaluations", 1);
      if (best.diagnostics.empty()) best.diagnostics.push_back(e.diagnostic());
      best.status = robust::RunStatus::kDegraded;
      return 0.0;
    } catch (const std::exception& e) {
      ++best.failed_evaluations;
      OBS_COUNT("analysis.worst_case.failed_evaluations", 1);
      if (best.diagnostics.empty()) {
        best.diagnostics.push_back(robust::Diagnostic{
            robust::ErrorCode::kNoConvergence, std::string("evaluation threw: ") + e.what()});
      }
      best.status = robust::RunStatus::kDegraded;
      return 0.0;
    }
  };

  // Coordinate ascent with a shrinking multiplicative step; state is either
  // a fresh seeded restart or the last valid checkpoint line.
  std::vector<double> x(static_cast<std::size_t>(2 * n - 1));
  double step = 2.0;
  double cur = 0.0;
  int first_round = 0;
  bool resumed = false;
  if (!options.checkpoint_path.empty() && options.resume) {
    std::size_t skipped = 0;
    if (const auto cp = robust::load_search_checkpoint(options.checkpoint_path, &skipped)) {
      if (cp->x.size() == x.size()) {
        x = cp->x;
        step = cp->step;
        cur = cp->ratio;
        first_round = cp->next_round;
        resumed = true;
        OBS_COUNT("analysis.worst_case.resumes", 1);
      } else {
        best.diagnostics.push_back(robust::Diagnostic{
            robust::ErrorCode::kIoMalformed,
            "checkpoint dimension mismatch; restarting from seed",
            "have " + std::to_string(cp->x.size()) + " want " + std::to_string(x.size())});
        best.status = robust::RunStatus::kDegraded;
      }
    }
    if (skipped > 0) {
      best.diagnostics.push_back(robust::Diagnostic{
          robust::ErrorCode::kIoMalformed, "skipped torn checkpoint lines",
          std::to_string(skipped) + " line(s) in " + options.checkpoint_path});
    }
  }
  if (!resumed) {
    std::mt19937_64 rng(options.seed);
    std::uniform_real_distribution<double> u(0.2, 2.0);
    for (double& v : x) v = u(rng);
    cur = evaluate(x);
  }

  bool budget_hit = false;
  int round = first_round;
  for (; round < options.rounds && !budget_hit; ++round) {
    OBS_TIMED_SCOPE("worst_case.round");
    bool improved = false;
    for (std::size_t d = 0; d < x.size() && !budget_hit; ++d) {
      for (const double mult : {step, 1.0 / step}) {
        if (elapsed_s() > options.wall_clock_budget_s) {
          budget_hit = true;
          break;
        }
        std::vector<double> y = x;
        y[d] = std::clamp(y[d] * mult, 1e-4, 1e4);
        const double r = evaluate(y);
        if (r > cur * (1.0 + 1e-9)) {
          cur = r;
          x = y;
          improved = true;
        }
      }
    }
    if (budget_hit) break;  // partial round: checkpoint will restart it
    if (!improved) step = std::max(std::sqrt(step), 1.05);
    best.rounds_completed = round + 1;
    TRACE_EVENT(.kind = obs::EventKind::kPhaseBoundary, .t = static_cast<double>(round),
                .value = static_cast<double>(round), .aux = cur, .label = "worst_case.round");
    if (!options.checkpoint_path.empty()) {
      robust::append_search_checkpoint(options.checkpoint_path,
                                       {round + 1, step, cur, x});
    }
  }
  if (budget_hit) {
    best.status = robust::RunStatus::kDegraded;
    best.diagnostics.push_back(robust::Diagnostic{
        robust::ErrorCode::kBudgetExhausted, "wall-clock budget exhausted mid-search",
        "elapsed=" + std::to_string(elapsed_s()) + "s round=" + std::to_string(round)});
    OBS_COUNT("analysis.worst_case.budget_exhausted", 1);
    // x/cur stay valid mid-round; persist them so a resume restarts this
    // round from the best-known instance.
    if (!options.checkpoint_path.empty()) {
      robust::append_search_checkpoint(options.checkpoint_path, {round, step, cur, x});
    }
  }

  best.instance = decode(x, n);
  best.ratio = cur;
  return best;
}

/// Where exactly is the adversarial instance tight?  Re-run NC on the
/// winner under the certificate ledger and keep the K lowest-slack release
/// records — those are the events the adversary is squeezing.
void attach_tightest(WorstCaseResult& best, double alpha, const WorstCaseOptions& options) {
  try {
    obs::RingBufferSink ring(1 << 18);
    {
      obs::ScopedThreadCapture capture(&ring);
      (void)run_nc_uniform(best.instance, alpha);
    }
    obs::cert::CertOptions copts;
    copts.opt_slots = options.opt_slots;
    const obs::cert::CertificateLedger ledger =
        obs::cert::certify_events(ring.events(), alpha, copts);
    std::vector<obs::cert::CertRecord> releases;
    for (const obs::cert::CertRecord& r : ledger.records) {
      if (r.kind == obs::EventKind::kJobRelease) releases.push_back(r);
    }
    std::sort(releases.begin(), releases.end(),
              [](const obs::cert::CertRecord& a, const obs::cert::CertRecord& b) {
                if (a.slack != b.slack) return a.slack < b.slack;
                return a.t < b.t;  // deterministic tie-break
              });
    const std::size_t k =
        std::min(releases.size(), static_cast<std::size_t>(options.report_tightest));
    best.tightest_certificates.assign(releases.begin(),
                                      releases.begin() + static_cast<std::ptrdiff_t>(k));
  } catch (const std::exception& e) {
    best.diagnostics.push_back(robust::Diagnostic{
        robust::ErrorCode::kNoConvergence,
        std::string("certificate re-run failed: ") + e.what()});
  }
}

}  // namespace

WorstCaseResult find_worst_nc_instance(double alpha, const WorstCaseOptions& options) {
  const int restarts = std::max(1, options.restarts);
  WorstCaseResult best;
  if (restarts == 1) {
    best = run_single_search(alpha, options);
  } else {
    // Independent seeded searches, sharded through the sweep scheduler: the
    // reduction picks the best ratio in restart-index order, so the result —
    // and the merged work counters — are identical at any `jobs`.
    std::vector<WorstCaseResult> results(static_cast<std::size_t>(restarts));
    SweepOptions sweep_options;
    sweep_options.jobs = options.jobs;
    sweep_options.opt_cache_capacity = 0;  // each search installs its own cache
    SweepScheduler scheduler(sweep_options);
    scheduler.run(static_cast<std::size_t>(restarts), [&](std::size_t i) {
      WorstCaseOptions o = options;
      o.seed = options.seed + i;
      o.report_tightest = 0;  // certified once, on the overall winner
      if (!o.checkpoint_path.empty()) o.checkpoint_path += ".r" + std::to_string(i);
      results[i] = run_single_search(alpha, o);
    });
    int evaluations = 0;
    int failed = 0;
    std::size_t win = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      evaluations += results[i].evaluations;
      failed += results[i].failed_evaluations;
      if (results[i].ratio > results[win].ratio) win = i;
    }
    best = std::move(results[win]);
    best.evaluations = evaluations;
    best.failed_evaluations = failed;
  }
  best.restarts_run = restarts;
  if (options.report_tightest > 0) attach_tightest(best, alpha, options);
  return best;
}

}  // namespace speedscale::analysis
