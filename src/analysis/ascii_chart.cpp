#include "src/analysis/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

namespace speedscale::analysis {

void plot(std::ostream& os, const std::vector<Series>& series, int width, int height,
          const std::string& title) {
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min, y_min = x_min, y_max = -x_min;
  bool any = false;
  for (const Series& s : series) {
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      any = true;
      x_min = std::min(x_min, s.x[i]);
      x_max = std::max(x_max, s.x[i]);
      y_min = std::min(y_min, s.y[i]);
      y_max = std::max(y_max, s.y[i]);
    }
  }
  if (!title.empty()) os << title << '\n';
  if (!any) {
    os << "  (no data)\n";
    return;
  }
  if (x_max <= x_min) x_max = x_min + 1.0;
  if (y_max <= y_min) y_max = y_min + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (const Series& s : series) {
    // Draw line segments between consecutive points by dense sampling.
    for (std::size_t i = 0; i + 1 < s.x.size() && i + 1 < s.y.size(); ++i) {
      for (int k = 0; k <= 24; ++k) {
        const double f = static_cast<double>(k) / 24.0;
        const double x = s.x[i] * (1.0 - f) + s.x[i + 1] * f;
        const double y = s.y[i] * (1.0 - f) + s.y[i + 1] * f;
        if (!std::isfinite(x) || !std::isfinite(y)) continue;
        const int cx = static_cast<int>(std::lround((x - x_min) / (x_max - x_min) * (width - 1)));
        const int cy = static_cast<int>(std::lround((y - y_min) / (y_max - y_min) * (height - 1)));
        if (cx >= 0 && cx < width && cy >= 0 && cy < height) {
          grid[static_cast<std::size_t>(height - 1 - cy)][static_cast<std::size_t>(cx)] = s.glyph;
        }
      }
    }
    if (s.x.size() == 1 && s.y.size() == 1) {
      const int cx =
          static_cast<int>(std::lround((s.x[0] - x_min) / (x_max - x_min) * (width - 1)));
      const int cy =
          static_cast<int>(std::lround((s.y[0] - y_min) / (y_max - y_min) * (height - 1)));
      if (cx >= 0 && cx < width && cy >= 0 && cy < height) {
        grid[static_cast<std::size_t>(height - 1 - cy)][static_cast<std::size_t>(cx)] = s.glyph;
      }
    }
  }

  std::ostringstream ymax_s, ymin_s;
  ymax_s << std::setprecision(4) << y_max;
  ymin_s << std::setprecision(4) << y_min;
  for (int r = 0; r < height; ++r) {
    if (r == 0) {
      os << std::setw(10) << std::right << ymax_s.str() << " |";
    } else if (r == height - 1) {
      os << std::setw(10) << std::right << ymin_s.str() << " |";
    } else {
      os << std::string(10, ' ') << " |";
    }
    os << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(11, ' ') << '+' << std::string(static_cast<std::size_t>(width), '-') << '\n';
  os << std::string(12, ' ') << std::setprecision(4) << x_min;
  os << std::string(static_cast<std::size_t>(std::max(1, width - 16)), ' ')
     << std::setprecision(4) << x_max << '\n';
  for (const Series& s : series) {
    os << "    " << s.glyph << " = " << s.name << '\n';
  }
}

std::string sparkline(const std::vector<double>& values, std::size_t width) {
  static constexpr char kRamp[] = "_.-=^#";
  static constexpr std::size_t kLevels = sizeof(kRamp) - 1;
  if (values.empty() || width == 0) return "";
  const std::size_t n = std::min(values.size(), width);
  const std::size_t start = values.size() - n;
  double lo = values[start];
  double hi = values[start];
  for (std::size_t i = start; i < values.size(); ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  std::string out;
  out.reserve(n);
  for (std::size_t i = start; i < values.size(); ++i) {
    if (hi == lo) {
      out += '-';
      continue;
    }
    const double t = (values[i] - lo) / (hi - lo);
    auto level = static_cast<std::size_t>(t * static_cast<double>(kLevels - 1) + 0.5);
    out += kRamp[std::min(level, kLevels - 1)];
  }
  return out;
}

}  // namespace speedscale::analysis
