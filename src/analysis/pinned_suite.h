// The pinned deterministic bench suite, as a library.
//
// These workloads used to live inside bench/bench_suite_runner.cpp.  They
// are the deterministic half of the bench ledger: pinned seeds and configs,
// so the MetricsRegistry counters each body produces are byte-for-byte
// reproducible (the runner asserts it across repetitions).  The multi-process
// fleet (src/robust/supervisor/) ships this grid to worker processes *by
// bench name*, so the name -> body table must be linkable from both the
// runner and the sweep_worker entry point — hence a library, not a
// translation unit of the runner.
//
// Changing a seed, size, or config here invalidates every committed
// BENCH_*.json baseline that pins these names — regenerate them in the same
// change.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace speedscale::analysis {

/// Pinned configuration shared by every suite body — exported because the
/// ledger records them as config keys ("alpha", "engine_substeps").
inline constexpr double kPinnedBenchAlpha = 2.0;
inline constexpr int kPinnedBenchEngineSubsteps = 512;

/// One pinned, deterministic workload.
struct PinnedBench {
  std::string name;
  std::function<void()> body;
};

/// The pinned suite, in ledger order.  Built once per process.
[[nodiscard]] const std::vector<PinnedBench>& pinned_bench_suite();

/// Name lookup into pinned_bench_suite(); nullptr when unknown.
[[nodiscard]] const PinnedBench* find_pinned_bench(const std::string& name);

}  // namespace speedscale::analysis
