#include "src/analysis/evolution.h"

#include <algorithm>
#include <cmath>

#include "src/algo/algorithm_nc_uniform.h"
#include "src/core/kinematics.h"
#include "src/core/metrics.h"
#include "src/core/power.h"
#include "src/sim/c_machine.h"

namespace speedscale::analysis {

namespace {

/// Exact evaluation of the I(T) quantities: builds the current instance and
/// the truncated NC prefix schedule, and evaluates both NC's objective
/// components on I(T) and the clairvoyant energy E^C(I(T)).
struct Snapshot {
  double f_nc = 0.0;     ///< fractional flow of NC's prefix run on I(T)
  double f_int = 0.0;    ///< integral flow of the prefix run
  double e_nc = 0.0;     ///< energy of the prefix run
  double e_c = 0.0;      ///< energy (= flow) of Algorithm C on I(T)
};

Snapshot snapshot_at(const Instance& instance, const Schedule& nc, double alpha, double T) {
  // Truncate the NC schedule at T.
  Schedule prefix(alpha);
  std::vector<double> last_touch(instance.size(), -1.0);
  for (const Segment& seg : nc.segments()) {
    if (seg.t0 >= T) break;
    Segment cut = seg;
    cut.t1 = std::min(seg.t1, T);
    prefix.append(cut);
    if (seg.job != kNoJob) last_touch[static_cast<std::size_t>(seg.job)] = cut.t1;
  }
  const std::vector<double> processed = prefix.processed_volumes(instance.size());

  // I(T): original releases, volumes = processed amounts (paper, Section 3).
  std::vector<Job> jobs;
  std::vector<JobId> kept;
  for (const Job& j : instance.jobs()) {
    const double p = processed[static_cast<std::size_t>(j.id)];
    if (j.release <= T && p > 0.0) {
      jobs.push_back(Job{kNoJob, j.release, p, j.density});
      kept.push_back(j.id);
    }
  }
  Snapshot out;
  if (jobs.empty()) return out;
  const Instance current{std::move(jobs)};

  // The prefix run, relabelled to I(T)'s ids, completes each job at its
  // last processing instant.
  Schedule relabelled(alpha);
  std::vector<JobId> to_local(instance.size(), kNoJob);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    to_local[static_cast<std::size_t>(kept[i])] = static_cast<JobId>(i);
  }
  for (Segment seg : prefix.segments()) {
    if (seg.job != kNoJob) seg.job = to_local[static_cast<std::size_t>(seg.job)];
    relabelled.append(seg);
  }
  for (std::size_t i = 0; i < kept.size(); ++i) {
    relabelled.set_completion(static_cast<JobId>(i),
                              last_touch[static_cast<std::size_t>(kept[i])]);
  }
  const PowerLaw power(alpha);
  const Metrics m = compute_metrics(current, relabelled, power);
  out.f_nc = m.fractional_flow;
  out.f_int = m.integral_flow;
  out.e_nc = m.energy;

  const Schedule c = run_algorithm_c(current, alpha);
  out.e_c = compute_metrics(current, c, power).energy;
  return out;
}

}  // namespace

EvolutionReport analyze_evolution(const Instance& instance, double alpha, int n_probes,
                                  double h) {
  if (!instance.uniform_density(1e-9)) {
    throw ModelError("analyze_evolution: instance must have uniform density");
  }
  const NCUniformRun run = run_nc_uniform_detailed(instance, alpha);
  const Schedule& nc = run.result.schedule;
  const PowerLawKinematics kin(alpha);
  const double hh = h * std::max(nc.makespan(), 1e-12);

  EvolutionReport rep;
  // Probe inside processing segments, away from their ends.
  std::vector<std::pair<double, const Segment*>> spots;
  for (const Segment& seg : nc.segments()) {
    if (seg.job == kNoJob || seg.duration() < 8.0 * hh) continue;
    spots.push_back({0.5 * (seg.t0 + seg.t1), &seg});
    spots.push_back({seg.t0 + 0.2 * seg.duration(), &seg});
    spots.push_back({seg.t0 + 0.8 * seg.duration(), &seg});
  }
  std::sort(spots.begin(), spots.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const std::size_t stride = std::max<std::size_t>(1, spots.size() / std::max(1, n_probes));

  for (std::size_t i = 0; i < spots.size(); i += stride) {
    const double T = spots[i].first;
    const Segment& seg = *spots[i].second;
    EvolutionProbe p;
    p.T = T;
    p.job = seg.job;
    // NC's power level at T: U(T) of the growth law.
    p.nc_power = kin.grow_weight_after(seg.param, seg.rho, T - seg.t0);

    const Snapshot lo = snapshot_at(instance, nc, alpha, T - hh);
    const Snapshot hi = snapshot_at(instance, nc, alpha, T + hh);
    p.dEc_dT = (hi.e_c - lo.e_c) / (2.0 * hh);
    p.dFnc_dT = (hi.f_nc - lo.f_nc) / (2.0 * hh);
    p.dFint_dT = (hi.f_int - lo.f_int) / (2.0 * hh);
    rep.probes.push_back(p);

    const double scale = std::max(1.0, p.nc_power);
    rep.worst_eqn4_error =
        std::max(rep.worst_eqn4_error, std::abs(p.dEc_dT - p.nc_power) / scale);
    rep.worst_lemma4_error = std::max(
        rep.worst_lemma4_error,
        std::abs(p.dEc_dT - (1.0 - 1.0 / alpha) * p.dFnc_dT) / scale);
    rep.worst_lemma8_excess =
        std::max(rep.worst_lemma8_excess,
                 (p.dFint_dT - (2.0 - 1.0 / alpha) * p.dFnc_dT) / scale);
  }
  return rep;
}

}  // namespace speedscale::analysis
