// Adversarial / structured instances from the paper's constructions.
#pragma once

#include "src/core/instance.h"

namespace speedscale::workload {

/// Section 7's geometric-density family: l jobs, densities 1, rho, ...,
/// rho^{l-1}, all released at 0, with volumes chosen so that each job costs
/// exactly `solo_cost` when processed alone under Algorithm C (whose solo
/// fractional objective is 2 * W^{2-1/alpha} / (rho_j * (2 - 1/alpha))).
/// The paper's "somewhat surprising fact": for rho >= 4, all l jobs on ONE
/// machine cost at most 4 * l * solo_cost.
[[nodiscard]] Instance geometric_density_instance(int l, double rho, double solo_cost,
                                                  double alpha);

/// Solo fractional objective of Algorithm C on one job (closed form):
/// energy = flow = W^{1+b} / (rho (1+b)), b = 1 - 1/alpha.
[[nodiscard]] double c_solo_cost(double volume, double density, double alpha);

/// Volume giving a prescribed C solo cost at a given density.
[[nodiscard]] double volume_for_solo_cost(double solo_cost, double density, double alpha);

/// A staircase instance stressing the FIFO/HDF conflict (Section 1.2): a low
/// density long job released first, then bursts of high-density short jobs.
[[nodiscard]] Instance fifo_hdf_conflict_instance(int bursts, int jobs_per_burst,
                                                  double density_ratio);

}  // namespace speedscale::workload
