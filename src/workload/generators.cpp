#include "src/workload/generators.h"

#include <algorithm>
#include <cmath>

namespace speedscale::workload {

namespace {

double draw_volume(std::mt19937_64& rng, VolumeDist dist, double mean, double param) {
  switch (dist) {
    case VolumeDist::kUniform: {
      std::uniform_real_distribution<double> d(0.5 * mean, 1.5 * mean);
      return d(rng);
    }
    case VolumeDist::kExponential: {
      std::exponential_distribution<double> d(1.0 / mean);
      return std::max(d(rng), 1e-9 * mean);
    }
    case VolumeDist::kPareto: {
      // Pareto with shape a > 1 and scale chosen so the mean matches.
      const double a = std::max(param, 1.05);
      const double x_m = mean * (a - 1.0) / a;
      std::uniform_real_distribution<double> u(0.0, 1.0);
      return x_m / std::pow(1.0 - u(rng), 1.0 / a);
    }
    case VolumeDist::kLognormal: {
      const double sigma = std::max(param, 1e-3);
      const double mu = std::log(mean) - 0.5 * sigma * sigma;
      std::lognormal_distribution<double> d(mu, sigma);
      return std::max(d(rng), 1e-9 * mean);
    }
    case VolumeDist::kFixed:
      return mean;
  }
  return mean;
}

double draw_density(std::mt19937_64& rng, const WorkloadParams& p) {
  switch (p.density_mode) {
    case DensityMode::kUnit:
      return 1.0;
    case DensityMode::kClasses: {
      std::uniform_int_distribution<int> d(0, p.density_classes - 1);
      const double step = std::pow(p.density_spread, 1.0 / std::max(1, p.density_classes - 1));
      return std::pow(step, d(rng));
    }
    case DensityMode::kLogUniform: {
      std::uniform_real_distribution<double> u(-1.0, 1.0);
      return std::pow(p.density_spread, u(rng));
    }
  }
  return 1.0;
}

}  // namespace

Instance generate(const WorkloadParams& params) {
  std::mt19937_64 rng(params.seed);
  std::exponential_distribution<double> gap(params.arrival_rate);
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(params.n_jobs));
  double t = 0.0;
  for (int i = 0; i < params.n_jobs; ++i) {
    if (i > 0) t += gap(rng);
    Job j;
    j.release = t;
    j.volume = draw_volume(rng, params.volume_dist, params.volume_mean, params.volume_param);
    j.density = draw_density(rng, params);
    jobs.push_back(j);
  }
  return Instance(std::move(jobs));
}

Instance batch_at_zero(int n, VolumeDist dist, double mean, double param, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Job j;
    j.release = 0.0;
    j.volume = draw_volume(rng, dist, mean, param);
    j.density = 1.0;
    jobs.push_back(j);
  }
  return Instance(std::move(jobs));
}

Instance cloud_trace(const CloudParams& params) {
  std::mt19937_64 rng(params.seed);
  std::exponential_distribution<double> gap(params.arrival_rate);
  std::exponential_distribution<double> vol_i(1.0 / params.interactive_volume);
  std::exponential_distribution<double> vol_b(1.0 / params.batch_volume);
  const int total = params.n_interactive + params.n_batch;
  std::vector<int> kinds;
  for (int i = 0; i < params.n_interactive; ++i) kinds.push_back(0);
  for (int i = 0; i < params.n_batch; ++i) kinds.push_back(1);
  std::shuffle(kinds.begin(), kinds.end(), rng);

  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(total));
  double t = 0.0;
  for (int i = 0; i < total; ++i) {
    if (i > 0) t += gap(rng);
    Job j;
    j.release = t;
    if (kinds[static_cast<std::size_t>(i)] == 0) {
      j.volume = std::max(vol_i(rng), 1e-6);
      j.density = params.interactive_rho;
    } else {
      j.volume = std::max(vol_b(rng), 1e-6);
      j.density = params.batch_rho;
    }
    jobs.push_back(j);
  }
  return Instance(std::move(jobs));
}

Instance diurnal_trace(const DiurnalParams& params) {
  if (!(params.amplitude >= 0.0) || params.amplitude >= 1.0) {
    throw ModelError("diurnal_trace: amplitude must lie in [0, 1)");
  }
  std::mt19937_64 rng(params.seed);
  const double rate_max = params.base_rate * (1.0 + params.amplitude);
  std::exponential_distribution<double> gap(rate_max);
  std::uniform_real_distribution<double> accept(0.0, 1.0);

  WorkloadParams marginals;
  marginals.density_mode = params.density_mode;
  marginals.density_classes = params.density_classes;
  marginals.density_spread = params.density_spread;

  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(params.n_jobs));
  double t = 0.0;
  while (static_cast<int>(jobs.size()) < params.n_jobs) {
    t += gap(rng);
    const double rate =
        params.base_rate * (1.0 + params.amplitude * std::sin(2.0 * M_PI * t / params.period));
    if (accept(rng) * rate_max > rate) continue;  // thinning
    Job j;
    j.release = t;
    j.volume = draw_volume(rng, params.volume_dist, params.volume_mean, params.volume_param);
    j.density = draw_density(rng, marginals);
    jobs.push_back(j);
  }
  return Instance(std::move(jobs));
}

}  // namespace speedscale::workload
