#include "src/workload/adversarial.h"

#include <cmath>
#include <vector>

namespace speedscale::workload {

double c_solo_cost(double volume, double density, double alpha) {
  const double b = 1.0 - 1.0 / alpha;
  const double w = density * volume;
  const double energy = std::pow(w, 1.0 + b) / (density * (1.0 + b));
  return 2.0 * energy;  // flow == energy for Algorithm C
}

double volume_for_solo_cost(double solo_cost, double density, double alpha) {
  const double b = 1.0 - 1.0 / alpha;
  const double w = std::pow(0.5 * solo_cost * density * (1.0 + b), 1.0 / (1.0 + b));
  return w / density;
}

Instance geometric_density_instance(int l, double rho, double solo_cost, double alpha) {
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(l));
  double density = 1.0;
  for (int i = 0; i < l; ++i) {
    Job j;
    j.release = 0.0;
    j.density = density;
    j.volume = volume_for_solo_cost(solo_cost, density, alpha);
    jobs.push_back(j);
    density *= rho;
  }
  return Instance(std::move(jobs));
}

Instance fifo_hdf_conflict_instance(int bursts, int jobs_per_burst, double density_ratio) {
  std::vector<Job> jobs;
  // A long, low-density job released first...
  jobs.push_back(Job{kNoJob, 0.0, 8.0, 1.0});
  // ...then periodic bursts of short high-density jobs that HDF would jump
  // to but FIFO (density-blind) would not.
  double t = 0.25;
  for (int b = 0; b < bursts; ++b) {
    for (int i = 0; i < jobs_per_burst; ++i) {
      jobs.push_back(Job{kNoJob, t + 0.01 * i, 0.2, density_ratio});
    }
    t += 1.5;
  }
  return Instance(std::move(jobs));
}

}  // namespace speedscale::workload
