// Seeded workload generators.
//
// All generators are deterministic in their seed (std::mt19937_64), so every
// test and bench run is reproducible.  The cloud synthesizer models the
// paper's motivating application (Section 1): customers pay
// (lambda - rho * t_delay) per unit volume, so the scheduler-controllable
// loss is rho * F[j] * V[j] — weighted flow-time with density rho known at
// release and weight unknown (the non-clairvoyant known-density model).
#pragma once

#include <cstdint>
#include <random>

#include "src/core/instance.h"

namespace speedscale::workload {

enum class VolumeDist {
  kUniform,    ///< uniform in [mean/2, 3*mean/2]
  kExponential,///< exponential with the given mean
  kPareto,     ///< Pareto (heavy-tailed), shape = param, scaled to the mean
  kLognormal,  ///< lognormal, sigma = param, scaled to the mean
  kFixed,      ///< all volumes equal to the mean
};

enum class DensityMode {
  kUnit,       ///< all densities 1 (the uniform-density setting)
  kClasses,    ///< `classes` discrete levels, geometrically spaced by `spread`
  kLogUniform, ///< log-uniform in [1/spread, spread]
};

struct WorkloadParams {
  int n_jobs = 32;
  double arrival_rate = 1.0;       ///< Poisson arrival rate (jobs per unit time)
  VolumeDist volume_dist = VolumeDist::kExponential;
  double volume_mean = 1.0;
  double volume_param = 2.0;       ///< shape (Pareto) / sigma (lognormal)
  DensityMode density_mode = DensityMode::kUnit;
  int density_classes = 4;
  double density_spread = 8.0;
  std::uint64_t seed = 1;
};

/// Generates an instance with Poisson arrivals and the configured marginals.
[[nodiscard]] Instance generate(const WorkloadParams& params);

/// n jobs all released at time 0 (the batch setting of Lam et al. [7]).
[[nodiscard]] Instance batch_at_zero(int n, VolumeDist dist, double mean, double param,
                                     std::uint64_t seed);

/// Cloud-billing synthesizer: a mix of short interactive requests (high
/// penalty rate rho) and long batch jobs (low rho), Poisson arrivals.
struct CloudParams {
  int n_interactive = 24;
  int n_batch = 8;
  double interactive_rho = 8.0;   ///< penalty rate of latency-sensitive work
  double batch_rho = 1.0;
  double interactive_volume = 0.25;
  double batch_volume = 4.0;
  double arrival_rate = 2.0;
  std::uint64_t seed = 7;
};
[[nodiscard]] Instance cloud_trace(const CloudParams& params);

/// Diurnal (time-varying) arrivals: a non-homogeneous Poisson process with
/// rate(t) = base_rate * (1 + amplitude * sin(2 pi t / period)), sampled by
/// thinning.  Models the day/night load swing of the datacenter setting the
/// paper's introduction motivates.
struct DiurnalParams {
  int n_jobs = 200;
  double base_rate = 1.0;
  double amplitude = 0.8;  ///< relative swing, in [0, 1)
  double period = 24.0;
  VolumeDist volume_dist = VolumeDist::kLognormal;
  double volume_mean = 1.0;
  double volume_param = 1.2;
  DensityMode density_mode = DensityMode::kUnit;
  int density_classes = 3;
  double density_spread = 10.0;
  std::uint64_t seed = 1;
};
[[nodiscard]] Instance diurnal_trace(const DiurnalParams& params);

}  // namespace speedscale::workload
