#include "src/workload/trace_io.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

#include "src/robust/atomic_io.h"
#include "src/robust/fault_injection.h"

namespace speedscale::workload {

namespace {

[[noreturn]] void malformed(std::string message, std::size_t line_no) {
  throw TraceIoError(robust::Diagnostic{robust::ErrorCode::kIoMalformed, std::move(message),
                                        "line " + std::to_string(line_no)});
}

/// Splits a CSV line on ','.  Embedded NULs survive as ordinary characters
/// (std::getline reads through them) and then fail the numeric full-parse.
std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

/// Full-consumption strtod: trailing junk (including NUL bytes) is a parse
/// failure, unlike std::stod's prefix semantics.
bool parse_double(const std::string& field, double& out) {
  if (field.empty() || field.size() != std::string(field.c_str()).size()) return false;
  char* end = nullptr;
  out = std::strtod(field.c_str(), &end);
  while (end && *end == ' ') ++end;
  return end == field.c_str() + field.size();
}

}  // namespace

bool parse_trace_job_line(const std::string& line, Job& j, std::string& why) {
  const std::vector<std::string> fields = split_fields(line);
  if (fields.size() != 4) {
    why = "expected 4 fields, got " + std::to_string(fields.size());
    return false;
  }
  double id_ignored = 0.0;
  if (!parse_double(fields[0], id_ignored)) {
    why = "unparseable id field '" + fields[0].substr(0, 32) + "'";
    return false;
  }
  const char* names[] = {"release", "volume", "density"};
  double* dests[] = {&j.release, &j.volume, &j.density};
  for (int k = 0; k < 3; ++k) {
    if (!parse_double(fields[static_cast<std::size_t>(k + 1)], *dests[k])) {
      why = std::string("unparseable ") + names[k] + " field '" +
            fields[static_cast<std::size_t>(k + 1)].substr(0, 32) + "'";
      return false;
    }
    if (!std::isfinite(*dests[k])) {
      why = std::string("non-finite ") + names[k];
      return false;
    }
  }
  return true;
}

void write_trace(std::ostream& os, const Instance& instance) {
  os << "id,release,volume,density\n";
  os << std::setprecision(17);
  for (const Job& j : instance.jobs()) {
    std::ostringstream line;
    line << std::setprecision(17);
    line << j.id << ',' << j.release << ',' << j.volume << ',' << j.density;
    std::string s = line.str();
    if (robust::fault_fire(robust::FaultSite::kTraceLine)) {
      s.resize(s.size() * 3 / 5);  // injected mid-line truncation
    }
    os << s << '\n';
  }
}

void write_trace_file(const std::string& path, const Instance& instance) {
  robust::atomic_write_file(path, [&](std::ostream& os) { write_trace(os, instance); });
}

Instance read_trace(std::istream& is, const TraceReadOptions& options, TraceReadStats* stats) {
  TraceReadStats local;
  TraceReadStats& st = stats ? *stats : local;
  st = TraceReadStats{};

  std::string line;
  if (!std::getline(is, line)) malformed("empty stream", 1);
  if (line.rfind("id,", 0) != 0) malformed("missing 'id,...' header", 1);
  std::vector<Job> jobs;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    // getline hitting EOF mid-line means the final line has no '\n': the
    // file is a torn tail (crash-safe ".tmp" prefixes end exactly like this,
    // and write_trace always terminates lines).  The fragment may still
    // parse as 4 valid fields — a truncated "…,1.25" reads as "…,1" — so it
    // must never be accepted as data: strict mode rejects it by position,
    // lenient mode counts it as skipped (it used to be silently accepted,
    // undercounting lines_skipped).
    const bool torn_tail = is.eof();
    if (line.empty()) continue;
    if (torn_tail) {
      if (options.mode == TraceReadMode::kStrict) {
        malformed("unterminated final line (torn tail)", line_no);
      }
      ++st.lines_skipped;
      continue;
    }
    Job j;
    std::string why;
    if (parse_trace_job_line(line, j, why)) {
      // Lenient mode also drops semantically-invalid rows (non-positive
      // volume/density) that would fail Instance validation later.
      if (options.mode == TraceReadMode::kLenient && (j.volume <= 0.0 || j.density <= 0.0)) {
        ++st.lines_skipped;
        continue;
      }
      jobs.push_back(j);
      ++st.lines_read;
    } else if (options.mode == TraceReadMode::kStrict) {
      malformed("malformed trace line: " + why, line_no);
    } else {
      ++st.lines_skipped;
    }
  }
  return Instance(std::move(jobs));
}

Instance read_trace_file(const std::string& path, const TraceReadOptions& options,
                         TraceReadStats* stats) {
  std::ifstream f(path);
  if (!f) {
    throw TraceIoError(robust::Diagnostic{robust::ErrorCode::kIoMalformed,
                                          "cannot open trace file", path});
  }
  return read_trace(f, options, stats);
}

}  // namespace speedscale::workload
