#include "src/workload/trace_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

namespace speedscale::workload {

void write_trace(std::ostream& os, const Instance& instance) {
  os << "id,release,volume,density\n";
  os << std::setprecision(17);
  for (const Job& j : instance.jobs()) {
    os << j.id << ',' << j.release << ',' << j.volume << ',' << j.density << '\n';
  }
}

void write_trace_file(const std::string& path, const Instance& instance) {
  std::ofstream f(path);
  if (!f) throw ModelError("write_trace_file: cannot open " + path);
  write_trace(f, instance);
}

Instance read_trace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) throw ModelError("read_trace: empty stream");
  if (line.rfind("id,", 0) != 0) throw ModelError("read_trace: missing header");
  std::vector<Job> jobs;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string field;
    Job j;
    try {
      std::getline(ss, field, ',');  // id (ignored; reassigned)
      std::getline(ss, field, ',');
      j.release = std::stod(field);
      std::getline(ss, field, ',');
      j.volume = std::stod(field);
      std::getline(ss, field, ',');
      j.density = std::stod(field);
    } catch (const std::exception&) {
      throw ModelError("read_trace: malformed line " + std::to_string(line_no));
    }
    jobs.push_back(j);
  }
  return Instance(std::move(jobs));
}

Instance read_trace_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw ModelError("read_trace_file: cannot open " + path);
  return read_trace(f);
}

}  // namespace speedscale::workload
