// CSV trace I/O for instances.
//
// Format (header line required):
//   id,release,volume,density
// Ids in the file are informational; loading reassigns contiguous ids in
// file order (the Instance invariant).
#pragma once

#include <iosfwd>
#include <string>

#include "src/core/instance.h"

namespace speedscale::workload {

void write_trace(std::ostream& os, const Instance& instance);
void write_trace_file(const std::string& path, const Instance& instance);

[[nodiscard]] Instance read_trace(std::istream& is);
[[nodiscard]] Instance read_trace_file(const std::string& path);

}  // namespace speedscale::workload
