// CSV trace I/O for instances.
//
// Format (header line required):
//   id,release,volume,density
// Ids in the file are informational; loading reassigns contiguous ids in
// file order (the Instance invariant).
//
// Robustness:
//   * reads are strict by default — exact field count, fully-consumed
//     numeric fields, finite values — and every rejection names its line
//     number; lenient mode skips-and-counts bad lines instead of throwing;
//   * parse failures throw TraceIoError, which is a ModelError (so existing
//     handlers keep working) carrying a typed robust::Diagnostic
//     (ErrorCode::kIoMalformed);
//   * write_trace_file is crash-safe: it writes "<path>.tmp", flushes, then
//     atomically renames, so an interrupted bench never leaves a truncated
//     trace at the target path.
#pragma once

#include <iosfwd>
#include <string>

#include "src/core/instance.h"
#include "src/robust/diagnostics.h"

namespace speedscale::workload {

/// Malformed trace input.  ModelError-compatible, diagnostic-typed.
class TraceIoError : public ModelError {
 public:
  explicit TraceIoError(robust::Diagnostic diag)
      : ModelError(diag.to_string()), diag_(std::move(diag)) {}
  [[nodiscard]] const robust::Diagnostic& diagnostic() const noexcept { return diag_; }

 private:
  robust::Diagnostic diag_;
};

enum class TraceReadMode : std::uint8_t {
  kStrict,   ///< any bad line throws TraceIoError with its line number
  kLenient,  ///< bad lines are skipped and counted in TraceReadStats
};

struct TraceReadOptions {
  TraceReadMode mode = TraceReadMode::kStrict;
};

struct TraceReadStats {
  std::size_t lines_read = 0;     ///< data lines accepted as jobs
  std::size_t lines_skipped = 0;  ///< bad data lines dropped (lenient only)
};

/// Parses one CSV data line ("id,release,volume,density") into `j`.  Returns
/// false with `why` set on any field-count, parse, or finiteness violation.
/// The streaming ingest path (src/engine/job_source.h) shares this with
/// read_trace so the two cannot drift on what counts as a bad line.
[[nodiscard]] bool parse_trace_job_line(const std::string& line, Job& j, std::string& why);

void write_trace(std::ostream& os, const Instance& instance);
/// Crash-safe: tmp + flush + atomic rename.
void write_trace_file(const std::string& path, const Instance& instance);

[[nodiscard]] Instance read_trace(std::istream& is, const TraceReadOptions& options = {},
                                  TraceReadStats* stats = nullptr);
[[nodiscard]] Instance read_trace_file(const std::string& path,
                                       const TraceReadOptions& options = {},
                                       TraceReadStats* stats = nullptr);

}  // namespace speedscale::workload
