#include "src/numerics/ode.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace speedscale::numerics {

double rk4_step(const OdeRhs& f, double t, double y, double h) {
  const double k1 = f(t, y);
  const double k2 = f(t + 0.5 * h, y + 0.5 * h * k1);
  const double k3 = f(t + 0.5 * h, y + 0.5 * h * k2);
  const double k4 = f(t + h, y + h * k3);
  return y + (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
}

namespace {

struct StepOutcome {
  double y = 0.0;       ///< state after advancing by h_taken
  double h_taken = 0.0; ///< step actually performed
  double h_next = 0.0;  ///< suggested size for the next step
};

/// One accepted adaptive step from (t, y) with initial trial size h_try.
/// Step doubling: accept when |y_halves - y_full| passes the tolerance test,
/// keep the more accurate two-half-steps estimate.
StepOutcome adaptive_step(const OdeRhs& f, double t, double y, double h_try, double rel_tol) {
  double h = h_try;
  for (int tries = 0; tries < 60; ++tries) {
    const double y_full = rk4_step(f, t, y, h);
    const double y_half = rk4_step(f, t + 0.5 * h, rk4_step(f, t, y, 0.5 * h), 0.5 * h);
    const double err = std::abs(y_half - y_full);
    const double scale = rel_tol * std::max({1.0, std::abs(y), std::abs(y_half)});
    if (err <= scale || h <= 1e-14 * std::max(1.0, std::abs(t))) {
      const double h_next = (err < 0.03125 * scale) ? 2.0 * h : h;
      return {y_half, h, h_next};
    }
    h *= 0.5;
  }
  throw std::runtime_error("ode: step size underflow");
}

}  // namespace

double integrate(const OdeRhs& f, double t0, double y0, double t1, double rel_tol,
                 double h_init) {
  if (t1 <= t0) return y0;
  double t = t0, y = y0;
  double h = h_init > 0.0 ? h_init : (t1 - t0) / 64.0;
  while (t < t1) {
    const StepOutcome so = adaptive_step(f, t, y, std::min(h, t1 - t), rel_tol);
    t += so.h_taken;
    y = so.y;
    h = so.h_next;
  }
  return y;
}

EventResult integrate_until(const OdeRhs& f, double t0, double y0, double t_max,
                            const std::function<double(double, double)>& event,
                            double rel_tol) {
  EventResult out;
  double t = t0, y = y0;
  if (event(t, y) <= 0.0) return {t, y, true};
  double h = (t_max > t0) ? (t_max - t0) / 64.0 : 1.0;
  h = std::max(h, 1e-12);
  while (t < t_max) {
    const StepOutcome so = adaptive_step(f, t, y, std::min(h, t_max - t), rel_tol);
    const double t_next = t + so.h_taken;
    if (event(t_next, so.y) <= 0.0) {
      // Localize the crossing in [t, t_next] by bisection; each probe
      // re-integrates the (one-step-wide) sub-interval.
      double lo = t, hi = t_next;
      double y_lo = y, y_hi = so.y;
      for (int i = 0; i < 80 && hi - lo > rel_tol * std::max(1.0, hi); ++i) {
        const double mid = 0.5 * (lo + hi);
        const double y_mid = integrate(f, lo, y_lo, mid, rel_tol);
        if (event(mid, y_mid) <= 0.0) {
          hi = mid;
          y_hi = y_mid;
        } else {
          lo = mid;
          y_lo = y_mid;
        }
      }
      out.t = hi;
      out.y = y_hi;
      out.event_hit = true;
      return out;
    }
    t = t_next;
    y = so.y;
    h = so.h_next;
  }
  out.t = t_max;
  out.y = y;
  out.event_hit = false;
  return out;
}

}  // namespace speedscale::numerics
