#include "src/numerics/projection.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace speedscale::numerics {

void project_simplex(std::span<double> x, double total) {
  if (total < 0.0) throw std::invalid_argument("project_simplex: negative total");
  if (x.empty()) {
    if (total > 0.0) throw std::invalid_argument("project_simplex: empty span, positive total");
    return;
  }
  if (total == 0.0) {
    for (double& xi : x) xi = 0.0;
    return;
  }
  // Find tau such that sum_i max(x_i - tau, 0) = total.
  std::vector<double> u(x.begin(), x.end());
  std::sort(u.begin(), u.end(), std::greater<>());
  double cssv = 0.0;
  double tau = 0.0;
  std::size_t rho_idx = 0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    cssv += u[i];
    const double t = (cssv - total) / static_cast<double>(i + 1);
    if (u[i] - t > 0.0) {
      tau = t;
      rho_idx = i;
    }
  }
  (void)rho_idx;
  for (double& xi : x) xi = std::max(xi - tau, 0.0);
}

}  // namespace speedscale::numerics
