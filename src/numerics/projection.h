// Euclidean projection onto the scaled simplex {x >= 0, sum x = v}.
//
// The discretized offline-optimum solver (src/opt/convex_opt.h) constrains
// each job's per-slot volumes to a scaled simplex; projected/accelerated
// gradient descent needs this projection at every iterate.
#pragma once

#include <cstddef>
#include <span>

namespace speedscale::numerics {

/// Projects x (in place) onto {x >= 0, sum_i x_i = total}.
/// O(n log n) sort-based algorithm (Held-Wolfe-Crowder / Duchi et al.).
/// `total` must be >= 0; an empty span with total > 0 is an error.
void project_simplex(std::span<double> x, double total);

}  // namespace speedscale::numerics
