#include "src/numerics/roots.h"

#include <cmath>
#include <string>

#include "src/obs/metrics_registry.h"
#include "src/robust/diagnostics.h"
#include "src/robust/fault_injection.h"

namespace speedscale::numerics {

namespace {

using robust::ErrorCode;
using robust::RobustError;

std::string bracket_context(double lo, double flo, double hi, double fhi) {
  return "lo=" + std::to_string(lo) + " f(lo)=" + std::to_string(flo) +
         " hi=" + std::to_string(hi) + " f(hi)=" + std::to_string(fhi);
}

/// Evaluates f with the NaN guard every probe shares.
double probe(const std::function<double(double)>& f, double x, const char* who) {
  const double v = f(x);
  if (std::isnan(v)) {
    throw RobustError(ErrorCode::kNumericNonfinite, std::string(who) + ": f(x) is NaN",
                      "x=" + std::to_string(x));
  }
  return v;
}

/// Shared bracket validation: equal signs (or an injected bracket fault)
/// raise the typed kRootNotBracketed diagnostic.
void require_bracketed(const char* who, double lo, double flo, double hi, double fhi) {
  if ((flo > 0.0) == (fhi > 0.0) || robust::fault_fire(robust::FaultSite::kRootBracket)) {
    throw RobustError(ErrorCode::kRootNotBracketed, std::string(who) + ": root not bracketed",
                      bracket_context(lo, flo, hi, fhi));
  }
}

/// Flushes an iteration tally to a named counter on scope exit, so every
/// return path (convergence, float exhaustion, budget fallback) records the
/// work done.  Iteration counts are seed-deterministic, which makes them the
/// bench ledger's noise-free regression signal (src/obs/perf/).
struct IterationTally {
  const char* name;
  std::int64_t n = 0;
  ~IterationTally() {
    // shard_aware_add: under a sweep shard (src/obs/shard_scope.h) the tally
    // lands in the shard's delta map, like every OBS_COUNT site.
    if (n > 0 && obs::metrics_enabled()) obs::shard_aware_add(name, n);
  }
};

}  // namespace

double bisect(const std::function<double(double)>& f, double lo, double hi, double tol) {
  double flo = probe(f, lo, "bisect");
  double fhi = probe(f, hi, "bisect");
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  require_bracketed("bisect", lo, flo, hi, fhi);
  IterationTally iters{"numerics.roots.bisect_iters"};
  while (hi - lo > tol * std::max(1.0, std::abs(lo) + std::abs(hi))) {
    ++iters.n;
    const double mid = 0.5 * (lo + hi);
    if (mid == lo || mid == hi) break;  // float exhaustion
    const double fm = probe(f, mid, "bisect");
    if (fm == 0.0) return mid;
    if ((fm > 0.0) == (fhi > 0.0)) {
      hi = mid;
      fhi = fm;
    } else {
      lo = mid;
      flo = fm;
    }
  }
  return 0.5 * (lo + hi);
}

double brent(const std::function<double(double)>& f, double lo, double hi, double tol,
             int max_iter) {
  double a = lo, b = hi;
  double fa = probe(f, a, "brent"), fb = probe(f, b, "brent");
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  require_bracketed("brent", a, fa, b, fb);
  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a, fc = fa;
  bool mflag = true;
  double d = 0.0;
  IterationTally iters{"numerics.roots.brent_iters"};
  for (int i = 0; i < max_iter; ++i) {
    if (fb == 0.0 || std::abs(b - a) < tol * std::max(1.0, std::abs(b))) return b;
    ++iters.n;
    double s;
    if (fa != fc && fb != fc) {
      // inverse quadratic interpolation
      s = a * fb * fc / ((fa - fb) * (fa - fc)) + b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      s = b - fb * (b - a) / (fb - fa);  // secant
    }
    const double lo_b = (3.0 * a + b) / 4.0;
    const bool cond1 = !((s > std::min(lo_b, b) && s < std::max(lo_b, b)));
    const bool cond2 = mflag && std::abs(s - b) >= std::abs(b - c) / 2.0;
    const bool cond3 = !mflag && std::abs(s - b) >= std::abs(c - d) / 2.0;
    const bool cond4 = mflag && std::abs(b - c) < tol;
    const bool cond5 = !mflag && std::abs(c - d) < tol;
    if (cond1 || cond2 || cond3 || cond4 || cond5) {
      s = 0.5 * (a + b);
      mflag = true;
    } else {
      mflag = false;
    }
    const double fs = probe(f, s, "brent");
    d = c;
    c = b;
    fc = fb;
    if ((fa > 0.0) != (fs > 0.0)) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
  }
  // Iteration budget exhausted: [a, b] still brackets the root (the update
  // rule preserves opposite signs), so degrade to plain bisection on it
  // rather than surfacing kNoConvergence.
  OBS_COUNT("numerics.roots.brent_fallbacks", 1);
  return bisect(f, std::min(a, b), std::max(a, b), tol);
}

double find_root_increasing(const std::function<double(double)>& f, double lo, double hi0,
                            double tol, int max_expansions) {
  double hi = hi0;
  const double flo = probe(f, lo, "find_root_increasing");
  if (flo > 0.0) {
    throw RobustError(ErrorCode::kRootNotBracketed, "find_root_increasing: f(lo) > 0",
                      "lo=" + std::to_string(lo) + " f(lo)=" + std::to_string(flo));
  }
  int expansions = 0;
  double fhi = probe(f, hi, "find_root_increasing");
  while (fhi < 0.0 || robust::fault_fire(robust::FaultSite::kRootBracket)) {
    if (++expansions > max_expansions) {
      OBS_COUNT("numerics.roots.expansion_cap_hits", 1);
      throw RobustError(ErrorCode::kRootNotBracketed,
                        "find_root_increasing: no sign change within expansion cap",
                        "expansions=" + std::to_string(expansions - 1) + " " +
                            bracket_context(lo, flo, hi, fhi));
    }
    hi *= 2.0;
    fhi = probe(f, hi, "find_root_increasing");
  }
  OBS_COUNT("numerics.roots.expansions", expansions);
  return brent(f, lo, hi, tol);
}

}  // namespace speedscale::numerics
