#include "src/numerics/roots.h"

#include <cmath>
#include <stdexcept>

namespace speedscale::numerics {

double bisect(const std::function<double(double)>& f, double lo, double hi, double tol) {
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo > 0.0) == (fhi > 0.0)) {
    throw std::invalid_argument("bisect: root not bracketed");
  }
  while (hi - lo > tol * std::max(1.0, std::abs(lo) + std::abs(hi))) {
    const double mid = 0.5 * (lo + hi);
    if (mid == lo || mid == hi) break;  // float exhaustion
    const double fm = f(mid);
    if (fm == 0.0) return mid;
    if ((fm > 0.0) == (fhi > 0.0)) {
      hi = mid;
      fhi = fm;
    } else {
      lo = mid;
      flo = fm;
    }
  }
  return 0.5 * (lo + hi);
}

double brent(const std::function<double(double)>& f, double lo, double hi, double tol,
             int max_iter) {
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  if ((fa > 0.0) == (fb > 0.0)) throw std::invalid_argument("brent: root not bracketed");
  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a, fc = fa;
  bool mflag = true;
  double d = 0.0;
  for (int i = 0; i < max_iter; ++i) {
    if (fb == 0.0 || std::abs(b - a) < tol * std::max(1.0, std::abs(b))) return b;
    double s;
    if (fa != fc && fb != fc) {
      // inverse quadratic interpolation
      s = a * fb * fc / ((fa - fb) * (fa - fc)) + b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      s = b - fb * (b - a) / (fb - fa);  // secant
    }
    const double lo_b = (3.0 * a + b) / 4.0;
    const bool cond1 = !((s > std::min(lo_b, b) && s < std::max(lo_b, b)));
    const bool cond2 = mflag && std::abs(s - b) >= std::abs(b - c) / 2.0;
    const bool cond3 = !mflag && std::abs(s - b) >= std::abs(c - d) / 2.0;
    const bool cond4 = mflag && std::abs(b - c) < tol;
    const bool cond5 = !mflag && std::abs(c - d) < tol;
    if (cond1 || cond2 || cond3 || cond4 || cond5) {
      s = 0.5 * (a + b);
      mflag = true;
    } else {
      mflag = false;
    }
    const double fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if ((fa > 0.0) != (fs > 0.0)) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
  }
  return b;
}

double find_root_increasing(const std::function<double(double)>& f, double lo, double hi0,
                            double tol) {
  double hi = hi0;
  double flo = f(lo);
  if (flo > 0.0) throw std::invalid_argument("find_root_increasing: f(lo) > 0");
  int guard = 0;
  while (f(hi) < 0.0) {
    hi *= 2.0;
    if (++guard > 200) throw std::runtime_error("find_root_increasing: no sign change found");
  }
  return brent(f, lo, hi, tol);
}

}  // namespace speedscale::numerics
