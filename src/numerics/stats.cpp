#include "src/numerics/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace speedscale::numerics {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double fit_log_log_slope(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("fit_log_log_slope: need >= 2 matched points");
  }
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  const double n = static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

double quantile(std::vector<double> data, double q) {
  if (data.empty()) throw std::invalid_argument("quantile: empty data");
  std::sort(data.begin(), data.end());
  const double pos = q * static_cast<double>(data.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, data.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return data[lo] * (1.0 - frac) + data[hi] * frac;
}

}  // namespace speedscale::numerics
