// Scalar ODE integration with event localization.
//
// The generic engine (src/sim/numeric_engine.h) evolves the weight state
// dW/dt = -rho * P^{-1}(W) for arbitrary convex power functions, where no
// closed form exists.  This module provides:
//   * classic RK4 steps,
//   * an adaptive driver (step doubling with Richardson error control),
//   * event localization: advance until a monotone event function crosses 0.
#pragma once

#include <functional>

namespace speedscale::numerics {

/// dy/dt = f(t, y).
using OdeRhs = std::function<double(double t, double y)>;

/// One classic RK4 step of size h from (t, y).
double rk4_step(const OdeRhs& f, double t, double y, double h);

/// Adaptive integration of y' = f from (t0, y0) to t1 using step doubling:
/// each step is accepted when |y_two_halves - y_full| <= tol * scale.
/// Returns y(t1).
double integrate(const OdeRhs& f, double t0, double y0, double t1, double rel_tol = 1e-10,
                 double h_init = 0.0);

/// Result of an event-terminated integration.
struct EventResult {
  double t = 0.0;        ///< time reached (event time or t_max)
  double y = 0.0;        ///< state at `t`
  bool event_hit = false;
};

/// Integrates y' = f from (t0, y0) forward until either `event(t, y)` crosses
/// from positive to <= 0, or t reaches t_max.  `event` must be continuous and
/// is localized by bisection within the crossing step to `rel_tol`.
EventResult integrate_until(const OdeRhs& f, double t0, double y0, double t_max,
                            const std::function<double(double, double)>& event,
                            double rel_tol = 1e-10);

}  // namespace speedscale::numerics
