// Small statistics helpers used by the analysis harness and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace speedscale::numerics {

/// Welford-style running summary: count/mean/min/max/stddev.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Least-squares fit of log(y) = c + e * log(x); returns the exponent e.
/// Used to recover the Omega(k^{1-1/alpha}) growth rate of the Section 6
/// lower bound from measured ratios.
double fit_log_log_slope(const std::vector<double>& x, const std::vector<double>& y);

/// Simple quantile of a copy of the data (q in [0, 1], linear interpolation).
double quantile(std::vector<double> data, double q);

}  // namespace speedscale::numerics
