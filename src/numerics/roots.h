// Scalar root finding: bisection and Brent's method.
//
// Used for inverting general power functions (P^{-1}), localizing events in
// the numeric ODE engine, and solving the transcendental horizon equation of
// the single-job offline optimum.
//
// Failure contract (docs/robustness.md): all failures are typed
// robust::RobustError diagnostics —
//   * kRootNotBracketed — the bracket never straddles a sign change
//     (including when geometric re-expansion hits its cap);
//   * kNumericNonfinite — f returned NaN at a probe point;
//   * kNoConvergence    — never surfaced by brent: on iteration exhaustion
//     it *degrades* to bisection on the current bracket (counted under
//     "numerics.roots.brent_fallbacks") instead of failing.
#pragma once

#include <functional>

namespace speedscale::numerics {

/// Plain bisection on [lo, hi].  Requires f(lo) and f(hi) of opposite sign
/// (or one of them zero).  Returns a point x with |interval| <= tol or
/// f(x) == 0.  Throws robust::RobustError(kRootNotBracketed) otherwise.
double bisect(const std::function<double(double)>& f, double lo, double hi, double tol);

/// Brent's method: inverse-quadratic interpolation with bisection fallback.
/// Same contract as bisect(), typically ~10x fewer evaluations.  If the
/// iteration budget runs out before the tolerance is met, falls back to
/// plain bisection on the (always valid) current bracket — graceful
/// degradation, not an exception.
double brent(const std::function<double(double)>& f, double lo, double hi, double tol,
             int max_iter = 200);

/// Expands [lo, hi] geometrically upward until f changes sign, then calls
/// brent.  Requires f(lo) <= 0 and f eventually positive.  The expansion is
/// capped at `max_expansions` doublings (~1e18 growth at the default); a cap
/// hit throws robust::RobustError(kRootNotBracketed) whose context reports
/// the final bracket, instead of growing without bound.
double find_root_increasing(const std::function<double(double)>& f, double lo, double hi0,
                            double tol, int max_expansions = 60);

}  // namespace speedscale::numerics
