// Scalar root finding: bisection and Brent's method.
//
// Used for inverting general power functions (P^{-1}), localizing events in
// the numeric ODE engine, and solving the transcendental horizon equation of
// the single-job offline optimum.
#pragma once

#include <functional>

namespace speedscale::numerics {

/// Plain bisection on [lo, hi].  Requires f(lo) and f(hi) of opposite sign
/// (or one of them zero).  Returns a point x with |interval| <= tol or
/// f(x) == 0.  Throws std::invalid_argument if the root is not bracketed.
double bisect(const std::function<double(double)>& f, double lo, double hi, double tol);

/// Brent's method: inverse-quadratic interpolation with bisection fallback.
/// Same contract as bisect(), typically ~10x fewer evaluations.
double brent(const std::function<double(double)>& f, double lo, double hi, double tol,
             int max_iter = 200);

/// Expands [lo, hi] geometrically upward until f changes sign, then calls
/// brent.  Requires f(lo) <= 0 and f eventually positive.
double find_root_increasing(const std::function<double(double)>& f, double lo, double hi0,
                            double tol);

}  // namespace speedscale::numerics
