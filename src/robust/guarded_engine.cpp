#include "src/robust/guarded_engine.h"

#include <functional>
#include <optional>
#include <utility>

#include "src/obs/metrics_registry.h"
#include "src/obs/shard_scope.h"
#include "src/obs/trace.h"

namespace speedscale::robust {

namespace {

/// Shared retry ladder: run `attempt_fn` with doubled substeps per rung,
/// validate with `check_fn`, collect diagnostics, classify the outcome.
RunOutcome<SampledRun> guarded_ladder(
    const GuardedNumericOptions& options,
    const std::function<SampledRun(const NumericConfig&)>& attempt_fn,
    const std::function<InvariantReport(const SampledRun&, const NumericConfig&)>& check_fn) {
  RunOutcome<SampledRun> out;
  OBS_COUNT("robust.guard.runs", 1);
  NumericConfig cfg = options.base;
  const int max_attempts = std::max(1, options.max_attempts);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    out.attempts = attempt + 1;
    if (attempt > 0) {
      cfg.substeps_per_interval *= 2;
      OBS_COUNT("robust.retry.attempts", 1);
      TRACE_EVENT(.kind = obs::EventKind::kPhaseBoundary, .t = 0.0,
                  .value = static_cast<double>(attempt),
                  .aux = static_cast<double>(cfg.substeps_per_interval),
                  .label = "robust.retry");
    }
    // Each attempt runs inside its own metrics shard so the deterministic
    // work counters (ODE substeps, root iterations, ...) of a *rejected*
    // attempt never reach the main ledger — previously a retried substep was
    // counted once per rung, skewing BENCH ledgers under fault injection.
    // Only the accepted attempt's deltas merge back ("committed"); every
    // attempt also tallies into the attempted total so retry cost stays
    // visible.  Control-plane counters (guard.runs/trips, retry.*) live
    // outside the shard by design.
    std::optional<SampledRun> run;
    InvariantReport report;
    std::optional<Diagnostic> thrown;
    std::int64_t units = 0;
    {
      obs::ShardMetricsScope attempt_work;
      try {
        run = attempt_fn(cfg);
        report = check_fn(*run, cfg);
      } catch (const RobustError& e) {
        thrown = e.diagnostic();
      } catch (const std::exception& e) {
        thrown = Diagnostic{ErrorCode::kNoConvergence,
                            std::string("engine attempt threw: ") + e.what()};
      }
      attempt_work.stop();
      for (const auto& [name, v] : attempt_work.counters()) units += v;
      if (!thrown && report.ok()) attempt_work.merge_into_parent();
    }
    OBS_COUNT("robust.work.attempted_units", units);
    if (!thrown && report.ok()) {
      OBS_COUNT("robust.work.committed_units", units);
      out.status = (attempt == 0 && out.diagnostics.empty()) ? RunStatus::kOk
                                                             : RunStatus::kDegraded;
      out.value = std::move(*run);
      if (out.status == RunStatus::kDegraded) OBS_COUNT("robust.retry.recoveries", 1);
      return out;
    }
    OBS_COUNT("robust.guard.trips", 1);
    if (thrown) {
      out.diagnostics.push_back(std::move(*thrown));
    } else {
      for (Diagnostic& d : report.breaches) out.diagnostics.push_back(std::move(d));
    }
  }
  out.status = RunStatus::kFailed;
  OBS_COUNT("robust.retry.exhausted", 1);
  return out;
}

}  // namespace

RunOutcome<SampledRun> run_generic_c_guarded(const Instance& instance,
                                             const PowerFunction& power,
                                             const GuardedNumericOptions& options) {
  InvariantOptions inv;
  inv.kind = RunKind::kAlgorithmC;
  inv.identity_tol = options.identity_tol;
  inv.alpha = options.alpha;
  return guarded_ladder(
      options, [&](const NumericConfig& cfg) { return run_generic_c(instance, power, cfg); },
      [&](const SampledRun& run, const NumericConfig& cfg) {
        InvariantOptions o = inv;
        o.completion_rel_eps = cfg.completion_rel_eps;
        return check_sampled_run(instance, run, o);
      });
}

RunOutcome<SampledRun> run_generic_nc_uniform_guarded(const Instance& instance,
                                                      const PowerFunction& power,
                                                      const GuardedNumericOptions& options) {
  // Lemma 3 needs a trustworthy clairvoyant reference on the same instance;
  // guard it first (its own events stay suppressed as a virtual run).
  RunOutcome<SampledRun> ref = [&] {
    obs::TraceSuppressGuard suppress_virtual_run;
    return run_generic_c_guarded(instance, power, options);
  }();
  if (!ref.ok()) {
    RunOutcome<SampledRun> out;
    out.status = RunStatus::kFailed;
    out.attempts = ref.attempts;
    out.diagnostics.push_back(Diagnostic{ErrorCode::kInvariantBreach,
                                         "reference Algorithm C run failed"});
    for (Diagnostic& d : ref.diagnostics) out.diagnostics.push_back(std::move(d));
    return out;
  }

  InvariantOptions inv;
  inv.kind = RunKind::kAlgorithmNC;
  inv.identity_tol = options.identity_tol;
  inv.alpha = options.alpha;
  inv.reference_c = &*ref.value;
  RunOutcome<SampledRun> out = guarded_ladder(
      options,
      [&](const NumericConfig& cfg) { return run_generic_nc_uniform(instance, power, cfg); },
      [&](const SampledRun& run, const NumericConfig& cfg) {
        InvariantOptions o = inv;
        o.completion_rel_eps = cfg.completion_rel_eps;
        return check_sampled_run(instance, run, o);
      });
  // A degraded reference degrades the overall outcome even if NC was clean.
  if (out.status == RunStatus::kOk && ref.status == RunStatus::kDegraded) {
    out.status = RunStatus::kDegraded;
    for (Diagnostic& d : ref.diagnostics) out.diagnostics.push_back(std::move(d));
  }
  return out;
}

}  // namespace speedscale::robust
