#include "src/robust/invariants.h"

#include <cmath>
#include <string>

#include "src/obs/metrics_registry.h"

namespace speedscale::robust {

namespace {

void breach(InvariantReport& report, ErrorCode code, std::string message,
            std::string context = {}) {
  report.breaches.push_back(Diagnostic{code, std::move(message), std::move(context)});
  if (obs::metrics_enabled()) {
    obs::registry()
        .counter(std::string("robust.invariants.breach.") + error_code_name(code))
        .add(1);
  }
}

}  // namespace

std::string InvariantReport::to_string() const {
  std::string out;
  for (const Diagnostic& d : breaches) {
    if (!out.empty()) out += "; ";
    out += d.to_string();
  }
  return out.empty() ? "ok" : out;
}

InvariantReport check_sampled_run(const Instance& instance, const SampledRun& run,
                                  const InvariantOptions& options) {
  InvariantReport report;
  OBS_COUNT("robust.invariants.checks", 1);

  // --- Structural: sample arrays --------------------------------------------
  if (run.t.size() != run.speed.size() || run.t.size() != run.weight.size()) {
    breach(report, ErrorCode::kInvariantBreach, "sample arrays have mismatched lengths",
           "t=" + std::to_string(run.t.size()) + " speed=" + std::to_string(run.speed.size()) +
               " weight=" + std::to_string(run.weight.size()));
    return report;  // indices below would be meaningless
  }
  for (std::size_t i = 0; i < run.t.size(); ++i) {
    if (!std::isfinite(run.t[i]) || !std::isfinite(run.speed[i]) ||
        !std::isfinite(run.weight[i])) {
      breach(report, ErrorCode::kNumericNonfinite, "non-finite sample",
             "index " + std::to_string(i) + ", t=" + std::to_string(run.t[i]));
      break;  // one locus suffices; downstream values are all suspect
    }
    if (i > 0 && run.t[i] < run.t[i - 1]) {
      breach(report, ErrorCode::kInvariantBreach, "sample times decrease",
             "index " + std::to_string(i));
      break;
    }
    if (run.speed[i] < 0.0) {
      breach(report, ErrorCode::kInvariantBreach, "negative speed",
             "index " + std::to_string(i));
      break;
    }
  }

  // --- Structural: objectives ----------------------------------------------
  for (const auto& [name, v] :
       {std::pair<const char*, double>{"energy", run.energy},
        {"fractional_flow", run.fractional_flow},
        {"integral_flow", run.integral_flow}}) {
    if (!std::isfinite(v)) {
      breach(report, ErrorCode::kNumericNonfinite, std::string("non-finite ") + name);
    } else if (v < 0.0) {
      breach(report, ErrorCode::kInvariantBreach, std::string("negative ") + name);
    }
  }

  // --- Structural: completions ---------------------------------------------
  for (const Job& j : instance.jobs()) {
    const auto it = run.completions.find(j.id);
    if (it == run.completions.end()) {
      breach(report, ErrorCode::kInvariantBreach, "job never completed",
             "job " + std::to_string(j.id));
      continue;
    }
    if (!std::isfinite(it->second)) {
      breach(report, ErrorCode::kNumericNonfinite, "non-finite completion time",
             "job " + std::to_string(j.id));
    } else if (it->second < j.release - options.completion_slack) {
      breach(report, ErrorCode::kInvariantBreach, "completion precedes release",
             "job " + std::to_string(j.id));
    }
  }
  if (!report.breaches.empty()) return report;  // identities need clean numbers

  // --- Identities ------------------------------------------------------------
  if (options.kind == RunKind::kAlgorithmC) {
    report.identity_residual =
        std::abs(run.energy - run.fractional_flow) / std::max(1.0, run.energy);
    if (report.identity_residual > options.identity_tol) {
      breach(report, ErrorCode::kInvariantBreach,
             "Algorithm C energy != fractional flow",
             "residual " + std::to_string(report.identity_residual));
    }
  }
  if (options.kind == RunKind::kAlgorithmNC && options.reference_c != nullptr) {
    const double e_ref = options.reference_c->energy;
    report.lemma3_residual = std::abs(run.energy - e_ref) / std::max(1.0, e_ref);
    if (report.lemma3_residual > options.identity_tol) {
      breach(report, ErrorCode::kInvariantBreach, "Lemma 3 energy equality violated",
             "residual " + std::to_string(report.lemma3_residual));
    }
  }
  if (options.kind == RunKind::kAlgorithmNC && options.alpha.has_value()) {
    const double expected = run.energy / (1.0 - 1.0 / *options.alpha);
    report.lemma4_residual =
        std::abs(run.fractional_flow - expected) / std::max(1.0, run.fractional_flow);
    // Energy converges at the completion epsilon itself but the flow tail is
    // cut at Theta(eps^{1-1/alpha}), so the identity carries that bias no
    // matter how many substeps the retry ladder adds.
    const double truncation =
        20.0 * std::pow(options.completion_rel_eps, 1.0 - 1.0 / *options.alpha);
    if (report.lemma4_residual > options.identity_tol + truncation) {
      breach(report, ErrorCode::kInvariantBreach, "Lemma 4 flow ratio violated",
             "residual " + std::to_string(report.lemma4_residual));
    }
  }
  return report;
}

}  // namespace speedscale::robust
