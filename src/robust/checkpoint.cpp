#include "src/robust/checkpoint.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "src/obs/log/logger.h"
#include "src/obs/metrics_registry.h"
#include "src/robust/diagnostics.h"

namespace speedscale::robust {

namespace {

/// Parses `"key":` at/after `pos` and the double following it.  Returns
/// false on any mismatch (the caller then discards the line).
bool parse_keyed_double(const std::string& line, const char* key, std::size_t& pos,
                        double& out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = line.find(needle, pos);
  if (at == std::string::npos) return false;
  const char* start = line.c_str() + at + needle.size();
  char* end = nullptr;
  out = std::strtod(start, &end);
  if (end == start || !std::isfinite(out)) return false;
  pos = static_cast<std::size_t>(end - line.c_str());
  return true;
}

bool parse_line(const std::string& line, SearchCheckpoint& cp) {
  std::size_t pos = 0;
  double round_d = 0.0;
  if (!parse_keyed_double(line, "round", pos, round_d)) return false;
  if (round_d < 0.0 || round_d != std::floor(round_d)) return false;
  if (!parse_keyed_double(line, "step", pos, cp.step)) return false;
  if (!parse_keyed_double(line, "ratio", pos, cp.ratio)) return false;
  if (cp.step <= 0.0 || cp.ratio < 0.0) return false;
  const std::size_t open = line.find("\"x\":[", pos);
  if (open == std::string::npos) return false;
  const std::size_t close = line.find(']', open);
  if (close == std::string::npos) return false;  // torn mid-array
  cp.x.clear();
  const char* p = line.c_str() + open + 5;
  const char* stop = line.c_str() + close;
  while (p < stop) {
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    if (end == p || !std::isfinite(v)) return false;
    cp.x.push_back(v);
    p = end;
    while (p < stop && (*p == ',' || *p == ' ')) ++p;
  }
  cp.next_round = static_cast<int>(round_d);
  return !cp.x.empty();
}

}  // namespace

void append_search_checkpoint(const std::string& path, const SearchCheckpoint& cp) {
  std::ofstream f(path, std::ios::app);
  if (!f) throw RobustError(ErrorCode::kIoMalformed, "cannot open checkpoint", path);
  std::ostringstream line;
  line << std::setprecision(17);
  line << "{\"round\":" << cp.next_round << ",\"step\":" << cp.step
       << ",\"ratio\":" << cp.ratio << ",\"x\":[";
  for (std::size_t i = 0; i < cp.x.size(); ++i) {
    if (i > 0) line << ',';
    line << cp.x[i];
  }
  line << "]}\n";
  f << line.str();
  f.flush();
  if (!f) throw RobustError(ErrorCode::kIoMalformed, "checkpoint write failed", path);
}

std::optional<SearchCheckpoint> load_search_checkpoint(const std::string& path,
                                                       std::size_t* skipped_lines) {
  if (skipped_lines) *skipped_lines = 0;
  std::ifstream f(path);
  if (!f) return std::nullopt;
  std::optional<SearchCheckpoint> best;
  std::string line;
  std::size_t skipped = 0;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    SearchCheckpoint cp;
    if (parse_line(line, cp)) {
      best = std::move(cp);
    } else {
      ++skipped;
    }
  }
  if (skipped > 0) {
    // Torn/corrupt lines are expected after a crash (the append is flushed
    // per line, so at most the tail is torn) but must never be *silent*: a
    // resumed run surfaces how much it discarded, both as a counter and on
    // stderr, so a checkpoint file rotting line-by-line is visible long
    // before the search itself misbehaves.  The count goes straight to the
    // registry (not OBS_COUNT): recovery bookkeeping must not divert into an
    // active shard scope and perturb per-item counter deltas.
    obs::registry().counter("robust.checkpoint.torn_lines").add(
        static_cast<std::int64_t>(skipped));
    // Structured (speedscale.log/1) with the stderr mirror preserving the
    // human-readable WARN line behind the logger's verbosity threshold.
    obs::log::warn("robust", "skipped torn checkpoint line(s)",
                   {obs::log::kv("lines", skipped), obs::log::kv("path", path)});
  }
  if (skipped_lines) *skipped_lines = skipped;
  return best;
}

}  // namespace speedscale::robust
