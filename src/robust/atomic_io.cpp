#include "src/robust/atomic_io.h"

#include <cstdio>
#include <fstream>

#include "src/robust/diagnostics.h"

namespace speedscale::robust {

std::string tmp_sibling(const std::string& path) { return path + ".tmp"; }

void commit_tmp_file(const std::string& tmp_path, const std::string& path) {
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    throw RobustError(ErrorCode::kIoMalformed, "atomic rename failed",
                      tmp_path + " -> " + path);
  }
}

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
  const std::string tmp = tmp_sibling(path);
  {
    std::ofstream f(tmp, std::ios::trunc);
    if (!f) throw RobustError(ErrorCode::kIoMalformed, "cannot open temporary", tmp);
    writer(f);
    f.flush();
    if (!f) {
      f.close();
      std::remove(tmp.c_str());
      throw RobustError(ErrorCode::kIoMalformed, "write failed", tmp);
    }
  }
  commit_tmp_file(tmp, path);
}

}  // namespace speedscale::robust
