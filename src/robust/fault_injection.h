// Deterministic fault injection for the numeric stack.
//
// Every guard in this library (NaN detection in the ODE engine, bracket
// recovery in the root finders, exception capture in the thread pool, the
// strict/lenient trace reader) is exercised by *injected* faults, so the
// degradation paths are tested code, not dead code.  Faults are planned, not
// random-at-runtime: a FaultPlan names, per site, the exact call indices at
// which the fault fires (optionally derived from a seed), so a failing test
// reproduces bit-for-bit.
//
// Production cost: each site is one inlined relaxed atomic load when no plan
// is installed — the same discipline as TRACE_EVENT / OBS_COUNT.
//
// Thread-safety: installation/removal is exclusive with concurrently running
// sites (mutex + per-site atomic call counters); tests install a plan,
// run the workload, then let the ScopedFaultPlan uninstall.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace speedscale::robust {

/// Where a fault can be injected.  Keep in sync with fault_site_name().
enum class FaultSite : std::uint8_t {
  kOdeSubstepNaN,   ///< numeric engine: poison one RK4 substep with NaN
  kRootBracket,     ///< root finders: pretend the bracket has equal signs
  kTraceLine,       ///< trace writer: truncate/corrupt one CSV line
  kPoolTask,        ///< thread pool: throw from one task body
  kSweepItemStall,  ///< sweep scheduler: stall one item (straggler tests)
  kWorkerCrashMidShard,  ///< fleet worker: SIGKILL itself before committing an item
  kCheckpointTornTail,   ///< shard log: tear the line being appended, then die
  kHeartbeatStall,       ///< fleet worker: stop heartbeating (hang simulation)
  kSiteCount,       // sentinel
};

[[nodiscard]] const char* fault_site_name(FaultSite site);

/// Inverse of fault_site_name(), for CLI fault plans ("--fault site@index"
/// on sweep_worker); nullopt when the name matches no site.
[[nodiscard]] std::optional<FaultSite> fault_site_by_name(const std::string& name);

inline constexpr std::size_t kFaultSiteCount =
    static_cast<std::size_t>(FaultSite::kSiteCount);

/// Which call indices (0-based, per site) fire.  Built explicitly or derived
/// from a seed (seed_faults), never from ambient randomness.
struct FaultPlan {
  std::set<std::uint64_t> fire_at[kFaultSiteCount];

  FaultPlan& fire(FaultSite site, std::initializer_list<std::uint64_t> indices) {
    auto& s = fire_at[static_cast<std::size_t>(site)];
    s.insert(indices.begin(), indices.end());
    return *this;
  }
  [[nodiscard]] bool empty() const {
    for (const auto& s : fire_at) {
      if (!s.empty()) return false;
    }
    return true;
  }
};

/// Derives a plan firing `count` pseudo-random indices in [0, range) at
/// `site` from `seed` (splitmix64).  Deterministic across platforms.
[[nodiscard]] FaultPlan seed_faults(std::uint64_t seed, FaultSite site, int count,
                                    std::uint64_t range);

namespace detail {
inline std::atomic<bool> g_faults_enabled{false};
}  // namespace detail

/// One relaxed load; true only while a plan is installed.
[[nodiscard]] inline bool faults_enabled() noexcept {
  return detail::g_faults_enabled.load(std::memory_order_relaxed);
}

/// Process-wide injector.  All methods are thread-safe.
class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Installs `plan` and resets all call/fire counters.
  void install(FaultPlan plan);
  /// Uninstalls any plan (sites return to the single-load fast path).
  void clear();

  /// Records one arrival at `site` and reports whether the fault fires
  /// there.  Called through fault_fire(); O(log plan size) when installed.
  [[nodiscard]] bool should_fire(FaultSite site);

  /// Counters since the last install() — how many times the site was
  /// reached / actually fired.  For asserting coverage in tests.
  [[nodiscard]] std::uint64_t calls(FaultSite site) const;
  [[nodiscard]] std::uint64_t fired(FaultSite site) const;

 private:
  FaultInjector() = default;
  mutable std::mutex mu_;
  FaultPlan plan_;
  std::atomic<std::uint64_t> calls_[kFaultSiteCount] = {};
  std::atomic<std::uint64_t> fired_[kFaultSiteCount] = {};
};

/// Site check: false (one relaxed load) unless a plan is installed.
[[nodiscard]] inline bool fault_fire(FaultSite site) {
  if (!faults_enabled()) return false;
  return FaultInjector::instance().should_fire(site);
}

/// RAII plan installation for tests: installs on construction, clears on
/// destruction (also restoring the metrics the injector bumps).
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan) { FaultInjector::instance().install(std::move(plan)); }
  ~ScopedFaultPlan() { FaultInjector::instance().clear(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace speedscale::robust
