// Per-shard result logs and heartbeat files: the fleet's coordination
// substrate.
//
// A worker owns one append-only JSONL log.  Each completed item appends one
// self-contained line — item index, wall time, the point's serialized
// artifact fragments, and the item's private counter delta — flushed before
// the next item starts, so a SIGKILL loses at most the line being written.
// The loader is lenient in exactly the robust::checkpoint way: torn/corrupt
// lines are skipped *and counted* (surfaced as robust.checkpoint.torn_lines
// plus a stderr WARN), valid lines win by item index.  Resume is therefore
// "read own log, skip done items" — no supervisor round-trip needed.
//
// Heartbeat files are whole-file atomic writes (tmp + rename): the
// supervisor polls them for liveness and never reads a torn heartbeat.  The
// watchdog deadline applied to a stale heartbeat reuses the straggler math
// from src/obs/live/straggler.h.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <optional>
#include <string>

namespace speedscale::robust::supervisor {

// Worker exit codes (distinct so the supervisor can tell a crash from a
// clean interruption from a permanent failure):
inline constexpr int kWorkerExitOk = 0;
/// Bad spec/arguments — retrying can never help; the supervisor aborts.
inline constexpr int kWorkerExitSpecError = 64;
/// An item failed deterministically (the serial run would fail too).
inline constexpr int kWorkerExitItemFailed = 65;
/// SIGTERM/SIGINT honored: the current item's line was flushed and the
/// shard is resumable.  (EX_TEMPFAIL: try again.)
inline constexpr int kWorkerExitInterrupted = 75;

/// One completed work item, as logged by a worker and merged by the
/// supervisor.
struct ItemResult {
  std::size_t index = 0;
  double wall_ns = 0.0;
  /// Cost-ledger attribution (PR 8): which (shard, incarnation) actually
  /// computed this item.  -1 on lines written before the fields existed —
  /// the loader defaults them, so old shard logs still resume.  Excluded
  /// from the merged suite artifacts, so the fleet-vs-serial byte-identity
  /// contract is untouched.
  long shard = -1;
  long incarnation = -1;
  /// Suite-point JSON fragment (analysis::suite_point_json); empty for
  /// pinned-bench items.
  std::string payload_json;
  /// The point's certificate stream slice (analysis::suite_point_cert_jsonl).
  std::string cert_jsonl;
  /// The item's private counter delta (obs::ShardMetricsScope capture).
  std::map<std::string, std::int64_t> counters;
};

/// Keeps a shard log open in append mode and writes one flushed line per
/// item.  Holding the stream across items matters for throughput: the fleet
/// overhead budget (EXPERIMENTS.md E24) does not allow an open/close per
/// item.  Honors the kCheckpointTornTail chaos site: when it fires, a prefix
/// of the line is written (no newline) and the process SIGKILLs itself — the
/// torn-tail crash the loader must survive.  Throws RobustError
/// (kIoMalformed) on open or write failure.
class ShardLogWriter {
 public:
  explicit ShardLogWriter(std::string path);
  void append(const ItemResult& result);

 private:
  std::string path_;
  std::ofstream file_;
};

/// One-shot convenience over ShardLogWriter (open, append, flush, close).
void append_item_result(const std::string& path, const ItemResult& result);

/// Loads every valid result line, keyed by item index (later lines win).
/// Missing file = empty map.  `skipped_lines`, when given, receives the
/// torn/corrupt line count (also counted as robust.checkpoint.torn_lines
/// and WARNed to stderr, mirroring load_search_checkpoint).
[[nodiscard]] std::map<std::size_t, ItemResult> load_shard_log(
    const std::string& path, std::size_t* skipped_lines = nullptr);

/// A worker's liveness beacon, rewritten atomically at every item boundary.
struct WorkerHeartbeat {
  long pid = 0;
  std::uint64_t seq = 0;           ///< bumps on every write
  std::int64_t items_done = 0;     ///< completed by this incarnation
  std::int64_t current_item = -1;  ///< in-flight item index; -1 when idle
  double busy_seconds = 0.0;       ///< summed completed-item wall time
  /// Wall time of the most recently completed item (ms); 0 before the
  /// first.  Feeds the supervisor's fleet.item_wall_ms latency histogram —
  /// one observation per heartbeat seq advance, so the fleet's p50/p95/p99
  /// are scrapeable mid-run without touching any deterministic artifact.
  double last_wall_ms = 0.0;
  bool done = false;  ///< shard finished cleanly
};

/// Atomic heartbeat write (readers never see a torn file).
void write_heartbeat(const std::string& path, const WorkerHeartbeat& hb);
/// nullopt when the file is missing or malformed (a write was never
/// completed); malformed heartbeats are not an error — the supervisor just
/// sees "no progress yet".
[[nodiscard]] std::optional<WorkerHeartbeat> read_heartbeat(const std::string& path);

}  // namespace speedscale::robust::supervisor
