#include "src/robust/supervisor/supervisor.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "src/obs/fleet/fleet_trace.h"
#include "src/obs/live/straggler.h"
#include "src/obs/log/logger.h"
#include "src/obs/metrics_registry.h"
#include "src/robust/atomic_io.h"
#include "src/robust/diagnostics.h"
#include "src/robust/supervisor/item_runner.h"

namespace speedscale::robust::supervisor {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point then, Clock::time_point now) {
  return std::chrono::duration<double>(now - then).count();
}

/// fork + execv.  The child calls only async-signal-safe functions between
/// fork and exec (the supervisor may be running with sampler threads —
/// TelemetryHub — so the child's view of the heap is not trustworthy).
long spawn_process(std::vector<std::string> argv_strings) {
  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (std::string& s : argv_strings) argv.push_back(s.data());
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw RobustError(ErrorCode::kTaskFailed, "fork failed", std::strerror(errno));
  }
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    ::_exit(127);  // exec failure: reported to the supervisor as exit 127
  }
  return static_cast<long>(pid);
}

}  // namespace

Supervisor::Supervisor(FleetWorkSpec spec, FleetOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {
  if (options_.worker_binary.empty()) {
    throw RobustError(ErrorCode::kIoMalformed, "fleet: worker_binary is required");
  }
  if (options_.work_dir.empty()) {
    throw RobustError(ErrorCode::kIoMalformed, "fleet: work_dir is required");
  }
  if (spec_.shards == 0) spec_.shards = 1;
  spec_path_ = options_.work_dir + "/spec.json";
  state_path_ =
      options_.state_path.empty() ? options_.work_dir + "/fleet_state.json" : options_.state_path;
  run_id_ = options_.obs.run_id.empty() ? "fleet" : options_.obs.run_id;
}

Supervisor::~Supervisor() { kill_all(); }

std::string Supervisor::shard_log_path(std::size_t shard) const {
  return options_.work_dir + "/shard_" + std::to_string(shard) + ".jsonl";
}

std::string Supervisor::heartbeat_path(std::size_t shard) const {
  return options_.work_dir + "/heartbeat_" + std::to_string(shard) + ".json";
}

std::string Supervisor::events_path(std::size_t shard) const {
  return options_.work_dir + "/events_" + std::to_string(shard) + ".jsonl";
}

std::string Supervisor::worker_log_path(std::size_t shard) const {
  return options_.work_dir + "/log_" + std::to_string(shard) + ".jsonl";
}

void Supervisor::journal(obs::fleet::FleetEventKind kind, long shard, long incarnation,
                         const std::string& detail) {
  if (!events_) return;
  obs::fleet::FleetEvent ev;
  ev.kind = kind;
  ev.ts = event_clock_.next();
  ev.run_id = run_id_;
  ev.shard = shard;
  ev.incarnation = incarnation;
  ev.detail = detail;
  events_->append(ev);
}

void Supervisor::merge_observability(FleetResult& result) {
  if (!options_.obs.enabled) return;
  const std::string trace_path = options_.obs.trace_path.empty()
                                     ? options_.work_dir + "/fleet_trace.json"
                                     : options_.obs.trace_path;
  const std::string log_path = options_.obs.log_path.empty()
                                   ? options_.work_dir + "/fleet_log.jsonl"
                                   : options_.obs.log_path;
  obs::fleet::FleetTraceInput input;
  input.run_id = run_id_;
  input.supervisor_events =
      obs::fleet::load_fleet_events(options_.work_dir + "/events_supervisor.jsonl");
  std::vector<std::string> shard_logs;
  for (std::size_t s = 0; s < spec_.shards; ++s) {
    input.worker_events.push_back(obs::fleet::load_fleet_events(events_path(s)));
    shard_logs.push_back(worker_log_path(s));
  }
  try {
    obs::fleet::write_fleet_trace_file(trace_path, input);
    obs::fleet::merge_fleet_logs(log_path, options_.work_dir + "/log_supervisor.jsonl",
                                 shard_logs);
  } catch (const std::exception& e) {
    // Observability merge failures degrade, never fail the run: the sweep
    // artifacts are already safe on disk.
    obs::log::warn("supervisor", "fleet observability merge failed",
                   {obs::log::kv("error", std::string(e.what()))});
  }
  (void)result;
}

void Supervisor::spawn(Worker& w) {
  std::vector<std::string> argv;
  argv.push_back(options_.worker_binary);
  argv.push_back("--spec");
  argv.push_back(spec_path_);
  argv.push_back("--shard");
  argv.push_back(std::to_string(w.shard));
  argv.push_back("--out");
  argv.push_back(shard_log_path(w.shard));
  argv.push_back("--heartbeat");
  argv.push_back(heartbeat_path(w.shard));
  if (options_.obs.enabled) {
    // Correlation tags cross the process boundary as plain argv: the worker
    // stamps (run_id, shard, incarnation) into its log records, journal
    // events, and shard-log lines.
    argv.push_back("--run-id");
    argv.push_back(run_id_);
    argv.push_back("--incarnation");
    argv.push_back(std::to_string(w.restarts));
    argv.push_back("--events");
    argv.push_back(events_path(w.shard));
    argv.push_back("--log");
    argv.push_back(worker_log_path(w.shard));
  }
  argv.insert(argv.end(), options_.worker_args.begin(), options_.worker_args.end());
  if (w.restarts == 0) {
    // Chaos hook: injected faults ride only the first incarnation, so a
    // crash plan fires once and the respawned worker runs clean.
    argv.insert(argv.end(), options_.first_spawn_args.begin(), options_.first_spawn_args.end());
  }
  w.pid = spawn_process(std::move(argv));
  journal(obs::fleet::FleetEventKind::kSpawn, static_cast<long>(w.shard), w.restarts,
          "pid " + std::to_string(w.pid));
  w.state = Worker::State::kRunning;
  w.spawned_at = w.last_progress = Clock::now();
  w.last_seq = 0;
  w.hb_seen = false;
  w.hb_busy = false;
  w.hb_items_done = 0;
  w.hb_busy_seconds = 0.0;
}

void Supervisor::reap(FleetResult& result) {
  for (Worker& w : workers_) {
    if (w.state != Worker::State::kRunning) continue;
    int status = 0;
    const pid_t r = ::waitpid(static_cast<pid_t>(w.pid), &status, WNOHANG);
    if (r == 0) continue;
    // The incarnation is gone either way; fold its heartbeat progress into
    // the history that feeds the mean-item-time estimate.  Read the file
    // once more first: a short-lived worker can exit between watchdog
    // polls, and its final (forced) pulse carries the true tallies.
    if (const auto beat = read_heartbeat(heartbeat_path(w.shard));
        beat && beat->pid == w.pid) {
      w.hb_items_done = beat->items_done;
      w.hb_busy_seconds = beat->busy_seconds;
    }
    w.pid = -1;
    w.hist_items_done += w.hb_items_done;
    w.hist_busy_seconds += w.hb_busy_seconds;
    w.hb_items_done = 0;
    w.hb_busy_seconds = 0.0;
    w.hb_seen = false;
    w.hb_busy = false;
    if (r < 0) {
      // ECHILD etc.: we lost track of the child — treat as a crash.
      journal(obs::fleet::FleetEventKind::kExit, static_cast<long>(w.shard), w.restarts, "lost");
      schedule_restart(w, result);
      continue;
    }
    journal(obs::fleet::FleetEventKind::kExit, static_cast<long>(w.shard), w.restarts,
            WIFEXITED(status) ? "exit " + std::to_string(WEXITSTATUS(status))
                              : "signal " + std::to_string(WTERMSIG(status)));
    if (WIFEXITED(status)) {
      const int code = WEXITSTATUS(status);
      if (code == kWorkerExitOk) {
        // Trust but verify: a worker claiming success with an incomplete
        // log (truncated filesystem, wrong binary, ...) goes back through
        // the restart ladder instead of failing the merge later.
        std::size_t done_owned = 0;
        for (const auto& [i, item] : load_shard_log(shard_log_path(w.shard))) {
          if (i < spec_.n_items() && spec_.owns(w.shard, i)) ++done_owned;
        }
        if (done_owned >= spec_.items_in_shard(w.shard)) {
          w.state = Worker::State::kDone;
        } else {
          schedule_restart(w, result);
        }
        continue;
      }
      if (code == kWorkerExitSpecError || code == kWorkerExitItemFailed || code == 127) {
        // Permanent: a retry would fail identically (bad spec, deterministic
        // item failure, or the worker binary itself failed to exec).
        kill_all();
        throw RobustError(ErrorCode::kTaskFailed,
                          "fleet worker failed permanently (exit " + std::to_string(code) + ")",
                          "shard " + std::to_string(w.shard));
      }
      if (code == kWorkerExitInterrupted && stopping_) {
        w.state = Worker::State::kIdle;  // resumable, by design
        continue;
      }
      // Interrupted from outside (or an unknown exit code): resume it.
      schedule_restart(w, result);
      continue;
    }
    // Killed by signal — the chaos case.
    if (stopping_) {
      w.state = Worker::State::kIdle;
      continue;
    }
    schedule_restart(w, result);
  }
}

void Supervisor::schedule_restart(Worker& w, FleetResult& result) {
  result.restarts += 1;
  w.restarts += 1;
  // Everything not yet in the shard log is back in the queue.
  std::size_t done_owned = 0;
  for (const auto& [i, item] : load_shard_log(shard_log_path(w.shard))) {
    if (i < spec_.n_items() && spec_.owns(w.shard, i)) ++done_owned;
  }
  const std::size_t owned = spec_.items_in_shard(w.shard);
  result.requeued_items += static_cast<std::int64_t>(owned - std::min(owned, done_owned));
  if (w.restarts > options_.max_restarts_per_shard) {
    run_degraded_shard(w, result);
    return;
  }
  const int shift = std::min(w.restarts - 1, 20);
  const long delay =
      std::min(options_.backoff_cap_ms, options_.backoff_base_ms << shift);
  w.state = Worker::State::kBackoff;
  w.restart_due = Clock::now() + std::chrono::milliseconds(delay);
  journal(obs::fleet::FleetEventKind::kRestart, static_cast<long>(w.shard), w.restarts,
          "backoff " + std::to_string(delay) + " ms");
  obs::log::warn("supervisor", "shard worker died; restarting",
                 {obs::log::kv("shard", static_cast<std::int64_t>(w.shard)),
                  obs::log::kv("restart", w.restarts),
                  obs::log::kv("max_restarts", options_.max_restarts_per_shard),
                  obs::log::kv("delay_ms", static_cast<std::int64_t>(delay))});
}

void Supervisor::run_degraded_shard(Worker& w, FleetResult& result) {
  // Last ladder rung: the shard keeps crashing, so finish its remaining
  // items serially in this process.  run_fleet_item produces the same bytes
  // a worker would have logged (that equivalence is the chaos contract), so
  // the merge cannot tell the difference; the run completes, just slower.
  journal(obs::fleet::FleetEventKind::kDegraded, static_cast<long>(w.shard), w.restarts);
  obs::log::warn("supervisor", "shard exceeded restart cap; finishing in-process",
                 {obs::log::kv("shard", static_cast<std::int64_t>(w.shard)),
                  obs::log::kv("max_restarts", options_.max_restarts_per_shard)});
  const auto done = load_shard_log(shard_log_path(w.shard));
  for (std::size_t i = 0; i < spec_.n_items(); ++i) {
    if (!spec_.owns(w.shard, i)) continue;
    if (done.find(i) != done.end()) continue;
    ItemResult item = run_fleet_item(spec_, i);
    // Ledger attribution: the degraded ladder is one more "incarnation" of
    // the shard, running inside the supervisor.
    item.shard = static_cast<long>(w.shard);
    item.incarnation = w.restarts;
    append_item_result(shard_log_path(w.shard), item);
    w.hist_items_done += 1;
    w.hist_busy_seconds += item.wall_ns / 1e9;
  }
  w.state = Worker::State::kDegraded;
  result.degraded_shards.push_back(w.shard);
}

void Supervisor::run_watchdog(FleetResult& result) {
  const auto now = Clock::now();
  obs::live::HeartbeatSnapshot hb;
  hb.active = true;
  hb.items_total = static_cast<std::int64_t>(spec_.n_items());
  std::int64_t done = 0;
  double busy_seconds = 0.0;
  std::vector<Worker*> slots;  // hb.shards[k] describes *slots[k]
  for (Worker& w : workers_) {
    done += w.hist_items_done + w.resumed_items;
    busy_seconds += w.hist_busy_seconds;
    if (w.state != Worker::State::kRunning) continue;
    const auto beat = read_heartbeat(heartbeat_path(w.shard));
    // Heartbeats from a previous incarnation carry a stale pid; only a
    // matching pid counts as this worker's pulse.
    if (beat && beat->pid == w.pid) {
      if (!w.hb_seen || beat->seq != w.last_seq) {
        w.last_seq = beat->seq;
        w.last_progress = now;
        w.hb_seen = true;
        // One latency observation per heartbeat advance.  Sampled (a fast
        // shard can commit several items between polls), which is exactly
        // what a live histogram is for; the exhaustive record is the cost
        // ledger.  Histograms are gauge-domain: never counters, never in
        // any deterministic artifact.
        if (options_.publish_gauges && beat->last_wall_ms > 0.0) {
          obs::registry()
              .histogram("fleet.item_wall_ms",
                         {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
                          5000.0})
              .observe(beat->last_wall_ms);
        }
      }
      w.hb_items_done = beat->items_done;
      w.hb_busy_seconds = beat->busy_seconds;
      w.hb_busy = !beat->done;
    }
    done += w.hb_items_done;
    busy_seconds += w.hb_busy_seconds;
    obs::live::ShardBeat shard_beat;
    // A running worker that has not pulsed lately is exactly what the
    // watchdog hunts, so it counts as busy until its heartbeat says "done".
    shard_beat.busy = w.hb_seen ? w.hb_busy : true;
    shard_beat.items_completed = w.hb_items_done;
    shard_beat.inflight_seconds = seconds_since(w.last_progress, now);
    shard_beat.last_progress_seconds = 0.0;
    hb.shards.push_back(shard_beat);
    slots.push_back(&w);
  }
  hb.workers = slots.size();
  hb.items_completed = done;
  hb.mean_item_seconds = done > 0 ? busy_seconds / static_cast<double>(done) : 0.0;
  items_done_estimate_ = done;

  const obs::live::StragglerReport report = obs::live::detect_stragglers(
      hb, {options_.heartbeat_factor, options_.heartbeat_min_seconds});
  eta_seconds_ = report.eta_seconds;
  for (const std::size_t slot : report.stragglers) {
    Worker& w = *slots[slot];
    journal(obs::fleet::FleetEventKind::kHungKill, static_cast<long>(w.shard), w.restarts,
            "stale " + std::to_string(seconds_since(w.last_progress, now)) + " s");
    obs::log::warn("supervisor", "heartbeat stale; killing worker",
                   {obs::log::kv("shard", static_cast<std::int64_t>(w.shard)),
                    obs::log::kv("stale_seconds", seconds_since(w.last_progress, now)),
                    obs::log::kv("pid", static_cast<std::int64_t>(w.pid))});
    ::kill(static_cast<pid_t>(w.pid), SIGKILL);
    // reap() picks up the corpse next poll and routes it through the normal
    // restart ladder; resetting last_progress avoids a double kill meanwhile.
    w.last_progress = now;
    result.hung_kills += 1;
  }
}

void Supervisor::request_stop(FleetResult& result) {
  stopping_ = true;
  result.interrupted = true;
  journal(obs::fleet::FleetEventKind::kInterrupt, -1, -1);
  for (Worker& w : workers_) {
    if (w.state == Worker::State::kRunning) ::kill(static_cast<pid_t>(w.pid), SIGTERM);
  }
  const auto deadline = Clock::now() + std::chrono::milliseconds(options_.stop_grace_ms);
  while (Clock::now() < deadline) {
    reap(result);
    bool any_running = false;
    for (const Worker& w : workers_) {
      any_running = any_running || w.state == Worker::State::kRunning;
    }
    if (!any_running) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(options_.poll_ms));
  }
  kill_all();  // whatever ignored SIGTERM past the grace period
}

void Supervisor::publish_gauges(const FleetResult& result) const {
  if (!options_.publish_gauges) return;
  std::size_t alive = 0;
  bool active = false;
  for (const Worker& w : workers_) {
    if (w.state == Worker::State::kRunning) ++alive;
    active = active || (w.state != Worker::State::kDone && w.state != Worker::State::kDegraded);
  }
  auto& reg = obs::registry();
  reg.gauge("supervisor.active").set(active ? 1.0 : 0.0);
  reg.gauge("supervisor.shards").set(static_cast<double>(spec_.shards));
  reg.gauge("supervisor.workers_alive").set(static_cast<double>(alive));
  reg.gauge("supervisor.restarts").set(static_cast<double>(result.restarts));
  reg.gauge("supervisor.hung_kills").set(static_cast<double>(result.hung_kills));
  reg.gauge("supervisor.requeued_items").set(static_cast<double>(result.requeued_items));
  reg.gauge("supervisor.degraded_shards").set(static_cast<double>(result.degraded_shards.size()));
  reg.gauge("supervisor.items_total").set(static_cast<double>(spec_.n_items()));
  reg.gauge("supervisor.items_done").set(static_cast<double>(items_done_estimate_));
  if (spec_.assignment.size() == spec_.n_items() && !spec_.assignment.empty()) {
    std::size_t moved = 0;
    for (std::size_t i = 0; i < spec_.assignment.size(); ++i) {
      if (spec_.assignment[i] != static_cast<std::uint32_t>(i % spec_.shards)) ++moved;
    }
    reg.gauge("supervisor.plan_balanced").set(1.0);
    reg.gauge("supervisor.plan_moved_items").set(static_cast<double>(moved));
  }

  // The fleet.* roll-up (PR 8): the scrapeable mid-run health surface that
  // telemetry_tool --fleet renders and CI's chaos smoke asserts against.
  // Gauges only — the determinism contract of the header comment.  "_total"
  // names are Prometheus idiom; they are still gauges here.
  reg.gauge("fleet.active").set(active ? 1.0 : 0.0);
  reg.gauge("fleet.shards").set(static_cast<double>(spec_.shards));
  reg.gauge("fleet.workers_alive").set(static_cast<double>(alive));
  reg.gauge("fleet.restarts_total").set(static_cast<double>(result.restarts));
  reg.gauge("fleet.hung_kills_total").set(static_cast<double>(result.hung_kills));
  reg.gauge("fleet.items_total").set(static_cast<double>(spec_.n_items()));
  reg.gauge("fleet.items_done").set(static_cast<double>(items_done_estimate_));
  reg.gauge("fleet.eta_seconds").set(eta_seconds_);
  const auto now = Clock::now();
  for (const Worker& w : workers_) {
    const std::string prefix = "fleet.shard." + std::to_string(w.shard) + '.';
    // Monotone per-shard progress: resumed + completed-incarnation history
    // + the live incarnation's tally.  None of those terms ever decreases,
    // which is exactly what the chaos smoke asserts across a kill/restart.
    reg.gauge(prefix + "items_done")
        .set(static_cast<double>(w.resumed_items + w.hist_items_done + w.hb_items_done));
    reg.gauge(prefix + "restarts").set(static_cast<double>(w.restarts));
    reg.gauge(prefix + "heartbeat_age_seconds")
        .set(w.state == Worker::State::kRunning ? seconds_since(w.last_progress, now) : 0.0);
  }
}

void Supervisor::write_state(const FleetResult& result) const {
  std::string doc = "{\"schema\":\"speedscale.fleet_state/1\",";
  if (result.cost.items > 0) {
    // The per-item cost ledger rides in the final state document (it only
    // exists after the merge), so the run's cost record survives next to
    // its pids/restarts without a separate artifact.
    doc += "\"cost\":" + result.cost.to_json() + ',';
  }
  if (spec_.assignment.size() == spec_.n_items() && !spec_.assignment.empty()) {
    // A cost-model plan was active: record it so tooling (and the chaos
    // harness) can see balancing was on and how far it moved from static.
    std::size_t moved = 0;
    std::string per_shard = "[";
    for (std::size_t s = 0; s < spec_.shards; ++s) {
      if (s > 0) per_shard += ',';
      per_shard += std::to_string(spec_.items_in_shard(s));
    }
    per_shard += ']';
    for (std::size_t i = 0; i < spec_.assignment.size(); ++i) {
      if (spec_.assignment[i] != static_cast<std::uint32_t>(i % spec_.shards)) ++moved;
    }
    doc += "\"plan\":{\"items_per_shard\":" + per_shard +
           ",\"moved_items\":" + std::to_string(moved) + ",\"source\":\"cost_model\"},";
  }
  doc += "\"restarts\":" + std::to_string(result.restarts) +
         ",\"shards\":" + std::to_string(spec_.shards) + ",\"workers\":[";
  bool first = true;
  for (const Worker& w : workers_) {
    if (!first) doc += ',';
    first = false;
    const char* state = "idle";
    switch (w.state) {
      case Worker::State::kIdle: state = "idle"; break;
      case Worker::State::kRunning: state = "running"; break;
      case Worker::State::kBackoff: state = "backoff"; break;
      case Worker::State::kDone: state = "done"; break;
      case Worker::State::kDegraded: state = "degraded"; break;
    }
    doc += "{\"pid\":" + std::to_string(w.pid) + ",\"restarts\":" + std::to_string(w.restarts) +
           ",\"shard\":" + std::to_string(w.shard) + ",\"state\":\"" + state + "\"}";
  }
  doc += "]}";
  if (doc == last_state_doc_) return;
  last_state_doc_ = doc;
  atomic_write_file(state_path_, [&](std::ostream& os) { os << doc << '\n'; });
}

void Supervisor::kill_all() {
  for (Worker& w : workers_) {
    if (w.state != Worker::State::kRunning || w.pid <= 0) continue;
    ::kill(static_cast<pid_t>(w.pid), SIGKILL);
    ::waitpid(static_cast<pid_t>(w.pid), nullptr, 0);
    w.pid = -1;
    w.state = Worker::State::kIdle;
  }
}

FleetResult Supervisor::run() {
  FleetResult result;
  std::filesystem::create_directories(options_.work_dir);
  write_work_spec(spec_path_, spec_);

  if (options_.obs.enabled) {
    // The supervisor's half of the plane: its own structured log (tagged
    // run_id, shard -1) and its own policy-event journal.  Workers get
    // their halves through spawn argv.
    auto& logger = obs::log::Logger::instance();
    logger.set_tags({run_id_, -1, -1});
    try {
      if (!logger.is_open()) logger.open(options_.work_dir + "/log_supervisor.jsonl");
      events_ = std::make_unique<obs::fleet::FleetEventLog>(options_.work_dir +
                                                            "/events_supervisor.jsonl");
    } catch (const std::exception& e) {
      obs::log::warn("supervisor", "fleet observability plane disabled",
                     {obs::log::kv("error", std::string(e.what()))});
      events_.reset();
    }
    obs::log::info("supervisor", "fleet starting",
                   {obs::log::kv("shards", static_cast<std::int64_t>(spec_.shards)),
                    obs::log::kv("items", static_cast<std::int64_t>(spec_.n_items()))});
  }

  workers_.clear();
  workers_.resize(spec_.shards);
  for (std::size_t s = 0; s < spec_.shards; ++s) {
    Worker& w = workers_[s];
    w.shard = s;
    // Resume: items already in the shard log (a previous interrupted or
    // crashed fleet) stay done; a fully-logged shard never spawns at all.
    std::size_t done_owned = 0;
    for (const auto& [i, item] : load_shard_log(shard_log_path(s))) {
      if (i < spec_.n_items() && spec_.owns(s, i)) ++done_owned;
    }
    w.resumed_items = static_cast<std::int64_t>(done_owned);
    if (done_owned >= spec_.items_in_shard(s)) {
      w.state = Worker::State::kDone;
    } else {
      spawn(w);
    }
  }

  while (true) {
    reap(result);
    const auto now = Clock::now();
    for (Worker& w : workers_) {
      if (w.state == Worker::State::kBackoff && now >= w.restart_due) spawn(w);
    }
    run_watchdog(result);
    publish_gauges(result);
    write_state(result);
    if (options_.stop_flag != nullptr &&
        options_.stop_flag->load(std::memory_order_relaxed)) {
      request_stop(result);
      break;
    }
    bool all_settled = true;
    for (const Worker& w : workers_) {
      all_settled = all_settled && (w.state == Worker::State::kDone ||
                                    w.state == Worker::State::kDegraded);
    }
    if (all_settled) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(options_.poll_ms));
  }

  // Merge.  Index order over item results — the exact reduction
  // SweepScheduler::run performs, so the fleet's artifacts and counter
  // routing are byte-identical to a serial sweep's.
  journal(obs::fleet::FleetEventKind::kMerge, -1, -1,
          "items " + std::to_string(spec_.n_items()));
  const std::size_t n = spec_.n_items();
  std::vector<ItemResult> items(n);
  std::vector<char> have(n, 0);
  std::size_t torn = 0;
  for (std::size_t s = 0; s < spec_.shards; ++s) {
    std::size_t skipped = 0;
    for (auto& [i, item] : load_shard_log(shard_log_path(s), &skipped)) {
      if (i < n && spec_.owns(s, i)) {
        items[i] = std::move(item);
        have[i] = 1;
      }
    }
    torn += skipped;
  }
  result.torn_lines = torn;
  if (!result.interrupted) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!have[i]) {
        throw RobustError(ErrorCode::kTaskFailed, "fleet finished with a missing item",
                          "item " + std::to_string(i));
      }
    }
    result.completed = true;
    for (std::size_t i = 0; i < n; ++i) {
      for (const auto& [name, v] : items[i].counters) {
        obs::shard_aware_add(name, v);
        result.merged_counters[name] += v;
      }
    }
    if (spec_.kind == FleetWorkKind::kSuitePoints) {
      std::vector<std::string> fragments;
      fragments.reserve(n);
      for (const ItemResult& item : items) fragments.push_back(item.payload_json);
      result.suite_json = analysis::assemble_suite_sweep_json(fragments, result.merged_counters);
      for (const ItemResult& item : items) result.cert_jsonl += item.cert_jsonl;
    }
    if (options_.obs.enabled) {
      // Per-item cost ledger: wall + work per item, attributed to whichever
      // incarnation's line won the merge.  Untagged lines (pre-PR 8 logs)
      // still get their owning shard from the spec.
      std::vector<obs::fleet::CostRow> rows;
      rows.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        obs::fleet::CostRow row;
        row.index = static_cast<std::int64_t>(i);
        row.shard = items[i].shard >= 0 ? items[i].shard
                                        : static_cast<long>(i % spec_.shards);
        row.incarnation = items[i].incarnation;
        row.wall_ms = items[i].wall_ns / 1e6;
        row.work = items[i].counters;
        rows.push_back(std::move(row));
      }
      result.cost = obs::fleet::build_cost_report(std::move(rows), run_id_);
    }
  }
  if (options_.obs.enabled && result.completed) {
    obs::log::info("supervisor", "merge complete",
                   {obs::log::kv("items", static_cast<std::int64_t>(n)),
                    obs::log::kv("restarts", result.restarts),
                    obs::log::kv("torn_lines", static_cast<std::int64_t>(result.torn_lines))});
  }
  result.items = std::move(items);
  publish_gauges(result);
  write_state(result);
  merge_observability(result);
  return result;
}

FleetResult run_suite_sweep_fleet(const std::vector<analysis::SuitePoint>& points,
                                  const analysis::SuiteOptions& suite_options,
                                  std::size_t workers, const FleetOptions& options) {
  FleetWorkSpec spec;
  spec.kind = FleetWorkKind::kSuitePoints;
  spec.shards = std::max<std::size_t>(1, workers);
  spec.points = points;
  spec.suite_options = suite_options;
  Supervisor sup(std::move(spec), options);
  return sup.run();
}

}  // namespace speedscale::robust::supervisor
