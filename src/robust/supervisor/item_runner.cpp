#include "src/robust/supervisor/item_runner.h"

#include <chrono>
#include <optional>
#include <stdexcept>

#include "src/analysis/pinned_suite.h"
#include "src/obs/shard_scope.h"
#include "src/opt/opt_cache.h"
#include "src/robust/diagnostics.h"

namespace speedscale::robust::supervisor {

ItemResult run_fleet_item(const FleetWorkSpec& spec, std::size_t index) {
  if (index >= spec.n_items()) {
    throw RobustError(ErrorCode::kIoMalformed, "fleet item index out of range",
                      std::to_string(index) + " of " + std::to_string(spec.n_items()));
  }
  ItemResult out;
  out.index = index;
  const auto t0 = std::chrono::steady_clock::now();

  // Identical shard isolation to SweepScheduler::run: counters divert into
  // this item's private scope, OPT solves memoize in this item's private
  // cache — what the item records depends only on the item.
  obs::ShardMetricsScope scope;
  std::optional<OptSolveCache> cache;
  std::optional<ScopedOptSolveCache> bind;
  if (spec.opt_cache_capacity > 0) {
    cache.emplace(spec.opt_cache_capacity);
    bind.emplace(&*cache);
  }

  if (spec.kind == FleetWorkKind::kSuitePoints) {
    const analysis::SuitePoint& p = spec.points[index];
    const analysis::SuiteSweepResult::PointInfo info{p.alpha, p.instance.size()};
    const analysis::SuiteResult suite =
        analysis::run_suite(p.instance, p.alpha, spec.suite_options);
    bind.reset();
    scope.stop();
    out.payload_json = analysis::suite_point_json(index, info, suite);
    out.cert_jsonl = analysis::suite_point_cert_jsonl(index, suite);
  } else {
    const std::size_t bench_index = index / static_cast<std::size_t>(spec.bench_reps);
    const analysis::PinnedBench* bench =
        analysis::find_pinned_bench(spec.bench_names.at(bench_index));
    if (bench == nullptr) {
      throw RobustError(ErrorCode::kIoMalformed, "unknown pinned bench in fleet spec",
                        spec.bench_names.at(bench_index));
    }
    bench->body();
    bind.reset();
    scope.stop();
  }

  out.counters = scope.counters();
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  return out;
}

}  // namespace speedscale::robust::supervisor
