// Executes one fleet work item, wherever it runs.
//
// The chaos contract (docs/robustness.md) hinges on one function: a work
// item must produce identical bytes whether it runs in a worker process, in
// a restarted worker after a crash, or in the supervisor's own process on
// the degradation ladder.  run_fleet_item is that function — it mirrors the
// per-item setup of analysis::SweepScheduler exactly (private shard metric
// scope, private OPT solve cache) and serializes through the same
// analysis::suite_point_json / suite_point_cert_jsonl primitives the serial
// sweep uses.
#pragma once

#include <cstddef>

#include "src/robust/supervisor/shard_log.h"
#include "src/robust/supervisor/work_spec.h"

namespace speedscale::robust::supervisor {

/// Runs item `index` of `spec` and returns its logged form.  Throws (the
/// item's own exception) on deterministic failure — the caller decides
/// whether that aborts a worker (kWorkerExitItemFailed) or the whole fleet.
[[nodiscard]] ItemResult run_fleet_item(const FleetWorkSpec& spec, std::size_t index);

}  // namespace speedscale::robust::supervisor
