// Fleet work specs: the serialized work-list a supervised worker executes.
//
// The multi-process sweep fleet (src/robust/supervisor/supervisor.h) shards
// a sweep work-list across *processes*, so the work-list itself must cross a
// process boundary.  A FleetWorkSpec is the self-contained description the
// supervisor writes once (crash-safely, via robust::atomic_io) and every
// worker incarnation re-reads: either a grid of ratio-harness suite points
// (instances serialized job-by-job at 17 significant digits, so a worker
// reconstructs bit-identical doubles) or the pinned bench grid
// (src/analysis/pinned_suite.h benches by name, times repetitions).
//
// Sharding is a pure function of the spec, so ownership survives any number
// of worker crashes/restarts without coordination state.  By default it is
// positional and static — item i belongs to shard i % shards — but a spec
// may carry an explicit per-item `assignment` (the cost-model balancer of
// src/obs/history/cost_model.h writes one at plan time, before any worker
// spawns).  Either way the index-ordered merge is unchanged, so WHICH shard
// computes an item is unobservable in the merged artifacts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/ratio_harness.h"
#include "src/analysis/sweep.h"

namespace speedscale::robust::supervisor {

/// What kind of work-list the spec carries.
enum class FleetWorkKind : std::uint8_t {
  kSuitePoints,  ///< analysis::run_suite per point (run_suite_sweep's items)
  kPinnedBench,  ///< pinned bench bodies by name x repetitions (bench ledger)
};

[[nodiscard]] const char* fleet_work_kind_name(FleetWorkKind kind);

struct FleetWorkSpec {
  FleetWorkKind kind = FleetWorkKind::kSuitePoints;
  /// Number of shards the item space is split over (= worker processes).
  std::size_t shards = 1;
  /// Per-item private OPT solve cache capacity; 0 disables caching.  Must
  /// match the serial SweepOptions the fleet output is compared against.
  std::size_t opt_cache_capacity = 256;

  // kSuitePoints
  std::vector<analysis::SuitePoint> points;
  analysis::SuiteOptions suite_options;

  // kPinnedBench: item index = bench_index * bench_reps + repetition.
  std::vector<std::string> bench_names;
  int bench_reps = 1;

  /// Optional explicit item -> shard plan (cost-model balancing).  When its
  /// size equals n_items() it overrides the static i % shards rule; empty
  /// (the default) keeps the PR 7 static sharding.  Serialized in the spec,
  /// so every worker incarnation sees the same plan.
  std::vector<std::uint32_t> assignment;

  [[nodiscard]] std::size_t n_items() const;
  /// Ownership: the explicit assignment when present, item % shards
  /// otherwise.  Pure function of the spec either way.
  [[nodiscard]] bool owns(std::size_t shard, std::size_t item) const {
    if (shards == 0) return false;
    if (item < assignment.size()) return assignment[item] == shard;
    return item % shards == shard;
  }
  [[nodiscard]] std::size_t items_in_shard(std::size_t shard) const;

  /// One sorted-structure JSON object (speedscale.fleet_spec/1); doubles at
  /// 17 significant digits so instances round-trip bit-exactly.
  [[nodiscard]] std::string to_json() const;
};

/// Parses a spec document.  Throws RobustError (ErrorCode::kIoMalformed)
/// with the offending key in the context on any structural mismatch.
[[nodiscard]] FleetWorkSpec parse_work_spec(const std::string& text);

/// Crash-safe spec file round-trip (atomic write; strict read).
void write_work_spec(const std::string& path, const FleetWorkSpec& spec);
[[nodiscard]] FleetWorkSpec load_work_spec(const std::string& path);

}  // namespace speedscale::robust::supervisor
