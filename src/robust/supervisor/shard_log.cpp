#include "src/robust/supervisor/shard_log.h"

#include <cmath>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/obs/json_min.h"
#include "src/obs/json_util.h"
#include "src/obs/log/logger.h"
#include "src/obs/metrics_registry.h"
#include "src/robust/atomic_io.h"
#include "src/robust/diagnostics.h"
#include "src/robust/fault_injection.h"

namespace speedscale::robust::supervisor {

namespace {

std::string item_result_line(const ItemResult& r) {
  std::string out = "{\"kind\":\"item\",\"index\":" + std::to_string(r.index);
  out += ",\"shard\":" + std::to_string(r.shard);
  out += ",\"inc\":" + std::to_string(r.incarnation);
  out += ",\"wall_ns\":";
  obs::append_json_number(out, r.wall_ns);
  out += ",\"payload\":";
  obs::append_json_string(out, r.payload_json);
  out += ",\"cert\":";
  obs::append_json_string(out, r.cert_jsonl);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : r.counters) {
    if (!first) out += ',';
    first = false;
    obs::append_json_string(out, name);
    out += ':' + std::to_string(v);
  }
  out += "}}";
  return out;
}

bool parse_item_line(const std::string& line, ItemResult& out) {
  obs::JsonValue root;
  try {
    root = obs::parse_json(line);
  } catch (const std::exception&) {
    return false;  // torn tail / corrupt line
  }
  if (!root.is_object()) return false;
  const obs::JsonValue* kind = root.find("kind");
  if (kind == nullptr || !kind->is_string() || kind->string != "item") return false;
  const obs::JsonValue* index = root.find("index");
  const obs::JsonValue* wall = root.find("wall_ns");
  const obs::JsonValue* payload = root.find("payload");
  const obs::JsonValue* cert = root.find("cert");
  const obs::JsonValue* counters = root.find("counters");
  if (index == nullptr || !index->is_number() || index->number < 0.0 ||
      index->number != std::floor(index->number)) {
    return false;
  }
  if (wall == nullptr || !wall->is_number() || !std::isfinite(wall->number)) return false;
  if (payload == nullptr || !payload->is_string()) return false;
  if (cert == nullptr || !cert->is_string()) return false;
  if (counters == nullptr || !counters->is_object()) return false;
  out.index = static_cast<std::size_t>(index->number);
  out.wall_ns = wall->number;
  // Attribution tags arrived in PR 8; lines without them (older logs, or
  // in-process degraded-ladder appends predating the caller's tagging) keep
  // the -1 defaults and the resume path works unchanged.
  const obs::JsonValue* shard = root.find("shard");
  const obs::JsonValue* inc = root.find("inc");
  out.shard = shard != nullptr && shard->is_number() ? static_cast<long>(shard->number) : -1;
  out.incarnation = inc != nullptr && inc->is_number() ? static_cast<long>(inc->number) : -1;
  out.payload_json = payload->string;
  out.cert_jsonl = cert->string;
  out.counters.clear();
  for (const auto& [name, v] : counters->object) {
    if (!v.is_number() || v.number != std::floor(v.number)) return false;
    out.counters[name] = static_cast<std::int64_t>(v.number);
  }
  return true;
}

}  // namespace

ShardLogWriter::ShardLogWriter(std::string path)
    : path_(std::move(path)), file_(path_, std::ios::app) {
  if (!file_) throw RobustError(ErrorCode::kIoMalformed, "cannot open shard log", path_);
}

void ShardLogWriter::append(const ItemResult& result) {
  const std::string line = item_result_line(result);
  if (fault_fire(FaultSite::kCheckpointTornTail)) {
    // Chaos: the crash-mid-write case.  Flush a torn prefix (no newline) and
    // die the way a power cut would — the loader must skip this tail and the
    // restarted worker must recompute the item.
    file_ << line.substr(0, line.size() / 2);
    file_.flush();
    std::raise(SIGKILL);
  }
  file_ << line << '\n';
  file_.flush();
  if (!file_) throw RobustError(ErrorCode::kIoMalformed, "shard log write failed", path_);
}

void append_item_result(const std::string& path, const ItemResult& result) {
  ShardLogWriter(path).append(result);
}

std::map<std::size_t, ItemResult> load_shard_log(const std::string& path,
                                                 std::size_t* skipped_lines) {
  if (skipped_lines) *skipped_lines = 0;
  std::map<std::size_t, ItemResult> out;
  std::ifstream f(path);
  if (!f) return out;
  std::string line;
  std::size_t skipped = 0;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    ItemResult r;
    if (parse_item_line(line, r)) {
      out[r.index] = std::move(r);
    } else {
      ++skipped;
    }
  }
  if (skipped > 0) {
    // Same visibility contract as load_search_checkpoint: torn tails are
    // survivable but never silent.  Straight to the registry (not
    // OBS_COUNT) so recovery bookkeeping cannot leak into an item delta.
    obs::registry().counter("robust.checkpoint.torn_lines").add(
        static_cast<std::int64_t>(skipped));
    // Through the structured logger: the record lands in the process's
    // speedscale.log/1 stream (tagged with run/shard/incarnation) and the
    // stderr mirror keeps the human-readable WARN line.
    obs::log::warn("robust", "skipped torn shard-log line(s)",
                   {obs::log::kv("lines", skipped), obs::log::kv("path", path)});
  }
  if (skipped_lines) *skipped_lines = skipped;
  return out;
}

void write_heartbeat(const std::string& path, const WorkerHeartbeat& hb) {
  std::string doc = "{\"busy_seconds\":";
  obs::append_json_number(doc, hb.busy_seconds);
  doc += ",\"current_item\":" + std::to_string(hb.current_item);
  doc += ",\"done\":";
  doc += hb.done ? "true" : "false";
  doc += ",\"items_done\":" + std::to_string(hb.items_done);
  doc += ",\"last_wall_ms\":";
  obs::append_json_number(doc, hb.last_wall_ms);
  doc += ",\"pid\":" + std::to_string(hb.pid);
  doc += ",\"seq\":" + std::to_string(hb.seq);
  doc += '}';
  atomic_write_file(path, [&](std::ostream& os) { os << doc << '\n'; });
}

std::optional<WorkerHeartbeat> read_heartbeat(const std::string& path) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  std::ostringstream ss;
  ss << f.rdbuf();
  obs::JsonValue root;
  try {
    root = obs::parse_json(ss.str());
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!root.is_object()) return std::nullopt;
  const obs::JsonValue* pid = root.find("pid");
  const obs::JsonValue* seq = root.find("seq");
  const obs::JsonValue* done_items = root.find("items_done");
  const obs::JsonValue* current = root.find("current_item");
  const obs::JsonValue* busy = root.find("busy_seconds");
  const obs::JsonValue* done = root.find("done");
  if (pid == nullptr || !pid->is_number() || seq == nullptr || !seq->is_number() ||
      done_items == nullptr || !done_items->is_number() || current == nullptr ||
      !current->is_number() || busy == nullptr || !busy->is_number() || done == nullptr ||
      !done->is_bool()) {
    return std::nullopt;
  }
  WorkerHeartbeat hb;
  hb.pid = static_cast<long>(pid->number);
  hb.seq = static_cast<std::uint64_t>(seq->number);
  hb.items_done = static_cast<std::int64_t>(done_items->number);
  hb.current_item = static_cast<std::int64_t>(current->number);
  hb.busy_seconds = busy->number;
  // Optional (PR 8): heartbeats from an older worker binary lack it.
  const obs::JsonValue* last_wall = root.find("last_wall_ms");
  hb.last_wall_ms = last_wall != nullptr && last_wall->is_number() ? last_wall->number : 0.0;
  hb.done = done->boolean;
  return hb;
}

}  // namespace speedscale::robust::supervisor
