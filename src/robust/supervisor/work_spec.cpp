#include "src/robust/supervisor/work_spec.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/obs/json_min.h"
#include "src/obs/json_util.h"
#include "src/robust/atomic_io.h"
#include "src/robust/diagnostics.h"

namespace speedscale::robust::supervisor {

const char* fleet_work_kind_name(FleetWorkKind kind) {
  switch (kind) {
    case FleetWorkKind::kSuitePoints:
      return "suite_points";
    case FleetWorkKind::kPinnedBench:
      return "pinned_bench";
  }
  return "unknown";
}

std::size_t FleetWorkSpec::n_items() const {
  if (kind == FleetWorkKind::kSuitePoints) return points.size();
  return bench_names.size() * static_cast<std::size_t>(bench_reps > 0 ? bench_reps : 0);
}

std::size_t FleetWorkSpec::items_in_shard(std::size_t shard) const {
  const std::size_t n = n_items();
  if (shards == 0 || shard >= shards) return 0;
  if (assignment.size() == n) {
    std::size_t count = 0;
    for (std::uint32_t s : assignment) count += s == shard ? 1 : 0;
    return count;
  }
  return n / shards + (shard < n % shards ? 1 : 0);
}

std::string FleetWorkSpec::to_json() const {
  std::string out = "{\"schema\":\"speedscale.fleet_spec/1\",\"kind\":";
  obs::append_json_string(out, fleet_work_kind_name(kind));
  out += ",\"shards\":" + std::to_string(shards);
  out += ",\"opt_cache_capacity\":" + std::to_string(opt_cache_capacity);
  if (!assignment.empty()) {
    out += ",\"assignment\":[";
    for (std::size_t i = 0; i < assignment.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(assignment[i]);
    }
    out += ']';
  }
  if (kind == FleetWorkKind::kSuitePoints) {
    const analysis::SuiteOptions& so = suite_options;
    out += ",\"suite_options\":{\"certify\":";
    out += so.certify ? "true" : "false";
    out += ",\"include_nonuniform\":";
    out += so.include_nonuniform ? "true" : "false";
    out += ",\"include_opt\":";
    out += so.include_opt ? "true" : "false";
    out += ",\"opt_slots\":" + std::to_string(so.opt_slots);
    out += ",\"reduction_eps\":";
    obs::append_json_number(out, so.reduction_eps);
    out += "}";
    out += ",\"points\":[";
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"alpha\":";
      obs::append_json_number(out, points[i].alpha);
      out += ",\"jobs\":[";
      const auto& jobs = points[i].instance.jobs();
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        if (j > 0) out += ',';
        out += '[';
        obs::append_json_number(out, jobs[j].release);
        out += ',';
        obs::append_json_number(out, jobs[j].volume);
        out += ',';
        obs::append_json_number(out, jobs[j].density);
        out += ']';
      }
      out += "]}";
    }
    out += ']';
  } else {
    out += ",\"bench_reps\":" + std::to_string(bench_reps);
    out += ",\"benches\":[";
    for (std::size_t i = 0; i < bench_names.size(); ++i) {
      if (i > 0) out += ',';
      obs::append_json_string(out, bench_names[i]);
    }
    out += ']';
  }
  out += '}';
  return out;
}

namespace {

[[noreturn]] void malformed(const std::string& what, const std::string& context = {}) {
  throw RobustError(ErrorCode::kIoMalformed, "fleet spec: " + what, context);
}

const obs::JsonValue& require(const obs::JsonValue& obj, const char* key) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr) malformed("missing key", key);
  return *v;
}

double require_number(const obs::JsonValue& obj, const char* key) {
  const obs::JsonValue& v = require(obj, key);
  if (!v.is_number() || !std::isfinite(v.number)) malformed("non-finite number", key);
  return v.number;
}

bool require_bool(const obs::JsonValue& obj, const char* key) {
  const obs::JsonValue& v = require(obj, key);
  if (!v.is_bool()) malformed("expected bool", key);
  return v.boolean;
}

std::size_t require_size(const obs::JsonValue& obj, const char* key) {
  const double d = require_number(obj, key);
  if (d < 0.0 || d != std::floor(d)) malformed("expected non-negative integer", key);
  return static_cast<std::size_t>(d);
}

}  // namespace

FleetWorkSpec parse_work_spec(const std::string& text) {
  obs::JsonValue root;
  try {
    root = obs::parse_json(text);
  } catch (const std::exception& e) {
    malformed(std::string("unparseable JSON: ") + e.what());
  }
  if (!root.is_object()) malformed("document is not an object");
  const obs::JsonValue* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != "speedscale.fleet_spec/1") {
    malformed("unknown schema");
  }

  FleetWorkSpec spec;
  const obs::JsonValue& kind = require(root, "kind");
  if (!kind.is_string()) malformed("expected string", "kind");
  if (kind.string == "suite_points") {
    spec.kind = FleetWorkKind::kSuitePoints;
  } else if (kind.string == "pinned_bench") {
    spec.kind = FleetWorkKind::kPinnedBench;
  } else {
    malformed("unknown kind", kind.string);
  }
  spec.shards = require_size(root, "shards");
  if (spec.shards == 0) malformed("shards must be positive");
  spec.opt_cache_capacity = require_size(root, "opt_cache_capacity");

  if (spec.kind == FleetWorkKind::kSuitePoints) {
    const obs::JsonValue& so = require(root, "suite_options");
    if (!so.is_object()) malformed("expected object", "suite_options");
    spec.suite_options.certify = require_bool(so, "certify");
    spec.suite_options.include_nonuniform = require_bool(so, "include_nonuniform");
    spec.suite_options.include_opt = require_bool(so, "include_opt");
    spec.suite_options.opt_slots = static_cast<int>(require_size(so, "opt_slots"));
    spec.suite_options.reduction_eps = require_number(so, "reduction_eps");

    const obs::JsonValue& points = require(root, "points");
    if (!points.is_array()) malformed("expected array", "points");
    spec.points.reserve(points.array.size());
    for (const obs::JsonValue& p : points.array) {
      if (!p.is_object()) malformed("point is not an object");
      analysis::SuitePoint point;
      point.alpha = require_number(p, "alpha");
      const obs::JsonValue& jobs = require(p, "jobs");
      if (!jobs.is_array()) malformed("expected array", "jobs");
      std::vector<Job> js;
      js.reserve(jobs.array.size());
      for (const obs::JsonValue& j : jobs.array) {
        if (!j.is_array() || j.array.size() != 3) malformed("job is not a [r,v,d] triple");
        for (const obs::JsonValue& field : j.array) {
          if (!field.is_number() || !std::isfinite(field.number)) {
            malformed("non-finite job field");
          }
        }
        js.push_back(Job{kNoJob, j.array[0].number, j.array[1].number, j.array[2].number});
      }
      try {
        point.instance = Instance(std::move(js));
      } catch (const std::exception& e) {
        malformed(std::string("invalid instance: ") + e.what());
      }
      spec.points.push_back(std::move(point));
    }
  } else {
    spec.bench_reps = static_cast<int>(require_size(root, "bench_reps"));
    if (spec.bench_reps < 1) malformed("bench_reps must be positive");
    const obs::JsonValue& benches = require(root, "benches");
    if (!benches.is_array()) malformed("expected array", "benches");
    for (const obs::JsonValue& b : benches.array) {
      if (!b.is_string()) malformed("bench name is not a string");
      spec.bench_names.push_back(b.string);
    }
  }
  if (const obs::JsonValue* assignment = root.find("assignment"); assignment != nullptr) {
    if (!assignment->is_array()) malformed("expected array", "assignment");
    if (assignment->array.size() != spec.n_items()) {
      malformed("assignment size does not match n_items", "assignment");
    }
    spec.assignment.reserve(assignment->array.size());
    for (const obs::JsonValue& a : assignment->array) {
      if (!a.is_number() || a.number < 0.0 || a.number != std::floor(a.number) ||
          a.number >= static_cast<double>(spec.shards)) {
        malformed("assignment entry is not a valid shard id", "assignment");
      }
      spec.assignment.push_back(static_cast<std::uint32_t>(a.number));
    }
  }
  return spec;
}

void write_work_spec(const std::string& path, const FleetWorkSpec& spec) {
  const std::string doc = spec.to_json();
  atomic_write_file(path, [&](std::ostream& os) { os << doc << '\n'; });
}

FleetWorkSpec load_work_spec(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw RobustError(ErrorCode::kIoMalformed, "cannot open fleet spec", path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_work_spec(ss.str());
}

}  // namespace speedscale::robust::supervisor
