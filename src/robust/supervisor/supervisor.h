// Crash-tolerant multi-process sweep supervisor.
//
// Extends the PR 5 determinism contract — parallelism unobservable in every
// recorded artifact — from a thread pool to a fleet of worker *processes*,
// where the failure modes are the ones processes actually have: SIGKILLed
// workers, torn checkpoint tails, hung shards.  The design is
// state-on-disk, supervisor-as-policy:
//
//   * the work-list crosses the process boundary as a FleetWorkSpec file
//     (work_spec.h), so item ownership is a pure function of (spec, shard)
//     and survives any crash without coordination state;
//   * each worker appends completed items to its own shard log (shard_log.h),
//     flushed per line through the robust::checkpoint discipline — a killed
//     worker resumes from its last valid line, recomputing at most the item
//     that was in flight;
//   * liveness is heartbeat files (atomic writes, never torn) plus the
//     PR 6 straggler math: a worker whose heartbeat is older than
//     max(min_seconds, factor x mean completed-item time) is declared hung,
//     SIGKILLed, and restarted;
//   * restarts back off exponentially (base * 2^restarts, capped) up to a
//     per-shard cap, after which the degradation ladder takes over: the
//     supervisor runs the shard's remaining items serially in-process and
//     marks the shard degraded — the run completes either way;
//   * the merge is index-ordered over item results, byte-identical to a
//     serial --jobs 1 run (suite JSON, certificate JSONL, merged counters),
//     which the chaos harness (tests/test_supervisor.cpp,
//     scripts/chaos_sweep.py) proves under seeded fault injection and real
//     random SIGKILLs.
//
// Fleet health publishes as supervisor.* *gauges* only (never counters), so
// a TelemetryHub + telemetry_tool --watch sees workers alive / restarts /
// re-queued items live without perturbing any deterministic artifact.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/fleet/cost_ledger.h"
#include "src/obs/fleet/fleet_events.h"
#include "src/robust/supervisor/shard_log.h"
#include "src/robust/supervisor/work_spec.h"

namespace speedscale::robust::supervisor {

/// The fleet observability plane (PR 8).  When enabled, every process in
/// the run journals correlation-tagged events and structured log records,
/// and the supervisor merges them after the run:
///
///   <work_dir>/events_supervisor.jsonl   supervisor policy events
///   <work_dir>/events_<S>.jsonl          shard S's worker events (all
///                                        incarnations append)
///   <work_dir>/log_supervisor.jsonl      supervisor speedscale.log/1
///   <work_dir>/log_<S>.jsonl             shard S's speedscale.log/1
///   trace_path                           merged Perfetto trace, one process
///                                        track per worker incarnation
///   log_path                             merged speedscale.log/1
///
/// plus fleet.* gauges (gauges only — the determinism contract) and a
/// per-item cost ledger embedded in fleet_state.json.  Everything here is
/// observability: disabling the plane changes no recorded sweep artifact.
struct FleetObsOptions {
  bool enabled = false;
  /// Correlation tag stamped into every record and event; defaults to
  /// "fleet" when empty.
  std::string run_id;
  /// Merged Perfetto trace; empty = "<work_dir>/fleet_trace.json".
  std::string trace_path;
  /// Merged structured log; empty = "<work_dir>/fleet_log.jsonl".
  std::string log_path;
};

struct FleetOptions {
  /// Path of the sweep_worker binary to spawn (required).
  std::string worker_binary;
  /// Directory holding the spec, shard logs, heartbeats, and fleet state.
  /// Reusing a directory resumes its logs (the crash-recovery path).
  std::string work_dir;

  /// Watchdog deadline = max(heartbeat_min_seconds, factor x mean
  /// completed-item seconds) — the straggler policy of
  /// src/obs/live/straggler.h applied to heartbeat age.
  double heartbeat_factor = 8.0;
  double heartbeat_min_seconds = 5.0;

  /// Crash restarts allowed per shard before the degradation ladder runs
  /// the shard's remainder in-process.
  int max_restarts_per_shard = 4;
  /// Restart delay = backoff_base_ms * 2^(restarts-1), capped.
  long backoff_base_ms = 50;
  long backoff_cap_ms = 2000;
  /// Supervisor poll period (reap, heartbeats, gauges).
  long poll_ms = 20;
  /// Grace between SIGTERM and SIGKILL on an interrupted run.
  long stop_grace_ms = 5000;

  /// Extra argv appended to every worker spawn.
  std::vector<std::string> worker_args;
  /// Extra argv appended only to a shard's *first* incarnation — the chaos
  /// hook: inject a crash plan that dies once, then restart clean.
  std::vector<std::string> first_spawn_args;

  /// Fleet state JSON (worker pids/states/restarts), written atomically on
  /// every transition; empty = "<work_dir>/fleet_state.json".  The external
  /// chaos harness reads worker pids here.
  std::string state_path;

  /// When set, a true load makes the supervisor SIGTERM the fleet, wait for
  /// clean per-item flushes, and return interrupted (resumable) — the
  /// SIGTERM/SIGINT contract of bench_suite_runner --fleet.
  const std::atomic<bool>* stop_flag = nullptr;

  /// Publish supervisor.* and fleet.* gauges (gauges only — never counters).
  bool publish_gauges = true;

  /// Fleet observability plane (trace correlation, merged logs, cost
  /// ledger).  Off by default: a bare fleet run costs nothing new.
  FleetObsOptions obs;
};

struct FleetResult {
  bool completed = false;    ///< every item present and merged
  bool interrupted = false;  ///< stopped via stop_flag; logs are resumable
  int restarts = 0;          ///< worker respawns (crashes + hangs + interrupts)
  int hung_kills = 0;        ///< watchdog SIGKILLs
  std::int64_t requeued_items = 0;  ///< items re-queued across all restarts
  std::size_t torn_lines = 0;       ///< shard-log lines discarded on loads
  std::vector<std::size_t> degraded_shards;  ///< finished on the ladder

  /// Index-ordered item results (size n_items when completed).
  std::vector<ItemResult> items;

  /// Assembled artifacts for FleetWorkKind::kSuitePoints (empty otherwise
  /// or when interrupted) — byte-identical to the serial run's.
  std::string suite_json;
  std::string cert_jsonl;
  std::map<std::string, std::int64_t> merged_counters;

  /// Per-item cost ledger (FleetObsOptions::enabled and completed runs
  /// only): wall + work per item, attributed to the incarnation that
  /// committed it.  Also embedded in fleet_state.json and printed by
  /// bench_suite_runner --fleet-report.
  obs::fleet::FleetCostReport cost;
};

class Supervisor {
 public:
  Supervisor(FleetWorkSpec spec, FleetOptions options);
  /// Kills and reaps any still-running workers (abnormal-exit safety).
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Runs the fleet to completion (or interruption) and merges.  Throws
  /// RobustError on unrecoverable failure: missing worker binary, a worker
  /// reporting a permanent error (bad spec / deterministic item failure),
  /// or items still missing after every ladder rung.
  FleetResult run();

 private:
  struct Worker {
    std::size_t shard = 0;
    long pid = -1;
    int restarts = 0;
    enum class State { kIdle, kRunning, kBackoff, kDone, kDegraded } state = State::kIdle;
    std::chrono::steady_clock::time_point restart_due{};
    std::chrono::steady_clock::time_point spawned_at{};
    std::chrono::steady_clock::time_point last_progress{};
    std::uint64_t last_seq = 0;
    bool hb_seen = false;
    bool hb_busy = false;
    std::int64_t hb_items_done = 0;
    double hb_busy_seconds = 0.0;
    /// Completed-incarnation history (feeds the mean-item-time estimate).
    std::int64_t hist_items_done = 0;
    double hist_busy_seconds = 0.0;
    /// Items found already logged when the fleet started (resume).
    std::int64_t resumed_items = 0;
  };

  [[nodiscard]] std::string shard_log_path(std::size_t shard) const;
  [[nodiscard]] std::string heartbeat_path(std::size_t shard) const;
  [[nodiscard]] std::string events_path(std::size_t shard) const;
  [[nodiscard]] std::string worker_log_path(std::size_t shard) const;
  /// Appends one event to the supervisor's journal (no-op with the plane
  /// off).  `shard`/`incarnation` describe the worker the decision is about.
  void journal(obs::fleet::FleetEventKind kind, long shard, long incarnation,
               const std::string& detail = {});
  void merge_observability(FleetResult& result);
  void spawn(Worker& w);
  void reap(FleetResult& result);
  void schedule_restart(Worker& w, FleetResult& result);
  void run_watchdog(FleetResult& result);
  void run_degraded_shard(Worker& w, FleetResult& result);
  void request_stop(FleetResult& result);
  void publish_gauges(const FleetResult& result) const;
  void write_state(const FleetResult& result) const;
  void kill_all();

  FleetWorkSpec spec_;
  FleetOptions options_;
  std::string spec_path_;
  std::string state_path_;
  std::string run_id_;
  std::vector<Worker> workers_;
  bool stopping_ = false;
  std::int64_t items_done_estimate_ = 0;
  double eta_seconds_ = -1.0;  ///< last straggler-report ETA (fleet.eta_seconds)
  obs::fleet::EventClock event_clock_;
  std::unique_ptr<obs::fleet::FleetEventLog> events_;
  mutable std::string last_state_doc_;
};

/// Fleet counterpart of analysis::run_suite_sweep: shards `points` over
/// `workers` supervised processes and returns artifacts byte-identical to
/// run_suite_sweep(points, suite_options, {.jobs = 1}).  The merged counter
/// deltas are routed toward the caller exactly like a thread sweep's
/// (index-ordered obs::shard_aware_add).
[[nodiscard]] FleetResult run_suite_sweep_fleet(const std::vector<analysis::SuitePoint>& points,
                                                const analysis::SuiteOptions& suite_options,
                                                std::size_t workers,
                                                const FleetOptions& options);

}  // namespace speedscale::robust::supervisor
