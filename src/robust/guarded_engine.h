// Guarded execution of the generic numeric engine: run, verify, retry.
//
// The numeric engine (sim/numeric_engine.h) is the one simulator in this
// library without closed forms backing it, so it gets the full treatment:
// every run is validated by the post-run invariant checker (invariants.h),
// and a tripped check triggers re-integration with doubled
// substeps_per_interval — bounded backoff, at most `max_attempts` rungs —
// instead of returning silently wrong numbers or crashing.  The outcome is
// typed (RunOutcome): kOk on a clean first attempt, kDegraded when a retry
// rung was needed (diagnostics record every trip), kFailed when the ladder
// is exhausted.
//
// Retries are counted under "robust.retry.*" and emitted as
// kPhaseBoundary trace events labelled "robust.retry".
#pragma once

#include "src/core/instance.h"
#include "src/core/power.h"
#include "src/robust/diagnostics.h"
#include "src/robust/invariants.h"
#include "src/sim/numeric_engine.h"

namespace speedscale::robust {

struct GuardedNumericOptions {
  NumericConfig base;              ///< attempt 0 config; substeps double per rung
  int max_attempts = 3;            ///< total attempts (>= 1)
  double identity_tol = 1e-5;      ///< lemma-residual tolerance per attempt
  std::optional<double> alpha;     ///< set iff power is P(s) = s^alpha (Lemma 4)
};

/// Algorithm C under guard: structural checks + the energy == flow identity.
[[nodiscard]] RunOutcome<SampledRun> run_generic_c_guarded(
    const Instance& instance, const PowerFunction& power,
    const GuardedNumericOptions& options = {});

/// Algorithm NC (uniform density) under guard: structural checks, Lemma 3
/// against a guarded reference C run, and Lemma 4 when `alpha` is set.
/// If the reference C run itself fails, the outcome is kFailed.
[[nodiscard]] RunOutcome<SampledRun> run_generic_nc_uniform_guarded(
    const Instance& instance, const PowerFunction& power,
    const GuardedNumericOptions& options = {});

}  // namespace speedscale::robust
