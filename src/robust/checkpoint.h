// JSONL checkpoint/resume for long adversarial searches.
//
// The coordinate-ascent worst-case search (analysis/worst_case.h) can run
// for hours; a killed process must restart from its best-known state, not
// from scratch.  The checkpoint is an append-only JSONL file — one line per
// completed round:
//
//   {"round":4,"step":1.4142...,"ratio":1.6180...,"x":[...17 digits...]}
//
// `round` is the index of the *next* round to run, `step` the multiplicative
// ascent step entering it, `ratio` the best ratio so far, `x` the parameter
// vector achieving it.  Appends are flushed per line, so a crash loses at
// most the line being written; the loader skips malformed (torn) lines and
// resumes from the last valid one.  All doubles round-trip at 17 significant
// digits, so a resumed search replays the uninterrupted trajectory exactly.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace speedscale::robust {

struct SearchCheckpoint {
  int next_round = 0;      ///< first round the resumed search should run
  double step = 2.0;       ///< coordinate-ascent step entering that round
  double ratio = 0.0;      ///< best objective so far
  std::vector<double> x;   ///< parameter vector achieving `ratio`
};

/// Appends one checkpoint line and flushes.  Throws RobustError
/// (ErrorCode::kIoMalformed) if the file cannot be opened or written.
void append_search_checkpoint(const std::string& path, const SearchCheckpoint& cp);

/// Loads the last *valid* checkpoint line, skipping torn/corrupt lines.
/// Returns nullopt when the file is missing or holds no valid line.
/// `skipped_lines`, when given, receives the number of invalid lines.
[[nodiscard]] std::optional<SearchCheckpoint> load_search_checkpoint(
    const std::string& path, std::size_t* skipped_lines = nullptr);

}  // namespace speedscale::robust
