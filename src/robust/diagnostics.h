// Typed failure taxonomy for the numeric stack.
//
// The verification machinery is most brittle exactly where the model is
// delicate (the alpha -> 1 limit, bootstrap/completion epsilons, hours-long
// adversarial searches), so failures there must be *data*, not process
// aborts.  This header defines:
//
//   * ErrorCode   — the closed taxonomy every guard reports under;
//   * Diagnostic  — one typed failure record (code + message + context);
//   * RobustError — the exception carrying a Diagnostic across layers that
//                   still use stack unwinding internally;
//   * RunOutcome  — the boundary type: a value OR a diagnosis, plus the
//                   degradation status (ok / degraded / failed) and the
//                   attempt count of the retry ladder that produced it.
//
// Contract: guards *throw* RobustError close to the failing operation;
// harness-level wrappers catch it and convert to RunOutcome so one bad
// algorithm/instance never aborts a whole suite or search.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace speedscale::robust {

/// Closed error taxonomy (docs/robustness.md documents each member).
enum class ErrorCode : std::uint8_t {
  kNumericNonfinite,   ///< NaN/inf escaped a numeric kernel
  kRootNotBracketed,   ///< root finder's bracket never straddled a sign change
  kNoConvergence,      ///< iteration budget exhausted without meeting tol
  kInvariantBreach,    ///< post-run invariant checker tripped
  kIoMalformed,        ///< malformed trace/checkpoint input
  kTaskFailed,         ///< a thread-pool task threw
  kBudgetExhausted,    ///< wall-clock/evaluation budget ran out mid-search
};

/// Stable lower-case name ("numeric_nonfinite", ...); used in messages,
/// metrics suffixes, and the JSONL checkpoint/diagnostic encodings.
[[nodiscard]] const char* error_code_name(ErrorCode code);

/// One typed failure record.  `context` carries the machine-readable locus
/// ("line 17", "t=3.25 substep=12", ...) separately from the prose message.
struct Diagnostic {
  ErrorCode code = ErrorCode::kNumericNonfinite;
  std::string message;
  std::string context;

  Diagnostic() = default;
  Diagnostic(ErrorCode c, std::string msg, std::string ctx = {})
      : code(c), message(std::move(msg)), context(std::move(ctx)) {}

  [[nodiscard]] std::string to_string() const;
};

/// Exception form of a Diagnostic, for layers that unwind internally.
/// what() == diagnostic().to_string().
class RobustError : public std::runtime_error {
 public:
  explicit RobustError(Diagnostic diag)
      : std::runtime_error(diag.to_string()), diag_(std::move(diag)) {}
  RobustError(ErrorCode code, std::string message, std::string context = {})
      : RobustError(Diagnostic{code, std::move(message), std::move(context)}) {}

  [[nodiscard]] const Diagnostic& diagnostic() const noexcept { return diag_; }
  [[nodiscard]] ErrorCode code() const noexcept { return diag_.code; }

 private:
  Diagnostic diag_;
};

/// How a guarded run ended.
enum class RunStatus : std::uint8_t {
  kOk,        ///< first attempt, all invariants clean
  kDegraded,  ///< succeeded after retry/fallback; diagnostics list the trips
  kFailed,    ///< every attempt failed; no value
};

[[nodiscard]] const char* run_status_name(RunStatus status);

/// Boundary type of guarded execution: either a value (ok/degraded) or a
/// diagnosis (failed), never a crash.
template <typename T>
struct RunOutcome {
  RunStatus status = RunStatus::kFailed;
  std::optional<T> value;                ///< engaged unless status == kFailed
  std::vector<Diagnostic> diagnostics;   ///< every guard trip along the way
  int attempts = 0;                      ///< retry-ladder rungs consumed

  [[nodiscard]] bool ok() const noexcept { return status != RunStatus::kFailed; }
  explicit operator bool() const noexcept { return ok(); }

  /// The value, or a RobustError carrying the first diagnostic.
  [[nodiscard]] T& value_or_throw() {
    if (!value.has_value()) {
      throw RobustError(diagnostics.empty()
                            ? Diagnostic{ErrorCode::kInvariantBreach,
                                         "RunOutcome: failed with no diagnostics"}
                            : diagnostics.front());
    }
    return *value;
  }
};

}  // namespace speedscale::robust
