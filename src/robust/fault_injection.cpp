#include "src/robust/fault_injection.h"

#include "src/obs/metrics_registry.h"

namespace speedscale::robust {

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kOdeSubstepNaN:
      return "ode_substep_nan";
    case FaultSite::kRootBracket:
      return "root_bracket";
    case FaultSite::kTraceLine:
      return "trace_line";
    case FaultSite::kPoolTask:
      return "pool_task";
    case FaultSite::kSweepItemStall:
      return "sweep_item_stall";
    case FaultSite::kWorkerCrashMidShard:
      return "worker_crash_mid_shard";
    case FaultSite::kCheckpointTornTail:
      return "checkpoint_torn_tail";
    case FaultSite::kHeartbeatStall:
      return "heartbeat_stall";
    case FaultSite::kSiteCount:
      break;
  }
  return "unknown";
}

std::optional<FaultSite> fault_site_by_name(const std::string& name) {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    if (name == fault_site_name(site)) return site;
  }
  return std::nullopt;
}

FaultPlan seed_faults(std::uint64_t seed, FaultSite site, int count, std::uint64_t range) {
  FaultPlan plan;
  if (range == 0) return plan;
  auto& s = plan.fire_at[static_cast<std::size_t>(site)];
  std::uint64_t x = seed;
  while (s.size() < static_cast<std::size_t>(count)) {
    // splitmix64: tiny, seed-stable, platform-independent.
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z = z ^ (z >> 31);
    s.insert(z % range);
  }
  return plan;
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::install(FaultPlan plan) {
  std::lock_guard<std::mutex> lk(mu_);
  plan_ = std::move(plan);
  for (auto& c : calls_) c.store(0, std::memory_order_relaxed);
  for (auto& c : fired_) c.store(0, std::memory_order_relaxed);
  detail::g_faults_enabled.store(!plan_.empty(), std::memory_order_relaxed);
}

void FaultInjector::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  detail::g_faults_enabled.store(false, std::memory_order_relaxed);
  plan_ = FaultPlan{};
}

bool FaultInjector::should_fire(FaultSite site) {
  const auto i = static_cast<std::size_t>(site);
  const std::uint64_t index = calls_[i].fetch_add(1, std::memory_order_relaxed);
  bool fire = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    fire = plan_.fire_at[i].count(index) > 0;
  }
  if (fire) {
    fired_[i].fetch_add(1, std::memory_order_relaxed);
    if (obs::metrics_enabled()) {
      obs::registry()
          .counter(std::string("robust.faults.fired.") + fault_site_name(site))
          .add(1);
    }
  }
  return fire;
}

std::uint64_t FaultInjector::calls(FaultSite site) const {
  return calls_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::fired(FaultSite site) const {
  return fired_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
}

}  // namespace speedscale::robust
