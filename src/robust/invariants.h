// Post-run invariant checker: corrupted numerics are caught at the run
// boundary, not three layers downstream.
//
// Structural checks (every run, every power function):
//   * sample times non-decreasing and finite; speeds finite and >= 0;
//     driving weights finite;
//   * objectives (energy, fractional/integral flow) finite and >= 0;
//   * every job completed at or after its release.
//
// Identity checks (the paper's lemmas, used as numeric tripwires):
//   * Algorithm C: cumulative energy == cumulative fractional flow (the
//     P(s) = W rule makes both equal int W dt; any power function);
//   * Lemma 3: Algorithm NC's energy equals Algorithm C's on the same
//     instance (any power function) — supplied via `reference_c`;
//   * Lemma 4 (P = s^alpha only): fractional flow == energy / (1 - 1/alpha).
//
// A tripped check is a Diagnostic (ErrorCode::kInvariantBreach or
// kNumericNonfinite), never an abort: the guarded engine reacts by
// re-integrating with more substeps (see guarded_engine.h).
#pragma once

#include <optional>
#include <vector>

#include "src/core/instance.h"
#include "src/robust/diagnostics.h"
#include "src/sim/numeric_engine.h"

namespace speedscale::robust {

/// Which identity profile applies to the run under check.
enum class RunKind : std::uint8_t {
  kAlgorithmC,   ///< P = W rule: energy == fractional flow
  kAlgorithmNC,  ///< P = U rule: Lemma 3 vs reference, Lemma 4 if alpha given
  kGeneric,      ///< structural checks only
};

struct InvariantOptions {
  RunKind kind = RunKind::kGeneric;
  /// Relative tolerance of the identity residuals.  The numeric engine's
  /// fixed-substep RK4 leaves O(h^4) residuals well under this at the
  /// default substep count; a NaN or a skipped event blows far past it.
  double identity_tol = 1e-5;
  /// Set when the power function is P(s) = s^alpha: enables Lemma 4.
  std::optional<double> alpha;
  /// Completion epsilon of the run's NumericConfig.  Declaring a job done at
  /// relative residual volume eps truncates its fractional-flow tail by
  /// Theta(eps^{1-1/alpha}) — an error that does *not* shrink with substeps —
  /// so Lemma 4's tolerance widens by that term.
  double completion_rel_eps = 1e-9;
  /// Algorithm C run on the same instance: enables the Lemma 3 check.
  const SampledRun* reference_c = nullptr;
  /// Completion may precede release by at most this absolute slack.
  double completion_slack = 1e-9;
};

/// Everything the checker measured, plus the breach list (empty == clean).
struct InvariantReport {
  std::vector<Diagnostic> breaches;
  double lemma3_residual = 0.0;     ///< |E_run - E_ref| / max(1, E_ref)
  double lemma4_residual = 0.0;     ///< |F - E/(1-1/alpha)| / max(1, F)
  double identity_residual = 0.0;   ///< C only: |E - F| / max(1, E)

  [[nodiscard]] bool ok() const { return breaches.empty(); }
  /// One line per breach, for error messages and logs.
  [[nodiscard]] std::string to_string() const;
};

/// Runs every applicable check on a numerically-integrated run.  Guard trips
/// are counted under "robust.invariants.*" when metrics are enabled.
[[nodiscard]] InvariantReport check_sampled_run(const Instance& instance, const SampledRun& run,
                                                const InvariantOptions& options = {});

}  // namespace speedscale::robust
