#include "src/robust/diagnostics.h"

namespace speedscale::robust {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNumericNonfinite:
      return "numeric_nonfinite";
    case ErrorCode::kRootNotBracketed:
      return "root_not_bracketed";
    case ErrorCode::kNoConvergence:
      return "no_convergence";
    case ErrorCode::kInvariantBreach:
      return "invariant_breach";
    case ErrorCode::kIoMalformed:
      return "io_malformed";
    case ErrorCode::kTaskFailed:
      return "task_failed";
    case ErrorCode::kBudgetExhausted:
      return "budget_exhausted";
  }
  return "unknown";
}

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kDegraded:
      return "degraded";
    case RunStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::string out = "[";
  out += error_code_name(code);
  out += "] ";
  out += message;
  if (!context.empty()) {
    out += " (";
    out += context;
    out += ")";
  }
  return out;
}

}  // namespace speedscale::robust
