// Crash-safe file writes: write to <path>.tmp, flush, then atomic rename.
//
// An interrupted bench or a killed search must never leave a truncated
// artifact where a complete one is expected — readers either see the old
// file, the new file, or no file, never a torn one.  (POSIX rename(2) is
// atomic within a filesystem; the ".tmp" sibling stays on the same mount.)
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

namespace speedscale::robust {

/// Writes `writer(os)` to `path` atomically.  Throws RobustError
/// (ErrorCode::kIoMalformed) if the temporary cannot be opened, the stream
/// fails, or the rename fails; in those cases `path` is left untouched.
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

/// The sibling temporary used by atomic_write_file: "<path>.tmp".
[[nodiscard]] std::string tmp_sibling(const std::string& path);

/// Renames tmp -> path, throwing RobustError(kIoMalformed) on failure.
/// Exposed for streaming writers (JSONL sinks) that hold the file open for
/// their lifetime and commit once at close.
void commit_tmp_file(const std::string& tmp_path, const std::string& path);

}  // namespace speedscale::robust
