// Power functions P: speed -> instantaneous power.
//
// The paper's headline results assume P(s) = s^alpha for alpha > 1, for which
// every trajectory of the P = W rule has a closed form (see kinematics.h).
// Lemmas 3 and 6, however, hold for *every* monotone convex power function
// with P(0) = 0; the numeric engine (src/sim/numeric_engine.h) exercises that
// generality with the non-polynomial functions below.
#pragma once

#include <memory>
#include <string>

#include "src/core/types.h"

namespace speedscale {

/// Abstract monotone convex power function with P(0) = 0.
class PowerFunction {
 public:
  virtual ~PowerFunction() = default;

  /// P(s).  Requires s >= 0.
  [[nodiscard]] virtual double power(double speed) const = 0;

  /// P^{-1}(p): the speed whose power draw is p.  Requires p >= 0.
  [[nodiscard]] virtual double speed_for_power(double p) const = 0;

  /// dP/ds.  The default implementation uses a central difference.
  [[nodiscard]] virtual double derivative(double speed) const;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// P(s) = s^alpha, alpha > 1.  The paper's canonical power function.
class PowerLaw final : public PowerFunction {
 public:
  explicit PowerLaw(double alpha);

  [[nodiscard]] double power(double speed) const override;
  [[nodiscard]] double speed_for_power(double p) const override;
  [[nodiscard]] double derivative(double speed) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  double alpha_;
};

/// P(s) = s^alpha + leak * s: a power law with a linear "leakage" term, a
/// standard model of static power.  Convex and monotone; the inverse is
/// computed by bracketed Newton/bisection.
class LeakyPowerLaw final : public PowerFunction {
 public:
  LeakyPowerLaw(double alpha, double leak);

  [[nodiscard]] double power(double speed) const override;
  [[nodiscard]] double speed_for_power(double p) const override;
  [[nodiscard]] double derivative(double speed) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double alpha_;
  double leak_;
};

/// P(s) = e^s - 1: super-polynomial growth; stress-tests the generic engine.
class ExpPower final : public PowerFunction {
 public:
  [[nodiscard]] double power(double speed) const override;
  [[nodiscard]] double speed_for_power(double p) const override;
  [[nodiscard]] double derivative(double speed) const override;
  [[nodiscard]] std::string name() const override;
};

}  // namespace speedscale
