// A scheduling instance: an immutable, validated set of jobs.
#pragma once

#include <vector>

#include "src/core/types.h"

namespace speedscale {

/// An immutable scheduling instance.
///
/// Construction validates the jobs (positive volumes and densities,
/// non-negative releases) and assigns contiguous JobIds 0..n-1 in the order
/// given.  Helper queries cover the aggregates that the algorithms and the
/// analysis harness need.
class Instance {
 public:
  Instance() = default;

  /// Builds an instance from jobs.  Ids are (re)assigned 0..n-1 in order.
  /// Throws ModelError on invalid data.
  explicit Instance(std::vector<Job> jobs);

  [[nodiscard]] const std::vector<Job>& jobs() const { return jobs_; }
  [[nodiscard]] const Job& job(JobId id) const { return jobs_.at(static_cast<size_t>(id)); }
  [[nodiscard]] std::size_t size() const { return jobs_.size(); }
  [[nodiscard]] bool empty() const { return jobs_.empty(); }

  [[nodiscard]] double total_volume() const;
  [[nodiscard]] double total_weight() const;
  [[nodiscard]] double max_release() const;
  [[nodiscard]] double min_density() const;
  [[nodiscard]] double max_density() const;

  /// True iff all jobs share one density (within relative tolerance).
  /// The uniform-density algorithms (paper Section 3) require this.
  [[nodiscard]] bool uniform_density(double rel_tol = 1e-12) const;

  /// Job ids sorted by (release, id): the FIFO order used by Algorithm NC.
  [[nodiscard]] std::vector<JobId> fifo_order() const;

  /// Returns a copy whose densities are rounded *down* to integer powers of
  /// `beta` (paper Section 4: Algorithm NC for non-uniform densities rounds
  /// densities to powers of a constant beta > 4).  Volumes are unchanged, so
  /// rounded weights shrink by a factor < beta.
  [[nodiscard]] Instance rounded_densities(double beta) const;

  /// Returns the sub-instance of jobs with release < t (ids preserved from
  /// this instance via the returned mapping when needed; here ids are
  /// reassigned and `original_ids` reports the correspondence).
  [[nodiscard]] Instance released_before(double t, std::vector<JobId>* original_ids = nullptr) const;

 private:
  std::vector<Job> jobs_;
};

}  // namespace speedscale
