#include "src/core/power.h"

#include <cmath>

#include "src/numerics/roots.h"

namespace speedscale {

double PowerFunction::derivative(double speed) const {
  const double h = std::max(1e-7, 1e-7 * std::abs(speed));
  const double lo = std::max(0.0, speed - h);
  return (power(speed + h) - power(lo)) / (speed + h - lo);
}

PowerLaw::PowerLaw(double alpha) : alpha_(alpha) {
  if (!(alpha > 1.0)) throw ModelError("PowerLaw: alpha must exceed 1");
}

double PowerLaw::power(double speed) const { return std::pow(speed, alpha_); }

double PowerLaw::speed_for_power(double p) const {
  if (p <= 0.0) return 0.0;
  return std::pow(p, 1.0 / alpha_);
}

double PowerLaw::derivative(double speed) const {
  return alpha_ * std::pow(speed, alpha_ - 1.0);
}

std::string PowerLaw::name() const { return "s^" + std::to_string(alpha_); }

LeakyPowerLaw::LeakyPowerLaw(double alpha, double leak) : alpha_(alpha), leak_(leak) {
  if (!(alpha > 1.0)) throw ModelError("LeakyPowerLaw: alpha must exceed 1");
  if (!(leak >= 0.0)) throw ModelError("LeakyPowerLaw: leak must be non-negative");
}

double LeakyPowerLaw::power(double speed) const {
  return std::pow(speed, alpha_) + leak_ * speed;
}

double LeakyPowerLaw::speed_for_power(double p) const {
  if (p <= 0.0) return 0.0;
  // Bracket: s^alpha <= P(s), so s <= p^{1/alpha}; and leak*s <= P(s).
  double hi = std::pow(p, 1.0 / alpha_);
  if (leak_ > 0.0) hi = std::min(hi * 1.0 + hi, std::max(hi, p / leak_));
  hi = std::max(hi, 1e-300);
  while (power(hi) < p) hi *= 2.0;
  return numerics::bisect([&](double s) { return power(s) - p; }, 0.0, hi, 1e-14);
}

double LeakyPowerLaw::derivative(double speed) const {
  return alpha_ * std::pow(speed, alpha_ - 1.0) + leak_;
}

std::string LeakyPowerLaw::name() const {
  return "s^" + std::to_string(alpha_) + "+" + std::to_string(leak_) + "*s";
}

double ExpPower::power(double speed) const { return std::expm1(speed); }

double ExpPower::speed_for_power(double p) const {
  if (p <= 0.0) return 0.0;
  return std::log1p(p);
}

double ExpPower::derivative(double speed) const { return std::exp(speed); }

std::string ExpPower::name() const { return "e^s-1"; }

}  // namespace speedscale
