// Objective evaluation: energy, fractional and integral weighted flow-time.
//
// Definitions (paper, Section 2):
//   energy          E        = int P(s(t)) dt
//   integral flow   Fint[j]  = W[j] * (c[j] - r[j])
//   fractional flow F[j]     = rho[j] * int_{r[j]}^{inf} V[j](t) dt
// The objectives are G_int = E + sum Fint[j] and G_frac = E + sum F[j].
//
// Metrics are computed by *replaying* a recorded Schedule, cutting time at
// segment boundaries and at release epochs, and integrating each piece in
// closed form.  For power-law segments the energy integral uses the P = W
// identity, so replayed metrics are exact; simulators also accumulate the
// same quantities online, and tests assert the two agree.
#pragma once

#include "src/core/instance.h"
#include "src/core/power.h"
#include "src/core/schedule.h"

namespace speedscale {

/// Evaluated objective components of one schedule on one instance.
struct Metrics {
  double energy = 0.0;
  double fractional_flow = 0.0;
  double integral_flow = 0.0;

  [[nodiscard]] double fractional_objective() const { return energy + fractional_flow; }
  [[nodiscard]] double integral_objective() const { return energy + integral_flow; }
};

/// Exact replay-based evaluation.
///
/// Requirements: every job of `instance` is completed by `schedule` (so the
/// flow integrals are finite); for kPowerDecay/kPowerGrow segments, `power`
/// must be PowerLaw(schedule.alpha()) — those laws encode the P = W rule and
/// their closed-form energy is only valid for that power function.
/// kConstant/kIdle segments work with any power function.
[[nodiscard]] Metrics compute_metrics(const Instance& instance, const Schedule& schedule,
                                      const PowerFunction& power);

/// Reference implementation that re-sums the active set per replay piece
/// (O(pieces x jobs)).  compute_metrics maintains the active weighted-volume
/// sum incrementally with Kahan compensation (O(pieces + n log n)); tests
/// assert the two agree to ~1e-9 on every schedule family.
[[nodiscard]] Metrics compute_metrics_reference(const Instance& instance,
                                                const Schedule& schedule,
                                                const PowerFunction& power);

/// Sum of per-machine metrics for multi-machine schedules.
[[nodiscard]] Metrics combine(const Metrics& a, const Metrics& b);

}  // namespace speedscale
