#include "src/core/instance.h"

#include <algorithm>
#include <cmath>

namespace speedscale {

Instance::Instance(std::vector<Job> jobs) : jobs_(std::move(jobs)) {
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    Job& j = jobs_[i];
    j.id = static_cast<JobId>(i);
    if (!(j.release >= 0.0) || !std::isfinite(j.release)) {
      throw ModelError("Instance: job " + std::to_string(i) + " has invalid release time");
    }
    if (!(j.volume > 0.0) || !std::isfinite(j.volume)) {
      throw ModelError("Instance: job " + std::to_string(i) + " has non-positive volume");
    }
    if (!(j.density > 0.0) || !std::isfinite(j.density)) {
      throw ModelError("Instance: job " + std::to_string(i) + " has non-positive density");
    }
  }
}

double Instance::total_volume() const {
  double v = 0.0;
  for (const Job& j : jobs_) v += j.volume;
  return v;
}

double Instance::total_weight() const {
  double w = 0.0;
  for (const Job& j : jobs_) w += j.weight();
  return w;
}

double Instance::max_release() const {
  double r = 0.0;
  for (const Job& j : jobs_) r = std::max(r, j.release);
  return r;
}

double Instance::min_density() const {
  double d = kInf;
  for (const Job& j : jobs_) d = std::min(d, j.density);
  return d;
}

double Instance::max_density() const {
  double d = 0.0;
  for (const Job& j : jobs_) d = std::max(d, j.density);
  return d;
}

bool Instance::uniform_density(double rel_tol) const {
  if (jobs_.empty()) return true;
  const double d0 = jobs_.front().density;
  for (const Job& j : jobs_) {
    if (std::abs(j.density - d0) > rel_tol * std::max(1.0, std::abs(d0))) return false;
  }
  return true;
}

std::vector<JobId> Instance::fifo_order() const {
  std::vector<JobId> order(jobs_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<JobId>(i);
  std::stable_sort(order.begin(), order.end(), [this](JobId a, JobId b) {
    const Job& ja = jobs_[static_cast<size_t>(a)];
    const Job& jb = jobs_[static_cast<size_t>(b)];
    if (ja.release != jb.release) return ja.release < jb.release;
    return a < b;
  });
  return order;
}

Instance Instance::rounded_densities(double beta) const {
  if (!(beta > 1.0)) throw ModelError("rounded_densities: beta must exceed 1");
  std::vector<Job> out = jobs_;
  for (Job& j : out) {
    // Largest power of beta that is <= density.  Use floor of log, then fix
    // up boundary rounding so exact powers map to themselves.
    double k = std::floor(std::log(j.density) / std::log(beta));
    double rounded = std::pow(beta, k);
    if (rounded * beta <= j.density * (1.0 + 1e-12)) rounded *= beta;
    if (rounded > j.density * (1.0 + 1e-12)) rounded /= beta;
    j.density = rounded;
  }
  return Instance(std::move(out));
}

Instance Instance::released_before(double t, std::vector<JobId>* original_ids) const {
  std::vector<Job> out;
  if (original_ids) original_ids->clear();
  for (const Job& j : jobs_) {
    if (j.release < t) {
      out.push_back(j);
      if (original_ids) original_ids->push_back(j.id);
    }
  }
  return Instance(std::move(out));
}

}  // namespace speedscale
