// Exact closed-form kinematics of the "power = weight" rule for P(s) = s^alpha.
//
// Both algorithms in the paper set the machine's instantaneous power equal to
// a weight-like quantity that the machine itself moves:
//
//  * Algorithm C (clairvoyant, Section 2): P(s(t)) = W(t), the total
//    *remaining* weight.  While the current job has density rho this gives
//    the autonomous ODE  dW/dt = -rho * W^{1/alpha}  (weight decays).
//
//  * Algorithm NC (non-clairvoyant, Section 3): P(s(t)) = C0 + Wbreve(t),
//    a constant offset plus the weight of the current job *processed so far*.
//    With U = C0 + Wbreve this gives  dU/dt = +rho * U^{1/alpha}  (the same
//    curve traversed in reverse; cf. Figure 1b of the paper).
//
// With b = 1 - 1/alpha both ODEs integrate in closed form:
//
//    decay:  W(t)^b = W(0)^b - rho * b * t      (until W = 0)
//    growth: U(t)^b = U(0)^b + rho * b * t
//
// and the energy of a segment, which under P = s^alpha and the P = W rule is
// exactly the integral of the weight, is
//
//    int W dt over W: W0 -> W1  =  (W0^{1+b} - W1^{1+b}) / (rho * (1+b)).
//
// Every simulator in this library advances trajectories through these
// formulas, so for power-law P the runs are exact up to floating point;
// this is what lets the tests check the paper's lemma-level *identities*
// (Lemmas 3, 4, 6, 21, 22) to ~1e-9 instead of statistically.
#pragma once

#include "src/core/types.h"

namespace speedscale {

/// Closed-form trajectory algebra for P(s) = s^alpha.
///
/// All member functions are pure.  `rho` is the density of the job the
/// machine is currently processing; weights are total weights obeying the
/// P = W (or P = U) rule.
class PowerLawKinematics {
 public:
  explicit PowerLawKinematics(double alpha);

  [[nodiscard]] double alpha() const { return alpha_; }
  /// b = 1 - 1/alpha, the exponent that linearizes the ODE.
  [[nodiscard]] double b() const { return b_; }

  /// Speed implied by the P = W rule at weight level w: s = w^{1/alpha}.
  [[nodiscard]] double speed_at_weight(double w) const;

  // --- Decaying branch (Algorithm C): dW/dt = -rho W^{1/alpha} ---

  /// Weight after running for dt from W0 (clamped at 0).
  [[nodiscard]] double decay_weight_after(double w0, double rho, double dt) const;

  /// Time for the weight to fall from w0 to w1 (requires 0 <= w1 <= w0).
  [[nodiscard]] double decay_time_to_weight(double w0, double w1, double rho) const;

  /// Time for the weight to fall from w0 to 0 (Lemma 2.2 rearranged).
  [[nodiscard]] double decay_time_to_zero(double w0, double rho) const;

  /// int W dt while the weight falls from w0 to w1.  Under P = s^alpha and
  /// the P = W rule this is both the energy and (for Algorithm C) the
  /// fractional flow-time accumulated over the segment.
  [[nodiscard]] double decay_integral(double w0, double w1, double rho) const;

  /// Volume processed while weight falls from w0 to w1: (w0 - w1) / rho.
  [[nodiscard]] static double decay_volume(double w0, double w1, double rho);

  // --- Growing branch (Algorithm NC): dU/dt = +rho U^{1/alpha} ---

  /// U after running for dt from u0.
  ///
  /// Note on u0 = 0: the ODE dU/dt = U^{1/alpha} with U(0)=0 has both the
  /// trivial solution U == 0 and the growing power-curve solution.  The paper
  /// resolves the ambiguity by adding an arbitrarily small excess speed
  /// epsilon; this function implements the epsilon -> 0 limit by always
  /// selecting the growing branch.
  [[nodiscard]] double grow_weight_after(double u0, double rho, double dt) const;

  /// Time for U to grow from u0 to u1 (requires u1 >= u0 >= 0).
  [[nodiscard]] double grow_time_to_weight(double u0, double u1, double rho) const;

  /// int U dt while U grows from u0 to u1: the energy of the NC segment.
  [[nodiscard]] double grow_integral(double u0, double u1, double rho) const;

  /// Volume processed while U grows from u0 to u1: (u1 - u0) / rho.
  [[nodiscard]] static double grow_volume(double u0, double u1, double rho);

 private:
  double alpha_;
  double b_;
};

}  // namespace speedscale
