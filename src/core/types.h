// Core value types for the speed-scaling model of
// Azar, Devanur, Huang, Panigrahi, "Speed Scaling in the Non-clairvoyant
// Model" (SPAA 2015).
//
// The model (paper, Section 2): a single machine (or k identical machines)
// runs at a controllable speed s(t) >= 0 consuming power P(s(t)).  Each job j
// has a release time r[j], a volume V[j] and a density rho[j]; its weight is
// W[j] = rho[j] * V[j].  The objective is energy plus (fractional or
// integral) weighted flow-time.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace speedscale {

/// Index of a job within an Instance.  Stable across the whole pipeline:
/// schedules, metrics, and traces all refer to jobs by JobId.
using JobId = std::int32_t;

/// Sentinel meaning "no job" (an idle segment, an unassigned slot, ...).
inline constexpr JobId kNoJob = -1;

/// Sentinel for machine indices.
using MachineId = std::int32_t;
inline constexpr MachineId kNoMachine = -1;

/// A single job of the scheduling instance.
///
/// In the *clairvoyant* online model, (release, volume, density) are revealed
/// at time `release`.  In the *non-clairvoyant known-density* model of the
/// paper only (release, density) are revealed at `release`; `volume` is
/// learned when the job completes.  The simulators enforce this split: the
/// non-clairvoyant algorithms only ever read `volume` through the engine's
/// completion test.
struct Job {
  JobId id = kNoJob;
  double release = 0.0;  ///< r[j] >= 0
  double volume = 0.0;   ///< V[j] > 0
  double density = 1.0;  ///< rho[j] > 0 (weight per unit volume)

  /// W[j] = rho[j] * V[j].
  [[nodiscard]] double weight() const { return density * volume; }
};

/// Validation failure for malformed instances or parameters.
class ModelError : public std::runtime_error {
 public:
  explicit ModelError(const std::string& what) : std::runtime_error(what) {}
};

/// Tolerance used when asserting exact paper identities in tests/benches.
inline constexpr double kTightTol = 1e-9;

/// Infinity shorthand.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace speedscale
