#include "src/core/metrics.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace speedscale {

namespace {

/// Energy and current-job flow contribution of one replay piece [a, b] that
/// lies inside segment `seg`.
struct PieceIntegrals {
  double energy = 0.0;         ///< int_a^b P(s(t)) dt
  double delta_volume = 0.0;   ///< volume of seg.job processed in [a, b]
  double processed_time = 0.0; ///< int_a^b DeltaV(t) dt with DeltaV(a) = 0
};

PieceIntegrals integrate_piece(const Schedule& sched, const PowerLawKinematics& kin,
                               const PowerFunction& power, const Segment& seg, double a,
                               double b) {
  PieceIntegrals out;
  const double len = b - a;
  switch (seg.law) {
    case SpeedLaw::kIdle:
      break;
    case SpeedLaw::kConstant: {
      const double s = seg.param;
      out.energy = power.power(s) * len;
      out.delta_volume = s * len;
      out.processed_time = 0.5 * s * len * len;
      break;
    }
    case SpeedLaw::kPowerDecay: {
      const double wa = kin.decay_weight_after(seg.param, seg.rho, a - seg.t0);
      const double wb = kin.decay_weight_after(seg.param, seg.rho, b - seg.t0);
      const double int_w = kin.decay_integral(wa, wb, seg.rho);
      out.energy = int_w;  // P(s) = W under the P = W rule
      out.delta_volume = PowerLawKinematics::decay_volume(wa, wb, seg.rho);
      out.processed_time = (wa * len - int_w) / seg.rho;
      break;
    }
    case SpeedLaw::kPowerGrow: {
      const double ua = kin.grow_weight_after(seg.param, seg.rho, a - seg.t0);
      const double ub = kin.grow_weight_after(seg.param, seg.rho, b - seg.t0);
      const double int_u = kin.grow_integral(ua, ub, seg.rho);
      out.energy = int_u;  // P(s) = U under the P = U rule
      out.delta_volume = PowerLawKinematics::grow_volume(ua, ub, seg.rho);
      out.processed_time = (int_u - ua * len) / seg.rho;
      break;
    }
  }
  (void)sched;
  return out;
}

/// Kahan-compensated accumulator for the running active weighted volume.
struct Compensated {
  double sum = 0.0;
  double c = 0.0;
  void add(double x) {
    const double y = x - c;
    const double t = sum + y;
    c = (t - sum) - y;
    sum = t;
  }
};

}  // namespace

namespace {
Metrics compute_metrics_impl(const Instance& instance, const Schedule& schedule,
                             const PowerFunction& power, bool incremental);
}  // namespace

Metrics compute_metrics(const Instance& instance, const Schedule& schedule,
                        const PowerFunction& power) {
  return compute_metrics_impl(instance, schedule, power, /*incremental=*/true);
}

Metrics compute_metrics_reference(const Instance& instance, const Schedule& schedule,
                                  const PowerFunction& power) {
  return compute_metrics_impl(instance, schedule, power, /*incremental=*/false);
}

namespace {
Metrics compute_metrics_impl(const Instance& instance, const Schedule& schedule,
                             const PowerFunction& power, bool incremental) {
  // Power-law segments hard-code P = s^alpha; refuse silent mis-evaluation.
  const bool has_power_law_segments =
      std::any_of(schedule.segments().begin(), schedule.segments().end(), [](const Segment& s) {
        return s.law == SpeedLaw::kPowerDecay || s.law == SpeedLaw::kPowerGrow;
      });
  if (has_power_law_segments) {
    const auto* pl = dynamic_cast<const PowerLaw*>(&power);
    if (pl == nullptr || std::abs(pl->alpha() - schedule.alpha()) > 1e-12) {
      throw ModelError(
          "compute_metrics: schedule contains power-law segments but the power "
          "function is not PowerLaw(schedule.alpha())");
    }
  }

  for (const Job& j : instance.jobs()) {
    if (!schedule.completed(j.id)) {
      throw ModelError("compute_metrics: job " + std::to_string(j.id) +
                       " never completes; flow-time is infinite");
    }
  }

  const PowerLawKinematics kin(schedule.alpha());

  // Cut the timeline at all segment boundaries and all release epochs so that
  // within each piece the active set is fixed and only the piece's job moves.
  std::vector<double> cuts;
  cuts.push_back(0.0);
  for (const Segment& s : schedule.segments()) {
    cuts.push_back(s.t0);
    cuts.push_back(s.t1);
  }
  for (const Job& j : instance.jobs()) cuts.push_back(j.release);
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end(),
                         [](double x, double y) { return std::abs(x - y) <= 1e-15; }),
             cuts.end());

  std::vector<double> remaining(instance.size());
  for (const Job& j : instance.jobs()) remaining[static_cast<std::size_t>(j.id)] = j.volume;

  // Incremental path: release order pointer + compensated running sum of
  // rho_j * V_j over released, unfinished jobs.  Cuts include every release
  // epoch, so releases only happen at piece starts.
  std::vector<JobId> by_release = instance.fifo_order();
  std::size_t next_release = 0;
  Compensated active_sum;

  Metrics m;
  const auto& segs = schedule.segments();
  std::size_t seg_idx = 0;

  for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
    const double a = cuts[c];
    const double b = cuts[c + 1];
    if (b <= a) continue;

    // Find the segment covering [a, b] (pieces never straddle boundaries).
    while (seg_idx < segs.size() && segs[seg_idx].t1 <= a) ++seg_idx;
    const Segment* seg = nullptr;
    if (seg_idx < segs.size() && segs[seg_idx].t0 <= a && b <= segs[seg_idx].t1) {
      seg = &segs[seg_idx];
    }

    PieceIntegrals pi;
    JobId cur = kNoJob;
    if (seg != nullptr && seg->law != SpeedLaw::kIdle) {
      pi = integrate_piece(schedule, kin, power, *seg, a, b);
      cur = seg->job;
    }
    m.energy += pi.energy;

    if (incremental) {
      while (next_release < by_release.size() &&
             instance.job(by_release[next_release]).release <= a + 1e-15) {
        const Job& j = instance.job(by_release[next_release]);
        active_sum.add(j.density * j.volume);
        ++next_release;
      }
      m.fractional_flow += active_sum.sum * (b - a);
      if (cur != kNoJob) {
        m.fractional_flow -= instance.job(cur).density * pi.processed_time;
      }
    } else {
      // Reference: re-sum the active set per piece.
      for (const Job& j : instance.jobs()) {
        if (j.release > a + 1e-15) continue;
        const double v = remaining[static_cast<std::size_t>(j.id)];
        if (v <= 0.0) continue;
        if (j.id == cur) {
          m.fractional_flow += j.density * (v * (b - a) - pi.processed_time);
        } else {
          m.fractional_flow += j.density * v * (b - a);
        }
      }
    }

    if (cur != kNoJob) {
      double& v = remaining[static_cast<std::size_t>(cur)];
      const double dv = std::min(v, pi.delta_volume);
      v -= dv;
      if (incremental) active_sum.add(-instance.job(cur).density * dv);
    }
  }

  for (const Job& j : instance.jobs()) {
    m.integral_flow += j.weight() * (schedule.completion(j.id) - j.release);
  }
  return m;
}
}  // namespace

Metrics combine(const Metrics& a, const Metrics& b) {
  Metrics m;
  m.energy = a.energy + b.energy;
  m.fractional_flow = a.fractional_flow + b.fractional_flow;
  m.integral_flow = a.integral_flow + b.integral_flow;
  return m;
}

}  // namespace speedscale
