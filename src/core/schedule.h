// Recorded schedules: what job ran when, under which speed law.
//
// A Schedule is a time-ordered sequence of Segments.  Each segment records a
// *speed law*, not a sampled speed, so that metrics can later be integrated
// in closed form (see metrics.h).  Three laws cover every exact simulator in
// this library; numerically-stepped algorithms (the non-uniform Algorithm NC)
// emit Constant segments.
#pragma once

#include <map>
#include <vector>

#include "src/core/instance.h"
#include "src/core/kinematics.h"
#include "src/core/types.h"

namespace speedscale {

/// How the speed evolves inside a segment.
enum class SpeedLaw {
  kIdle,        ///< speed 0 (no active job, or a deliberately idle machine)
  kConstant,    ///< speed = param (rho unused)
  kPowerDecay,  ///< speed(t) = W(t)^{1/alpha}, W(t0) = param, dW = -rho s dt
  kPowerGrow,   ///< speed(t) = U(t)^{1/alpha}, U(t0) = param, dU = +rho s dt
};

/// One maximal run of a single speed law applied to a single job.
struct Segment {
  double t0 = 0.0;  ///< segment start
  double t1 = 0.0;  ///< segment end (t1 >= t0)
  JobId job = kNoJob;
  SpeedLaw law = SpeedLaw::kIdle;
  double param = 0.0;  ///< constant speed, or W(t0)/U(t0) for the power laws
  double rho = 1.0;    ///< density driving the power-law dynamics

  [[nodiscard]] double duration() const { return t1 - t0; }
};

/// A complete single-machine schedule together with per-job completion times.
class Schedule {
 public:
  /// `alpha` is the power-law exponent the kPowerDecay/kPowerGrow laws refer
  /// to.  Schedules made only of kIdle/kConstant segments may pass any
  /// alpha > 1 (it is unused).
  explicit Schedule(double alpha);

  /// Appends a segment; segments must be appended in time order and must not
  /// overlap (t0 >= previous t1 within tolerance; gaps become implicit idle).
  void append(Segment seg);

  /// Marks job `id` complete at time `t`.
  void set_completion(JobId id, double t);

  [[nodiscard]] const std::vector<Segment>& segments() const { return segments_; }
  [[nodiscard]] const std::map<JobId, double>& completions() const { return completions_; }
  [[nodiscard]] double completion(JobId id) const;
  [[nodiscard]] bool completed(JobId id) const { return completions_.count(id) > 0; }
  [[nodiscard]] double alpha() const { return alpha_; }

  /// End of the last segment (0 for an empty schedule).
  [[nodiscard]] double makespan() const;

  /// Speed at time t (0 if t is outside all segments).  Boundaries resolve
  /// to the segment starting at t.
  [[nodiscard]] double speed_at(double t) const;

  /// Speed law evaluation within a segment: speed at absolute time t given
  /// that t lies in `seg`.
  [[nodiscard]] double segment_speed_at(const Segment& seg, double t) const;

  /// Volume processed within `seg` between absolute times a and b
  /// (seg.t0 <= a <= b <= seg.t1).
  [[nodiscard]] double segment_volume(const Segment& seg, double a, double b) const;

  /// Total volume processed for each job, by replaying all segments.
  [[nodiscard]] std::vector<double> processed_volumes(std::size_t n_jobs) const;

  /// Structural validation against an instance: time ordering, no processing
  /// before release, processed volume == job volume for completed jobs,
  /// completion times consistent with segments.  Throws ModelError.
  void validate(const Instance& instance, double tol = 1e-6) const;

 private:
  double alpha_;
  PowerLawKinematics kin_;
  std::vector<Segment> segments_;
  std::map<JobId, double> completions_;
};

}  // namespace speedscale
