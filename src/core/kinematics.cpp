#include "src/core/kinematics.h"

#include <algorithm>
#include <cmath>

namespace speedscale {

PowerLawKinematics::PowerLawKinematics(double alpha) : alpha_(alpha), b_(1.0 - 1.0 / alpha) {
  if (!(alpha > 1.0)) throw ModelError("PowerLawKinematics: alpha must exceed 1");
}

double PowerLawKinematics::speed_at_weight(double w) const {
  if (w <= 0.0) return 0.0;
  return std::pow(w, 1.0 / alpha_);
}

double PowerLawKinematics::decay_weight_after(double w0, double rho, double dt) const {
  if (w0 <= 0.0) return 0.0;
  const double root = std::pow(w0, b_) - rho * b_ * dt;
  if (root <= 0.0) return 0.0;
  return std::pow(root, 1.0 / b_);
}

double PowerLawKinematics::decay_time_to_weight(double w0, double w1, double rho) const {
  if (w1 > w0) throw ModelError("decay_time_to_weight: w1 must not exceed w0");
  if (w0 <= 0.0) return 0.0;
  const double w1c = std::max(w1, 0.0);
  return (std::pow(w0, b_) - std::pow(w1c, b_)) / (rho * b_);
}

double PowerLawKinematics::decay_time_to_zero(double w0, double rho) const {
  return decay_time_to_weight(w0, 0.0, rho);
}

double PowerLawKinematics::decay_integral(double w0, double w1, double rho) const {
  if (w1 > w0) throw ModelError("decay_integral: w1 must not exceed w0");
  const double p = 1.0 + b_;
  const double w1c = std::max(w1, 0.0);
  return (std::pow(w0, p) - std::pow(w1c, p)) / (rho * p);
}

double PowerLawKinematics::decay_volume(double w0, double w1, double rho) {
  return (w0 - w1) / rho;
}

double PowerLawKinematics::grow_weight_after(double u0, double rho, double dt) const {
  const double u0c = std::max(u0, 0.0);
  const double root = std::pow(u0c, b_) + rho * b_ * dt;
  return std::pow(root, 1.0 / b_);
}

double PowerLawKinematics::grow_time_to_weight(double u0, double u1, double rho) const {
  if (u1 < u0) throw ModelError("grow_time_to_weight: u1 must be at least u0");
  const double u0c = std::max(u0, 0.0);
  return (std::pow(u1, b_) - std::pow(u0c, b_)) / (rho * b_);
}

double PowerLawKinematics::grow_integral(double u0, double u1, double rho) const {
  if (u1 < u0) throw ModelError("grow_integral: u1 must be at least u0");
  const double p = 1.0 + b_;
  const double u0c = std::max(u0, 0.0);
  return (std::pow(u1, p) - std::pow(u0c, p)) / (rho * p);
}

double PowerLawKinematics::grow_volume(double u0, double u1, double rho) {
  return (u1 - u0) / rho;
}

}  // namespace speedscale
