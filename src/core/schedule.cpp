#include "src/core/schedule.h"

#include <algorithm>
#include <cmath>

namespace speedscale {

Schedule::Schedule(double alpha) : alpha_(alpha), kin_(alpha) {}

void Schedule::append(Segment seg) {
  if (seg.t1 < seg.t0) throw ModelError("Schedule::append: segment ends before it starts");
  if (!segments_.empty()) {
    const double prev_end = segments_.back().t1;
    if (seg.t0 < prev_end - 1e-9 * std::max(1.0, std::abs(prev_end))) {
      throw ModelError("Schedule::append: segments overlap");
    }
    // Snap tiny gaps caused by floating point so replay sees a clean tape.
    if (seg.t0 < prev_end) seg.t0 = prev_end;
    if (seg.t1 < seg.t0) seg.t1 = seg.t0;
  }
  if (seg.duration() <= 0.0) return;  // drop empty segments
  segments_.push_back(seg);
}

void Schedule::set_completion(JobId id, double t) { completions_[id] = t; }

double Schedule::completion(JobId id) const {
  auto it = completions_.find(id);
  if (it == completions_.end()) throw ModelError("Schedule::completion: job never completed");
  return it->second;
}

double Schedule::makespan() const {
  return segments_.empty() ? 0.0 : segments_.back().t1;
}

double Schedule::segment_speed_at(const Segment& seg, double t) const {
  const double dt = t - seg.t0;
  switch (seg.law) {
    case SpeedLaw::kIdle:
      return 0.0;
    case SpeedLaw::kConstant:
      return seg.param;
    case SpeedLaw::kPowerDecay:
      return kin_.speed_at_weight(kin_.decay_weight_after(seg.param, seg.rho, dt));
    case SpeedLaw::kPowerGrow:
      return kin_.speed_at_weight(kin_.grow_weight_after(seg.param, seg.rho, dt));
  }
  return 0.0;
}

double Schedule::speed_at(double t) const {
  // Binary search for the segment containing t.
  auto it = std::upper_bound(segments_.begin(), segments_.end(), t,
                             [](double v, const Segment& s) { return v < s.t0; });
  if (it == segments_.begin()) return 0.0;
  --it;
  if (t > it->t1) return 0.0;
  return segment_speed_at(*it, t);
}

double Schedule::segment_volume(const Segment& seg, double a, double b) const {
  switch (seg.law) {
    case SpeedLaw::kIdle:
      return 0.0;
    case SpeedLaw::kConstant:
      return seg.param * (b - a);
    case SpeedLaw::kPowerDecay: {
      const double wa = kin_.decay_weight_after(seg.param, seg.rho, a - seg.t0);
      const double wb = kin_.decay_weight_after(seg.param, seg.rho, b - seg.t0);
      return PowerLawKinematics::decay_volume(wa, wb, seg.rho);
    }
    case SpeedLaw::kPowerGrow: {
      const double ua = kin_.grow_weight_after(seg.param, seg.rho, a - seg.t0);
      const double ub = kin_.grow_weight_after(seg.param, seg.rho, b - seg.t0);
      return PowerLawKinematics::grow_volume(ua, ub, seg.rho);
    }
  }
  return 0.0;
}

std::vector<double> Schedule::processed_volumes(std::size_t n_jobs) const {
  std::vector<double> v(n_jobs, 0.0);
  for (const Segment& seg : segments_) {
    if (seg.job == kNoJob) continue;
    if (seg.job < 0 || static_cast<std::size_t>(seg.job) >= n_jobs) {
      throw ModelError("Schedule::processed_volumes: segment refers to unknown job");
    }
    v[static_cast<std::size_t>(seg.job)] += segment_volume(seg, seg.t0, seg.t1);
  }
  return v;
}

void Schedule::validate(const Instance& instance, double tol) const {
  double prev_end = 0.0;
  for (const Segment& seg : segments_) {
    if (seg.t0 < prev_end - tol) throw ModelError("Schedule::validate: segments overlap");
    if (seg.t1 < seg.t0) throw ModelError("Schedule::validate: negative-duration segment");
    if (seg.job != kNoJob) {
      const Job& j = instance.job(seg.job);
      if (seg.t0 < j.release - tol) {
        throw ModelError("Schedule::validate: job processed before release");
      }
    }
    prev_end = seg.t1;
  }
  const std::vector<double> vols = processed_volumes(instance.size());
  for (const Job& j : instance.jobs()) {
    const double scale = std::max(1.0, j.volume);
    auto it = completions_.find(j.id);
    if (it != completions_.end()) {
      if (std::abs(vols[static_cast<std::size_t>(j.id)] - j.volume) > tol * scale) {
        throw ModelError("Schedule::validate: completed job volume mismatch");
      }
      if (it->second < j.release - tol) {
        throw ModelError("Schedule::validate: completion precedes release");
      }
    } else if (vols[static_cast<std::size_t>(j.id)] > j.volume + tol * scale) {
      throw ModelError("Schedule::validate: job overprocessed");
    }
  }
}

}  // namespace speedscale
