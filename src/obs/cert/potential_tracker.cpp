#include "src/obs/cert/potential_tracker.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <exception>
#include <istream>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/instance.h"
#include "src/core/kinematics.h"
#include "src/core/schedule.h"
#include "src/obs/json_min.h"
#include "src/obs/json_util.h"
#include "src/obs/metrics_registry.h"
#include "src/opt/convex_opt.h"
#include "src/opt/opt_cache.h"
#include "src/opt/single_job_opt.h"
#include "src/robust/atomic_io.h"
#include "src/sim/c_machine.h"
#include "src/sim/speed_profile.h"

namespace speedscale::obs::cert {

namespace {

/// Deterministic intra-timestamp order: causes before effects.  A release at
/// time t precedes the speed change it triggers, which precedes a completion
/// at the same instant (zero-length segments on tied events).
int kind_rank(EventKind kind) {
  switch (kind) {
    case EventKind::kJobRelease:
      return 0;
    case EventKind::kSpeedChange:
      return 1;
    case EventKind::kPreemption:
      return 2;
    case EventKind::kDispatch:
      return 3;
    case EventKind::kJobComplete:
      return 4;
    case EventKind::kPhaseBoundary:
      return 5;
  }
  return 6;
}

/// Everything pass 1 learns about one job from the stream.
struct JobState {
  bool released = false;
  double r = 0.0;
  double volume = 0.0;
  double density = 0.0;
  bool completed = false;
  double tc = 0.0;
  double cost_frac = 0.0;  ///< attributed energy + fractional flow
  double cost_int = 0.0;   ///< attributed energy + integral weighted flow
  int speed_changes = 0;
  double start_t = 0.0;  ///< time of the job's first speed change
  double u0 = 0.0;       ///< driving weight at that speed change (event aux)
  double defect = 0.0;   ///< Lemma 6/7 band-sweep defect (completions)
  SpeedLaw law = SpeedLaw::kPowerGrow;  ///< matched kinematic branch
};

/// Locale-independent "%.6g" for the human summary (json_util's contract,
/// at reading precision instead of round-trip precision).
std::string fmt6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  std::string s(buf);
  for (char& c : s) {
    if (c == ',') c = '.';
  }
  return s;
}

}  // namespace

std::size_t CertificateLedger::violations() const {
  std::size_t n = 0;
  for (const CertRecord& rec : records) {
    if (rec.slack < 0.0 || rec.slack_int < 0.0) ++n;
  }
  return n;
}

std::string CertificateLedger::summary() const {
  std::size_t jobs = 0;
  for (const CertRecord& rec : records) {
    if (rec.kind == EventKind::kJobComplete) ++jobs;
  }
  std::string s;
  s += "certificates: " + std::to_string(records.size()) + " records, " +
       std::to_string(violations()) + " violation(s), " + std::to_string(jobs) +
       " completed job(s), " + std::to_string(incomplete_jobs) + " incomplete\n";
  s += "constants: alpha=" + fmt6(alpha) + "  c_frac=" + fmt6(c_frac) + "  c_int=" + fmt6(c_int) +
       "\n";
  s += "totals: ALG_frac=" + fmt6(alg_total_frac) + "  ALG_int=" + fmt6(alg_total_int) +
       "  OPT_lb=" + fmt6(opt_lb_final) + " (" + std::to_string(opt_lb_updates) + " update(s))\n";
  if (std::isfinite(min_slack_frac)) {
    s += "min slack: frac=" + fmt6(min_slack_frac) + "  int=" + fmt6(min_slack_int) + " (job " +
         std::to_string(tightest_job) + " @ t=" + fmt6(tightest_t) + ")\n";
  }
  if (rearrangement_defect >= 0.0) {
    s += "profile (Lemma 6/7): max band defect=" + fmt6(max_defect) +
         "  rearrangement distance=" + fmt6(rearrangement_defect) + "\n";
  }
  return s;
}

void append_record_json(std::string& out, const CertRecord& rec) {
  out += "{\"alg_cum\":";
  append_json_number(out, rec.alg_cum);
  out += ",\"d_alg\":";
  append_json_number(out, rec.d_alg);
  out += ",\"d_alg_int\":";
  append_json_number(out, rec.d_alg_int);
  out += ",\"d_opt_lb\":";
  append_json_number(out, rec.d_opt_lb);
  out += ",\"d_phi\":";
  append_json_number(out, rec.d_phi);
  out += ",\"d_phi_int\":";
  append_json_number(out, rec.d_phi_int);
  out += ",\"defect\":";
  append_json_number(out, rec.defect);
  out += ",\"event\":\"";
  out += event_kind_name(rec.kind);
  out += "\",\"job\":";
  out += std::to_string(rec.job);
  out += ",\"opt_lb_cum\":";
  append_json_number(out, rec.opt_lb_cum);
  out += ",\"phi\":";
  append_json_number(out, rec.phi);
  out += ",\"slack\":";
  append_json_number(out, rec.slack);
  out += ",\"slack_int\":";
  append_json_number(out, rec.slack_int);
  out += ",\"t\":";
  append_json_number(out, rec.t);
  out += ",\"tightest_job\":";
  out += std::to_string(rec.tightest_job);
  out += '}';
}

std::string certificates_jsonl(const CertificateLedger& ledger) {
  std::string out;
  out.reserve(ledger.records.size() * 220 + 512);
  for (const CertRecord& rec : ledger.records) {
    append_record_json(out, rec);
    out += '\n';
  }
  out += "{\"alg_total_frac\":";
  append_json_number(out, ledger.alg_total_frac);
  out += ",\"alg_total_int\":";
  append_json_number(out, ledger.alg_total_int);
  out += ",\"alpha\":";
  append_json_number(out, ledger.alpha);
  out += ",\"c_frac\":";
  append_json_number(out, ledger.c_frac);
  out += ",\"c_int\":";
  append_json_number(out, ledger.c_int);
  out += ",\"incomplete_jobs\":";
  out += std::to_string(ledger.incomplete_jobs);
  out += ",\"kind\":\"cert_summary\",\"max_defect\":";
  append_json_number(out, ledger.max_defect);
  out += ",\"min_slack_frac\":";
  append_json_number(out, ledger.min_slack_frac);
  out += ",\"min_slack_int\":";
  append_json_number(out, ledger.min_slack_int);
  out += ",\"opt_lb_final\":";
  append_json_number(out, ledger.opt_lb_final);
  out += ",\"opt_lb_updates\":";
  out += std::to_string(ledger.opt_lb_updates);
  out += ",\"rearrangement_defect\":";
  append_json_number(out, ledger.rearrangement_defect);
  out += ",\"records\":";
  out += std::to_string(ledger.records.size());
  out += ",\"tightest_job\":";
  out += std::to_string(ledger.tightest_job);
  out += ",\"tightest_t\":";
  append_json_number(out, ledger.tightest_t);
  out += ",\"violations\":";
  out += std::to_string(ledger.violations());
  out += "}\n";
  return out;
}

void write_certificates_jsonl_file(const std::string& path, const CertificateLedger& ledger) {
  robust::atomic_write_file(path, [&](std::ostream& os) { os << certificates_jsonl(ledger); });
}

CertificateLedger certify_events(const std::vector<TraceEvent>& events, double alpha,
                                 const CertOptions& options) {
  if (!(alpha > 1.0)) throw ModelError("certify_events: alpha must be > 1");

  CertificateLedger ledger;
  ledger.alpha = alpha;
  ledger.c_frac = options.c_frac > 0.0 ? options.c_frac : 2.0 + 1.0 / (alpha - 1.0);
  ledger.c_int = options.c_int > 0.0 ? options.c_int : 3.0 + 1.0 / (alpha - 1.0);

  std::vector<TraceEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.t != b.t) return a.t < b.t;
    return kind_rank(a.kind) < kind_rank(b.kind);
  });

  // --- Pass 1: per-job state (releases, attributed costs, speed windows) ---
  std::map<JobId, JobState> jobs;
  // Cumulative (energy, flow) at the last completion, per machine stream:
  // completion payloads are cumulative, so per-job costs are the deltas.
  std::map<MachineId, std::pair<double, double>> cum;
  std::size_t preemptions = 0;
  for (const TraceEvent& ev : sorted) {
    switch (ev.kind) {
      case EventKind::kJobRelease: {
        if (ev.job == kNoJob) break;
        JobState& js = jobs[ev.job];
        if (js.released) break;  // first release wins
        js.released = true;
        js.r = ev.t;
        js.volume = ev.value;
        js.density = ev.aux;
        break;
      }
      case EventKind::kSpeedChange: {
        if (ev.job == kNoJob) break;
        JobState& js = jobs[ev.job];
        if (js.speed_changes++ == 0) {
          js.start_t = ev.t;
          js.u0 = ev.aux;
        }
        break;
      }
      case EventKind::kPreemption:
        ++preemptions;
        break;
      case EventKind::kJobComplete: {
        if (ev.job == kNoJob) break;
        JobState& js = jobs[ev.job];
        if (js.completed) break;
        js.completed = true;
        js.tc = ev.t;
        auto& [cum_energy, cum_flow] = cum[ev.machine];
        const double e_j = ev.value - cum_energy;
        const double f_j = ev.aux - cum_flow;
        cum_energy = ev.value;
        cum_flow = ev.aux;
        js.cost_frac = e_j + f_j;
        js.cost_int = js.released
                          ? e_j + js.density * js.volume * (js.tc - js.r)
                          : js.cost_frac;  // no release seen: weight unknown
        break;
      }
      case EventKind::kDispatch:
      case EventKind::kPhaseBoundary:
        break;
    }
  }

  // --- Lemma 6/7 band-sweep certificate, per completed job ----------------
  // Each completed job's processing window [start, tc] must sweep its weight
  // band in exactly the closed-form time: the growing branch for NC streams
  // (U: u0 -> u0 + W_j), the decaying branch for single-segment C streams
  // (W: u0 -> u0 - W_j).  Requires an unambiguous window — exactly one speed
  // change per job and no preemptions; kAuto turns the check off otherwise
  // (numerically-stepped engines emit no per-job speed events at all).
  bool profile_on = options.profile == ProfileCert::kAuto && preemptions == 0;
  std::size_t completed = 0;
  for (const auto& [id, js] : jobs) {
    if (!js.completed) continue;
    ++completed;
    if (!js.released || js.speed_changes != 1) profile_on = false;
  }
  if (profile_on && completed > 0) {
    const PowerLawKinematics kin(alpha);
    for (auto& [id, js] : jobs) {
      if (!js.completed) continue;
      const double w = js.density * js.volume;
      const double dt = js.tc - js.start_t;
      double best = kInf;
      if (js.density > 0.0 && w > 0.0) {
        const double t_grow = kin.grow_time_to_weight(js.u0, js.u0 + w, js.density);
        if (std::abs(dt - t_grow) < best) {
          best = std::abs(dt - t_grow);
          js.law = SpeedLaw::kPowerGrow;
        }
        if (js.u0 >= w) {
          const double t_decay = kin.decay_time_to_weight(js.u0, js.u0 - w, js.density);
          if (std::abs(dt - t_decay) < best) {
            best = std::abs(dt - t_decay);
            js.law = SpeedLaw::kPowerDecay;
          }
        }
      }
      js.defect = std::isfinite(best) ? best / std::max(dt, 1e-300) : kInf;
      ledger.max_defect = std::max(ledger.max_defect, js.defect);
    }
  }

  // --- Prefix convex solves, hoisted out of pass 2 ------------------------
  // Each qualifying release k solves the prefix instance of releases 0..k —
  // a pure function of the (already fixed) release order, so the solves can
  // run ahead of the walk, sharded across options.solver_jobs threads.
  // Pass 2 consumes the objectives in stream order, which keeps the ledger
  // byte-identical at any thread count.  NaN marks an unsolvable prefix
  // (ModelError): pass 2 keeps the previous bound and does not count an
  // update, exactly as the inline solve did.
  std::vector<double> prefix_objective;
  if (options.opt_lb == OptLbMode::kPrefixConvex) {
    std::vector<Job> releases;  // qualifying releases, in stream order
    {
      std::map<JobId, bool> seen;
      for (const TraceEvent& ev : sorted) {
        if (ev.kind != EventKind::kJobRelease || ev.job == kNoJob || seen[ev.job]) continue;
        seen[ev.job] = true;
        const JobState& js = jobs[ev.job];
        if (js.volume > 0.0 && js.density > 0.0) {
          releases.push_back(Job{ev.job, js.r, js.volume, js.density});
        }
      }
    }
    prefix_objective.assign(releases.size(), std::numeric_limits<double>::quiet_NaN());
    const auto solve_prefix = [&](std::size_t k) {
      try {
        TraceSuppressGuard suppress_virtual_solves;
        ConvexOptParams params;
        params.slots = options.opt_slots;
        params.max_iters = options.opt_max_iters;
        std::vector<Job> pre(releases.begin(),
                             releases.begin() + static_cast<std::ptrdiff_t>(k + 1));
        prefix_objective[k] =
            solve_fractional_opt(Instance(std::move(pre)), alpha, params).objective;
      } catch (const ModelError&) {
        // leave NaN: unsolvable prefix keeps the previous bound
      }
    };
    const std::size_t n_solves = releases.size();
    const std::size_t workers = std::min(
        n_solves, options.solver_jobs > 1 ? static_cast<std::size_t>(options.solver_jobs)
                                          : std::size_t{1});
    if (workers > 1) {
      // Plain std::thread workers (obs cannot depend on analysis::ThreadPool)
      // over an atomic work counter.  Each worker re-installs the caller's
      // OPT solve cache so repeated prefixes memoize across certify calls.
      OptSolveCache* caller_cache = active_opt_cache();
      std::atomic<std::size_t> next{0};
      std::exception_ptr first_error;
      std::mutex error_mu;
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
          ScopedOptSolveCache cache_scope(caller_cache);
          try {
            for (std::size_t k; (k = next.fetch_add(1)) < n_solves;) solve_prefix(k);
          } catch (...) {
            // Rethrown after the join: same propagation as the serial path.
            const std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
        });
      }
      for (std::thread& t : pool) t.join();
      if (first_error) std::rethrow_exception(first_error);
    } else {
      for (std::size_t k = 0; k < n_solves; ++k) solve_prefix(k);
    }
  }

  // --- Pass 2: walk the stream, maintain Phi and the OPT lower bound ------
  double phi = 0.0;
  double phi_int = 0.0;
  double alg_cum = 0.0;
  double alg_cum_int = 0.0;
  double opt_lb = 0.0;
  double min_combined = kInf;
  std::size_t prefix_idx = 0;  // next entry of prefix_objective to consume
  std::map<JobId, bool> seen_release, seen_complete;

  for (const TraceEvent& ev : sorted) {
    if (ev.kind == EventKind::kDispatch || ev.kind == EventKind::kPhaseBoundary) continue;
    CertRecord rec;
    rec.t = ev.t;
    rec.kind = ev.kind;
    rec.job = ev.job;

    if (ev.kind == EventKind::kJobRelease && ev.job != kNoJob && !seen_release[ev.job]) {
      seen_release[ev.job] = true;
      const JobState& js = jobs[ev.job];
      // Online lower bound: OPT of the prefix instance released so far is a
      // lower bound on OPT of the full instance (dropping jobs never raises
      // OPT); monotone clamping absorbs discretization wobble.
      if (js.volume > 0.0 && js.density > 0.0) {
        double lb_new = opt_lb;
        if (options.opt_lb == OptLbMode::kSingleJob) {
          lb_new = opt_lb + single_job_frac_opt(js.volume, js.density, alpha).objective;
          ++ledger.opt_lb_updates;
        } else if (options.opt_lb == OptLbMode::kPrefixConvex) {
          const double objective = prefix_objective[prefix_idx++];
          if (!std::isnan(objective)) {
            lb_new = std::max(opt_lb, objective);
            ++ledger.opt_lb_updates;
          }
          // NaN: unsolvable prefix, keep the previous bound (no update)
        }
        rec.d_opt_lb = lb_new - opt_lb;
        opt_lb = lb_new;
      }
      // The potential commits the job's whole attributed cost at its release
      // (unknowable costs of never-completed jobs stay out of the ledger).
      if (js.completed) {
        rec.d_phi = js.cost_frac;
        rec.d_phi_int = js.cost_int;
      } else {
        ++ledger.incomplete_jobs;
      }
    } else if (ev.kind == EventKind::kJobComplete && ev.job != kNoJob && !seen_complete[ev.job]) {
      seen_complete[ev.job] = true;
      const JobState& js = jobs[ev.job];
      // The committed cost lands: dALG = -dPhi exactly, the certificate
      // state ALG + Phi is unchanged.
      rec.d_alg = js.cost_frac;
      rec.d_phi = -js.cost_frac;
      rec.d_alg_int = js.cost_int;
      rec.d_phi_int = -js.cost_int;
      rec.defect = js.defect;
    }
    // Speed changes and preemptions move neither ALG nor Phi (costs accrue
    // continuously between events and cancel inside the potential); their
    // records exist to anchor the timeline at every simulator event.

    phi += rec.d_phi;
    phi_int += rec.d_phi_int;
    alg_cum += rec.d_alg;
    alg_cum_int += rec.d_alg_int;
    rec.phi = phi;
    rec.alg_cum = alg_cum;
    rec.opt_lb_cum = opt_lb;
    // The certificate proper: the local inequality dALG + dPhi <= c * dOPT
    // integrated from 0 to this event.  ALG(t) + Phi(t) is the committed
    // cost of everything released so far, so non-negative slack at every
    // event means the run was provably within budget at every instant —
    // however the per-release marginals (d_* above) distribute.
    rec.slack = ledger.c_frac * opt_lb - (alg_cum + phi);
    rec.slack_int = ledger.c_int * opt_lb - (alg_cum_int + phi_int);
    // The tightest certificate: the minimum slack over *release* records —
    // the only events that move the certificate state (completions land
    // committed costs without changing ALG + Phi, so their slack simply
    // carries the previous release's value forward).
    if (rec.kind == EventKind::kJobRelease) {
      const double combined = std::min(rec.slack, rec.slack_int);
      if (combined < min_combined) {
        min_combined = combined;
        ledger.tightest_job = rec.job;
        ledger.tightest_t = rec.t;
      }
      ledger.min_slack_frac = std::min(ledger.min_slack_frac, rec.slack);
      ledger.min_slack_int = std::min(ledger.min_slack_int, rec.slack_int);
    }
    rec.tightest_job = ledger.tightest_job;
    ledger.records.push_back(rec);
  }

  ledger.alg_total_frac = alg_cum;
  ledger.alg_total_int = alg_cum_int;
  ledger.opt_lb_final = opt_lb;

  // --- Whole-run Lemma 6/7: rearrangement distance vs a virtual C run -----
  // Reconstruct the run's speed profile from the matched per-job windows and
  // compare its level-set measures against Algorithm C on the same instance.
  if (profile_on && completed > 0 && ledger.incomplete_jobs == 0) {
    try {
      std::vector<Job> all;
      all.reserve(jobs.size());
      for (const auto& [id, js] : jobs) all.push_back(Job{id, js.r, js.volume, js.density});
      const Instance instance(all);
      std::vector<const JobState*> order;
      order.reserve(jobs.size());
      for (const auto& [id, js] : jobs) order.push_back(&js);
      std::sort(order.begin(), order.end(),
                [](const JobState* a, const JobState* b) { return a->start_t < b->start_t; });
      Schedule recon(alpha);
      for (std::size_t i = 0; i < order.size(); ++i) {
        const JobState& js = *order[i];
        recon.append({js.start_t, js.tc, kNoJob, js.law, js.u0, js.density});
      }
      TraceSuppressGuard suppress_virtual_run;
      const Schedule c = run_algorithm_c(instance, alpha);
      ledger.rearrangement_defect = rearrangement_distance(recon, c);
    } catch (const ModelError&) {
      ledger.rearrangement_defect = -1.0;  // overlapping/odd windows: no cert
    }
  }

  // --- Emission: counters, gauges, and optional trace re-emission ---------
  OBS_COUNT("obs.cert.records", static_cast<std::int64_t>(ledger.records.size()));
  OBS_COUNT("obs.cert.violations", static_cast<std::int64_t>(ledger.violations()));
  OBS_COUNT("obs.cert.opt_lb_updates", static_cast<std::int64_t>(ledger.opt_lb_updates));
  if (metrics_enabled()) {
    registry().gauge("obs.cert.min_slack_frac").set(ledger.min_slack_frac);
    registry().gauge("obs.cert.min_slack_int").set(ledger.min_slack_int);
    registry().gauge("obs.cert.max_defect").set(ledger.max_defect);
  }
  if (options.emit_trace_events && tracing_enabled()) {
    const int every = std::max(1, options.checkpoint_every);
    int since_flush = 0;
    for (const CertRecord& rec : ledger.records) {
      TRACE_EVENT(.kind = EventKind::kPhaseBoundary, .t = rec.t, .job = rec.job,
                  .value = rec.slack, .aux = rec.d_opt_lb, .label = "cert.slack");
      TRACE_EVENT(.kind = EventKind::kPhaseBoundary, .t = rec.t, .job = rec.job, .value = rec.phi,
                  .aux = rec.d_phi, .label = "cert.phi");
      // Periodic checkpoint: push every sink's buffered bytes to the OS so a
      // crashed run keeps its certificate stream (JsonlSink streams to the
      // ".tmp" sibling; flushed lines survive even without the final commit).
      if (++since_flush >= every) {
        Tracer::instance().flush();
        since_flush = 0;
      }
    }
    Tracer::instance().flush();
  }
  return ledger;
}

// --- Replay: JSONL events back into TraceEvents -----------------------------

namespace {

/// Payload numbers round-trip through json_util's convention: non-finite
/// doubles serialize as the quoted strings "inf"/"-inf"/"nan".
double replay_number(const JsonValue& v, const char* what, std::size_t line) {
  if (v.is_number()) return v.number;
  if (v.is_string()) {
    if (v.string == "inf") return kInf;
    if (v.string == "-inf") return -kInf;
    if (v.string == "nan") return std::nan("");
  }
  throw ModelError("replay: line " + std::to_string(line) + ": field '" + what +
                   "' is not a number");
}

bool kind_from_name(const std::string& name, EventKind* out) {
  for (int k = 0; k < 6; ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (name == event_kind_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace

ReplayedTrace replay_jsonl_trace(std::istream& is) {
  ReplayedTrace out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue v;
    try {
      v = parse_json(line);
    } catch (const ModelError& e) {
      throw ModelError("replay: line " + std::to_string(lineno) + ": " + e.what());
    }
    if (!v.is_object()) {
      throw ModelError("replay: line " + std::to_string(lineno) + ": not a JSON object");
    }
    const JsonValue* kind = v.find("kind");
    if (kind == nullptr || !kind->is_string()) {
      throw ModelError("replay: line " + std::to_string(lineno) + ": missing \"kind\"");
    }
    TraceEvent ev;
    if (!kind_from_name(kind->string, &ev.kind)) {
      throw ModelError("replay: line " + std::to_string(lineno) + ": unknown kind \"" +
                       kind->string + "\"");
    }
    ev.t = replay_number(v.at("t"), "t", lineno);
    if (const JsonValue* job = v.find("job"); job != nullptr) {
      ev.job = static_cast<JobId>(replay_number(*job, "job", lineno));
    }
    if (const JsonValue* machine = v.find("machine"); machine != nullptr) {
      ev.machine = static_cast<MachineId>(replay_number(*machine, "machine", lineno));
    }
    ev.value = replay_number(v.at("value"), "value", lineno);
    ev.aux = replay_number(v.at("aux"), "aux", lineno);
    // Labels are static-storage pointers in live events; a replayed stream
    // has none.  The "trace_tool" meta event's payload survives side-band.
    if (const JsonValue* label = v.find("label");
        label != nullptr && label->is_string() && label->string == "trace_tool") {
      out.alpha = ev.value;
    }
    out.events.push_back(ev);
  }
  return out;
}

// --- Replay: Chrome Trace Event Format back into TraceEvents ----------------

ReplayedTrace replay_chrome_trace(const std::string& text) {
  const JsonValue doc = parse_json(text);
  const JsonValue* trace_events = doc.find("traceEvents");
  if (trace_events == nullptr || !trace_events->is_array()) {
    throw ModelError("replay: not a Chrome trace (no traceEvents array)");
  }
  // The exporter writes model seconds as microseconds (chrome_trace.h).
  constexpr double kScale = 1e-6;
  ReplayedTrace out;
  for (const JsonValue& r : trace_events->array) {
    if (!r.is_object()) continue;
    const JsonValue* ph = r.find("ph");
    const JsonValue* pid = r.find("pid");
    const JsonValue* name = r.find("name");
    if (ph == nullptr || !ph->is_string() || name == nullptr || !name->is_string()) continue;
    if (pid == nullptr || !pid->is_number() || pid->number != 1.0) continue;  // model time only
    const JsonValue* ts = r.find("ts");
    const JsonValue* args = r.find("args");
    const JsonValue* tid = r.find("tid");
    if (ts == nullptr || !ts->is_number()) continue;
    const double t = ts->number * kScale;
    const JobId tid_job =
        tid != nullptr && tid->is_number() && tid->number >= 1.0
            ? static_cast<JobId>(tid->number) - 1
            : kNoJob;
    const auto arg = [&](const char* key) -> double {
      if (args == nullptr) return 0.0;
      const JsonValue* a = args->find(key);
      return a != nullptr && a->is_number() ? a->number : 0.0;
    };
    const std::string& n = name->string;
    const char p = ph->string.empty() ? '?' : ph->string[0];
    if (n.rfind("job ", 0) == 0 && (p == 'X' || p == 'i')) {
      // A job slice ('X', known completion) or instant ('i', no completion):
      // either way its start is the release, with volume/density in args.
      TraceEvent ev{EventKind::kJobRelease, t, kNoJob, kNoMachine, arg("volume"), arg("density")};
      ev.job = static_cast<JobId>(std::strtol(n.c_str() + 4, nullptr, 10));
      out.events.push_back(ev);
    } else if (n == "complete" && p == 'i') {
      out.events.push_back(
          {EventKind::kJobComplete, t, tid_job, kNoMachine, arg("cum_energy"), arg("cum_flow")});
    } else if (n == "speed" && p == 'C') {
      // The counter series carries the speed but not the driving job/weight:
      // replayed C/NC streams certify the potential, not the speed profile.
      out.events.push_back({EventKind::kSpeedChange, t, kNoJob, kNoMachine, arg("speed"), 0.0});
    } else if (n == "preemption" && p == 'i') {
      out.events.push_back(
          {EventKind::kPreemption, t, tid_job, kNoMachine, arg("by_job"), arg("remaining")});
    } else if (n == "dispatch" && p == 'i') {
      out.events.push_back({EventKind::kDispatch, t, tid_job, kNoMachine, arg("key"), 0.0});
    } else if (p == 'i' && n.rfind("cert.", 0) != 0 && n != "trace_tool" && n != "trace_tool.end") {
      continue;  // foreign instants (lifecycle 'b'/'e' spans are skipped too)
    } else if (n == "trace_tool") {
      out.alpha = arg("value");
    }
  }
  return out;
}

}  // namespace speedscale::obs::cert
