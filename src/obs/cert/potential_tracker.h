// Online competitiveness certificates: a potential-function ledger over a
// run's event stream, plus the Lemma 6/7 speed-profile invariant.
//
// The paper's guarantees (Theorems 5 and 9) are proved by amortized local
// competitiveness: at every instant,
//
//     dALG/dt + dPhi/dt  <=  c * dOPT/dt
//
// for an explicit potential Phi.  The end-to-end ratio harness only sees the
// final ratio, so a near-tight (or violated) instant is invisible until the
// run ends.  This module turns the inequality into a per-event *certificate
// stream*: one record per release/completion/preemption with the cost
// increments, the potential move, an online OPT lower bound, and the slack —
// the local inequality integrated from time 0 to the event,
//
//     slack(t) = c * OPT_lb(t) - ALG(t) - Phi(t),
//
// so non-negative slack at every event certifies the run was within its
// competitive budget at every instant, not just at the end.
//
// The potential is the *committed-cost* form of the Theorem 5/9 amortization:
//
//     Phi(t) = sum_{j : r_j <= t} cost_j  -  ALG(t),
//
// where cost_j is job j's attributed cost in the recorded run — recoverable
// from the event stream alone, because every job_complete event carries the
// run's cumulative energy (value) and cumulative flow (aux), so cost_j is the
// delta at j's completion.  ALG(t) + Phi(t) then telescopes exactly: it is
// piecewise constant and jumps only at releases, by the released job's
// committed cost.  Between events dALG + dPhi == 0, so the slack is constant
// there; a release raises the committed side by the job's cost and the
// budget side by c times the OPT lower bound's marginal increase (both
// visible in the record's d_* columns); a completion lands the committed
// cost (dALG = -dPhi) without moving the slack.  At the final release the
// slack is exactly c * OPT_lb - ALG_total: the end-to-end Theorem 5/9 margin.
//
// The OPT lower bound is online and monotone: at each release the prefix
// instance I(t) (everything released so far, volumes as revealed by the
// recorded completions) is itself a valid instance, and removing jobs never
// increases OPT, so OPT(I(t)) <= OPT(I).  Modes: the discretized convex
// program (src/opt/convex_opt.h, the strong bound used by the tests and CI)
// or the closed-form per-job sum of single-job optima (cheap, much weaker —
// deep queues certify negative; used by the pinned bench for determinism).
//
// The second certificate is the Lemma 6/7 measure-preservation invariant:
// each completed job's recorded processing window must sweep its weight band
// [u0, u0 + W_j] in exactly the time the power-law kinematics dictate
// (grow branch for NC, decay branch for C — the same closed form, which is
// the lemma's local content).  `defect` is the relative gap, ~1e-15 on the
// exact simulators; the whole-run rearrangement distance against a virtual
// Algorithm C run rides in the ledger summary.
//
// A negative slack does NOT disprove the theorem: the bound compares against
// a *lower bound* on OPT and charges each job's whole committed cost at its
// release — before the budget for its yet-unreleased competitors exists.  It
// flags the exact event, job, and residual state where the run is tightest —
// which is the point: when a future change breaks a scheduler, the first
// violated certificate pinpoints it (see worst_case.h, which reports the K
// tightest certificates of its adversarial instances).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/obs/trace.h"

namespace speedscale::obs::cert {

/// How the online OPT lower bound is computed at each release.
enum class OptLbMode {
  kNone,          ///< no bound (dOPT_lb = 0; slack is -committed cost)
  kSingleJob,     ///< sum of closed-form single-job optima (cheap, weak)
  kPrefixConvex,  ///< discretized convex OPT on the released prefix (strong)
};

/// Whether the Lemma 6/7 band-sweep defect is computed per completion.
enum class ProfileCert {
  kAuto,  ///< on when the stream has one processing window per job
  kOff,
};

struct CertOptions {
  /// Competitive constants; 0 = the paper's values, 2 + 1/(alpha-1)
  /// (fractional, Theorem 5) and 3 + 1/(alpha-1) (integral, Theorem 9).
  double c_frac = 0.0;
  double c_int = 0.0;
  OptLbMode opt_lb = OptLbMode::kPrefixConvex;
  int opt_slots = 240;       ///< discretization of the prefix convex solves
  int opt_max_iters = 2000;  ///< FISTA iteration cap per prefix solve
  /// Worker threads for the kPrefixConvex solves.  Each release's prefix
  /// solve is a pure function of the release order, so the solves run in a
  /// pre-pass sharded across this many threads; the ledger (records, slack,
  /// opt_lb_updates) is byte-identical at any value.  Workers re-install the
  /// caller's active OPT solve cache (src/opt/opt_cache.h), if any.
  int solver_jobs = 1;
  ProfileCert profile = ProfileCert::kAuto;
  /// When emitting through the Tracer (emit_trace_events), flush all sinks
  /// every this many records so a crashed run keeps its certificate stream
  /// up to the last checkpoint (JsonlSink::flush makes the ".tmp" durable).
  int checkpoint_every = 16;
  /// Re-emit each record as a phase_boundary trace event labelled
  /// "cert.slack" (value = slack, aux = d_opt_lb) plus "cert.phi"
  /// (value = phi, aux = d_phi): the Chrome exporter renders "cert.*"
  /// labels as counter tracks next to the speed series.
  bool emit_trace_events = false;
};

/// One per-event certificate.  The `d_*` columns are this event's marginal
/// moves; `slack` is the cumulative certificate c * OPT_lb(t) - ALG(t) -
/// Phi(t) after the event.  Unsuffixed fields are the fractional-objective
/// ledger (Theorem 5); `*_int` the integral one (Theorem 9; same dOPT_lb —
/// fractional OPT lower-bounds integral OPT).
struct CertRecord {
  double t = 0.0;
  EventKind kind = EventKind::kPhaseBoundary;
  JobId job = kNoJob;
  double d_alg = 0.0;
  double d_phi = 0.0;
  double d_opt_lb = 0.0;
  double slack = 0.0;
  double d_alg_int = 0.0;
  double d_phi_int = 0.0;
  double slack_int = 0.0;
  double phi = 0.0;         ///< Phi after the event (fractional)
  double alg_cum = 0.0;     ///< cumulative attributed ALG cost (fractional)
  double opt_lb_cum = 0.0;  ///< online OPT lower bound so far
  JobId tightest_job = kNoJob;  ///< job at the minimum-slack record so far
  double defect = 0.0;          ///< Lemma 6/7 relative band-sweep defect
};

/// The finished ledger: every record plus run-level summary state.
struct CertificateLedger {
  double alpha = 2.0;
  double c_frac = 0.0;
  double c_int = 0.0;
  std::vector<CertRecord> records;

  double alg_total_frac = 0.0;
  double alg_total_int = 0.0;
  double opt_lb_final = 0.0;
  double min_slack_frac = kInf;
  double min_slack_int = kInf;
  double tightest_t = 0.0;
  JobId tightest_job = kNoJob;
  double max_defect = 0.0;
  /// Whole-run Lemma 6/7 rearrangement distance of the reconstructed
  /// profile against a virtual Algorithm C run; negative when unavailable
  /// (profile certificate off, or the stream had incomplete jobs).
  double rearrangement_defect = -1.0;
  std::size_t opt_lb_updates = 0;   ///< lower-bound recomputations (releases)
  std::size_t incomplete_jobs = 0;  ///< released but never completed

  /// Records with negative fractional or integral slack.
  [[nodiscard]] std::size_t violations() const;
  /// Human-readable multi-line summary (deterministic, "%.17g"-free).
  [[nodiscard]] std::string summary() const;
};

/// Canonical single-line JSON of one record (sorted keys, locale-independent
/// "%.17g" doubles — equal records serialize byte-identically everywhere).
void append_record_json(std::string& out, const CertRecord& rec);

/// The whole ledger as JSONL: one record per line, then one trailing
/// {"kind":"cert_summary",...} line with the run-level totals.
[[nodiscard]] std::string certificates_jsonl(const CertificateLedger& ledger);

/// Crash-safe file variant (tmp + atomic rename) of certificates_jsonl.
void write_certificates_jsonl_file(const std::string& path, const CertificateLedger& ledger);

/// Builds the certificate ledger from a recorded event stream.  The stream
/// is the contract every simulator already meets: job_release events carry
/// (volume, density), job_complete events carry cumulative (energy, flow).
/// Events need not be globally time-sorted (simulators interleave kinds);
/// they are stably ordered internally.  Pure function of its inputs.
[[nodiscard]] CertificateLedger certify_events(const std::vector<TraceEvent>& events,
                                               double alpha, const CertOptions& options = {});

/// Replayed trace: events plus the run configuration recovered from the
/// leading "trace_tool" meta event, when present (alpha = 0 when absent).
/// Replayed events carry no labels (labels are pointers to static storage).
struct ReplayedTrace {
  std::vector<TraceEvent> events;
  double alpha = 0.0;
};

/// Parses a JSONL event trace (trace_tool --trace) back into events.
/// Throws ModelError with a line number on malformed input.
[[nodiscard]] ReplayedTrace replay_jsonl_trace(std::istream& is);

/// Parses a Chrome Trace Event Format document (trace_tool --chrome) back
/// into the model-time events it encodes (pid 1; profiler slices ignored).
/// Throws ModelError on malformed JSON or a missing traceEvents array.
[[nodiscard]] ReplayedTrace replay_chrome_trace(const std::string& text);

}  // namespace speedscale::obs::cert
