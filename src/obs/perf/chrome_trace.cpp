#include "src/obs/perf/chrome_trace.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <string_view>

#include "src/obs/json_util.h"
#include "src/robust/atomic_io.h"

namespace speedscale::obs::perf {

namespace {

/// Emits one trace-event record with the fields every phase shares.  Keys
/// are written in sorted order (args, dur, name, ph, pid, s, tid, ts) so the
/// document is byte-diffable.
struct RecordWriter {
  std::string& out;
  bool& first;

  void begin() {
    if (!first) out += ',';
    first = false;
    out += '{';
  }

  void field_args_open() { out += "\"args\":{"; }
  void field_args_close() { out += "},"; }

  void finish(const char* name, char ph, std::int64_t pid, std::int64_t tid, double ts,
              double dur = -1.0, const char* scope = nullptr) {
    if (dur >= 0.0) {
      out += "\"dur\":";
      append_json_number(out, dur);
      out += ',';
    }
    out += "\"name\":";
    append_json_string(out, name);
    out += ",\"ph\":\"";
    out += ph;
    out += "\",\"pid\":";
    out += std::to_string(pid);
    if (scope != nullptr) {
      out += ",\"s\":\"";
      out += scope;
      out += '"';
    }
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"ts\":";
    append_json_number(out, ts);
    out += '}';
  }
};

void append_arg(std::string& out, bool& first, const char* key, double v) {
  if (!first) out += ',';
  first = false;
  append_json_string(out, key);
  out += ':';
  append_json_number(out, v);
}

void append_metadata(std::string& out, bool& first, const char* what, std::int64_t pid,
                     const char* name) {
  RecordWriter rec{out, first};
  rec.begin();
  rec.field_args_open();
  out += "\"name\":";
  append_json_string(out, name);
  rec.field_args_close();
  rec.finish(what, 'M', pid, 0, 0.0);
}

/// One endpoint of a per-job lifecycle async span ('b'/'e', matched by
/// cat "lifecycle" + the job id).  Keys in sorted order, like every record.
void append_async(std::string& out, bool& first, const char* name, char ph, JobId job, double ts) {
  if (!first) out += ',';
  first = false;
  out += "{\"cat\":\"lifecycle\",\"id\":\"";
  out += std::to_string(job);
  out += "\",\"name\":";
  append_json_string(out, name);
  out += ",\"ph\":\"";
  out += ph;
  out += "\",\"pid\":1,\"tid\":";
  out += std::to_string(static_cast<std::int64_t>(job) + 1);
  out += ",\"ts\":";
  append_json_number(out, ts);
  out += '}';
}

void append_span(std::string& out, bool& first, const char* name, JobId job, double t0, double t1) {
  append_async(out, first, name, 'b', job, t0);
  append_async(out, first, name, 'e', job, t1);
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const std::vector<ProfileEntry>& profile,
                              const ChromeTraceOptions& options) {
  const double scale = options.model_time_scale;
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;

  append_metadata(out, first, "process_name", 1, "speedscale model time");
  if (!profile.empty()) append_metadata(out, first, "process_name", 2, "profiler (wall clock)");

  // Pair releases with completions so each job renders as one slice, and
  // with first attributed speed changes so the lifecycle spans know when a
  // job went from waiting to active.
  std::map<JobId, double> release_t, complete_t, start_t;
  for (const TraceEvent& ev : events) {
    if (ev.job == kNoJob) continue;
    if (ev.kind == EventKind::kJobRelease && release_t.find(ev.job) == release_t.end()) {
      release_t[ev.job] = ev.t;
    } else if (ev.kind == EventKind::kJobComplete) {
      complete_t[ev.job] = ev.t;  // last completion wins (re-runs overwrite)
    } else if (ev.kind == EventKind::kSpeedChange && start_t.find(ev.job) == start_t.end()) {
      start_t[ev.job] = ev.t;
    }
  }

  for (const TraceEvent& ev : events) {
    RecordWriter rec{out, first};
    const double ts = ev.t * scale;
    const std::int64_t job_tid = ev.job == kNoJob ? 0 : static_cast<std::int64_t>(ev.job) + 1;
    switch (ev.kind) {
      case EventKind::kJobRelease: {
        const auto done = ev.job == kNoJob ? complete_t.end() : complete_t.find(ev.job);
        rec.begin();
        rec.field_args_open();
        bool afirst = true;
        append_arg(out, afirst, "density", ev.aux);
        append_arg(out, afirst, "volume", ev.value);
        rec.field_args_close();
        const std::string name = "job " + std::to_string(ev.job);
        if (done != complete_t.end() && done->second >= ev.t) {
          // Release with a known completion: one complete slice on the
          // job's track covering its whole flow window.
          rec.finish(name.c_str(), 'X', 1, job_tid, ts, (done->second - ev.t) * scale);
        } else {
          rec.finish(name.c_str(), 'i', 1, job_tid, ts, -1.0, "t");
        }
        break;
      }
      case EventKind::kJobComplete: {
        rec.begin();
        rec.field_args_open();
        bool afirst = true;
        append_arg(out, afirst, "cum_energy", ev.value);
        append_arg(out, afirst, "cum_flow", ev.aux);
        rec.field_args_close();
        rec.finish("complete", 'i', 1, job_tid, ts, -1.0, "t");
        break;
      }
      case EventKind::kSpeedChange: {
        rec.begin();
        rec.field_args_open();
        bool afirst = true;
        append_arg(out, afirst, "speed", ev.value);
        rec.field_args_close();
        rec.finish("speed", 'C', 1, 0, ts);
        break;
      }
      case EventKind::kPreemption: {
        rec.begin();
        rec.field_args_open();
        bool afirst = true;
        append_arg(out, afirst, "by_job", ev.value);
        append_arg(out, afirst, "remaining", ev.aux);
        rec.field_args_close();
        rec.finish("preemption", 'i', 1, job_tid, ts, -1.0, "p");
        break;
      }
      case EventKind::kDispatch: {
        rec.begin();
        rec.field_args_open();
        bool afirst = true;
        append_arg(out, afirst, "key", ev.value);
        rec.field_args_close();
        rec.finish("dispatch", 'i', 1, job_tid, ts, -1.0, "p");
        break;
      }
      case EventKind::kPhaseBoundary: {
        rec.begin();
        rec.field_args_open();
        bool afirst = true;
        append_arg(out, afirst, "aux", ev.aux);
        append_arg(out, afirst, "value", ev.value);
        rec.field_args_close();
        // Certificate series ("cert.slack", "cert.phi", emitted by the
        // potential tracker) render as counter tracks next to the speed
        // series; other phase boundaries stay global instants.
        const char* name = ev.label != nullptr ? ev.label : "phase";
        if (ev.label != nullptr && std::string_view(ev.label).substr(0, 5) == "cert.") {
          rec.finish(name, 'C', 1, 0, ts);
        } else {
          rec.finish(name, 'i', 1, 0, ts, -1.0, "g");
        }
        break;
      }
    }
  }

  // Per-job lifecycle state machine as async spans: released -> (waiting)
  // -> active -> completed.  Perfetto renders these as a Gantt chart, one
  // row per job, on top of the instant/slice records above.  Jobs whose
  // stream never attributes a speed change (numerically-stepped engines)
  // get one "flow" span covering their whole release -> completion window.
  for (const auto& [job, rel] : release_t) {
    const auto s = start_t.find(job);
    const auto c = complete_t.find(job);
    const bool has_start = s != start_t.end() && s->second >= rel;
    const bool has_complete = c != complete_t.end() && c->second >= rel;
    if (has_start && has_complete && s->second <= c->second) {
      append_span(out, first, "waiting", job, rel * scale, s->second * scale);
      append_span(out, first, "active", job, s->second * scale, c->second * scale);
    } else if (has_start) {
      append_span(out, first, "waiting", job, rel * scale, s->second * scale);
    } else if (has_complete) {
      append_span(out, first, "flow", job, rel * scale, c->second * scale);
    }
  }

  // Profiler aggregates, end-to-end in label order (see header).
  std::vector<ProfileEntry> sorted = profile;
  std::sort(sorted.begin(), sorted.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) { return a.label < b.label; });
  double cursor_us = 0.0;
  for (const ProfileEntry& e : sorted) {
    RecordWriter rec{out, first};
    rec.begin();
    rec.field_args_open();
    bool afirst = true;
    append_arg(out, afirst, "count", static_cast<double>(e.count));
    append_arg(out, afirst, "max_ns", static_cast<double>(e.max_ns));
    append_arg(out, afirst, "mean_ns", e.mean_ns());
    append_arg(out, afirst, "min_ns", static_cast<double>(e.min_ns));
    rec.field_args_close();
    const double dur_us = static_cast<double>(e.total_ns) * 1e-3;
    rec.finish(e.label.c_str(), 'X', 2, 0, cursor_us, dur_us);
    cursor_us += dur_us;
  }

  out += "]}";
  return out;
}

void write_chrome_trace_file(const std::string& path, const std::vector<TraceEvent>& events,
                             const std::vector<ProfileEntry>& profile,
                             const ChromeTraceOptions& options) {
  robust::atomic_write_file(path, [&](std::ostream& os) {
    os << chrome_trace_json(events, profile, options) << '\n';
  });
}

}  // namespace speedscale::obs::perf
