#include "src/obs/perf/chrome_trace.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "src/obs/json_util.h"
#include "src/robust/atomic_io.h"

namespace speedscale::obs::perf {

namespace {

/// Emits one trace-event record with the fields every phase shares.  Keys
/// are written in sorted order (args, dur, name, ph, pid, s, tid, ts) so the
/// document is byte-diffable.
struct RecordWriter {
  std::string& out;
  bool& first;

  void begin() {
    if (!first) out += ',';
    first = false;
    out += '{';
  }

  void field_args_open() { out += "\"args\":{"; }
  void field_args_close() { out += "},"; }

  void finish(const char* name, char ph, std::int64_t pid, std::int64_t tid, double ts,
              double dur = -1.0, const char* scope = nullptr) {
    if (dur >= 0.0) {
      out += "\"dur\":";
      append_json_number(out, dur);
      out += ',';
    }
    out += "\"name\":";
    append_json_string(out, name);
    out += ",\"ph\":\"";
    out += ph;
    out += "\",\"pid\":";
    out += std::to_string(pid);
    if (scope != nullptr) {
      out += ",\"s\":\"";
      out += scope;
      out += '"';
    }
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"ts\":";
    append_json_number(out, ts);
    out += '}';
  }
};

void append_arg(std::string& out, bool& first, const char* key, double v) {
  if (!first) out += ',';
  first = false;
  append_json_string(out, key);
  out += ':';
  append_json_number(out, v);
}

void append_metadata(std::string& out, bool& first, const char* what, std::int64_t pid,
                     const char* name) {
  RecordWriter rec{out, first};
  rec.begin();
  rec.field_args_open();
  out += "\"name\":";
  append_json_string(out, name);
  rec.field_args_close();
  rec.finish(what, 'M', pid, 0, 0.0);
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const std::vector<ProfileEntry>& profile,
                              const ChromeTraceOptions& options) {
  const double scale = options.model_time_scale;
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;

  append_metadata(out, first, "process_name", 1, "speedscale model time");
  if (!profile.empty()) append_metadata(out, first, "process_name", 2, "profiler (wall clock)");

  // Pair releases with completions so each job renders as one slice.
  std::map<JobId, double> release_t, complete_t;
  for (const TraceEvent& ev : events) {
    if (ev.job == kNoJob) continue;
    if (ev.kind == EventKind::kJobRelease && release_t.find(ev.job) == release_t.end()) {
      release_t[ev.job] = ev.t;
    } else if (ev.kind == EventKind::kJobComplete) {
      complete_t[ev.job] = ev.t;  // last completion wins (re-runs overwrite)
    }
  }

  for (const TraceEvent& ev : events) {
    RecordWriter rec{out, first};
    const double ts = ev.t * scale;
    const std::int64_t job_tid = ev.job == kNoJob ? 0 : static_cast<std::int64_t>(ev.job) + 1;
    switch (ev.kind) {
      case EventKind::kJobRelease: {
        const auto done = ev.job == kNoJob ? complete_t.end() : complete_t.find(ev.job);
        rec.begin();
        rec.field_args_open();
        bool afirst = true;
        append_arg(out, afirst, "density", ev.aux);
        append_arg(out, afirst, "volume", ev.value);
        rec.field_args_close();
        const std::string name = "job " + std::to_string(ev.job);
        if (done != complete_t.end() && done->second >= ev.t) {
          // Release with a known completion: one complete slice on the
          // job's track covering its whole flow window.
          rec.finish(name.c_str(), 'X', 1, job_tid, ts, (done->second - ev.t) * scale);
        } else {
          rec.finish(name.c_str(), 'i', 1, job_tid, ts, -1.0, "t");
        }
        break;
      }
      case EventKind::kJobComplete: {
        rec.begin();
        rec.field_args_open();
        bool afirst = true;
        append_arg(out, afirst, "cum_energy", ev.value);
        append_arg(out, afirst, "cum_flow", ev.aux);
        rec.field_args_close();
        rec.finish("complete", 'i', 1, job_tid, ts, -1.0, "t");
        break;
      }
      case EventKind::kSpeedChange: {
        rec.begin();
        rec.field_args_open();
        bool afirst = true;
        append_arg(out, afirst, "speed", ev.value);
        rec.field_args_close();
        rec.finish("speed", 'C', 1, 0, ts);
        break;
      }
      case EventKind::kPreemption: {
        rec.begin();
        rec.field_args_open();
        bool afirst = true;
        append_arg(out, afirst, "by_job", ev.value);
        append_arg(out, afirst, "remaining", ev.aux);
        rec.field_args_close();
        rec.finish("preemption", 'i', 1, job_tid, ts, -1.0, "p");
        break;
      }
      case EventKind::kDispatch: {
        rec.begin();
        rec.field_args_open();
        bool afirst = true;
        append_arg(out, afirst, "key", ev.value);
        rec.field_args_close();
        rec.finish("dispatch", 'i', 1, job_tid, ts, -1.0, "p");
        break;
      }
      case EventKind::kPhaseBoundary: {
        rec.begin();
        rec.field_args_open();
        bool afirst = true;
        append_arg(out, afirst, "aux", ev.aux);
        append_arg(out, afirst, "value", ev.value);
        rec.field_args_close();
        rec.finish(ev.label != nullptr ? ev.label : "phase", 'i', 1, 0, ts, -1.0, "g");
        break;
      }
    }
  }

  // Profiler aggregates, end-to-end in label order (see header).
  std::vector<ProfileEntry> sorted = profile;
  std::sort(sorted.begin(), sorted.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) { return a.label < b.label; });
  double cursor_us = 0.0;
  for (const ProfileEntry& e : sorted) {
    RecordWriter rec{out, first};
    rec.begin();
    rec.field_args_open();
    bool afirst = true;
    append_arg(out, afirst, "count", static_cast<double>(e.count));
    append_arg(out, afirst, "max_ns", static_cast<double>(e.max_ns));
    append_arg(out, afirst, "mean_ns", e.mean_ns());
    append_arg(out, afirst, "min_ns", static_cast<double>(e.min_ns));
    rec.field_args_close();
    const double dur_us = static_cast<double>(e.total_ns) * 1e-3;
    rec.finish(e.label.c_str(), 'X', 2, 0, cursor_us, dur_us);
    cursor_us += dur_us;
  }

  out += "]}";
  return out;
}

void write_chrome_trace_file(const std::string& path, const std::vector<TraceEvent>& events,
                             const std::vector<ProfileEntry>& profile,
                             const ChromeTraceOptions& options) {
  robust::atomic_write_file(path, [&](std::ostream& os) {
    os << chrome_trace_json(events, profile, options) << '\n';
  });
}

}  // namespace speedscale::obs::perf
