#include "src/obs/perf/bench_ledger.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "src/core/types.h"
#include "src/obs/json_min.h"
#include "src/obs/json_util.h"
#include "src/robust/atomic_io.h"

namespace speedscale::obs::perf {

double BenchEntry::wall_min_ns() const {
  if (wall_ns.empty()) return 0.0;
  return *std::min_element(wall_ns.begin(), wall_ns.end());
}

double BenchEntry::wall_median_ns() const {
  if (wall_ns.empty()) return 0.0;
  std::vector<double> sorted = wall_ns;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  return n % 2 == 1 ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

BenchLedger::BenchLedger(std::string suite) : suite_(std::move(suite)) {}

void BenchLedger::set_config(const std::string& key, std::string value) {
  config_[key] = std::move(value);
}

BenchEntry& BenchLedger::entry(const std::string& name) { return entries_[name]; }

std::string BenchLedger::to_json() const {
  std::string out = "{\"config\":{";
  bool first = true;
  for (const auto& [key, value] : config_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, key);
    out += ':';
    append_json_string(out, value);
  }
  out += "},\"entries\":{";
  first = true;
  for (const auto& [name, e] : entries_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"counters\":{";
    bool cfirst = true;
    for (const auto& [cname, v] : e.counters) {
      if (!cfirst) out += ',';
      cfirst = false;
      append_json_string(out, cname);
      out += ':';
      out += std::to_string(v);
    }
    out += "},\"repetitions\":";
    out += std::to_string(e.repetitions);
    out += ",\"source\":";
    append_json_string(out, e.source);
    out += ",\"wall_ns\":[";
    for (std::size_t i = 0; i < e.wall_ns.size(); ++i) {
      if (i) out += ',';
      append_json_number(out, e.wall_ns[i]);
    }
    out += "]}";
  }
  out += "},\"schema\":";
  append_json_string(out, kSchemaVersion);
  out += ",\"suite\":";
  append_json_string(out, suite_);
  out += '}';
  return out;
}

void BenchLedger::write_file(const std::string& path) const {
  robust::atomic_write_file(path, [this](std::ostream& os) { os << to_json() << '\n'; });
}

BenchLedger BenchLedger::from_json(const std::string& text) {
  const JsonValue root = parse_json(text);
  if (!root.is_object()) throw ModelError("BenchLedger::from_json: not a JSON object");
  const JsonValue& schema = root.at("schema");
  if (!schema.is_string() || schema.string != kSchemaVersion) {
    throw ModelError("BenchLedger::from_json: unsupported schema \"" + schema.string + "\"");
  }
  BenchLedger ledger(root.at("suite").string);
  if (const JsonValue* config = root.find("config")) {
    for (const auto& [key, value] : config->object) ledger.set_config(key, value.string);
  }
  if (const JsonValue* entries = root.find("entries")) {
    for (const auto& [name, ev] : entries->object) {
      BenchEntry& e = ledger.entry(name);
      if (const JsonValue* source = ev.find("source")) e.source = source->string;
      if (const JsonValue* reps = ev.find("repetitions")) {
        e.repetitions = static_cast<int>(reps->number);
      }
      if (const JsonValue* wall = ev.find("wall_ns")) {
        for (const JsonValue& w : wall->array) e.wall_ns.push_back(w.number);
      }
      if (const JsonValue* counters = ev.find("counters")) {
        for (const auto& [cname, v] : counters->object) {
          e.counters[cname] = static_cast<std::int64_t>(std::llround(v.number));
        }
      }
    }
  }
  return ledger;
}

}  // namespace speedscale::obs::perf
