// Bench ledger: the canonical, versioned record of what a bench suite cost.
//
// The simulators are exact for P = s^alpha, so the *work* an algorithm
// performs — ODE substeps, root-solver iterations, bracket expansions, retry
// rungs, preemptions — is deterministic per seed.  That makes work counters
// a noise-free regression signal where wall-clock time is ±10% machine noise
// (EXPERIMENTS.md E19).  The ledger records both, per bench:
//
//   * work counters — a MetricsRegistry counter snapshot taken around each
//     repetition; byte-for-byte reproducible, hard-fail on any delta
//     (scripts/bench_compare.py);
//   * wall times — one sample per repetition; advisory-only downstream
//     (min-of-medians, warn above 25%).
//
// Schema (version speedscale.bench_ledger/1; all keys sorted, numbers
// locale-independent "%.17g" via src/obs/json_util.h):
//
//   {"config":{"<key>":"<value>",...},
//    "entries":{"<bench>":{"counters":{"<name>":N,...},
//                          "repetitions":R,
//                          "source":"runner"|"google_benchmark",
//                          "wall_ns":[...per-rep...]},...},
//    "schema":"speedscale.bench_ledger/1",
//    "suite":"<label>"}
//
// bench/bench_suite_runner.cpp produces ledgers for the pinned in-process
// suite; scripts/run_bench_suite.py merges google-benchmark JSON into the
// same schema and commits the combined artifact (BENCH_PR3.json).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace speedscale::obs {
struct JsonValue;
}  // namespace speedscale::obs

namespace speedscale::obs::perf {

/// One bench's record: deterministic counters plus per-repetition wall time.
struct BenchEntry {
  std::string source = "runner";
  int repetitions = 0;
  std::vector<double> wall_ns;                     ///< one sample per repetition
  std::map<std::string, std::int64_t> counters;    ///< registry snapshot deltas

  /// Noise-robust wall statistics (0 when no samples were recorded).
  [[nodiscard]] double wall_min_ns() const;
  [[nodiscard]] double wall_median_ns() const;
};

/// Name -> entry map with versioned JSON (de)serialization.
class BenchLedger {
 public:
  static constexpr const char* kSchemaVersion = "speedscale.bench_ledger/1";

  explicit BenchLedger(std::string suite = "default");

  [[nodiscard]] const std::string& suite() const { return suite_; }

  /// Free-form suite configuration (mode, alpha, substeps, ...), recorded so
  /// a ledger is self-describing; keys serialize sorted.
  void set_config(const std::string& key, std::string value);
  [[nodiscard]] const std::map<std::string, std::string>& config() const { return config_; }

  /// Get-or-create the entry for `name`.
  BenchEntry& entry(const std::string& name);
  [[nodiscard]] const std::map<std::string, BenchEntry>& entries() const { return entries_; }

  /// Canonical serialization (schema comment above).  Deterministic: equal
  /// ledgers serialize byte-identically on every platform and locale.
  [[nodiscard]] std::string to_json() const;

  /// Crash-safe write (tmp + atomic rename) of to_json() + trailing newline.
  void write_file(const std::string& path) const;

  /// Parses a ledger back from its JSON form; throws ModelError on a
  /// malformed document or a schema-version mismatch.
  static BenchLedger from_json(const std::string& text);

 private:
  std::string suite_;
  std::map<std::string, std::string> config_;
  std::map<std::string, BenchEntry> entries_;
};

}  // namespace speedscale::obs::perf
