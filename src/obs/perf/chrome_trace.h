// Chrome/Perfetto trace export: obs trace events and profiler aggregates as
// a `chrome://tracing`-loadable JSON document (the Trace Event Format).
//
// Two timelines share one file, as separate processes:
//
//   * pid 1, "speedscale model time" — the simulator's own event stream.
//     Model seconds map to trace microseconds (x1e6 by default).  Each job
//     becomes a complete ("X") slice on its own track (tid = job id + 1,
//     release -> completion); speed changes become a counter ("C") series;
//     preemptions, dispatches, and phase boundaries become instants ("i").
//     Each job additionally carries its lifecycle state machine (released ->
//     waiting -> active -> completed) as async spans ("b"/"e", cat
//     "lifecycle"), so the trace opens as a per-job Gantt in Perfetto; and
//     certificate series from the potential tracker (phase boundaries
//     labelled "cert.*", src/obs/cert/) render as counter tracks next to
//     the speed series.
//   * pid 2, "profiler (wall clock)" — the Profiler's per-label aggregates.
//     Aggregates carry no start timestamps, so labels are laid end-to-end in
//     sorted order, each an "X" slice of its total duration with
//     count/mean/min/max in args.  A synthetic timeline, but it makes the
//     relative cost of the instrumented phases visible at a glance — and it
//     is deterministic given the aggregates, which is what the golden-file
//     test pins down.
//
// Surfaced as `trace_tool --chrome out.json`; open the file in
// https://ui.perfetto.dev or chrome://tracing.
#pragma once

#include <string>
#include <vector>

#include "src/obs/profiler.h"
#include "src/obs/trace.h"

namespace speedscale::obs::perf {

struct ChromeTraceOptions {
  double model_time_scale = 1e6;  ///< model seconds -> trace microseconds
};

/// Serializes `events` (+ optional profiler aggregates) as one Trace Event
/// Format document: {"displayTimeUnit":"ms","traceEvents":[...]}.
/// Deterministic: equal inputs serialize byte-identically (json_util.h).
[[nodiscard]] std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                                            const std::vector<ProfileEntry>& profile = {},
                                            const ChromeTraceOptions& options = {});

/// Crash-safe file variant (tmp + atomic rename).
void write_chrome_trace_file(const std::string& path, const std::vector<TraceEvent>& events,
                             const std::vector<ProfileEntry>& profile = {},
                             const ChromeTraceOptions& options = {});

}  // namespace speedscale::obs::perf
