#include "src/obs/log/logger.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/obs/json_min.h"
#include "src/obs/json_util.h"
#include "src/robust/diagnostics.h"

namespace speedscale::obs::log {

namespace {

double wall_clock_seconds() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

/// "k=v k2=v2" suffix for the stderr mirror; empty when there are no fields.
std::string mirror_fields(const std::vector<Field>& fields) {
  if (fields.empty()) return {};
  std::string out = " (";
  bool first = true;
  for (const Field& f : fields) {
    if (!first) out += ' ';
    first = false;
    out += f.key + '=' + f.value;
  }
  out += ')';
  return out;
}

const char* mirror_level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: break;
  }
  return "LOG";
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: break;
  }
  return "off";
}

Level level_by_name(const std::string& name) {
  if (name == "debug") return Level::kDebug;
  if (name == "info") return Level::kInfo;
  if (name == "warn") return Level::kWarn;
  if (name == "error") return Level::kError;
  if (name == "off") return Level::kOff;
  return Level::kWarn;
}

Field kv(std::string key, std::string value) { return {std::move(key), std::move(value), false}; }
Field kv(std::string key, const char* value) { return {std::move(key), value, false}; }
Field kv(std::string key, std::int64_t value) {
  return {std::move(key), std::to_string(value), true};
}
Field kv(std::string key, std::uint64_t value) {
  return {std::move(key), std::to_string(value), true};
}
Field kv(std::string key, int value) { return {std::move(key), std::to_string(value), true}; }
Field kv(std::string key, double value) {
  Field f{std::move(key), {}, true};
  append_json_number(f.value, value);
  return f;
}

std::string record_json(const LogRecord& record) {
  // Keys in sorted order — the byte-diffability contract every obs artifact
  // honors (json_util.h).
  std::string out = "{\"component\":";
  append_json_string(out, record.component);
  out += ",\"fields\":{";
  bool first = true;
  for (const Field& f : record.fields) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, f.key);
    out += ':';
    if (f.raw) {
      out += f.value;
    } else {
      append_json_string(out, f.value);
    }
  }
  out += "},\"incarnation\":" + std::to_string(record.tags.incarnation);
  out += ",\"level\":\"";
  out += level_name(record.level);
  out += "\",\"message\":";
  append_json_string(out, record.message);
  out += ",\"run_id\":";
  append_json_string(out, record.tags.run_id);
  out += ",\"seq\":" + std::to_string(record.seq);
  out += ",\"shard\":" + std::to_string(record.tags.shard);
  out += ",\"ts\":";
  append_json_number(out, record.ts);
  out += '}';
  return out;
}

bool parse_record(const std::string& line, LogRecord& out) {
  JsonValue root;
  try {
    root = parse_json(line);
  } catch (const std::exception&) {
    return false;  // torn tail / corrupt line
  }
  if (!root.is_object()) return false;
  if (root.find("schema") != nullptr) return false;  // header line
  const JsonValue* component = root.find("component");
  const JsonValue* fields = root.find("fields");
  const JsonValue* incarnation = root.find("incarnation");
  const JsonValue* level = root.find("level");
  const JsonValue* message = root.find("message");
  const JsonValue* run_id = root.find("run_id");
  const JsonValue* seq = root.find("seq");
  const JsonValue* shard = root.find("shard");
  const JsonValue* ts = root.find("ts");
  if (component == nullptr || !component->is_string() || fields == nullptr ||
      !fields->is_object() || incarnation == nullptr || !incarnation->is_number() ||
      level == nullptr || !level->is_string() || message == nullptr || !message->is_string() ||
      run_id == nullptr || !run_id->is_string() || seq == nullptr || !seq->is_number() ||
      shard == nullptr || !shard->is_number() || ts == nullptr || !ts->is_number()) {
    return false;
  }
  out.component = component->string;
  out.level = level_by_name(level->string);
  out.message = message->string;
  out.tags.run_id = run_id->string;
  out.tags.shard = static_cast<long>(shard->number);
  out.tags.incarnation = static_cast<long>(incarnation->number);
  out.seq = static_cast<std::uint64_t>(seq->number);
  out.ts = ts->number;
  out.fields.clear();
  for (const auto& [key, v] : fields->object) {
    if (v.is_string()) {
      out.fields.push_back(kv(key, v.string));
    } else if (v.is_number()) {
      // Integers re-encode as integers (the kv(int64) path); everything else
      // through the canonical double encoder — round-trip stable either way.
      if (v.number == std::floor(v.number) && std::abs(v.number) < 9.007199254740992e15) {
        out.fields.push_back(kv(key, static_cast<std::int64_t>(v.number)));
      } else {
        out.fields.push_back(kv(key, v.number));
      }
    } else if (v.is_bool()) {
      Field f{key, v.boolean ? "true" : "false", true};
      out.fields.push_back(std::move(f));
    } else {
      return false;
    }
  }
  return true;
}

Logger::Logger() {
  if (const char* fixed = std::getenv("SPEEDSCALE_LOG_FIXED_CLOCK");
      fixed != nullptr && fixed[0] == '1') {
    fixed_clock_ = true;
  }
  if (const char* mirror = std::getenv("SPEEDSCALE_LOG_STDERR"); mirror != nullptr) {
    stderr_level_ = level_by_name(mirror);
  }
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto file = std::make_unique<std::ofstream>(path, std::ios::app);
  if (!*file) {
    throw robust::RobustError(robust::ErrorCode::kIoMalformed, "cannot open log file", path);
  }
  // Header only on a fresh file: a resumed worker incarnation appends to its
  // shard's existing log, and the merged artifact wants exactly one header.
  if (file->tellp() == std::streampos(0)) {
    *file << "{\"schema\":\"" << kLogSchema << "\"}\n";
    file->flush();
  }
  file_ = std::move(file);
  path_ = path;
}

void Logger::close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_) {
    file_->flush();
    file_.reset();
  }
  path_.clear();
}

bool Logger::is_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_ != nullptr;
}

void Logger::set_tags(const LogTags& tags) {
  std::lock_guard<std::mutex> lock(mu_);
  tags_ = tags;
}

LogTags Logger::tags() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tags_;
}

void Logger::set_stderr_level(Level level) {
  std::lock_guard<std::mutex> lock(mu_);
  stderr_level_ = level;
}

Level Logger::stderr_level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stderr_level_;
}

void Logger::set_fixed_clock(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  // Installing the deterministic clock restarts the deterministic timeline:
  // ts/seq become a pure function of records-since-install, so an in-process
  // golden run (the supervisor in a test binary) doesn't depend on how much
  // was logged before the clock went in.  Spawned workers install via the
  // environment before their first record, where this is a no-op.
  if (on && !fixed_clock_) seq_ = 0;
  fixed_clock_ = on;
}

bool Logger::fixed_clock() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fixed_clock_;
}

void Logger::log(Level level, const char* component, std::string message,
                 std::vector<Field> fields) {
  LogRecord record;
  std::string line;
  bool mirror = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    record.seq = seq_++;
    record.ts = fixed_clock_ ? static_cast<double>(record.seq) / 1000.0 : wall_clock_seconds();
    record.level = level;
    record.component = component;
    record.message = std::move(message);
    record.fields = std::move(fields);
    record.tags = tags_;
    if (file_) {
      line = record_json(record);
      *file_ << line << '\n';
      // Flush per record: a SIGKILLed worker leaves everything it logged
      // (the shard-log durability argument applied to logs).
      file_->flush();
    }
    mirror = stderr_level_ != Level::kOff && level >= stderr_level_;
  }
  if (mirror) {
    std::fprintf(stderr, "[%s] %s: %s%s\n", record.component.c_str(),
                 mirror_level_name(record.level), record.message.c_str(),
                 mirror_fields(record.fields).c_str());
  }
}

std::uint64_t Logger::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

void debug(const char* component, std::string message, std::vector<Field> fields) {
  Logger::instance().log(Level::kDebug, component, std::move(message), std::move(fields));
}
void info(const char* component, std::string message, std::vector<Field> fields) {
  Logger::instance().log(Level::kInfo, component, std::move(message), std::move(fields));
}
void warn(const char* component, std::string message, std::vector<Field> fields) {
  Logger::instance().log(Level::kWarn, component, std::move(message), std::move(fields));
}
void error(const char* component, std::string message, std::vector<Field> fields) {
  Logger::instance().log(Level::kError, component, std::move(message), std::move(fields));
}

}  // namespace speedscale::obs::log
