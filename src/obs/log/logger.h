// Structured logging: the fleet-wide replacement for ad-hoc stderr WARNs.
//
// Every process in a fleet run (supervisor, worker incarnations, the
// degraded-ladder fallback) speaks one JSONL log schema, speedscale.log/1:
//
//   {"component":"supervisor","fields":{"delay_ms":5,...},"incarnation":-1,
//    "level":"warn","message":"...","run_id":"r1","seq":3,"shard":-1,
//    "ts":0.003}
//
// one object per line, keys sorted, numbers via the byte-diffable
// json_util.h encoders.  The first line of every log file is a header
// ({"schema":"speedscale.log/1"}), so a merged fleet log is just header +
// concatenated records — each record is self-contained, carrying the
// process's correlation tags (run_id / shard / incarnation, set once per
// process from the supervisor's spawn arguments).
//
// Design points, in the repo's house discipline:
//
//   * *Append + flush per record.*  A SIGKILLed worker must leave every
//     record it wrote (the same durability argument as the shard log) — so
//     no tmp+rename here, and no buffering beyond one line.
//   * *Deterministic under clock injection.*  With the fixed clock installed
//     (set_fixed_clock, or SPEEDSCALE_LOG_FIXED_CLOCK=1 in a spawned
//     worker's environment), ts is seq/1000.0 — a pure function of the
//     record sequence — so golden tests can pin merged fleet logs
//     byte-for-byte under chaos.
//   * *Human-readable stderr mirror behind a verbosity flag.*  Records at or
//     above the mirror level also print as the classic one-line
//     "[component] WARN: message (k=v ...)" — default kWarn, so existing
//     tooling that greps stderr keeps working; SPEEDSCALE_LOG_STDERR
//     (debug|info|warn|error|off) or set_stderr_level adjusts it.
//   * *No metrics coupling.*  The logger never touches the MetricsRegistry:
//     log volume must not perturb per-item counter deltas or the pinned
//     bench ledger (the same reasoning that keeps torn-line recovery
//     bookkeeping out of OBS_COUNT).
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace speedscale::obs::log {

inline constexpr const char* kLogSchema = "speedscale.log/1";

enum class Level : std::uint8_t { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Stable lower-case name ("debug", "info", "warn", "error").
[[nodiscard]] const char* level_name(Level level);
/// Inverse of level_name; also accepts "off".  Returns kWarn for unknown
/// strings (the conservative mirror default).
[[nodiscard]] Level level_by_name(const std::string& name);

/// One key/value field.  `raw` values are emitted verbatim (pre-encoded
/// numbers); otherwise the value is a JSON string.  Build via kv().
struct Field {
  std::string key;
  std::string value;
  bool raw = false;
};

[[nodiscard]] Field kv(std::string key, std::string value);
[[nodiscard]] Field kv(std::string key, const char* value);
[[nodiscard]] Field kv(std::string key, std::int64_t value);
[[nodiscard]] Field kv(std::string key, std::uint64_t value);
[[nodiscard]] Field kv(std::string key, int value);
[[nodiscard]] Field kv(std::string key, double value);

/// Per-process correlation tags, stamped into every record.  The supervisor
/// runs with shard = incarnation = -1; workers set all three from their
/// spawn arguments, so a record is attributable across process boundaries.
struct LogTags {
  std::string run_id;
  long shard = -1;
  long incarnation = -1;
};

/// One structured record (the parsed form; used by the fleet log merger and
/// round-trip tests).
struct LogRecord {
  double ts = 0.0;
  std::uint64_t seq = 0;
  Level level = Level::kInfo;
  std::string component;
  std::string message;
  std::vector<Field> fields;
  LogTags tags;
};

/// Serializes one record as a speedscale.log/1 line (no trailing newline).
/// Pure and byte-stable: equal records serialize identically.
[[nodiscard]] std::string record_json(const LogRecord& record);

/// Parses one speedscale.log/1 line.  Returns false on the header line or a
/// torn/corrupt line (the caller counts those; same leniency contract as
/// load_shard_log).
[[nodiscard]] bool parse_record(const std::string& line, LogRecord& out);

/// The process-wide logger.  All methods are thread-safe.
class Logger {
 public:
  static Logger& instance();

  /// Opens (append mode) the JSONL sink and writes the schema header when
  /// the file is new/empty.  Records before open() go to the mirror only.
  /// Throws RobustError(kIoMalformed) when the file cannot be opened.
  void open(const std::string& path);
  /// Flushes and detaches the sink.  Idempotent.
  void close();
  [[nodiscard]] bool is_open() const;

  void set_tags(const LogTags& tags);
  [[nodiscard]] LogTags tags() const;

  /// Mirror threshold: records at or above it also print to stderr as
  /// "[component] LEVEL: message (k=v ...)".  Level::kOff silences the
  /// mirror entirely.
  void set_stderr_level(Level level);
  [[nodiscard]] Level stderr_level() const;

  /// Installs the deterministic clock: ts = seq / 1000.0, with the sequence
  /// restarted at install so the timeline is a pure function of
  /// records-since-install.  Also installed lazily when
  /// SPEEDSCALE_LOG_FIXED_CLOCK=1 is in the environment (the cross-process
  /// hook for golden fleet runs).
  void set_fixed_clock(bool on);
  /// True when the deterministic clock is installed.  Producers of other
  /// timed fleet artifacts (event journals, item walls in cost rows) zero
  /// their measured durations under it so golden runs stay byte-stable.
  [[nodiscard]] bool fixed_clock() const;

  void log(Level level, const char* component, std::string message,
           std::vector<Field> fields = {});

  /// Records emitted since process start (any destination).
  [[nodiscard]] std::uint64_t records() const;

 private:
  Logger();

  mutable std::mutex mu_;
  std::unique_ptr<std::ofstream> file_;
  std::string path_;
  LogTags tags_;
  Level stderr_level_ = Level::kWarn;
  bool fixed_clock_ = false;
  std::uint64_t seq_ = 0;
};

// Convenience wrappers over Logger::instance().
void debug(const char* component, std::string message, std::vector<Field> fields = {});
void info(const char* component, std::string message, std::vector<Field> fields = {});
void warn(const char* component, std::string message, std::vector<Field> fields = {});
void error(const char* component, std::string message, std::vector<Field> fields = {});

}  // namespace speedscale::obs::log
