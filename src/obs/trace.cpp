#include "src/obs/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/obs/json_util.h"
#include "src/robust/atomic_io.h"

namespace speedscale::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kJobRelease:
      return "job_release";
    case EventKind::kJobComplete:
      return "job_complete";
    case EventKind::kSpeedChange:
      return "speed_change";
    case EventKind::kPreemption:
      return "preemption";
    case EventKind::kDispatch:
      return "dispatch";
    case EventKind::kPhaseBoundary:
      return "phase_boundary";
  }
  return "?";
}

void append_event_json(std::string& out, const TraceEvent& ev) {
  out += "{\"kind\":\"";
  out += event_kind_name(ev.kind);
  out += "\",\"t\":";
  append_json_number(out, ev.t);
  if (ev.job != kNoJob) {
    out += ",\"job\":";
    out += std::to_string(ev.job);
  }
  if (ev.machine != kNoMachine) {
    out += ",\"machine\":";
    out += std::to_string(ev.machine);
  }
  out += ",\"value\":";
  append_json_number(out, ev.value);
  out += ",\"aux\":";
  append_json_number(out, ev.aux);
  if (ev.label != nullptr) {
    out += ",\"label\":";
    append_json_string(out, ev.label);
  }
  out += '}';
}

// --- RingBufferSink ---------------------------------------------------------

RingBufferSink::RingBufferSink(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  buf_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void RingBufferSink::on_event(const TraceEvent& ev) {
  std::lock_guard<std::mutex> lk(mu_);
  if (buf_.size() < capacity_) {
    buf_.push_back(ev);
  } else {
    buf_[total_ % capacity_] = ev;
  }
  ++total_;
}

std::vector<TraceEvent> RingBufferSink::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TraceEvent> out;
  out.reserve(buf_.size());
  if (total_ <= capacity_) {
    out = buf_;
  } else {
    const std::size_t head = total_ % capacity_;  // oldest surviving event
    out.insert(out.end(), buf_.begin() + static_cast<std::ptrdiff_t>(head), buf_.end());
    out.insert(out.end(), buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return out;
}

std::size_t RingBufferSink::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return buf_.size();
}

std::size_t RingBufferSink::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_ > capacity_ ? total_ - capacity_ : 0;
}

void RingBufferSink::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  buf_.clear();
  total_ = 0;
}

// --- JsonlSink --------------------------------------------------------------

JsonlSink::JsonlSink(std::ostream& os) : os_(&os) {}

JsonlSink::JsonlSink(const std::string& path) {
  const std::string tmp = robust::tmp_sibling(path);
  auto f = std::make_unique<std::ofstream>(tmp);
  if (!*f) throw ModelError("JsonlSink: cannot open " + tmp);
  os_ = f.get();
  owned_ = std::move(f);
  final_path_ = path;
}

JsonlSink::~JsonlSink() {
  try {
    close();
  } catch (...) {
    // A failed commit leaves the ".tmp" sibling for post-mortem; destructors
    // must not throw.
  }
}

// Shared append path (callers hold mu_): writes one line, then applies the
// automatic flush policy so long-running producers never sit on an
// arbitrarily stale stream.
void JsonlSink::append_locked(const char* data, std::size_t n) {
  os_->write(data, static_cast<std::streamsize>(n));
  ++lines_;
  ++lines_since_flush_;
  bool do_flush = false;
  switch (policy_.mode) {
    case FlushPolicy::Mode::kManual:
      break;
    case FlushPolicy::Mode::kEveryN:
      do_flush = policy_.every_n > 0 && lines_since_flush_ >= policy_.every_n;
      break;
    case FlushPolicy::Mode::kTimed:
      do_flush = std::chrono::steady_clock::now() - last_flush_ >= policy_.interval;
      break;
  }
  if (do_flush) {
    os_->flush();
    lines_since_flush_ = 0;
    last_flush_ = std::chrono::steady_clock::now();
  }
}

void JsonlSink::on_event(const TraceEvent& ev) {
  std::lock_guard<std::mutex> lk(mu_);
  if (os_ == nullptr) return;  // closed path-mode sink
  scratch_.clear();
  append_event_json(scratch_, ev);
  scratch_ += '\n';
  append_locked(scratch_.data(), scratch_.size());
}

void JsonlSink::write_line(const std::string& json_line) {
  std::lock_guard<std::mutex> lk(mu_);
  if (os_ == nullptr) return;  // closed path-mode sink
  scratch_.clear();
  scratch_ = json_line;
  scratch_ += '\n';
  append_locked(scratch_.data(), scratch_.size());
}

void JsonlSink::flush() {
  std::lock_guard<std::mutex> lk(mu_);
  if (os_ != nullptr) os_->flush();
  lines_since_flush_ = 0;
  last_flush_ = std::chrono::steady_clock::now();
}

void JsonlSink::set_flush_policy(FlushPolicy policy) {
  std::lock_guard<std::mutex> lk(mu_);
  policy_ = policy;
  lines_since_flush_ = 0;
  last_flush_ = std::chrono::steady_clock::now();
}

void JsonlSink::close() {
  std::lock_guard<std::mutex> lk(mu_);
  if (final_path_.empty()) return;  // borrowed stream or already committed
  os_->flush();
  owned_.reset();  // release the descriptor before the rename
  os_ = nullptr;
  const std::string path = std::move(final_path_);
  final_path_.clear();
  robust::commit_tmp_file(robust::tmp_sibling(path), path);
}

std::size_t JsonlSink::lines() const {
  std::lock_guard<std::mutex> lk(mu_);
  return lines_;
}

// --- SummarySink ------------------------------------------------------------

void SummarySink::on_event(const TraceEvent& ev) {
  std::lock_guard<std::mutex> lk(mu_);
  ++counts_[static_cast<std::size_t>(ev.kind)];
  t_min_ = std::min(t_min_, ev.t);
  t_max_ = std::max(t_max_, ev.t);
}

std::size_t SummarySink::count(EventKind kind) const {
  std::lock_guard<std::mutex> lk(mu_);
  return counts_[static_cast<std::size_t>(kind)];
}

std::size_t SummarySink::total() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const std::size_t c : counts_) n += c;
  return n;
}

std::string SummarySink::summary() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream os;
  std::size_t n = 0;
  for (const std::size_t c : counts_) n += c;
  os << "trace: " << n << " events";
  if (n > 0) os << " over t=[" << t_min_ << ", " << t_max_ << "]";
  for (std::size_t k = 0; k < 6; ++k) {
    if (counts_[k] == 0) continue;
    os << "\n  " << event_kind_name(static_cast<EventKind>(k)) << ": " << counts_[k];
  }
  os << '\n';
  return os.str();
}

// --- Tracer -----------------------------------------------------------------

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::add_sink(std::shared_ptr<TraceSink> sink) {
  if (!sink) throw ModelError("Tracer::add_sink: null sink");
  std::lock_guard<std::mutex> lk(mu_);
  sinks_.push_back(std::move(sink));
}

void Tracer::remove_sink(const TraceSink* sink) {
  std::lock_guard<std::mutex> lk(mu_);
  sinks_.erase(std::remove_if(sinks_.begin(), sinks_.end(),
                              [&](const std::shared_ptr<TraceSink>& s) { return s.get() == sink; }),
               sinks_.end());
}

void Tracer::clear_sinks() {
  std::lock_guard<std::mutex> lk(mu_);
  sinks_.clear();
}

std::size_t Tracer::sink_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sinks_.size();
}

void Tracer::set_enabled(bool on) {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

bool Tracer::enabled() const {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

void Tracer::emit(const TraceEvent& ev) {
  // An exclusive per-thread capture (ScopedThreadCapture) short-circuits the
  // global sink set: no shared lock, no cross-thread event mixing.
  if (TraceSink* local = detail::g_thread_sink) {
    local->on_event(ev);
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& s : sinks_) s->on_event(ev);
}

void Tracer::flush() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& s : sinks_) s->flush();
}

// --- ScopedTracing ----------------------------------------------------------

ScopedTracing::ScopedTracing(std::shared_ptr<TraceSink> sink)
    : sink_(std::move(sink)), was_enabled_(Tracer::instance().enabled()) {
  Tracer::instance().add_sink(sink_);
  Tracer::instance().set_enabled(true);
}

ScopedTracing::~ScopedTracing() {
  Tracer::instance().flush();
  Tracer::instance().remove_sink(sink_.get());
  Tracer::instance().set_enabled(was_enabled_);
}

}  // namespace speedscale::obs
