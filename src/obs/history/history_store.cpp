#include "src/obs/history/history_store.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <tuple>
#include <utility>

#include "src/obs/json_min.h"
#include "src/obs/json_util.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/perf/bench_ledger.h"
#include "src/robust/atomic_io.h"
#include "src/robust/diagnostics.h"

namespace speedscale::obs::history {

namespace {

[[noreturn]] void malformed(const std::string& what, const std::string& context = {}) {
  throw robust::RobustError(robust::ErrorCode::kIoMalformed, "history: " + what, context);
}

std::tuple<std::int64_t, const std::string&, const std::string&> record_key(
    const HistoryRecord& r) {
  return {r.run, r.kind, r.entry};
}

bool record_less(const HistoryRecord& a, const HistoryRecord& b) {
  return record_key(a) < record_key(b);
}

void append_string_map(std::string& out, const std::map<std::string, std::string>& m) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, k);
    out += ':';
    append_json_string(out, v);
  }
  out += '}';
}

void append_counter_map(std::string& out, const std::map<std::string, std::int64_t>& m) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, k);
    out += ':' + std::to_string(v);
  }
  out += '}';
}

std::int64_t require_int(const JsonValue& obj, const char* key, const std::string& ctx) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number() || !std::isfinite(v->number) ||
      v->number != std::floor(v->number)) {
    malformed(std::string("expected integer '") + key + "'", ctx);
  }
  return static_cast<std::int64_t>(v->number);
}

double require_number(const JsonValue& obj, const char* key, const std::string& ctx) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number() || !std::isfinite(v->number)) {
    malformed(std::string("expected number '") + key + "'", ctx);
  }
  return v->number;
}

std::string require_string(const JsonValue& obj, const char* key, const std::string& ctx) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_string()) {
    malformed(std::string("expected string '") + key + "'", ctx);
  }
  return v->string;
}

/// Parses one record line (already known to be valid JSON) into a
/// HistoryRecord; throws via malformed() with `ctx` on structural errors.
HistoryRecord parse_record(const JsonValue& v, const std::string& ctx) {
  if (!v.is_object()) malformed("record is not an object", ctx);
  HistoryRecord r;
  r.kind = require_string(v, "kind", ctx);
  r.run = require_int(v, "run", ctx);
  r.entry = require_string(v, "entry", ctx);
  if (r.kind == "bench") {
    r.suite = require_string(v, "suite", ctx);
    const JsonValue* config = v.find("config");
    if (config == nullptr || !config->is_object()) malformed("expected object 'config'", ctx);
    for (const auto& [k, val] : config->object) {
      if (!val.is_string()) malformed("config value is not a string", ctx);
      r.config[k] = val.string;
    }
    const JsonValue* counters = v.find("counters");
    if (counters == nullptr || !counters->is_object()) {
      malformed("expected object 'counters'", ctx);
    }
    for (const auto& [k, val] : counters->object) {
      if (!val.is_number()) malformed("counter value is not a number", ctx);
      r.counters[k] = static_cast<std::int64_t>(val.number);
    }
    const JsonValue* wall = v.find("wall_ns");
    if (wall == nullptr || !wall->is_array()) malformed("expected array 'wall_ns'", ctx);
    for (const JsonValue& w : wall->array) {
      if (!w.is_number() || !std::isfinite(w.number)) malformed("bad wall_ns sample", ctx);
      r.wall_ns.push_back(w.number);
    }
  } else if (r.kind == "cost") {
    r.run_id = require_string(v, "run_id", ctx);
    r.shard = static_cast<long>(require_int(v, "shard", ctx));
    r.wall_ms = require_number(v, "wall_ms", ctx);
    r.work_units = require_int(v, "work_units", ctx);
  } else {
    malformed("unknown record kind '" + r.kind + "'", ctx);
  }
  return r;
}

}  // namespace

std::string HistoryRecord::to_json() const {
  std::string out;
  if (kind == "bench") {
    out += "{\"config\":";
    append_string_map(out, config);
    out += ",\"counters\":";
    append_counter_map(out, counters);
    out += ",\"entry\":";
    append_json_string(out, entry);
    out += ",\"kind\":\"bench\",\"run\":" + std::to_string(run);
    out += ",\"suite\":";
    append_json_string(out, suite);
    out += ",\"wall_ns\":[";
    for (std::size_t i = 0; i < wall_ns.size(); ++i) {
      if (i > 0) out += ',';
      append_json_number(out, wall_ns[i]);
    }
    out += "]}";
  } else {
    out += "{\"entry\":";
    append_json_string(out, entry);
    out += ",\"kind\":\"cost\",\"run\":" + std::to_string(run);
    out += ",\"run_id\":";
    append_json_string(out, run_id);
    out += ",\"shard\":" + std::to_string(shard);
    out += ",\"wall_ms\":";
    append_json_number(out, wall_ms);
    out += ",\"work_units\":" + std::to_string(work_units);
    out += '}';
  }
  return out;
}

double HistoryRecord::wall_min_ns() const {
  if (wall_ns.empty()) return 0.0;
  return *std::min_element(wall_ns.begin(), wall_ns.end());
}

void HistoryStore::canonicalize() {
  std::stable_sort(records_.begin(), records_.end(), record_less);
}

std::int64_t HistoryStore::next_run() const {
  std::int64_t max_run = -1;
  for (const HistoryRecord& r : records_) max_run = std::max(max_run, r.run);
  return max_run + 1;
}

std::size_t HistoryStore::runs() const {
  std::int64_t last = -1;
  std::size_t n = 0;
  for (const HistoryRecord& r : records_) {  // records_ is sorted by run first
    if (r.run != last) {
      ++n;
      last = r.run;
    }
  }
  return n;
}

std::size_t HistoryStore::bench_entries() const {
  std::vector<const std::string*> names;
  for (const HistoryRecord& r : records_) {
    if (r.kind == "bench") names.push_back(&r.entry);
  }
  std::sort(names.begin(), names.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  names.erase(std::unique(names.begin(), names.end(),
                          [](const std::string* a, const std::string* b) { return *a == *b; }),
              names.end());
  return names.size();
}

std::size_t HistoryStore::cost_rows() const {
  std::size_t n = 0;
  for (const HistoryRecord& r : records_) n += r.kind == "cost" ? 1 : 0;
  return n;
}

void HistoryStore::append(HistoryRecord record) {
  for (HistoryRecord& r : records_) {
    if (record_key(r) == record_key(record)) {
      r = std::move(record);
      return;
    }
  }
  records_.push_back(std::move(record));
  canonicalize();
}

std::int64_t HistoryStore::ingest_bench_ledger(const std::string& ledger_json) {
  const perf::BenchLedger ledger = perf::BenchLedger::from_json(ledger_json);
  const std::int64_t run = next_run();
  for (const auto& [name, entry] : ledger.entries()) {
    HistoryRecord r;
    r.kind = "bench";
    r.run = run;
    r.entry = name;
    r.suite = ledger.suite();
    r.config = ledger.config();
    r.counters = entry.counters;
    r.wall_ns = entry.wall_ns;
    records_.push_back(std::move(r));
  }
  canonicalize();
  return run;
}

std::int64_t HistoryStore::ingest_cost_report(const std::string& json) {
  JsonValue root;
  try {
    root = parse_json(json);
  } catch (const std::exception& e) {
    malformed(std::string("unparseable cost document: ") + e.what());
  }
  if (!root.is_object()) malformed("cost document is not an object");
  // fleet_state.json embeds the cost ledger under "cost"; accept both.
  const JsonValue* doc = &root;
  const JsonValue* schema = root.find("schema");
  if (schema != nullptr && schema->is_string() &&
      schema->string == "speedscale.fleet_state/1") {
    doc = root.find("cost");
    if (doc == nullptr) malformed("fleet_state document has no embedded cost ledger");
    schema = doc->find("schema");
  }
  if (schema == nullptr || !schema->is_string() ||
      schema->string != "speedscale.fleet_cost/1") {
    malformed("unknown cost schema");
  }
  const std::string run_id = require_string(*doc, "run_id", "cost");
  const JsonValue* rows = doc->find("rows");
  if (rows == nullptr || !rows->is_array()) malformed("expected array 'rows'", "cost");
  const std::int64_t run = next_run();
  for (const JsonValue& row : rows->array) {
    if (!row.is_object()) malformed("cost row is not an object");
    HistoryRecord r;
    r.kind = "cost";
    r.run = run;
    r.run_id = run_id;
    const std::int64_t index = require_int(row, "index", "cost row");
    r.entry = "item/" + std::to_string(index);
    r.shard = static_cast<long>(require_int(row, "shard", "cost row"));
    r.wall_ms = require_number(row, "wall_ms", "cost row");
    const JsonValue* work = row.find("work");
    if (work == nullptr || !work->is_object()) malformed("expected object 'work'", "cost row");
    for (const auto& [k, val] : work->object) {
      if (!val.is_number()) malformed("work value is not a number", "cost row");
      r.work_units += static_cast<std::int64_t>(val.number);
    }
    records_.push_back(std::move(r));
  }
  canonicalize();
  return run;
}

std::string HistoryStore::to_jsonl() const {
  std::string out = "{\"schema\":\"";
  out += kHistorySchema;
  out += "\"}\n";
  for (const HistoryRecord& r : records_) {
    out += r.to_json();
    out += '\n';
  }
  return out;
}

void HistoryStore::write_file(const std::string& path) const {
  const std::string doc = to_jsonl();
  robust::atomic_write_file(path, [&](std::ostream& os) { os << doc; });
}

HistoryStore HistoryStore::parse(const std::string& text, LoadMode mode, LoadStats* stats) {
  HistoryStore store;
  LoadStats local;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  // Last-line-wins duplicate resolution in lenient mode: remember where each
  // key landed.
  std::map<std::tuple<std::int64_t, std::string, std::string>, std::size_t> index;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string ctx = "line " + std::to_string(line_no);
    if (line.empty()) continue;
    JsonValue v;
    try {
      v = parse_json(line);
    } catch (const std::exception& e) {
      if (mode == LoadMode::kStrict) {
        malformed(std::string("unparseable line: ") + e.what(), ctx);
      }
      ++local.skipped_lines;
      continue;
    }
    if (!header_seen) {
      // The first parseable line must be the schema header.
      const JsonValue* schema = v.is_object() ? v.find("schema") : nullptr;
      if (schema == nullptr || !schema->is_string() || schema->string != kHistorySchema) {
        if (mode == LoadMode::kStrict) malformed("missing or unknown schema header", ctx);
        ++local.skipped_lines;
        continue;
      }
      header_seen = true;
      continue;
    }
    HistoryRecord r;
    try {
      r = parse_record(v, ctx);
    } catch (const robust::RobustError&) {
      if (mode == LoadMode::kStrict) throw;
      ++local.skipped_lines;
      continue;
    }
    const auto key = std::make_tuple(r.run, r.kind, r.entry);
    const auto it = index.find(key);
    if (it != index.end()) {
      if (mode == LoadMode::kStrict) {
        malformed("duplicate record key (run=" + std::to_string(r.run) + " kind=" + r.kind +
                      " entry=" + r.entry + ")",
                  ctx);
      }
      ++local.duplicates;
      store.records_[it->second] = std::move(r);
      continue;
    }
    index[key] = store.records_.size();
    store.records_.push_back(std::move(r));
  }
  if (!header_seen && mode == LoadMode::kStrict && line_no > 0) {
    malformed("missing or unknown schema header", "line 1");
  }
  store.canonicalize();
  if (stats != nullptr) *stats = local;
  return store;
}

HistoryStore HistoryStore::load_file(const std::string& path, LoadMode mode, LoadStats* stats) {
  std::ifstream f(path);
  if (!f) {
    if (mode == LoadMode::kStrict) malformed("cannot open history file", path);
    if (stats != nullptr) *stats = LoadStats{};
    return HistoryStore{};
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse(ss.str(), mode, stats);
}

void HistoryStore::publish_gauges(const LoadStats* stats) const {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.gauge("history.runs").set(static_cast<double>(runs()));
  reg.gauge("history.bench_entries").set(static_cast<double>(bench_entries()));
  reg.gauge("history.records").set(static_cast<double>(records_.size()));
  reg.gauge("history.cost_rows").set(static_cast<double>(cost_rows()));
  if (stats != nullptr) {
    reg.gauge("history.load_skipped_lines").set(static_cast<double>(stats->skipped_lines));
    reg.gauge("history.load_duplicates").set(static_cast<double>(stats->duplicates));
  }
}

std::map<std::string, std::map<std::string, std::vector<SeriesPoint>>> bench_series(
    const HistoryStore& store) {
  std::map<std::string, std::map<std::string, std::vector<SeriesPoint>>> out;
  for (const HistoryRecord& r : store.records()) {  // already (run, kind, entry)-ordered
    if (r.kind != "bench") continue;
    auto& metrics = out[r.entry];
    for (const auto& [name, value] : r.counters) {
      metrics[name].push_back({r.run, static_cast<double>(value)});
    }
    if (!r.wall_ns.empty()) {
      metrics["wall_min_ns"].push_back({r.run, r.wall_min_ns()});
    }
  }
  return out;
}

}  // namespace speedscale::obs::history
