// Cost model: per-item cost priors fit from fleet cost-ledger history, and
// the deterministic shard plan the supervisor consumes.
//
// The PR 7 fleet shards items statically (item i -> shard i % N), which is
// optimal only when items cost the same.  The PR 8 cost ledger measures what
// each item actually cost; this model turns that history into priors and an
// LPT (longest-processing-time-first) assignment that balances expected
// shard makespans.
//
// Determinism contract (docs/observability.md, docs/performance.md): the
// plan is computed BEFORE any worker spawns, from (history, spec) only, by a
// pure function with total tie-breaking — so the assignment is a
// deterministic input recorded in the work spec and fleet_state.json, and
// balancing changes only WHICH shard computes an item, never what the item
// computes.  The index-ordered merge makes that unobservable in the merged
// artifacts: suite JSON, cert JSONL, and merged counters stay byte-identical
// to a serial run.
//
// Priors are positional: cost history keys items as "item/<index>", so the
// model prices item i by the median of its measured wall_ms across runs.
// Items with no history fall back to the uniform prior (the median of all
// known items, or 1.0 when the model is empty) — a mismatched or empty
// history degrades gracefully to near-uniform balancing, never to an error.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace speedscale::obs::history {

class HistoryStore;

class CostModel {
 public:
  /// Fits per-item wall/work priors from every cost record in `store`.
  [[nodiscard]] static CostModel fit(const HistoryStore& store);

  /// True when no cost history was available (every item priced uniformly).
  [[nodiscard]] bool uniform() const { return wall_ms_.empty(); }
  /// Number of items with measured history.
  [[nodiscard]] std::size_t known_items() const { return wall_ms_.size(); }

  /// Expected cost of item `index`: median measured wall_ms, or the uniform
  /// fallback prior when unmeasured.
  [[nodiscard]] double item_cost(std::size_t index) const;
  /// Work-unit prior for item `index` (0 when unmeasured).
  [[nodiscard]] std::int64_t item_work(std::size_t index) const;

  /// Expected per-item costs for items [0, n).
  [[nodiscard]] std::vector<double> costs(std::size_t n) const;

 private:
  std::map<std::int64_t, double> wall_ms_;         ///< item index -> median wall
  std::map<std::int64_t, std::int64_t> work_;      ///< item index -> median work units
  double fallback_ = 1.0;                          ///< uniform prior
};

/// A computed shard plan.
struct ShardPlan {
  std::vector<std::uint32_t> assignment;  ///< item -> shard (size n_items)
  std::vector<double> shard_cost;         ///< expected cost per shard
  std::size_t moved_items = 0;            ///< items not on their static i%N shard
  double makespan = 0.0;                  ///< max expected shard cost
  double static_makespan = 0.0;           ///< makespan of the static i%N plan
};

/// Deterministic LPT balancing: items sorted by descending cost (ties by
/// ascending index) are assigned greedily to the least-loaded shard (ties by
/// lowest shard id).  Pure function of (costs, shards) — same inputs give
/// the same plan on every platform.
[[nodiscard]] ShardPlan plan_assignment(const std::vector<double>& costs, std::size_t shards);

}  // namespace speedscale::obs::history
