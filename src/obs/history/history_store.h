// Perf-history trajectory store: every bench ledger and fleet cost ledger,
// longitudinally, in one byte-stable JSONL file.
//
// The repo's point-in-time perf artifacts (BENCH_PR*.json work-counter
// ledgers, the PR 8 per-item speedscale.fleet_cost/1 ledgers) each describe
// ONE run.  The HistoryStore ingests any number of them into a single
// `speedscale.history/1` trajectory, keyed by (run, kind, entry), so the
// regression sentinel (sentinel.h) can fit noise bands over the last K runs
// and the shard planner (cost_model.h) can price items from measured
// history instead of assuming uniform cost.
//
// Wire format (speedscale.history/1): a header line
//
//   {"schema":"speedscale.history/1"}
//
// followed by one sorted-key JSON record per line, records ordered by
// (run, kind, entry).  Two record kinds:
//
//   bench  {"config":{...},"counters":{...},"entry":"<bench>",
//           "kind":"bench","run":N,"suite":"<label>","wall_ns":[...]}
//   cost   {"entry":"item/<index>","kind":"cost","run":N,
//           "run_id":"<id>","shard":S,"wall_ms":W,"work_units":U}
//
// `run` is a monotone ingest sequence number assigned by the store (one per
// ingested document); `config` carries the source ledger's config map —
// including the PR 6 build_info git_hash — so a trajectory is
// self-describing.  Numbers use the "%.17g" locale-independent encoding of
// src/obs/json_util.h; equal stores serialize byte-identically everywhere.
//
// Load modes mirror read_trace (docs/robustness.md): strict throws a typed
// RobustError (kIoMalformed, context "line N") on the first malformed or
// duplicate-key line; lenient skips-and-counts torn lines and resolves
// duplicate (run, kind, entry) keys last-line-wins.  Out-of-order lines are
// legal input in both modes — records are canonicalized on load, so
// load(to_jsonl()) round-trips byte-identically.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace speedscale::obs::history {

inline constexpr const char* kHistorySchema = "speedscale.history/1";

/// One trajectory record (tagged by `kind`; unused fields stay defaulted).
struct HistoryRecord {
  std::string kind = "bench";  ///< "bench" | "cost"
  std::int64_t run = 0;        ///< monotone ingest sequence number
  std::string entry;           ///< bench name, or "item/<index>" for costs

  // kind == "bench"
  std::string suite;
  std::map<std::string, std::string> config;
  std::map<std::string, std::int64_t> counters;
  std::vector<double> wall_ns;

  // kind == "cost"
  std::string run_id;
  long shard = -1;
  double wall_ms = 0.0;
  std::int64_t work_units = 0;

  /// Canonical one-line serialization (sorted keys, "%.17g" numbers).
  [[nodiscard]] std::string to_json() const;

  /// Noise-robust wall summary for bench records (0 when no samples).
  [[nodiscard]] double wall_min_ns() const;
};

enum class LoadMode { kStrict, kLenient };

/// What a lenient load tolerated (both zero on a clean file).
struct LoadStats {
  std::size_t skipped_lines = 0;  ///< torn/malformed lines dropped
  std::size_t duplicates = 0;     ///< same-(run,kind,entry) lines superseded
};

class HistoryStore {
 public:
  [[nodiscard]] const std::vector<HistoryRecord>& records() const { return records_; }

  /// The run id the next ingested document will receive (max seen + 1).
  [[nodiscard]] std::int64_t next_run() const;
  /// Distinct run ids present.
  [[nodiscard]] std::size_t runs() const;
  /// Distinct bench entry names present.
  [[nodiscard]] std::size_t bench_entries() const;
  /// Number of cost records present.
  [[nodiscard]] std::size_t cost_rows() const;

  /// Inserts one record, replacing any existing (run, kind, entry) match,
  /// and keeps the store canonically ordered.
  void append(HistoryRecord record);

  /// Ingests one speedscale.bench_ledger/1 document as run next_run():
  /// one bench record per ledger entry, config copied through.  Returns the
  /// assigned run id.  Throws ModelError on a malformed ledger.
  std::int64_t ingest_bench_ledger(const std::string& ledger_json);

  /// Ingests per-item cost rows as run next_run(): accepts either a bare
  /// speedscale.fleet_cost/1 document or a speedscale.fleet_state/1 document
  /// with an embedded "cost" object (fleet_state.json as written by the
  /// supervisor).  Returns the assigned run id.  Throws RobustError
  /// (kIoMalformed) when neither schema matches.
  std::int64_t ingest_cost_report(const std::string& json);

  /// Canonical serialization: header line + one record per line.
  [[nodiscard]] std::string to_jsonl() const;
  /// Crash-safe write (tmp + atomic rename) of to_jsonl().
  void write_file(const std::string& path) const;

  /// Parses a trajectory.  Strict throws RobustError (kIoMalformed, context
  /// "line N") on a bad header, malformed line, or duplicate key; lenient
  /// skips-and-counts into `stats` (may be nullptr).
  static HistoryStore parse(const std::string& text, LoadMode mode, LoadStats* stats = nullptr);
  /// parse() over a file.  A missing file throws in strict mode and returns
  /// an empty store in lenient mode.
  static HistoryStore load_file(const std::string& path, LoadMode mode,
                                LoadStats* stats = nullptr);

  /// Publishes history.* gauges (gauges only — the determinism contract):
  /// history.runs, history.bench_entries, history.records,
  /// history.cost_rows, plus history.load_{skipped_lines,duplicates} from
  /// `stats` when given.
  void publish_gauges(const LoadStats* stats = nullptr) const;

 private:
  void canonicalize();

  std::vector<HistoryRecord> records_;
};

/// One (run, value) sample of a series.
struct SeriesPoint {
  std::int64_t run = 0;
  double value = 0.0;
};

/// Extracts per-entry bench series: entry -> metric -> run-ordered points,
/// where metric is each counter name plus "wall_min_ns" (bench records with
/// wall samples only).  The sentinel's input.
[[nodiscard]] std::map<std::string, std::map<std::string, std::vector<SeriesPoint>>>
bench_series(const HistoryStore& store);

}  // namespace speedscale::obs::history
