// Regression sentinel: typed verdicts over perf-history series.
//
// Replaces single-baseline pairwise comparison with longitudinal analysis of
// each (entry, metric) series in a HistoryStore trajectory:
//
//   * counter metrics are deterministic by construction (the whole point of
//     the work-counter ledger, docs/observability.md), so ANY change in the
//     latest run relative to the preceding run is a kRegression verdict —
//     exactly the bench_compare.py hard-fail policy, now with the full
//     trajectory available to show WHEN the value moved (changepoint);
//   * wall metrics are machine noise, so the sentinel fits a robust noise
//     band — median +/- z * 1.4826 * MAD over the last `window` runs before
//     the latest — and flags excursions as kAdvisory only (never a hard
//     failure; the counters-hard/wall-advisory contract is unchanged);
//   * monotone drift (the last `drift_runs` samples strictly increasing and
//     the total rise exceeding the band width) is also kAdvisory: a slow
//     leak that never trips the band on any single run still surfaces.
//
// Verdicts are pure functions of the trajectory: same history in, same
// report out, on every platform — which is what lets perf_report --gate run
// in CI (exit 3 on any kRegression, like trace_tool --certify).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/history/history_store.h"

namespace speedscale::obs::history {

enum class Verdict : std::uint8_t {
  kOk,          ///< within band / unchanged
  kAdvisory,    ///< wall excursion or drift — investigate, don't fail
  kRegression,  ///< deterministic counter moved — hard failure
};

[[nodiscard]] const char* verdict_name(Verdict v);

struct SentinelOptions {
  /// Noise-band window: the band is fit over (up to) the last `window` runs
  /// preceding the latest one.
  std::size_t window = 8;
  /// Band half-width in robust sigmas (1.4826 * MAD).
  double z = 4.0;
  /// Relative band floor: the half-width is at least `rel_floor` * |median|,
  /// so a series with zero MAD (identical samples) still tolerates jitter.
  double rel_floor = 0.10;
  /// Minimum strictly-monotone run length that counts as drift.
  std::size_t drift_runs = 4;
};

/// One series' verdict.
struct SeriesVerdict {
  std::string entry;
  std::string metric;  ///< counter name or "wall_min_ns"
  Verdict verdict = Verdict::kOk;
  std::string reason;  ///< one-line human explanation ("" when kOk)

  std::size_t n_points = 0;   ///< series length (runs with this metric)
  double latest = 0.0;        ///< latest run's value
  double median = 0.0;        ///< band center (previous `window` runs)
  double band = 0.0;          ///< band half-width (0 when n_points < 2)
  /// Run id where the series last left the band fit over the runs before it
  /// (-1 when it never did) — the changepoint.
  std::int64_t changepoint_run = -1;
  bool drift = false;  ///< monotone-increase drift detected

  /// Full series values, run-ordered (sparkline fodder).
  std::vector<double> values;
};

struct SentinelReport {
  std::vector<SeriesVerdict> series;  ///< sorted by (entry, metric)
  std::size_t n_ok = 0;
  std::size_t n_advisory = 0;
  std::size_t n_regression = 0;

  [[nodiscard]] Verdict overall() const {
    if (n_regression > 0) return Verdict::kRegression;
    if (n_advisory > 0) return Verdict::kAdvisory;
    return Verdict::kOk;
  }
};

/// Analyzes every bench series in `store`.  Deterministic: the report is a
/// pure function of (store, options).
[[nodiscard]] SentinelReport analyze(const HistoryStore& store,
                                     const SentinelOptions& options = {});

/// Publishes sentinel verdict tallies as history.sentinel_{ok,advisory,
/// regression} gauges (gauges only).
void publish_sentinel_gauges(const SentinelReport& report);

}  // namespace speedscale::obs::history
