#include "src/obs/history/cost_model.h"

#include <algorithm>
#include <numeric>

#include "src/obs/history/history_store.h"

namespace speedscale::obs::history {

namespace {

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  const double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

}  // namespace

CostModel CostModel::fit(const HistoryStore& store) {
  CostModel model;
  std::map<std::int64_t, std::vector<double>> walls;
  std::map<std::int64_t, std::vector<double>> works;
  for (const HistoryRecord& r : store.records()) {
    if (r.kind != "cost") continue;
    // entry is "item/<index>" (history_store.cpp ingest_cost_report).
    if (r.entry.rfind("item/", 0) != 0) continue;
    std::int64_t index = -1;
    try {
      index = std::stoll(r.entry.substr(5));
    } catch (...) {
      continue;
    }
    if (index < 0) continue;
    walls[index].push_back(r.wall_ms);
    works[index].push_back(static_cast<double>(r.work_units));
  }
  std::vector<double> all_medians;
  for (auto& [index, samples] : walls) {
    const double med = median_of(std::move(samples));
    model.wall_ms_[index] = med;
    all_medians.push_back(med);
  }
  for (auto& [index, samples] : works) {
    model.work_[index] = static_cast<std::int64_t>(median_of(std::move(samples)));
  }
  model.fallback_ = all_medians.empty() ? 1.0 : median_of(std::move(all_medians));
  if (model.fallback_ <= 0.0) model.fallback_ = 1.0;
  return model;
}

double CostModel::item_cost(std::size_t index) const {
  const auto it = wall_ms_.find(static_cast<std::int64_t>(index));
  if (it == wall_ms_.end() || it->second <= 0.0) return fallback_;
  return it->second;
}

std::int64_t CostModel::item_work(std::size_t index) const {
  const auto it = work_.find(static_cast<std::int64_t>(index));
  return it == work_.end() ? 0 : it->second;
}

std::vector<double> CostModel::costs(std::size_t n) const {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(item_cost(i));
  return out;
}

ShardPlan plan_assignment(const std::vector<double>& costs, std::size_t shards) {
  ShardPlan plan;
  const std::size_t n = costs.size();
  if (shards == 0) return plan;
  plan.assignment.assign(n, 0);
  plan.shard_cost.assign(shards, 0.0);

  // LPT: descending cost, ties broken by ascending index so the order (and
  // therefore the plan) is total and platform-independent.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (costs[a] != costs[b]) return costs[a] > costs[b];
    return a < b;
  });
  for (std::size_t item : order) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < shards; ++s) {
      if (plan.shard_cost[s] < plan.shard_cost[best]) best = s;
    }
    plan.assignment[item] = static_cast<std::uint32_t>(best);
    plan.shard_cost[best] += costs[item];
  }

  std::vector<double> static_cost(shards, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    static_cost[i % shards] += costs[i];
    if (plan.assignment[i] != static_cast<std::uint32_t>(i % shards)) ++plan.moved_items;
  }
  plan.makespan = *std::max_element(plan.shard_cost.begin(), plan.shard_cost.end());
  plan.static_makespan = *std::max_element(static_cost.begin(), static_cost.end());
  return plan;
}

}  // namespace speedscale::obs::history
