#include "src/obs/history/sentinel.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/obs/metrics_registry.h"

namespace speedscale::obs::history {

namespace {

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  const double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

/// Robust band over `window` trailing values of v[0..end): center = median,
/// half-width = max(z * 1.4826 * MAD, rel_floor * |median|).
void fit_band(const std::vector<double>& values, std::size_t end, const SentinelOptions& opt,
              double* center, double* half_width) {
  const std::size_t lo = end > opt.window ? end - opt.window : 0;
  std::vector<double> win(values.begin() + static_cast<std::ptrdiff_t>(lo),
                          values.begin() + static_cast<std::ptrdiff_t>(end));
  const double med = median_of(win);
  std::vector<double> dev;
  dev.reserve(win.size());
  for (double x : win) dev.push_back(std::fabs(x - med));
  const double mad = median_of(std::move(dev));
  *center = med;
  *half_width = std::max(opt.z * 1.4826 * mad, opt.rel_floor * std::fabs(med));
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

SeriesVerdict judge(const std::string& entry, const std::string& metric,
                    const std::vector<SeriesPoint>& points, const SentinelOptions& opt) {
  SeriesVerdict sv;
  sv.entry = entry;
  sv.metric = metric;
  sv.n_points = points.size();
  sv.values.reserve(points.size());
  for (const SeriesPoint& p : points) sv.values.push_back(p.value);
  sv.latest = sv.values.empty() ? 0.0 : sv.values.back();
  if (sv.values.size() < 2) {
    sv.median = sv.latest;
    return sv;  // one run: nothing to compare against
  }

  const bool is_counter = metric != "wall_min_ns";

  // Changepoint: the last run whose value left the band fit over the runs
  // before it.  For counters the band is exact (any change is a changepoint).
  for (std::size_t i = sv.values.size(); i-- > 1;) {
    if (is_counter) {
      if (sv.values[i] != sv.values[i - 1]) {
        sv.changepoint_run = points[i].run;
        break;
      }
    } else {
      double center = 0.0;
      double half = 0.0;
      fit_band(sv.values, i, opt, &center, &half);
      if (std::fabs(sv.values[i] - center) > half) {
        sv.changepoint_run = points[i].run;
        break;
      }
    }
  }

  fit_band(sv.values, sv.values.size() - 1, opt, &sv.median, &sv.band);

  if (is_counter) {
    // Deterministic counters: the latest run must equal the run before it.
    const double prev = sv.values[sv.values.size() - 2];
    if (sv.latest != prev) {
      sv.verdict = Verdict::kRegression;
      sv.reason = "counter moved " + fmt(prev) + " -> " + fmt(sv.latest);
    }
    return sv;
  }

  // Wall series: band excursion is advisory.
  if (std::fabs(sv.latest - sv.median) > sv.band) {
    sv.verdict = Verdict::kAdvisory;
    sv.reason = "wall " + fmt(sv.latest) + " outside " + fmt(sv.median) + " +/- " +
                fmt(sv.band);
  }

  // Drift: last drift_runs samples strictly increasing with a total rise
  // beyond the band width.
  if (sv.values.size() >= opt.drift_runs && opt.drift_runs >= 2) {
    bool rising = true;
    const std::size_t start = sv.values.size() - opt.drift_runs;
    for (std::size_t i = start + 1; i < sv.values.size(); ++i) {
      if (sv.values[i] <= sv.values[i - 1]) {
        rising = false;
        break;
      }
    }
    if (rising && sv.values.back() - sv.values[start] > sv.band) {
      sv.drift = true;
      if (sv.verdict == Verdict::kOk) {
        sv.verdict = Verdict::kAdvisory;
        sv.reason = "monotone drift over last " + std::to_string(opt.drift_runs) + " runs";
      }
    }
  }
  return sv;
}

}  // namespace

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kOk:
      return "ok";
    case Verdict::kAdvisory:
      return "advisory";
    case Verdict::kRegression:
      return "regression";
  }
  return "unknown";
}

SentinelReport analyze(const HistoryStore& store, const SentinelOptions& options) {
  SentinelReport report;
  const auto series = bench_series(store);  // map: entry -> metric -> points (sorted)
  for (const auto& [entry, metrics] : series) {
    for (const auto& [metric, points] : metrics) {
      SeriesVerdict sv = judge(entry, metric, points, options);
      switch (sv.verdict) {
        case Verdict::kOk:
          ++report.n_ok;
          break;
        case Verdict::kAdvisory:
          ++report.n_advisory;
          break;
        case Verdict::kRegression:
          ++report.n_regression;
          break;
      }
      report.series.push_back(std::move(sv));
    }
  }
  return report;
}

void publish_sentinel_gauges(const SentinelReport& report) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.gauge("history.sentinel_ok").set(static_cast<double>(report.n_ok));
  reg.gauge("history.sentinel_advisory").set(static_cast<double>(report.n_advisory));
  reg.gauge("history.sentinel_regression").set(static_cast<double>(report.n_regression));
}

}  // namespace speedscale::obs::history
