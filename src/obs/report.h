// Combined observability report: one JSON object bundling the metrics
// snapshot and the profiler breakdown, the export format the ratio harness
// and the benches write next to their tables.
#pragma once

#include <iosfwd>
#include <string>

namespace speedscale::obs {

/// {"metrics": <MetricsRegistry::snapshot_json>, "profile": <Profiler json>}
[[nodiscard]] std::string observability_report_json();

void write_observability_report(std::ostream& os);
void write_observability_report_file(const std::string& path);

}  // namespace speedscale::obs
