#include "src/obs/metrics_registry.h"

#include <algorithm>
#include <sstream>

#include "src/core/types.h"
#include "src/obs/build_info.h"
#include "src/obs/json_util.h"
#include "src/obs/trace.h"

namespace speedscale::obs {

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.empty() ? 1 : bounds_.size() + 1) {
  if (bounds_.empty()) throw ModelError("Histogram: need at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i] > bounds_[i - 1])) {
      throw ModelError("Histogram: bucket bounds must be strictly increasing");
    }
  }
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());  // == size() -> overflow
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const {
  if (count <= 0 || counts.empty() || bounds.empty()) return 0.0;
  q = std::max(0.0, std::min(1.0, q));
  const double target = q * static_cast<double>(count);
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::int64_t prev = cum;
    cum += counts[i];
    // Empty buckets carry no mass: skipping them keeps the interpolation
    // inside a populated bucket (q = 0 against a single populated bucket used
    // to report the *first* bucket's upper bound, below every observation).
    if (counts[i] <= 0 || static_cast<double>(cum) < target) continue;
    if (i >= bounds.size()) return bounds.back();  // overflow bucket: clamp
    const double lo = (i == 0) ? 0.0 : bounds[i - 1];
    const double hi = bounds[i];
    const double frac = (target - static_cast<double>(prev)) / static_cast<double>(counts[i]);
    return lo + frac * (hi - lo);
  }
  return bounds.back();
}

// --- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry reg;
  return reg;
}

MetricsRegistry& registry() { return MetricsRegistry::instance(); }

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

std::map<std::string, std::int64_t> MetricsRegistry::counter_values() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  MetricsSnapshot out;
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h->upper_bounds();
    hs.counts = h->bucket_counts();
    hs.count = h->count();
    hs.sum = h->sum();
    out.histograms.emplace(name, std::move(hs));
  }
  return out;
}

// Keys emit in sorted order (the maps are ordered) and numbers through
// append_json_number — snapshots of equal state are byte-identical across
// runs, platforms, and process locales.
std::string MetricsRegistry::snapshot_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\"build_info\":";
  append_build_info_json(out);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    out += std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    append_json_number(out, g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":{\"bounds\":[";
    const auto& bounds = h->upper_bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i) out += ',';
      append_json_number(out, bounds[i]);
    }
    out += "],\"counts\":[";
    const auto counts = h->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(counts[i]);
    }
    out += "],\"count\":";
    out += std::to_string(h->count());
    out += ",\"sum\":";
    append_json_number(out, h->sum());
    out += '}';
  }
  out += "}}";
  return out;
}

void MetricsRegistry::write_snapshot(std::ostream& os) const { os << snapshot_json(); }

void MetricsRegistry::reset_all() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void set_metrics_enabled(bool on) noexcept {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

void set_observability_enabled(bool on) noexcept {
  set_metrics_enabled(on);
  Tracer::instance().set_enabled(on);
}

}  // namespace speedscale::obs
