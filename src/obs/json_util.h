// Shared JSON emission helpers for every obs artifact (traces, metric
// snapshots, profiler breakdowns, bench ledgers, Chrome traces).
//
// Byte-diffability contract: the same values always serialize to the same
// bytes, on every platform and under every process locale — numbers use
// "%.17g" (bit-exact double round-trip) with the decimal separator forced to
// '.', and non-finite values become the quoted strings "inf"/"-inf"/"nan"
// (JSON has no literals for them).
#pragma once

#include <string>

namespace speedscale::obs {

/// Appends the canonical JSON encoding of `v` (see the contract above).
void append_json_number(std::string& out, double v);

/// Appends `s` as a JSON string literal: '"' and '\\' are backslash-escaped,
/// control characters become \u00XX.
void append_json_string(std::string& out, const char* s);
void append_json_string(std::string& out, const std::string& s);

}  // namespace speedscale::obs
