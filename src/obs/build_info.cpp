#include "src/obs/build_info.h"

#include "src/obs/json_util.h"

// Injected per-TU by src/CMakeLists.txt (configure-time `git rev-parse` and
// CMAKE_BUILD_TYPE); default to "unknown" so out-of-tree builds still link.
#ifndef SPEEDSCALE_GIT_HASH
#define SPEEDSCALE_GIT_HASH "unknown"
#endif
#ifndef SPEEDSCALE_BUILD_TYPE
#define SPEEDSCALE_BUILD_TYPE "unknown"
#endif

namespace speedscale::obs {

namespace {

std::string compiler_string() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." + std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." + std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info = [] {
    BuildInfo b;
    b.git_hash = SPEEDSCALE_GIT_HASH;
    b.compiler = compiler_string();
    b.build_type = SPEEDSCALE_BUILD_TYPE;
    b.cxx_standard = std::to_string(__cplusplus);  // 202002L -> "202002"
    b.alpha_config = "runtime";
    return b;
  }();
  return info;
}

void append_build_info_json(std::string& out, const BuildInfo& info) {
  out += "{\"alpha_config\":";
  append_json_string(out, info.alpha_config);
  out += ",\"build_type\":";
  append_json_string(out, info.build_type);
  out += ",\"compiler\":";
  append_json_string(out, info.compiler);
  out += ",\"cxx_standard\":";
  append_json_string(out, info.cxx_standard);
  out += ",\"git_hash\":";
  append_json_string(out, info.git_hash);
  out += '}';
}

void append_build_info_json(std::string& out) { append_build_info_json(out, build_info()); }

}  // namespace speedscale::obs
