#include "src/obs/live/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/core/types.h"
#include "src/obs/live/telemetry_hub.h"
#include "src/obs/metrics_registry.h"

namespace speedscale::obs::live {

namespace {

constexpr int kAcceptPollMs = 100;     // stop() latency upper bound
constexpr std::size_t kMaxRequest = 8192;

struct ParsedBind {
  bool is_unix = false;
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = 0;
};

ParsedBind parse_bind(const std::string& bind) {
  ParsedBind out;
  if (bind.rfind("unix:", 0) == 0) {
    out.is_unix = true;
    out.unix_path = bind.substr(5);
    if (out.unix_path.empty()) throw ModelError("telemetry server: empty unix socket path");
    return out;
  }
  const std::size_t colon = bind.rfind(':');
  const std::string port_str = colon == std::string::npos ? bind : bind.substr(colon + 1);
  if (colon != std::string::npos && colon > 0) out.host = bind.substr(0, colon);
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || port < 0 || port > 65535) {
    throw ModelError("telemetry server: bad bind address \"" + bind + '"');
  }
  out.port = static_cast<int>(port);
  return out;
}

void send_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return;  // peer went away: a scraper hanging up is not our error
    }
    off += static_cast<std::size_t>(w);
  }
}

std::string http_response(int status, const char* reason, const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(status) + ' ' + reason + "\r\n";
  out += "Content-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

TelemetryServer::TelemetryServer(TelemetryHub& hub, const TelemetryServerOptions& options)
    : hub_(hub), options_(options) {}

TelemetryServer::~TelemetryServer() {
  try {
    stop();
  } catch (...) {
  }
}

void TelemetryServer::start() {
  if (running_) return;
  const ParsedBind bind = parse_bind(options_.bind);
  stop_requested_.store(false, std::memory_order_relaxed);

  if (bind.is_unix) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw ModelError("telemetry server: socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (bind.unix_path.size() >= sizeof(addr.sun_path)) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw ModelError("telemetry server: unix socket path too long");
    }
    std::strncpy(addr.sun_path, bind.unix_path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(bind.unix_path.c_str());  // stale socket from a previous run
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw ModelError("telemetry server: cannot bind " + options_.bind);
    }
    unix_path_ = bind.unix_path;
    address_ = "unix:" + bind.unix_path;
    port_ = -1;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw ModelError("telemetry server: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(bind.port));
    if (::inet_pton(AF_INET, bind.host.c_str(), &addr.sin_addr) != 1) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw ModelError("telemetry server: bad host \"" + bind.host + '"');
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw ModelError("telemetry server: cannot bind " + options_.bind);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = static_cast<int>(ntohs(bound.sin_port));
    address_ = bind.host + ':' + std::to_string(port_);
  }

  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ModelError("telemetry server: listen() failed on " + address_);
  }
  acceptor_ = std::thread(&TelemetryServer::accept_loop, this);
  running_ = true;
}

void TelemetryServer::stop() {
  if (!running_) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
  running_ = false;
}

std::string TelemetryServer::address() const { return address_; }

void TelemetryServer::accept_loop() {
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready <= 0) continue;  // timeout (stop-flag check) or EINTR
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void TelemetryServer::handle_connection(int fd) {
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequest && request.find("\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  // Request line: "GET <path> HTTP/1.x".
  std::string path = "/";
  const std::size_t sp1 = request.find(' ');
  if (sp1 != std::string::npos) {
    const std::size_t sp2 = request.find(' ', sp1 + 1);
    if (sp2 != std::string::npos) path = request.substr(sp1 + 1, sp2 - sp1 - 1);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  OBS_COUNT("obs.live.server.requests", 1);
  const std::string response = respond(path);
  send_all(fd, response.data(), response.size());
}

std::string TelemetryServer::respond(const std::string& path) const {
  if (path == "/metrics" || path == "/") {
    return http_response(200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                         prometheus_exposition());
  }
  if (path == "/snapshot.json") {
    return http_response(200, "OK", "application/json", registry().snapshot_json());
  }
  if (path == "/series.json") {
    return http_response(200, "OK", "application/json", hub_.series_json());
  }
  if (path == "/healthz") {
    return http_response(200, "OK", "text/plain; charset=utf-8", "ok\n");
  }
  return http_response(404, "Not Found", "text/plain; charset=utf-8",
                       "unknown endpoint " + path + "\n");
}

// --- scrape client ----------------------------------------------------------

std::string scrape(const std::string& address, const std::string& path) {
  const ParsedBind target = parse_bind(address);
  int fd = -1;
  if (target.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw ModelError("scrape: socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, target.unix_path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      throw ModelError("scrape: cannot connect to " + address);
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw ModelError("scrape: socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(target.port));
    if (::inet_pton(AF_INET, target.host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      throw ModelError("scrape: bad host \"" + target.host + '"');
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      throw ModelError("scrape: cannot connect to " + address);
    }
  }

  const std::string request = "GET " + path + " HTTP/1.0\r\nHost: speedscale\r\n\r\n";
  send_all(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    throw ModelError("scrape: malformed response from " + address + path);
  }
  const std::string status_line = response.substr(0, response.find("\r\n"));
  if (status_line.find(" 200 ") == std::string::npos) {
    throw ModelError("scrape: " + address + path + " returned \"" + status_line + '"');
  }
  return response.substr(header_end + 4);
}

}  // namespace speedscale::obs::live
