// Live telemetry hub: periodic registry sampling into bounded time series.
//
// A background sampler thread ticks on a configurable period.  Each tick
//
//   1. publishes the sweep heartbeat gauges (src/obs/live/straggler.h),
//   2. takes one MetricsRegistry snapshot (one registry lock, relaxed loads),
//   3. pushes (t, value) into a preallocated per-series ring — fixed
//      capacity, no allocation once a series exists,
//   4. derives windowed counter rates (delta / dt against the previous tick)
//      and streaming histogram quantiles (p50/p95/p99 by linear bucket
//      interpolation), published as their own series,
//   5. optionally appends one JSONL sample line through the crash-safe
//      JsonlSink (time-based flush policy), so a killed process leaves a
//      near-current ".tmp" time-series file behind.
//
// The hub is the data plane behind the scrape server
// (src/obs/live/telemetry_server.h) and the `telemetry_tool --watch` view.
// Determinism: the hub writes *gauges* ("obs.live.samples", sweep.*) and
// reads counters; it never adds to a counter, so pinned bench-ledger counter
// snapshots and sweep artifacts are byte-identical with the hub running.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/build_info.h"
#include "src/obs/metrics_registry.h"

namespace speedscale::obs {
class JsonlSink;
}  // namespace speedscale::obs

namespace speedscale::obs::live {

struct TelemetryOptions {
  /// Sampler tick period.
  std::chrono::milliseconds period{250};
  /// Points retained per series (ring capacity; fixed after creation).
  std::size_t ring_capacity = 512;
  /// Histogram quantiles derived per tick, as `<hist>.p<q*100>` series.
  /// When non-empty each entry must be in (0, 1).
  std::vector<double> quantiles{0.50, 0.95, 0.99};
  /// Publish sweep.* heartbeat gauges each tick (src/obs/live/straggler.h).
  bool publish_sweep_gauges = true;
  /// When non-empty: append one JSONL sample object per tick here
  /// (speedscale.telemetry_jsonl/1), via the crash-safe JsonlSink.
  std::string jsonl_path;
  /// Flush interval for the JSONL sink (JsonlSink FlushPolicy::kTimed).
  std::chrono::milliseconds jsonl_flush_interval{1000};
};

/// One series' recent history, oldest-first.
struct SeriesView {
  std::string kind;  ///< "counter" | "gauge" | "quantile"
  double last = 0.0;
  double rate = 0.0;  ///< counters: delta/dt over the last tick; else 0
  std::vector<double> t;
  std::vector<double> v;
};

class TelemetryHub {
 public:
  explicit TelemetryHub(const TelemetryOptions& options = {});
  ~TelemetryHub();  // stops the sampler and commits the JSONL artifact

  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  /// Launches the sampler thread (opens the JSONL sink, writes its header
  /// line, takes an initial sample).  Idempotent.
  void start();
  /// Takes a final sample, joins the sampler, commits the JSONL artifact
  /// (tmp -> final rename).  Idempotent.
  void stop();
  [[nodiscard]] bool running() const;

  /// One synchronous sampler tick.  Public so tests drive the hub
  /// deterministically without the thread; safe concurrently with start().
  void sample_now();

  [[nodiscard]] std::uint64_t samples() const;
  [[nodiscard]] const TelemetryOptions& options() const { return options_; }

  /// All series as one sorted-key JSON object
  /// (schema speedscale.telemetry_series/1); byte-stable for equal data.
  [[nodiscard]] std::string series_json() const;
  /// One series' history; empty view (kind "") when unknown.
  [[nodiscard]] SeriesView series(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> series_names() const;

 private:
  struct Ring {
    std::string kind;
    std::vector<double> t, v;  // preallocated to ring_capacity
    std::size_t head = 0;      // next write index
    std::size_t size = 0;
    double last = 0.0;
    double rate = 0.0;
  };

  void sampler_main();
  void push_series(const std::string& name, const char* kind, double t, double v);
  [[nodiscard]] std::string sample_jsonl_line(double t, const MetricsSnapshot& snap) const;

  TelemetryOptions options_;
  std::chrono::steady_clock::time_point start_time_;

  mutable std::mutex mu_;  // guards series_, prev_*, samples_, sink_ pointer swaps
  std::map<std::string, Ring> series_;
  std::map<std::string, std::int64_t> prev_counters_;
  double prev_t_ = 0.0;
  std::uint64_t samples_ = 0;
  std::unique_ptr<JsonlSink> sink_;
  std::atomic<double> last_cost_us_{0.0};  // previous tick's cost, for the gauge

  mutable std::mutex thread_mu_;  // guards start/stop transitions + cv
  std::condition_variable cv_;
  std::thread sampler_;
  bool running_ = false;
  bool stop_requested_ = false;
};

/// Prometheus text exposition (format version 0.0.4) of one metrics
/// snapshot: `speedscale_`-prefixed sanitized names, one `# TYPE` line per
/// metric, cumulative `_bucket{le="..."}` histogram encoding, and a
/// `speedscale_build_info{...} 1` identity metric.  Pure function of its
/// inputs — byte-stable for equal snapshots (the golden-tested contract).
[[nodiscard]] std::string prometheus_exposition(const MetricsSnapshot& snap,
                                                const BuildInfo& info);
/// The process's own registry + build identity.
[[nodiscard]] std::string prometheus_exposition();

/// "sim.nc_uniform.speed_changes" -> "speedscale_sim_nc_uniform_speed_changes".
[[nodiscard]] std::string prometheus_name(const std::string& metric);

}  // namespace speedscale::obs::live
