#include "src/obs/live/telemetry_hub.h"

#include <algorithm>
#include <clocale>
#include <cmath>
#include <cstdio>

#include "src/obs/json_util.h"
#include "src/obs/live/straggler.h"
#include "src/obs/trace.h"

namespace speedscale::obs::live {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(b - a).count();
}

// "p50" / "p99" / "p99.9": %g drops trailing zeros, so labels stay short.
std::string quantile_label(double q) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "p%g", q * 100.0);
  const char sep = std::localeconv()->decimal_point[0];
  if (sep != '.') std::replace(buf, buf + n, sep, '.');
  return std::string(buf, static_cast<std::size_t>(n));
}

}  // namespace

// --- TelemetryHub -----------------------------------------------------------

TelemetryHub::TelemetryHub(const TelemetryOptions& options)
    : options_(options), start_time_(std::chrono::steady_clock::now()) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
}

TelemetryHub::~TelemetryHub() { stop(); }

void TelemetryHub::push_series(const std::string& name, const char* kind, double t, double v) {
  Ring& ring = series_[name];
  if (ring.t.empty()) {  // first sight of this series: the only allocation
    ring.kind = kind;
    ring.t.resize(options_.ring_capacity);
    ring.v.resize(options_.ring_capacity);
  }
  ring.t[ring.head] = t;
  ring.v[ring.head] = v;
  ring.head = (ring.head + 1) % options_.ring_capacity;
  if (ring.size < options_.ring_capacity) ++ring.size;
  ring.last = v;
}

void TelemetryHub::sample_now() {
  const auto tick_start = std::chrono::steady_clock::now();
  if (options_.publish_sweep_gauges) publish_sweep_gauges();
  // The hub's own pulse is published as *gauges*: counters stay workload-
  // deterministic (the bench ledger's hard gate) with the sampler running.
  {
    std::lock_guard<std::mutex> lk(mu_);
    registry().gauge("obs.live.samples").set(static_cast<double>(samples_ + 1));
  }
  registry().gauge("obs.live.sample_cost_us").set(last_cost_us_.load(std::memory_order_relaxed));

  const double t = seconds_between(start_time_, tick_start);
  const MetricsSnapshot snap = registry().snapshot();

  std::string line;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const double dt = t - prev_t_;
    for (const auto& [name, v] : snap.counters) {
      push_series(name, "counter", t, static_cast<double>(v));
      Ring& ring = series_[name];
      const auto prev = prev_counters_.find(name);
      // One-sample / same-instant edge: no previous observation (or a tick so
      // fast the clock did not move) yields rate 0, never inf/NaN — a
      // denormal dt can still overflow the division, so the result is
      // finiteness-checked too.
      double rate = (prev != prev_counters_.end() && dt > 0.0)
                        ? static_cast<double>(v - prev->second) / dt
                        : 0.0;
      if (!std::isfinite(rate)) rate = 0.0;
      ring.rate = rate;
    }
    for (const auto& [name, v] : snap.gauges) push_series(name, "gauge", t, v);
    for (const auto& [name, h] : snap.histograms) {
      for (const double q : options_.quantiles) {
        push_series(name + "." + quantile_label(q), "quantile", t, h.quantile(q));
      }
    }
    prev_counters_ = snap.counters;
    prev_t_ = t;
    ++samples_;
    if (sink_) {
      line = sample_jsonl_line(t, snap);
      sink_->write_line(line);
    }
  }

  last_cost_us_.store(seconds_between(tick_start, std::chrono::steady_clock::now()) * 1e6,
                      std::memory_order_relaxed);
}

std::string TelemetryHub::sample_jsonl_line(double t, const MetricsSnapshot& snap) const {
  // Callers hold mu_.  Sorted keys + "%.17g" numbers: equal samples
  // serialize byte-identically (src/obs/json_util.h contract).
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':' + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_json_number(out, v);
  }
  out += "},\"quantiles\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    for (const double q : options_.quantiles) {
      if (!first) out += ',';
      first = false;
      append_json_string(out, name + "." + quantile_label(q));
      out += ':';
      append_json_number(out, h.quantile(q));
    }
  }
  out += "},\"samples\":" + std::to_string(samples_);
  out += ",\"t\":";
  append_json_number(out, t);
  out += '}';
  return out;
}

void TelemetryHub::start() {
  std::lock_guard<std::mutex> lk(thread_mu_);
  if (running_) return;
  stop_requested_ = false;
  if (!options_.jsonl_path.empty()) {
    auto sink = std::make_unique<JsonlSink>(options_.jsonl_path);
    JsonlSink::FlushPolicy policy;
    policy.mode = JsonlSink::FlushPolicy::Mode::kTimed;
    policy.interval = options_.jsonl_flush_interval;
    sink->set_flush_policy(policy);
    std::string header = "{\"build_info\":";
    append_build_info_json(header);
    header += ",\"kind\":\"telemetry_header\",\"period_ms\":" +
              std::to_string(options_.period.count());
    header += ",\"quantiles\":[";
    for (std::size_t i = 0; i < options_.quantiles.size(); ++i) {
      if (i) header += ',';
      append_json_number(header, options_.quantiles[i]);
    }
    header += "],\"schema\":\"speedscale.telemetry_jsonl/1\"}";
    sink->write_line(header);
    std::lock_guard<std::mutex> lk2(mu_);
    sink_ = std::move(sink);
  }
  sample_now();
  sampler_ = std::thread(&TelemetryHub::sampler_main, this);
  running_ = true;
}

void TelemetryHub::sampler_main() {
  std::unique_lock<std::mutex> lk(thread_mu_);
  while (!stop_requested_) {
    cv_.wait_for(lk, options_.period, [this] { return stop_requested_; });
    if (stop_requested_) break;
    lk.unlock();
    sample_now();
    lk.lock();
  }
}

void TelemetryHub::stop() {
  std::thread sampler;
  bool was_running = false;
  {
    std::lock_guard<std::mutex> lk(thread_mu_);
    was_running = running_;
    stop_requested_ = true;
    running_ = false;
    sampler = std::move(sampler_);
  }
  cv_.notify_all();
  if (sampler.joinable()) sampler.join();
  if (was_running) sample_now();  // final tick: the JSONL artifact ends current
  std::lock_guard<std::mutex> lk(mu_);
  if (sink_) {
    sink_->close();
    sink_.reset();
  }
}

bool TelemetryHub::running() const {
  std::lock_guard<std::mutex> lk(thread_mu_);
  return running_;
}

std::uint64_t TelemetryHub::samples() const {
  std::lock_guard<std::mutex> lk(mu_);
  return samples_;
}

std::string TelemetryHub::series_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\"samples\":" + std::to_string(samples_);
  out += ",\"schema\":\"speedscale.telemetry_series/1\",\"series\":{";
  bool first = true;
  for (const auto& [name, ring] : series_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"kind\":";
    append_json_string(out, ring.kind);
    out += ",\"last\":";
    append_json_number(out, ring.last);
    out += ",\"points\":[";
    const std::size_t cap = options_.ring_capacity;
    for (std::size_t i = 0; i < ring.size; ++i) {
      const std::size_t idx = (ring.head + cap - ring.size + i) % cap;
      if (i) out += ',';
      out += "[";
      append_json_number(out, ring.t[idx]);
      out += ',';
      append_json_number(out, ring.v[idx]);
      out += ']';
    }
    out += "],\"rate\":";
    append_json_number(out, ring.rate);
    out += '}';
  }
  out += "}}";
  return out;
}

SeriesView TelemetryHub::series(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  SeriesView out;
  const auto it = series_.find(name);
  if (it == series_.end()) return out;
  const Ring& ring = it->second;
  out.kind = ring.kind;
  out.last = ring.last;
  out.rate = ring.rate;
  out.t.reserve(ring.size);
  out.v.reserve(ring.size);
  const std::size_t cap = options_.ring_capacity;
  for (std::size_t i = 0; i < ring.size; ++i) {
    const std::size_t idx = (ring.head + cap - ring.size + i) % cap;
    out.t.push_back(ring.t[idx]);
    out.v.push_back(ring.v[idx]);
  }
  return out;
}

std::vector<std::string> TelemetryHub::series_names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, ring] : series_) out.push_back(name);
  return out;
}

// --- Prometheus exposition --------------------------------------------------

namespace {

// Exposition numbers share the "%.17g" locale-independent discipline of
// src/obs/json_util.h, but use Prometheus's non-finite tokens (+Inf / -Inf /
// NaN) instead of quoted JSON strings.
void append_prom_number(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "NaN";
    return;
  }
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[40];
  const int n = std::snprintf(buf, sizeof(buf), "%.17g", v);
  const char sep = std::localeconv()->decimal_point[0];
  if (sep != '.') std::replace(buf, buf + n, sep, '.');
  out.append(buf, static_cast<std::size_t>(n));
}

// Prometheus label-value escaping: backslash, double quote, newline.
void append_prom_label_value(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string prometheus_name(const std::string& metric) {
  std::string out = "speedscale_";
  for (const char c : metric) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheus_exposition(const MetricsSnapshot& snap, const BuildInfo& info) {
  std::string out;
  out += "# TYPE speedscale_build_info gauge\n";
  out += "speedscale_build_info{alpha_config=";
  append_prom_label_value(out, info.alpha_config);
  out += ",build_type=";
  append_prom_label_value(out, info.build_type);
  out += ",compiler=";
  append_prom_label_value(out, info.compiler);
  out += ",cxx_standard=";
  append_prom_label_value(out, info.cxx_standard);
  out += ",git_hash=";
  append_prom_label_value(out, info.git_hash);
  out += "} 1\n";

  for (const auto& [name, v] : snap.counters) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + ' ' + std::to_string(v) + '\n';
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + ' ';
    append_prom_number(out, v);
    out += '\n';
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " histogram\n";
    std::int64_t cum = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i < h.counts.size()) cum += h.counts[i];
      out += prom + "_bucket{le=\"";
      append_prom_number(out, h.bounds[i]);
      out += "\"} " + std::to_string(cum) + '\n';
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + '\n';
    out += prom + "_sum ";
    append_prom_number(out, h.sum);
    out += '\n';
    out += prom + "_count " + std::to_string(h.count) + '\n';
  }
  return out;
}

std::string prometheus_exposition() {
  return prometheus_exposition(registry().snapshot(), build_info());
}

}  // namespace speedscale::obs::live
