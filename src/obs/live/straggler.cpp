#include "src/obs/live/straggler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>

#include "src/obs/metrics_registry.h"

namespace speedscale::obs::live {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread slot assignment, valid for one sweep epoch.
struct ThreadSlot {
  std::uint64_t epoch = 0;
  std::size_t slot = 0;
};
thread_local ThreadSlot t_slot;

}  // namespace

SweepHeartbeats& SweepHeartbeats::instance() {
  static SweepHeartbeats hb;
  return hb;
}

std::int64_t SweepHeartbeats::now_ns() const {
  return steady_ns() - start_ns_.load(std::memory_order_relaxed);
}

bool SweepHeartbeats::begin_sweep(std::size_t items_total, std::size_t workers) {
  std::lock_guard<std::mutex> lk(begin_mu_);
  if (active_.load(std::memory_order_acquire)) return false;  // nested sweep
  epoch_.fetch_add(1, std::memory_order_relaxed);
  items_total_.store(static_cast<std::int64_t>(items_total), std::memory_order_relaxed);
  started_.store(0, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
  completed_ns_.store(0, std::memory_order_relaxed);
  workers_.store(workers, std::memory_order_relaxed);
  start_ns_.store(steady_ns(), std::memory_order_relaxed);
  next_slot_.store(0, std::memory_order_relaxed);
  for (Shard& s : shards_) {
    s.started.store(0, std::memory_order_relaxed);
    s.completed.store(0, std::memory_order_relaxed);
    s.item_start_ns.store(0, std::memory_order_relaxed);
    s.last_progress_ns.store(0, std::memory_order_relaxed);
    s.current_item.store(-1, std::memory_order_relaxed);
    s.busy.store(false, std::memory_order_relaxed);
  }
  active_.store(true, std::memory_order_release);
  return true;
}

void SweepHeartbeats::end_sweep() { active_.store(false, std::memory_order_release); }

std::size_t SweepHeartbeats::item_started(std::size_t item_index) {
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (t_slot.epoch != epoch) {
    t_slot.epoch = epoch;
    t_slot.slot = std::min(next_slot_.fetch_add(1, std::memory_order_relaxed),
                           kMaxHeartbeatShards - 1);
  }
  const std::int64_t now = now_ns();
  Shard& s = shards_[t_slot.slot];
  s.started.fetch_add(1, std::memory_order_relaxed);
  s.item_start_ns.store(now, std::memory_order_relaxed);
  s.last_progress_ns.store(now, std::memory_order_relaxed);
  s.current_item.store(static_cast<std::int64_t>(item_index), std::memory_order_relaxed);
  s.busy.store(true, std::memory_order_relaxed);
  started_.fetch_add(1, std::memory_order_relaxed);
  return t_slot.slot;
}

void SweepHeartbeats::item_finished(std::size_t slot) {
  slot = std::min(slot, kMaxHeartbeatShards - 1);
  const std::int64_t now = now_ns();
  Shard& s = shards_[slot];
  const std::int64_t item_ns = now - s.item_start_ns.load(std::memory_order_relaxed);
  s.completed.fetch_add(1, std::memory_order_relaxed);
  s.last_progress_ns.store(now, std::memory_order_relaxed);
  s.current_item.store(-1, std::memory_order_relaxed);
  s.busy.store(false, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  completed_ns_.fetch_add(std::max<std::int64_t>(item_ns, 0), std::memory_order_relaxed);
}

HeartbeatSnapshot SweepHeartbeats::snapshot() const {
  HeartbeatSnapshot out;
  out.active = active_.load(std::memory_order_acquire);
  out.epoch = epoch_.load(std::memory_order_relaxed);
  out.workers = workers_.load(std::memory_order_relaxed);
  out.items_total = items_total_.load(std::memory_order_relaxed);
  out.items_started = started_.load(std::memory_order_relaxed);
  out.items_completed = completed_.load(std::memory_order_relaxed);
  out.queue_depth = std::max<std::int64_t>(out.items_total - out.items_started, 0);
  const std::int64_t now = now_ns();
  out.elapsed_seconds = static_cast<double>(now) * 1e-9;
  if (out.items_completed > 0) {
    out.mean_item_seconds = static_cast<double>(completed_ns_.load(std::memory_order_relaxed)) *
                            1e-9 / static_cast<double>(out.items_completed);
  }
  const std::size_t used =
      std::min(next_slot_.load(std::memory_order_relaxed), kMaxHeartbeatShards);
  out.shards.resize(used);
  for (std::size_t i = 0; i < used; ++i) {
    const Shard& s = shards_[i];
    ShardBeat& b = out.shards[i];
    b.busy = s.busy.load(std::memory_order_relaxed);
    b.items_started = s.started.load(std::memory_order_relaxed);
    b.items_completed = s.completed.load(std::memory_order_relaxed);
    b.current_item = s.current_item.load(std::memory_order_relaxed);
    b.last_progress_seconds =
        static_cast<double>(s.last_progress_ns.load(std::memory_order_relaxed)) * 1e-9;
    if (b.busy) {
      b.inflight_seconds =
          static_cast<double>(now - s.item_start_ns.load(std::memory_order_relaxed)) * 1e-9;
      if (b.inflight_seconds < 0.0) b.inflight_seconds = 0.0;
    }
  }
  return out;
}

StragglerReport detect_stragglers(const HeartbeatSnapshot& hb, const StragglerOptions& options) {
  StragglerReport out;
  if (!hb.active) return out;
  // Zero/one-sample guard: before the first completion the mean is 0, and a
  // synthetic or torn snapshot can carry inf/NaN.  Only a finite positive
  // mean may scale the threshold or back an ETA; otherwise min_seconds alone
  // governs and eta_seconds stays at the "no estimate" sentinel (-1).
  const bool mean_ok = std::isfinite(hb.mean_item_seconds) && hb.mean_item_seconds > 0.0;
  double threshold = options.min_seconds;
  if (mean_ok) {
    const double scaled = options.factor * hb.mean_item_seconds;
    if (std::isfinite(scaled)) threshold = std::max(threshold, scaled);
  }
  for (std::size_t i = 0; i < hb.shards.size(); ++i) {
    if (hb.shards[i].busy && hb.shards[i].inflight_seconds > threshold) {
      out.stragglers.push_back(i);
    }
  }
  if (hb.items_completed > 0 && hb.workers > 0 && mean_ok) {
    // A racing snapshot can observe completed > total; clamp, never negative.
    const double remaining = static_cast<double>(
        std::max<std::int64_t>(hb.items_total - hb.items_completed, 0));
    const double eta = remaining * hb.mean_item_seconds / static_cast<double>(hb.workers);
    if (std::isfinite(eta)) out.eta_seconds = eta;
  }
  return out;
}

void publish_sweep_gauges(const StragglerOptions& options) {
  const HeartbeatSnapshot hb = SweepHeartbeats::instance().snapshot();
  MetricsRegistry& reg = registry();
  reg.gauge("sweep.active").set(hb.active ? 1.0 : 0.0);
  if (!hb.active) return;  // last sweep's gauges persist; `sweep.active` disambiguates
  const StragglerReport report = detect_stragglers(hb, options);
  reg.gauge("sweep.epoch").set(static_cast<double>(hb.epoch));
  reg.gauge("sweep.workers").set(static_cast<double>(hb.workers));
  reg.gauge("sweep.items_total").set(static_cast<double>(hb.items_total));
  reg.gauge("sweep.items_started").set(static_cast<double>(hb.items_started));
  reg.gauge("sweep.items_completed").set(static_cast<double>(hb.items_completed));
  reg.gauge("sweep.queue_depth").set(static_cast<double>(hb.queue_depth));
  reg.gauge("sweep.elapsed_seconds").set(hb.elapsed_seconds);
  reg.gauge("sweep.mean_item_seconds").set(hb.mean_item_seconds);
  reg.gauge("sweep.eta_seconds").set(report.eta_seconds);
  reg.gauge("sweep.stragglers").set(static_cast<double>(report.stragglers.size()));
  for (std::size_t i = 0; i < hb.shards.size(); ++i) {
    const ShardBeat& b = hb.shards[i];
    const std::string prefix = "sweep.shard." + std::to_string(i) + ".";
    reg.gauge(prefix + "busy").set(b.busy ? 1.0 : 0.0);
    reg.gauge(prefix + "items_started").set(static_cast<double>(b.items_started));
    reg.gauge(prefix + "items_completed").set(static_cast<double>(b.items_completed));
    reg.gauge(prefix + "inflight_seconds").set(b.inflight_seconds);
    reg.gauge(prefix + "last_progress_seconds").set(b.last_progress_seconds);
    const bool straggler =
        std::find(report.stragglers.begin(), report.stragglers.end(), i) !=
        report.stragglers.end();
    reg.gauge(prefix + "straggler").set(straggler ? 1.0 : 0.0);
  }
}

}  // namespace speedscale::obs::live
