// Sweep heartbeats and straggler detection.
//
// The sweep scheduler (src/analysis/sweep.h) is the repo's long-running
// surface: a grid of items sharded across a pool, invisible from outside
// until it returns.  This module gives it a live pulse.  Worker threads
// publish per-shard heartbeats (items started/completed, the age of the
// in-flight item, last-progress timestamp) into a fixed array of atomics —
// no locks, no allocation on the item path — and a pure detector turns a
// heartbeat snapshot into a straggler list and an ETA.
//
// The telemetry hub (src/obs/live/telemetry_hub.h) publishes the snapshot as
// `sweep.*` / `sweep.shard.<slot>.*` *gauges* each sampler tick.  Gauges
// never enter sweep artifacts, certificate streams, or bench-ledger counter
// snapshots, so the PR 5 determinism contract (--jobs N byte-identical to
// --jobs 1) holds with live telemetry enabled.
//
// Only the outermost sweep owns the heartbeat plane: begin_sweep() returns
// false for nested sweeps (bench workloads that run inner sweeps), which
// then report nothing — the live view describes the run the caller started.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace speedscale::obs::live {

/// Fixed heartbeat capacity: worker threads beyond this share the last slot
/// (counts stay correct; per-shard attribution degrades gracefully).
inline constexpr std::size_t kMaxHeartbeatShards = 64;

/// One worker's heartbeat at snapshot time.  Seconds are relative to the
/// sweep's own start.
struct ShardBeat {
  bool busy = false;
  std::int64_t items_started = 0;
  std::int64_t items_completed = 0;
  double inflight_seconds = 0.0;       ///< age of the current item; 0 when idle
  double last_progress_seconds = 0.0;  ///< last start/finish on this shard
  std::int64_t current_item = -1;      ///< item index in flight; -1 when idle
};

/// Whole-sweep heartbeat snapshot (plus per-shard beats).
struct HeartbeatSnapshot {
  bool active = false;
  std::uint64_t epoch = 0;  ///< increments every begin_sweep
  std::size_t workers = 0;
  std::int64_t items_total = 0;
  std::int64_t items_started = 0;
  std::int64_t items_completed = 0;
  std::int64_t queue_depth = 0;  ///< items not yet started
  double elapsed_seconds = 0.0;
  double mean_item_seconds = 0.0;  ///< over completed items; 0 before any
  std::vector<ShardBeat> shards;   ///< one per slot handed out this sweep
};

/// Process-wide heartbeat plane.  Hot-path methods (item_started /
/// item_finished) are lock-free; begin/end serialize on a mutex.
class SweepHeartbeats {
 public:
  static SweepHeartbeats& instance();

  /// Claims the heartbeat plane for a sweep of `items_total` items on
  /// `workers` workers.  Returns false when a sweep is already active
  /// (nested sweeps report nothing); only a true return may be paired with
  /// item_started/item_finished/end_sweep.
  bool begin_sweep(std::size_t items_total, std::size_t workers);
  void end_sweep();

  /// Marks `item_index` in flight on the calling thread's shard slot
  /// (assigned per thread per sweep).  Returns the slot.
  std::size_t item_started(std::size_t item_index);
  void item_finished(std::size_t slot);

  [[nodiscard]] HeartbeatSnapshot snapshot() const;

 private:
  SweepHeartbeats() = default;

  struct Shard {
    std::atomic<std::int64_t> started{0};
    std::atomic<std::int64_t> completed{0};
    std::atomic<std::int64_t> item_start_ns{0};
    std::atomic<std::int64_t> last_progress_ns{0};
    std::atomic<std::int64_t> current_item{-1};
    std::atomic<bool> busy{false};
  };

  [[nodiscard]] std::int64_t now_ns() const;  // since sweep start

  std::mutex begin_mu_;
  std::atomic<bool> active_{false};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::int64_t> items_total_{0};
  std::atomic<std::int64_t> started_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> completed_ns_{0};  ///< summed completed-item time
  std::atomic<std::size_t> workers_{0};
  std::atomic<std::int64_t> start_ns_{0};  ///< steady_clock epoch of the sweep
  std::atomic<std::size_t> next_slot_{0};
  Shard shards_[kMaxHeartbeatShards];
};

/// Straggler policy: a busy shard is a straggler when its in-flight item is
/// older than max(min_seconds, factor x mean completed-item time).  Before
/// any item completes, min_seconds alone governs.
struct StragglerOptions {
  double factor = 4.0;
  double min_seconds = 0.05;
};

struct StragglerReport {
  std::vector<std::size_t> stragglers;  ///< slot indices, ascending
  /// Naive remaining-work estimate: (total - completed) x mean / workers.
  /// -1 while unknown (no completions yet, or the sweep is inactive).
  double eta_seconds = -1.0;
};

/// Pure function of a snapshot — unit-testable with synthetic heartbeats.
[[nodiscard]] StragglerReport detect_stragglers(const HeartbeatSnapshot& hb,
                                                const StragglerOptions& options = {});

/// Publishes the current heartbeat snapshot + straggler report as `sweep.*`
/// gauges (see docs/observability.md).  Gauges from the previous sweep
/// persist after end_sweep — `sweep.active` says whether they are live.
void publish_sweep_gauges(const StragglerOptions& options = {});

}  // namespace speedscale::obs::live
