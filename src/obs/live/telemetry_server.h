// Minimal scrape server for the live telemetry plane.
//
// One blocking accept loop on its own thread, serving four read-only
// endpoints over HTTP/1.0 (connection-per-request, no keep-alive):
//
//   /metrics        Prometheus text exposition of the registry (0.0.4)
//   /snapshot.json  MetricsRegistry::snapshot_json() (byte-stable JSON)
//   /series.json    TelemetryHub::series_json() (recent time series)
//   /healthz        "ok"
//
// Binding: "HOST:PORT" (TCP; PORT 0 picks an ephemeral port, resolved via
// address()), a bare "PORT", or "unix:PATH" (unix-domain socket — no
// network permissions needed; any existing socket file at PATH is
// replaced).  stop() wakes the accept loop through a 100 ms poll() cadence
// and joins the thread — clean shutdown is part of the contract and is what
// the CI smoke test asserts.
//
// This is deliberately not a general HTTP server: one request per
// connection, GET only, requests served sequentially.  A Prometheus scraper
// or `telemetry_tool --watch` is exactly that traffic shape.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace speedscale::obs::live {

class TelemetryHub;

struct TelemetryServerOptions {
  /// "HOST:PORT", bare "PORT", or "unix:PATH".  Default: loopback,
  /// ephemeral port.
  std::string bind = "127.0.0.1:0";
};

class TelemetryServer {
 public:
  explicit TelemetryServer(TelemetryHub& hub, const TelemetryServerOptions& options = {});
  ~TelemetryServer();  // stop()

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Binds and launches the accept thread.  Throws ModelError on bind
  /// failure.  Idempotent.
  void start();
  /// Stops accepting, joins the thread, closes the socket (and unlinks a
  /// unix-socket path).  Idempotent.
  void stop();

  /// Resolved scrape address: "127.0.0.1:PORT" or "unix:PATH".  Valid after
  /// start().
  [[nodiscard]] std::string address() const;
  /// Resolved TCP port; -1 for unix sockets or before start().
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void handle_connection(int fd);
  /// Full HTTP response for `path` (body + headers; 404 for unknown paths).
  [[nodiscard]] std::string respond(const std::string& path) const;

  TelemetryHub& hub_;
  TelemetryServerOptions options_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::string unix_path_;  // non-empty iff unix-socket mode
  std::string address_;
  std::thread acceptor_;
  std::atomic<bool> stop_requested_{false};
  bool running_ = false;
  std::atomic<std::uint64_t> requests_{0};
};

/// Minimal one-shot scrape client (tests, telemetry_tool): GETs `path` from
/// `address` ("HOST:PORT" or "unix:PATH") and returns the response body.
/// Throws ModelError on connection failure or a non-200 status.
[[nodiscard]] std::string scrape(const std::string& address, const std::string& path);

}  // namespace speedscale::obs::live
