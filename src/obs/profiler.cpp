#include "src/obs/profiler.h"

#include <algorithm>
#include <cstdio>

namespace speedscale::obs {

Profiler& Profiler::instance() {
  static Profiler prof;
  return prof;
}

Profiler& profiler() { return Profiler::instance(); }

void Profiler::record(const char* label, std::int64_t ns) {
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = entries_.try_emplace(label);
  ProfileEntry& e = it->second;
  if (inserted) {
    e.label = label;
    e.min_ns = ns;
    e.max_ns = ns;
  } else {
    e.min_ns = std::min(e.min_ns, ns);
    e.max_ns = std::max(e.max_ns, ns);
  }
  ++e.count;
  e.total_ns += ns;
}

std::vector<ProfileEntry> Profiler::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<ProfileEntry> out;
  out.reserve(entries_.size());
  for (const auto& [label, e] : entries_) out.push_back(e);
  std::sort(out.begin(), out.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) { return a.total_ns > b.total_ns; });
  return out;
}

std::string Profiler::report_text() const {
  const std::vector<ProfileEntry> entries = snapshot();
  if (entries.empty()) return {};
  std::string out = "profile (label, calls, total ms, mean ms):\n";
  char buf[160];
  for (const ProfileEntry& e : entries) {
    std::snprintf(buf, sizeof(buf), "  %-36s %8lld %12.3f %12.4f\n", e.label.c_str(),
                  static_cast<long long>(e.count), static_cast<double>(e.total_ns) * 1e-6,
                  e.mean_ns() * 1e-6);
    out += buf;
  }
  return out;
}

std::string Profiler::snapshot_json() const {
  // Label-sorted (unlike snapshot(), which sorts by total time for humans):
  // JSON artifacts must be byte-diffable, so equal aggregates always
  // serialize identically.
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{";
  bool first = true;
  for (const auto& [label, e] : entries_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += label;  // labels are dotted identifiers; no escaping needed
    out += "\":{\"count\":";
    out += std::to_string(e.count);
    out += ",\"total_ns\":";
    out += std::to_string(e.total_ns);
    out += ",\"min_ns\":";
    out += std::to_string(e.min_ns);
    out += ",\"max_ns\":";
    out += std::to_string(e.max_ns);
    out += '}';
  }
  out += '}';
  return out;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  entries_.clear();
}

}  // namespace speedscale::obs
