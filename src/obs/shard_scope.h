// Per-shard metric capture for parallel sweeps.
//
// Counter adds are commutative, so running a sweep across threads already
// produces the right global totals — but the bench ledger (src/obs/perf/)
// pins *per-workload* counters, and a global registry cannot say which shard
// produced which increment.  ShardMetricsScope gives each shard a private
// delta map: while a scope is the innermost one on its thread, every
// OBS_COUNT / shard_aware_add on that thread lands in the scope instead of
// the registry.  The sweep scheduler (src/analysis/sweep.h) then merges the
// per-shard deltas back toward the caller in instance-index order, so the
// registry's final counter values — and everything serialized from them —
// are byte-identical for --jobs 1 and --jobs N.
//
// Scopes nest (a guarded retry ladder inside a sweep item opens its own
// scope to separate attempted from committed work), and merging routes
// through the *merging thread's* innermost scope when one is active, so an
// inner sweep's counters surface in the enclosing shard rather than leaking
// straight to the registry.
//
// Thread discipline: a scope must be opened and closed on one thread.  Its
// counters()/merge results may be read from another thread only after the
// owning thread finished the scope and a synchronization point intervened
// (ThreadPool::wait_idle provides one).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

#include "src/obs/metrics_registry.h"

namespace speedscale::obs {

/// Captures this thread's counter adds for its lifetime (or until stop()).
class ShardMetricsScope {
 public:
  ShardMetricsScope();
  ~ShardMetricsScope();
  ShardMetricsScope(const ShardMetricsScope&) = delete;
  ShardMetricsScope& operator=(const ShardMetricsScope&) = delete;

  /// Stops capturing (pops the scope).  Idempotent; the destructor calls it.
  void stop();

  /// Aggregated deltas by counter name.  Call after stop() (or from the
  /// owning thread); distinct literals with equal text are combined.
  [[nodiscard]] std::map<std::string, std::int64_t> counters() const;

  /// stop(), then routes every delta toward the caller: into the merging
  /// thread's innermost active scope if one exists, else the registry.
  void merge_into_parent();

  /// Internal recording endpoints (see shard_aware_add).
  void record_site(const char* literal_name, std::int64_t n);
  void record_named(const std::string& name, std::int64_t n);

 private:
  ShardMetricsScope* prev_;
  bool active_;
  // Fast path: OBS_COUNT names are literals, so pointer identity is a valid
  // (and hash-cheap) key; equal-text duplicates merge in counters().
  std::unordered_map<const char*, std::int64_t> by_site_;
  std::map<std::string, std::int64_t> by_name_;
};

}  // namespace speedscale::obs
