// Profiling hooks: RAII scoped timers aggregated per label.
//
// Placement discipline: scopes wrap *coarse* units — one algorithm run in
// the ratio harness, one coordinate-ascent round in the worst-case search,
// one bench repetition — so the two steady_clock reads per scope (~tens of
// ns) are invisible next to the work they bracket.  The aggregated table is
// what `ratio_harness`, `worst_case`, and the benches print as a wall-clock
// breakdown, and what obs::report.h exports as JSON.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace speedscale::obs {

/// Aggregated timings for one label.
struct ProfileEntry {
  std::string label;
  std::int64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t min_ns = 0;
  std::int64_t max_ns = 0;

  [[nodiscard]] double mean_ns() const {
    return count > 0 ? static_cast<double>(total_ns) / static_cast<double>(count) : 0.0;
  }
};

/// Process-wide label -> aggregate map.  Thread-safe.
class Profiler {
 public:
  static Profiler& instance();

  void record(const char* label, std::int64_t ns);

  /// Snapshot sorted by total time, descending.
  [[nodiscard]] std::vector<ProfileEntry> snapshot() const;

  /// Fixed-width human-readable table (empty string when nothing recorded).
  [[nodiscard]] std::string report_text() const;

  /// {"label":{"count":..,"total_ns":..,"min_ns":..,"max_ns":..},...}
  /// Labels emit in sorted order so equal aggregates are byte-diffable.
  [[nodiscard]] std::string snapshot_json() const;

  void reset();

 private:
  Profiler() = default;
  mutable std::mutex mu_;
  std::map<std::string, ProfileEntry> entries_;
};

/// Shorthand for Profiler::instance().
[[nodiscard]] Profiler& profiler();

/// Times its scope and records into the global profiler on destruction.
/// `label` must point to static storage (string literals).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* label)
      : label_(label), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    Profiler::instance().record(label_, ns);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* label_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace speedscale::obs

#define OBS_DETAIL_CONCAT2(a, b) a##b
#define OBS_DETAIL_CONCAT(a, b) OBS_DETAIL_CONCAT2(a, b)

/// Times the enclosing scope under `label` (a string literal).
#define OBS_TIMED_SCOPE(label) \
  ::speedscale::obs::ScopedTimer OBS_DETAIL_CONCAT(obs_scoped_timer_, __LINE__)(label)
