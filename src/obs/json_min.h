// Minimal strict JSON parser for the library's own artifacts.
//
// The observability layer emits several JSON artifacts (metric snapshots,
// bench ledgers, Chrome traces); this parser is the in-process way to read
// them back — round-trip tests, ledger loading in bench tooling — without an
// external dependency.  It is deliberately small: UTF-8 pass-through (only
// \uXXXX escapes below 0x80 are decoded), numbers parsed as double, objects
// keyed by std::map (artifact keys are unique and emitted sorted).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace speedscale::obs {

/// One parsed JSON value (tagged union, value-semantic tree).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_null() const { return type == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type == Type::kObject; }

  /// Member lookup on an object; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  /// Member access that throws ModelError when the key is missing.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
};

/// Parses `text` as exactly one JSON value (trailing garbage is an error).
/// Throws ModelError with a byte offset on malformed input.
[[nodiscard]] JsonValue parse_json(const std::string& text);

}  // namespace speedscale::obs
