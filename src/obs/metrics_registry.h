// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Naming convention (docs/observability.md): dot-separated, lower-case,
// rooted at the subsystem — "sim.c_machine.segments",
// "analysis.thread_pool.task_latency_us".  Metrics are created on first use
// and live for the process; references returned by the registry are stable.
//
// Cost discipline: every mutation is a relaxed atomic op on a pre-resolved
// reference.  Hot simulator loops additionally gate their sites behind
// metrics_enabled() (one relaxed load) via OBS_COUNT, so a disabled build of
// the bench hot path pays a branch, not an atomic RMW, per event — and the
// shared cache line is never bounced across thread-pool workers.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace speedscale::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-written level (queue depth, current ratio, ...).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: counts per upper bound plus an implicit +inf
/// bucket, with total count and sum for mean recovery.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x);

  [[nodiscard]] const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Bucket counts, size upper_bounds().size() + 1 (last = overflow).
  [[nodiscard]] std::vector<std::int64_t> bucket_counts() const;
  [[nodiscard]] std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::int64_t>> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of one histogram: bucket bounds, per-bucket counts
/// (counts.size() == bounds.size() + 1, last = overflow), total count, sum.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::int64_t> counts;
  std::int64_t count = 0;
  double sum = 0.0;

  /// Streaming quantile estimate (q in [0,1]) by linear interpolation inside
  /// the covering bucket; assumes non-negative observations (the registry's
  /// histograms are latencies/sizes).  The overflow bucket clamps to the last
  /// finite bound.  Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;
};

/// Point-in-time copy of every metric, for consumers that walk the registry
/// off the hot path (the live telemetry sampler, the Prometheus exposition).
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Process-wide name -> metric map.  Get-or-create; references are stable.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Bounds are fixed by the first caller; later callers get the same
  /// histogram regardless of the bounds they pass.
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds);

  /// Every counter's current value, sorted by name.  The deterministic
  /// work-counter signal the bench ledger records (src/obs/perf/).
  [[nodiscard]] std::map<std::string, std::int64_t> counter_values() const;

  /// Copies every metric's current value under one registry lock.  The copy
  /// is consistent per metric (each value is one relaxed load), not across
  /// metrics — exactly the semantics a periodic sampler needs.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Serializes every metric as one JSON object:
  ///   {"build_info":{...},"counters":{...},"gauges":{...},"histograms":{...}}
  /// Keys are sorted and numbers locale-independent "%.17g", so equal state
  /// serializes byte-identically everywhere (see src/obs/json_util.h).
  [[nodiscard]] std::string snapshot_json() const;
  void write_snapshot(std::ostream& os) const;

  /// Zeroes every metric (names survive).  For tests and benches.
  void reset_all();

 private:
  MetricsRegistry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthand for MetricsRegistry::instance().
[[nodiscard]] MetricsRegistry& registry();

class ShardMetricsScope;

namespace detail {
/// Gate for *hot-path* metric sites (see OBS_COUNT).  Off by default so the
/// exact simulators run at seed speed; harnesses and tools flip it on.
inline std::atomic<bool> g_metrics_enabled{false};
/// Innermost shard scope on this thread (src/obs/shard_scope.h).  While
/// non-null, counter adds divert into the scope's private delta map instead
/// of the global registry; the sweep scheduler merges the deltas back in a
/// deterministic order after the shard finishes.
inline thread_local ShardMetricsScope* g_shard_scope = nullptr;
/// Records `n` against `literal_name` in the thread's innermost shard scope.
/// Pointer is retained: the name must have static storage duration.
void shard_record(const char* literal_name, std::int64_t n);
}  // namespace detail

[[nodiscard]] inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool on) noexcept;

/// Enables/disables both pillars' runtime gates (tracing + hot metrics).
void set_observability_enabled(bool on) noexcept;

/// Shard-aware add for a pre-resolved counter (the OBS_COUNT fast path):
/// one thread_local load + branch on top of the relaxed RMW.  `name` must
/// have static storage duration (shard scopes retain the pointer).
inline void shard_aware_add(Counter& cached, const char* name, std::int64_t n) {
  if (detail::g_shard_scope != nullptr) {
    detail::shard_record(name, n);
  } else {
    cached.add(n);
  }
}

/// Shard-aware add for call sites that carry the counter name at runtime and
/// cannot cache a per-site reference (numerics::IterationTally, the sweep
/// scheduler's merge step).  `name` must have static storage duration.
void shard_aware_add(const char* name, std::int64_t n);
/// Same, for dynamically built names (the pointer is not retained).
void shard_aware_add(const std::string& name, std::int64_t n);

}  // namespace speedscale::obs

/// Hot-path counter increment: a relaxed load + branch when disabled; the
/// registry lookup happens once per call site.  `name` must be a literal.
#define OBS_COUNT(name, n)                                                    \
  do {                                                                        \
    if (::speedscale::obs::metrics_enabled()) {                               \
      static ::speedscale::obs::Counter& obs_counter_ =                       \
          ::speedscale::obs::registry().counter(name);                        \
      ::speedscale::obs::shard_aware_add(obs_counter_, name, (n));            \
    }                                                                         \
  } while (0)
