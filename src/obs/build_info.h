// Build identity: which binary produced this artifact.
//
// Every serialized artifact (metric snapshots, bench ledgers, the Prometheus
// exposition) embeds the same small build_info record — git hash, compiler,
// build type, and how the power-law alpha is configured — so a committed
// BENCH_*.json or a scraped snapshot is self-identifying: you can tell
// whether two artifacts came from comparable binaries without consulting CI
// logs.
//
// The git hash is captured at CMake configure time and compiled into this
// translation unit only (src/CMakeLists.txt), so committing does not rebuild
// the world; a stale hash means "reconfigure", not "broken".
#pragma once

#include <string>

namespace speedscale::obs {

struct BuildInfo {
  std::string git_hash;      ///< short commit hash, or "unknown" outside git
  std::string compiler;      ///< e.g. "gcc 13.2.0"
  std::string build_type;    ///< CMAKE_BUILD_TYPE, or "unknown"
  std::string cxx_standard;  ///< __cplusplus, e.g. "202002"
  /// How alpha enters the build: always "runtime" here — alpha is a per-run
  /// parameter, recorded per artifact (ledger config, suite JSON), never
  /// compiled in.
  std::string alpha_config;
};

/// The process's build identity (computed once).
[[nodiscard]] const BuildInfo& build_info();

/// Appends `info` as one sorted-key JSON object, byte-stable for equal
/// inputs (src/obs/json_util.h contract):
///   {"alpha_config":...,"build_type":...,"compiler":...,
///    "cxx_standard":...,"git_hash":...}
void append_build_info_json(std::string& out, const BuildInfo& info);
/// Same, for the process's own identity.
void append_build_info_json(std::string& out);

}  // namespace speedscale::obs
