#include "src/obs/json_min.h"

#include <cctype>
#include <cstdlib>

#include "src/core/types.h"

namespace speedscale::obs {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw ModelError("JsonValue::at: missing key \"" + key + "\"");
  return *v;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ModelError("parse_json: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.string = string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        if (consume_literal("true")) {
          v.boolean = true;
        } else if (consume_literal("false")) {
          v.boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default:
        return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out += e;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // Our own writers only escape control characters; decode the ASCII
          // range and reject the rest rather than half-implement UTF-16.
          if (code >= 0x80) fail("\\u escape above 0x7f unsupported");
          out += static_cast<char>(code);
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("malformed number \"" + tok + "\"");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) { return Parser(text).parse(); }

}  // namespace speedscale::obs
