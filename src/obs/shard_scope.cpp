#include "src/obs/shard_scope.h"

namespace speedscale::obs {

namespace detail {

void shard_record(const char* literal_name, std::int64_t n) {
  g_shard_scope->record_site(literal_name, n);
}

}  // namespace detail

ShardMetricsScope::ShardMetricsScope() : prev_(detail::g_shard_scope), active_(true) {
  detail::g_shard_scope = this;
}

ShardMetricsScope::~ShardMetricsScope() { stop(); }

void ShardMetricsScope::stop() {
  if (!active_) return;
  // Scopes are strictly nested per thread, so the innermost is always `this`
  // when stop() runs on the owning thread.
  detail::g_shard_scope = prev_;
  active_ = false;
}

std::map<std::string, std::int64_t> ShardMetricsScope::counters() const {
  std::map<std::string, std::int64_t> out = by_name_;
  for (const auto& [name, v] : by_site_) out[name] += v;
  return out;
}

void ShardMetricsScope::merge_into_parent() {
  stop();
  for (const auto& [name, v] : counters()) shard_aware_add(name, v);
}

void ShardMetricsScope::record_site(const char* literal_name, std::int64_t n) {
  by_site_[literal_name] += n;
}

void ShardMetricsScope::record_named(const std::string& name, std::int64_t n) {
  by_name_[name] += n;
}

void shard_aware_add(const char* name, std::int64_t n) {
  if (ShardMetricsScope* scope = detail::g_shard_scope) {
    scope->record_site(name, n);
  } else {
    registry().counter(name).add(n);
  }
}

void shard_aware_add(const std::string& name, std::int64_t n) {
  if (ShardMetricsScope* scope = detail::g_shard_scope) {
    scope->record_named(name, n);
  } else {
    registry().counter(name).add(n);
  }
}

}  // namespace speedscale::obs
