// Structured event tracing: what the simulators did, event by event.
//
// The non-clairvoyant model is a story about information revealed over time
// (releases, completions, the speed the algorithm chose in between), so the
// natural observability primitive is the *event*: a timestamped record of one
// state change in a run.  This module provides
//
//   * TraceEvent   — a small POD covering every event the simulators emit
//                    (see docs/observability.md for the per-kind payloads);
//   * TraceSink    — a pluggable consumer interface with three stock
//                    implementations: RingBufferSink (bounded, for tests and
//                    invariant replay), JsonlSink (one JSON object per line,
//                    for scripts/plot_profiles.py), SummarySink (human-
//                    readable per-kind counts);
//   * Tracer       — the process-wide dispatcher, off by default.
//
// Cost discipline: TRACE_EVENT(...) compiles to a single relaxed atomic load
// when tracing is disabled — no event is constructed, no branch to a call.
// Virtual/internal simulations (the clairvoyant shadow runs inside Algorithm
// NC) suppress their own events with TraceSuppressGuard so an enabled trace
// contains only the run the caller asked for.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "src/core/types.h"

namespace speedscale::obs {

/// What happened.  Kinds mirror the model's own vocabulary.
enum class EventKind : std::uint8_t {
  kJobRelease,     ///< a job arrived (value = volume, aux = density)
  kJobComplete,    ///< a job finished (value/aux = cumulative energy/flow)
  kSpeedChange,    ///< the speed law changed (value = speed, aux = driving weight)
  kPreemption,     ///< the running job was displaced (value = new job id)
  kDispatch,       ///< a job was assigned to a machine (value = assignment key)
  kPhaseBoundary,  ///< a labelled phase started/ended (harness structure)
};

/// Stable lower-case name used in the JSONL schema ("job_release", ...).
[[nodiscard]] const char* event_kind_name(EventKind kind);

/// One timestamped record.  `value`/`aux` are kind-specific payloads (see the
/// kind comments above and docs/observability.md); `label` must point to
/// static storage (string literals) — sinks keep the pointer, not a copy.
struct TraceEvent {
  EventKind kind = EventKind::kPhaseBoundary;
  double t = 0.0;
  JobId job = kNoJob;
  MachineId machine = kNoMachine;
  double value = 0.0;
  double aux = 0.0;
  const char* label = nullptr;
};

/// Appends the single-line JSON encoding of `ev` (no trailing newline).
void append_event_json(std::string& out, const TraceEvent& ev);

/// A consumer of trace events.  on_event may be called concurrently from
/// several threads; implementations must synchronize themselves.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& ev) = 0;
  virtual void flush() {}
};

/// Bounded in-memory sink: keeps the most recent `capacity` events and
/// counts the rest as dropped.  The workhorse of tests and invariant replay.
class RingBufferSink : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 1 << 16);

  void on_event(const TraceEvent& ev) override;

  /// Snapshot in arrival order (oldest first).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t dropped() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<TraceEvent> buf_;  // ring storage, write cursor = total_ % capacity_
  std::size_t total_ = 0;        // events ever received
};

/// Streams each event as one JSON object per line (JSONL).  Owns the file
/// stream when constructed from a path; borrows the ostream otherwise.
///
/// Path mode is crash-safe: events stream to "<path>.tmp" and the file is
/// atomically renamed to `path` at destruction (or an explicit close()), so
/// an interrupted run leaves the ".tmp" sibling behind — never a truncated
/// artifact at the path a consumer would read.
///
/// Flush policy: by default the sink flushes only when a caller asks
/// (flush() — e.g. the certificate tracker's checkpoint cadence) or at
/// close().  Long-running producers pick an automatic policy instead:
/// kEveryN flushes after every N lines, kTimed after `interval` has elapsed
/// since the last flush — so a killed process still leaves a near-current
/// ".tmp" stream behind (the crash-survival contract).
class JsonlSink : public TraceSink {
 public:
  struct FlushPolicy {
    enum class Mode : std::uint8_t {
      kManual,  ///< explicit flush()/close() only (the historical behavior)
      kEveryN,  ///< flush once every `every_n` appended lines
      kTimed,   ///< flush when `interval` has passed since the last flush
    };
    Mode mode = Mode::kManual;
    std::size_t every_n = 64;
    std::chrono::milliseconds interval{1000};
  };

  explicit JsonlSink(std::ostream& os);
  explicit JsonlSink(const std::string& path);
  ~JsonlSink() override;

  void on_event(const TraceEvent& ev) override;
  /// Appends one pre-serialized line (a trailing '\n' is added).  The live
  /// telemetry hub streams its time-series samples through this, reusing the
  /// crash-safe tmp-then-rename machinery and the flush policy.
  void write_line(const std::string& json_line);
  void flush() override;
  void set_flush_policy(FlushPolicy policy);
  /// Path mode: flushes and commits the ".tmp" file to its final path.
  /// Idempotent; later events are dropped.  No-op for borrowed streams.
  void close();
  [[nodiscard]] std::size_t lines() const;

 private:
  void append_locked(const char* data, std::size_t n);

  mutable std::mutex mu_;
  std::unique_ptr<std::ostream> owned_;
  std::ostream* os_;
  std::size_t lines_ = 0;
  std::string scratch_;
  std::string final_path_;  // non-empty iff path mode and not yet committed
  FlushPolicy policy_;
  std::size_t lines_since_flush_ = 0;
  std::chrono::steady_clock::time_point last_flush_ = std::chrono::steady_clock::now();
};

/// Per-kind counts and the covered time range; for quick human inspection.
class SummarySink : public TraceSink {
 public:
  void on_event(const TraceEvent& ev) override;
  [[nodiscard]] std::string summary() const;
  [[nodiscard]] std::size_t count(EventKind kind) const;
  [[nodiscard]] std::size_t total() const;

 private:
  mutable std::mutex mu_;
  std::size_t counts_[6] = {};
  double t_min_ = kInf;
  double t_max_ = -kInf;
};

namespace detail {
/// Master switch.  Relaxed loads suffice: enabling tracing mid-run may miss
/// a few in-flight events, which is the intended best-effort semantics.
inline std::atomic<bool> g_trace_enabled{false};
/// Per-thread suppression depth (virtual runs trace nothing).
inline thread_local int g_suppress_depth = 0;
/// Per-thread exclusive capture sink (see ScopedThreadCapture).  While set,
/// this thread's events bypass the global enabled flag and sink set entirely
/// — no shared mutex, no cross-thread interleaving.
inline thread_local TraceSink* g_thread_sink = nullptr;
}  // namespace detail

/// True when TRACE_EVENT sites are live on this thread.
[[nodiscard]] inline bool tracing_enabled() noexcept {
  return (detail::g_trace_enabled.load(std::memory_order_relaxed) ||
          detail::g_thread_sink != nullptr) &&
         detail::g_suppress_depth == 0;
}

/// Routes events to registered sinks.  All methods are thread-safe.
class Tracer {
 public:
  static Tracer& instance();

  /// Registers a sink; events are delivered until remove_sink/clear_sinks.
  void add_sink(std::shared_ptr<TraceSink> sink);
  void remove_sink(const TraceSink* sink);
  void clear_sinks();
  [[nodiscard]] std::size_t sink_count() const;

  /// Turns TRACE_EVENT sites on/off globally.
  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const;

  /// Delivers to every sink.  Callers normally go through TRACE_EVENT.
  void emit(const TraceEvent& ev);
  void flush();

 private:
  Tracer() = default;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<TraceSink>> sinks_;
};

/// Suppresses TRACE_EVENT on the current thread for its scope.  Used around
/// virtual simulations (Algorithm NC's shadow clairvoyant runs) so traces
/// describe only the run the caller asked for.
class TraceSuppressGuard {
 public:
  TraceSuppressGuard() { ++detail::g_suppress_depth; }
  ~TraceSuppressGuard() { --detail::g_suppress_depth; }
  TraceSuppressGuard(const TraceSuppressGuard&) = delete;
  TraceSuppressGuard& operator=(const TraceSuppressGuard&) = delete;
};

/// RAII convenience for tools and tests: enables tracing with `sink`
/// attached, then detaches and restores the previous enabled state.
class ScopedTracing {
 public:
  explicit ScopedTracing(std::shared_ptr<TraceSink> sink);
  ~ScopedTracing();
  ScopedTracing(const ScopedTracing&) = delete;
  ScopedTracing& operator=(const ScopedTracing&) = delete;

 private:
  std::shared_ptr<TraceSink> sink_;
  bool was_enabled_;
};

/// Routes this thread's TRACE_EVENTs *exclusively* to `sink` for the scope:
/// the global enabled flag and registered sinks are bypassed, so concurrent
/// captures on different threads (sweep shards certifying their own runs in
/// parallel) never see each other's events and take no shared lock.
/// TraceSuppressGuard still applies.  Nests: the previous thread sink is
/// restored on destruction.  The caller owns `sink` and must keep it alive.
class ScopedThreadCapture {
 public:
  explicit ScopedThreadCapture(TraceSink* sink) : prev_(detail::g_thread_sink) {
    detail::g_thread_sink = sink;
  }
  ~ScopedThreadCapture() { detail::g_thread_sink = prev_; }
  ScopedThreadCapture(const ScopedThreadCapture&) = delete;
  ScopedThreadCapture& operator=(const ScopedThreadCapture&) = delete;

 private:
  TraceSink* prev_;
};

}  // namespace speedscale::obs

/// Emission macro: zero work beyond one relaxed atomic load when disabled.
/// Usage (designated initializers keep call sites self-describing):
///   TRACE_EVENT(.kind = obs::EventKind::kJobComplete, .t = now, .job = id,
///               .value = cum_energy, .aux = cum_flow);
#define TRACE_EVENT(...)                                                     \
  do {                                                                       \
    if ((::speedscale::obs::detail::g_trace_enabled.load(                    \
             std::memory_order_relaxed) ||                                   \
         ::speedscale::obs::detail::g_thread_sink != nullptr) &&             \
        ::speedscale::obs::detail::g_suppress_depth == 0) {                  \
      ::speedscale::obs::Tracer::instance().emit(                            \
          ::speedscale::obs::TraceEvent{__VA_ARGS__});                       \
    }                                                                        \
  } while (0)
