#include "src/obs/report.h"

#include <fstream>
#include <ostream>

#include "src/core/types.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/profiler.h"

namespace speedscale::obs {

std::string observability_report_json() {
  std::string out = "{\"metrics\":";
  out += registry().snapshot_json();
  out += ",\"profile\":";
  out += profiler().snapshot_json();
  out += "}";
  return out;
}

void write_observability_report(std::ostream& os) { os << observability_report_json() << '\n'; }

void write_observability_report_file(const std::string& path) {
  std::ofstream f(path);
  if (!f) throw ModelError("write_observability_report_file: cannot open " + path);
  write_observability_report(f);
}

}  // namespace speedscale::obs
