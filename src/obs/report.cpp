#include "src/obs/report.h"

#include <ostream>

#include "src/obs/metrics_registry.h"
#include "src/obs/profiler.h"
#include "src/robust/atomic_io.h"

namespace speedscale::obs {

std::string observability_report_json() {
  std::string out = "{\"metrics\":";
  out += registry().snapshot_json();
  out += ",\"profile\":";
  out += profiler().snapshot_json();
  out += "}";
  return out;
}

void write_observability_report(std::ostream& os) { os << observability_report_json() << '\n'; }

void write_observability_report_file(const std::string& path) {
  // Crash-safe: a killed bench leaves the old report (or none), never a torn
  // JSON object.
  robust::atomic_write_file(path, [](std::ostream& os) { write_observability_report(os); });
}

}  // namespace speedscale::obs
