#include "src/obs/fleet/fleet_events.h"

#include <chrono>
#include <cmath>

#include "src/obs/json_min.h"
#include "src/obs/json_util.h"
#include "src/obs/log/logger.h"
#include "src/robust/diagnostics.h"

namespace speedscale::obs::fleet {

namespace {

constexpr const char* kKindNames[] = {
    "worker_start", "item_begin", "item_end", "worker_exit", "spawn",    "exit",
    "restart",      "hung_kill",  "degraded", "interrupt",   "merge",
};
constexpr std::size_t kKindCount = sizeof(kKindNames) / sizeof(kKindNames[0]);

}  // namespace

const char* fleet_event_kind_name(FleetEventKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < kKindCount ? kKindNames[i] : "unknown";
}

std::string fleet_event_json(const FleetEvent& ev) {
  std::string out = "{\"detail\":";
  append_json_string(out, ev.detail);
  out += ",\"incarnation\":" + std::to_string(ev.incarnation);
  out += ",\"item\":" + std::to_string(ev.item);
  out += ",\"kind\":\"";
  out += fleet_event_kind_name(ev.kind);
  out += "\",\"run_id\":";
  append_json_string(out, ev.run_id);
  out += ",\"shard\":" + std::to_string(ev.shard);
  out += ",\"ts\":";
  append_json_number(out, ev.ts);
  out += ",\"wall_ms\":";
  append_json_number(out, ev.wall_ms);
  out += '}';
  return out;
}

bool parse_fleet_event(const std::string& line, FleetEvent& out) {
  JsonValue root;
  try {
    root = parse_json(line);
  } catch (const std::exception&) {
    return false;  // torn tail / corrupt line
  }
  if (!root.is_object()) return false;
  if (root.find("schema") != nullptr) return false;  // header line
  const JsonValue* detail = root.find("detail");
  const JsonValue* incarnation = root.find("incarnation");
  const JsonValue* item = root.find("item");
  const JsonValue* kind = root.find("kind");
  const JsonValue* run_id = root.find("run_id");
  const JsonValue* shard = root.find("shard");
  const JsonValue* ts = root.find("ts");
  const JsonValue* wall = root.find("wall_ms");
  if (detail == nullptr || !detail->is_string() || incarnation == nullptr ||
      !incarnation->is_number() || item == nullptr || !item->is_number() || kind == nullptr ||
      !kind->is_string() || run_id == nullptr || !run_id->is_string() || shard == nullptr ||
      !shard->is_number() || ts == nullptr || !ts->is_number() || wall == nullptr ||
      !wall->is_number() || !std::isfinite(wall->number)) {
    return false;
  }
  bool known = false;
  for (std::size_t i = 0; i < kKindCount; ++i) {
    if (kind->string == kKindNames[i]) {
      out.kind = static_cast<FleetEventKind>(i);
      known = true;
      break;
    }
  }
  if (!known) return false;
  out.detail = detail->string;
  out.incarnation = static_cast<long>(incarnation->number);
  out.item = static_cast<std::int64_t>(item->number);
  out.run_id = run_id->string;
  out.shard = static_cast<long>(shard->number);
  out.ts = ts->number;
  out.wall_ms = wall->number;
  return true;
}

FleetEventLog::FleetEventLog(std::string path)
    : path_(std::move(path)), file_(path_, std::ios::app) {
  if (!file_) {
    throw robust::RobustError(robust::ErrorCode::kIoMalformed, "cannot open fleet event log",
                              path_);
  }
  if (file_.tellp() == std::streampos(0)) {
    file_ << "{\"schema\":\"" << kFleetEventsSchema << "\"}\n";
    file_.flush();
  }
}

void FleetEventLog::append(const FleetEvent& ev) {
  // Best-effort by design: events are observability, never coordination
  // state, so an append failure degrades to a gap in the timeline rather
  // than a dead worker.
  if (!file_) return;
  file_ << fleet_event_json(ev) << '\n';
  file_.flush();
}

std::vector<FleetEvent> load_fleet_events(const std::string& path, std::size_t* skipped_lines) {
  if (skipped_lines) *skipped_lines = 0;
  std::vector<FleetEvent> out;
  std::ifstream f(path);
  if (!f) return out;
  std::string line;
  std::size_t skipped = 0;
  bool saw_header = false;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    FleetEvent ev;
    if (parse_fleet_event(line, ev)) {
      out.push_back(std::move(ev));
    } else if (!saw_header && line.find(kFleetEventsSchema) != std::string::npos) {
      saw_header = true;  // the (repeatable) header line is not a torn line
    } else {
      ++skipped;
    }
  }
  if (skipped_lines) *skipped_lines = skipped;
  return out;
}

double EventClock::next() {
  const std::uint64_t seq = seq_++;
  if (log::Logger::instance().fixed_clock()) return static_cast<double>(seq) / 1000.0;
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

}  // namespace speedscale::obs::fleet
