// Merged fleet Perfetto trace and merged fleet log: one timeline for a
// multi-process run.
//
// The supervisor ingests every per-process journal — its own policy events
// plus each shard's worker events (src/obs/fleet/fleet_events.h) — and emits
// one Chrome Trace Event Format document:
//
//   * pid 1, "supervisor" — spawn / exit / restart / hung_kill / degraded /
//     interrupt / merge as instant events, each carrying the shard and
//     incarnation it describes in args;
//   * one process per worker *incarnation* (pid 2, 3, ... over sorted
//     (shard, incarnation)), named "worker shard S inc I" — items as
//     complete ("X") slices (dur = the item's measured wall), worker_start /
//     worker_exit as instants, and an item that began but never committed
//     (the SIGKILL case) as an explicit "item N (lost)" instant.
//
// A chaos run therefore renders as a single timeline in ui.perfetto.dev:
// the killed incarnation's track ends at its lost item, the supervisor's
// restart instant follows, and the next incarnation's track picks the item
// back up — the whole crash-recovery story in one view.  Deterministic:
// equal inputs serialize byte-identically (the golden-test contract), with
// timestamps normalized to the earliest event across all journals.
//
// The log half is simpler: merge_fleet_logs re-emits every valid
// speedscale.log/1 record from the supervisor's and each shard's log file
// under one header, supervisor first, then shards in order — each record
// already carries its (run_id, shard, incarnation) tags, so grouping by
// source loses nothing and keeps the merge byte-deterministic.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/obs/fleet/fleet_events.h"

namespace speedscale::obs::fleet {

struct FleetTraceInput {
  std::string run_id;
  /// The supervisor's journal, in file order.
  std::vector<FleetEvent> supervisor_events;
  /// Each shard's journal (all incarnations interleaved), in file order.
  std::vector<std::vector<FleetEvent>> worker_events;
};

/// One Trace Event Format document ({"displayTimeUnit":"ms",...}).
[[nodiscard]] std::string fleet_chrome_trace_json(const FleetTraceInput& input);

/// Crash-safe file variant (tmp + atomic rename).
void write_fleet_trace_file(const std::string& path, const FleetTraceInput& input);

/// Merges per-process speedscale.log/1 files into `out_path` (atomic write):
/// one header line, then every valid record of `supervisor_log`, then of
/// each `shard_logs` entry, in file order.  Missing files are skipped;
/// returns the number of records written.
std::size_t merge_fleet_logs(const std::string& out_path, const std::string& supervisor_log,
                             const std::vector<std::string>& shard_logs);

}  // namespace speedscale::obs::fleet
