#include "src/obs/fleet/fleet_trace.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <utility>

#include "src/obs/json_util.h"
#include "src/obs/log/logger.h"
#include "src/robust/atomic_io.h"
#include "src/robust/diagnostics.h"

namespace speedscale::obs::fleet {

namespace {

/// One trace-event record with keys in sorted order (args, dur, name, ph,
/// pid, s, tid, ts) — the same byte-diffable emission idiom as
/// src/obs/perf/chrome_trace.cpp.
struct RecordWriter {
  std::string& out;
  bool& first;

  void begin() {
    if (!first) out += ',';
    first = false;
    out += '{';
  }

  void field_args_open() { out += "\"args\":{"; }
  void field_args_close() { out += "},"; }

  void finish(const std::string& name, char ph, std::int64_t pid, std::int64_t tid, double ts,
              double dur = -1.0, const char* scope = nullptr) {
    if (dur >= 0.0) {
      out += "\"dur\":";
      append_json_number(out, dur);
      out += ',';
    }
    out += "\"name\":";
    append_json_string(out, name);
    out += ",\"ph\":\"";
    out += ph;
    out += "\",\"pid\":";
    out += std::to_string(pid);
    if (scope != nullptr) {
      out += ",\"s\":\"";
      out += scope;
      out += '"';
    }
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"ts\":";
    append_json_number(out, ts);
    out += '}';
  }
};

void append_arg(std::string& out, bool& first, const char* key, double v) {
  if (!first) out += ',';
  first = false;
  append_json_string(out, key);
  out += ':';
  append_json_number(out, v);
}

void append_arg(std::string& out, bool& first, const char* key, const std::string& v) {
  if (!first) out += ',';
  first = false;
  append_json_string(out, key);
  out += ':';
  append_json_string(out, v);
}

void append_metadata(std::string& out, bool& first, std::int64_t pid, const std::string& name) {
  RecordWriter rec{out, first};
  rec.begin();
  rec.field_args_open();
  out += "\"name\":";
  append_json_string(out, name);
  rec.field_args_close();
  rec.finish("process_name", 'M', pid, 0, 0.0);
}

/// µs since the earliest event across every journal.  Fleet journals span
/// clock domains (each fixed-clock process restarts at seq 0), so the
/// normalization is cosmetic alignment, not cross-process ordering — ordering
/// in the merged document comes from journal grouping, which is causal.
double to_us(double ts, double t0) { return (ts - t0) * 1e6; }

}  // namespace

std::string fleet_chrome_trace_json(const FleetTraceInput& input) {
  double t0 = 0.0;
  bool have_t0 = false;
  auto consider = [&](const FleetEvent& ev) {
    if (!have_t0 || ev.ts < t0) {
      t0 = ev.ts;
      have_t0 = true;
    }
  };
  for (const FleetEvent& ev : input.supervisor_events) consider(ev);
  for (const auto& shard : input.worker_events)
    for (const FleetEvent& ev : shard) consider(ev);

  // Process tracks: pid 1 = supervisor, then one per (shard, incarnation)
  // in sorted order — stable regardless of the order incarnations died in.
  std::map<std::pair<long, long>, std::int64_t> pids;
  for (const auto& shard : input.worker_events) {
    for (const FleetEvent& ev : shard) pids.emplace(std::make_pair(ev.shard, ev.incarnation), 0);
  }
  std::int64_t next_pid = 2;
  for (auto& [key, pid] : pids) pid = next_pid++;

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;

  append_metadata(out, first, 1, "supervisor");
  for (const auto& [key, pid] : pids) {
    append_metadata(out, first, pid,
                    "worker shard " + std::to_string(key.first) + " inc " +
                        std::to_string(key.second));
  }

  // Supervisor policy instants, in journal order.
  for (const FleetEvent& ev : input.supervisor_events) {
    RecordWriter rec{out, first};
    rec.begin();
    rec.field_args_open();
    bool afirst = true;
    append_arg(out, afirst, "detail", ev.detail);
    append_arg(out, afirst, "incarnation", static_cast<double>(ev.incarnation));
    append_arg(out, afirst, "shard", static_cast<double>(ev.shard));
    rec.field_args_close();
    rec.finish(fleet_event_kind_name(ev.kind), 'i', 1, 0, to_us(ev.ts, t0), -1.0, "p");
  }

  // Worker tracks: item slices ('X', dur from the committed wall), lifecycle
  // instants, and an explicit "(lost)" instant for an item_begin that never
  // saw its item_end — the exact item a SIGKILL landed in.
  for (const auto& shard_events : input.worker_events) {
    std::map<std::pair<std::int64_t, long>, const FleetEvent*> open_items;  // (item, inc)
    for (const FleetEvent& ev : shard_events) {
      const auto it = pids.find(std::make_pair(ev.shard, ev.incarnation));
      if (it == pids.end()) continue;
      const std::int64_t pid = it->second;
      switch (ev.kind) {
        case FleetEventKind::kItemBegin:
          open_items[std::make_pair(ev.item, ev.incarnation)] = &ev;
          break;
        case FleetEventKind::kItemEnd: {
          open_items.erase(std::make_pair(ev.item, ev.incarnation));
          RecordWriter rec{out, first};
          rec.begin();
          rec.field_args_open();
          bool afirst = true;
          append_arg(out, afirst, "item", static_cast<double>(ev.item));
          append_arg(out, afirst, "wall_ms", ev.wall_ms);
          rec.field_args_close();
          // The slice ends at the commit timestamp; with the measured wall
          // as dur it starts wall_ms earlier, matching the begin instant up
          // to journaling overhead.
          const double dur_us = ev.wall_ms * 1e3;
          rec.finish("item " + std::to_string(ev.item), 'X', pid, 0,
                     to_us(ev.ts, t0) - dur_us, dur_us);
          break;
        }
        case FleetEventKind::kWorkerStart:
        case FleetEventKind::kWorkerExit: {
          RecordWriter rec{out, first};
          rec.begin();
          rec.field_args_open();
          bool afirst = true;
          append_arg(out, afirst, "detail", ev.detail);
          rec.field_args_close();
          rec.finish(fleet_event_kind_name(ev.kind), 'i', pid, 0, to_us(ev.ts, t0), -1.0, "p");
          break;
        }
        default:
          break;  // supervisor kinds never appear in worker journals
      }
    }
    for (const auto& [key, begin] : open_items) {
      const auto it = pids.find(std::make_pair(begin->shard, begin->incarnation));
      if (it == pids.end()) continue;
      RecordWriter rec{out, first};
      rec.begin();
      rec.field_args_open();
      bool afirst = true;
      append_arg(out, afirst, "item", static_cast<double>(begin->item));
      rec.field_args_close();
      rec.finish("item " + std::to_string(begin->item) + " (lost)", 'i', it->second, 0,
                 to_us(begin->ts, t0), -1.0, "p");
    }
  }

  out += "]}";
  return out;
}

void write_fleet_trace_file(const std::string& path, const FleetTraceInput& input) {
  robust::atomic_write_file(path, [&](std::ostream& os) {
    os << fleet_chrome_trace_json(input) << '\n';
  });
}

std::size_t merge_fleet_logs(const std::string& out_path, const std::string& supervisor_log,
                             const std::vector<std::string>& shard_logs) {
  std::size_t written = 0;
  robust::atomic_write_file(out_path, [&](std::ostream& os) {
    os << "{\"schema\":\"" << log::kLogSchema << "\"}\n";
    auto copy_records = [&](const std::string& path) {
      std::ifstream f(path);
      if (!f) return;  // a shard that never spawned has no log — fine
      std::string line;
      while (std::getline(f, line)) {
        if (line.empty()) continue;
        log::LogRecord record;
        if (!log::parse_record(line, record)) continue;  // header / torn tail
        // Re-emit through the serializer, not verbatim: the merged artifact
        // is then canonical even if a source line used equivalent-but-
        // different encodings.
        os << log::record_json(record) << '\n';
        ++written;
      }
    };
    copy_records(supervisor_log);
    for (const std::string& path : shard_logs) copy_records(path);
  });
  return written;
}

}  // namespace speedscale::obs::fleet
