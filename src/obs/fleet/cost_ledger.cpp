#include "src/obs/fleet/cost_ledger.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "src/obs/json_min.h"
#include "src/obs/json_util.h"
#include "src/robust/diagnostics.h"

namespace speedscale::obs::fleet {

namespace {

void append_counters(std::string& out, const std::map<std::string, std::int64_t>& counters) {
  out += '{';
  bool first = true;
  for (const auto& [name, count] : counters) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':' + std::to_string(count);
  }
  out += '}';
}

std::map<std::string, std::int64_t> parse_counters(const JsonValue& v, const char* what) {
  if (!v.is_object()) {
    throw robust::RobustError(robust::ErrorCode::kIoMalformed, "fleet_cost: bad counter map",
                              what);
  }
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, count] : v.object) {
    if (!count.is_number()) {
      throw robust::RobustError(robust::ErrorCode::kIoMalformed, "fleet_cost: bad counter value",
                                name);
    }
    out[name] = static_cast<std::int64_t>(count.number);
  }
  return out;
}

double number_at(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    throw robust::RobustError(robust::ErrorCode::kIoMalformed, "fleet_cost: missing number", key);
  }
  return v->number;
}

}  // namespace

std::int64_t CostRow::work_units() const {
  std::int64_t total = 0;
  for (const auto& [name, count] : work) total += count;
  return total;
}

std::string FleetCostReport::to_json() const {
  std::string out = "{\"counters\":";
  append_counters(out, counters);
  out += ",\"items\":" + std::to_string(items);
  out += ",\"rows\":[";
  bool first = true;
  for (const CostRow& row : rows) {
    if (!first) out += ',';
    first = false;
    out += "{\"incarnation\":" + std::to_string(row.incarnation);
    out += ",\"index\":" + std::to_string(row.index);
    out += ",\"shard\":" + std::to_string(row.shard);
    out += ",\"wall_ms\":";
    append_json_number(out, row.wall_ms);
    out += ",\"work\":";
    append_counters(out, row.work);
    out += '}';
  }
  out += "],\"run_id\":";
  append_json_string(out, run_id);
  out += ",\"schema\":\"";
  out += kFleetCostSchema;
  out += "\",\"shards\":[";
  first = true;
  for (const ShardCostSummary& s : shards) {
    if (!first) out += ',';
    first = false;
    out += "{\"items\":" + std::to_string(s.items);
    out += ",\"max_item\":" + std::to_string(s.max_item);
    out += ",\"max_item_wall_ms\":";
    append_json_number(out, s.max_item_wall_ms);
    out += ",\"restarts\":" + std::to_string(s.restarts);
    out += ",\"shard\":" + std::to_string(s.shard);
    out += ",\"wall_ms\":";
    append_json_number(out, s.wall_ms);
    out += ",\"work_units\":" + std::to_string(s.work_units);
    out += '}';
  }
  out += "],\"wall_ms\":";
  append_json_number(out, wall_ms);
  out += ",\"work_units\":" + std::to_string(work_units);
  out += '}';
  return out;
}

std::string FleetCostReport::table(std::size_t top) const {
  std::string out = "fleet cost report";
  if (!run_id.empty()) out += " (run " + run_id + ")";
  out += '\n';
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-6s %8s %12s %12s %9s %16s\n", "shard", "items", "wall_ms",
                "work", "restarts", "costliest item");
  out += buf;
  for (const ShardCostSummary& s : shards) {
    std::string costliest = "-";
    if (s.max_item >= 0) {
      char ibuf[64];
      std::snprintf(ibuf, sizeof(ibuf), "#%lld (%.3f ms)", static_cast<long long>(s.max_item),
                    s.max_item_wall_ms);
      costliest = ibuf;
    }
    std::snprintf(buf, sizeof(buf), "  %-6ld %8lld %12.3f %12lld %9lld %16s\n", s.shard,
                  static_cast<long long>(s.items), s.wall_ms, static_cast<long long>(s.work_units),
                  static_cast<long long>(s.restarts), costliest.c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  total: %lld items, %.3f ms wall, %lld work units\n",
                static_cast<long long>(items), wall_ms, static_cast<long long>(work_units));
  out += buf;
  if (top > 0 && !rows.empty()) {
    std::vector<const CostRow*> by_wall;
    by_wall.reserve(rows.size());
    for (const CostRow& row : rows) by_wall.push_back(&row);
    std::stable_sort(by_wall.begin(), by_wall.end(), [](const CostRow* a, const CostRow* b) {
      if (a->wall_ms != b->wall_ms) return a->wall_ms > b->wall_ms;
      return a->index < b->index;  // deterministic tie-break (fixed clock zeroes walls)
    });
    out += "  top items by wall:\n";
    for (std::size_t i = 0; i < by_wall.size() && i < top; ++i) {
      const CostRow& row = *by_wall[i];
      std::snprintf(buf, sizeof(buf), "    item %-5lld shard %ld inc %ld  %10.3f ms  %lld work\n",
                    static_cast<long long>(row.index), row.shard, row.incarnation, row.wall_ms,
                    static_cast<long long>(row.work_units()));
      out += buf;
    }
  }
  return out;
}

FleetCostReport build_cost_report(std::vector<CostRow> rows, std::string run_id) {
  FleetCostReport report;
  report.run_id = std::move(run_id);
  std::stable_sort(rows.begin(), rows.end(), [](const CostRow& a, const CostRow& b) {
    if (a.index != b.index) return a.index < b.index;
    return a.incarnation < b.incarnation;
  });
  std::map<long, ShardCostSummary> shards;
  std::map<long, std::map<long, bool>> incarnations_seen;
  for (const CostRow& row : rows) {
    ShardCostSummary& s = shards[row.shard];
    s.shard = row.shard;
    ++s.items;
    s.wall_ms += row.wall_ms;
    const std::int64_t work = row.work_units();
    s.work_units += work;
    if (s.max_item < 0 || row.wall_ms > s.max_item_wall_ms) {
      s.max_item = row.index;
      s.max_item_wall_ms = row.wall_ms;
    }
    incarnations_seen[row.shard][row.incarnation] = true;
    ++report.items;
    report.wall_ms += row.wall_ms;
    report.work_units += work;
    for (const auto& [name, count] : row.work) report.counters[name] += count;
  }
  for (auto& [shard, s] : shards) {
    const auto& incs = incarnations_seen[shard];
    s.restarts = static_cast<std::int64_t>(incs.size()) - 1;
    report.shards.push_back(s);
  }
  report.rows = std::move(rows);
  return report;
}

FleetCostReport parse_cost_report(const std::string& json) {
  JsonValue root;
  try {
    root = parse_json(json);
  } catch (const std::exception& e) {
    throw robust::RobustError(robust::ErrorCode::kIoMalformed, "fleet_cost: malformed JSON",
                              e.what());
  }
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string() || schema->string != kFleetCostSchema) {
    throw robust::RobustError(robust::ErrorCode::kIoMalformed, "fleet_cost: schema mismatch",
                              schema != nullptr && schema->is_string() ? schema->string : "");
  }
  FleetCostReport report;
  const JsonValue* run_id = root.find("run_id");
  if (run_id != nullptr && run_id->is_string()) report.run_id = run_id->string;
  report.items = static_cast<std::int64_t>(number_at(root, "items"));
  report.wall_ms = number_at(root, "wall_ms");
  report.work_units = static_cast<std::int64_t>(number_at(root, "work_units"));
  const JsonValue* counters = root.find("counters");
  if (counters != nullptr) report.counters = parse_counters(*counters, "counters");
  const JsonValue* shards = root.find("shards");
  if (shards == nullptr || !shards->is_array()) {
    throw robust::RobustError(robust::ErrorCode::kIoMalformed, "fleet_cost: missing shards", "");
  }
  for (const JsonValue& sv : shards->array) {
    ShardCostSummary s;
    s.shard = static_cast<long>(number_at(sv, "shard"));
    s.items = static_cast<std::int64_t>(number_at(sv, "items"));
    s.restarts = static_cast<std::int64_t>(number_at(sv, "restarts"));
    s.wall_ms = number_at(sv, "wall_ms");
    s.work_units = static_cast<std::int64_t>(number_at(sv, "work_units"));
    s.max_item = static_cast<std::int64_t>(number_at(sv, "max_item"));
    s.max_item_wall_ms = number_at(sv, "max_item_wall_ms");
    report.shards.push_back(std::move(s));
  }
  const JsonValue* rows = root.find("rows");
  if (rows == nullptr || !rows->is_array()) {
    throw robust::RobustError(robust::ErrorCode::kIoMalformed, "fleet_cost: missing rows", "");
  }
  for (const JsonValue& rv : rows->array) {
    CostRow row;
    row.index = static_cast<std::int64_t>(number_at(rv, "index"));
    row.shard = static_cast<long>(number_at(rv, "shard"));
    row.incarnation = static_cast<long>(number_at(rv, "incarnation"));
    row.wall_ms = number_at(rv, "wall_ms");
    const JsonValue* work = rv.find("work");
    if (work != nullptr) row.work = parse_counters(*work, "work");
    report.rows.push_back(std::move(row));
  }
  return report;
}

}  // namespace speedscale::obs::fleet
