// Cross-process fleet trace events: the correlation substrate of the
// fleet observability plane.
//
// A fleet run spans one supervisor process and N worker processes, each
// possibly reincarnated several times.  No single process sees the whole
// timeline, so every process *journals* what it did as self-contained JSONL
// events (schema speedscale.fleet_events/1), stamped with the run's
// correlation tags:
//
//   {"detail":"","incarnation":1,"item":5,"kind":"item_end","run_id":"r1",
//    "shard":0,"ts":0.004,"wall_ms":1.25}
//
// Workers journal worker_start / item_begin / item_end / worker_exit into a
// per-shard event file (append + flush per line — the shard-log durability
// discipline, so a SIGKILLed worker's events survive to the exact item it
// died in).  The supervisor journals its policy decisions — spawn / exit /
// restart / hung_kill / degraded / interrupt / merge — into its own file.
// After the run, the supervisor ingests every file and emits one merged
// Perfetto trace (src/obs/fleet/fleet_trace.h) with a process track per
// worker *incarnation*, so a chaos run renders as a single timeline.
//
// Timestamps come from the logger clock domain (src/obs/log/logger.h): unix
// seconds normally, deterministic per-process sequence time under
// SPEEDSCALE_LOG_FIXED_CLOCK=1 — which is what lets golden tests pin a
// merged chaos trace byte-for-byte.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace speedscale::obs::fleet {

inline constexpr const char* kFleetEventsSchema = "speedscale.fleet_events/1";

/// What happened.  Worker kinds first, then supervisor kinds.
enum class FleetEventKind : std::uint8_t {
  kWorkerStart,   ///< incarnation began (detail = "resumed=N")
  kItemBegin,     ///< item computation started
  kItemEnd,       ///< item committed to the shard log (wall_ms set)
  kWorkerExit,    ///< clean exit (detail = "ok" | "interrupted")
  kSpawn,         ///< supervisor forked an incarnation
  kExit,          ///< supervisor reaped a worker (detail = "exit N"|"signal")
  kRestart,       ///< restart scheduled (detail = "backoff N ms")
  kHungKill,      ///< watchdog SIGKILLed a stale worker
  kDegraded,      ///< shard fell to the in-process ladder
  kInterrupt,     ///< stop_flag honored; fleet stopping
  kMerge,         ///< index-ordered merge ran
};

/// Stable lower-case name ("worker_start", ..., "merge").
[[nodiscard]] const char* fleet_event_kind_name(FleetEventKind kind);

struct FleetEvent {
  FleetEventKind kind = FleetEventKind::kWorkerStart;
  double ts = 0.0;
  std::string run_id;
  long shard = -1;        ///< -1 = the supervisor itself
  long incarnation = -1;  ///< worker incarnation the event describes
  std::int64_t item = -1;
  double wall_ms = 0.0;
  std::string detail;
};

/// One speedscale.fleet_events/1 line (no trailing newline); keys sorted,
/// byte-stable for equal events.
[[nodiscard]] std::string fleet_event_json(const FleetEvent& ev);

/// Parses one event line.  False on the header line or a torn/corrupt line.
[[nodiscard]] bool parse_fleet_event(const std::string& line, FleetEvent& out);

/// Append-mode event journal: one flushed line per event, header on a fresh
/// file.  Same durability stance as ShardLogWriter — hold it open for the
/// incarnation, lose at most the line being written.  Throws RobustError
/// (kIoMalformed) on open failure; append failures are swallowed (events are
/// observability, never state — losing one must not kill a worker).
class FleetEventLog {
 public:
  explicit FleetEventLog(std::string path);
  void append(const FleetEvent& ev);
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream file_;
};

/// Loads every valid event line, in file order.  Missing file = empty.
/// Torn/corrupt lines are skipped and counted into `skipped_lines` — the
/// lenient loader contract of load_shard_log.
[[nodiscard]] std::vector<FleetEvent> load_fleet_events(const std::string& path,
                                                        std::size_t* skipped_lines = nullptr);

/// Event timestamp source in the logger's clock domain: unix seconds
/// normally, seq/1000.0 per process when the fixed clock is installed
/// (Logger::fixed_clock()) — same rule, separate sequence, so log records
/// and journal events stay independently deterministic.
class EventClock {
 public:
  [[nodiscard]] double next();

 private:
  std::uint64_t seq_ = 0;
};

}  // namespace speedscale::obs::fleet
