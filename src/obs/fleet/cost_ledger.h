// Per-item cost ledger: where did the fleet's wall clock and work go?
//
// Every shard-log line already records what an item *produced*; the ledger
// records what it *cost* — measured wall time plus the item's private
// work-counter delta (the ShardMetricsScope capture) — attributed to the
// (shard, incarnation) that actually computed it.  The supervisor builds one
// ledger from the merged shard logs after a run and
//
//   * embeds it (speedscale.fleet_cost/1, sorted keys, byte-diffable) in
//     fleet_state.json, so the ledger survives next to the run it explains;
//   * prints it as the --fleet-report table: per-shard wall / work / costliest
//     item, then the fleet totals and the top items by wall time — the
//     "which shard is slow and why" answer without opening a trace.
//
// Deliberately decoupled from robust/supervisor types: the caller converts
// its item records to CostRow, so the ledger also prices serial runs, and
// the obs layer keeps its no-upward-dependency rule.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace speedscale::obs::fleet {

inline constexpr const char* kFleetCostSchema = "speedscale.fleet_cost/1";

/// One item's cost, attributed to the incarnation that committed it.
struct CostRow {
  std::int64_t index = -1;
  long shard = -1;
  long incarnation = -1;
  double wall_ms = 0.0;
  /// The item's private counter delta (name -> count), as captured by
  /// ShardMetricsScope around the item's computation.
  std::map<std::string, std::int64_t> work;

  /// Scalar work proxy: the sum of all counter deltas.  Coarse by design —
  /// it ranks items within one run, where every item increments the same
  /// counter families.
  [[nodiscard]] std::int64_t work_units() const;
};

/// Per-shard aggregate.
struct ShardCostSummary {
  long shard = -1;
  std::int64_t items = 0;
  std::int64_t restarts = 0;  ///< incarnations beyond the first seen
  double wall_ms = 0.0;
  std::int64_t work_units = 0;
  std::int64_t max_item = -1;    ///< costliest item by wall
  double max_item_wall_ms = 0.0;
};

struct FleetCostReport {
  std::string run_id;
  std::int64_t items = 0;
  double wall_ms = 0.0;
  std::int64_t work_units = 0;
  /// Fleet-wide per-counter totals (union over all rows).
  std::map<std::string, std::int64_t> counters;
  std::vector<ShardCostSummary> shards;  ///< sorted by shard
  std::vector<CostRow> rows;             ///< sorted by item index

  /// speedscale.fleet_cost/1 document (sorted keys, byte-diffable).  Row
  /// `work` maps are included in full — the grids this repo sweeps are small
  /// enough that fidelity beats compression.
  [[nodiscard]] std::string to_json() const;

  /// Human-readable --fleet-report table: shard summaries, fleet totals,
  /// and the `top` costliest items by wall time.
  [[nodiscard]] std::string table(std::size_t top = 5) const;
};

/// Aggregates rows (any order) into a report: rows are sorted by index,
/// shard summaries derived, totals summed.  `restarts` per shard counts
/// distinct incarnations beyond the smallest seen — an item-producing
/// incarnation ladder, not the supervisor's spawn count (which also counts
/// incarnations that died before committing anything).
[[nodiscard]] FleetCostReport build_cost_report(std::vector<CostRow> rows, std::string run_id);

/// Parses a speedscale.fleet_cost/1 document back into a report (used by the
/// round-trip tests and the fleet_state.json reader).  Throws RobustError
/// (kIoMalformed) on schema mismatch or malformed structure.
[[nodiscard]] FleetCostReport parse_cost_report(const std::string& json);

}  // namespace speedscale::obs::fleet
