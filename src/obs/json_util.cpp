#include "src/obs/json_util.h"

#include <algorithm>
#include <clocale>
#include <cmath>
#include <cstdio>

namespace speedscale::obs {

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += v > 0 ? "\"inf\"" : (v < 0 ? "\"-inf\"" : "\"nan\"");
    return;
  }
  char buf[40];
  const int n = std::snprintf(buf, sizeof(buf), "%.17g", v);
  // %.17g honours the process's LC_NUMERIC decimal separator; JSON demands
  // '.', so artifacts stay byte-identical under e.g. a de_DE locale.
  const char sep = std::localeconv()->decimal_point[0];
  if (sep != '.') std::replace(buf, buf + n, sep, '.');
  out.append(buf, static_cast<std::size_t>(n));
}

void append_json_string(std::string& out, const char* s) {
  out += '"';
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void append_json_string(std::string& out, const std::string& s) {
  append_json_string(out, s.c_str());
}

}  // namespace speedscale::obs
