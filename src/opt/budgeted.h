// Flow-time minimization under a hard energy budget (paper reference [4],
// Pruhs-Uthaisombut-Woeginger, "Getting the best response for your erg").
//
// minimize F(x)  subject to  E(x) <= B.
//
// Both F and E are convex in the per-slot volumes, so strong duality holds:
// sweep the Lagrange multiplier mu in  min mu*E + F  (one convex solve per
// mu, via solve_fractional_opt's energy_weight) and bisect on the achieved
// energy, which is non-increasing in mu.  The budget must be attainable:
// B must be at least the energy of the infinite-horizon "run arbitrarily
// slowly" limit is 0 for fractional flow?  No — slower processing raises
// flow but lowers energy, and any positive energy can finish the volume, so
// every B > 0 is feasible on a long enough horizon; practical horizons cap
// how slow the solver can go, and the result reports the achieved energy.
#pragma once

#include "src/core/instance.h"
#include "src/opt/convex_opt.h"

namespace speedscale {

struct BudgetedResult {
  double flow = 0.0;       ///< achieved fractional flow-time
  double energy = 0.0;     ///< achieved energy (<= budget + tolerance)
  double multiplier = 0.0; ///< Lagrange multiplier mu at the solution
  int solves = 0;          ///< convex solves performed
};

/// Minimizes fractional flow subject to energy <= budget, by bisection on
/// the Lagrange multiplier.  `rel_tol` is the acceptable relative budget
/// mismatch.  Throws ModelError for non-positive budgets.
[[nodiscard]] BudgetedResult solve_flow_under_energy_budget(const Instance& instance,
                                                            double alpha, double budget,
                                                            const ConvexOptParams& base = {},
                                                            double rel_tol = 0.02);

}  // namespace speedscale
