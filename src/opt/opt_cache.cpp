#include "src/opt/opt_cache.h"

#include <algorithm>
#include <tuple>

#include "src/obs/metrics_registry.h"

namespace speedscale {

namespace {

thread_local OptSolveCache* t_active_cache = nullptr;

}  // namespace

bool OptSolveCache::Key::operator<(const Key& other) const {
  return std::tie(alpha, horizon, rel_tol, energy_weight, slots, max_iters, jobs) <
         std::tie(other.alpha, other.horizon, other.rel_tol, other.energy_weight, other.slots,
                  other.max_iters, other.jobs);
}

OptSolveCache::OptSolveCache(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {}

ConvexOptResult OptSolveCache::solve(const Instance& instance, double alpha,
                                     const ConvexOptParams& params) {
  Key key{alpha,       params.horizon,   params.rel_tol, params.energy_weight,
          params.slots, params.max_iters, {}};
  key.jobs.reserve(instance.size());
  for (const Job& j : instance.jobs()) key.jobs.push_back({j.release, j.volume, j.density});

  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      OBS_COUNT("opt.cache.hits", 1);
      return it->second;
    }
  }

  // Miss: solve outside the lock so shared-cache users (the certificate
  // prefix pre-solve) can make progress concurrently.
  const ConvexOptResult result = detail::solve_fractional_opt_uncached(instance, alpha, params);

  {
    std::lock_guard<std::mutex> lk(mu_);
    if (entries_.size() >= capacity_) {
      OBS_COUNT("opt.cache.evictions", static_cast<std::int64_t>(entries_.size()));
      entries_.clear();
    }
    entries_.emplace(std::move(key), result);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  OBS_COUNT("opt.cache.misses", 1);
  return result;
}

std::size_t OptSolveCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

OptSolveCache* active_opt_cache() noexcept { return t_active_cache; }

ScopedOptSolveCache::ScopedOptSolveCache(OptSolveCache* cache) : prev_(t_active_cache) {
  t_active_cache = cache;
}

ScopedOptSolveCache::~ScopedOptSolveCache() { t_active_cache = prev_; }

}  // namespace speedscale
