#include "src/opt/budgeted.h"

#include <algorithm>
#include <cmath>

namespace speedscale {

BudgetedResult solve_flow_under_energy_budget(const Instance& instance, double alpha,
                                              double budget, const ConvexOptParams& base,
                                              double rel_tol) {
  if (!(budget > 0.0)) throw ModelError("solve_flow_under_energy_budget: budget must be > 0");
  BudgetedResult out;
  if (instance.empty()) return out;

  const auto solve_mu = [&](double mu) {
    ConvexOptParams p = base;
    p.energy_weight = mu;
    // A slow (high-mu) solution stretches far beyond the unconstrained
    // horizon; widen it with the multiplier.
    if (p.horizon <= 0.0 && mu > 1.0) {
      const ConvexOptResult probe = solve_fractional_opt(instance, alpha, base);
      p.horizon = 0.0;  // keep auto, but scale slots' reach via horizon:
      p.horizon = 3.0 * std::pow(mu, 1.0 / alpha) *
                  (probe.horizon > 0.0 ? probe.horizon / 3.0 : 1.0);
    }
    ++out.solves;
    return solve_fractional_opt(instance, alpha, p);
  };

  // Bracket mu: energy is non-increasing in mu.
  double mu_lo = 1e-4, mu_hi = 1e-4;
  ConvexOptResult r = solve_mu(mu_lo);
  if (r.energy <= budget) {
    // Budget is slack even at (almost) free energy: done.
    out.flow = r.fractional_flow;
    out.energy = r.energy;
    out.multiplier = mu_lo;
    return out;
  }
  for (int i = 0; i < 60; ++i) {
    mu_hi *= 4.0;
    r = solve_mu(mu_hi);
    if (r.energy <= budget) break;
    mu_lo = mu_hi;
  }
  if (r.energy > budget * (1.0 + rel_tol)) {
    throw ModelError("solve_flow_under_energy_budget: budget unattainable on this horizon");
  }

  // Bisect on log(mu) until the achieved energy matches the budget.
  ConvexOptResult best = r;
  double best_mu = mu_hi;
  for (int i = 0; i < 40; ++i) {
    const double mu = std::sqrt(mu_lo * mu_hi);
    const ConvexOptResult m = solve_mu(mu);
    if (m.energy <= budget) {
      mu_hi = mu;
      best = m;
      best_mu = mu;
    } else {
      mu_lo = mu;
    }
    if (std::abs(best.energy - budget) <= rel_tol * budget) break;
  }
  out.flow = best.fractional_flow;
  out.energy = best.energy;
  out.multiplier = best_mu;
  return out;
}

}  // namespace speedscale
