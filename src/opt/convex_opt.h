// Discretized offline optimum for the fractional objective.
//
// The offline problem "minimize energy + fractional weighted flow-time" is
// jointly convex in the per-slot volume allocations: with x[j,i] the volume
// of job j processed in slot i (width h, midpoint t_i),
//     G(x) = sum_i h * (sigma_i/h)^alpha + sum_{j,i} rho_j (t_i - r[j]) x[j,i],
//     sigma_i = sum_j x[j,i],
// subject to x >= 0, x[j,i] = 0 before j's release, sum_i x[j,i] = V[j].
// Each job's feasible set is a scaled simplex, so the program is solved by
// FISTA (accelerated projected gradient with backtracking and restart).
//
// This numerical OPT is the denominator for every theorem-level competitive
// ratio we report (Table 1); the exact single-job optimum (single_job_opt.h)
// validates it, and bench E12 studies its discretization error.  Note it is
// a valid *lower-bound reference* for the integral objective as well, since
// fractional OPT <= integral OPT.
#pragma once

#include <vector>

#include "src/core/instance.h"

namespace speedscale {

struct ConvexOptParams {
  int slots = 600;        ///< number of time slots
  double horizon = 0.0;   ///< 0 = auto: 3x the Algorithm C makespan
  int max_iters = 6000;
  double rel_tol = 1e-10; ///< stop when relative improvement stays below this
  /// Weight of the energy term: the solver minimizes
  /// energy_weight * E + F.  1.0 is the paper's objective; other values are
  /// the Lagrangian of the energy-budgeted problem (see budgeted.h).
  double energy_weight = 1.0;
};

struct ConvexOptResult {
  double energy = 0.0;
  double fractional_flow = 0.0;
  double objective = 0.0;
  int iterations = 0;
  double horizon = 0.0;
  std::vector<double> slot_speed;  ///< total machine speed per slot
};

/// Solves the discretized fractional offline optimum.  Consults the calling
/// thread's installed OptSolveCache (src/opt/opt_cache.h), when one exists,
/// before running FISTA — results are identical either way.
[[nodiscard]] ConvexOptResult solve_fractional_opt(const Instance& instance, double alpha,
                                                   const ConvexOptParams& params = {});

namespace detail {
/// The raw FISTA solve, bypassing any installed cache (the cache's own
/// miss path lands here — it must not recurse through the public entry).
[[nodiscard]] ConvexOptResult solve_fractional_opt_uncached(const Instance& instance, double alpha,
                                                            const ConvexOptParams& params);
}  // namespace detail

}  // namespace speedscale
