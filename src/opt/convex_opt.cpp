#include "src/opt/convex_opt.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "src/numerics/projection.h"
#include "src/opt/opt_cache.h"
#include "src/sim/c_machine.h"

namespace speedscale {

namespace {

struct Problem {
  const Instance& instance;
  double alpha;
  int n_slots;
  double h;                       ///< slot width
  double energy_weight = 1.0;
  std::vector<int> first_slot;    ///< per job: first allowed slot
  std::vector<double> mid;        ///< slot midpoints

  [[nodiscard]] std::size_t idx(JobId j, int i) const {
    return static_cast<std::size_t>(j) * static_cast<std::size_t>(n_slots) +
           static_cast<std::size_t>(i);
  }

  [[nodiscard]] double objective(const std::vector<double>& x, double* energy_out = nullptr,
                                 double* flow_out = nullptr) const {
    double energy = 0.0;
    for (int i = 0; i < n_slots; ++i) {
      double sigma = 0.0;
      for (std::size_t j = 0; j < instance.size(); ++j) {
        sigma += x[idx(static_cast<JobId>(j), i)];
      }
      // Momentum iterates (FISTA's y) may be infeasible; extend the energy
      // by 0 below zero speed, which keeps the objective convex and finite.
      energy += h * std::pow(std::max(sigma, 0.0) / h, alpha);
    }
    double flow = 0.0;
    for (const Job& j : instance.jobs()) {
      for (int i = first_slot[static_cast<std::size_t>(j.id)]; i < n_slots; ++i) {
        flow += j.density * (mid[static_cast<std::size_t>(i)] - j.release) * x[idx(j.id, i)];
      }
    }
    if (energy_out) *energy_out = energy;
    if (flow_out) *flow_out = flow;
    return energy_weight * energy + flow;
  }

  void gradient(const std::vector<double>& x, std::vector<double>& g) const {
    std::vector<double> marginal(static_cast<std::size_t>(n_slots));
    for (int i = 0; i < n_slots; ++i) {
      double sigma = 0.0;
      for (std::size_t j = 0; j < instance.size(); ++j) {
        sigma += x[idx(static_cast<JobId>(j), i)];
      }
      marginal[static_cast<std::size_t>(i)] =
          energy_weight * alpha * std::pow(std::max(sigma, 0.0) / h, alpha - 1.0);
    }
    std::fill(g.begin(), g.end(), 0.0);
    for (const Job& j : instance.jobs()) {
      for (int i = first_slot[static_cast<std::size_t>(j.id)]; i < n_slots; ++i) {
        g[idx(j.id, i)] = marginal[static_cast<std::size_t>(i)] +
                          j.density * (mid[static_cast<std::size_t>(i)] - j.release);
      }
    }
  }

  /// Projects each job's allocation onto its scaled simplex (allowed slots).
  void project(std::vector<double>& x) const {
    for (const Job& j : instance.jobs()) {
      const int f = first_slot[static_cast<std::size_t>(j.id)];
      std::span<double> row(x.data() + idx(j.id, f), static_cast<std::size_t>(n_slots - f));
      numerics::project_simplex(row, j.volume);
      // Slots before the release stay exactly zero.
      for (int i = 0; i < f; ++i) x[idx(j.id, i)] = 0.0;
    }
  }
};

}  // namespace

ConvexOptResult solve_fractional_opt(const Instance& instance, double alpha,
                                     const ConvexOptParams& params) {
  if (OptSolveCache* cache = active_opt_cache()) {
    return cache->solve(instance, alpha, params);
  }
  return detail::solve_fractional_opt_uncached(instance, alpha, params);
}

namespace detail {

ConvexOptResult solve_fractional_opt_uncached(const Instance& instance, double alpha,
                                              const ConvexOptParams& params) {
  if (instance.empty()) return {};
  double horizon = params.horizon;
  if (horizon <= 0.0) {
    const Schedule c = run_algorithm_c(instance, alpha);
    horizon = 3.0 * std::max(c.makespan(), 1e-12);
  }
  const int N = params.slots;
  Problem prob{instance, alpha, N, horizon / N, params.energy_weight, {}, {}};
  prob.first_slot.resize(instance.size());
  prob.mid.resize(static_cast<std::size_t>(N));
  for (int i = 0; i < N; ++i) {
    prob.mid[static_cast<std::size_t>(i)] = (static_cast<double>(i) + 0.5) * prob.h;
  }
  for (const Job& j : instance.jobs()) {
    int f = static_cast<int>(std::ceil(j.release / prob.h - 1e-12));
    f = std::min(f, N - 1);
    prob.first_slot[static_cast<std::size_t>(j.id)] = f;
  }

  const std::size_t dim = instance.size() * static_cast<std::size_t>(N);
  std::vector<double> x(dim, 0.0);
  // Feasible start: each job uniform over its allowed slots.
  for (const Job& j : instance.jobs()) {
    const int f = prob.first_slot[static_cast<std::size_t>(j.id)];
    const double per = j.volume / static_cast<double>(N - f);
    for (int i = f; i < N; ++i) x[prob.idx(j.id, i)] = per;
  }

  std::vector<double> x_prev = x;
  std::vector<double> y = x;
  std::vector<double> g(dim), cand(dim);
  double tk = 1.0;
  double lipschitz = 1.0;
  double best_obj = prob.objective(x);
  int stall = 0;
  int iter = 0;

  for (; iter < params.max_iters; ++iter) {
    prob.gradient(y, g);
    const double fy = prob.objective(y);
    // Backtracking line search on the FISTA majorization.
    double fx_new = 0.0;
    for (int bt = 0; bt < 60; ++bt) {
      for (std::size_t d = 0; d < dim; ++d) cand[d] = y[d] - g[d] / lipschitz;
      prob.project(cand);
      fx_new = prob.objective(cand);
      double lin = 0.0, quad = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        const double diff = cand[d] - y[d];
        lin += g[d] * diff;
        quad += diff * diff;
      }
      if (fx_new <= fy + lin + 0.5 * lipschitz * quad + 1e-14 * std::abs(fy)) break;
      lipschitz *= 2.0;
    }
    // Momentum with restart on non-descent.
    const double tk1 = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * tk * tk));
    const double mom = (tk - 1.0) / tk1;
    if (fx_new > best_obj) {
      // Restart: drop momentum, continue from the best point.
      tk = 1.0;
      y = cand;
      x_prev = cand;
      x = cand;
    } else {
      for (std::size_t d = 0; d < dim; ++d) y[d] = cand[d] + mom * (cand[d] - x_prev[d]);
      x_prev = x;
      x = cand;
      tk = tk1;
    }
    const double improvement = (best_obj - fx_new) / std::max(1.0, std::abs(best_obj));
    if (fx_new < best_obj) best_obj = fx_new;
    if (improvement < params.rel_tol) {
      if (++stall > 50) break;
    } else {
      stall = 0;
    }
    lipschitz *= 0.9;  // allow the step to grow back
  }

  ConvexOptResult out;
  out.iterations = iter;
  out.horizon = horizon;
  out.objective = prob.objective(x, &out.energy, &out.fractional_flow);
  out.slot_speed.resize(static_cast<std::size_t>(N));
  for (int i = 0; i < N; ++i) {
    double sigma = 0.0;
    for (std::size_t j = 0; j < instance.size(); ++j) {
      sigma += x[prob.idx(static_cast<JobId>(j), i)];
    }
    out.slot_speed[static_cast<std::size_t>(i)] = sigma / prob.h;
  }
  return out;
}

}  // namespace detail

}  // namespace speedscale
