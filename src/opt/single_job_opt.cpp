#include "src/opt/single_job_opt.h"

#include <cmath>

#include "src/core/types.h"

namespace speedscale {

double SingleJobFracOpt::speed_at(double t, double rho, double alpha) const {
  if (t < 0.0 || t > horizon) return 0.0;
  return std::pow(rho * (horizon - t) / alpha, 1.0 / (alpha - 1.0));
}

SingleJobFracOpt single_job_frac_opt(double volume, double rho, double alpha) {
  if (!(volume > 0.0) || !(rho > 0.0) || !(alpha > 1.0)) {
    throw ModelError("single_job_frac_opt: invalid parameters");
  }
  const double gamma = alpha / (alpha - 1.0);
  const double c = std::pow(rho / alpha, 1.0 / (alpha - 1.0));
  // V = c * T^gamma / gamma  =>  T = (gamma V / c)^{1/gamma}
  SingleJobFracOpt out;
  out.horizon = std::pow(gamma * volume / c, 1.0 / gamma);
  const double T = out.horizon;
  // energy = int (rho (T-t)/alpha)^{gamma} dt = (rho/alpha)^gamma T^{gamma+1}/(gamma+1)
  out.energy = std::pow(rho / alpha, gamma) * std::pow(T, gamma + 1.0) / (gamma + 1.0);
  // V(t) = c (T-t)^gamma / gamma; flow = rho int V = rho c T^{gamma+1}/(gamma (gamma+1))
  out.fractional_flow = rho * c * std::pow(T, gamma + 1.0) / (gamma * (gamma + 1.0));
  out.objective = out.energy + out.fractional_flow;
  return out;
}

SingleJobIntOpt single_job_int_opt(double volume, double rho, double alpha) {
  if (!(volume > 0.0) || !(rho > 0.0) || !(alpha > 1.0)) {
    throw ModelError("single_job_int_opt: invalid parameters");
  }
  const double weight = rho * volume;
  SingleJobIntOpt out;
  out.speed = std::pow(weight / (alpha - 1.0), 1.0 / alpha);
  out.horizon = volume / out.speed;
  out.energy = std::pow(out.speed, alpha) * out.horizon;
  out.integral_flow = weight * out.horizon;
  out.objective = out.energy + out.integral_flow;
  return out;
}

}  // namespace speedscale
