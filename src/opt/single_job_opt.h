// Closed-form offline optimum for a single job (P(s) = s^alpha).
//
// Fractional objective.  Minimize  int_0^T s(t)^alpha dt + rho int_0^T V(t) dt
// with V' = -s, V(0) = V, V(T) = 0, T free.  Pontryagin/Euler-Lagrange gives
// costate p(t) = rho (T - t) (p(T) = 0 from the free horizon) and
// alpha s^{alpha-1} = p, so
//     s(t) = (rho (T - t) / alpha)^{1/(alpha-1)},
// with the horizon fixed by the volume constraint
//     V = (rho/alpha)^{1/(alpha-1)} T^{gamma} / gamma,   gamma = alpha/(alpha-1).
// Energy and flow then integrate in closed form.
//
// Integral objective.  Minimize s^{alpha-1} V + W V / s over constant speeds
// (constant is optimal for a single job with a terminal-time penalty):
// s* = (W/(alpha-1))^{1/alpha}.
//
// These optima anchor the Table 1 / Figure 1 experiments: the single-job
// case is where the paper develops its whole analytical story (Section 1.2).
#pragma once

namespace speedscale {

/// Closed-form single-job fractional optimum.
struct SingleJobFracOpt {
  double horizon = 0.0;          ///< optimal completion time T
  double energy = 0.0;
  double fractional_flow = 0.0;
  double objective = 0.0;        ///< energy + fractional flow

  /// Optimal speed at time t in [0, horizon].
  double speed_at(double t, double rho, double alpha) const;
};

[[nodiscard]] SingleJobFracOpt single_job_frac_opt(double volume, double rho, double alpha);

/// Closed-form single-job integral optimum (constant speed).
struct SingleJobIntOpt {
  double speed = 0.0;
  double horizon = 0.0;
  double energy = 0.0;
  double integral_flow = 0.0;
  double objective = 0.0;
};

[[nodiscard]] SingleJobIntOpt single_job_int_opt(double volume, double rho, double alpha);

}  // namespace speedscale
