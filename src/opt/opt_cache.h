// Memoization cache for convex-relaxation OPT solves.
//
// The certificate ledger re-solves the released prefix at every release, the
// ratio harness certifies several algorithms over the *same* instance (so
// their prefix relaxations coincide), and the adversarial search re-probes
// coordinates it has visited before.  All of those solves are pure functions
// of (instance, alpha, params), so a scoped cache turns the repeats into
// lookups without touching any call site: solve_fractional_opt consults the
// thread's installed cache transparently.
//
// Keying and invalidation: the key is the *exact* solve input — alpha, every
// ConvexOptParams field, and each job's (release, volume, density) triple,
// compared bitwise (no hashing, no epsilon) in job order.  Any change to the
// instance, the discretization, or the solver tolerances is a different key;
// there is no time-based or version-based invalidation to get wrong.  When
// the capacity is reached the cache clears wholesale — a deterministic
// policy (no recency state), so cache behavior is a pure function of the
// solve sequence and hit/miss counters stay byte-stable across runs.
//
// Threading: a cache is internally locked and may be shared by worker
// threads (the certificate pre-solve does this); misses solve outside the
// lock.  Installation is per-thread (ScopedOptSolveCache), so parallel sweep
// shards with private caches never contend.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "src/opt/convex_opt.h"

namespace speedscale {

class OptSolveCache {
 public:
  /// `capacity` = max retained solves; the map clears wholesale when full.
  explicit OptSolveCache(std::size_t capacity = 256);

  /// Returns the cached result for this exact solve, computing (and
  /// retaining) it on miss.  Bumps the "opt.cache.hits"/"opt.cache.misses"
  /// work counters so cache effectiveness is pinned in the bench ledger.
  [[nodiscard]] ConvexOptResult solve(const Instance& instance, double alpha,
                                      const ConvexOptParams& params);

  [[nodiscard]] std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::size_t size() const;

 private:
  struct Key {
    double alpha;
    double horizon;
    double rel_tol;
    double energy_weight;
    int slots;
    int max_iters;
    std::vector<std::array<double, 3>> jobs;  // (release, volume, density) in id order

    bool operator<(const Key& other) const;
  };

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::map<Key, ConvexOptResult> entries_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// The cache solve_fractional_opt consults on this thread; null when none.
[[nodiscard]] OptSolveCache* active_opt_cache() noexcept;

/// Installs `cache` (may be null = uninstall) as the thread's active cache
/// for the scope; restores the previous one on destruction.  Nestable.
class ScopedOptSolveCache {
 public:
  explicit ScopedOptSolveCache(OptSolveCache* cache);
  ~ScopedOptSolveCache();
  ScopedOptSolveCache(const ScopedOptSolveCache&) = delete;
  ScopedOptSolveCache& operator=(const ScopedOptSolveCache&) = delete;

 private:
  OptSolveCache* prev_;
};

}  // namespace speedscale
