#include "src/algo/algorithm_nc_uniform.h"

#include <algorithm>

#include "src/core/kinematics.h"
#include "src/core/power.h"
#include "src/engine/online_metrics.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/sim/c_machine.h"

namespace speedscale {

NCUniformRun run_nc_uniform_detailed(const Instance& instance, double alpha) {
  if (!instance.uniform_density(1e-9)) {
    throw ModelError("run_nc_uniform: instance must have uniform density");
  }
  NCUniformRun out(alpha);
  out.offsets.assign(instance.size(), 0.0);
  out.starts.assign(instance.size(), 0.0);
  if (instance.empty()) {
    out.result.online = Metrics{};
    return out;
  }

  // Virtual clairvoyant run.  W^C(r[j]^-) only depends on jobs released
  // strictly before r[j], so running C on the full instance and taking left
  // limits is equivalent to the prefix simulation the paper describes — and
  // is causally available to NC, because FIFO order means every job released
  // before r[j] has been completed (volume revealed) before NC starts j.
  // It is a *virtual* run: its events do not belong in an NC trace.
  {
    obs::TraceSuppressGuard suppress_virtual_run;
    out.c_schedule = run_algorithm_c(instance, alpha);
  }
  OBS_COUNT("algo.nc_uniform.runs", 1);

  const PowerLawKinematics kin(alpha);
  Schedule& sched = out.result.schedule;
  double t = 0.0;
  const std::vector<JobId> fifo = instance.fifo_order();

  // Online objective accumulation, all closed-form: cumulative energy and
  // cumulative fractional flow *attributed to completed jobs* (a waiting
  // job's accrual is folded in at its own completion; see
  // docs/observability.md).  Always on — it feeds RunResult::online, the
  // streaming-metrics contract — and shared with the trace events, whose
  // emission stays tracing-gated.  Release events interleave in time order
  // via `next_rel`.
  const bool tracing = obs::tracing_enabled();
  engine::OnlineMetrics om;
  std::size_t next_rel = 0;
  const auto emit_releases_up_to = [&](double tau) {
    while (next_rel < fifo.size() && instance.job(fifo[next_rel]).release <= tau) {
      const Job& j = instance.job(fifo[next_rel]);
      TRACE_EVENT(.kind = obs::EventKind::kJobRelease, .t = j.release, .job = j.id,
                  .value = j.volume, .aux = j.density);
      ++next_rel;
    }
  };

  for (std::size_t pos = 0; pos < fifo.size(); ++pos) {
    const JobId jid = fifo[pos];
    const Job& job = instance.job(jid);
    // The paper assumes distinct release times.  Ties are handled as the
    // limit of infinitesimally-separated releases: the left limit excludes
    // the whole cohort released at r[j], so the weights of tied jobs that
    // precede j in FIFO order are added back (C would have processed none of
    // them in zero time).
    double offset = c_remaining_weight_left(out.c_schedule, job.release);
    for (std::size_t q = pos; q-- > 0;) {
      const Job& prev = instance.job(fifo[q]);
      if (prev.release != job.release) break;
      offset += prev.weight();
    }
    out.offsets[static_cast<std::size_t>(jid)] = offset;
    const double t_start = std::max(t, job.release);
    out.starts[static_cast<std::size_t>(jid)] = t_start;
    // One contiguous growth segment: U goes from the offset to offset + W[j].
    // (FIFO + work conservation: nothing preempts a started job.)
    const double u0 = offset;
    const double u1 = offset + job.weight();
    const double dt = kin.grow_time_to_weight(u0, u1, job.density);
    sched.append({t_start, t_start + dt, jid, SpeedLaw::kPowerGrow, u0, job.density});
    t = t_start + dt;
    sched.set_completion(jid, t);

    // Per-job closed forms: the energy of the growth segment is the C
    // energy of the weight band it sweeps (Lemma 3, per job), and the
    // job's whole-lifetime fractional flow is
    //   W_j (t_start - r_j) + u1 * dt - E_j  ==  E_j / (1 - 1/alpha)
    // (Lemma 4, per job) — the invariant tests replay exactly this.
    const double e_j = kin.grow_integral(u0, u1, job.density);
    om.add_energy(e_j);
    om.add_fractional_flow(job.weight() * (t_start - job.release) + u1 * dt - e_j);
    om.add_integral_flow(job.weight() * (t - job.release));
    if (tracing) {
      emit_releases_up_to(t_start);
      TRACE_EVENT(.kind = obs::EventKind::kSpeedChange, .t = t_start, .job = jid,
                  .value = kin.speed_at_weight(std::max(u0, 0.0)), .aux = u0);
      emit_releases_up_to(t);
      TRACE_EVENT(.kind = obs::EventKind::kJobComplete, .t = t, .job = jid,
                  .value = om.energy(), .aux = om.fractional_flow());
    }
  }
  if (tracing) emit_releases_up_to(kInf);

  const PowerLaw power(alpha);
  out.result.metrics = compute_metrics(instance, sched, power);
  out.result.online = om.metrics();
  return out;
}

RunResult run_nc_uniform(const Instance& instance, double alpha) {
  NCUniformRun run = run_nc_uniform_detailed(instance, alpha);
  return std::move(run.result);
}

}  // namespace speedscale
