#include "src/algo/algorithm_nc_uniform.h"

#include <algorithm>

#include "src/core/kinematics.h"
#include "src/core/power.h"
#include "src/sim/c_machine.h"

namespace speedscale {

NCUniformRun run_nc_uniform_detailed(const Instance& instance, double alpha) {
  if (!instance.uniform_density(1e-9)) {
    throw ModelError("run_nc_uniform: instance must have uniform density");
  }
  NCUniformRun out(alpha);
  out.offsets.assign(instance.size(), 0.0);
  out.starts.assign(instance.size(), 0.0);
  if (instance.empty()) return out;

  // Virtual clairvoyant run.  W^C(r[j]^-) only depends on jobs released
  // strictly before r[j], so running C on the full instance and taking left
  // limits is equivalent to the prefix simulation the paper describes — and
  // is causally available to NC, because FIFO order means every job released
  // before r[j] has been completed (volume revealed) before NC starts j.
  out.c_schedule = run_algorithm_c(instance, alpha);

  const PowerLawKinematics kin(alpha);
  Schedule& sched = out.result.schedule;
  double t = 0.0;
  const std::vector<JobId> fifo = instance.fifo_order();
  for (std::size_t pos = 0; pos < fifo.size(); ++pos) {
    const JobId jid = fifo[pos];
    const Job& job = instance.job(jid);
    // The paper assumes distinct release times.  Ties are handled as the
    // limit of infinitesimally-separated releases: the left limit excludes
    // the whole cohort released at r[j], so the weights of tied jobs that
    // precede j in FIFO order are added back (C would have processed none of
    // them in zero time).
    double offset = c_remaining_weight_left(out.c_schedule, job.release);
    for (std::size_t q = pos; q-- > 0;) {
      const Job& prev = instance.job(fifo[q]);
      if (prev.release != job.release) break;
      offset += prev.weight();
    }
    out.offsets[static_cast<std::size_t>(jid)] = offset;
    const double t_start = std::max(t, job.release);
    out.starts[static_cast<std::size_t>(jid)] = t_start;
    // One contiguous growth segment: U goes from the offset to offset + W[j].
    // (FIFO + work conservation: nothing preempts a started job.)
    const double u0 = offset;
    const double u1 = offset + job.weight();
    const double dt = kin.grow_time_to_weight(u0, u1, job.density);
    sched.append({t_start, t_start + dt, jid, SpeedLaw::kPowerGrow, u0, job.density});
    t = t_start + dt;
    sched.set_completion(jid, t);
  }

  const PowerLaw power(alpha);
  out.result.metrics = compute_metrics(instance, sched, power);
  return out;
}

RunResult run_nc_uniform(const Instance& instance, double alpha) {
  NCUniformRun run = run_nc_uniform_detailed(instance, alpha);
  return std::move(run.result);
}

}  // namespace speedscale
