// Deadline-based speed scaling: YDS and AVR (paper reference [3],
// Yao-Demers-Shenker, FOCS 1995).
//
// The paper situates its flow+energy objective against the older deadline
// model: jobs have hard windows [release, deadline] and the goal is minimum
// energy subject to feasibility.  This module implements:
//
//  * YDS (offline optimal): repeatedly find the *critical interval* — the
//    window [a, b] maximizing intensity
//        g(a,b) = (sum of volumes of jobs with [r,d] inside [a,b]) / avail,
//    where `avail` excludes time already claimed by earlier (denser)
//    critical intervals — run exactly those jobs there at speed g (EDF
//    inside the interval), then recurse on the rest.  Convexity of P makes
//    the resulting speed profile optimal for every convex power function.
//
//  * AVR (online): each job contributes its average rate V/(d-r) throughout
//    its window; the machine runs at the sum of contributions.  Feasible,
//    and O(2^alpha alpha^alpha)-competitive in energy.
//
// Both produce exact piecewise-constant schedules on our Schedule type.
#pragma once

#include <vector>

#include "src/core/schedule.h"
#include "src/core/types.h"

namespace speedscale {

/// A job with a hard completion window.
struct DeadlineJob {
  JobId id = kNoJob;
  double release = 0.0;
  double deadline = 0.0;
  double volume = 0.0;
};

/// Validated deadline instance (ids assigned 0..n-1 in order).
class DeadlineInstance {
 public:
  DeadlineInstance() = default;
  explicit DeadlineInstance(std::vector<DeadlineJob> jobs);

  [[nodiscard]] const std::vector<DeadlineJob>& jobs() const { return jobs_; }
  [[nodiscard]] std::size_t size() const { return jobs_.size(); }
  [[nodiscard]] bool empty() const { return jobs_.empty(); }

 private:
  std::vector<DeadlineJob> jobs_;
};

/// A deadline-scheduling run: piecewise-constant speeds + energy.
struct DeadlineRun {
  Schedule schedule;  ///< kConstant segments; completions recorded
  double energy = 0.0;

  explicit DeadlineRun(double alpha) : schedule(alpha) {}
};

/// Offline optimal (YDS).  Throws if any window is empty; the produced
/// schedule is feasibility-checked (each job inside its window).
[[nodiscard]] DeadlineRun run_yds(const DeadlineInstance& instance, double alpha);

/// Online AVR.  Runs jobs EDF at the summed average rate.
[[nodiscard]] DeadlineRun run_avr(const DeadlineInstance& instance, double alpha);

/// Online OA (Optimal Available): at every release, recompute the YDS
/// optimum for the *remaining* work (residual volumes, original deadlines)
/// as if no further jobs arrive, and follow it until the next release.
/// alpha^alpha-competitive in energy (Bansal-Kimbrel-Pruhs); always between
/// AVR and the offline YDS in practice.
[[nodiscard]] DeadlineRun run_oa(const DeadlineInstance& instance, double alpha);

/// Verifies a deadline run: every job fully processed inside [r, d].
/// Throws ModelError on violation.
void validate_deadline_run(const DeadlineInstance& instance, const DeadlineRun& run,
                           double tol = 1e-6);

}  // namespace speedscale
