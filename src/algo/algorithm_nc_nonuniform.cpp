#include "src/algo/algorithm_nc_nonuniform.h"

#include <algorithm>
#include <cmath>

#include "src/core/kinematics.h"
#include "src/core/power.h"
#include "src/engine/online_metrics.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/sim/c_machine.h"

namespace speedscale {

Instance make_current_instance(const Instance& rounded, const std::vector<double>& processed,
                               double t, std::vector<JobId>* kept) {
  std::vector<Job> jobs;
  if (kept) kept->clear();
  for (const Job& j : rounded.jobs()) {
    const double p = processed[static_cast<std::size_t>(j.id)];
    if (j.release <= t && p > 0.0) {
      Job cur = j;
      cur.volume = p;  // the weight NC has processed so far, at rounded density
      jobs.push_back(cur);
      if (kept) kept->push_back(j.id);
    }
  }
  return Instance(std::move(jobs));
}

double c_speed_on_current_instance(const Instance& rounded, const std::vector<double>& processed,
                                   double t, double alpha) {
  // A probe simulation, not part of any real run: keep it out of traces.
  obs::TraceSuppressGuard suppress_probe;
  const Instance current = make_current_instance(rounded, processed, t);
  if (current.empty()) return 0.0;
  CMachine m(alpha);
  for (const Job& j : current.jobs()) m.add_job(j);
  m.advance_to(t);
  const PowerLawKinematics kin(alpha);
  return kin.speed_at_weight(m.remaining_weight());
}

CurrentInstanceOracle::CurrentInstanceOracle(const Instance& rounded, double alpha)
    : rounded_(rounded), kin_(alpha) {
  const std::size_t n = rounded.size();
  by_release_ = rounded.fifo_order();
  std::vector<JobId> pri(n);
  for (std::size_t i = 0; i < n; ++i) pri[i] = static_cast<JobId>(i);
  std::sort(pri.begin(), pri.end(), [&](JobId a, JobId b) {
    const Job& ja = rounded.job(a);
    const Job& jb = rounded.job(b);
    if (ja.density != jb.density) return ja.density > jb.density;
    if (ja.release != jb.release) return ja.release < jb.release;
    return a < b;
  });
  priority_rank_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) priority_rank_[static_cast<std::size_t>(pri[i])] = static_cast<int>(i);
  rem_.assign(n, 0.0);
  released_.assign(n, false);
}

double CurrentInstanceOracle::c_speed(const std::vector<double>& processed, double t) {
  // Replay Algorithm C on I(t): jobs released at or before t whose processed
  // weight is positive, with volume = processed weight / rounded density...
  // (volumes in I(t) are the processed volumes; weights are rho * volume).
  const std::size_t n = rounded_.size();
  std::fill(released_.begin(), released_.end(), false);
  double W = 0.0;
  double tcur = 0.0;

  // Pointer over releases, filtered to jobs that exist in I(t).
  std::size_t ptr = 0;
  const auto next_relevant = [&]() -> std::size_t {
    while (ptr < n) {
      const Job& j = rounded_.job(by_release_[ptr]);
      if (j.release > t) return n;  // later jobs are not part of I(t)
      if (processed[static_cast<std::size_t>(j.id)] > 0.0) return ptr;
      ++ptr;
    }
    return n;
  };
  const auto release_due = [&]() {
    for (std::size_t p = next_relevant(); p < n; p = next_relevant()) {
      const Job& j = rounded_.job(by_release_[p]);
      if (j.release > tcur) break;
      const auto idx = static_cast<std::size_t>(j.id);
      released_[idx] = true;
      rem_[idx] = processed[idx];
      W += j.density * rem_[idx];
      ++ptr;
    }
  };
  const auto pick_current = [&]() -> JobId {
    JobId best = kNoJob;
    int best_rank = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!released_[i] || rem_[i] <= 0.0) continue;
      const int r = priority_rank_[i];
      if (best == kNoJob || r < best_rank) {
        best = static_cast<JobId>(i);
        best_rank = r;
      }
    }
    return best;
  };

  release_due();
  while (tcur < t) {
    const std::size_t p = next_relevant();
    const double next_release = (p < n) ? rounded_.job(by_release_[p]).release : kInf;
    const JobId cur = pick_current();
    if (cur == kNoJob) {
      if (next_release > t) return 0.0;  // drained before t
      tcur = next_release;
      release_due();
      continue;
    }
    const auto idx = static_cast<std::size_t>(cur);
    const double rho = rounded_.job(cur).density;
    const double w_done = W - rho * rem_[idx];
    const double t_complete = tcur + kin_.decay_time_to_weight(W, std::max(w_done, 0.0), rho);
    if (t_complete <= t && t_complete <= next_release) {
      W = std::max(0.0, w_done);
      rem_[idx] = 0.0;
      tcur = t_complete;
    } else if (next_release <= t) {
      const double w1 = kin_.decay_weight_after(W, rho, next_release - tcur);
      rem_[idx] = std::max(0.0, rem_[idx] - (W - w1) / rho);
      W = w1;
      tcur = next_release;
    } else {
      W = kin_.decay_weight_after(W, rho, t - tcur);
      tcur = t;
    }
    release_due();
  }
  return kin_.speed_at_weight(W);
}

double nc_eta_min(double alpha) {
  if (!(alpha > 1.0)) throw ModelError("nc_eta_min: alpha must exceed 1");
  return alpha / (alpha - 1.0) * std::pow(alpha, 1.0 / (alpha - 1.0));
}

NCNonUniformRun run_nc_nonuniform(const Instance& instance, double alpha,
                                  const NCNonUniformParams& params, const NCObserver& observer) {
  NCNonUniformRun out(alpha);
  out.rounded =
      params.round_densities ? instance.rounded_densities(params.beta) : instance;
  if (instance.empty()) {
    out.result.metrics = Metrics{};
    out.result.online = Metrics{};
    return out;
  }

  const Instance& rounded = out.rounded;
  const PowerLawKinematics kin(alpha);
  const std::size_t n = instance.size();

  // Reference scales (used for numerics only, never for decisions):
  // T_ref is the time a single-density clairvoyant run over the whole
  // rounded weight would take; s_ref anchors the epsilon excess speed.
  const double w_total = std::max(rounded.total_weight(), 1e-300);
  const double rho_min = rounded.min_density();
  const double t_ref = kin.decay_time_to_zero(w_total, rho_min) + rounded.max_release();
  const double s_ref = kin.speed_at_weight(w_total);
  const double eps_speed = params.epsilon_speed * s_ref;
  // The epsilon bootstrap has a boundary layer: starting a job from zero
  // processed weight at crawl speed eps, the current-instance clairvoyant
  // run stays busy at time t after the start only while
  //   (rho * eps * t)^b > b * rho * t,  b = 1 - 1/alpha,
  // i.e. t < t_layer = ((rho*eps)^b / (b*rho))^{1/(1-b)}.  The integrator
  // must take steps well inside that window or it never observes the
  // positive feedback and the run crawls forever (the continuous dynamics
  // escape the layer immediately; see nc_eta_min).
  const double b = kin.b();
  const double t_layer =
      std::pow(std::pow(rho_min * eps_speed, b) / (b * rho_min), 1.0 / (1.0 - b));
  const double min_dt =
      std::min(params.min_step * std::max(t_ref, 1e-12), std::max(0.05 * t_layer, 1e-15));

  std::vector<double> processed(n, 0.0);
  std::vector<bool> done(n, false);

  std::vector<double> releases;
  for (const Job& j : rounded.jobs()) releases.push_back(j.release);
  std::sort(releases.begin(), releases.end());

  // Highest rounded density first, FIFO within a density level.
  const auto pick_current = [&](double t) -> JobId {
    JobId best = kNoJob;
    for (const Job& j : rounded.jobs()) {
      const auto idx = static_cast<std::size_t>(j.id);
      if (done[idx] || j.release > t) continue;
      if (best == kNoJob) {
        best = j.id;
        continue;
      }
      const Job& bj = rounded.job(best);
      if (j.density > bj.density ||
          (j.density == bj.density &&
           (j.release < bj.release || (j.release == bj.release && j.id < bj.id)))) {
        best = j.id;
      }
    }
    return best;
  };

  const double eta = params.eta > 0.0 ? params.eta : 1.5 * nc_eta_min(alpha);
  CurrentInstanceOracle oracle(rounded, alpha);
  const auto speed_at = [&](double t, const std::vector<double>& p) {
    ++out.c_evaluations;
    return eta * oracle.c_speed(p, t) + eps_speed;
  };

  Schedule& sched = out.result.schedule;
  double t = 0.0;
  double t_last_event = 0.0;
  std::size_t remaining_jobs = n;
  std::vector<double> p_mid(n, 0.0);

  // Online objective accumulation: cumulative energy (sum of s^alpha dt over
  // the piecewise-constant recording, exact) and cumulative *total*
  // fractional flow via the active true-density weight.  Always maintained —
  // it feeds RunResult::online — with only the trace-event emission gated.
  const bool tracing = obs::tracing_enabled();
  OBS_COUNT("algo.nc_nonuniform.runs", 1);
  engine::OnlineMetrics om;
  double active_weight = 0.0;  // sum of true rho * remaining volume, released jobs
  const std::vector<JobId> fifo = instance.fifo_order();
  std::size_t rel_idx = 0;
  JobId traced_running = kNoJob;
  const auto emit_releases_up_to = [&](double tau) {
    while (rel_idx < fifo.size() && instance.job(fifo[rel_idx]).release <= tau) {
      const Job& j = instance.job(fifo[rel_idx]);
      active_weight += j.weight();
      TRACE_EVENT(.kind = obs::EventKind::kJobRelease, .t = j.release, .job = j.id,
                  .value = j.volume, .aux = j.density);
      ++rel_idx;
    }
  };
  emit_releases_up_to(0.0);

  while (remaining_jobs > 0) {
    if (out.steps > params.max_steps) {
      throw ModelError("run_nc_nonuniform: integrator step cap exceeded; "
                       "loosen step_growth/min_step");
    }
    const JobId cur = pick_current(t);
    auto next_rel_it = std::upper_bound(releases.begin(), releases.end(), t);
    const double next_rel = next_rel_it == releases.end() ? kInf : *next_rel_it;

    if (cur == kNoJob) {
      if (next_rel == kInf) {
        throw ModelError("run_nc_nonuniform: no active job and no pending release");
      }
      t = next_rel;
      t_last_event = t;
      emit_releases_up_to(t);
      if (observer) observer(t, processed);
      continue;
    }

    const Job& true_job = instance.job(cur);
    const auto idx = static_cast<std::size_t>(cur);

    double dt = std::max(min_dt, params.step_growth * (t - t_last_event));
    if (next_rel < kInf) dt = std::min(dt, next_rel - t);

    // Midpoint (RK2): probe the speed halfway through the tentative step.
    const double s1 = speed_at(t, processed);
    p_mid = processed;
    p_mid[idx] = std::min(true_job.volume, p_mid[idx] + 0.5 * s1 * dt);
    const double s2 = speed_at(t + 0.5 * dt, p_mid);

    // Completion inside the step?  (The engine — not the algorithm — knows
    // the true volume; this is exactly the non-clairvoyant oracle.)
    const double vrem = true_job.volume - processed[idx];
    bool completes = false;
    if (s2 * dt >= vrem) {
      dt = vrem / s2;
      completes = true;
    }

    sched.append({t, t + dt, cur, SpeedLaw::kConstant, s2, rounded.job(cur).density});
    if (tracing) {
      if (cur != traced_running) {
        if (traced_running != kNoJob && !done[static_cast<std::size_t>(traced_running)]) {
          TRACE_EVENT(.kind = obs::EventKind::kPreemption, .t = t, .job = traced_running,
                      .value = static_cast<double>(cur),
                      .aux = instance.job(traced_running).volume -
                             processed[static_cast<std::size_t>(traced_running)]);
        }
        TRACE_EVENT(.kind = obs::EventKind::kSpeedChange, .t = t, .job = cur, .value = s2,
                    .aux = processed[idx]);
        traced_running = cur;
      }
    }
    // Exact accumulation over the constant-speed step (matches the replay
    // in compute_metrics): the current job's volume shrinks linearly.
    const double dv = completes ? vrem : s2 * dt;
    om.add_energy(std::pow(s2, alpha) * dt);
    om.add_fractional_flow(active_weight * dt - 0.5 * true_job.density * s2 * dt * dt);
    active_weight = std::max(0.0, active_weight - true_job.density * dv);
    processed[idx] = completes ? true_job.volume : processed[idx] + s2 * dt;
    t += dt;
    ++out.steps;

    if (completes) {
      done[idx] = true;
      --remaining_jobs;
      sched.set_completion(cur, t);
      t_last_event = t;
      om.add_integral_flow(true_job.weight() * (t - true_job.release));
      TRACE_EVENT(.kind = obs::EventKind::kJobComplete, .t = t, .job = cur,
                  .value = om.energy(), .aux = om.fractional_flow());
      emit_releases_up_to(t);
      if (observer) observer(t, processed);
    } else if (next_rel < kInf && t >= next_rel - 1e-15 * std::max(1.0, next_rel)) {
      t_last_event = t;
      emit_releases_up_to(t);
      if (observer) observer(t, processed);
    }
  }
  OBS_COUNT("algo.nc_nonuniform.steps", out.steps);
  OBS_COUNT("algo.nc_nonuniform.c_evaluations", out.c_evaluations);

  const PowerLaw power(alpha);
  out.result.metrics = compute_metrics(instance, sched, power);
  out.result.online = om.metrics();
  return out;
}

}  // namespace speedscale
