// Extension: speed scaling with a bounded maximum speed.
//
// The paper cites the bounded-speed model of Bansal-Chan-Lam-Lee [6] among
// the variants its techniques relate to.  A hard cap s <= s_max is the
// monotone convex *extended* power function
//     P(s) = s^alpha for s <= s_max,  +infinity beyond,
// so the paper's general-power-function lemmas transfer:
//   * the clairvoyant rule "P(s) = W" becomes s = min(W^{1/alpha}, s_max);
//   * the non-clairvoyant rule "P(s) = offset + processed" caps the same way;
//   * Lemma 6 (measure-preserving speed profiles) and hence Lemma 3 (equal
//     energy) continue to hold — verified exactly by the tests;
//   * Lemma 4's flow ratio 1/(1-1/alpha) does NOT survive (it needs pure
//     s^alpha); bench_ext_bounded_speed maps the drift.
//
// Trajectories are piecewise {constant s_max} / {power-law decay or growth},
// so the simulation stays exact and closed-form.
#pragma once

#include <vector>

#include "src/algo/run_result.h"
#include "src/core/instance.h"

namespace speedscale {

/// A bounded-speed run; the weight trajectory needs its own bookkeeping
/// because capped (constant-speed) segments do not carry W in their params.
struct BoundedRun {
  RunResult result;
  std::vector<double> seg_w0;  ///< remaining/driving weight at each segment start

  explicit BoundedRun(double alpha) : result(alpha) {}
};

/// Clairvoyant Algorithm C with speed cap: HDF order, s = min(W^{1/a}, s_max).
[[nodiscard]] BoundedRun run_c_bounded(const Instance& instance, double alpha, double s_max);

/// Non-clairvoyant Algorithm NC (uniform density) with speed cap:
/// FIFO order, s = min((W^Cb(r_j^-) + processed_j)^{1/a}, s_max), with the
/// offset read from the *bounded* clairvoyant run (the capped analogue of
/// the virtual run in Section 3).
[[nodiscard]] BoundedRun run_nc_bounded(const Instance& instance, double alpha, double s_max);

/// Left limit of the remaining weight W(t^-) of a bounded clairvoyant run.
[[nodiscard]] double bounded_remaining_weight_left(const BoundedRun& run, double t);

}  // namespace speedscale
