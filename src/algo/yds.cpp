#include "src/algo/yds.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/core/power.h"

namespace speedscale {

DeadlineInstance::DeadlineInstance(std::vector<DeadlineJob> jobs) : jobs_(std::move(jobs)) {
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    DeadlineJob& j = jobs_[i];
    j.id = static_cast<JobId>(i);
    if (!(j.release >= 0.0) || !(j.deadline > j.release)) {
      throw ModelError("DeadlineInstance: job " + std::to_string(i) + " has an empty window");
    }
    if (!(j.volume > 0.0)) {
      throw ModelError("DeadlineInstance: job " + std::to_string(i) + " has no volume");
    }
  }
}

namespace {

/// A claimed piece of timeline: [t0, t1) runs at `speed` serving `round`.
struct Piece {
  double t0, t1;
  double speed;
  int round;
};

/// Total measure of claimed time inside [a, b].
double claimed_measure(const std::vector<Piece>& pieces, double a, double b) {
  double m = 0.0;
  for (const Piece& p : pieces) {
    m += std::max(0.0, std::min(p.t1, b) - std::max(p.t0, a));
  }
  return m;
}

/// The unclaimed sub-intervals of [a, b].
std::vector<std::pair<double, double>> free_intervals(std::vector<Piece> pieces, double a,
                                                      double b) {
  std::sort(pieces.begin(), pieces.end(),
            [](const Piece& x, const Piece& y) { return x.t0 < y.t0; });
  std::vector<std::pair<double, double>> out;
  double cur = a;
  for (const Piece& p : pieces) {
    if (p.t1 <= a || p.t0 >= b) continue;
    const double lo = std::max(p.t0, a);
    if (lo > cur) out.push_back({cur, lo});
    cur = std::max(cur, std::min(p.t1, b));
  }
  if (cur < b) out.push_back({cur, b});
  return out;
}

/// Preemptive EDF of `jobs` (indices into `inst`) over the given pieces at
/// speed `g`; appends kConstant segments and completion times.
void edf_fill(const DeadlineInstance& inst, const std::vector<JobId>& jobs, double g,
              const std::vector<std::pair<double, double>>& pieces,
              std::vector<Segment>* segments, std::map<JobId, double>* completions) {
  std::map<JobId, double> remaining;  // processing TIME left (volume / g)
  for (JobId j : jobs) remaining[j] = inst.jobs()[static_cast<std::size_t>(j)].volume / g;

  for (const auto& [p0, p1] : pieces) {
    double t = p0;
    while (t < p1 - 1e-15) {
      // EDF among released unfinished jobs of this round.
      JobId cur = kNoJob;
      double best_deadline = kInf;
      double next_release = kInf;
      for (const auto& [j, rem] : remaining) {
        if (rem <= 1e-15) continue;
        const DeadlineJob& dj = inst.jobs()[static_cast<std::size_t>(j)];
        if (dj.release > t + 1e-15) {
          next_release = std::min(next_release, dj.release);
          continue;
        }
        if (dj.deadline < best_deadline) {
          best_deadline = dj.deadline;
          cur = j;
        }
      }
      if (cur == kNoJob) {
        if (next_release >= p1) break;  // nothing to do in this piece anymore
        t = next_release;
        continue;
      }
      double t_end = std::min(p1, t + remaining[cur]);
      if (next_release < t_end) t_end = next_release;
      segments->push_back({t, t_end, cur, SpeedLaw::kConstant, g, 1.0});
      remaining[cur] -= (t_end - t);
      if (remaining[cur] <= 1e-15) {
        remaining[cur] = 0.0;
        (*completions)[cur] = t_end;
      }
      t = t_end;
    }
  }
}

}  // namespace

DeadlineRun run_yds(const DeadlineInstance& instance, double alpha) {
  DeadlineRun out(alpha);
  if (instance.empty()) return out;
  const std::size_t n = instance.size();
  std::vector<bool> assigned(n, false);
  std::vector<Piece> claimed;
  std::vector<Segment> segments;
  std::map<JobId, double> completions;
  int round = 0;

  std::size_t left = n;
  while (left > 0) {
    // Find the critical interval among (release, deadline) candidate pairs.
    double best_g = -1.0, best_a = 0.0, best_b = 0.0;
    for (const DeadlineJob& ja : instance.jobs()) {
      for (const DeadlineJob& jb : instance.jobs()) {
        const double a = ja.release, b = jb.deadline;
        if (b <= a) continue;
        double vol = 0.0;
        for (const DeadlineJob& j : instance.jobs()) {
          if (!assigned[static_cast<std::size_t>(j.id)] && j.release >= a && j.deadline <= b) {
            vol += j.volume;
          }
        }
        if (vol <= 0.0) continue;
        const double avail = (b - a) - claimed_measure(claimed, a, b);
        if (avail <= 1e-12 * (b - a)) {
          throw ModelError("run_yds: no available time in a loaded interval");
        }
        const double g = vol / avail;
        if (g > best_g) {
          best_g = g;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_g <= 0.0) throw ModelError("run_yds: internal error, no critical interval");

    // Claim the interval's free time at speed g and EDF the critical set.
    std::vector<JobId> members;
    for (const DeadlineJob& j : instance.jobs()) {
      if (!assigned[static_cast<std::size_t>(j.id)] && j.release >= best_a &&
          j.deadline <= best_b) {
        members.push_back(j.id);
        assigned[static_cast<std::size_t>(j.id)] = true;
        --left;
      }
    }
    const auto pieces = free_intervals(claimed, best_a, best_b);
    for (const auto& [p0, p1] : pieces) claimed.push_back({p0, p1, best_g, round});
    edf_fill(instance, members, best_g, pieces, &segments, &completions);
    ++round;
  }

  std::sort(segments.begin(), segments.end(),
            [](const Segment& x, const Segment& y) { return x.t0 < y.t0; });
  for (const Segment& s : segments) out.schedule.append(s);
  for (const auto& [j, t] : completions) out.schedule.set_completion(j, t);
  const PowerLaw power(alpha);
  for (const Segment& s : out.schedule.segments()) {
    out.energy += power.power(s.param) * s.duration();
  }
  return out;
}

DeadlineRun run_avr(const DeadlineInstance& instance, double alpha) {
  DeadlineRun out(alpha);
  if (instance.empty()) return out;
  // Breakpoints of the AVR profile.
  std::vector<double> cuts;
  for (const DeadlineJob& j : instance.jobs()) {
    cuts.push_back(j.release);
    cuts.push_back(j.deadline);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<Segment> segments;
  std::map<JobId, double> completions;
  std::vector<double> remaining(instance.size());
  for (const DeadlineJob& j : instance.jobs()) {
    remaining[static_cast<std::size_t>(j.id)] = j.volume;
  }

  for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
    const double a = cuts[c], b = cuts[c + 1];
    // Profile speed: sum of average rates of jobs whose window covers [a,b].
    double s = 0.0;
    for (const DeadlineJob& j : instance.jobs()) {
      if (j.release <= a + 1e-15 && j.deadline >= b - 1e-15) {
        s += j.volume / (j.deadline - j.release);
      }
    }
    if (s <= 0.0) continue;
    // EDF at speed s within [a, b].
    double t = a;
    while (t < b - 1e-15) {
      JobId cur = kNoJob;
      double best_deadline = kInf;
      for (const DeadlineJob& j : instance.jobs()) {
        if (remaining[static_cast<std::size_t>(j.id)] <= 1e-15) continue;
        if (j.release > t + 1e-15) continue;
        if (j.deadline < best_deadline) {
          best_deadline = j.deadline;
          cur = j.id;
        }
      }
      if (cur == kNoJob) break;  // worked ahead; idle until next breakpoint
      const double need = remaining[static_cast<std::size_t>(cur)] / s;
      const double t_end = std::min(b, t + need);
      segments.push_back({t, t_end, cur, SpeedLaw::kConstant, s, 1.0});
      remaining[static_cast<std::size_t>(cur)] -= s * (t_end - t);
      if (remaining[static_cast<std::size_t>(cur)] <= 1e-12) {
        remaining[static_cast<std::size_t>(cur)] = 0.0;
        completions[cur] = t_end;
      }
      t = t_end;
    }
  }

  for (const Segment& s : segments) out.schedule.append(s);
  for (const auto& [j, t] : completions) out.schedule.set_completion(j, t);
  const PowerLaw power(alpha);
  for (const Segment& s : out.schedule.segments()) {
    out.energy += power.power(s.param) * s.duration();
  }
  return out;
}

DeadlineRun run_oa(const DeadlineInstance& instance, double alpha) {
  DeadlineRun out(alpha);
  if (instance.empty()) return out;

  // Distinct release epochs, in order.
  std::vector<double> releases;
  for (const DeadlineJob& j : instance.jobs()) releases.push_back(j.release);
  std::sort(releases.begin(), releases.end());
  releases.erase(std::unique(releases.begin(), releases.end()), releases.end());

  std::vector<double> remaining(instance.size(), 0.0);
  std::vector<Segment> segments;
  std::map<JobId, double> completions;

  for (std::size_t e = 0; e < releases.size(); ++e) {
    const double t0 = releases[e];
    const double t1 = (e + 1 < releases.size()) ? releases[e + 1] : kInf;
    for (const DeadlineJob& j : instance.jobs()) {
      if (j.release == t0) remaining[static_cast<std::size_t>(j.id)] = j.volume;
    }
    // Residual instance: released jobs with work left, windows [t0, d].
    std::vector<DeadlineJob> residual;
    std::vector<JobId> orig;
    for (const DeadlineJob& j : instance.jobs()) {
      const double rem = remaining[static_cast<std::size_t>(j.id)];
      if (j.release <= t0 && rem > 1e-12) {
        residual.push_back(DeadlineJob{kNoJob, t0, j.deadline, rem});
        orig.push_back(j.id);
      }
    }
    if (residual.empty()) continue;
    const DeadlineRun plan = run_yds(DeadlineInstance(std::move(residual)), alpha);
    // Follow the plan until the next release.
    for (const Segment& seg : plan.schedule.segments()) {
      if (seg.t0 >= t1) break;
      Segment cut = seg;
      cut.t1 = std::min(seg.t1, t1);
      cut.job = orig[static_cast<std::size_t>(seg.job)];
      segments.push_back(cut);
      const double done = cut.param * cut.duration();
      double& rem = remaining[static_cast<std::size_t>(cut.job)];
      rem = std::max(0.0, rem - done);
      if (rem <= 1e-12) {
        rem = 0.0;
        completions[cut.job] = cut.t1;
      }
    }
  }

  std::sort(segments.begin(), segments.end(),
            [](const Segment& x, const Segment& y) { return x.t0 < y.t0; });
  for (const Segment& s : segments) out.schedule.append(s);
  for (const auto& [j, t] : completions) out.schedule.set_completion(j, t);
  const PowerLaw power(alpha);
  for (const Segment& s : out.schedule.segments()) {
    out.energy += power.power(s.param) * s.duration();
  }
  return out;
}

void validate_deadline_run(const DeadlineInstance& instance, const DeadlineRun& run,
                           double tol) {
  std::vector<double> processed(instance.size(), 0.0);
  for (const Segment& s : run.schedule.segments()) {
    if (s.job == kNoJob) continue;
    const DeadlineJob& j = instance.jobs().at(static_cast<std::size_t>(s.job));
    if (s.t0 < j.release - tol || s.t1 > j.deadline + tol) {
      throw ModelError("validate_deadline_run: job processed outside its window");
    }
    processed[static_cast<std::size_t>(s.job)] += s.param * s.duration();
  }
  for (const DeadlineJob& j : instance.jobs()) {
    if (std::abs(processed[static_cast<std::size_t>(j.id)] - j.volume) >
        tol * std::max(1.0, j.volume)) {
      throw ModelError("validate_deadline_run: job volume not fully processed");
    }
  }
}

}  // namespace speedscale
