// Baseline schedulers for comparison and ablation.
//
//  * FixedSpeed: FIFO at a constant speed — the "no speed scaling" strawman.
//  * ActiveCount: processor sharing with P = (number of active jobs) — the
//    known-weight non-clairvoyant strategy family of Lam et al. [7] / Chan
//    et al. [11] (their speed rule needs weights, which for unit jobs is the
//    active count).  Included to populate the Table 1 context rows.
//  * NaiveNC: FIFO with P = (total processed weight of ALL jobs) — what one
//    gets by dropping the per-job clairvoyant offset from Algorithm NC's
//    speed rule.  The E9 ablation shows this breaks the exact energy /
//    flow-time identities and the competitive ratio degrades.
#pragma once

#include <map>

#include "src/algo/run_result.h"
#include "src/core/instance.h"

namespace speedscale {

/// FIFO at constant speed `speed`; idles when no job is active.
[[nodiscard]] RunResult run_fixed_speed(const Instance& instance, double alpha, double speed);

/// Result of the processor-sharing baseline (its schedule processes several
/// jobs simultaneously, which Segment cannot represent, so only the evaluated
/// objective and completions are returned; all quantities are exact).
struct SharedRun {
  Metrics metrics;
  std::map<JobId, double> completions;
  double makespan = 0.0;
};

/// Processor sharing at speed P^{-1}(n_active): each of the n active jobs is
/// processed at rate s/n.  Exact (speed is constant between events).
[[nodiscard]] SharedRun run_active_count(const Instance& instance, double alpha);

/// LAPS (Latest Arrival Processor Sharing) with the active-count speed rule:
/// speed P^{-1}(n_active), shared equally among the ceil(beta_frac * n)
/// most recently released active jobs.  The scalable known-weight
/// non-clairvoyant strategy family (Edmonds-Pruhs; used in the speed-scaling
/// setting by Chan et al. [11]-adjacent work).  beta_frac = 1 degenerates to
/// run_active_count.  Exact (constant speed between events).
[[nodiscard]] SharedRun run_laps(const Instance& instance, double alpha,
                                 double beta_frac = 0.5);

/// FIFO with P(s) = total processed weight (no per-job clairvoyant offset).
[[nodiscard]] RunResult run_naive_nc(const Instance& instance, double alpha);

/// Weighted round robin for the *known-weight* non-clairvoyant model (the
/// other non-clairvoyant column of Table 1; Lam et al. [7]): every active
/// job is processed simultaneously with speed share proportional to its
/// (known, full) weight, and the machine's power equals the total weight of
/// active jobs.  For jobs all released at time 0, [7] proves
/// (2 - 1/alpha)^2-competitiveness.  Exact (constant speed between events).
[[nodiscard]] SharedRun run_wrr_known_weight(const Instance& instance, double alpha);

/// The classic non-clairvoyant guess-and-double strawman: process each job
/// (FIFO) in phases; phase i guesses the remaining volume is g0 * 2^i and
/// runs at the constant speed that is integral-optimal for a job of that
/// size, s_i = (rho * g_i / (alpha-1))^{1/alpha}, until the phase's volume
/// is processed or the job completes.  Exact (constant-speed segments).
/// Included to contrast with Algorithm NC, which needs no guessing.
[[nodiscard]] RunResult run_doubling_nc(const Instance& instance, double alpha,
                                        double initial_guess = 0.125);

}  // namespace speedscale
