// The paper's proven competitive ratios (Table 1), as code.
//
// Benches print these next to measured ratios; tests assert the measured
// ratios respect them (with numerical-OPT slack where OPT is numerical).
#pragma once

#include <cmath>

namespace speedscale::bounds {

/// Theorem 1 (Bansal-Chan-Pruhs): Algorithm C, fractional objective.
inline double c_fractional(double /*alpha*/) { return 2.0; }

/// Theorem 5: Algorithm NC, uniform density, fractional objective.
inline double nc_uniform_fractional(double alpha) { return 2.0 + 1.0 / (alpha - 1.0); }

/// Theorem 9: Algorithm NC, uniform density, integral objective.
inline double nc_uniform_integral(double alpha) { return 3.0 + 1.0 / (alpha - 1.0); }

/// Lemma 4: flow(NC) = flow(C) / (1 - 1/alpha) exactly.
inline double nc_over_c_flow(double alpha) { return 1.0 / (1.0 - 1.0 / alpha); }

/// Lemma 8: integral flow of NC <= (1 + (1 - 1/alpha)) * fractional flow.
inline double nc_integral_over_fractional_flow(double alpha) { return 2.0 - 1.0 / alpha; }

/// Lemma 15: the frac->int reduction multiplies the guarantee by
/// max((1+eps)^alpha, 1 + 1/eps).
inline double reduction_factor(double alpha, double eps) {
  return std::max(std::pow(1.0 + eps, alpha), 1.0 + 1.0 / eps);
}

/// The eps minimizing the Lemma 15 factor (solved numerically by benches for
/// display; this is the balanced first-order choice eps ~ alpha^{-1} ln alpha
/// is not closed form, so we just scan).
inline double best_reduction_factor(double alpha) {
  double best = reduction_factor(alpha, 1.0);
  for (double eps = 0.01; eps <= 4.0; eps *= 1.05) {
    best = std::min(best, reduction_factor(alpha, eps));
  }
  return best;
}

/// Section 6 lower bound exponent: ratios grow as Omega(k^{1 - 1/alpha}).
inline double lower_bound_exponent(double alpha) { return 1.0 - 1.0 / alpha; }

}  // namespace speedscale::bounds
