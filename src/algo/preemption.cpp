#include "src/algo/preemption.h"

#include "src/sim/c_machine.h"

namespace speedscale {

PreemptionStructure preemption_structure(const Schedule& c_schedule, const Instance& instance,
                                         JobId jstar) {
  PreemptionStructure out;
  out.job = jstar;
  out.release = instance.job(jstar).release;
  out.completion = c_schedule.completion(jstar);

  const double lo = out.release;
  const double hi = out.completion;
  bool in_preemption = false;
  for (const Segment& seg : c_schedule.segments()) {
    if (seg.t1 <= lo || seg.t0 >= hi) continue;
    const double a = std::max(seg.t0, lo);
    const double b = std::min(seg.t1, hi);
    if (b <= a) continue;
    if (seg.job == jstar) {
      in_preemption = false;
      continue;
    }
    // While j* is active, Algorithm C only runs other jobs if they preempt
    // (higher priority); stitch consecutive such stretches into intervals.
    if (!in_preemption) {
      PreemptionInterval pi;
      pi.start = a;
      pi.end = b;
      pi.weight_at_start = c_remaining_weight_left(c_schedule, a);
      pi.preempting_volume = c_schedule.segment_volume(seg, a, b);
      out.intervals.push_back(pi);
      in_preemption = true;
    } else {
      out.intervals.back().end = b;
      out.intervals.back().preempting_volume += c_schedule.segment_volume(seg, a, b);
    }
  }
  return out;
}

}  // namespace speedscale
