// Algorithm C: the 2-competitive clairvoyant algorithm (paper, Section 2).
//
// Job selection: highest density first (HDF), FIFO within a density level.
// Speed: P(s(t)) = W(t), the total remaining weight of active jobs.
// For Algorithm C total energy always equals total fractional flow-time
// (both equal int W dt), a fact the tests verify and the analysis uses.
#pragma once

#include "src/algo/run_result.h"
#include "src/core/instance.h"
#include "src/sim/c_machine.h"

namespace speedscale {

/// Runs Algorithm C on `instance` with P(s) = s^alpha; exact.
[[nodiscard]] RunResult run_c(const Instance& instance, double alpha);

}  // namespace speedscale
