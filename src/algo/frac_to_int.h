// The black-box fractional -> integral reduction (paper, Section 5, Lemma 15).
//
// Given any (non-clairvoyant) algorithm A_frac, define A_int: at each time t,
// if the job j(t) that A_frac processes is still unfinished in A_int, process
// it at speed (1+eps) * s(t); otherwise idle.  Then A_int has processed
// exactly (1+eps) times A_frac's weight of every job at every time, so A_int
// finishes job j when A_frac has processed a 1/(1+eps) fraction of it, and
//   integral flow(A_int) <= (1 + 1/eps) * fractional flow(A_frac)
//   energy(A_int)        <= (1+eps)^alpha * energy(A_frac)
// giving Gamma_int = max((1+eps)^alpha, 1 + 1/eps) * Gamma_frac (Theorem 16).
//
// The reduction is evaluated by post-processing the fractional schedule:
// for each job, find the time tau_j at which A_frac has processed
// V[j]/(1+eps); A_int's completion is tau_j, its energy is (1+eps)^alpha
// times the energy of the schedule parts lying before each tau.
#pragma once

#include <map>

#include "src/core/instance.h"
#include "src/core/metrics.h"
#include "src/core/schedule.h"

namespace speedscale {

/// The integral-objective run derived from a fractional schedule.
struct IntReductionRun {
  double energy = 0.0;
  double integral_flow = 0.0;
  std::map<JobId, double> completions;  ///< A_int completion times (tau_j)

  [[nodiscard]] double integral_objective() const { return energy + integral_flow; }
};

/// Applies the Lemma 15 reduction with speed-up factor (1 + eps) to a
/// fractional schedule.  `frac` must complete every job of `instance` and be
/// an exact-law schedule (the closed forms are inverted per segment).
[[nodiscard]] IntReductionRun reduce_frac_to_int(const Instance& instance, const Schedule& frac,
                                                 double eps);

}  // namespace speedscale
