// Immediate dispatch and the Section 6 lower-bound adversary.
//
// Paper, Section 6: in the immediate-dispatch model, every deterministic
// non-clairvoyant algorithm is Omega(k^{1-1/alpha})-competitive, even with
// uniform densities and the fractional objective.  The adversary releases
// k^2 jobs at time 0; since the algorithm cannot distinguish them (identical
// observable parameters), some machine receives >= k jobs, and the adversary
// makes exactly those k jobs heavy and every other job negligible.  The
// algorithm then pays ~ the cost of k heavy jobs stacked on one machine,
// k^{1-1/alpha} times the optimum of one heavy job per machine.
//
// "Any deterministic algorithm" is instantiated by the natural deterministic
// dispatchers below; the pigeonhole step works against each of them because
// the k^2 jobs are observationally identical at dispatch time.
#pragma once

#include <vector>

#include "src/core/instance.h"
#include "src/core/metrics.h"

namespace speedscale {

/// Deterministic dispatch rules that only see observable (non-clairvoyant)
/// information: arrival order, release times, densities, and counts.
enum class DispatchPolicy {
  kRoundRobin,   ///< job i -> machine i mod k
  kLeastCount,   ///< machine with fewest assigned jobs (lowest index ties)
  kFirstFit,     ///< always the lowest-indexed machine until count k, then next
};

/// Dispatches `n` observationally-identical jobs to k machines.
[[nodiscard]] std::vector<MachineId> dispatch_identical(DispatchPolicy policy, int k, int n);

/// Runs each machine's assigned jobs under Algorithm C and sums the metrics.
[[nodiscard]] Metrics run_assignment_with_c(const Instance& instance, double alpha, int k,
                                            const std::vector<MachineId>& assignment);

/// Outcome of one adversary round.
struct AdversaryOutcome {
  double algo_cost = 0.0;     ///< fractional objective of the dispatched schedule
  double opt_cost = 0.0;      ///< fractional objective of the spread-out schedule
  double ratio = 0.0;
  int loaded_machine = -1;    ///< machine the adversary targeted
  int loaded_count = 0;       ///< jobs on it (>= k by pigeonhole)
};

/// Executes the Section 6 construction for k machines: k^2 unit-density jobs
/// at time 0; the adversary sets the k first jobs of the most-loaded machine
/// to volume `vol_hi` and all remaining jobs to `vol_lo`.
[[nodiscard]] AdversaryOutcome run_sec6_adversary(int k, double alpha, DispatchPolicy policy,
                                                  double vol_hi = 1.0, double vol_lo = 1e-9);

}  // namespace speedscale
