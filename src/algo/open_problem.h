// Exploration of the paper's open problem (Section 7): non-uniform
// densities on identical parallel machines.
//
// The paper sketches the natural candidates and why the Lemma 20-style
// equivalence breaks:
//   * candidate non-clairvoyant policy: follow rounded-density HDF globally
//     and "dispatch only as needed" — a global priority queue ordered by
//     (rounded density desc, release asc); a machine that finishes its
//     backlog takes the queue's head;
//   * candidate clairvoyant comparator: greedy immediate dispatch where the
//     cost increase is computed over jobs of EQUAL OR HIGHER density only —
//     i.e. assign job j to the machine minimizing the remaining weight of
//     its >=rho_j jobs at r_j (the restriction the paper proposes, since
//     lower-density jobs are invisible to an arriving high-density job's
//     completion time under HDF);
// and observes that "jobs released later could affect the machine a job is
// assigned to in the non-clairvoyant algorithm whereas they do not in the
// clairvoyant algorithm" — so the assignments may diverge.
//
// This module implements both candidates on an exact clairvoyant substrate
// (per-machine Algorithm C — the point of the exploration is the DISPATCH
// rules, not the speed rule) and provides a divergence search used by
// bench_open_problem to exhibit concrete diverging instances and measure
// how much the divergence costs.
#pragma once

#include <vector>

#include "src/core/instance.h"
#include "src/core/metrics.h"

namespace speedscale {

struct OpenProblemRun {
  std::vector<MachineId> assignment;
  Metrics metrics;
};

/// Candidate clairvoyant comparator: immediate dispatch of job j to the
/// machine with least remaining weight among jobs of density >= rho_j
/// (rounded densities if beta > 1), then per-machine Algorithm C.
[[nodiscard]] OpenProblemRun run_cpar_density_restricted(const Instance& instance, double alpha,
                                                         int k, double beta = 4.5);

/// Candidate non-clairvoyant dispatch: global (rounded density desc,
/// release asc) priority queue; a machine takes the queue head whenever its
/// backlog is empty.  Machine busy periods are produced by per-machine
/// Algorithm C runs on the assigned jobs (the exact substrate; the open
/// problem concerns the dispatch rule).
[[nodiscard]] OpenProblemRun run_ncpar_hdf_queue(const Instance& instance, double alpha, int k,
                                                 double beta = 4.5);

/// Result of a divergence search over seeded random instances.
struct DivergenceReport {
  int instances_tried = 0;
  int diverged = 0;
  std::uint64_t first_divergent_seed = 0;  ///< 0 if none found
  double worst_cost_ratio = 1.0;           ///< HDF-queue / density-restricted
};

/// Searches seeds for instances where the two candidates assign differently.
[[nodiscard]] DivergenceReport search_divergence(double alpha, int k, int n_jobs, int seeds,
                                                 double beta = 4.5);

}  // namespace speedscale
