// Algorithm NC for non-uniform densities (paper, Section 4).
//
// The algorithm:
//   1. Round every density *down* to an integer power of beta (beta > 4 in
//      the paper's analysis; exposed as a parameter for the E10 ablation).
//   2. Among active jobs, process the one of highest rounded density,
//      breaking ties FIFO (jobs inside one density bracket are therefore
//      processed FIFO — the information-gathering order).
//   3. Speed: s(t) = eta * s^C_{I(t)}(t) + epsilon, where s^C_{I(t)}(t) is
//      the speed that Algorithm C would have at time t if run on the
//      *current instance* I(t): the rounded instance whose job weights are
//      the weights Algorithm NC itself has processed so far.  The excess
//      epsilon bootstraps the all-weights-zero start (Section 4 discussion).
//
// The current-instance speed has no closed form (adding weight to a job
// reshapes the whole downstream clairvoyant run, cf. Figure 2b), so the
// trajectory is integrated with an adaptive midpoint (RK2) scheme whose
// inner evaluations are *exact* event-driven C-simulations of I(t).  The
// recorded schedule is piecewise-constant in speed; metrics are evaluated
// exactly on that recording, so discretization only perturbs the policy, not
// the accounting.
#pragma once

#include <functional>
#include <vector>

#include "src/algo/run_result.h"
#include "src/core/instance.h"

namespace speedscale {

/// The critical speed multiplier below which the self-referential speed rule
/// never "takes off": for a single job, seeking a growing solution
/// p(t) = c * t^{1/b} of  dp/dt = eta * s^C_{I(t)}(t)  (b = 1 - 1/alpha)
/// requires eta >= eta_min = (alpha/(alpha-1)) * alpha^{1/(alpha-1)}.
/// Below it, the current-instance clairvoyant run always finishes before t,
/// the speed collapses to the epsilon floor, and the algorithm crawls
/// (cost ratio -> 1/epsilon).  The paper defers the concrete eta to its full
/// version; this threshold reproduces the phenomenon quantitatively and the
/// E10 bench maps the ratio as a function of eta around it.
/// (eta_min(2) = 4, eta_min(3) ~ 2.598, eta_min(1.5) = 6.75.)
[[nodiscard]] double nc_eta_min(double alpha);

/// Tuning of the non-uniform algorithm and its integrator.
struct NCNonUniformParams {
  double beta = 4.5;           ///< density rounding base (paper wants > 4)
  double eta = 0.0;            ///< speed multiplier; 0 = auto (1.5 * nc_eta_min)
  double epsilon_speed = 1e-4; ///< excess speed, relative to a reference speed
  double step_growth = 0.05;   ///< dt grows by this fraction of time-since-event
  double min_step = 1e-6;      ///< smallest relative step after an event
  long max_steps = 20'000'000; ///< hard safety cap on integrator steps
  bool round_densities = true; ///< E10 ablation: disable rounding entirely
};

/// Observer invoked at every *event* (release or completion): receives the
/// current time and the per-job processed volumes.  Used by the Figure 3
/// bench to snapshot the evolving instance I(t).
using NCObserver = std::function<void(double t, const std::vector<double>& processed)>;

/// Run summary with instrumentation counters.
struct NCNonUniformRun {
  RunResult result;
  Instance rounded;        ///< the instance the algorithm actually ordered by
  long steps = 0;          ///< integrator steps taken
  long c_evaluations = 0;  ///< inner Algorithm C simulations performed

  explicit NCNonUniformRun(double alpha) : result(alpha) {}
};

/// Runs non-uniform Algorithm NC with P(s) = s^alpha.
[[nodiscard]] NCNonUniformRun run_nc_nonuniform(const Instance& instance, double alpha,
                                                const NCNonUniformParams& params = {},
                                                const NCObserver& observer = {});

/// Builds the current instance I(t): jobs of `rounded` released at or before
/// t, with volume equal to the volume NC has processed so far (zero-volume
/// jobs are dropped; they carry no weight).  `kept` (optional) receives the
/// original JobIds of the kept jobs, in order.
[[nodiscard]] Instance make_current_instance(const Instance& rounded,
                                             const std::vector<double>& processed, double t,
                                             std::vector<JobId>* kept = nullptr);

/// The clairvoyant speed on the current instance: the speed of Algorithm C
/// at time t when run on I(t).  (Without the eta multiplier or epsilon.)
/// Reference implementation (builds an Instance + CMachine per call).
[[nodiscard]] double c_speed_on_current_instance(const Instance& rounded,
                                                 const std::vector<double>& processed, double t,
                                                 double alpha);

/// Allocation-free evaluator for the same quantity.  The integrator calls
/// this twice per step, so the reference path's per-call Instance/CMachine
/// construction dominates the whole algorithm; this oracle pre-sorts the
/// rounded jobs once and replays Algorithm C over reused scratch buffers.
/// Tests assert exact agreement with c_speed_on_current_instance.
class CurrentInstanceOracle {
 public:
  CurrentInstanceOracle(const Instance& rounded, double alpha);

  /// Speed of Algorithm C on I(t) at time t, weights from `processed`
  /// (indexed by the rounded instance's JobIds).
  [[nodiscard]] double c_speed(const std::vector<double>& processed, double t);

 private:
  const Instance& rounded_;
  PowerLawKinematics kin_;
  std::vector<JobId> by_release_;   ///< release asc, id asc
  std::vector<int> priority_rank_;  ///< per job: rank in (density desc, release asc, id) order
  std::vector<double> rem_;         ///< scratch: remaining volume in the replay
  std::vector<bool> released_;      ///< scratch
};

}  // namespace speedscale
