#include "src/algo/frac_to_int.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/kinematics.h"

namespace speedscale {

namespace {

/// Energy (under the fractional speeds) of the part of `seg` in [seg.t0, t],
/// and the absolute time at which the segment has processed `v` volume.
struct SegmentOps {
  const PowerLawKinematics& kin;
  double alpha;

  [[nodiscard]] double volume_full(const Segment& seg) const {
    switch (seg.law) {
      case SpeedLaw::kIdle:
        return 0.0;
      case SpeedLaw::kConstant:
        return seg.param * seg.duration();
      case SpeedLaw::kPowerDecay: {
        const double w1 = kin.decay_weight_after(seg.param, seg.rho, seg.duration());
        return (seg.param - w1) / seg.rho;
      }
      case SpeedLaw::kPowerGrow: {
        const double u1 = kin.grow_weight_after(seg.param, seg.rho, seg.duration());
        return (u1 - seg.param) / seg.rho;
      }
    }
    return 0.0;
  }

  /// Time within the segment at which cumulative processed volume reaches v.
  [[nodiscard]] double time_at_volume(const Segment& seg, double v) const {
    switch (seg.law) {
      case SpeedLaw::kIdle:
        throw ModelError("reduce_frac_to_int: volume requested from idle segment");
      case SpeedLaw::kConstant:
        return seg.t0 + v / seg.param;
      case SpeedLaw::kPowerDecay:
        return seg.t0 + kin.decay_time_to_weight(seg.param, seg.param - seg.rho * v, seg.rho);
      case SpeedLaw::kPowerGrow:
        return seg.t0 + kin.grow_time_to_weight(seg.param, seg.param + seg.rho * v, seg.rho);
    }
    return seg.t0;
  }

  /// int P(s_frac) dt over [seg.t0, t_cut].
  [[nodiscard]] double energy_until(const Segment& seg, double t_cut) const {
    const double dt = t_cut - seg.t0;
    switch (seg.law) {
      case SpeedLaw::kIdle:
        return 0.0;
      case SpeedLaw::kConstant:
        return std::pow(seg.param, alpha) * dt;
      case SpeedLaw::kPowerDecay: {
        const double w1 = kin.decay_weight_after(seg.param, seg.rho, dt);
        return kin.decay_integral(seg.param, w1, seg.rho);
      }
      case SpeedLaw::kPowerGrow: {
        const double u1 = kin.grow_weight_after(seg.param, seg.rho, dt);
        return kin.grow_integral(seg.param, u1, seg.rho);
      }
    }
    return 0.0;
  }
};

}  // namespace

IntReductionRun reduce_frac_to_int(const Instance& instance, const Schedule& frac, double eps) {
  if (!(eps > 0.0)) throw ModelError("reduce_frac_to_int: eps must be positive");
  const PowerLawKinematics kin(frac.alpha());
  const SegmentOps ops{kin, frac.alpha()};
  const double speedup_energy = std::pow(1.0 + eps, frac.alpha());

  IntReductionRun out;
  // Cumulative processed volume per job, walked once over the schedule.
  std::vector<double> processed(instance.size(), 0.0);
  std::vector<double> tau(instance.size(), -1.0);

  for (const Segment& seg : frac.segments()) {
    if (seg.job == kNoJob || seg.law == SpeedLaw::kIdle) continue;
    const auto idx = static_cast<std::size_t>(seg.job);
    const Job& job = instance.job(seg.job);
    const double target = job.volume / (1.0 + eps);
    const double seg_vol = ops.volume_full(seg);

    if (tau[idx] >= 0.0) continue;  // A_int already finished this job

    if (processed[idx] + seg_vol >= target - 1e-15 * std::max(1.0, target)) {
      // A_int completes within (or exactly at the end of) this segment.
      const double v_needed = std::max(0.0, target - processed[idx]);
      const double t_cut = std::min(ops.time_at_volume(seg, v_needed), seg.t1);
      out.energy += speedup_energy * ops.energy_until(seg, t_cut);
      tau[idx] = t_cut;
      out.completions[seg.job] = t_cut;
      out.integral_flow += job.weight() * (t_cut - job.release);
    } else {
      out.energy += speedup_energy * ops.energy_until(seg, seg.t1);
    }
    processed[idx] += seg_vol;
  }

  for (const Job& j : instance.jobs()) {
    if (tau[static_cast<std::size_t>(j.id)] < 0.0) {
      throw ModelError("reduce_frac_to_int: fractional schedule never processes enough of job " +
                       std::to_string(j.id));
    }
  }
  return out;
}

}  // namespace speedscale
