#include "src/algo/baselines.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "src/core/kinematics.h"
#include "src/core/power.h"

namespace speedscale {

RunResult run_fixed_speed(const Instance& instance, double alpha, double speed) {
  if (!(speed > 0.0)) throw ModelError("run_fixed_speed: speed must be positive");
  RunResult out(alpha);
  Schedule& sched = out.schedule;
  double t = 0.0;
  for (JobId jid : instance.fifo_order()) {
    const Job& job = instance.job(jid);
    const double t_start = std::max(t, job.release);
    const double dt = job.volume / speed;
    sched.append({t_start, t_start + dt, jid, SpeedLaw::kConstant, speed, job.density});
    t = t_start + dt;
    sched.set_completion(jid, t);
  }
  const PowerLaw power(alpha);
  out.metrics = compute_metrics(instance, sched, power);
  return out;
}

SharedRun run_active_count(const Instance& instance, double alpha) {
  SharedRun out;
  const PowerLaw power(alpha);

  struct St {
    double remaining;
    bool released = false;
    bool done = false;
  };
  std::vector<St> st(instance.size());
  for (const Job& j : instance.jobs()) st[static_cast<std::size_t>(j.id)].remaining = j.volume;

  std::set<std::pair<double, JobId>> pending;
  for (const Job& j : instance.jobs()) pending.insert({j.release, j.id});
  std::set<JobId> active;

  double t = 0.0;
  const auto release_due = [&]() {
    while (!pending.empty() && pending.begin()->first <= t) {
      const JobId id = pending.begin()->second;
      pending.erase(pending.begin());
      st[static_cast<std::size_t>(id)].released = true;
      active.insert(id);
    }
  };
  release_due();

  while (!active.empty() || !pending.empty()) {
    const double next_release = pending.empty() ? kInf : pending.begin()->first;
    if (active.empty()) {
      t = next_release;
      release_due();
      continue;
    }
    const double n = static_cast<double>(active.size());
    const double s = power.speed_for_power(n);  // P(s) = n_active
    const double rate = s / n;                  // per-job processing rate
    // Next event: first completion (smallest remaining volume) or a release.
    double min_rem = kInf;
    JobId min_id = kNoJob;
    for (JobId id : active) {
      const double r = st[static_cast<std::size_t>(id)].remaining;
      if (r < min_rem) {
        min_rem = r;
        min_id = id;
      }
    }
    const double t_complete = t + min_rem / rate;
    const double t_event = std::min(t_complete, next_release);
    const double dt = t_event - t;

    out.metrics.energy += n * dt;  // P = n while n jobs are active
    for (JobId id : active) {
      const double v = st[static_cast<std::size_t>(id)].remaining;
      const double drop = rate * dt;
      // int rho V dt with V decreasing linearly at `rate`.
      out.metrics.fractional_flow +=
          instance.job(id).density * (v * dt - 0.5 * rate * dt * dt);
      st[static_cast<std::size_t>(id)].remaining = std::max(0.0, v - drop);
    }
    t = t_event;
    if (t_complete <= next_release) {
      st[static_cast<std::size_t>(min_id)].remaining = 0.0;
      st[static_cast<std::size_t>(min_id)].done = true;
      active.erase(min_id);
      out.completions[min_id] = t;
      const Job& j = instance.job(min_id);
      out.metrics.integral_flow += j.weight() * (t - j.release);
    }
    release_due();
  }
  out.makespan = t;
  return out;
}

RunResult run_naive_nc(const Instance& instance, double alpha) {
  RunResult out(alpha);
  Schedule& sched = out.schedule;
  const PowerLawKinematics kin(alpha);
  double t = 0.0;
  double processed_weight = 0.0;  // total weight completed so far
  for (JobId jid : instance.fifo_order()) {
    const Job& job = instance.job(jid);
    const double t_start = std::max(t, job.release);
    const double u0 = processed_weight;
    const double u1 = processed_weight + job.weight();
    const double dt = kin.grow_time_to_weight(u0, u1, job.density);
    sched.append({t_start, t_start + dt, jid, SpeedLaw::kPowerGrow, u0, job.density});
    t = t_start + dt;
    sched.set_completion(jid, t);
    processed_weight = u1;
  }
  const PowerLaw power(alpha);
  out.metrics = compute_metrics(instance, sched, power);
  return out;
}

SharedRun run_wrr_known_weight(const Instance& instance, double alpha) {
  SharedRun out;
  const PowerLaw power(alpha);

  struct St {
    double remaining;
    bool released = false;
  };
  std::vector<St> st(instance.size());
  for (const Job& j : instance.jobs()) st[static_cast<std::size_t>(j.id)].remaining = j.volume;

  std::set<std::pair<double, JobId>> pending;
  for (const Job& j : instance.jobs()) pending.insert({j.release, j.id});
  std::set<JobId> active;

  double t = 0.0;
  double active_weight = 0.0;  // sum of FULL weights of active jobs (known!)
  const auto release_due = [&]() {
    while (!pending.empty() && pending.begin()->first <= t) {
      const JobId id = pending.begin()->second;
      pending.erase(pending.begin());
      st[static_cast<std::size_t>(id)].released = true;
      active.insert(id);
      active_weight += instance.job(id).weight();
    }
  };
  release_due();

  while (!active.empty() || !pending.empty()) {
    const double next_release = pending.empty() ? kInf : pending.begin()->first;
    if (active.empty()) {
      t = next_release;
      release_due();
      continue;
    }
    // Speed: P(s) = total (full) weight of active jobs; share prop. weight.
    const double s = power.speed_for_power(active_weight);
    double t_complete = kInf;
    JobId done_id = kNoJob;
    for (JobId id : active) {
      const double share = instance.job(id).weight() / active_weight;
      const double tc = t + st[static_cast<std::size_t>(id)].remaining / (s * share);
      if (tc < t_complete) {
        t_complete = tc;
        done_id = id;
      }
    }
    const double t_event = std::min(t_complete, next_release);
    const double dt = t_event - t;
    out.metrics.energy += active_weight * dt;  // P = active weight
    for (JobId id : active) {
      const Job& j = instance.job(id);
      const double rate = s * j.weight() / active_weight;
      St& js = st[static_cast<std::size_t>(id)];
      out.metrics.fractional_flow += j.density * (js.remaining * dt - 0.5 * rate * dt * dt);
      js.remaining = std::max(0.0, js.remaining - rate * dt);
    }
    t = t_event;
    if (t_complete <= next_release && done_id != kNoJob) {
      st[static_cast<std::size_t>(done_id)].remaining = 0.0;
      active.erase(done_id);
      const Job& j = instance.job(done_id);
      active_weight = std::max(0.0, active_weight - j.weight());
      out.completions[done_id] = t;
      out.metrics.integral_flow += j.weight() * (t - j.release);
    }
    release_due();
  }
  out.makespan = t;
  return out;
}

SharedRun run_laps(const Instance& instance, double alpha, double beta_frac) {
  if (!(beta_frac > 0.0) || beta_frac > 1.0) {
    throw ModelError("run_laps: beta_frac must lie in (0, 1]");
  }
  SharedRun out;
  const PowerLaw power(alpha);

  struct St {
    double remaining;
    bool released = false;
  };
  std::vector<St> st(instance.size());
  for (const Job& j : instance.jobs()) st[static_cast<std::size_t>(j.id)].remaining = j.volume;

  std::set<std::pair<double, JobId>> pending;
  for (const Job& j : instance.jobs()) pending.insert({j.release, j.id});
  // Active set ordered by (release desc, id desc): the front holds the
  // latest arrivals, which is exactly LAPS's served prefix.
  struct LatestFirst {
    const Instance* inst;
    bool operator()(JobId a, JobId b) const {
      const Job& ja = inst->job(a);
      const Job& jb = inst->job(b);
      if (ja.release != jb.release) return ja.release > jb.release;
      return a > b;
    }
  };
  std::set<JobId, LatestFirst> active(LatestFirst{&instance});

  double t = 0.0;
  const auto release_due = [&]() {
    while (!pending.empty() && pending.begin()->first <= t) {
      const JobId id = pending.begin()->second;
      pending.erase(pending.begin());
      st[static_cast<std::size_t>(id)].released = true;
      active.insert(id);
    }
  };
  release_due();

  while (!active.empty() || !pending.empty()) {
    const double next_release = pending.empty() ? kInf : pending.begin()->first;
    if (active.empty()) {
      t = next_release;
      release_due();
      continue;
    }
    const double n = static_cast<double>(active.size());
    const auto served_count =
        static_cast<std::size_t>(std::ceil(beta_frac * n - 1e-12));
    const double s = power.speed_for_power(n);  // P(s) = n_active
    const double rate = s / static_cast<double>(served_count);

    // Served set: the first `served_count` (latest-arrival) active jobs.
    double min_rem = kInf;
    JobId min_id = kNoJob;
    std::size_t i = 0;
    for (auto it = active.begin(); it != active.end() && i < served_count; ++it, ++i) {
      const double r = st[static_cast<std::size_t>(*it)].remaining;
      if (r < min_rem) {
        min_rem = r;
        min_id = *it;
      }
    }
    const double t_complete = t + min_rem / rate;
    const double t_event = std::min(t_complete, next_release);
    const double dt = t_event - t;

    out.metrics.energy += n * dt;
    // All active jobs accrue flow; only the served prefix shrinks.
    i = 0;
    for (auto it = active.begin(); it != active.end(); ++it, ++i) {
      St& js = st[static_cast<std::size_t>(*it)];
      const Job& j = instance.job(*it);
      if (i < served_count) {
        out.metrics.fractional_flow += j.density * (js.remaining * dt - 0.5 * rate * dt * dt);
        js.remaining = std::max(0.0, js.remaining - rate * dt);
      } else {
        out.metrics.fractional_flow += j.density * js.remaining * dt;
      }
    }
    t = t_event;
    if (t_complete <= next_release && min_id != kNoJob) {
      st[static_cast<std::size_t>(min_id)].remaining = 0.0;
      active.erase(min_id);
      out.completions[min_id] = t;
      const Job& j = instance.job(min_id);
      out.metrics.integral_flow += j.weight() * (t - j.release);
    }
    release_due();
  }
  out.makespan = t;
  return out;
}

RunResult run_doubling_nc(const Instance& instance, double alpha, double initial_guess) {
  if (!(initial_guess > 0.0)) throw ModelError("run_doubling_nc: guess must be positive");
  RunResult out(alpha);
  Schedule& sched = out.schedule;
  double t = 0.0;
  for (JobId jid : instance.fifo_order()) {
    const Job& job = instance.job(jid);
    t = std::max(t, job.release);
    double remaining = job.volume;
    double guess = initial_guess;
    while (remaining > 0.0) {
      const double speed = std::pow(job.density * guess / (alpha - 1.0), 1.0 / alpha);
      const double chunk = std::min(guess, remaining);
      const double dt = chunk / speed;
      sched.append({t, t + dt, jid, SpeedLaw::kConstant, speed, job.density});
      t += dt;
      remaining -= chunk;
      guess *= 2.0;
    }
    sched.set_completion(jid, t);
  }
  const PowerLaw power(alpha);
  out.metrics = compute_metrics(instance, sched, power);
  return out;
}

}  // namespace speedscale
