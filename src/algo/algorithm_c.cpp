#include "src/algo/algorithm_c.h"

#include "src/core/power.h"
#include "src/sim/c_machine.h"

namespace speedscale {

RunResult run_c(const Instance& instance, double alpha) {
  CMachine m(alpha);
  m.set_online_metrics(true);
  for (const Job& j : instance.jobs()) m.add_job(j);
  m.run_to_completion();
  const PowerLaw power(alpha);
  RunResult out(m.schedule(), compute_metrics(instance, m.schedule(), power));
  out.online = m.online_metrics();
  return out;
}

}  // namespace speedscale
