#include "src/algo/algorithm_c.h"

#include "src/core/power.h"

namespace speedscale {

RunResult run_c(const Instance& instance, double alpha) {
  Schedule sched = run_algorithm_c(instance, alpha);
  const PowerLaw power(alpha);
  Metrics m = compute_metrics(instance, sched, power);
  return RunResult(std::move(sched), m);
}

}  // namespace speedscale
