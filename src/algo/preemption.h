// Preemption-interval structure of an Algorithm C run (paper, Figure 3).
//
// For a job j* in a clairvoyant run, the window [r[j*], c[j*]] alternates
// between stretches where C processes j* and "preemption intervals" where
// higher-density jobs run.  Section 4's analysis names, for the i-th
// preemption interval, its start R_i, the preempting volume V_i, and the
// remaining weight W_i at its start; Lemma 14 bounds the weight increment at
// the start of the *last* interval i*.  This module extracts that structure
// from a recorded Algorithm C schedule so experiment E4 can regenerate
// Figure 3 and measure Properties (A)/(B) and Lemma 13 empirically.
#pragma once

#include <vector>

#include "src/core/instance.h"
#include "src/core/schedule.h"

namespace speedscale {

/// One preemption interval of job j*.
struct PreemptionInterval {
  double start = 0.0;              ///< R_i
  double end = 0.0;
  double preempting_volume = 0.0;  ///< V_i: total volume of preempting jobs
  double weight_at_start = 0.0;    ///< W_i = W^C(R_i^-)
};

/// The full Figure 3 decomposition for one job.
struct PreemptionStructure {
  JobId job = kNoJob;
  double release = 0.0;
  double completion = 0.0;
  std::vector<PreemptionInterval> intervals;

  /// Index i* of the last preemption interval (-1 if none).
  [[nodiscard]] int last_index() const { return static_cast<int>(intervals.size()) - 1; }
};

/// Extracts the preemption structure of `jstar` from a completed Algorithm C
/// schedule.  Throws if the job never completes in the schedule.
[[nodiscard]] PreemptionStructure preemption_structure(const Schedule& c_schedule,
                                                       const Instance& instance, JobId jstar);

}  // namespace speedscale
