// Algorithm NC for uniform densities (paper, Section 3).
//
// The first constant-competitive non-clairvoyant speed-scaling algorithm:
//   * Job selection: FIFO (smallest release first).  FIFO is forced by
//     information: by the time NC reaches job j, every earlier job has been
//     fully processed, so their volumes are known — which is exactly what the
//     speed rule needs.
//   * Speed: while processing job j at time t, set P(s) = W^C(r[j]^-) +
//     Wbreve[j](t), where W^C(r[j]^-) is the remaining weight of a *virtual
//     clairvoyant run* (Algorithm C on the jobs released before r[j]) at the
//     instant j was released, and Wbreve[j](t) is the weight of j that NC has
//     processed so far.  The machine's power thus sweeps the clairvoyant
//     power curve in reverse (Figure 1b).
//
// Guarantees (verified exactly by the tests):
//   Lemma 3:   energy(NC) == energy(C)
//   Lemma 4:   flow(NC)   == flow(C) / (1 - 1/alpha)
//   Lemma 6/7: speed profiles are measure-preserving rearrangements
//   Theorem 5: (2 + 1/(alpha-1))-competitive, fractional objective
//   Theorem 9: (3 + 1/(alpha-1))-competitive, integral objective
#pragma once

#include <vector>

#include "src/algo/run_result.h"
#include "src/core/instance.h"

namespace speedscale {

/// Detailed NC run: result plus the quantities the analysis talks about.
struct NCUniformRun {
  RunResult result;
  Schedule c_schedule;          ///< the virtual Algorithm C run used for offsets
  std::vector<double> offsets;  ///< W^C(r[j]^-) per job id
  std::vector<double> starts;   ///< time NC begins processing each job

  explicit NCUniformRun(double alpha) : result(alpha), c_schedule(alpha) {}
};

/// Runs Algorithm NC on a uniform-density instance with P(s) = s^alpha.
/// Exact (closed-form growth segments).  Throws ModelError if densities are
/// not uniform — use run_nc_nonuniform for the general case.
[[nodiscard]] NCUniformRun run_nc_uniform_detailed(const Instance& instance, double alpha);

/// Convenience wrapper returning only schedule + metrics.
[[nodiscard]] RunResult run_nc_uniform(const Instance& instance, double alpha);

}  // namespace speedscale
