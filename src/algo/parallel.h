// Identical parallel machines without immediate dispatch (paper, Section 6).
//
//  * C-PAR (clairvoyant reference): greedy immediate dispatch — on release,
//    assign the job to the machine whose fractional remaining weight is
//    least (Lemma 19 shows this minimizes the increase in the fractional
//    objective); each machine then runs Algorithm C.  O(alpha)-competitive
//    (Theorem 18, from Anand-Garg-Kumar).
//
//  * NC-PAR (the paper's non-clairvoyant algorithm): a global FIFO queue of
//    released, unassigned jobs; whenever a machine has completed everything
//    assigned to it, it takes the queue's head.  Each machine sets its speed
//    exactly as Algorithm NC, with the current instance given by the jobs
//    assigned to *that* machine (at their original release times).
//
// Lemma 20: the two algorithms produce the *same* job-to-machine assignment;
// combined with Lemmas 3/4 per machine this yields Theorem 17's
// O(alpha + 1/(alpha-1)) competitiveness.  The tests verify assignment
// equality, exact energy equality (Lemma 21) and the exact flow ratio
// (Lemma 22).
#pragma once

#include <vector>

#include "src/core/instance.h"
#include "src/core/metrics.h"
#include "src/core/schedule.h"

namespace speedscale {

/// A completed multi-machine run.
struct ParallelRun {
  std::vector<Schedule> schedules;     ///< one per machine (global JobIds)
  std::vector<MachineId> assignment;   ///< per job id
  std::vector<double> start_times;     ///< per job id: when processing began
  Metrics metrics;                     ///< summed over machines
};

/// C-PAR on k identical machines; exact.  Ties in remaining weight break
/// toward the lower machine index (the fixed total order both algorithms
/// share, as the paper's Lemma 20 proof assumes).
[[nodiscard]] ParallelRun run_c_par(const Instance& instance, double alpha, int k);

/// NC-PAR on k identical machines; exact.  Requires uniform density.
[[nodiscard]] ParallelRun run_nc_par(const Instance& instance, double alpha, int k);

/// Evaluates the summed metrics of per-machine schedules against the global
/// instance (exposed for tests that build custom assignments).
[[nodiscard]] Metrics parallel_metrics(const Instance& instance,
                                       const std::vector<Schedule>& schedules,
                                       const std::vector<MachineId>& assignment, double alpha);

}  // namespace speedscale
