#include "src/algo/dispatch.h"

#include <algorithm>

#include "src/algo/parallel.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/sim/c_machine.h"

namespace speedscale {

std::vector<MachineId> dispatch_identical(DispatchPolicy policy, int k, int n) {
  static const char* const kPolicyLabels[] = {"dispatch.round_robin", "dispatch.least_count",
                                              "dispatch.first_fit"};
  const char* const label = kPolicyLabels[static_cast<std::size_t>(policy)];
  std::vector<MachineId> out(static_cast<std::size_t>(n), kNoMachine);
  std::vector<int> count(static_cast<std::size_t>(k), 0);
  for (int i = 0; i < n; ++i) {
    int target = 0;
    switch (policy) {
      case DispatchPolicy::kRoundRobin:
        target = i % k;
        break;
      case DispatchPolicy::kLeastCount: {
        target = static_cast<int>(std::min_element(count.begin(), count.end()) - count.begin());
        break;
      }
      case DispatchPolicy::kFirstFit: {
        // Fill machines to ceil(n/k) in index order.
        const int cap = (n + k - 1) / k;
        target = 0;
        while (target < k - 1 && count[static_cast<std::size_t>(target)] >= cap) ++target;
        break;
      }
    }
    out[static_cast<std::size_t>(i)] = target;
    ++count[static_cast<std::size_t>(target)];
    OBS_COUNT("algo.dispatch.decisions", 1);
    TRACE_EVENT(.kind = obs::EventKind::kDispatch, .t = 0.0, .job = static_cast<JobId>(i),
                .machine = target, .value = static_cast<double>(count[static_cast<std::size_t>(target)]),
                .label = label);
  }
  return out;
}

Metrics run_assignment_with_c(const Instance& instance, double alpha, int k,
                              const std::vector<MachineId>& assignment) {
  std::vector<CMachine> machines;
  machines.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    machines.emplace_back(alpha);
    machines.back().set_obs_machine(i);
  }
  for (JobId jid : instance.fifo_order()) {
    const MachineId m = assignment[static_cast<std::size_t>(jid)];
    machines[static_cast<std::size_t>(m)].advance_to(instance.job(jid).release);
    machines[static_cast<std::size_t>(m)].add_job(instance.job(jid));
  }
  std::vector<Schedule> schedules;
  for (auto& m : machines) {
    m.run_to_completion();
    schedules.push_back(m.schedule());
  }
  return parallel_metrics(instance, schedules, assignment, alpha);
}

AdversaryOutcome run_sec6_adversary(int k, double alpha, DispatchPolicy policy, double vol_hi,
                                    double vol_lo) {
  const int n = k * k;
  const std::vector<MachineId> assignment = dispatch_identical(policy, k, n);

  // Pigeonhole: some machine has >= k jobs.  Target it.
  std::vector<int> count(static_cast<std::size_t>(k), 0);
  for (MachineId m : assignment) ++count[static_cast<std::size_t>(m)];
  const int loaded = static_cast<int>(std::max_element(count.begin(), count.end()) - count.begin());

  // The adversary reveals volumes: the first k jobs dispatched to the loaded
  // machine become heavy; every other job is negligible.
  std::vector<Job> jobs(static_cast<std::size_t>(n));
  int heavies = 0;
  for (int i = 0; i < n; ++i) {
    jobs[static_cast<std::size_t>(i)] =
        Job{static_cast<JobId>(i), 0.0, vol_lo, 1.0};
    if (assignment[static_cast<std::size_t>(i)] == loaded && heavies < k) {
      jobs[static_cast<std::size_t>(i)].volume = vol_hi;
      ++heavies;
    }
  }
  const Instance instance{std::move(jobs)};

  AdversaryOutcome out;
  out.loaded_machine = loaded;
  out.loaded_count = count[static_cast<std::size_t>(loaded)];
  out.algo_cost = run_assignment_with_c(instance, alpha, k, assignment).fractional_objective();

  // The clairvoyant optimum-style spread: one heavy job per machine, light
  // jobs round-robin behind them.
  std::vector<MachineId> spread(static_cast<std::size_t>(n), kNoMachine);
  int next_heavy_machine = 0;
  int next_light_machine = 0;
  for (int i = 0; i < n; ++i) {
    if (instance.job(i).volume == vol_hi) {
      spread[static_cast<std::size_t>(i)] = next_heavy_machine++ % k;
    } else {
      spread[static_cast<std::size_t>(i)] = next_light_machine++ % k;
    }
  }
  out.opt_cost = run_assignment_with_c(instance, alpha, k, spread).fractional_objective();
  out.ratio = out.algo_cost / out.opt_cost;
  return out;
}

}  // namespace speedscale
