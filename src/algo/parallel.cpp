#include "src/algo/parallel.h"

#include <algorithm>
#include <deque>
#include <map>

#include "src/core/kinematics.h"
#include "src/core/power.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/sim/c_machine.h"

namespace speedscale {

Metrics parallel_metrics(const Instance& instance, const std::vector<Schedule>& schedules,
                         const std::vector<MachineId>& assignment, double alpha) {
  const PowerLaw power(alpha);
  Metrics total;
  for (std::size_t mi = 0; mi < schedules.size(); ++mi) {
    // Collect this machine's jobs and remap global -> local ids.
    std::vector<Job> local_jobs;
    std::map<JobId, JobId> to_local;
    for (const Job& j : instance.jobs()) {
      if (assignment[static_cast<std::size_t>(j.id)] == static_cast<MachineId>(mi)) {
        to_local[j.id] = static_cast<JobId>(local_jobs.size());
        local_jobs.push_back(j);
      }
    }
    if (local_jobs.empty()) continue;
    const Instance local(std::move(local_jobs));
    Schedule local_sched(alpha);
    for (Segment seg : schedules[mi].segments()) {
      if (seg.job != kNoJob) {
        auto it = to_local.find(seg.job);
        if (it == to_local.end()) {
          throw ModelError("parallel_metrics: schedule processes a job not assigned here");
        }
        seg.job = it->second;
      }
      local_sched.append(seg);
    }
    for (const auto& [gid, lid] : to_local) {
      local_sched.set_completion(lid, schedules[mi].completion(gid));
    }
    total = combine(total, compute_metrics(local, local_sched, power));
  }
  return total;
}

ParallelRun run_c_par(const Instance& instance, double alpha, int k) {
  if (k < 1) throw ModelError("run_c_par: need at least one machine");
  ParallelRun out;
  out.assignment.assign(instance.size(), kNoMachine);
  out.start_times.assign(instance.size(), 0.0);

  std::vector<CMachine> machines;
  machines.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    machines.emplace_back(alpha);
    machines.back().set_obs_machine(i);  // real machines: events carry ids
  }

  // Immediate dispatch in release order (ids break release ties).
  std::vector<JobId> order = instance.fifo_order();
  for (JobId jid : order) {
    const Job& job = instance.job(jid);
    int best = 0;
    double best_w = 0.0;
    for (int i = 0; i < k; ++i) {
      machines[static_cast<std::size_t>(i)].advance_to(job.release);
      const double w = machines[static_cast<std::size_t>(i)].remaining_weight();
      if (i == 0 || w < best_w - 1e-15 * std::max(1.0, best_w)) {
        best_w = w;
        best = i;
      }
    }
    OBS_COUNT("algo.c_par.dispatches", 1);
    TRACE_EVENT(.kind = obs::EventKind::kDispatch, .t = job.release, .job = jid,
                .machine = best, .value = best_w, .label = "c_par.least_weight");
    machines[static_cast<std::size_t>(best)].add_job(job);
    out.assignment[static_cast<std::size_t>(jid)] = best;
  }
  for (auto& m : machines) m.run_to_completion();
  for (auto& m : machines) out.schedules.push_back(m.schedule());

  // Start times: first segment of each job.
  std::vector<bool> seen(instance.size(), false);
  for (const Schedule& s : out.schedules) {
    for (const Segment& seg : s.segments()) {
      if (seg.job != kNoJob && !seen[static_cast<std::size_t>(seg.job)]) {
        seen[static_cast<std::size_t>(seg.job)] = true;
        out.start_times[static_cast<std::size_t>(seg.job)] = seg.t0;
      }
    }
  }
  out.metrics = parallel_metrics(instance, out.schedules, out.assignment, alpha);
  return out;
}

ParallelRun run_nc_par(const Instance& instance, double alpha, int k) {
  if (k < 1) throw ModelError("run_nc_par: need at least one machine");
  if (!instance.uniform_density(1e-9)) {
    throw ModelError("run_nc_par: the paper's NC-PAR requires uniform density");
  }
  ParallelRun out;
  out.assignment.assign(instance.size(), kNoMachine);
  out.start_times.assign(instance.size(), 0.0);

  const PowerLawKinematics kin(alpha);
  struct MachineState {
    CMachine shadow;           ///< virtual Algorithm C over this machine's jobs
    Schedule schedule;         ///< the real NC processing record
    double busy_until = -1.0;  ///< < 0 means idle
    double last_release = -1.0;
    double tied_weight = 0.0;  ///< weight of same-release jobs already assigned here
    double energy_acc = 0.0;   ///< cumulative traced energy of this machine
    explicit MachineState(double a) : shadow(a), schedule(a) {}
  };
  std::vector<MachineState> ms;
  ms.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) ms.emplace_back(alpha);

  const std::vector<JobId> order = instance.fifo_order();
  std::size_t next_release_idx = 0;
  std::deque<JobId> queue;  // released, unassigned, FIFO

  const auto try_assign = [&](double t) {
    while (!queue.empty()) {
      int idle = -1;
      for (int i = 0; i < k; ++i) {
        if (ms[static_cast<std::size_t>(i)].busy_until < 0.0) {
          idle = i;
          break;
        }
      }
      if (idle < 0) return;
      const JobId jid = queue.front();
      queue.pop_front();
      const Job& job = instance.job(jid);
      MachineState& m = ms[static_cast<std::size_t>(idle)];
      // The shadow clairvoyant run sees the job at its *release* time; FIFO
      // assignment order guarantees the shadow frontier has not passed it.
      // The shadow is virtual — its events stay out of the NC-PAR trace.
      {
        obs::TraceSuppressGuard suppress_shadow;
        m.shadow.add_job(job);
        m.shadow.advance_to(job.release);
      }
      // Release-time ties resolve as the limit of infinitesimally-separated
      // releases (cf. run_nc_uniform_detailed): tied jobs already assigned to
      // this machine count toward the offset.
      if (m.last_release != job.release) {
        m.last_release = job.release;
        m.tied_weight = 0.0;
      }
      const double offset = m.shadow.remaining_weight_left(job.release) + m.tied_weight;
      m.tied_weight += job.weight();
      const double u0 = offset;
      const double u1 = offset + job.weight();
      const double dt = kin.grow_time_to_weight(u0, u1, job.density);
      m.schedule.append({t, t + dt, jid, SpeedLaw::kPowerGrow, u0, job.density});
      m.schedule.set_completion(jid, t + dt);
      m.busy_until = t + dt;
      out.assignment[static_cast<std::size_t>(jid)] = idle;
      out.start_times[static_cast<std::size_t>(jid)] = t;
      OBS_COUNT("algo.nc_par.dispatches", 1);
      if (obs::tracing_enabled()) {
        TRACE_EVENT(.kind = obs::EventKind::kDispatch, .t = t, .job = jid, .machine = idle,
                    .value = offset, .label = "nc_par.fifo_pull");
        TRACE_EVENT(.kind = obs::EventKind::kSpeedChange, .t = t, .job = jid, .machine = idle,
                    .value = kin.speed_at_weight(std::max(u0, 0.0)), .aux = u0);
        m.energy_acc += kin.grow_integral(u0, u1, job.density);
        TRACE_EVENT(.kind = obs::EventKind::kJobComplete, .t = t + dt, .job = jid,
                    .machine = idle, .value = m.energy_acc, .aux = offset);
      }
    }
  };

  while (true) {
    double next_event = kInf;
    if (next_release_idx < order.size()) {
      next_event = instance.job(order[next_release_idx]).release;
    }
    for (int i = 0; i < k; ++i) {
      const double bu = ms[static_cast<std::size_t>(i)].busy_until;
      if (bu >= 0.0) next_event = std::min(next_event, bu);
    }
    if (next_event == kInf) break;
    const double t = next_event;
    for (int i = 0; i < k; ++i) {
      MachineState& m = ms[static_cast<std::size_t>(i)];
      if (m.busy_until >= 0.0 && m.busy_until <= t) m.busy_until = -1.0;
    }
    while (next_release_idx < order.size() &&
           instance.job(order[next_release_idx]).release <= t) {
      const Job& j = instance.job(order[next_release_idx]);
      TRACE_EVENT(.kind = obs::EventKind::kJobRelease, .t = j.release, .job = j.id,
                  .value = j.volume, .aux = j.density);
      queue.push_back(order[next_release_idx]);
      ++next_release_idx;
    }
    try_assign(t);
  }

  for (auto& m : ms) out.schedules.push_back(std::move(m.schedule));
  out.metrics = parallel_metrics(instance, out.schedules, out.assignment, alpha);
  return out;
}

}  // namespace speedscale
