// Common result bundle returned by single-machine algorithm runs.
#pragma once

#include <optional>

#include "src/core/metrics.h"
#include "src/core/schedule.h"

namespace speedscale {

/// A completed run: the exact recorded schedule plus its evaluated objective.
struct RunResult {
  Schedule schedule;
  Metrics metrics;
  /// Per-event (online) accumulation of the same objective, when the
  /// algorithm maintains one — Kahan-compensated, never derived from the
  /// recorded schedule.  Tier-1 tests hold it to `metrics` within
  /// engine::kOnlineVsReplayRelTol (the streaming-metrics contract,
  /// docs/performance.md).
  std::optional<Metrics> online;

  explicit RunResult(double alpha) : schedule(alpha) {}
  RunResult(Schedule s, Metrics m) : schedule(std::move(s)), metrics(m) {}
};

}  // namespace speedscale
