// Common result bundle returned by single-machine algorithm runs.
#pragma once

#include "src/core/metrics.h"
#include "src/core/schedule.h"

namespace speedscale {

/// A completed run: the exact recorded schedule plus its evaluated objective.
struct RunResult {
  Schedule schedule;
  Metrics metrics;

  explicit RunResult(double alpha) : schedule(alpha) {}
  RunResult(Schedule s, Metrics m) : schedule(std::move(s)), metrics(m) {}
};

}  // namespace speedscale
