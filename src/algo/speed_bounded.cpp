#include "src/algo/speed_bounded.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/core/kinematics.h"
#include "src/core/power.h"

namespace speedscale {

namespace {

struct JobState {
  double remaining = 0.0;
  bool released = false;
};

}  // namespace

BoundedRun run_c_bounded(const Instance& instance, double alpha, double s_max) {
  if (!(s_max > 0.0)) throw ModelError("run_c_bounded: s_max must be positive");
  BoundedRun out(alpha);
  Schedule& sched = out.result.schedule;
  const PowerLawKinematics kin(alpha);
  const double cap_power = std::pow(s_max, alpha);

  std::vector<JobState> st(instance.size());
  for (const Job& j : instance.jobs()) st[static_cast<std::size_t>(j.id)].remaining = j.volume;
  std::set<std::pair<double, JobId>> pending;
  for (const Job& j : instance.jobs()) pending.insert({j.release, j.id});
  struct Hdf {
    const Instance* inst;
    bool operator()(JobId a, JobId b) const {
      const Job& ja = inst->job(a);
      const Job& jb = inst->job(b);
      if (ja.density != jb.density) return ja.density > jb.density;
      if (ja.release != jb.release) return ja.release < jb.release;
      return a < b;
    }
  };
  std::set<JobId, Hdf> active(Hdf{&instance});

  double t = 0.0;
  double W = 0.0;
  const auto release_due = [&]() {
    while (!pending.empty() && pending.begin()->first <= t) {
      const JobId id = pending.begin()->second;
      pending.erase(pending.begin());
      st[static_cast<std::size_t>(id)].released = true;
      W += instance.job(id).weight();
      active.insert(id);
    }
  };
  release_due();

  while (!active.empty() || !pending.empty()) {
    const double next_release = pending.empty() ? kInf : pending.begin()->first;
    if (active.empty()) {
      t = next_release;
      release_due();
      continue;
    }
    const JobId cur = *active.begin();
    const Job& job = instance.job(cur);
    JobState& cs = st[static_cast<std::size_t>(cur)];

    // Strictly-above-cap test with a relative tolerance: after a capped
    // stretch ends at the cap boundary, float residue can leave W a few ulp
    // above cap_power, which would otherwise produce a zero-length step and
    // an infinite loop.
    if (W > cap_power * (1.0 + 1e-12)) {
      // Capped phase: constant speed s_max; W falls linearly.
      const double t_uncap = t + (W - cap_power) / (job.density * s_max);
      const double t_complete = t + cs.remaining / s_max;
      const double t_event = std::min({t_uncap, t_complete, next_release});
      if (t_event > t) {
        out.seg_w0.push_back(W);
        sched.append({t, t_event, cur, SpeedLaw::kConstant, s_max, job.density});
      }
      const double dt = t_event - t;
      if (t_event == t_uncap) {
        W = cap_power;  // snap exactly onto the boundary
      } else {
        W = std::max(0.0, W - job.density * s_max * dt);
      }
      cs.remaining -= s_max * dt;
      t = t_event;
      if (t == t_complete && t <= t_uncap && t <= next_release) {
        cs.remaining = 0.0;
        active.erase(active.begin());
        sched.set_completion(cur, t);
      }
    } else {
      // Uncapped: the usual power-law decay.
      const double w_done = W - job.density * cs.remaining;
      const double t_complete = t + kin.decay_time_to_weight(W, std::max(w_done, 0.0), job.density);
      const double t_event = std::min(t_complete, next_release);
      if (t_event > t) {
        out.seg_w0.push_back(W);
        sched.append({t, t_event, cur, SpeedLaw::kPowerDecay, W, job.density});
      }
      if (t_complete <= next_release) {
        W = std::max(0.0, w_done);
        cs.remaining = 0.0;
        active.erase(active.begin());
        sched.set_completion(cur, t_complete);
        t = t_complete;
      } else {
        const double w1 = kin.decay_weight_after(W, job.density, t_event - t);
        cs.remaining = std::max(0.0, cs.remaining - (W - w1) / job.density);
        W = w1;
        t = t_event;
      }
    }
    release_due();
  }

  const PowerLaw power(alpha);
  out.result.metrics = compute_metrics(instance, sched, power);
  return out;
}

double bounded_remaining_weight_left(const BoundedRun& run, double t) {
  const Schedule& sched = run.result.schedule;
  const auto& segs = sched.segments();
  auto it = std::lower_bound(segs.begin(), segs.end(), t,
                             [](const Segment& s, double v) { return s.t0 < v; });
  if (it == segs.begin()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(it - segs.begin()) - 1;
  const Segment& seg = segs[idx];
  if (t > seg.t1) return 0.0;  // idle gap
  const double w0 = run.seg_w0.at(idx);
  const PowerLawKinematics kin(sched.alpha());
  switch (seg.law) {
    case SpeedLaw::kPowerDecay:
      return kin.decay_weight_after(w0, seg.rho, t - seg.t0);
    case SpeedLaw::kConstant:  // capped: W falls linearly at rho * s_max
      return std::max(0.0, w0 - seg.rho * seg.param * (t - seg.t0));
    default:
      throw ModelError("bounded_remaining_weight_left: not a clairvoyant bounded run");
  }
}

BoundedRun run_nc_bounded(const Instance& instance, double alpha, double s_max) {
  if (!(s_max > 0.0)) throw ModelError("run_nc_bounded: s_max must be positive");
  if (!instance.uniform_density(1e-9)) {
    throw ModelError("run_nc_bounded: instance must have uniform density");
  }
  const BoundedRun c_run = run_c_bounded(instance, alpha, s_max);

  BoundedRun out(alpha);
  Schedule& sched = out.result.schedule;
  const PowerLawKinematics kin(alpha);
  const double cap_power = std::pow(s_max, alpha);

  double t = 0.0;
  const std::vector<JobId> fifo = instance.fifo_order();
  for (std::size_t pos = 0; pos < fifo.size(); ++pos) {
    const JobId jid = fifo[pos];
    const Job& job = instance.job(jid);
    double offset = bounded_remaining_weight_left(c_run, job.release);
    for (std::size_t q = pos; q-- > 0;) {  // release-time ties, cf. NC uniform
      const Job& prev = instance.job(fifo[q]);
      if (prev.release != job.release) break;
      offset += prev.weight();
    }
    t = std::max(t, job.release);
    double u = offset;
    const double u_end = offset + job.weight();
    // Phase A: growing power-law speed while U < cap_power.
    if (u < cap_power) {
      const double u_stop = std::min(u_end, cap_power);
      const double dt = kin.grow_time_to_weight(u, u_stop, job.density);
      if (dt > 0.0) {
        out.seg_w0.push_back(u);
        sched.append({t, t + dt, jid, SpeedLaw::kPowerGrow, u, job.density});
        t += dt;
      }
      u = u_stop;
    }
    // Phase B: capped at s_max for the remaining volume.
    if (u < u_end) {
      const double vol_left = (u_end - u) / job.density;
      const double dt = vol_left / s_max;
      out.seg_w0.push_back(u);
      sched.append({t, t + dt, jid, SpeedLaw::kConstant, s_max, job.density});
      t += dt;
    }
    sched.set_completion(jid, t);
  }

  const PowerLaw power(alpha);
  out.result.metrics = compute_metrics(instance, sched, power);
  return out;
}

}  // namespace speedscale
