#include "src/algo/open_problem.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/algo/parallel.h"
#include "src/core/kinematics.h"
#include "src/sim/c_machine.h"
#include "src/workload/generators.h"

namespace speedscale {

OpenProblemRun run_cpar_density_restricted(const Instance& instance, double alpha, int k,
                                           double beta) {
  if (k < 1) throw ModelError("run_cpar_density_restricted: need at least one machine");
  const Instance rounded = beta > 1.0 ? instance.rounded_densities(beta) : instance;

  std::vector<CMachine> machines;
  machines.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) machines.emplace_back(alpha);
  std::vector<std::vector<JobId>> assigned(static_cast<std::size_t>(k));

  OpenProblemRun out;
  out.assignment.assign(instance.size(), kNoMachine);

  for (JobId jid : rounded.fifo_order()) {
    const Job& job = rounded.job(jid);
    int best = 0;
    double best_w = 0.0;
    for (int i = 0; i < k; ++i) {
      CMachine& m = machines[static_cast<std::size_t>(i)];
      m.advance_to(job.release);
      // Remaining weight restricted to jobs of equal-or-higher rounded
      // density — the paper's proposed comparator.
      double w = 0.0;
      for (JobId a : assigned[static_cast<std::size_t>(i)]) {
        if (rounded.job(a).density >= job.density * (1.0 - 1e-12)) {
          w += m.remaining_weight_of(a);
        }
      }
      if (i == 0 || w < best_w - 1e-15 * std::max(1.0, best_w)) {
        best_w = w;
        best = i;
      }
    }
    machines[static_cast<std::size_t>(best)].add_job(job);
    assigned[static_cast<std::size_t>(best)].push_back(jid);
    out.assignment[static_cast<std::size_t>(jid)] = best;
  }
  std::vector<Schedule> schedules;
  for (auto& m : machines) {
    m.run_to_completion();
    schedules.push_back(m.schedule());
  }
  out.metrics = parallel_metrics(instance, schedules, out.assignment, alpha);
  return out;
}

OpenProblemRun run_ncpar_hdf_queue(const Instance& instance, double alpha, int k, double beta) {
  if (k < 1) throw ModelError("run_ncpar_hdf_queue: need at least one machine");
  const Instance rounded = beta > 1.0 ? instance.rounded_densities(beta) : instance;
  const PowerLawKinematics kin(alpha);

  // Global priority queue: highest rounded density first, then FIFO.
  struct Pri {
    const Instance* inst;
    bool operator()(JobId a, JobId b) const {
      const Job& ja = inst->job(a);
      const Job& jb = inst->job(b);
      if (ja.density != jb.density) return ja.density > jb.density;
      if (ja.release != jb.release) return ja.release < jb.release;
      return a < b;
    }
  };
  std::set<JobId, Pri> queue(Pri{&rounded});

  struct MachineState {
    Schedule schedule;
    double busy_until = -1.0;  ///< < 0: idle
    explicit MachineState(double a) : schedule(a) {}
  };
  std::vector<MachineState> ms;
  ms.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) ms.emplace_back(alpha);

  OpenProblemRun out;
  out.assignment.assign(instance.size(), kNoMachine);

  const std::vector<JobId> order = rounded.fifo_order();
  std::size_t next_release_idx = 0;

  const auto try_assign = [&](double t) {
    while (!queue.empty()) {
      int idle = -1;
      for (int i = 0; i < k; ++i) {
        if (ms[static_cast<std::size_t>(i)].busy_until < 0.0) {
          idle = i;
          break;
        }
      }
      if (idle < 0) return;
      const JobId jid = *queue.begin();
      queue.erase(queue.begin());
      const Job& job = rounded.job(jid);
      MachineState& m = ms[static_cast<std::size_t>(idle)];
      // One job at a time ("dispatch only as needed"): a single-job
      // clairvoyant decay run from the job's weight.
      const double dt = kin.decay_time_to_zero(job.weight(), job.density);
      m.schedule.append({t, t + dt, jid, SpeedLaw::kPowerDecay, job.weight(), job.density});
      m.schedule.set_completion(jid, t + dt);
      m.busy_until = t + dt;
      out.assignment[static_cast<std::size_t>(jid)] = idle;
    }
  };

  while (true) {
    double next_event = kInf;
    if (next_release_idx < order.size()) {
      next_event = rounded.job(order[next_release_idx]).release;
    }
    for (int i = 0; i < k; ++i) {
      const double bu = ms[static_cast<std::size_t>(i)].busy_until;
      if (bu >= 0.0) next_event = std::min(next_event, bu);
    }
    if (next_event == kInf) break;
    const double t = next_event;
    for (int i = 0; i < k; ++i) {
      MachineState& m = ms[static_cast<std::size_t>(i)];
      if (m.busy_until >= 0.0 && m.busy_until <= t) m.busy_until = -1.0;
    }
    while (next_release_idx < order.size() &&
           rounded.job(order[next_release_idx]).release <= t) {
      queue.insert(order[next_release_idx]);
      ++next_release_idx;
    }
    try_assign(t);
  }

  std::vector<Schedule> schedules;
  for (auto& m : ms) schedules.push_back(std::move(m.schedule));
  out.metrics = parallel_metrics(instance, schedules, out.assignment, alpha);
  return out;
}

DivergenceReport search_divergence(double alpha, int k, int n_jobs, int seeds, double beta) {
  DivergenceReport rep;
  for (int s = 1; s <= seeds; ++s) {
    const Instance inst = workload::generate({.n_jobs = n_jobs,
                                              .arrival_rate = 1.5,
                                              .density_mode = workload::DensityMode::kClasses,
                                              .density_classes = 3,
                                              .density_spread = 30.0,
                                              .seed = static_cast<std::uint64_t>(s)});
    ++rep.instances_tried;
    const OpenProblemRun a = run_cpar_density_restricted(inst, alpha, k, beta);
    const OpenProblemRun b = run_ncpar_hdf_queue(inst, alpha, k, beta);
    bool same = true;
    for (std::size_t i = 0; i < inst.size(); ++i) {
      if (a.assignment[i] != b.assignment[i]) same = false;
    }
    if (!same) {
      ++rep.diverged;
      if (rep.first_divergent_seed == 0) rep.first_divergent_seed = static_cast<std::uint64_t>(s);
      rep.worst_cost_ratio = std::max(
          rep.worst_cost_ratio,
          b.metrics.fractional_objective() / a.metrics.fractional_objective());
    }
  }
  return rep;
}

}  // namespace speedscale
