#include "src/sim/speed_profile.h"

#include <algorithm>
#include <cmath>

#include "src/core/power.h"

namespace speedscale {

namespace {

/// Time within [seg.t0, seg.t1] at speed >= x, in closed form per law.
double segment_time_at_or_above(const PowerLawKinematics& kin, const Segment& seg, double x) {
  const double len = seg.duration();
  switch (seg.law) {
    case SpeedLaw::kIdle:
      return 0.0;
    case SpeedLaw::kConstant:
      return seg.param >= x ? len : 0.0;
    case SpeedLaw::kPowerDecay: {
      // Speed decreases; speed >= x while W >= x^alpha.
      const double w_thr = std::pow(x, kin.alpha());
      if (w_thr > seg.param) return 0.0;
      return std::min(len, kin.decay_time_to_weight(seg.param, w_thr, seg.rho));
    }
    case SpeedLaw::kPowerGrow: {
      // Speed increases; speed >= x once U >= x^alpha.
      const double u_thr = std::pow(x, kin.alpha());
      if (u_thr <= seg.param) return len;
      const double t_hit = kin.grow_time_to_weight(seg.param, u_thr, seg.rho);
      return std::max(0.0, len - t_hit);
    }
  }
  return 0.0;
}

}  // namespace

double time_at_or_above(const Schedule& schedule, double x) {
  if (!(x > 0.0)) throw ModelError("time_at_or_above: threshold must be positive");
  const PowerLawKinematics kin(schedule.alpha());
  double total = 0.0;
  for (const Segment& seg : schedule.segments()) {
    total += segment_time_at_or_above(kin, seg, x);
  }
  return total;
}

std::vector<double> level_set_measures(const Schedule& schedule,
                                       const std::vector<double>& thresholds) {
  std::vector<double> out;
  out.reserve(thresholds.size());
  for (double x : thresholds) out.push_back(time_at_or_above(schedule, x));
  return out;
}

std::vector<double> speed_threshold_grid(const Schedule& schedule, int count) {
  double s_max = 0.0;
  const PowerLawKinematics kin(schedule.alpha());
  for (const Segment& seg : schedule.segments()) {
    switch (seg.law) {
      case SpeedLaw::kIdle:
        break;
      case SpeedLaw::kConstant:
        s_max = std::max(s_max, seg.param);
        break;
      case SpeedLaw::kPowerDecay:
        s_max = std::max(s_max, kin.speed_at_weight(seg.param));
        break;
      case SpeedLaw::kPowerGrow:
        s_max = std::max(s_max, kin.speed_at_weight(
                                    kin.grow_weight_after(seg.param, seg.rho, seg.duration())));
        break;
    }
  }
  std::vector<double> grid;
  if (s_max <= 0.0) return grid;
  grid.reserve(static_cast<std::size_t>(count));
  const double lo = s_max * 1e-6;
  for (int i = 0; i < count; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(count - 1);
    grid.push_back(lo * std::pow(s_max / lo, f));
  }
  return grid;
}

double rearrangement_distance(const Schedule& a, const Schedule& b, int grid) {
  std::vector<double> thresholds = speed_threshold_grid(a, grid);
  const std::vector<double> tb = speed_threshold_grid(b, grid);
  thresholds.insert(thresholds.end(), tb.begin(), tb.end());
  std::sort(thresholds.begin(), thresholds.end());
  double worst = 0.0;
  for (double x : thresholds) {
    if (!(x > 0.0)) continue;
    worst = std::max(worst, std::abs(time_at_or_above(a, x) - time_at_or_above(b, x)));
  }
  return worst;
}

double energy_via_level_sets(const Schedule& schedule, const PowerFunction& power, int grid) {
  // E = int P(s(t)) dt = int_0^{P(s_max)} lambda{t : P(s(t)) >= p} dp.
  const std::vector<double> sgrid = speed_threshold_grid(schedule, 3);
  if (sgrid.empty()) return 0.0;
  const double p_max = power.power(sgrid.back()) * (1.0 + 1e-12);
  double total = 0.0;
  double prev_p = 0.0;
  double prev_m = time_at_or_above(schedule, power.speed_for_power(1e-14 * p_max) + 1e-300);
  for (int i = 1; i <= grid; ++i) {
    const double p = p_max * static_cast<double>(i) / static_cast<double>(grid);
    const double s = power.speed_for_power(p);
    const double m = s > 0.0 ? time_at_or_above(schedule, s) : prev_m;
    total += 0.5 * (prev_m + m) * (p - prev_p);
    prev_p = p;
    prev_m = m;
  }
  return total;
}

}  // namespace speedscale
