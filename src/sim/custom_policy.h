// Custom-policy engine: run any user-defined non-clairvoyant speed policy.
//
// The paper frames the online problem as a game in which, at every moment,
// the algorithm sees only *observable* information: the releases and
// densities of arrived jobs, how much of each it has processed, and which
// have completed.  This engine makes that interface a public extension
// point: implement a speed rule over ObservableState and the engine runs it
// with adaptive discrete stepping (midpoint rule), enforcing
// non-clairvoyance by construction — volumes are simply absent from the
// state the policy sees.
//
// The library's own algorithms have exact closed-form simulators; this
// engine exists for downstream experimentation (new speed rules, learned
// policies, hybrid heuristics) and is cross-validated against the exact
// simulators in the tests.
#pragma once

#include <functional>
#include <vector>

#include "src/algo/run_result.h"
#include "src/core/instance.h"

namespace speedscale {

/// Everything a non-clairvoyant algorithm may observe at an instant.
struct ObservableState {
  double time = 0.0;
  /// Jobs released so far, in release order.  Volumes are NOT exposed.
  struct VisibleJob {
    JobId id = kNoJob;
    double release = 0.0;
    double density = 1.0;
    double processed = 0.0;  ///< volume processed so far (known: it did the work)
    bool completed = false;  ///< completion reveals the volume == processed
  };
  std::vector<VisibleJob> jobs;

  /// Number of released, uncompleted jobs.
  [[nodiscard]] std::size_t active_count() const {
    std::size_t n = 0;
    for (const auto& j : jobs) {
      if (!j.completed) ++n;
    }
    return n;
  }
};

/// A policy decides which active job to run and at what speed.  Returning
/// job == kNoJob or speed <= 0 idles (the engine then jumps to the next
/// release).  The state outlives the call; policies may keep references.
struct PolicyDecision {
  JobId job = kNoJob;
  double speed = 0.0;
};
using SpeedPolicy = std::function<PolicyDecision(const ObservableState&)>;

struct CustomPolicyParams {
  double step_growth = 0.05;   ///< dt grows by this fraction of time-since-event
  double min_step = 1e-6;      ///< relative to the instance's natural time scale
  long max_steps = 50'000'000; ///< safety cap
};

/// Runs `policy` on `instance` with P(s) = s^alpha.  The recorded schedule
/// is piecewise constant in speed; metrics are exact for the recording.
/// Throws ModelError if the policy picks an unreleased/completed job or
/// idles forever while work remains.
[[nodiscard]] RunResult run_custom_policy(const Instance& instance, double alpha,
                                          const SpeedPolicy& policy,
                                          const CustomPolicyParams& params = {});

}  // namespace speedscale
