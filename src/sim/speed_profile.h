// Speed-profile measure comparison (paper Lemmas 6 and 7).
//
// Lemma 6 states that there is a measure-preserving bijection of time under
// which Algorithm NC's speed profile equals Algorithm C's.  Two measurable
// speed functions are rearrangements of each other iff their upper level-set
// measures agree:  lambda{t : s(t) >= x}  identical for every x >= 0.
// This module computes those level-set measures *in closed form* per
// schedule segment, so the lemma can be verified to ~1e-9 on any instance.
#pragma once

#include <vector>

#include "src/core/power.h"
#include "src/core/schedule.h"

namespace speedscale {

/// Total time the schedule runs at speed >= x (x > 0).
[[nodiscard]] double time_at_or_above(const Schedule& schedule, double x);

/// Level-set measures at each threshold in `thresholds`.
[[nodiscard]] std::vector<double> level_set_measures(const Schedule& schedule,
                                                     const std::vector<double>& thresholds);

/// A geometric grid of speed thresholds spanning the schedule's speed range,
/// suitable for rearrangement checks.  Returns `count` thresholds.
[[nodiscard]] std::vector<double> speed_threshold_grid(const Schedule& schedule, int count);

/// Max over the grid of |measure_a - measure_b|: a rearrangement distance.
/// Zero (to tolerance) iff the two profiles are equi-measurable on the grid.
[[nodiscard]] double rearrangement_distance(const Schedule& a, const Schedule& b, int grid = 257);

/// Total energy as seen through level sets, for an arbitrary power function:
/// E = int_0^inf lambda{t: P(s(t)) >= p} dp, evaluated by trapezoid on a
/// grid.  Used only as an independent cross-check in tests.
[[nodiscard]] double energy_via_level_sets(const Schedule& schedule, const PowerFunction& power,
                                           int grid = 20001);

}  // namespace speedscale
