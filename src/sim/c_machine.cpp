#include "src/sim/c_machine.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"

namespace speedscale {

CMachine::CMachine(double alpha) : kin_(alpha), schedule_(alpha) {}

void CMachine::add_job(const Job& job) {
  if (job.id < 0) throw ModelError("CMachine::add_job: job must have a valid id");
  if (job.release < now_ - 1e-12 * std::max(1.0, now_)) {
    throw ModelError("CMachine::add_job: release time precedes the simulation frontier");
  }
  const auto idx = static_cast<std::size_t>(job.id);
  if (index_of_id_.size() <= idx) index_of_id_.resize(idx + 1, SIZE_MAX);
  if (index_of_id_[idx] != SIZE_MAX) throw ModelError("CMachine::add_job: duplicate job id");
  index_of_id_[idx] = jobs_.size();
  JobState st;
  st.job = job;
  st.remaining = job.volume;
  jobs_.push_back(st);
  ids_.push_back(job.id);
  pending_.insert({std::max(job.release, now_), job.id});
  release_due_jobs();
}

const CMachine::JobState& CMachine::state(JobId id) const {
  const auto idx = static_cast<std::size_t>(id);
  if (idx >= index_of_id_.size() || index_of_id_[idx] == SIZE_MAX) {
    throw ModelError("CMachine: unknown job id");
  }
  return jobs_[index_of_id_[idx]];
}

CMachine::JobState& CMachine::state(JobId id) {
  return const_cast<JobState&>(static_cast<const CMachine*>(this)->state(id));
}

void CMachine::release_due_jobs() {
  while (!pending_.empty() && pending_.begin()->first <= now_) {
    const JobId id = pending_.begin()->second;
    pending_.erase(pending_.begin());
    JobState& st = state(id);
    st.released = true;
    total_weight_ += st.job.weight();
    active_.insert({st.job.density, st.job.release, id});
    OBS_COUNT("sim.c_machine.releases", 1);
    TRACE_EVENT(.kind = obs::EventKind::kJobRelease, .t = now_, .job = id,
                .machine = obs_machine_, .value = st.job.volume, .aux = st.job.density);
  }
}

void CMachine::advance_to(double t) {
  if (t < now_) throw ModelError("CMachine::advance_to: cannot move backwards");
  release_due_jobs();
  while (now_ < t) {
    const double next_release = pending_.empty() ? kInf : pending_.begin()->first;
    if (active_.empty()) {
      const double t_next = std::min(t, next_release);
      if (t_next == kInf) break;  // fully drained; frontier stays put
      now_ = t_next;
      release_due_jobs();
      continue;
    }
    const ActiveKey cur = *active_.begin();
    JobState& st = state(cur.id);
    const double rho = st.job.density;
    const double w0 = total_weight_;
    const double w_done = w0 - rho * st.remaining;  // weight level at completion
    const double t_complete = now_ + kin_.decay_time_to_weight(w0, w_done, rho);
    const double t_event = std::min({t, next_release, t_complete});

    if (t_event > now_) {
      schedule_.append({now_, t_event, cur.id, SpeedLaw::kPowerDecay, w0, rho});
      OBS_COUNT("sim.c_machine.segments", 1);
      // Preemption detection is shared by the metrics counter and the trace
      // event: the counter must fire whenever metrics are on (it is one of
      // the ledger's deterministic work signals), not only under tracing.
      const bool preempted = running_ != kNoJob && running_ != cur.id && !state(running_).done;
      if (preempted) OBS_COUNT("sim.c_machine.preemptions", 1);
      if (obs::tracing_enabled()) {
        if (preempted) {
          TRACE_EVENT(.kind = obs::EventKind::kPreemption, .t = now_, .job = running_,
                      .machine = obs_machine_, .value = static_cast<double>(cur.id),
                      .aux = state(running_).remaining);
        }
        TRACE_EVENT(.kind = obs::EventKind::kSpeedChange, .t = now_, .job = cur.id,
                    .machine = obs_machine_, .value = kin_.speed_at_weight(w0), .aux = w0);
      }
      running_ = cur.id;
    }

    if (t_complete <= t && t_complete <= next_release) {
      // Completion fires (at ties, completion precedes release handling).
      total_weight_ = std::max(0.0, w_done);
      st.remaining = 0.0;
      st.done = true;
      active_.erase(active_.begin());
      schedule_.set_completion(cur.id, t_complete);
      now_ = t_complete;
      OBS_COUNT("sim.c_machine.completions", 1);
      const bool tracing = obs::tracing_enabled();
      if (tracing || online_on_) {
        // int W dt over the finished stretch; for Algorithm C the cumulative
        // energy and cumulative fractional flow are the same integral.
        const double de = kin_.decay_integral(w0, std::max(w_done, 0.0), rho);
        if (online_on_) {
          om_.add_energy(de);
          om_.add_fractional_flow(de);
          om_.add_integral_flow(st.job.weight() * (t_complete - st.job.release));
        }
        if (tracing) {
          energy_acc_ += de;
          TRACE_EVENT(.kind = obs::EventKind::kJobComplete, .t = t_complete, .job = cur.id,
                      .machine = obs_machine_, .value = energy_acc_, .aux = energy_acc_);
        }
      }
    } else {
      const double dt = t_event - now_;
      const double w1 = kin_.decay_weight_after(w0, rho, dt);
      st.remaining = std::max(0.0, st.remaining - (w0 - w1) / rho);
      total_weight_ = w1;
      now_ = t_event;
      if (obs::tracing_enabled() || online_on_) {
        const double de = kin_.decay_integral(w0, w1, rho);
        if (online_on_) {
          om_.add_energy(de);
          om_.add_fractional_flow(de);
        }
        if (obs::tracing_enabled()) energy_acc_ += de;
      }
    }
    release_due_jobs();
  }
}

void CMachine::run_to_completion() { advance_to(kInf); }

bool CMachine::drained() const { return active_.empty() && pending_.empty(); }

double CMachine::completion_time_of_all() const {
  CMachine copy(*this);
  copy.run_to_completion();
  return copy.now_;
}

double CMachine::remaining_weight_left(double t) const {
  if (t > now_ + 1e-12 * std::max(1.0, now_)) {
    throw ModelError("CMachine::remaining_weight_left: t beyond simulation frontier");
  }
  return c_remaining_weight_left(schedule_, t);
}

double CMachine::remaining_volume(JobId id) const { return state(id).remaining; }

double CMachine::remaining_weight_of(JobId id) const {
  const JobState& st = state(id);
  return st.job.density * st.remaining;
}

Schedule run_algorithm_c(const Instance& instance, double alpha) {
  CMachine m(alpha);
  // add_job requires releases at/after the frontier, which is 0 here.
  for (const Job& j : instance.jobs()) m.add_job(j);
  m.run_to_completion();
  return m.schedule();
}

double c_remaining_weight_left(const Schedule& schedule, double t) {
  const auto& segs = schedule.segments();
  // Last segment with t0 < t.
  auto it = std::lower_bound(segs.begin(), segs.end(), t,
                             [](const Segment& s, double v) { return s.t0 < v; });
  if (it == segs.begin()) return 0.0;
  --it;
  if (t > it->t1) return 0.0;  // idle gap: Algorithm C is work-conserving
  if (it->law != SpeedLaw::kPowerDecay) {
    throw ModelError("c_remaining_weight_left: schedule is not an Algorithm C schedule");
  }
  const PowerLawKinematics kin(schedule.alpha());
  return kin.decay_weight_after(it->param, it->rho, t - it->t0);
}

}  // namespace speedscale
