// Generic numeric engine: Algorithms C and NC for *arbitrary* monotone convex
// power functions.
//
// The paper proves its structural lemmas at two levels of generality:
//   * Lemmas 3 and 6 (energy equality; measure-preserving speed profiles)
//     hold for every power function;
//   * Lemma 4 and the competitive ratios need P(s) = s^alpha.
// The exact engine (c_machine.h, algorithm_nc_uniform.h) covers the
// power-law case in closed form.  This engine integrates the defining ODEs
//     Algorithm C:   dW/dt = -rho * P^{-1}(W)   (W = remaining weight)
//     Algorithm NC:  dU/dt = +rho * P^{-1}(U)   (U = offset + processed)
// numerically (fixed-substep RK4 between events, trapezoid quadrature for
// the objective integrals), so experiment E11 can check the general-P lemmas
// and the tests can cross-validate the closed forms.
//
// Caveats, by design of the *model*, not the implementation:
//   * If P'(0) > 0 (e.g. leaky power laws), Algorithm C approaches each
//     completion only asymptotically (exponentially decaying weight).  Jobs
//     are therefore declared complete at a relative residual-volume epsilon,
//     which perturbs the objective by O(epsilon).
//   * The growing branch from U = 0 is selected by a bootstrap epsilon, the
//     numeric analogue of the paper's "excess speed epsilon" fix.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/core/instance.h"
#include "src/core/power.h"

namespace speedscale {

/// Knobs for the numeric engine.
struct NumericConfig {
  int substeps_per_interval = 4096;  ///< RK4 substeps between two events
  double completion_rel_eps = 1e-9;  ///< residual volume declared complete
  double bootstrap_rel_eps = 1e-9;   ///< U(0) floor, relative to total weight
};

/// A numerically-integrated run: dense samples plus accumulated objectives.
struct SampledRun {
  std::vector<double> t;       ///< sample times, non-decreasing
  std::vector<double> speed;   ///< machine speed at t[i]
  std::vector<double> weight;  ///< driving weight (W for C, U for NC) at t[i]
  std::map<JobId, double> completions;
  double energy = 0.0;
  double fractional_flow = 0.0;
  double integral_flow = 0.0;
  /// Times the three sample vectors grew (geometric, reserved up front for a
  /// whole interval — the RK4 evolve loop itself never reallocates).  The
  /// stress test holds this to O(log samples).
  std::uint64_t sample_reallocs = 0;

  [[nodiscard]] double fractional_objective() const { return energy + fractional_flow; }
  [[nodiscard]] double integral_objective() const { return energy + integral_flow; }

  /// Left limit of the driving weight at time `x` (pre-event value at event
  /// epochs).  For a C run this is W^C(x^-), the Algorithm NC offset.
  [[nodiscard]] double weight_left(double x) const;

  /// Measure of {t : speed >= x}, from the samples (piecewise linear speed).
  [[nodiscard]] double time_at_or_above(double x) const;
};

/// Algorithm C under an arbitrary power function.
[[nodiscard]] SampledRun run_generic_c(const Instance& instance, const PowerFunction& power,
                                       const NumericConfig& cfg = {});

/// Algorithm NC (uniform density, FIFO + P(s) = W^C(r_j^-) + processed(j))
/// under an arbitrary power function.
[[nodiscard]] SampledRun run_generic_nc_uniform(const Instance& instance,
                                                const PowerFunction& power,
                                                const NumericConfig& cfg = {});

}  // namespace speedscale
