#include "src/sim/custom_policy.h"

#include <algorithm>
#include <cmath>

#include "src/core/kinematics.h"
#include "src/core/power.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"

namespace speedscale {

RunResult run_custom_policy(const Instance& instance, double alpha, const SpeedPolicy& policy,
                            const CustomPolicyParams& params) {
  RunResult out(alpha);
  if (instance.empty()) return out;
  Schedule& sched = out.schedule;
  const PowerLawKinematics kin(alpha);

  // Natural scales for the integrator (simulator-side knowledge only).
  const double t_ref =
      kin.decay_time_to_zero(std::max(instance.total_weight(), 1e-300), instance.min_density()) +
      instance.max_release();
  const double min_dt = params.min_step * std::max(t_ref, 1e-12);

  ObservableState st;
  st.jobs.reserve(instance.size());
  std::vector<std::size_t> visible_index(instance.size(), SIZE_MAX);
  const std::vector<JobId> order = instance.fifo_order();
  std::size_t next_release_idx = 0;

  // Trace bookkeeping: cumulative energy / fractional flow and the active
  // (released, unfinished) weight, all maintained only while tracing.
  const bool tracing = obs::tracing_enabled();
  double energy_acc = 0.0;
  double flow_acc = 0.0;
  double active_weight = 0.0;
  JobId traced_running = kNoJob;

  const auto release_due = [&](double t) {
    while (next_release_idx < order.size() &&
           instance.job(order[next_release_idx]).release <= t) {
      const Job& j = instance.job(order[next_release_idx]);
      visible_index[static_cast<std::size_t>(j.id)] = st.jobs.size();
      st.jobs.push_back({j.id, j.release, j.density, 0.0, false});
      if (tracing) {
        active_weight += j.weight();
        TRACE_EVENT(.kind = obs::EventKind::kJobRelease, .t = j.release, .job = j.id,
                    .value = j.volume, .aux = j.density, .label = "custom_policy");
      }
      ++next_release_idx;
    }
  };

  double t = 0.0;
  double t_last_event = 0.0;
  std::size_t remaining = instance.size();
  long steps = 0;

  release_due(0.0);
  while (remaining > 0) {
    if (++steps > params.max_steps) {
      throw ModelError("run_custom_policy: step cap exceeded");
    }
    st.time = t;
    const double next_rel = next_release_idx < order.size()
                                ? instance.job(order[next_release_idx]).release
                                : kInf;
    const PolicyDecision d = policy(st);
    if (d.job == kNoJob || d.speed <= 0.0) {
      if (next_rel == kInf) {
        throw ModelError("run_custom_policy: policy idles while work remains");
      }
      t = next_rel;
      t_last_event = t;
      release_due(t);
      continue;
    }
    const auto jid = static_cast<std::size_t>(d.job);
    if (jid >= instance.size() || visible_index[jid] == SIZE_MAX) {
      throw ModelError("run_custom_policy: policy chose an unreleased job");
    }
    ObservableState::VisibleJob& vj = st.jobs[visible_index[jid]];
    if (vj.completed) {
      throw ModelError("run_custom_policy: policy chose a completed job");
    }
    const Job& job = instance.job(d.job);

    double dt = std::max(min_dt, params.step_growth * (t - t_last_event));
    if (next_rel < kInf) dt = std::min(dt, next_rel - t);

    // Midpoint probe: re-query the policy halfway through the tentative
    // step; keep its speed if it still runs the same job.
    const double p_before = vj.processed;
    vj.processed = std::min(job.volume, p_before + 0.5 * d.speed * dt);
    st.time = t + 0.5 * dt;
    const PolicyDecision mid = policy(st);
    vj.processed = p_before;
    st.time = t;
    const double speed = (mid.job == d.job && mid.speed > 0.0) ? mid.speed : d.speed;

    // Completion inside the step? (engine-side oracle)
    const double vrem = job.volume - vj.processed;
    bool completes = false;
    if (speed * dt >= vrem) {
      dt = vrem / speed;
      completes = true;
    }
    sched.append({t, t + dt, d.job, SpeedLaw::kConstant, speed, job.density});
    if (tracing) {
      // Only decision changes are events; per-step integration stays silent.
      if (d.job != traced_running) {
        if (traced_running != kNoJob &&
            !st.jobs[visible_index[static_cast<std::size_t>(traced_running)]].completed) {
          const auto& prev = st.jobs[visible_index[static_cast<std::size_t>(traced_running)]];
          TRACE_EVENT(.kind = obs::EventKind::kPreemption, .t = t, .job = traced_running,
                      .value = static_cast<double>(d.job),
                      .aux = instance.job(traced_running).volume - prev.processed,
                      .label = "custom_policy");
        }
        TRACE_EVENT(.kind = obs::EventKind::kSpeedChange, .t = t, .job = d.job, .value = speed,
                    .aux = vj.processed, .label = "custom_policy");
        traced_running = d.job;
      }
      OBS_COUNT("sim.custom_policy.steps", 1);
      // Constant speed over [t, t+dt]: exact closed forms per step.
      energy_acc += std::pow(speed, alpha) * dt;
      flow_acc += active_weight * dt - 0.5 * job.density * speed * dt * dt;
      active_weight = std::max(0.0, active_weight - job.density * speed * dt);
    }
    vj.processed = completes ? job.volume : vj.processed + speed * dt;
    t += dt;

    if (completes) {
      vj.completed = true;
      --remaining;
      sched.set_completion(d.job, t);
      t_last_event = t;
      if (tracing) {
        TRACE_EVENT(.kind = obs::EventKind::kJobComplete, .t = t, .job = d.job,
                    .value = energy_acc, .aux = flow_acc, .label = "custom_policy");
        traced_running = kNoJob;
      }
    } else if (next_rel < kInf && t >= next_rel - 1e-15 * std::max(1.0, next_rel)) {
      t_last_event = t;
    }
    release_due(t);
  }

  const PowerLaw power(alpha);
  out.metrics = compute_metrics(instance, sched, power);
  return out;
}

}  // namespace speedscale
