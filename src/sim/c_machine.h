// CMachine: an exact, incremental simulator of Algorithm C on one machine.
//
// Algorithm C (paper, Section 2) is the 2-competitive clairvoyant algorithm
// of Bansal, Chan, and Pruhs: process the active job of highest density
// (ties broken FIFO, as the paper's analysis assumes), at the speed s with
// P(s) = W(t), the total remaining weight.  For P(s) = s^alpha every
// inter-event stretch follows the closed-form decay of
// core/kinematics.h, so the simulation is event-driven and exact.
//
// CMachine is *incremental*: jobs may be appended while the simulation
// frontier advances, as long as each job's release time is at or after the
// frontier.  This is exactly what the higher layers need:
//   * Algorithm NC (Section 3) queries W^C(r[j]^-) of a virtual C run;
//   * C-PAR (Section 6) dispatches arriving jobs to the machine with least
//     remaining weight, then resumes each machine;
//   * NC-PAR maintains one virtual CMachine per real machine;
//   * the non-uniform Algorithm NC re-solves C on the evolving instance I(t).
#pragma once

#include <deque>
#include <set>
#include <vector>

#include "src/core/instance.h"
#include "src/core/kinematics.h"
#include "src/core/metrics.h"
#include "src/core/schedule.h"
#include "src/engine/online_metrics.h"

namespace speedscale {

class CMachine {
 public:
  explicit CMachine(double alpha);

  /// Adds a job. `job.release` must be >= the current frontier time.
  /// Jobs may be added in any release order as long as this holds.
  void add_job(const Job& job);

  /// Advances the simulation frontier to time t (>= current frontier),
  /// processing all releases/completions in between.
  void advance_to(double t);

  /// Advances until every added job has completed.
  void run_to_completion();

  /// Current simulation frontier.
  [[nodiscard]] double now() const { return now_; }

  /// Total remaining weight W(frontier) — the value driving the speed.
  [[nodiscard]] double remaining_weight() const { return total_weight_; }

  /// Left limit W(t^-) for any t <= frontier: the remaining weight just
  /// before time t, excluding jobs released exactly at t.  This is the
  /// quantity W^C(r[j]^-) in the definition of Algorithm NC.
  [[nodiscard]] double remaining_weight_left(double t) const;

  /// Remaining volume of a job (by the id it carried in add_job).
  [[nodiscard]] double remaining_volume(JobId id) const;

  /// Remaining *weight* (density * remaining volume) of a single job.
  [[nodiscard]] double remaining_weight_of(JobId id) const;

  /// True when no active or pending work remains.
  [[nodiscard]] bool drained() const;

  /// Time when all currently-known jobs will complete if nothing else
  /// arrives.  (Computed analytically without advancing the frontier.)
  [[nodiscard]] double completion_time_of_all() const;

  /// The recorded schedule (valid up to the frontier).
  [[nodiscard]] const Schedule& schedule() const { return schedule_; }

  /// Number of active (released, unfinished) jobs at the frontier.
  [[nodiscard]] std::size_t active_count() const { return active_.size(); }

  [[nodiscard]] double alpha() const { return kin_.alpha(); }

  /// Machine id stamped onto this simulator's trace events (multi-machine
  /// runs label each CMachine; single-machine runs leave kNoMachine).
  void set_obs_machine(MachineId m) { obs_machine_ = m; }

  /// Cumulative int W dt up to the frontier.  Under the P = W rule this is
  /// both the energy and the fractional flow spent so far; it is the
  /// cumulative payload of the job_complete trace events.  Only maintained
  /// while tracing is enabled (0 otherwise) — the disabled hot path must not
  /// pay the closed-form integral per segment.
  [[nodiscard]] double traced_energy() const { return energy_acc_; }

  /// Opt-in online objective accumulation (off by default for the same
  /// hot-path reason as traced_energy).  Enable before the first advance:
  /// every stretch adds its int W dt — which under P = W is both energy and
  /// fractional flow — and every completion lands the job's integral
  /// weighted flow.  Kahan-compensated; see docs/performance.md.
  void set_online_metrics(bool on) { online_on_ = on; }
  [[nodiscard]] bool online_metrics_enabled() const { return online_on_; }

  /// The objective accumulated so far (zeros unless enabled).
  [[nodiscard]] Metrics online_metrics() const { return om_.metrics(); }

 private:
  struct ActiveKey {
    double density;
    double release;
    JobId id;
    /// HDF first; FIFO within a density level; ids break exact ties.
    bool operator<(const ActiveKey& o) const {
      if (density != o.density) return density > o.density;
      if (release != o.release) return release < o.release;
      return id < o.id;
    }
  };

  struct JobState {
    Job job;
    double remaining = 0.0;
    bool released = false;
    bool done = false;
  };

  [[nodiscard]] const JobState& state(JobId id) const;
  [[nodiscard]] JobState& state(JobId id);
  void release_due_jobs();

  PowerLawKinematics kin_;
  double now_ = 0.0;
  double total_weight_ = 0.0;
  double energy_acc_ = 0.0;         // cumulative int W dt (tracing only)
  bool online_on_ = false;
  engine::OnlineMetrics om_;        // online objective (opt-in only)
  JobId running_ = kNoJob;          // job of the last appended segment
  MachineId obs_machine_ = kNoMachine;
  Schedule schedule_;
  std::vector<JobState> jobs_;              // indexed by insertion order
  std::vector<std::size_t> index_of_id_;    // JobId -> index in jobs_
  std::vector<JobId> ids_;                  // insertion order -> JobId
  std::set<ActiveKey> active_;
  // Pending (not yet released) jobs ordered by (release, id).
  std::set<std::pair<double, JobId>> pending_;
};

/// Runs Algorithm C start-to-finish on an instance and returns its schedule.
[[nodiscard]] Schedule run_algorithm_c(const Instance& instance, double alpha);

/// Remaining-weight left limit W^C(t^-) recovered from a completed Algorithm
/// C schedule (the decay-law parameters *are* the weight trajectory).
[[nodiscard]] double c_remaining_weight_left(const Schedule& schedule, double t);

}  // namespace speedscale
