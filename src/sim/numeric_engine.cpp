#include "src/sim/numeric_engine.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <set>
#include <string>

#include "src/engine/online_metrics.h"
#include "src/numerics/ode.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/robust/diagnostics.h"
#include "src/robust/fault_injection.h"

namespace speedscale {

namespace {

/// Outcome of integrating the driving weight over one inter-event interval.
struct IntervalOutcome {
  double t_end = 0.0;     ///< where integration stopped
  double y_end = 0.0;     ///< driving weight there
  double int_y = 0.0;     ///< int Y dt over [t_start, t_end]
  bool crossed = false;   ///< true if the completion target was hit
};

/// Integrates dY/dt = sign * rho * P^{-1}(Y) from (t0, y0) to at most t1,
/// stopping early when Y crosses `target` (from above if sign < 0, from
/// below if sign > 0).  Fixed-substep RK4 + per-substep bisection for the
/// crossing; accumulates int Y dt by trapezoid and appends samples.
IntervalOutcome integrate_interval(const PowerFunction& power, double rho, double sign,
                                   double t0, double y0, double t1, double target,
                                   int substeps, SampledRun* run) {
  OBS_COUNT("numerics.engine.intervals", 1);
  IntervalOutcome out;
  if (run) {
    // Reserve the whole interval's worth of samples up front (1 entry sample
    // + at most one per substep), growing geometrically, so the substep loop
    // below never reallocates mid-evolve.
    const std::size_t need = run->t.size() + static_cast<std::size_t>(substeps) + 2;
    if (run->t.capacity() < need) {
      const std::size_t cap = std::max({need, run->t.capacity() * 2, std::size_t{1024}});
      run->t.reserve(cap);
      run->speed.reserve(cap);
      run->weight.reserve(cap);
      ++run->sample_reallocs;
    }
  }
  const auto rhs = [&](double /*t*/, double y) {
    return sign * rho * power.speed_for_power(std::max(y, 0.0));
  };
  const auto crossed = [&](double y) {
    return sign < 0.0 ? y <= target + 1e-300 : y >= target - 1e-300;
  };

  double t = t0, y = y0;
  const double h = (t1 - t0) / static_cast<double>(substeps);
  if (run) {
    run->t.push_back(t);
    run->speed.push_back(power.speed_for_power(std::max(y, 0.0)));
    run->weight.push_back(y);
  }
  for (int i = 0; i < substeps; ++i) {
    const double t_next = (i + 1 == substeps) ? t1 : t0 + h * (i + 1);
    double y_next = numerics::rk4_step(rhs, t, y, t_next - t);
    if (robust::fault_fire(robust::FaultSite::kOdeSubstepNaN)) {
      y_next = std::numeric_limits<double>::quiet_NaN();
    }
    // Boundary guard: a poisoned substep is a typed diagnostic here, not a
    // NaN that propagates into objectives three layers downstream.
    if (!std::isfinite(y_next)) {
      OBS_COUNT("sim.numeric_engine.nonfinite_substeps", 1);
      throw robust::RobustError(
          robust::ErrorCode::kNumericNonfinite, "integrate_interval: non-finite substep",
          "t=" + std::to_string(t) + " substep=" + std::to_string(i));
    }
    if (crossed(y_next)) {
      OBS_COUNT("sim.numeric_engine.ode_substeps", i + 1);
      OBS_COUNT("sim.numeric_engine.crossings", 1);
      // Localize the crossing within [t, t_next] by bisection on the
      // sub-step length (RK4 from the sub-step start each probe).
      double lo = 0.0, hi = t_next - t;
      int bisect_iters = 0;
      for (int it = 0; it < 60; ++it) {
        ++bisect_iters;
        const double mid = 0.5 * (lo + hi);
        if (crossed(numerics::rk4_step(rhs, t, y, mid))) {
          hi = mid;
        } else {
          lo = mid;
        }
        if (hi - lo < 1e-15 * std::max(1.0, t)) break;
      }
      OBS_COUNT("sim.numeric_engine.crossing_bisect_iters", bisect_iters);
      const double t_hit = t + hi;
      out.int_y += 0.5 * (y + target) * (t_hit - t);
      out.t_end = t_hit;
      out.y_end = target;
      out.crossed = true;
      if (run) {
        run->t.push_back(t_hit);
        run->speed.push_back(power.speed_for_power(std::max(target, 0.0)));
        run->weight.push_back(target);
      }
      return out;
    }
    out.int_y += 0.5 * (y + y_next) * (t_next - t);
    t = t_next;
    y = y_next;
    if (run) {
      run->t.push_back(t);
      run->speed.push_back(power.speed_for_power(std::max(y, 0.0)));
      run->weight.push_back(y);
    }
  }
  OBS_COUNT("sim.numeric_engine.ode_substeps", substeps);
  out.t_end = t1;
  out.y_end = y;
  return out;
}

struct JobProgress {
  double remaining = 0.0;
  bool released = false;
  bool done = false;
};

}  // namespace

double SampledRun::weight_left(double x) const {
  if (t.empty()) return 0.0;
  auto it = std::lower_bound(t.begin(), t.end(), x);
  if (it == t.end()) return weight.back();
  const std::size_t i = static_cast<std::size_t>(it - t.begin());
  if (t[i] == x || i == 0) return weight[i];
  const double f = (x - t[i - 1]) / (t[i] - t[i - 1]);
  return weight[i - 1] + f * (weight[i] - weight[i - 1]);
}

double SampledRun::time_at_or_above(double x) const {
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    const double dt = t[i + 1] - t[i];
    if (dt <= 0.0) continue;
    const double s0 = speed[i], s1 = speed[i + 1];
    if (s0 >= x && s1 >= x) {
      total += dt;
    } else if (s0 >= x || s1 >= x) {
      const double hi = std::max(s0, s1), lo = std::min(s0, s1);
      total += dt * (hi - x) / std::max(hi - lo, 1e-300);
    }
  }
  return total;
}

SampledRun run_generic_c(const Instance& instance, const PowerFunction& power,
                         const NumericConfig& cfg) {
  SampledRun run;
  // Compensated accumulation: objective integrals are sums of millions of
  // tiny trapezoid pieces at high substep counts — plain += loses digits.
  engine::OnlineMetrics om;
  std::vector<JobProgress> prog(instance.size());
  for (const Job& j : instance.jobs()) {
    prog[static_cast<std::size_t>(j.id)].remaining = j.volume;
  }
  // Pending releases sorted by time; active ordered HDF then FIFO.
  std::set<std::pair<double, JobId>> pending;
  for (const Job& j : instance.jobs()) pending.insert({j.release, j.id});
  struct ActiveLess {
    const Instance* inst;
    bool operator()(JobId a, JobId b) const {
      const Job& ja = inst->job(a);
      const Job& jb = inst->job(b);
      if (ja.density != jb.density) return ja.density > jb.density;
      if (ja.release != jb.release) return ja.release < jb.release;
      return a < b;
    }
  };
  std::set<JobId, ActiveLess> active(ActiveLess{&instance});

  double t = 0.0;
  double W = 0.0;

  // Sentinel pre-release sample so weight_left(0) is the left limit (0), not
  // the post-release jump.
  run.t.push_back(0.0);
  run.speed.push_back(0.0);
  run.weight.push_back(0.0);

  const auto release_due = [&]() {
    while (!pending.empty() && pending.begin()->first <= t) {
      const JobId id = pending.begin()->second;
      pending.erase(pending.begin());
      prog[static_cast<std::size_t>(id)].released = true;
      W += instance.job(id).weight();
      active.insert(id);
      const Job& j = instance.job(id);
      TRACE_EVENT(.kind = obs::EventKind::kJobRelease, .t = j.release, .job = id,
                  .value = j.volume, .aux = j.density, .label = "numeric_c");
    }
  };
  release_due();

  while (!active.empty() || !pending.empty()) {
    const double next_release = pending.empty() ? kInf : pending.begin()->first;
    if (active.empty()) {
      // Idle until the next release; flow does not accrue (nothing active).
      run.t.push_back(t);
      run.speed.push_back(0.0);
      run.weight.push_back(0.0);
      t = next_release;
      run.t.push_back(t);
      run.speed.push_back(0.0);
      run.weight.push_back(0.0);
      release_due();
      continue;
    }
    const JobId cur = *active.begin();
    const Job& job = instance.job(cur);
    JobProgress& pc = prog[static_cast<std::size_t>(cur)];
    const double eps_vol = cfg.completion_rel_eps * job.volume;
    const double target = W - job.density * std::max(pc.remaining - eps_vol, 0.0);

    // Horizon: the next release if one exists, else a guess from the current
    // speed (an underestimate of the true completion time, since the speed
    // only decreases).  If the guess proves short the outer loop simply
    // re-enters with the same current job and a fresh, larger estimate —
    // every pass makes strictly positive progress toward `target`.
    double horizon = next_release;
    if (horizon == kInf) {
      const double s_now = power.speed_for_power(std::max(W, 1e-300));
      horizon = t + 4.0 * std::max(pc.remaining / std::max(s_now, 1e-300), 1e-12);
    }
    const IntervalOutcome oc = integrate_interval(power, job.density, -1.0, t, W, horizon,
                                                  target, cfg.substeps_per_interval, &run);

    const double dt = oc.t_end - t;
    const double dV = (W - oc.y_end) / job.density;
    // Energy: P(s) = W along the run.
    om.add_energy(oc.int_y);
    // Fractional flow: every active job accrues rho * V; the current job's
    // V decreases inside the interval.
    for (JobId id : active) {
      const Job& ja = instance.job(id);
      const double v = prog[static_cast<std::size_t>(id)].remaining;
      if (id == cur) {
        const double int_processed = (W * dt - oc.int_y) / job.density;
        om.add_fractional_flow(ja.density * (v * dt - int_processed));
      } else {
        om.add_fractional_flow(ja.density * v * dt);
      }
    }
    t = oc.t_end;
    W = oc.y_end;
    pc.remaining = std::max(0.0, pc.remaining - dV);

    if (oc.crossed) {
      // Residual epsilon-volume is declared complete; drop its weight.
      W = std::max(0.0, W - job.density * pc.remaining);
      pc.remaining = 0.0;
      pc.done = true;
      active.erase(active.begin());
      run.completions[cur] = t;
      om.add_integral_flow(job.weight() * (t - job.release));
      TRACE_EVENT(.kind = obs::EventKind::kJobComplete, .t = t, .job = cur,
                  .value = om.energy(), .aux = om.fractional_flow(), .label = "numeric_c");
    }
    release_due();
  }
  run.energy = om.energy();
  run.fractional_flow = om.fractional_flow();
  run.integral_flow = om.integral_flow();
  return run;
}

SampledRun run_generic_nc_uniform(const Instance& instance, const PowerFunction& power,
                                  const NumericConfig& cfg) {
  if (!instance.uniform_density(1e-9)) {
    throw ModelError("run_generic_nc_uniform: instance must have uniform density");
  }
  // The NC speed rule needs W^C(r_j^-): run the clairvoyant algorithm first.
  // It is a virtual run — its events stay out of the NC trace.
  const SampledRun c_run = [&] {
    obs::TraceSuppressGuard suppress_virtual_run;
    return run_generic_c(instance, power, cfg);
  }();

  SampledRun run;
  engine::OnlineMetrics om;
  std::vector<JobProgress> prog(instance.size());
  for (const Job& j : instance.jobs()) {
    prog[static_cast<std::size_t>(j.id)].remaining = j.volume;
  }
  const std::vector<JobId> fifo = instance.fifo_order();
  const double bootstrap = cfg.bootstrap_rel_eps * std::max(instance.total_weight(), 1e-300);

  // Release bookkeeping for fractional-flow accrual of waiting jobs.
  std::vector<double> releases;
  for (const Job& j : instance.jobs()) releases.push_back(j.release);
  std::sort(releases.begin(), releases.end());

  // Release events interleave into the trace in time order.
  std::size_t next_rel_idx = 0;
  const auto emit_releases_up_to = [&](double tau) {
    while (next_rel_idx < fifo.size() && instance.job(fifo[next_rel_idx]).release <= tau) {
      const Job& j = instance.job(fifo[next_rel_idx]);
      TRACE_EVENT(.kind = obs::EventKind::kJobRelease, .t = j.release, .job = j.id,
                  .value = j.volume, .aux = j.density, .label = "numeric_nc");
      ++next_rel_idx;
    }
  };

  double t = 0.0;
  for (JobId jid : fifo) {
    const Job& job = instance.job(jid);
    JobProgress& pj = prog[static_cast<std::size_t>(jid)];

    if (t < job.release) {
      run.t.push_back(t);
      run.speed.push_back(0.0);
      run.weight.push_back(0.0);
      t = job.release;
      run.t.push_back(t);
      run.speed.push_back(0.0);
      run.weight.push_back(0.0);
    }

    emit_releases_up_to(std::max(t, job.release));
    const double offset = c_run.weight_left(job.release);
    double U = std::max(offset, bootstrap);
    const double U_target = U + job.density * pj.remaining;

    while (pj.remaining > 0.0) {
      // Cut at release epochs so waiting jobs' flow accrues piecewise.
      auto next_rel = std::upper_bound(releases.begin(), releases.end(), t);
      double horizon = (next_rel == releases.end()) ? kInf : *next_rel;
      if (horizon == kInf) {
        // Speed only grows, so vrem/s_now over-estimates the completion time
        // and vrem/s_target under-estimates it.  Starting from a tiny
        // bootstrap weight the over-estimate explodes; cap the pass length by
        // a multiple of the under-estimate and let the outer loop re-enter.
        const double s_now = power.speed_for_power(std::max(U, bootstrap));
        const double s_target = power.speed_for_power(U_target);
        const double over = pj.remaining / std::max(s_now, 1e-300);
        const double under = pj.remaining / std::max(s_target, 1e-300);
        horizon = t + std::max(std::min(over, 64.0 * under), 1e-12);
      }
      const IntervalOutcome oc = integrate_interval(power, job.density, +1.0, t, U, horizon,
                                                    U_target, cfg.substeps_per_interval, &run);
      const double dt = oc.t_end - t;
      const double dV = (oc.y_end - U) / job.density;
      om.add_energy(oc.int_y);  // P(s) = U along the run
      // Current job's fractional flow.
      const double int_processed = (oc.int_y - U * dt) / job.density;
      om.add_fractional_flow(job.density * (pj.remaining * dt - int_processed));
      // Waiting (released, unfinished, not current) jobs accrue fully.
      for (const Job& other : instance.jobs()) {
        if (other.id == jid) continue;
        const JobProgress& po = prog[static_cast<std::size_t>(other.id)];
        if (!po.done && other.release <= t + 1e-15) {
          om.add_fractional_flow(other.density * po.remaining * dt);
        }
      }
      t = oc.t_end;
      U = oc.y_end;
      pj.remaining = std::max(0.0, pj.remaining - dV);
      if (oc.crossed) pj.remaining = 0.0;
      if (pj.remaining <= 0.0) break;
    }
    pj.done = true;
    run.completions[jid] = t;
    om.add_integral_flow(job.weight() * (t - job.release));
    emit_releases_up_to(t);
    TRACE_EVENT(.kind = obs::EventKind::kJobComplete, .t = t, .job = jid,
                .value = om.energy(), .aux = om.fractional_flow(), .label = "numeric_nc");
  }
  if (obs::tracing_enabled()) emit_releases_up_to(kInf);
  run.energy = om.energy();
  run.fractional_flow = om.fractional_flow();
  run.integral_flow = om.integral_flow();
  return run;
}

}  // namespace speedscale
