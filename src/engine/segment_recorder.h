// Bounded-memory schedule recording for the streaming engine.
//
// A full `Schedule` is O(jobs); at 10M jobs that is exactly the resident
// state the streaming engine exists to avoid.  The recorder offers three
// modes:
//
//   kOff  — nothing recorded; metrics are online-only (the 10M-run mode);
//   kRing — the newest `ring_capacity` segments are kept in a fixed-size
//           ring; older ones are dropped and counted;
//   kRingSpill — like kRing, but *every* segment is also appended to a JSONL
//           spill file through `obs::JsonlSink` (crash-safe tmp + rename on
//           close), so certificates and traces can be rebuilt offline even
//           though the process never held the whole schedule.
//
// Spill wire format `speedscale.segments/1` (docs/performance.md): one
// header object (schema + alpha), then one object per segment with the
// byte-stable number encoding of json_util.h:
//   {"schema":"speedscale.segments/1","alpha":2}
//   {"t0":..,"t1":..,"job":..,"law":"power_grow","param":..,"rho":..,
//    "machine":0,"complete":true}
// `read_spilled_schedule` rebuilds a single-machine `Schedule` from such a
// file, strict-parsing each line with obs::parse_json.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/schedule.h"

namespace speedscale::obs {
class JsonlSink;
}  // namespace speedscale::obs

namespace speedscale::engine {

enum class RecordMode : std::uint8_t {
  kOff,       ///< metrics online-only; nothing is recorded
  kRing,      ///< newest segments in a fixed ring, older ones dropped+counted
  kRingSpill, ///< ring + every segment appended to a JSONL spill file
};

struct RecorderOptions {
  RecordMode mode = RecordMode::kRing;
  std::size_t ring_capacity = 1 << 16;
  std::string spill_path;      ///< required for kRingSpill
  std::size_t flush_every = 4096;  ///< spill sink flush cadence (lines)
};

/// One recorded segment: the schedule segment plus which machine ran it and
/// whether its job completes at t1.
struct RecordedSegment {
  Segment seg;
  int machine = 0;
  bool completes = false;
};

class SegmentRecorder {
 public:
  explicit SegmentRecorder(double alpha, RecorderOptions options = {});
  ~SegmentRecorder();

  SegmentRecorder(const SegmentRecorder&) = delete;
  SegmentRecorder& operator=(const SegmentRecorder&) = delete;

  void push(const Segment& seg, int machine, bool completes);

  /// Commits the spill file (tmp -> final rename).  Idempotent; called by
  /// the destructor if the caller forgets.
  void close();

  [[nodiscard]] RecordMode mode() const { return options_.mode; }
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Total lines written to the spill file (the schema header included), so
  /// it matches a `wc -l` of the closed file: recorded() + 1 when spilling.
  [[nodiscard]] std::uint64_t spilled_lines() const { return spilled_lines_; }

  /// The ring's contents, oldest first.
  [[nodiscard]] std::vector<RecordedSegment> ring_snapshot() const;

  /// Rebuilds a single-machine Schedule from the ring.  Throws ModelError if
  /// segments were dropped (the ring is not the whole run) or if more than
  /// one machine was recorded.
  [[nodiscard]] Schedule to_schedule() const;

 private:
  double alpha_;
  RecorderOptions options_;
  std::vector<RecordedSegment> ring_;
  std::size_t ring_head_ = 0;  // next write position once the ring is full
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t spilled_lines_ = 0;
  std::unique_ptr<obs::JsonlSink> spill_;
  std::string line_scratch_;
};

/// Serializes one recorded segment as a `speedscale.segments/1` JSONL line
/// (no trailing newline).
[[nodiscard]] std::string segment_json_line(const RecordedSegment& rec);

/// Reads a `speedscale.segments/1` spill back into a single-machine Schedule
/// (segments in file order, completions taken from `complete` markers).
/// Throws ModelError on schema mismatch, malformed lines, or a multi-machine
/// spill.
[[nodiscard]] Schedule read_spilled_schedule(const std::string& path);

}  // namespace speedscale::engine
