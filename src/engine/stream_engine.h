// Streaming Algorithm NC (uniform density): millions of jobs, O(active) RSS.
//
// The exact simulators materialize whole instances and full RunResults; for
// ROADMAP item 1 ("millions of jobs per run") the engine must instead be as
// online as the algorithm it simulates.  This engine pulls release-ordered
// jobs from a JobSource and keeps only:
//
//   * the active jobs, in a JobArena (SoA, free-list recycled slots);
//   * one O(1) virtual-clairvoyant tracker per machine: with uniform density
//     the C run's total remaining weight W^C(t) evolves by the closed-form
//     decay *independently of which job C picks*, so the NC offset
//     W^C(r_j^-) is: decay W between releases, take the value at r_j (the
//     left limit — W^C is continuous, jumping only *up* at releases), then
//     add w_j.  Tied releases fall out sequentially: the second job of a
//     cohort sees left-limit + w_1, exactly run_nc_uniform's add-back rule;
//   * OnlineMetrics accumulators (Kahan) — no post-hoc replay;
//   * a SegmentRecorder (ring / ring+spill / off) instead of a Schedule.
//
// Each job is one closed-form kPowerGrow segment (FIFO, work-conserving), so
// per job the engine does O(1) work and the only unbounded state is the
// backlog itself.  `engine.stream/10M` (BENCH_PR10.json) pins the 10M-job
// run with the RSS plateau asserted by bench/bench_engine_stream.cpp.
//
// Multi-machine mode dispatches arrivals across k machines with the
// observable-information policies of algo/dispatch.h (round robin / least
// count; first-fit needs the job count up front, which a stream does not
// have) and runs one independent NC machine — virtual-C tracker included —
// per real machine, the NCPar shape of algo/parallel.h.
#pragma once

#include <cstdint>
#include <memory>

#include "src/algo/dispatch.h"
#include "src/core/metrics.h"
#include "src/engine/job_source.h"
#include "src/engine/segment_recorder.h"

namespace speedscale::engine {

struct StreamOptions {
  double alpha = 2.0;
  int machines = 1;
  DispatchPolicy dispatch = DispatchPolicy::kRoundRobin;
  RecorderOptions recorder;     ///< RecordMode::kOff for metrics-online-only runs
  std::uint64_t gauge_every = 0;  ///< publish engine.stream.* gauges every N
                                  ///< completions (0 = off; gauges only, so the
                                  ///< deterministic counter half is untouched)
};

struct StreamResult {
  Metrics online;               ///< Kahan-accumulated, no replay
  std::uint64_t jobs = 0;
  double makespan = 0.0;        ///< latest completion across machines
  std::size_t arena_high_water = 0;
  std::size_t arena_capacity = 0;  ///< allocated slots (the RSS witness)
  std::uint64_t segments_recorded = 0;
  std::uint64_t segments_dropped = 0;
  std::uint64_t spill_lines = 0;
};

class StreamEngine {
 public:
  explicit StreamEngine(const StreamOptions& options);

  /// Consumes `source` to exhaustion.  Throws ModelError on non-uniform
  /// densities, a decreasing release, or an unsupported dispatch policy.
  /// One run per engine instance.
  StreamResult run(JobSource& source);

  /// The recorder of the completed run (ring snapshot, spill tallies).
  [[nodiscard]] const SegmentRecorder& recorder() const;

 private:
  StreamOptions options_;
  std::unique_ptr<SegmentRecorder> recorder_;
  bool ran_ = false;
};

}  // namespace speedscale::engine
