// Pull-based job sources for the streaming engine.
//
// A JobSource yields jobs one at a time in non-decreasing release order —
// the only ordering the streaming engine needs, and the order every sane
// trace is written in.  Sources own whatever state they need to produce the
// next job in O(1) memory:
//
//   TraceJobSource     — streams a CSV trace (trace_io format) line by line,
//                        never materializing an Instance.  Strict/lenient
//                        semantics match workload::read_trace exactly (the
//                        shared parse_trace_job_line), including torn-tail
//                        rejection; release monotonicity violations are a
//                        strict error / lenient skip.
//   SyntheticJobSource — deterministic seeded generator (Poisson arrivals,
//                        exponential volumes, uniform density), the O(1)
//                        analogue of workload::generate for benchmarks that
//                        outgrow any in-memory instance.
//   InstanceJobSource  — adapts an in-memory Instance (FIFO order); the
//                        equivalence bridge the tests use to compare the
//                        streaming engine against run_nc_uniform.
#pragma once

#include <cstdint>
#include <istream>
#include <vector>

#include "src/core/instance.h"
#include "src/core/types.h"
#include "src/workload/trace_io.h"

namespace speedscale::engine {

class JobSource {
 public:
  virtual ~JobSource() = default;
  /// Yields the next job; returns false at end of stream.  Implementations
  /// must yield non-decreasing `release` values.
  virtual bool next(Job* out) = 0;
};

class TraceJobSource : public JobSource {
 public:
  /// `is` must outlive the source.  The header line is consumed on the first
  /// next() call; all read_trace diagnostics carry line numbers.
  explicit TraceJobSource(std::istream& is,
                          workload::TraceReadMode mode = workload::TraceReadMode::kStrict);

  bool next(Job* out) override;
  [[nodiscard]] const workload::TraceReadStats& stats() const { return stats_; }

 private:
  std::istream& is_;
  workload::TraceReadMode mode_;
  workload::TraceReadStats stats_;
  std::string line_;
  std::size_t line_no_ = 0;
  std::int64_t next_id_ = 0;
  double last_release_ = -kInf;
  bool header_done_ = false;
};

class SyntheticJobSource : public JobSource {
 public:
  struct Params {
    std::uint64_t n_jobs = 0;
    double arrival_rate = 2.0;  ///< Poisson arrivals (exponential gaps)
    double volume_mean = 1.0;   ///< exponential volumes
    double density = 1.0;       ///< uniform density (the NC-uniform setting)
    std::uint64_t seed = 1;
  };

  explicit SyntheticJobSource(const Params& params);
  bool next(Job* out) override;

 private:
  [[nodiscard]] double next_unit();  ///< uniform (0, 1], deterministic

  Params params_;
  std::uint64_t state_;
  std::uint64_t emitted_ = 0;
  double clock_ = 0.0;
};

class InstanceJobSource : public JobSource {
 public:
  /// `instance` must outlive the source.
  explicit InstanceJobSource(const Instance& instance);
  bool next(Job* out) override;

 private:
  const Instance& instance_;
  std::vector<JobId> fifo_;
  std::size_t pos_ = 0;
};

}  // namespace speedscale::engine
