#include "src/engine/stream_engine.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <string>
#include <vector>

#include "src/core/kinematics.h"
#include "src/engine/job_arena.h"
#include "src/engine/online_metrics.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"

namespace speedscale::engine {

namespace {

/// A job waiting in (or at the head of) a machine's FIFO queue.  `dt` is the
/// segment duration, computed once when the job reaches the head (the
/// frontier is final by then) and cached across drain passes.
struct Pending {
  JobArena::Slot slot = JobArena::kNoSlot;
  double offset = 0.0;  ///< W^C(r^-) + tied-cohort weights, fixed at admit
  double start = 0.0;
  double dt = -1.0;     ///< < 0 until computed at the queue head
};

struct Machine {
  double frontier = 0.0;  ///< end of the last scheduled segment
  double c_weight = 0.0;  ///< virtual clairvoyant remaining weight
  double c_time = 0.0;    ///< time c_weight refers to
  std::deque<Pending> queue;
  std::uint64_t assigned = 0;
};

}  // namespace

StreamEngine::StreamEngine(const StreamOptions& options) : options_(options) {
  if (!(options_.alpha > 1.0)) throw ModelError("StreamEngine: alpha must exceed 1");
  if (options_.machines < 1) throw ModelError("StreamEngine: need at least one machine");
  if (options_.machines > 1 && options_.dispatch == DispatchPolicy::kFirstFit) {
    throw ModelError("StreamEngine: first-fit dispatch needs the job count up front; "
                     "a stream has no count — use round robin or least count");
  }
}

const SegmentRecorder& StreamEngine::recorder() const {
  if (!recorder_) throw ModelError("StreamEngine::recorder: no completed run");
  return *recorder_;
}

StreamResult StreamEngine::run(JobSource& source) {
  if (ran_) throw ModelError("StreamEngine::run: one run per engine instance");
  ran_ = true;
  recorder_ = std::make_unique<SegmentRecorder>(options_.alpha, options_.recorder);

  const PowerLawKinematics kin(options_.alpha);
  JobArena arena;
  OnlineMetrics om;
  StreamResult result;
  std::vector<Machine> machines(static_cast<std::size_t>(options_.machines));
  double rho = 0.0;  // uniform density, learned from the first job
  obs::MetricsRegistry& reg = obs::registry();

  // Completes every finished job at the head of machine m's queue whose
  // completion time is at or before `now` — the lazy evaluation that keeps
  // the arena at O(backlog): a job's segment depends only on the machine
  // frontier and its own admit-time offset, never on later arrivals.
  const auto drain = [&](std::size_t mi, double now) {
    Machine& m = machines[mi];
    while (!m.queue.empty()) {
      Pending& p = m.queue.front();
      if (p.dt < 0.0) {
        p.start = std::max(m.frontier, arena.release(p.slot));
        const double w = arena.weight(p.slot);
        p.dt = kin.grow_time_to_weight(p.offset, p.offset + w, rho);
      }
      const double t_end = p.start + p.dt;
      if (t_end > now) break;

      const JobId jid = arena.id(p.slot);
      const double release = arena.release(p.slot);
      const double w = arena.weight(p.slot);
      const double u0 = p.offset;
      const double u1 = p.offset + w;
      // Per-job closed forms (Lemmas 3/4, as in run_nc_uniform_detailed):
      // segment energy is the C energy of the swept weight band, and the
      // job's whole-lifetime fractional flow folds its waiting time in at
      // completion.
      const double e_j = kin.grow_integral(u0, u1, rho);
      om.add_energy(e_j);
      om.add_fractional_flow(w * (p.start - release) + u1 * p.dt - e_j);
      om.add_integral_flow(w * (t_end - release));

      recorder_->push({p.start, t_end, jid, SpeedLaw::kPowerGrow, u0, rho},
                      static_cast<int>(mi), /*completes=*/true);
      TRACE_EVENT(.kind = obs::EventKind::kSpeedChange, .t = p.start, .job = jid,
                  .machine = static_cast<int>(mi),
                  .value = kin.speed_at_weight(std::max(u0, 0.0)), .aux = u0);
      TRACE_EVENT(.kind = obs::EventKind::kJobComplete, .t = t_end, .job = jid,
                  .machine = static_cast<int>(mi), .value = om.energy(),
                  .aux = om.fractional_flow());

      m.frontier = t_end;
      result.makespan = std::max(result.makespan, t_end);
      arena.retire(p.slot);
      m.queue.pop_front();
      ++result.jobs;
      if (options_.gauge_every > 0 && result.jobs % options_.gauge_every == 0) {
        reg.gauge("engine.stream.jobs_done").set(static_cast<double>(result.jobs));
        reg.gauge("engine.stream.arena_live").set(static_cast<double>(arena.live()));
        reg.gauge("engine.stream.arena_high_water")
            .set(static_cast<double>(arena.high_water()));
        reg.gauge("engine.stream.makespan").set(result.makespan);
      }
    }
  };
  const auto drain_all = [&](double now) {
    for (std::size_t mi = 0; mi < machines.size(); ++mi) drain(mi, now);
  };

  const auto dispatch_next = [&]() -> std::size_t {
    if (machines.size() == 1) return 0;
    switch (options_.dispatch) {
      case DispatchPolicy::kRoundRobin:
        return static_cast<std::size_t>(arena.admitted() % machines.size());
      case DispatchPolicy::kLeastCount: {
        std::size_t best = 0;
        for (std::size_t mi = 1; mi < machines.size(); ++mi) {
          if (machines[mi].assigned < machines[best].assigned) best = mi;
        }
        return best;
      }
      case DispatchPolicy::kFirstFit: break;  // rejected in the constructor
    }
    throw ModelError("StreamEngine: unsupported dispatch policy");
  };

  Job job;
  double last_release = -kInf;
  while (source.next(&job)) {
    if (result.jobs == 0 && arena.live() == 0 && arena.admitted() == 0) {
      rho = job.density;
      if (!(rho > 0.0)) throw ModelError("StreamEngine: density must be positive");
    } else if (std::abs(job.density - rho) > 1e-9 * std::max(1.0, std::abs(rho))) {
      throw ModelError("StreamEngine: the uniform-density NC rule needs one density; job " +
                       std::to_string(job.id) + " breaks it");
    }
    if (job.release < last_release) {
      throw ModelError("StreamEngine: job source must yield non-decreasing releases");
    }
    last_release = job.release;

    // Complete everything that finishes before this arrival, then admit.
    drain_all(job.release);
    TRACE_EVENT(.kind = obs::EventKind::kJobRelease, .t = job.release, .job = job.id,
                .value = job.volume, .aux = job.density);

    const std::size_t mi = dispatch_next();
    Machine& m = machines[mi];
    // Virtual C tracker: decay to the release, read the left limit, add w.
    m.c_weight = kin.decay_weight_after(m.c_weight, rho, job.release - m.c_time);
    m.c_time = job.release;
    const double offset = m.c_weight;
    m.c_weight += job.density * job.volume;

    const JobArena::Slot slot = arena.admit(job.id, job.release, job.volume, job.density);
    m.queue.push_back({slot, offset, 0.0, -1.0});
    ++m.assigned;
  }
  drain_all(kInf);

  recorder_->close();
  result.online = om.metrics();
  result.arena_high_water = arena.high_water();
  result.arena_capacity = arena.capacity();
  result.segments_recorded = recorder_->recorded();
  result.segments_dropped = recorder_->dropped();
  result.spill_lines = recorder_->spilled_lines();

  // One batched counter emission per run: per-event OBS_COUNTs would cost a
  // registry touch per job at 10M jobs, and the end-of-run totals are the
  // same deterministic work signals.
  OBS_COUNT("engine.stream.jobs", static_cast<std::int64_t>(result.jobs));
  OBS_COUNT("engine.stream.arena_high_water",
            static_cast<std::int64_t>(result.arena_high_water));
  OBS_COUNT("engine.stream.arena_slots", static_cast<std::int64_t>(result.arena_capacity));
  if (options_.recorder.mode != RecordMode::kOff) {
    OBS_COUNT("engine.stream.segments_recorded",
              static_cast<std::int64_t>(result.segments_recorded));
    OBS_COUNT("engine.stream.segments_dropped",
              static_cast<std::int64_t>(result.segments_dropped));
  }
  if (options_.recorder.mode == RecordMode::kRingSpill) {
    OBS_COUNT("engine.stream.spill_lines", static_cast<std::int64_t>(result.spill_lines));
  }
  return result;
}

}  // namespace speedscale::engine
