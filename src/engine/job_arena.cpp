#include "src/engine/job_arena.h"

#include <algorithm>
#include <string>

namespace speedscale::engine {

std::size_t JobArena::check(Slot s) const {
  const auto i = static_cast<std::size_t>(s);
  if (i >= id_.size() || !live_flag_[i]) {
    throw ModelError("JobArena: access to a dead or out-of-range slot " + std::to_string(s));
  }
  return i;
}

JobArena::Slot JobArena::admit(JobId id, double release, double volume, double density) {
  Slot s;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
    const auto i = static_cast<std::size_t>(s);
    id_[i] = id;
    release_[i] = release;
    volume_[i] = volume;
    density_[i] = density;
    remaining_[i] = volume;
    live_flag_[i] = 1;
  } else {
    if (id_.size() >= static_cast<std::size_t>(kNoSlot)) {
      throw ModelError("JobArena: slot space exhausted");
    }
    s = static_cast<Slot>(id_.size());
    id_.push_back(id);
    release_.push_back(release);
    volume_.push_back(volume);
    density_.push_back(density);
    remaining_.push_back(volume);
    live_flag_.push_back(1);
  }
  ++live_;
  high_water_ = std::max(high_water_, live_);
  ++admitted_;
  return s;
}

void JobArena::retire(Slot slot) {
  const std::size_t i = check(slot);
  live_flag_[i] = 0;
  free_.push_back(slot);
  --live_;
  ++retired_;
}

}  // namespace speedscale::engine
