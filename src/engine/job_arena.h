// SoA job storage with arena allocation for the streaming engine.
//
// The streaming engine's working set is the *active* jobs (released, not yet
// completed), not the whole instance.  The arena keeps them in parallel
// arrays (structure-of-arrays: id / release / volume / density / remaining)
// and recycles completed slots through a free list, so resident memory is
// O(max simultaneous active jobs) — the plateau the `engine.stream/10M`
// bench asserts — no matter how many jobs stream through.
//
// Slots are stable: a slot index stays valid until `retire(slot)` returns it
// to the free list.  Debug-friendly by construction: admitting never moves
// existing entries (vectors only grow when the free list is empty), and
// retire/access of a dead slot throws instead of corrupting a neighbor.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/types.h"

namespace speedscale::engine {

class JobArena {
 public:
  using Slot = std::uint32_t;
  static constexpr Slot kNoSlot = static_cast<Slot>(-1);

  /// Admits a job, reusing a retired slot when one is free.
  Slot admit(JobId id, double release, double volume, double density);

  /// Returns a completed job's slot to the free list.
  void retire(Slot slot);

  [[nodiscard]] JobId id(Slot s) const { return id_[check(s)]; }
  [[nodiscard]] double release(Slot s) const { return release_[check(s)]; }
  [[nodiscard]] double volume(Slot s) const { return volume_[check(s)]; }
  [[nodiscard]] double density(Slot s) const { return density_[check(s)]; }
  [[nodiscard]] double remaining(Slot s) const { return remaining_[check(s)]; }
  void set_remaining(Slot s, double v) { remaining_[check(s)] = v; }

  /// Weight of the job in `s` under the known-density model: rho * volume.
  [[nodiscard]] double weight(Slot s) const {
    const std::size_t i = check(s);
    return density_[i] * volume_[i];
  }

  /// Currently-live (admitted, not retired) slots.
  [[nodiscard]] std::size_t live() const { return live_; }
  /// Peak simultaneous live slots — the memory plateau's witness.
  [[nodiscard]] std::size_t high_water() const { return high_water_; }
  /// Allocated slots (live + free-listed): the arena's actual footprint.
  [[nodiscard]] std::size_t capacity() const { return id_.size(); }
  [[nodiscard]] std::uint64_t admitted() const { return admitted_; }
  [[nodiscard]] std::uint64_t retired() const { return retired_; }

 private:
  [[nodiscard]] std::size_t check(Slot s) const;

  std::vector<JobId> id_;
  std::vector<double> release_;
  std::vector<double> volume_;
  std::vector<double> density_;
  std::vector<double> remaining_;
  std::vector<std::uint8_t> live_flag_;
  std::vector<Slot> free_;
  std::size_t live_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t retired_ = 0;
};

}  // namespace speedscale::engine
