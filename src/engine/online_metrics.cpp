#include "src/engine/online_metrics.h"

#include <algorithm>
#include <cmath>

namespace speedscale::engine {

namespace {

bool component_ok(double online, double replayed, double rel_tol) {
  if (!std::isfinite(online) || !std::isfinite(replayed)) return false;
  return std::abs(online - replayed) <= rel_tol * std::max(1.0, std::abs(replayed));
}

}  // namespace

bool metrics_within_tolerance(const Metrics& online, const Metrics& replayed, double rel_tol,
                              std::string* why) {
  struct Row {
    const char* name;
    double online;
    double replayed;
  };
  const Row rows[] = {
      {"energy", online.energy, replayed.energy},
      {"fractional_flow", online.fractional_flow, replayed.fractional_flow},
      {"integral_flow", online.integral_flow, replayed.integral_flow},
  };
  for (const Row& r : rows) {
    if (!component_ok(r.online, r.replayed, rel_tol)) {
      if (why) {
        *why = std::string(r.name) + ": online " + std::to_string(r.online) + " vs replayed " +
               std::to_string(r.replayed) + " (rel tol " + std::to_string(rel_tol) + ")";
      }
      return false;
    }
  }
  return true;
}

}  // namespace speedscale::engine
