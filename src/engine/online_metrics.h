// Incremental (online) objective accumulation for streaming runs.
//
// The streaming engine (stream_engine.h) and the per-event accumulators in
// the simulators cannot afford a post-hoc `compute_metrics` replay — for a
// 10M-job run there is no recorded schedule to replay.  Instead every event
// adds its closed-form contribution here.  Sums are Kahan-compensated (the
// same discipline core/metrics.cpp uses for its active-weight sums), so a
// 10M-term accumulation stays within a few ulp of the replayed value; the
// documented contract is `kOnlineVsReplayRelTol` (docs/performance.md,
// "Online vs recomputed metrics"), enforced by the tier-1 tests.
#pragma once

#include <cmath>
#include <string>

#include "src/core/metrics.h"

namespace speedscale::engine {

/// Relative tolerance of the online-vs-recomputed metrics contract: the
/// closed-form simulators accumulate exactly the same per-segment integrals
/// the replay evaluates, so the two differ only by summation order.
inline constexpr double kOnlineVsReplayRelTol = 1e-7;

/// Kahan–Neumaier compensated sum: the error term survives additions whose
/// magnitude exceeds the running sum (early large terms, late small ones).
class KahanSum {
 public:
  void add(double x) {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }
  [[nodiscard]] double value() const { return sum_ + comp_; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

/// Per-event objective accumulators: energy, fractional weighted flow,
/// integral weighted flow.  Purely additive — callers supply the closed-form
/// contribution of each segment/completion.
class OnlineMetrics {
 public:
  void add_energy(double e) { energy_.add(e); }
  void add_fractional_flow(double f) { fractional_.add(f); }
  void add_integral_flow(double f) { integral_.add(f); }

  [[nodiscard]] double energy() const { return energy_.value(); }
  [[nodiscard]] double fractional_flow() const { return fractional_.value(); }
  [[nodiscard]] double integral_flow() const { return integral_.value(); }

  [[nodiscard]] Metrics metrics() const {
    Metrics m;
    m.energy = energy_.value();
    m.fractional_flow = fractional_.value();
    m.integral_flow = integral_.value();
    return m;
  }

 private:
  KahanSum energy_;
  KahanSum fractional_;
  KahanSum integral_;
};

/// Checks the online-vs-recomputed contract: every component of `online`
/// must match `replayed` within `rel_tol`, relative to max(1, |replayed|).
/// Returns false and fills `why` (when given) naming the first component out
/// of tolerance.
[[nodiscard]] bool metrics_within_tolerance(const Metrics& online, const Metrics& replayed,
                                            double rel_tol = kOnlineVsReplayRelTol,
                                            std::string* why = nullptr);

}  // namespace speedscale::engine
