#include "src/engine/segment_recorder.h"

#include <algorithm>
#include <fstream>

#include "src/obs/json_min.h"
#include "src/obs/json_util.h"
#include "src/obs/trace.h"

namespace speedscale::engine {

namespace {

constexpr const char* kSchema = "speedscale.segments/1";

const char* law_name(SpeedLaw law) {
  switch (law) {
    case SpeedLaw::kIdle: return "idle";
    case SpeedLaw::kConstant: return "constant";
    case SpeedLaw::kPowerDecay: return "power_decay";
    case SpeedLaw::kPowerGrow: return "power_grow";
  }
  throw ModelError("segment_recorder: unknown speed law");
}

SpeedLaw law_from_name(const std::string& name) {
  if (name == "idle") return SpeedLaw::kIdle;
  if (name == "constant") return SpeedLaw::kConstant;
  if (name == "power_decay") return SpeedLaw::kPowerDecay;
  if (name == "power_grow") return SpeedLaw::kPowerGrow;
  throw ModelError("segment_recorder: unknown speed-law name '" + name + "'");
}

}  // namespace

std::string segment_json_line(const RecordedSegment& rec) {
  std::string out = "{\"t0\":";
  obs::append_json_number(out, rec.seg.t0);
  out += ",\"t1\":";
  obs::append_json_number(out, rec.seg.t1);
  out += ",\"job\":" + std::to_string(rec.seg.job);
  out += ",\"law\":\"";
  out += law_name(rec.seg.law);
  out += "\",\"param\":";
  obs::append_json_number(out, rec.seg.param);
  out += ",\"rho\":";
  obs::append_json_number(out, rec.seg.rho);
  out += ",\"machine\":" + std::to_string(rec.machine);
  out += rec.completes ? ",\"complete\":true}" : ",\"complete\":false}";
  return out;
}

SegmentRecorder::SegmentRecorder(double alpha, RecorderOptions options)
    : alpha_(alpha), options_(std::move(options)) {
  if (options_.mode == RecordMode::kRing || options_.mode == RecordMode::kRingSpill) {
    if (options_.ring_capacity == 0) {
      throw ModelError("SegmentRecorder: ring_capacity must be positive");
    }
    ring_.reserve(std::min<std::size_t>(options_.ring_capacity, 1 << 20));
  }
  if (options_.mode == RecordMode::kRingSpill) {
    if (options_.spill_path.empty()) {
      throw ModelError("SegmentRecorder: kRingSpill needs a spill_path");
    }
    spill_ = std::make_unique<obs::JsonlSink>(options_.spill_path);
    obs::JsonlSink::FlushPolicy policy;
    policy.mode = obs::JsonlSink::FlushPolicy::Mode::kEveryN;
    policy.every_n = std::max<std::size_t>(options_.flush_every, 1);
    spill_->set_flush_policy(policy);
    std::string header = "{\"schema\":\"";
    header += kSchema;
    header += "\",\"alpha\":";
    obs::append_json_number(header, alpha_);
    header += '}';
    spill_->write_line(header);
    ++spilled_lines_;
  }
}

SegmentRecorder::~SegmentRecorder() { close(); }

void SegmentRecorder::close() {
  if (spill_) {
    spill_->close();
  }
}

void SegmentRecorder::push(const Segment& seg, int machine, bool completes) {
  if (options_.mode == RecordMode::kOff) return;
  ++recorded_;
  if (spill_) {
    line_scratch_ = segment_json_line({seg, machine, completes});
    spill_->write_line(line_scratch_);
    ++spilled_lines_;
  }
  if (ring_.size() < options_.ring_capacity) {
    ring_.push_back({seg, machine, completes});
  } else {
    ring_[ring_head_] = {seg, machine, completes};
    ring_head_ = (ring_head_ + 1) % options_.ring_capacity;
    ++dropped_;
  }
}

std::vector<RecordedSegment> SegmentRecorder::ring_snapshot() const {
  std::vector<RecordedSegment> out;
  if (ring_.empty()) return out;
  out.reserve(ring_.size());
  // ring_head_ is the oldest entry once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  return out;
}

Schedule SegmentRecorder::to_schedule() const {
  if (options_.mode == RecordMode::kOff) {
    throw ModelError("SegmentRecorder::to_schedule: recording is off");
  }
  if (dropped_ > 0) {
    throw ModelError("SegmentRecorder::to_schedule: " + std::to_string(dropped_) +
                     " segments were dropped by the ring; use the spill file");
  }
  Schedule sched(alpha_);
  for (const RecordedSegment& rec : ring_snapshot()) {
    if (rec.machine != 0) {
      throw ModelError("SegmentRecorder::to_schedule: multi-machine recording; "
                       "rebuild per machine from the spill instead");
    }
    sched.append(rec.seg);
    if (rec.completes) sched.set_completion(rec.seg.job, rec.seg.t1);
  }
  return sched;
}

Schedule read_spilled_schedule(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw ModelError("read_spilled_schedule: cannot open '" + path + "'");
  std::string line;
  if (!std::getline(f, line)) throw ModelError("read_spilled_schedule: empty spill");
  const obs::JsonValue header = obs::parse_json(line);
  if (header.at("schema").string != kSchema) {
    throw ModelError("read_spilled_schedule: schema mismatch in '" + path + "'");
  }
  Schedule sched(header.at("alpha").number);
  std::size_t line_no = 1;
  while (std::getline(f, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (f.eof()) {
      throw ModelError("read_spilled_schedule: unterminated final line (torn tail) at line " +
                       std::to_string(line_no));
    }
    const obs::JsonValue v = obs::parse_json(line);
    if (v.at("machine").number != 0.0) {
      throw ModelError("read_spilled_schedule: multi-machine spill (line " +
                       std::to_string(line_no) + "); filter by machine first");
    }
    Segment seg;
    seg.t0 = v.at("t0").number;
    seg.t1 = v.at("t1").number;
    seg.job = static_cast<JobId>(v.at("job").number);
    seg.law = law_from_name(v.at("law").string);
    seg.param = v.at("param").number;
    seg.rho = v.at("rho").number;
    sched.append(seg);
    if (v.at("complete").boolean) sched.set_completion(seg.job, seg.t1);
  }
  return sched;
}

}  // namespace speedscale::engine
