#include "src/engine/job_source.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace speedscale::engine {

namespace {

[[noreturn]] void malformed(std::string message, std::size_t line_no) {
  throw workload::TraceIoError(robust::Diagnostic{robust::ErrorCode::kIoMalformed,
                                                  std::move(message),
                                                  "line " + std::to_string(line_no)});
}

}  // namespace

// --- TraceJobSource ---------------------------------------------------------

TraceJobSource::TraceJobSource(std::istream& is, workload::TraceReadMode mode)
    : is_(is), mode_(mode) {}

bool TraceJobSource::next(Job* out) {
  if (!header_done_) {
    ++line_no_;
    if (!std::getline(is_, line_)) malformed("empty stream", 1);
    if (line_.rfind("id,", 0) != 0) malformed("missing 'id,...' header", 1);
    header_done_ = true;
  }
  while (std::getline(is_, line_)) {
    ++line_no_;
    // Same torn-tail rule as read_trace: a final line with no '\n' is a
    // crash fragment, never data — even if it happens to parse.
    const bool torn_tail = is_.eof();
    if (line_.empty()) continue;
    if (torn_tail) {
      if (mode_ == workload::TraceReadMode::kStrict) {
        malformed("unterminated final line (torn tail)", line_no_);
      }
      ++stats_.lines_skipped;
      continue;
    }
    Job j;
    std::string why;
    if (!workload::parse_trace_job_line(line_, j, why)) {
      if (mode_ == workload::TraceReadMode::kStrict) {
        malformed("malformed trace line: " + why, line_no_);
      }
      ++stats_.lines_skipped;
      continue;
    }
    // read_trace defers volume/density validation to the Instance
    // constructor; a streaming ingest has no Instance, so the same
    // constraint is enforced per line here.
    if (j.volume <= 0.0 || j.density <= 0.0) {
      if (mode_ == workload::TraceReadMode::kStrict) {
        malformed("non-positive volume or density", line_no_);
      }
      ++stats_.lines_skipped;
      continue;
    }
    // The engine admits jobs by release time as they arrive, so the stream
    // must be release-ordered — the order write_trace emits.
    if (j.release < last_release_) {
      if (mode_ == workload::TraceReadMode::kStrict) {
        malformed("release times not non-decreasing", line_no_);
      }
      ++stats_.lines_skipped;
      continue;
    }
    last_release_ = j.release;
    j.id = static_cast<JobId>(next_id_++);
    ++stats_.lines_read;
    *out = j;
    return true;
  }
  return false;
}

// --- SyntheticJobSource -----------------------------------------------------

SyntheticJobSource::SyntheticJobSource(const Params& params)
    : params_(params), state_(params.seed) {
  if (!(params_.arrival_rate > 0.0) || !(params_.volume_mean > 0.0) ||
      !(params_.density > 0.0)) {
    throw ModelError("SyntheticJobSource: rate, volume_mean, density must be positive");
  }
}

double SyntheticJobSource::next_unit() {
  // splitmix64: full-period, O(1) state, identical on every platform.
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return (static_cast<double>(z >> 11) + 1.0) * 0x1.0p-53;  // uniform (0, 1]
}

bool SyntheticJobSource::next(Job* out) {
  if (emitted_ >= params_.n_jobs) return false;
  clock_ += -std::log(next_unit()) / params_.arrival_rate;
  Job j;
  j.id = static_cast<JobId>(emitted_);
  j.release = clock_;
  j.volume = std::max(-std::log(next_unit()) * params_.volume_mean,
                      1e-9 * params_.volume_mean);
  j.density = params_.density;
  ++emitted_;
  *out = j;
  return true;
}

// --- InstanceJobSource ------------------------------------------------------

InstanceJobSource::InstanceJobSource(const Instance& instance)
    : instance_(instance), fifo_(instance.fifo_order()) {}

bool InstanceJobSource::next(Job* out) {
  if (pos_ >= fifo_.size()) return false;
  *out = instance_.job(fifo_[pos_++]);
  return true;
}

}  // namespace speedscale::engine
