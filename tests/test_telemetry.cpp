// Live telemetry plane (src/obs/live/): hub sampling, ring wraparound,
// sampler thread-safety under concurrent OBS_COUNT, the byte-stable
// Prometheus exposition golden, scrape-while-sweeping integration, straggler
// detection (synthetic heartbeats + a fault-injected stalled shard), and the
// JsonlSink flush policies the telemetry sink rides on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/sweep.h"
#include "src/obs/build_info.h"
#include "src/obs/json_min.h"
#include "src/obs/live/straggler.h"
#include "src/obs/live/telemetry_hub.h"
#include "src/obs/live/telemetry_server.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/robust/atomic_io.h"
#include "src/robust/fault_injection.h"
#include "src/workload/generators.h"

namespace speedscale {
namespace {

using obs::live::HeartbeatSnapshot;
using obs::live::ShardBeat;
using obs::live::StragglerOptions;

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Restores the metrics gate (tests flip it on) and drops any leftover sweep
/// heartbeat ownership a failed test could leak.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = obs::metrics_enabled();
    obs::set_metrics_enabled(true);
  }
  void TearDown() override { obs::set_metrics_enabled(was_enabled_); }

 private:
  bool was_enabled_ = false;
};

// --- Prometheus exposition --------------------------------------------------

TEST(PrometheusExposition, NameSanitization) {
  EXPECT_EQ(obs::live::prometheus_name("sim.nc_uniform.speed_changes"),
            "speedscale_sim_nc_uniform_speed_changes");
  EXPECT_EQ(obs::live::prometheus_name("weird-name/x:y"), "speedscale_weird_name_x:y");
}

/// The golden snapshot: one of each metric kind plus the serialization edge
/// cases (name sanitization, non-finite gauges, histogram bucket cumsum).
obs::MetricsSnapshot golden_snapshot() {
  obs::MetricsSnapshot snap;
  snap.counters["sim.alpha.steps"] = 42;
  snap.counters["weird-name/x"] = 7;
  snap.gauges["queue.depth"] = 3.5;
  snap.gauges["sweep.eta_seconds"] = -1.0;
  snap.gauges["edge.infinite"] = std::numeric_limits<double>::infinity();
  snap.gauges["edge.nan"] = std::numeric_limits<double>::quiet_NaN();
  obs::HistogramSnapshot hist;
  hist.bounds = {1.0, 10.0, 100.0};
  hist.counts = {5, 3, 1, 2};
  hist.count = 11;
  hist.sum = 123.456;
  snap.histograms["lat.us"] = hist;
  return snap;
}

obs::BuildInfo golden_build_info() {
  obs::BuildInfo info;
  info.git_hash = "deadbeefcafe";
  info.compiler = "testcc 1.2.3";
  info.build_type = "Golden";
  info.cxx_standard = "202002";
  info.alpha_config = "runtime";
  return info;
}

TEST(PrometheusExposition, GoldenByteStable) {
  const std::string actual =
      obs::live::prometheus_exposition(golden_snapshot(), golden_build_info());

  const std::string golden_path =
      std::string(SPEEDSCALE_TEST_DATA_DIR) + "/golden/exposition_golden.txt";
  std::ifstream f(golden_path);
  ASSERT_TRUE(f.is_open()) << "missing golden file " << golden_path;
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string expected = ss.str();

  if (actual != expected) {
    const std::string dump = ::testing::TempDir() + "exposition_actual.txt";
    std::ofstream(dump) << actual;
    FAIL() << "Prometheus exposition drifted from " << golden_path
           << "\nactual written to " << dump
           << "\nif the change is intentional, update the golden file to match";
  }
}

TEST(PrometheusExposition, CumulativeBucketsAndNonFiniteTokens) {
  const std::string text =
      obs::live::prometheus_exposition(golden_snapshot(), golden_build_info());
  // Histogram buckets are cumulative, capped by the +Inf bucket = count.
  EXPECT_NE(text.find("speedscale_lat_us_bucket{le=\"1\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("speedscale_lat_us_bucket{le=\"10\"} 8\n"), std::string::npos);
  EXPECT_NE(text.find("speedscale_lat_us_bucket{le=\"100\"} 9\n"), std::string::npos);
  EXPECT_NE(text.find("speedscale_lat_us_bucket{le=\"+Inf\"} 11\n"), std::string::npos);
  EXPECT_NE(text.find("speedscale_lat_us_count 11\n"), std::string::npos);
  // Prometheus non-finite tokens, not the JSON quoted strings.
  EXPECT_NE(text.find("speedscale_edge_infinite +Inf\n"), std::string::npos);
  EXPECT_NE(text.find("speedscale_edge_nan NaN\n"), std::string::npos);
}

TEST_F(TelemetryTest, RegistryExpositionCarriesBuildInfo) {
  obs::registry().counter("telemetry.test.exposed").add(3);
  const std::string text = obs::live::prometheus_exposition();
  EXPECT_NE(text.find("# TYPE speedscale_build_info gauge\n"), std::string::npos);
  EXPECT_NE(text.find("speedscale_build_info{alpha_config=\"runtime\""), std::string::npos);
  EXPECT_NE(text.find("git_hash=\"" + obs::build_info().git_hash + "\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("speedscale_telemetry_test_exposed"), std::string::npos);
}

TEST(BuildInfo, SnapshotJsonIsSelfIdentifying) {
  const obs::JsonValue doc = obs::parse_json(obs::registry().snapshot_json());
  const obs::JsonValue& info = doc.at("build_info");
  EXPECT_EQ(info.at("git_hash").string, obs::build_info().git_hash);
  EXPECT_EQ(info.at("compiler").string, obs::build_info().compiler);
  EXPECT_EQ(info.at("alpha_config").string, "runtime");
  EXPECT_FALSE(info.at("cxx_standard").string.empty());
}

// --- Histogram quantiles ----------------------------------------------------

TEST(HistogramQuantile, LinearBucketInterpolation) {
  obs::HistogramSnapshot h;
  h.bounds = {1.0, 2.0, 4.0};
  h.counts = {2, 2, 0, 0};
  h.count = 4;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);   // target 2 lands at bucket 0's top
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 1.5);  // halfway through bucket [1, 2]
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);  // empty target: bottom of bucket 0

  obs::HistogramSnapshot overflow;
  overflow.bounds = {1.0, 2.0};
  overflow.counts = {0, 0, 5};
  overflow.count = 5;
  EXPECT_DOUBLE_EQ(overflow.quantile(0.5), 2.0);  // overflow clamps to last bound

  obs::HistogramSnapshot empty;
  empty.bounds = {1.0};
  empty.counts = {0, 0};
  EXPECT_DOUBLE_EQ(empty.quantile(0.99), 0.0);
}

TEST(HistogramQuantile, SinglePopulatedBucketSkipsEmptyPrefix) {
  // All mass in bucket [2, 4]: every quantile must land inside it.  (The old
  // interpolation entered the empty first bucket at q = 0 and reported 1.0 —
  // below every observation in the histogram.)
  obs::HistogramSnapshot h;
  h.bounds = {1.0, 2.0, 4.0};
  h.counts = {0, 0, 3, 0};
  h.count = 3;
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_TRUE(std::isfinite(v)) << "q=" << q;
    EXPECT_GE(v, 2.0) << "q=" << q;
    EXPECT_LE(v, 4.0) << "q=" << q;
  }
}

TEST(HistogramQuantile, EmptyHistogramPinnedToZero) {
  // Pinned: no observations -> 0.0 for every q (finite, no NaN from 0/0),
  // including out-of-range q which clamps to [0, 1] first.
  obs::HistogramSnapshot empty;
  empty.bounds = {1.0, 8.0};
  empty.counts = {0, 0, 0};
  empty.count = 0;
  for (const double q : {-1.0, 0.0, 0.5, 1.0, 2.0}) {
    EXPECT_DOUBLE_EQ(empty.quantile(q), 0.0) << "q=" << q;
  }
  // Degenerate snapshots (no buckets at all) are equally inert.
  obs::HistogramSnapshot none;
  EXPECT_DOUBLE_EQ(none.quantile(0.5), 0.0);
}

// --- TelemetryHub -----------------------------------------------------------

TEST_F(TelemetryTest, RingBufferWraparound) {
  obs::live::TelemetryOptions options;
  options.ring_capacity = 4;
  options.publish_sweep_gauges = false;
  obs::live::TelemetryHub hub(options);

  obs::Counter& c = obs::registry().counter("telemetry.test.wrap");
  c.reset();
  for (int i = 0; i < 10; ++i) {
    c.add(1);
    hub.sample_now();
  }
  EXPECT_EQ(hub.samples(), 10u);

  const obs::live::SeriesView view = hub.series("telemetry.test.wrap");
  ASSERT_EQ(view.kind, "counter");
  ASSERT_EQ(view.t.size(), 4u);  // capacity, not sample count
  ASSERT_EQ(view.v.size(), 4u);
  for (std::size_t i = 1; i < view.t.size(); ++i) {
    EXPECT_GT(view.t[i], view.t[i - 1]) << "ring must return oldest-first";
  }
  // The last 4 of 10 samples survive: values 7, 8, 9, 10.
  EXPECT_DOUBLE_EQ(view.v[0], 7.0);
  EXPECT_DOUBLE_EQ(view.v[3], 10.0);
  EXPECT_DOUBLE_EQ(view.last, 10.0);
}

TEST_F(TelemetryTest, SamplerHammerConcurrentCounts) {
  obs::live::TelemetryOptions options;
  options.period = std::chrono::milliseconds(1);
  options.publish_sweep_gauges = false;
  obs::live::TelemetryHub hub(options);

  obs::Counter& c = obs::registry().counter("telemetry.test.hammer");
  c.reset();
  hub.start();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) OBS_COUNT("telemetry.test.hammer", 1);
    });
  }
  for (std::thread& t : workers) t.join();
  hub.stop();  // takes the final sample

  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kPerThread);
  const obs::live::SeriesView view = hub.series("telemetry.test.hammer");
  ASSERT_FALSE(view.v.empty());
  EXPECT_DOUBLE_EQ(view.v.back(), static_cast<double>(kThreads) * kPerThread);
  for (std::size_t i = 1; i < view.v.size(); ++i) {
    EXPECT_GE(view.v[i], view.v[i - 1]) << "sampled counter must be monotone";
  }
  EXPECT_GE(hub.samples(), 2u);  // initial + final at minimum
}

TEST_F(TelemetryTest, SeriesJsonSchemaAndIdempotentStop) {
  obs::live::TelemetryOptions options;
  options.publish_sweep_gauges = false;
  obs::live::TelemetryHub hub(options);
  obs::registry().counter("telemetry.test.series").add(5);
  hub.sample_now();
  hub.sample_now();

  const obs::JsonValue doc = obs::parse_json(hub.series_json());
  EXPECT_EQ(doc.at("schema").string, "speedscale.telemetry_series/1");
  EXPECT_EQ(doc.at("samples").number, 2.0);
  const obs::JsonValue& series = doc.at("series").at("telemetry.test.series");
  EXPECT_EQ(series.at("kind").string, "counter");
  EXPECT_EQ(series.at("points").array.size(), 2u);

  hub.stop();
  hub.stop();  // idempotent without start
}

TEST_F(TelemetryTest, JsonlSinkWritesHeaderAndCommitsOnStop) {
  const std::string path = ::testing::TempDir() + "telemetry_stream.jsonl";
  std::remove(path.c_str());
  {
    obs::live::TelemetryOptions options;
    options.period = std::chrono::milliseconds(5);
    options.jsonl_path = path;
    options.publish_sweep_gauges = false;
    obs::live::TelemetryHub hub(options);
    hub.start();
    obs::registry().counter("telemetry.test.jsonl").add(1);
    hub.sample_now();
    hub.stop();
  }
  const std::string content = read_file(path);
  ASSERT_FALSE(content.empty()) << "stop() must commit the JSONL artifact";
  EXPECT_FALSE(std::ifstream(robust::tmp_sibling(path)).is_open())
      << "no .tmp sibling after a clean close";

  std::stringstream lines(content);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const obs::JsonValue header = obs::parse_json(line);
  EXPECT_EQ(header.at("schema").string, "speedscale.telemetry_jsonl/1");
  EXPECT_EQ(header.at("kind").string, "telemetry_header");
  EXPECT_EQ(header.at("build_info").at("git_hash").string, obs::build_info().git_hash);

  std::size_t samples = 0;
  while (std::getline(lines, line)) {
    const obs::JsonValue sample = obs::parse_json(line);
    EXPECT_TRUE(sample.at("counters").is_object());
    EXPECT_TRUE(sample.at("t").is_number());
    ++samples;
  }
  EXPECT_GE(samples, 2u);  // initial + explicit + final
  std::remove(path.c_str());
}

// --- JsonlSink flush policies -----------------------------------------------

TEST(JsonlFlushPolicy, EveryNFlushesWithoutClose) {
  const std::string path = ::testing::TempDir() + "flush_every_n.jsonl";
  std::remove(path.c_str());
  obs::JsonlSink sink(path);
  obs::JsonlSink::FlushPolicy policy;
  policy.mode = obs::JsonlSink::FlushPolicy::Mode::kEveryN;
  policy.every_n = 2;
  sink.set_flush_policy(policy);

  sink.write_line("{\"n\":1}");
  sink.write_line("{\"n\":2}");
  sink.write_line("{\"n\":3}");
  // No close(): the crash-survival contract — flushed lines must already be
  // readable in the ".tmp" sibling.
  const std::string tmp = read_file(robust::tmp_sibling(path));
  std::size_t lines = 0;
  for (const char c : tmp) lines += (c == '\n');
  EXPECT_GE(lines, 2u) << "every-2 policy must have flushed the first two lines";
  sink.close();
  EXPECT_EQ(sink.lines(), 3u);
  std::remove(path.c_str());
}

TEST(JsonlFlushPolicy, TimedFlushesOnceIntervalElapses) {
  const std::string path = ::testing::TempDir() + "flush_timed.jsonl";
  std::remove(path.c_str());
  obs::JsonlSink sink(path);
  obs::JsonlSink::FlushPolicy policy;
  policy.mode = obs::JsonlSink::FlushPolicy::Mode::kTimed;
  policy.interval = std::chrono::milliseconds(5);
  sink.set_flush_policy(policy);

  sink.write_line("{\"n\":1}");
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sink.write_line("{\"n\":2}");  // interval elapsed: this write flushes
  const std::string tmp = read_file(robust::tmp_sibling(path));
  std::size_t lines = 0;
  for (const char c : tmp) lines += (c == '\n');
  EXPECT_GE(lines, 2u);
  sink.close();
  std::remove(path.c_str());
}

// --- Straggler detector -----------------------------------------------------

HeartbeatSnapshot synthetic_heartbeats() {
  HeartbeatSnapshot hb;
  hb.active = true;
  hb.workers = 4;
  hb.items_total = 100;
  hb.items_started = 54;
  hb.items_completed = 50;
  hb.queue_depth = 46;
  hb.elapsed_seconds = 2.0;
  hb.mean_item_seconds = 0.1;
  hb.shards.resize(4);
  for (ShardBeat& b : hb.shards) {
    b.busy = true;
    b.items_started = 14;
    b.items_completed = 13;
    b.inflight_seconds = 0.05;
  }
  return hb;
}

TEST(StragglerDetector, FlagsShardsBeyondFactorTimesMean) {
  HeartbeatSnapshot hb = synthetic_heartbeats();
  hb.shards[2].inflight_seconds = 10.0;  // 100x the mean item
  const obs::live::StragglerReport report =
      obs::live::detect_stragglers(hb, {.factor = 4.0, .min_seconds = 0.05});
  ASSERT_EQ(report.stragglers.size(), 1u);
  EXPECT_EQ(report.stragglers[0], 2u);
  // ETA: (100 - 50) items x 0.1 s / 4 workers.
  EXPECT_DOUBLE_EQ(report.eta_seconds, 50.0 * 0.1 / 4.0);
}

TEST(StragglerDetector, QuietBelowThresholdAndWhenInactive) {
  const HeartbeatSnapshot hb = synthetic_heartbeats();
  EXPECT_TRUE(obs::live::detect_stragglers(hb, {.factor = 4.0, .min_seconds = 0.05})
                  .stragglers.empty());

  HeartbeatSnapshot inactive = synthetic_heartbeats();
  inactive.active = false;
  inactive.shards[0].inflight_seconds = 100.0;
  const obs::live::StragglerReport report = obs::live::detect_stragglers(inactive);
  EXPECT_TRUE(report.stragglers.empty());
  EXPECT_DOUBLE_EQ(report.eta_seconds, -1.0);
}

TEST(StragglerDetector, MinSecondsGovernsBeforeAnyCompletion) {
  HeartbeatSnapshot hb = synthetic_heartbeats();
  hb.items_completed = 0;
  hb.mean_item_seconds = 0.0;
  hb.shards[1].inflight_seconds = 0.2;  // > min_seconds, no mean yet
  const obs::live::StragglerReport report =
      obs::live::detect_stragglers(hb, {.factor = 4.0, .min_seconds = 0.05});
  ASSERT_EQ(report.stragglers.size(), 1u);
  EXPECT_EQ(report.stragglers[0], 1u);
  EXPECT_DOUBLE_EQ(report.eta_seconds, -1.0);  // no mean: unknown
}

TEST_F(TelemetryTest, FirstSampleRateIsZeroAndFinite) {
  obs::live::TelemetryOptions options;
  options.publish_sweep_gauges = false;
  obs::live::TelemetryHub hub(options);
  obs::Counter& c = obs::registry().counter("telemetry.test.rate_edge");
  c.reset();
  c.add(1000);
  hub.sample_now();  // no previous tick: rate must be 0, not 1000/epsilon
  EXPECT_DOUBLE_EQ(hub.series("telemetry.test.rate_edge").rate, 0.0);
  c.add(1);
  hub.sample_now();
  EXPECT_TRUE(std::isfinite(hub.series("telemetry.test.rate_edge").rate));
}

TEST(StragglerDetector, NonfiniteMeanYieldsNoEstimateNotInf) {
  // A torn or synthetic snapshot can carry inf/NaN in the mean: the detector
  // must fall back to min_seconds for the threshold and keep the ETA at the
  // "no estimate" sentinel rather than emitting inf/NaN downstream.
  for (const double bad : {std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()}) {
    HeartbeatSnapshot hb = synthetic_heartbeats();
    hb.mean_item_seconds = bad;
    hb.shards[3].inflight_seconds = 0.2;  // > min_seconds
    const obs::live::StragglerReport report =
        obs::live::detect_stragglers(hb, {.factor = 4.0, .min_seconds = 0.05});
    ASSERT_EQ(report.stragglers.size(), 1u) << "mean=" << bad;
    EXPECT_EQ(report.stragglers[0], 3u);
    EXPECT_DOUBLE_EQ(report.eta_seconds, -1.0) << "mean=" << bad;
  }
}

TEST(StragglerDetector, OvercountedCompletionClampsEtaToZero) {
  // snapshot() reads unsynchronized atomics: completed can momentarily exceed
  // total.  The remaining-work estimate clamps at zero, never negative.
  HeartbeatSnapshot hb = synthetic_heartbeats();
  hb.items_completed = hb.items_total + 3;
  const obs::live::StragglerReport report = obs::live::detect_stragglers(hb);
  EXPECT_DOUBLE_EQ(report.eta_seconds, 0.0);
}

TEST(StragglerDetector, SingleCompletedItemBacksFiniteEstimate) {
  HeartbeatSnapshot hb = synthetic_heartbeats();
  hb.items_completed = 1;
  hb.mean_item_seconds = 0.25;
  const obs::live::StragglerReport report = obs::live::detect_stragglers(hb);
  EXPECT_TRUE(std::isfinite(report.eta_seconds));
  EXPECT_DOUBLE_EQ(report.eta_seconds, 99.0 * 0.25 / 4.0);
}

TEST_F(TelemetryTest, HeartbeatOwnershipAndGauges) {
  obs::live::SweepHeartbeats& hb = obs::live::SweepHeartbeats::instance();
  ASSERT_TRUE(hb.begin_sweep(4, 2));
  EXPECT_FALSE(hb.begin_sweep(8, 2)) << "a nested sweep must not claim the plane";

  const std::size_t slot = hb.item_started(0);
  obs::live::publish_sweep_gauges();
  EXPECT_DOUBLE_EQ(obs::registry().gauge("sweep.active").value(), 1.0);
  EXPECT_DOUBLE_EQ(obs::registry().gauge("sweep.items_total").value(), 4.0);
  EXPECT_DOUBLE_EQ(obs::registry().gauge("sweep.items_started").value(), 1.0);
  EXPECT_DOUBLE_EQ(obs::registry().gauge("sweep.queue_depth").value(), 3.0);
  EXPECT_DOUBLE_EQ(
      obs::registry().gauge("sweep.shard." + std::to_string(slot) + ".busy").value(), 1.0);

  hb.item_finished(slot);
  hb.end_sweep();
  obs::live::publish_sweep_gauges();
  EXPECT_DOUBLE_EQ(obs::registry().gauge("sweep.active").value(), 0.0);
}

TEST_F(TelemetryTest, InjectedStallIsDetectedAsStraggler) {
  robust::FaultPlan plan;
  plan.fire(robust::FaultSite::kSweepItemStall, {0});  // stall the first item started
  robust::ScopedFaultPlan scoped(std::move(plan));

  analysis::SweepOptions options;
  options.jobs = 4;
  analysis::SweepScheduler scheduler(options);
  std::thread sweep([&] {
    scheduler.run(8, [](std::size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    });
  });

  const StragglerOptions detect{.factor = 2.0, .min_seconds = 0.05};
  bool found = false;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    const obs::live::StragglerReport report =
        obs::live::detect_stragglers(obs::live::SweepHeartbeats::instance().snapshot(), detect);
    if (!report.stragglers.empty()) {
      found = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  sweep.join();
  EXPECT_TRUE(found) << "the 250 ms injected stall was never flagged";
  EXPECT_EQ(robust::FaultInjector::instance().fired(robust::FaultSite::kSweepItemStall), 1u);
}

// --- Scrape-while-sweeping integration --------------------------------------

TEST_F(TelemetryTest, ScrapeWhileSweepingServesHeartbeatsMidRun) {
  obs::live::TelemetryOptions topts;
  topts.period = std::chrono::milliseconds(5);
  obs::live::TelemetryHub hub(topts);
  hub.start();
  obs::live::TelemetryServer server(hub);
  server.start();
  ASSERT_GT(server.port(), 0);

  // Items park until the main thread has scraped the sweep mid-run (capped
  // so a scrape failure cannot hang the pool), making "mid-run" a
  // deterministic rendezvous, not a timing race.
  std::atomic<bool> scraped{false};
  analysis::SweepOptions options;
  options.jobs = 4;
  analysis::SweepScheduler scheduler(options);
  std::thread sweep([&] {
    scheduler.run(16, [&](std::size_t) {
      const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (!scraped.load() && std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  });

  std::string exposition;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    exposition = obs::live::scrape(server.address(), "/metrics");
    if (exposition.find("speedscale_sweep_active 1\n") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  scraped.store(true);
  sweep.join();

  // Mid-run exposition: sweep heartbeat gauges AND registry counters.
  EXPECT_NE(exposition.find("speedscale_sweep_active 1\n"), std::string::npos);
  EXPECT_NE(exposition.find("speedscale_sweep_items_total 16\n"), std::string::npos);
  EXPECT_NE(exposition.find("speedscale_sweep_shard_0_items_started"), std::string::npos);
  EXPECT_NE(exposition.find("speedscale_sweep_queue_depth"), std::string::npos);
  EXPECT_NE(exposition.find("speedscale_build_info{"), std::string::npos);
  EXPECT_NE(exposition.find(" counter\n"), std::string::npos);

  // The JSON snapshot endpoint parses and self-identifies.
  const obs::JsonValue snap = obs::parse_json(obs::live::scrape(server.address(), "/snapshot.json"));
  EXPECT_EQ(snap.at("build_info").at("git_hash").string, obs::build_info().git_hash);
  EXPECT_TRUE(snap.at("gauges").is_object());

  // /series.json is live too, and the server counted our scrapes.
  const obs::JsonValue series = obs::parse_json(obs::live::scrape(server.address(), "/series.json"));
  EXPECT_EQ(series.at("schema").string, "speedscale.telemetry_series/1");
  EXPECT_GE(server.requests(), 3u);

  server.stop();
  hub.stop();
}

// --- PR 5 determinism contract with telemetry enabled -----------------------

TEST_F(TelemetryTest, SweepArtifactsByteIdenticalAcrossJobsWithHubRunning) {
  obs::live::TelemetryOptions topts;
  topts.period = std::chrono::milliseconds(1);
  obs::live::TelemetryHub hub(topts);
  hub.start();

  const auto run_at = [](std::size_t jobs) {
    std::vector<analysis::SuitePoint> points;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      points.push_back(
          {workload::generate({.n_jobs = 12, .arrival_rate = 2.0, .seed = seed}), 2.0});
    }
    analysis::SuiteOptions suite;
    suite.include_nonuniform = false;
    suite.certify = true;
    analysis::SweepOptions sweep;
    sweep.jobs = jobs;
    const analysis::SuiteSweepResult result = analysis::run_suite_sweep(points, suite, sweep);
    return std::make_pair(result.suite_json(), result.cert_jsonl());
  };

  const auto serial = run_at(1);
  const auto parallel = run_at(4);
  hub.stop();
  EXPECT_EQ(serial.first, parallel.first)
      << "suite JSON must not depend on --jobs, telemetry hub running or not";
  EXPECT_EQ(serial.second, parallel.second);
}

}  // namespace
}  // namespace speedscale
