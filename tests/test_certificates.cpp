// Tests for the competitiveness certificate ledger (src/obs/cert/):
//
//   * amortized local competitiveness on seeded uniform-density workloads —
//     every release certificate has non-negative slack under the paper's
//     constants c = 2 + 1/(alpha-1) (fractional) / 3 + 1/(alpha-1) (integral);
//   * the ledger's telescoping identity: summed increments reproduce the
//     run's metrics exactly;
//   * the Lemma 6/7 speed-profile certificate against the closed-form
//     kinematics on single-job and two-job instances at machine precision;
//   * byte-stability of the certificate JSONL against a golden file (what
//     `trace_tool --certify` on the golden Chrome trace must reproduce);
//   * replay round-trips: JSONL and Chrome traces re-certify to the same
//     ledger as the live event stream.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/analysis/ratio_harness.h"
#include "src/core/kinematics.h"
#include "src/obs/cert/potential_tracker.h"
#include "src/obs/trace.h"
#include "src/workload/generators.h"

namespace speedscale {
namespace {

using obs::EventKind;
using obs::TraceEvent;
using obs::cert::CertificateLedger;
using obs::cert::CertOptions;
using obs::cert::CertRecord;
using obs::cert::OptLbMode;

class CertificatesTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().clear_sinks();
  }
};

std::vector<TraceEvent> capture(const std::function<void()>& run) {
  auto ring = std::make_shared<obs::RingBufferSink>(1 << 18);
  obs::ScopedTracing tracing(ring);
  run();
  EXPECT_EQ(ring->dropped(), 0u);
  return ring->events();
}

Instance uniform_instance(int n, std::uint64_t seed) {
  return workload::generate({.n_jobs = n,
                             .arrival_rate = 1.2,
                             .volume_dist = workload::VolumeDist::kExponential,
                             .seed = seed});
}

// --- The headline acceptance property ---------------------------------------

TEST_F(CertificatesTest, NCUniformSlackIsNonNegativeOnSeededWorkloads) {
  for (const double alpha : {1.5, 2.0, 3.0}) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      const Instance inst = uniform_instance(16, seed);
      RunResult nc(alpha);
      const std::vector<TraceEvent> evs = capture([&] { nc = run_nc_uniform(inst, alpha); });
      const CertificateLedger ledger = obs::cert::certify_events(evs, alpha);

      // The paper's constants are the defaults.
      EXPECT_DOUBLE_EQ(ledger.c_frac, 2.0 + 1.0 / (alpha - 1.0));
      EXPECT_DOUBLE_EQ(ledger.c_int, 3.0 + 1.0 / (alpha - 1.0));

      EXPECT_EQ(ledger.violations(), 0u)
          << "alpha=" << alpha << " seed=" << seed << "\n"
          << ledger.summary();
      EXPECT_GE(ledger.min_slack_frac, 0.0);
      EXPECT_GE(ledger.min_slack_int, 0.0);
      EXPECT_EQ(ledger.incomplete_jobs, 0u);
      EXPECT_EQ(ledger.opt_lb_updates, inst.size());

      // Telescoping: the ledger's cumulative ALG is exactly the run's
      // fractional objective (same floats, summed in event order).
      EXPECT_NEAR(ledger.alg_total_frac, nc.metrics.fractional_objective(),
                  1e-9 * std::max(1.0, nc.metrics.fractional_objective()));
      // And the end-to-end inequality the per-event slacks telescope into.
      EXPECT_LE(ledger.alg_total_frac, ledger.c_frac * ledger.opt_lb_final + 1e-9);
    }
  }
}

TEST_F(CertificatesTest, RecordStreamIsAnchoredAndOrdered) {
  const Instance inst = uniform_instance(12, 4);
  const std::vector<TraceEvent> evs =
      capture([&] { (void)run_nc_uniform(inst, 2.0); });
  const CertificateLedger ledger = obs::cert::certify_events(evs, 2.0);

  double last_t = -kInf;
  double prev_slack = 0.0;
  bool have_prev = false;
  std::size_t releases = 0, completions = 0;
  for (const CertRecord& rec : ledger.records) {
    EXPECT_GE(rec.t, last_t);
    last_t = rec.t;
    // Only releases move the certificate state: every other record carries
    // the previous slack forward unchanged.
    if (rec.kind != EventKind::kJobRelease && have_prev) {
      EXPECT_DOUBLE_EQ(rec.slack, prev_slack);
    }
    prev_slack = rec.slack;
    have_prev = true;
    if (rec.kind == EventKind::kJobRelease) ++releases;
    if (rec.kind == EventKind::kJobComplete) {
      ++completions;
      // Completions land the committed cost: dALG = -dPhi exactly, and the
      // certificate state ALG + Phi (hence the slack) does not move.
      EXPECT_DOUBLE_EQ(rec.d_alg, -rec.d_phi);
      EXPECT_DOUBLE_EQ(rec.d_alg_int, -rec.d_phi_int);
    }
  }
  EXPECT_EQ(releases, inst.size());
  EXPECT_EQ(completions, inst.size());
  // Phi drains to zero once every committed cost has landed.
  ASSERT_FALSE(ledger.records.empty());
  EXPECT_NEAR(ledger.records.back().phi, 0.0, 1e-9 * std::max(1.0, ledger.alg_total_frac));
}

// --- Lemma 6/7: the speed-profile certificate -------------------------------

TEST_F(CertificatesTest, SingleJobBandSweepMatchesClosedFormsAtMachinePrecision) {
  for (const double alpha : {1.5, 2.0, 3.0}) {
    const PowerLawKinematics kin(alpha);
    for (const double volume : {0.5, 1.0, 4.0}) {
      const Instance one({Job{kNoJob, 0.0, volume, 1.0}});

      // NC on one job sweeps the growing band [0, W] — the Lemma 6 branch.
      const std::vector<TraceEvent> nc_evs =
          capture([&] { (void)run_nc_uniform(one, alpha); });
      const CertificateLedger nc_ledger = obs::cert::certify_events(nc_evs, alpha);
      EXPECT_LE(nc_ledger.max_defect, 1e-12) << "NC alpha=" << alpha << " V=" << volume;
      ASSERT_GE(nc_ledger.rearrangement_defect, 0.0);
      EXPECT_LE(nc_ledger.rearrangement_defect, 1e-12);
      // The recorded completion time is the closed-form band-sweep time.
      for (const CertRecord& rec : nc_ledger.records) {
        if (rec.kind != EventKind::kJobComplete) continue;
        EXPECT_NEAR(rec.t, kin.grow_time_to_weight(0.0, volume, 1.0),
                    1e-12 * std::max(1.0, rec.t));
      }

      // C on one job decays the band [W, 0] — the Lemma 7 branch.
      const std::vector<TraceEvent> c_evs = capture([&] { (void)run_c(one, alpha); });
      const CertificateLedger c_ledger = obs::cert::certify_events(c_evs, alpha);
      EXPECT_LE(c_ledger.max_defect, 1e-12) << "C alpha=" << alpha << " V=" << volume;
      for (const CertRecord& rec : c_ledger.records) {
        if (rec.kind != EventKind::kJobComplete) continue;
        EXPECT_NEAR(rec.t, kin.decay_time_to_weight(volume, 0.0, 1.0),
                    1e-12 * std::max(1.0, rec.t));
      }
    }
  }
}

TEST_F(CertificatesTest, TwoJobBandSweepMatchesClosedFormsAtMachinePrecision) {
  // Two staggered jobs, no preemption under NC (FIFO): job 0 sweeps [0, W0],
  // job 1 sweeps [u1, u1 + W1] where u1 is its recorded offset.
  for (const double alpha : {1.5, 2.0}) {
    const Instance two({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 0.1, 0.7, 1.0}});
    const std::vector<TraceEvent> evs =
        capture([&] { (void)run_nc_uniform(two, alpha); });
    const CertificateLedger ledger = obs::cert::certify_events(evs, alpha);
    EXPECT_LE(ledger.max_defect, 1e-12) << "alpha=" << alpha << "\n" << ledger.summary();
    ASSERT_GE(ledger.rearrangement_defect, 0.0);
    // The reconstructed profile is a rearrangement of the virtual C profile
    // (Lemma 6/7's whole-run content), up to roundoff in the level measures.
    EXPECT_LE(ledger.rearrangement_defect, 1e-9);
  }
}

TEST_F(CertificatesTest, ProfileCertificateDisablesItselfOnPreemptiveStreams) {
  // Non-uniform C runs preempt; kAuto must turn the band check off rather
  // than report garbage defects.
  const Instance inst({Job{kNoJob, 0.0, 2.0, 1.0}, Job{kNoJob, 0.2, 0.5, 4.0}});
  const std::vector<TraceEvent> evs = capture([&] { (void)run_c(inst, 2.0); });
  bool preempted = false;
  for (const TraceEvent& ev : evs) preempted |= ev.kind == EventKind::kPreemption;
  ASSERT_TRUE(preempted);
  const CertificateLedger ledger = obs::cert::certify_events(evs, 2.0);
  EXPECT_DOUBLE_EQ(ledger.max_defect, 0.0);
  EXPECT_DOUBLE_EQ(ledger.rearrangement_defect, -1.0);
}

// --- Serialization: golden bytes and replay round-trips ---------------------

/// The committed golden Chrome trace (tests/golden/, pinned by
/// test_bench_ledger) re-certified: this is exactly what the CI smoke job's
/// `trace_tool --certify` run must reproduce, byte for byte.
std::string certify_golden_chrome_trace() {
  const std::string trace_path =
      std::string(SPEEDSCALE_TEST_DATA_DIR) + "/golden/chrome_trace_golden.json";
  std::ifstream f(trace_path);
  EXPECT_TRUE(f.is_open()) << "missing golden file " << trace_path;
  std::stringstream ss;
  ss << f.rdbuf();
  const obs::cert::ReplayedTrace replayed = obs::cert::replay_chrome_trace(ss.str());
  const CertificateLedger ledger = obs::cert::certify_events(replayed.events, 2.0);
  return obs::cert::certificates_jsonl(ledger);
}

TEST_F(CertificatesTest, GoldenChromeTraceCertifiesByteStably) {
  const std::string actual = certify_golden_chrome_trace();

  const std::string golden_path =
      std::string(SPEEDSCALE_TEST_DATA_DIR) + "/golden/certificates_golden.jsonl";
  std::ifstream f(golden_path);
  ASSERT_TRUE(f.is_open()) << "missing golden file " << golden_path;
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string expected = ss.str();

  if (actual != expected) {
    const std::string dump = ::testing::TempDir() + "certificates_actual.jsonl";
    std::ofstream(dump) << actual;
    FAIL() << "certificate JSONL drifted from " << golden_path << "\nactual written to " << dump
           << "\nif the change is intentional, update the golden file to match";
  }
}

TEST_F(CertificatesTest, JsonlReplayReproducesTheLiveLedger) {
  const Instance inst = uniform_instance(10, 7);
  const double alpha = 2.0;

  // Live: capture the stream twice — once as events, once through the JSONL
  // sink — and certify both.
  auto ring = std::make_shared<obs::RingBufferSink>(1 << 18);
  std::ostringstream jsonl;
  auto sink = std::make_shared<obs::JsonlSink>(jsonl);
  {
    obs::ScopedTracing tracing(ring);
    obs::Tracer::instance().add_sink(sink);
    (void)run_nc_uniform(inst, alpha);
    obs::Tracer::instance().remove_sink(sink.get());
  }
  const CertificateLedger live = obs::cert::certify_events(ring->events(), alpha);

  std::istringstream is(jsonl.str());
  const obs::cert::ReplayedTrace replayed = obs::cert::replay_jsonl_trace(is);
  const CertificateLedger back = obs::cert::certify_events(replayed.events, alpha);

  // Byte-identical certificate streams: replay loses nothing the ledger uses.
  EXPECT_EQ(obs::cert::certificates_jsonl(back), obs::cert::certificates_jsonl(live));
}

TEST_F(CertificatesTest, ReplayRejectsMalformedInputWithLineNumbers) {
  {
    std::istringstream is("{\"kind\":\"job_release\",\"t\":0}\nnot json\n");
    EXPECT_THROW((void)obs::cert::replay_jsonl_trace(is), ModelError);
  }
  {
    std::istringstream is("{\"kind\":\"no_such_kind\",\"t\":0,\"value\":0,\"aux\":0}\n");
    EXPECT_THROW((void)obs::cert::replay_jsonl_trace(is), ModelError);
  }
  EXPECT_THROW((void)obs::cert::replay_chrome_trace("{\"notTraceEvents\":[]}"), ModelError);
  EXPECT_THROW((void)obs::cert::replay_chrome_trace("not json"), ModelError);
  EXPECT_THROW((void)obs::cert::certify_events({}, 1.0), ModelError);  // alpha <= 1
}

// --- Harness integration ----------------------------------------------------

TEST_F(CertificatesTest, RatioHarnessAttachesCertificatesWhenAsked) {
  const Instance inst = uniform_instance(8, 9);
  analysis::SuiteOptions options;
  options.include_opt = false;
  options.include_nonuniform = false;
  options.certify = true;
  const analysis::SuiteResult suite = analysis::run_suite(inst, 2.0, options);

  std::size_t certified = 0;
  for (const analysis::AlgoOutcome& o : suite.outcomes) {
    if (!o.certified) continue;
    ++certified;
    EXPECT_GT(o.cert_records, 0u) << o.name;
    if (o.name == "NC (uniform)") {
      EXPECT_EQ(o.cert_violations, 0u);
      EXPECT_GE(o.cert_min_slack, 0.0);
      EXPECT_GE(o.cert_min_slack_int, 0.0);
    }
  }
  // Exactly the two streams the ledger understands: C and NC-uniform.
  EXPECT_EQ(certified, 2u);

  analysis::SuiteOptions off = options;
  off.certify = false;
  for (const analysis::AlgoOutcome& o : analysis::run_suite(inst, 2.0, off).outcomes) {
    EXPECT_FALSE(o.certified) << o.name;
  }
}

}  // namespace
}  // namespace speedscale
