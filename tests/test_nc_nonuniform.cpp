// Tests for the non-uniform-density Algorithm NC (paper Section 4) and its
// instrumentation (current instances, preemption structure, Lemma 11-13
// style properties).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_nonuniform.h"
#include "src/algo/preemption.h"
#include "src/sim/c_machine.h"
#include "src/workload/generators.h"

namespace speedscale {
namespace {

Instance mixed_instance(int n, std::uint64_t seed) {
  return workload::generate({.n_jobs = n,
                             .arrival_rate = 1.0,
                             .density_mode = workload::DensityMode::kClasses,
                             .density_classes = 3,
                             .density_spread = 30.0,
                             .seed = seed});
}

TEST(MakeCurrentInstance, FiltersAndReweights) {
  const Instance rounded({Job{kNoJob, 0.0, 5.0, 1.0}, Job{kNoJob, 2.0, 3.0, 4.0},
                          Job{kNoJob, 9.0, 1.0, 1.0}});
  std::vector<double> processed{1.5, 0.0, 0.5};
  std::vector<JobId> kept;
  const Instance cur = make_current_instance(rounded, processed, 3.0, &kept);
  // Job 1 has zero processed weight; job 2 is not yet released.
  ASSERT_EQ(cur.size(), 1u);
  EXPECT_EQ(kept[0], 0);
  EXPECT_DOUBLE_EQ(cur.jobs()[0].volume, 1.5);
  EXPECT_DOUBLE_EQ(cur.jobs()[0].density, 1.0);
}

TEST(CSpeedOnCurrentInstance, MatchesDirectSimulation) {
  const Instance rounded({Job{kNoJob, 0.0, 2.0, 1.0}});
  std::vector<double> processed{1.0};
  const double t = 0.4;
  const double s = c_speed_on_current_instance(rounded, processed, t, 2.0);
  // Direct: C on one job of volume 1, at time 0.4.
  const PowerLawKinematics kin(2.0);
  const double w = kin.decay_weight_after(1.0, 1.0, t);
  EXPECT_NEAR(s, kin.speed_at_weight(w), 1e-12);
}

TEST(CurrentInstanceOracle, MatchesReferenceEvaluator) {
  const Instance inst = mixed_instance(12, 21);
  const Instance rounded = inst.rounded_densities(4.5);
  const double alpha = 2.3;
  CurrentInstanceOracle oracle(rounded, alpha);
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> processed(rounded.size());
    for (std::size_t i = 0; i < processed.size(); ++i) {
      // Random partial progress, with some jobs untouched.
      const double f = u(rng);
      processed[i] = f < 0.3 ? 0.0 : f * rounded.jobs()[i].volume;
    }
    const double t = u(rng) * (rounded.max_release() + 4.0);
    const double fast = oracle.c_speed(processed, t);
    const double ref = c_speed_on_current_instance(rounded, processed, t, alpha);
    // Near-drained instants leave O(1e-7) weight residue in one path and
    // exact zero in the other; compare speeds with an absolute floor.
    ASSERT_NEAR(fast, ref, 1e-6 + 1e-9 * std::max(1.0, ref))
        << "trial " << trial << " t=" << t;
  }
}

TEST(NCNonUniform, CompletesEveryJobAndValidates) {
  const Instance inst = mixed_instance(10, 5);
  const NCNonUniformRun run = run_nc_nonuniform(inst, 2.0);
  run.result.schedule.validate(inst);
  for (const Job& j : inst.jobs()) {
    EXPECT_TRUE(run.result.schedule.completed(j.id));
  }
  EXPECT_GT(run.steps, 0);
  EXPECT_GT(run.c_evaluations, 0);
}

TEST(NCNonUniform, HdfOrderOnRoundedDensities) {
  // Two density classes far apart: the high class must always preempt.
  const Instance inst({Job{kNoJob, 0.0, 2.0, 1.0}, Job{kNoJob, 0.5, 0.3, 100.0}});
  const NCNonUniformRun run = run_nc_nonuniform(inst, 2.0);
  EXPECT_LT(run.result.schedule.completion(1), run.result.schedule.completion(0));
}

TEST(NCNonUniform, StepRefinementConverges) {
  const Instance inst = mixed_instance(6, 13);
  NCNonUniformParams coarse;
  coarse.step_growth = 0.2;
  NCNonUniformParams fine;
  fine.step_growth = 0.02;
  NCNonUniformParams finer;
  finer.step_growth = 0.005;
  const double g_coarse =
      run_nc_nonuniform(inst, 2.0, coarse).result.metrics.fractional_objective();
  const double g_fine =
      run_nc_nonuniform(inst, 2.0, fine).result.metrics.fractional_objective();
  const double g_finer =
      run_nc_nonuniform(inst, 2.0, finer).result.metrics.fractional_objective();
  // Successive refinements move less and less (Cauchy-style convergence).
  EXPECT_LE(std::abs(g_finer - g_fine), std::abs(g_fine - g_coarse) + 1e-9 * g_fine);
}

class NCNonUniformBound : public ::testing::TestWithParam<std::tuple<double, int>> {};

// Section 4's qualitative claim: constant-competitive (constant depends on
// alpha, eta, beta).  We check against the clairvoyant run with a generous
// constant; the bench (E10) maps the constant as a function of eta/beta.
TEST_P(NCNonUniformBound, BoundedRatioVsClairvoyant) {
  const auto [alpha, seed] = GetParam();
  const Instance inst = mixed_instance(8, static_cast<std::uint64_t>(seed));
  const NCNonUniformRun nc = run_nc_nonuniform(inst, alpha);
  const RunResult c = run_c(inst, alpha);
  const double ratio =
      nc.result.metrics.fractional_objective() / c.metrics.fractional_objective();
  // The dominating term is the eta^alpha energy inflation of running eta
  // times faster than the current-instance clairvoyant speed (the paper's
  // constant is 2^O(alpha)); sanity-bound with a generous multiple of it.
  const double eta = 1.5 * nc_eta_min(alpha);
  EXPECT_LT(ratio, 10.0 * std::pow(eta, alpha));
  EXPECT_GT(ratio, 0.9);  // it cannot beat the clairvoyant by much
}

INSTANTIATE_TEST_SUITE_P(Grid, NCNonUniformBound,
                         ::testing::Combine(::testing::Values(2.0, 3.0),
                                            ::testing::Values(1, 2)));

TEST(NCNonUniform, ObserverSeesMonotoneEvents) {
  const Instance inst = mixed_instance(6, 7);
  double last_t = -1.0;
  std::vector<double> last_p;
  int calls = 0;
  (void)run_nc_nonuniform(inst, 2.0, {}, [&](double t, const std::vector<double>& p) {
    EXPECT_GE(t, last_t);
    if (!last_p.empty()) {
      for (std::size_t i = 0; i < p.size(); ++i) EXPECT_GE(p[i], last_p[i] - 1e-12);
    }
    last_t = t;
    last_p = p;
    ++calls;
  });
  EXPECT_GE(calls, static_cast<int>(inst.size()));  // at least each completion
}

TEST(NCNonUniform, RoundingAblationRuns) {
  const Instance inst = mixed_instance(6, 3);
  NCNonUniformParams no_round;
  no_round.round_densities = false;
  const NCNonUniformRun a = run_nc_nonuniform(inst, 2.0, no_round);
  const NCNonUniformRun b = run_nc_nonuniform(inst, 2.0);
  EXPECT_GT(a.result.metrics.fractional_objective(), 0.0);
  EXPECT_GT(b.result.metrics.fractional_objective(), 0.0);
  // Without rounding, ordering follows true densities.
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rounded.jobs()[i].density, inst.jobs()[i].density);
  }
}

// Empirical Lemma 13: for snapshots I(t) during the run, active jobs' C
// completion times exceed t by a constant fraction of their age t - r[j].
TEST(NCNonUniform, Lemma13CompletionGapPositive) {
  const Instance inst = mixed_instance(8, 17);
  const double alpha = 2.0;
  double min_psi = kInf;
  const NCNonUniformRun run = run_nc_nonuniform(
      inst, alpha, {}, [&](double t, const std::vector<double>& processed) {
        // Build I(t) and run C to completion.
        const Instance rounded = inst.rounded_densities(4.5);
        std::vector<JobId> kept;
        const Instance cur = make_current_instance(rounded, processed, t, &kept);
        if (cur.empty()) return;
        const Schedule cs = run_algorithm_c(cur, alpha);
        for (std::size_t i = 0; i < cur.size(); ++i) {
          const JobId orig = kept[i];
          const Job& oj = inst.job(orig);
          // Only *active* jobs (not yet completed by NC).
          if (processed[static_cast<std::size_t>(orig)] >= oj.volume - 1e-12) continue;
          const double age = t - oj.release;
          if (age <= 1e-9) continue;
          const double gap = cs.completion(static_cast<JobId>(i)) - t;
          min_psi = std::min(min_psi, gap / age);
        }
      });
  (void)run;
  if (min_psi < kInf) {
    EXPECT_GT(min_psi, 0.0);
  }
}

TEST(Preemption, StructureOnHandBuiltInstance) {
  // Job 0: low density, released 0.  Jobs 1,2: high density, released later:
  // two separate preemption intervals for job 0.
  const Instance inst({Job{kNoJob, 0.0, 4.0, 1.0}, Job{kNoJob, 0.3, 0.2, 50.0},
                       Job{kNoJob, 1.5, 0.2, 50.0}});
  const Schedule c = run_algorithm_c(inst, 2.0);
  const PreemptionStructure ps = preemption_structure(c, inst, 0);
  ASSERT_EQ(ps.intervals.size(), 2u);
  EXPECT_NEAR(ps.intervals[0].start, 0.3, 1e-9);
  EXPECT_NEAR(ps.intervals[1].start, 1.5, 1e-9);
  EXPECT_NEAR(ps.intervals[0].preempting_volume, 0.2, 1e-9);
  EXPECT_NEAR(ps.intervals[1].preempting_volume, 0.2, 1e-9);
  EXPECT_GT(ps.intervals[0].weight_at_start, 0.0);
  EXPECT_EQ(ps.last_index(), 1);
  EXPECT_GT(ps.completion, ps.intervals[1].end);
}

TEST(Preemption, NoPreemptionForHighestDensityJob) {
  const Instance inst({Job{kNoJob, 0.0, 1.0, 10.0}, Job{kNoJob, 0.2, 1.0, 1.0}});
  const Schedule c = run_algorithm_c(inst, 2.0);
  const PreemptionStructure ps = preemption_structure(c, inst, 0);
  EXPECT_TRUE(ps.intervals.empty());
  EXPECT_EQ(ps.last_index(), -1);
}

}  // namespace
}  // namespace speedscale
