// Unit tests for the numerics module (roots, ODE, projection, stats).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "src/numerics/ode.h"
#include "src/numerics/projection.h"
#include "src/numerics/roots.h"
#include "src/numerics/stats.h"
#include "src/robust/diagnostics.h"

namespace speedscale::numerics {
namespace {

TEST(Roots, BisectFindsSimpleRoot) {
  const double r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0, 1e-12);
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-10);
}

TEST(Roots, BisectThrowsTypedWhenUnbracketed) {
  try {
    (void)bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0, 1e-12);
    FAIL() << "expected RobustError";
  } catch (const robust::RobustError& e) {
    EXPECT_EQ(e.code(), robust::ErrorCode::kRootNotBracketed);
  }
}

TEST(Roots, BrentFallsBackToBisectionWhenBudgetExhausted) {
  // max_iter = 1 cannot meet the tolerance; the fallback bisection on the
  // surviving bracket still converges instead of raising kNoConvergence.
  const double r = brent([](double x) { return std::cos(x) - x; }, 0.0, 1.0, 1e-13, 1);
  EXPECT_NEAR(std::cos(r), r, 1e-10);
}

TEST(Roots, FindRootIncreasingCapsExpansion) {
  // f stays negative forever: the geometric expansion must stop at the cap
  // with a typed diagnostic, not loop to overflow.
  try {
    (void)find_root_increasing([](double) { return -1.0; }, 0.0, 1.0, 1e-12, 10);
    FAIL() << "expected RobustError";
  } catch (const robust::RobustError& e) {
    EXPECT_EQ(e.code(), robust::ErrorCode::kRootNotBracketed);
  }
}

TEST(Roots, BrentMatchesKnownRoots) {
  EXPECT_NEAR(brent([](double x) { return std::cos(x); }, 0.0, 3.0, 1e-14), M_PI / 2.0, 1e-12);
  EXPECT_NEAR(brent([](double x) { return x * x * x - 8.0; }, 0.0, 5.0, 1e-14), 2.0, 1e-12);
}

TEST(Roots, BrentHandlesEndpointRoot) {
  EXPECT_DOUBLE_EQ(brent([](double x) { return x; }, 0.0, 1.0, 1e-14), 0.0);
}

TEST(Roots, FindRootIncreasingExpandsBracket) {
  const double r =
      find_root_increasing([](double x) { return x - 100.0; }, 0.0, 1.0, 1e-12);
  EXPECT_NEAR(r, 100.0, 1e-8);
}

TEST(Ode, Rk4SolvesLinearDecay) {
  // y' = -y, y(0) = 1: y(1) = e^{-1}.
  double y = 1.0;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    y = rk4_step([](double, double v) { return -v; }, 0.0, y, 1.0 / n);
  }
  EXPECT_NEAR(y, std::exp(-1.0), 1e-9);
}

TEST(Ode, AdaptiveIntegrationAccuracy) {
  // y' = cos(t), y(0) = 0: y(pi) = 0 (through a full arch).
  const double y = integrate([](double t, double) { return std::cos(t); }, 0.0, 0.0, M_PI,
                             1e-12);
  EXPECT_NEAR(y, std::sin(M_PI), 1e-9);
  const double half = integrate([](double t, double) { return std::cos(t); }, 0.0, 0.0,
                                M_PI / 2.0, 1e-12);
  EXPECT_NEAR(half, 1.0, 1e-9);
}

TEST(Ode, IntegrateUntilLocalizesEvent) {
  // y' = -y from y=1; event: y <= 1/2 at t = ln 2.
  const EventResult r = integrate_until(
      [](double, double y) { return -y; }, 0.0, 1.0, 10.0,
      [](double, double y) { return y - 0.5; }, 1e-12);
  EXPECT_TRUE(r.event_hit);
  EXPECT_NEAR(r.t, std::log(2.0), 1e-8);
  EXPECT_NEAR(r.y, 0.5, 1e-8);
}

TEST(Ode, IntegrateUntilHonorsTMax) {
  const EventResult r = integrate_until(
      [](double, double) { return 0.0; }, 0.0, 1.0, 2.0,
      [](double, double y) { return y; }, 1e-10);
  EXPECT_FALSE(r.event_hit);
  EXPECT_DOUBLE_EQ(r.t, 2.0);
}

TEST(Projection, AlreadyFeasibleIsFixedPoint) {
  std::vector<double> x{0.25, 0.25, 0.5};
  project_simplex(x, 1.0);
  EXPECT_NEAR(x[0], 0.25, 1e-12);
  EXPECT_NEAR(x[1], 0.25, 1e-12);
  EXPECT_NEAR(x[2], 0.5, 1e-12);
}

TEST(Projection, ProjectsToCorrectSumAndNonnegativity) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> x(17);
    for (double& v : x) v = u(rng);
    const double total = 3.0;
    project_simplex(x, total);
    double sum = 0.0;
    for (double v : x) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, total, 1e-9);
  }
}

TEST(Projection, ProjectionIsClosestPoint) {
  // Compare against a brute-force check: for random feasible y, the
  // projection p of x satisfies ||x-p|| <= ||x-y||.
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<double> x(6);
  for (double& v : x) v = u(rng);
  std::vector<double> p = x;
  project_simplex(p, 1.0);
  const auto dist2 = [&](const std::vector<double>& a, const std::vector<double>& b) {
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) d += (a[i] - b[i]) * (a[i] - b[i]);
    return d;
  };
  std::uniform_real_distribution<double> uu(0.0, 1.0);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> y(6);
    double s = 0.0;
    for (double& v : y) {
      v = uu(rng);
      s += v;
    }
    for (double& v : y) v /= s;  // feasible point on the simplex
    EXPECT_LE(dist2(x, p), dist2(x, y) + 1e-9);
  }
}

TEST(Projection, ZeroTotalZeroesEverything) {
  std::vector<double> x{1.0, 2.0, 3.0};
  project_simplex(x, 0.0);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, LogLogSlopeRecoversExponent) {
  std::vector<double> x, y;
  for (double k = 2.0; k <= 64.0; k *= 2.0) {
    x.push_back(k);
    y.push_back(3.0 * std::pow(k, 0.75));
  }
  EXPECT_NEAR(fit_log_log_slope(x, y), 0.75, 1e-10);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> d{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(d, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(d, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(d, 0.5), 2.5);
}

TEST(Stats, ErrorsOnDegenerateInput) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(fit_log_log_slope({1.0}, {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace speedscale::numerics
