// Streaming engine (src/engine/): SoA arena recycling, pull-based job
// sources (trace / synthetic / instance), the O(1) virtual-C offset tracker
// against the exact simulator (ties included), bounded-memory recording
// (ring, ring+spill round-trip), and the online-vs-replayed metrics contract
// (engine::kOnlineVsReplayRelTol) across the exact simulators.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_nonuniform.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/core/power.h"
#include "src/engine/job_arena.h"
#include "src/engine/job_source.h"
#include "src/engine/online_metrics.h"
#include "src/engine/segment_recorder.h"
#include "src/engine/stream_engine.h"
#include "src/workload/generators.h"
#include "src/workload/trace_io.h"

namespace speedscale {
namespace {

using engine::InstanceJobSource;
using engine::JobArena;
using engine::RecordMode;
using engine::SegmentRecorder;
using engine::StreamEngine;
using engine::StreamOptions;
using engine::StreamResult;
using engine::SyntheticJobSource;
using engine::TraceJobSource;

Instance uniform_instance(int n, std::uint64_t seed, double rate = 1.2) {
  return workload::generate({.n_jobs = n, .arrival_rate = rate, .seed = seed});
}

// --- JobArena ---------------------------------------------------------------

TEST(JobArena, RecyclesRetiredSlotsAndTracksHighWater) {
  JobArena arena;
  const JobArena::Slot a = arena.admit(0, 0.0, 1.0, 1.0);
  const JobArena::Slot b = arena.admit(1, 0.5, 2.0, 1.0);
  EXPECT_EQ(arena.live(), 2u);
  EXPECT_EQ(arena.high_water(), 2u);
  EXPECT_DOUBLE_EQ(arena.weight(b), 2.0);

  arena.retire(a);
  EXPECT_EQ(arena.live(), 1u);
  const JobArena::Slot c = arena.admit(2, 1.0, 3.0, 1.0);
  EXPECT_EQ(c, a) << "freed slot must be reused before the arrays grow";
  EXPECT_EQ(arena.capacity(), 2u);
  EXPECT_EQ(arena.high_water(), 2u);
  EXPECT_EQ(arena.id(c), 2);
  EXPECT_DOUBLE_EQ(arena.release(c), 1.0);
  EXPECT_EQ(arena.admitted(), 3u);
  EXPECT_EQ(arena.retired(), 1u);
}

TEST(JobArena, DeadSlotAccessThrows) {
  JobArena arena;
  const JobArena::Slot a = arena.admit(0, 0.0, 1.0, 1.0);
  arena.retire(a);
  EXPECT_THROW(arena.retire(a), ModelError);
  EXPECT_THROW((void)arena.volume(a), ModelError);
  EXPECT_THROW((void)arena.remaining(JobArena::Slot{99}), ModelError);
}

TEST(JobArena, RemainingIsMutable) {
  JobArena arena;
  const JobArena::Slot a = arena.admit(7, 0.0, 4.0, 0.5);
  EXPECT_DOUBLE_EQ(arena.remaining(a), 4.0);
  arena.set_remaining(a, 1.5);
  EXPECT_DOUBLE_EQ(arena.remaining(a), 1.5);
  EXPECT_DOUBLE_EQ(arena.volume(a), 4.0) << "volume is the original size";
}

// --- SyntheticJobSource -----------------------------------------------------

TEST(SyntheticJobSource, DeterministicSeededStream) {
  const SyntheticJobSource::Params params{
      .n_jobs = 500, .arrival_rate = 2.0, .volume_mean = 1.0, .density = 1.0, .seed = 42};
  SyntheticJobSource s1(params);
  SyntheticJobSource s2(params);
  Job a, b;
  double last_release = -1.0;
  std::uint64_t n = 0;
  while (s1.next(&a)) {
    ASSERT_TRUE(s2.next(&b));
    EXPECT_EQ(a.id, b.id);
    EXPECT_DOUBLE_EQ(a.release, b.release);
    EXPECT_DOUBLE_EQ(a.volume, b.volume);
    EXPECT_GE(a.release, last_release);
    EXPECT_GT(a.volume, 0.0);
    EXPECT_DOUBLE_EQ(a.density, 1.0);
    last_release = a.release;
    ++n;
  }
  EXPECT_FALSE(s2.next(&b));
  EXPECT_EQ(n, params.n_jobs);
}

TEST(SyntheticJobSource, RejectsNonPositiveParams) {
  EXPECT_THROW(SyntheticJobSource({.n_jobs = 1, .arrival_rate = 0.0}), ModelError);
  EXPECT_THROW(SyntheticJobSource({.n_jobs = 1, .volume_mean = -1.0}), ModelError);
  EXPECT_THROW(SyntheticJobSource({.n_jobs = 1, .density = 0.0}), ModelError);
}

// --- Streaming engine vs the exact simulator --------------------------------

TEST(StreamEngine, MatchesRunNcUniformExactly) {
  const double alpha = 2.0;
  const Instance inst = uniform_instance(120, 3);
  const RunResult exact = run_nc_uniform(inst, alpha);

  StreamOptions options;
  options.alpha = alpha;
  options.recorder.mode = RecordMode::kRing;
  options.recorder.ring_capacity = 1 << 10;  // whole run fits: no drops
  StreamEngine eng(options);
  InstanceJobSource source(inst);
  const StreamResult res = eng.run(source);

  ASSERT_EQ(res.jobs, inst.size());
  EXPECT_EQ(res.segments_dropped, 0u);
  const Schedule streamed = eng.recorder().to_schedule();
  ASSERT_EQ(streamed.segments().size(), exact.schedule.segments().size());
  for (std::size_t i = 0; i < streamed.segments().size(); ++i) {
    const Segment& s = streamed.segments()[i];
    const Segment& e = exact.schedule.segments()[i];
    EXPECT_EQ(s.job, e.job);
    EXPECT_NEAR(s.t0, e.t0, 1e-9 * std::max(1.0, std::abs(e.t0)));
    EXPECT_NEAR(s.t1, e.t1, 1e-9 * std::max(1.0, std::abs(e.t1)));
    EXPECT_NEAR(s.param, e.param, 1e-9 * std::max(1.0, std::abs(e.param)));
  }
  for (const Job& j : inst.jobs()) {
    EXPECT_NEAR(streamed.completion(j.id), exact.schedule.completion(j.id),
                1e-9 * std::max(1.0, exact.schedule.completion(j.id)));
  }
  EXPECT_NEAR(res.online.energy, exact.metrics.energy, 1e-9 * exact.metrics.energy);
  EXPECT_NEAR(res.online.fractional_flow, exact.metrics.fractional_flow,
              1e-9 * exact.metrics.fractional_flow);
  EXPECT_NEAR(res.online.integral_flow, exact.metrics.integral_flow,
              1e-9 * exact.metrics.integral_flow);
}

TEST(StreamEngine, TiedReleasesMatchAddBackCohortRule) {
  // Three jobs released together, then two more together: the sequential
  // virtual-C tracker must reproduce run_nc_uniform's add-back-cohort left
  // limits exactly.
  const double alpha = 2.5;
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 0.0, 0.5, 1.0},
                       Job{kNoJob, 0.0, 2.0, 1.0}, Job{kNoJob, 1.5, 1.0, 1.0},
                       Job{kNoJob, 1.5, 0.25, 1.0}});
  const RunResult exact = run_nc_uniform(inst, alpha);

  StreamOptions options;
  options.alpha = alpha;
  StreamEngine eng(options);
  InstanceJobSource source(inst);
  const StreamResult res = eng.run(source);
  const Schedule streamed = eng.recorder().to_schedule();
  for (const Job& j : inst.jobs()) {
    EXPECT_NEAR(streamed.completion(j.id), exact.schedule.completion(j.id),
                1e-9 * std::max(1.0, exact.schedule.completion(j.id)))
        << "job " << j.id;
  }
  EXPECT_NEAR(res.online.energy, exact.metrics.energy, 1e-9 * exact.metrics.energy);
}

TEST(StreamEngine, OnlineMatchesReplayedRingSchedule) {
  const double alpha = 2.0;
  const Instance inst = uniform_instance(200, 17);
  StreamOptions options;
  options.alpha = alpha;
  options.recorder.ring_capacity = 1 << 10;
  StreamEngine eng(options);
  InstanceJobSource source(inst);
  const StreamResult res = eng.run(source);

  const Metrics replayed =
      compute_metrics(inst, eng.recorder().to_schedule(), PowerLaw(alpha));
  std::string why;
  EXPECT_TRUE(engine::metrics_within_tolerance(res.online, replayed,
                                               engine::kOnlineVsReplayRelTol, &why))
      << why;
}

TEST(StreamEngine, RoundRobinMachinesMatchPerPartitionRuns) {
  // k machines, round-robin dispatch: each machine runs an independent NC
  // instance, so the engine must equal the sum of per-partition exact runs.
  const double alpha = 2.0;
  const int k = 3;
  const Instance inst = uniform_instance(90, 23);

  std::vector<std::vector<Job>> parts(static_cast<std::size_t>(k));
  const std::vector<JobId> fifo = inst.fifo_order();
  for (std::size_t i = 0; i < fifo.size(); ++i) {
    Job j = inst.job(fifo[i]);
    j.id = kNoJob;  // per-partition instances renumber
    parts[i % static_cast<std::size_t>(k)].push_back(j);
  }
  Metrics want;
  double want_makespan = 0.0;
  for (auto& part : parts) {
    const Instance pinst(std::move(part));
    const RunResult r = run_nc_uniform(pinst, alpha);
    want.energy += r.metrics.energy;
    want.fractional_flow += r.metrics.fractional_flow;
    want.integral_flow += r.metrics.integral_flow;
    for (const Job& j : pinst.jobs()) {
      want_makespan = std::max(want_makespan, r.schedule.completion(j.id));
    }
  }

  StreamOptions options;
  options.alpha = alpha;
  options.machines = k;
  options.dispatch = DispatchPolicy::kRoundRobin;
  StreamEngine eng(options);
  InstanceJobSource source(inst);
  const StreamResult res = eng.run(source);
  EXPECT_EQ(res.jobs, inst.size());
  EXPECT_NEAR(res.online.energy, want.energy, 1e-9 * want.energy);
  EXPECT_NEAR(res.online.fractional_flow, want.fractional_flow,
              1e-9 * want.fractional_flow);
  EXPECT_NEAR(res.online.integral_flow, want.integral_flow, 1e-9 * want.integral_flow);
  EXPECT_NEAR(res.makespan, want_makespan, 1e-9 * std::max(1.0, want_makespan));
}

TEST(StreamEngine, RejectsBadConfigurationsAndInputs) {
  {
    StreamOptions bad;
    bad.alpha = 1.0;
    EXPECT_THROW(StreamEngine{bad}, ModelError);
  }
  {
    StreamOptions bad;
    bad.machines = 0;
    EXPECT_THROW(StreamEngine{bad}, ModelError);
  }
  {
    StreamOptions bad;
    bad.machines = 2;
    bad.dispatch = DispatchPolicy::kFirstFit;
    EXPECT_THROW(StreamEngine{bad}, ModelError);
  }

  {  // non-uniform density stream
    const Instance mixed({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 1.0, 1.0, 2.0}});
    StreamEngine eng(StreamOptions{});
    InstanceJobSource source(mixed);
    EXPECT_THROW(eng.run(source), ModelError);
  }
  {  // one run per engine; recorder only after a run
    StreamEngine eng(StreamOptions{});
    EXPECT_THROW((void)eng.recorder(), ModelError);
    const Instance inst = uniform_instance(4, 1);
    InstanceJobSource source(inst);
    (void)eng.run(source);
    InstanceJobSource again(inst);
    EXPECT_THROW(eng.run(again), ModelError);
  }
}

TEST(StreamEngine, ArenaStaysAtBacklogScaleNotJobCount) {
  // 50k jobs stream through; the arena must plateau at the backlog (NC's
  // speed grows with the backlog, so the queue stays small) instead of
  // scaling with the total job count.
  SyntheticJobSource source({.n_jobs = 50'000, .arrival_rate = 2.0, .seed = 9});
  StreamOptions options;
  options.recorder.mode = RecordMode::kOff;
  StreamEngine eng(options);
  const StreamResult res = eng.run(source);
  EXPECT_EQ(res.jobs, 50'000u);
  EXPECT_EQ(res.segments_recorded, 0u);
  EXPECT_LT(res.arena_capacity, 2'000u)
      << "arena grew with the stream, not the backlog";
  EXPECT_EQ(res.arena_high_water, res.arena_capacity)
      << "slots are allocated only when the free list is empty";
  EXPECT_TRUE(std::isfinite(res.online.energy));
  EXPECT_GT(res.online.energy, 0.0);
}

// --- SegmentRecorder --------------------------------------------------------

Segment make_segment(int i) {
  const double t = static_cast<double>(i);
  return Segment{t, t + 1.0, static_cast<JobId>(i), SpeedLaw::kPowerGrow, 0.0, 1.0};
}

TEST(SegmentRecorder, RingKeepsNewestAndCountsDropped) {
  engine::RecorderOptions opts;
  opts.mode = RecordMode::kRing;
  opts.ring_capacity = 4;
  SegmentRecorder rec(2.0, opts);
  for (int i = 0; i < 10; ++i) rec.push(make_segment(i), 0, true);
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  const std::vector<engine::RecordedSegment> ring = rec.ring_snapshot();
  ASSERT_EQ(ring.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ring[static_cast<std::size_t>(i)].seg.job, 6 + i) << "oldest-first";
  }
  EXPECT_THROW((void)rec.to_schedule(), ModelError)
      << "a ring with drops is not the whole run";
}

TEST(SegmentRecorder, OffModeRecordsNothing) {
  engine::RecorderOptions opts;
  opts.mode = RecordMode::kOff;
  SegmentRecorder rec(2.0, opts);
  for (int i = 0; i < 5; ++i) rec.push(make_segment(i), 0, true);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_TRUE(rec.ring_snapshot().empty());
}

TEST(SegmentRecorder, SpillRoundTripRebuildsTheSchedule) {
  const double alpha = 2.0;
  const Instance inst = uniform_instance(150, 29);
  const std::string path = ::testing::TempDir() + "engine_stream_spill.jsonl";

  StreamOptions options;
  options.alpha = alpha;
  options.recorder.mode = RecordMode::kRingSpill;
  options.recorder.ring_capacity = 16;  // force drops: the spill is the record
  options.recorder.spill_path = path;
  StreamEngine eng(options);
  InstanceJobSource source(inst);
  const StreamResult res = eng.run(source);
  EXPECT_GT(res.segments_dropped, 0u);
  EXPECT_EQ(res.spill_lines, res.segments_recorded + 1) << "header + one per segment";

  const Schedule spilled = engine::read_spilled_schedule(path);
  ASSERT_EQ(spilled.segments().size(), inst.size());
  const Metrics replayed = compute_metrics(inst, spilled, PowerLaw(alpha));
  std::string why;
  EXPECT_TRUE(engine::metrics_within_tolerance(res.online, replayed,
                                               engine::kOnlineVsReplayRelTol, &why))
      << why;
  std::remove(path.c_str());
}

TEST(SegmentRecorder, SpilledScheduleRejectsTornTailAndBadSchema) {
  const std::string path = ::testing::TempDir() + "engine_stream_bad_spill.jsonl";
  {
    std::ofstream f(path);
    f << "{\"schema\":\"speedscale.segments/1\",\"alpha\":2}\n";
    f << engine::segment_json_line({make_segment(0), 0, true}) << '\n';
    f << "{\"t0\":1,\"t1\":2,";  // torn mid-object, no newline
  }
  EXPECT_THROW((void)engine::read_spilled_schedule(path), ModelError);
  {
    std::ofstream f(path);
    f << "{\"schema\":\"speedscale.wrong/9\",\"alpha\":2}\n";
  }
  EXPECT_THROW((void)engine::read_spilled_schedule(path), ModelError);
  std::remove(path.c_str());
}

// --- Online-vs-replayed contract across the exact simulators ----------------

TEST(OnlineContract, NcUniformOnlineWithinTolerance) {
  const Instance inst = uniform_instance(64, 5);
  const RunResult r = run_nc_uniform(inst, 2.0);
  ASSERT_TRUE(r.online.has_value());
  std::string why;
  EXPECT_TRUE(engine::metrics_within_tolerance(*r.online, r.metrics,
                                               engine::kOnlineVsReplayRelTol, &why))
      << why;
}

TEST(OnlineContract, AlgorithmCOnlineWithinTolerance) {
  const Instance inst = uniform_instance(64, 8);
  const RunResult r = run_c(inst, 2.5);
  ASSERT_TRUE(r.online.has_value());
  std::string why;
  EXPECT_TRUE(engine::metrics_within_tolerance(*r.online, r.metrics,
                                               engine::kOnlineVsReplayRelTol, &why))
      << why;
  // P = W: cumulative energy and fractional flow are the same integral.
  EXPECT_NEAR(r.online->energy, r.online->fractional_flow, 1e-9 * r.online->energy);
}

TEST(OnlineContract, NcNonUniformOnlineTracksReplay) {
  const Instance inst = workload::generate(
      {.n_jobs = 12, .density_mode = workload::DensityMode::kClasses, .seed = 13});
  const NCNonUniformRun run = run_nc_nonuniform(inst, 2.0);
  ASSERT_TRUE(run.result.online.has_value());
  // The integrator's schedule and its per-step accumulators share the same
  // discretization, so they agree far tighter than the integration error —
  // but not to the closed-form engines' 1e-7: the completion clamp replays
  // slightly differently than it accumulates.
  std::string why;
  EXPECT_TRUE(engine::metrics_within_tolerance(*run.result.online, run.result.metrics,
                                               1e-4, &why))
      << why;
}

TEST(OnlineContract, EmptyInstanceYieldsZeroOnline) {
  const Instance empty(std::vector<Job>{});
  const RunResult r = run_nc_uniform(empty, 2.0);
  ASSERT_TRUE(r.online.has_value());
  EXPECT_DOUBLE_EQ(r.online->energy, 0.0);
  EXPECT_DOUBLE_EQ(r.online->integral_flow, 0.0);
}

// --- Trace streaming ingest -------------------------------------------------

TEST(TraceJobSource, MatchesReadTraceOnRoundTrip) {
  const Instance inst = uniform_instance(300, 31);
  std::ostringstream text;
  workload::write_trace(text, inst);

  std::istringstream for_read(text.str());
  const Instance loaded = workload::read_trace(for_read);

  std::istringstream for_stream(text.str());
  TraceJobSource source(for_stream);
  Job j;
  std::size_t n = 0;
  while (source.next(&j)) {
    ASSERT_LT(n, loaded.size());
    const Job& want = loaded.job(static_cast<JobId>(n));
    EXPECT_EQ(j.id, want.id);
    EXPECT_DOUBLE_EQ(j.release, want.release);
    EXPECT_DOUBLE_EQ(j.volume, want.volume);
    EXPECT_DOUBLE_EQ(j.density, want.density);
    ++n;
  }
  EXPECT_EQ(n, loaded.size());
  EXPECT_EQ(source.stats().lines_read, inst.size());
  EXPECT_EQ(source.stats().lines_skipped, 0u);
}

/// Builds a >1M-line trace in memory: release-ordered, unit volume/density.
/// `corrupt_every` > 0 replaces every Nth data line with garbage.
std::string million_line_trace(std::size_t lines, std::size_t corrupt_every) {
  std::string text = "id,release,volume,density\n";
  text.reserve(lines * 24 + 32);
  char buf[64];
  for (std::size_t i = 0; i < lines; ++i) {
    if (corrupt_every > 0 && i % corrupt_every == corrupt_every - 1) {
      text += "not,a,job\n";
      continue;
    }
    const int n = std::snprintf(buf, sizeof(buf), "%zu,%.6f,1,1\n", i,
                                static_cast<double>(i) * 1e-3);
    text.append(buf, static_cast<std::size_t>(n));
  }
  return text;
}

TEST(TraceJobSource, StreamsOverAMillionLinesStrict) {
  constexpr std::size_t kLines = 1'050'000;
  const std::string text = million_line_trace(kLines, 0);
  std::istringstream is(text);
  TraceJobSource source(is);
  Job j;
  std::size_t n = 0;
  double last = -1.0;
  while (source.next(&j)) {
    if ((n & 0xFFF) == 0) {  // spot-check: full per-job asserts would dominate
      EXPECT_GE(j.release, last);
      EXPECT_DOUBLE_EQ(j.volume, 1.0);
    }
    last = j.release;
    ++n;
  }
  EXPECT_EQ(n, kLines);
  EXPECT_EQ(source.stats().lines_read, kLines);
}

TEST(TraceJobSource, LenientSkipsCorruptLinesInAMillionLineStream) {
  constexpr std::size_t kLines = 1'000'000;
  constexpr std::size_t kCorruptEvery = 100'000;
  const std::string text = million_line_trace(kLines, kCorruptEvery);
  std::istringstream is(text);
  TraceJobSource source(is, workload::TraceReadMode::kLenient);
  Job j;
  std::size_t n = 0;
  while (source.next(&j)) ++n;
  const std::size_t corrupted = kLines / kCorruptEvery;
  EXPECT_EQ(n, kLines - corrupted);
  EXPECT_EQ(source.stats().lines_skipped, corrupted);
  EXPECT_EQ(source.stats().lines_read, kLines - corrupted);
}

TEST(TraceJobSource, StrictRejectsWhatReadTraceRejects) {
  const char* bad[] = {
      "id,release,volume,density\n1,0.0,1.0\n",            // field count
      "id,release,volume,density\n1,zero,1.0,1.0\n",       // unparseable
      "id,release,volume,density\n1,0.0,inf,1.0\n",        // non-finite
      "id,release,volume,density\n1,0.0,0.0,1.0\n",        // non-positive volume
      "id,release,volume,density\n1,1.0,1.0,1.0\n2,0.5,1.0,1.0\n",  // decreasing
      "id,release,volume,density\n1,0.0,1.0,1.0",          // torn tail
      "release,volume\n",                                  // bad header
  };
  for (const char* text : bad) {
    std::istringstream is(text);
    TraceJobSource source(is);
    Job j;
    EXPECT_THROW(
        {
          while (source.next(&j)) {
          }
        },
        workload::TraceIoError)
        << text;
  }
}

TEST(TraceJobSource, TruncatedMidJobFuzzNeverYieldsGarbage) {
  // Cut a valid trace at every byte offset in a stride: strict mode must
  // yield a clean prefix of the full stream and then either end (cut on a
  // line boundary) or throw — never emit a job the full trace didn't contain.
  const Instance inst = uniform_instance(40, 37);
  std::ostringstream text_os;
  workload::write_trace(text_os, inst);
  const std::string text = text_os.str();

  std::vector<Job> full;
  {
    std::istringstream is(text);
    TraceJobSource source(is);
    Job j;
    while (source.next(&j)) full.push_back(j);
  }
  ASSERT_EQ(full.size(), inst.size());

  for (std::size_t cut = 0; cut < text.size(); cut += 7) {
    std::istringstream is(text.substr(0, cut));
    TraceJobSource source(is);
    std::vector<Job> got;
    Job j;
    try {
      while (source.next(&j)) got.push_back(j);
    } catch (const workload::TraceIoError&) {
      // expected for torn cuts
    }
    ASSERT_LE(got.size(), full.size()) << "cut=" << cut;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, full[i].id) << "cut=" << cut;
      EXPECT_DOUBLE_EQ(got[i].release, full[i].release) << "cut=" << cut;
      EXPECT_DOUBLE_EQ(got[i].volume, full[i].volume) << "cut=" << cut;
    }
    // Lenient mode only throws when the *header itself* is missing or torn
    // (a headerless stream is a different format, not a bad line).
    std::istringstream is2(text.substr(0, cut));
    TraceJobSource lenient(is2, workload::TraceReadMode::kLenient);
    std::size_t n = 0;
    try {
      while (lenient.next(&j)) ++n;
    } catch (const workload::TraceIoError&) {
      EXPECT_LT(cut, text.find('\n') + 1) << "lenient threw past the header";
    }
    EXPECT_LE(n, full.size());
  }
}

TEST(StreamEngine, RunsFromATraceStream) {
  // End-to-end: instance -> trace text -> streaming ingest -> engine, equal
  // to the exact simulator on the same instance.
  const double alpha = 2.0;
  const Instance inst = uniform_instance(80, 41);
  std::ostringstream text;
  workload::write_trace(text, inst);
  std::istringstream is(text.str());

  TraceJobSource source(is);
  StreamOptions options;
  options.alpha = alpha;
  options.recorder.mode = RecordMode::kOff;
  StreamEngine eng(options);
  const StreamResult res = eng.run(source);
  const RunResult exact = run_nc_uniform(inst, alpha);
  EXPECT_EQ(res.jobs, inst.size());
  EXPECT_NEAR(res.online.energy, exact.metrics.energy, 1e-9 * exact.metrics.energy);
  EXPECT_NEAR(res.online.integral_flow, exact.metrics.integral_flow,
              1e-9 * exact.metrics.integral_flow);
}

// --- OnlineMetrics / KahanSum ----------------------------------------------

TEST(OnlineMetrics, KahanSurvivesIllConditionedSums) {
  engine::KahanSum s;
  s.add(1.0);
  for (int i = 0; i < 10'000'000; ++i) s.add(1e-16);
  // Plain double summation loses every 1e-16 against 1.0 (error ~1e-9);
  // compensation keeps all of them.
  EXPECT_NEAR(s.value(), 1.0 + 1e-9, 1e-12);
}

TEST(OnlineMetrics, ToleranceGateNamesTheFailingComponent) {
  Metrics a{1.0, 2.0, 3.0};
  Metrics b{1.0, 2.0, 3.0};
  std::string why;
  EXPECT_TRUE(engine::metrics_within_tolerance(a, b, 1e-9, &why)) << why;
  b.fractional_flow = 2.1;
  EXPECT_FALSE(engine::metrics_within_tolerance(a, b, 1e-9, &why));
  EXPECT_NE(why.find("fractional_flow"), std::string::npos) << why;
  b.fractional_flow = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(engine::metrics_within_tolerance(a, b, 1e-9, &why));
}

}  // namespace
}  // namespace speedscale
