// Unit tests for the closed-form power-law kinematics (core/kinematics.h),
// including the Lemma 2 identities of the paper.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/kinematics.h"
#include "src/numerics/ode.h"

namespace speedscale {
namespace {

class KinematicsAlpha : public ::testing::TestWithParam<double> {};

TEST_P(KinematicsAlpha, DecayMatchesOde) {
  const double alpha = GetParam();
  const PowerLawKinematics kin(alpha);
  const double rho = 1.3, w0 = 5.0, dt = 0.7;
  const double closed = kin.decay_weight_after(w0, rho, dt);
  const double ode = numerics::integrate(
      [&](double, double w) { return -rho * std::pow(std::max(w, 0.0), 1.0 / alpha); }, 0.0, w0,
      dt, 1e-12);
  EXPECT_NEAR(closed, ode, 1e-7 * w0);
}

TEST_P(KinematicsAlpha, GrowMatchesOde) {
  const double alpha = GetParam();
  const PowerLawKinematics kin(alpha);
  const double rho = 0.8, u0 = 0.5, dt = 1.9;
  const double closed = kin.grow_weight_after(u0, rho, dt);
  const double ode = numerics::integrate(
      [&](double, double u) { return rho * std::pow(std::max(u, 0.0), 1.0 / alpha); }, 0.0, u0,
      dt, 1e-12);
  EXPECT_NEAR(closed, ode, 1e-6 * closed);
}

TEST_P(KinematicsAlpha, DecayTimeInvertsWeightAfter) {
  const PowerLawKinematics kin(GetParam());
  const double rho = 2.0, w0 = 7.0, w1 = 2.5;
  const double t = kin.decay_time_to_weight(w0, w1, rho);
  EXPECT_NEAR(kin.decay_weight_after(w0, rho, t), w1, 1e-9 * w0);
}

TEST_P(KinematicsAlpha, GrowTimeInvertsWeightAfter) {
  const PowerLawKinematics kin(GetParam());
  const double rho = 0.5, u0 = 1.0, u1 = 9.0;
  const double t = kin.grow_time_to_weight(u0, u1, rho);
  EXPECT_NEAR(kin.grow_weight_after(u0, rho, t), u1, 1e-9 * u1);
}

// Lemma 2.1: dW/dt = rho W^{1/alpha} for a single job under Algorithm C
// (here checked as a finite-difference of the closed form).
TEST_P(KinematicsAlpha, Lemma2Rate) {
  const double alpha = GetParam();
  const PowerLawKinematics kin(alpha);
  const double rho = 1.7, w0 = 4.0;
  const double h = 1e-7;
  const double dw = (w0 - kin.decay_weight_after(w0, rho, h)) / h;
  EXPECT_NEAR(dw, rho * std::pow(w0, 1.0 / alpha), 1e-3);
}

// Lemma 2.2: rho (1 - 1/alpha) t = W^{1 - 1/alpha} where t is the time for a
// single job of weight W to complete.
TEST_P(KinematicsAlpha, Lemma2CompletionTime) {
  const double alpha = GetParam();
  const PowerLawKinematics kin(alpha);
  const double rho = 2.2, w = 6.0;
  const double t = kin.decay_time_to_zero(w, rho);
  EXPECT_NEAR(rho * (1.0 - 1.0 / alpha) * t, std::pow(w, 1.0 - 1.0 / alpha), 1e-9);
}

// Lemma 2.3: W / t = (1 - 1/alpha) dW/dt at the start of the run.
TEST_P(KinematicsAlpha, Lemma2WeightOverTime) {
  const double alpha = GetParam();
  const PowerLawKinematics kin(alpha);
  const double rho = 1.0, w = 3.0;
  const double t = kin.decay_time_to_zero(w, rho);
  const double dw_dt = rho * std::pow(w, 1.0 / alpha);
  EXPECT_NEAR(w / t, (1.0 - 1.0 / alpha) * dw_dt, 1e-9);
}

// Growth is the exact time-reversal of decay (Figure 1b): growing from 0 to
// W takes exactly as long as decaying from W to 0, with equal integrals.
TEST_P(KinematicsAlpha, GrowIsDecayReversed) {
  const PowerLawKinematics kin(GetParam());
  const double rho = 1.4, w = 5.5;
  EXPECT_NEAR(kin.grow_time_to_weight(0.0, w, rho), kin.decay_time_to_zero(w, rho), 1e-9);
  EXPECT_NEAR(kin.grow_integral(0.0, w, rho), kin.decay_integral(w, 0.0, rho), 1e-9);
}

TEST_P(KinematicsAlpha, IntegralMatchesQuadrature) {
  const double alpha = GetParam();
  const PowerLawKinematics kin(alpha);
  const double rho = 1.1, w0 = 4.0, w1 = 1.0;
  const double t_end = kin.decay_time_to_weight(w0, w1, rho);
  // Trapezoid quadrature of int W dt.
  const int n = 20000;
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    const double a = t_end * i / n, b = t_end * (i + 1) / n;
    acc += 0.5 * (kin.decay_weight_after(w0, rho, a) + kin.decay_weight_after(w0, rho, b)) *
           (b - a);
  }
  EXPECT_NEAR(kin.decay_integral(w0, w1, rho), acc, 1e-5 * acc);
}

TEST_P(KinematicsAlpha, VolumeBookkeeping) {
  const PowerLawKinematics kin(GetParam());
  const double rho = 2.5, w0 = 8.0, w1 = 3.0;
  EXPECT_DOUBLE_EQ(PowerLawKinematics::decay_volume(w0, w1, rho), 2.0);
  EXPECT_DOUBLE_EQ(PowerLawKinematics::grow_volume(w1, w0, rho), 2.0);
}

INSTANTIATE_TEST_SUITE_P(AlphaGrid, KinematicsAlpha,
                         ::testing::Values(1.2, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0));

TEST(Kinematics, RejectsAlphaAtMostOne) {
  EXPECT_THROW(PowerLawKinematics(1.0), ModelError);
  EXPECT_THROW(PowerLawKinematics(0.5), ModelError);
}

TEST(Kinematics, ZeroWeightEdgeCases) {
  const PowerLawKinematics kin(2.0);
  EXPECT_EQ(kin.speed_at_weight(0.0), 0.0);
  EXPECT_EQ(kin.decay_weight_after(0.0, 1.0, 5.0), 0.0);
  EXPECT_EQ(kin.decay_time_to_zero(0.0, 1.0), 0.0);
  // Growing branch from zero: the epsilon -> 0 limit moves.
  EXPECT_GT(kin.grow_weight_after(0.0, 1.0, 1.0), 0.0);
}

TEST(Kinematics, DecayRejectsIncreasingTarget) {
  const PowerLawKinematics kin(2.0);
  EXPECT_THROW((void)kin.decay_time_to_weight(1.0, 2.0, 1.0), ModelError);
  EXPECT_THROW((void)kin.grow_time_to_weight(2.0, 1.0, 1.0), ModelError);
}

}  // namespace
}  // namespace speedscale
