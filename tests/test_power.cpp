// Unit tests for power functions (core/power.h).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/core/power.h"

namespace speedscale {
namespace {

TEST(PowerLaw, BasicValues) {
  const PowerLaw p(3.0);
  EXPECT_DOUBLE_EQ(p.power(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.power(2.0), 8.0);
  EXPECT_DOUBLE_EQ(p.speed_for_power(8.0), 2.0);
  EXPECT_DOUBLE_EQ(p.speed_for_power(0.0), 0.0);
  EXPECT_NEAR(p.derivative(2.0), 12.0, 1e-12);
  EXPECT_GT(p.alpha(), 1.0);
}

TEST(PowerLaw, RejectsBadAlpha) {
  EXPECT_THROW(PowerLaw(1.0), ModelError);
  EXPECT_THROW(PowerLaw(0.0), ModelError);
}

class PowerRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(PowerRoundTrip, InverseIsExact) {
  const PowerLaw p(GetParam());
  for (double s : {0.1, 0.5, 1.0, 3.7, 42.0}) {
    EXPECT_NEAR(p.speed_for_power(p.power(s)), s, 1e-12 * s);
  }
}

INSTANTIATE_TEST_SUITE_P(AlphaGrid, PowerRoundTrip, ::testing::Values(1.3, 2.0, 2.7, 3.0, 5.0));

TEST(LeakyPowerLaw, InverseRoundTrip) {
  const LeakyPowerLaw p(2.5, 0.75);
  for (double s : {0.01, 0.2, 1.0, 6.0, 50.0}) {
    EXPECT_NEAR(p.speed_for_power(p.power(s)), s, 1e-8 * std::max(1.0, s));
  }
  EXPECT_DOUBLE_EQ(p.speed_for_power(0.0), 0.0);
}

TEST(LeakyPowerLaw, DerivativeMatchesAnalytic) {
  const LeakyPowerLaw p(3.0, 0.5);
  EXPECT_NEAR(p.derivative(2.0), 3.0 * 4.0 + 0.5, 1e-10);
}

TEST(LeakyPowerLaw, RejectsBadParams) {
  EXPECT_THROW(LeakyPowerLaw(1.0, 0.5), ModelError);
  EXPECT_THROW(LeakyPowerLaw(2.0, -0.1), ModelError);
}

TEST(ExpPower, InverseRoundTrip) {
  const ExpPower p;
  EXPECT_DOUBLE_EQ(p.power(0.0), 0.0);
  for (double s : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(p.speed_for_power(p.power(s)), s, 1e-12 * std::max(1.0, s));
  }
}

TEST(PowerFunction, DefaultDerivativeIsCentralDifference) {
  // Exercise the base-class fallback through a function that does not
  // override derivative().
  class Quadratic final : public PowerFunction {
   public:
    double power(double s) const override { return s * s; }
    double speed_for_power(double p) const override { return std::sqrt(p); }
    std::string name() const override { return "s^2 (no deriv)"; }
  };
  const Quadratic q;
  EXPECT_NEAR(q.derivative(3.0), 6.0, 1e-5);
}

TEST(PowerFunction, ConvexityOnGrid) {
  // All shipped power functions are convex: midpoint below chord.
  std::vector<std::unique_ptr<PowerFunction>> fns;
  fns.push_back(std::make_unique<PowerLaw>(2.2));
  fns.push_back(std::make_unique<LeakyPowerLaw>(3.0, 1.0));
  fns.push_back(std::make_unique<ExpPower>());
  for (const auto& f : fns) {
    for (double a = 0.0; a < 4.0; a += 0.37) {
      const double b = a + 1.1;
      EXPECT_LE(f->power(0.5 * (a + b)), 0.5 * (f->power(a) + f->power(b)) + 1e-12)
          << f->name();
    }
  }
}

}  // namespace
}  // namespace speedscale
