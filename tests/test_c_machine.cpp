// Tests for the exact incremental Algorithm C simulator (sim/c_machine.h).
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/metrics.h"
#include "src/core/power.h"
#include "src/sim/c_machine.h"
#include "src/workload/generators.h"

namespace speedscale {
namespace {

TEST(CMachine, SingleJobMatchesLemma2) {
  const double alpha = 3.0, rho = 2.0, volume = 1.5;
  const Instance inst({Job{kNoJob, 0.0, volume, rho}});
  const Schedule s = run_algorithm_c(inst, alpha);
  const PowerLawKinematics kin(alpha);
  const double w = rho * volume;
  // Lemma 2.2: completion at t with rho (1-1/alpha) t = W^{1-1/alpha}.
  const double t_expect = std::pow(w, 1.0 - 1.0 / alpha) / (rho * (1.0 - 1.0 / alpha));
  EXPECT_NEAR(s.completion(0), t_expect, 1e-12);
  EXPECT_NEAR(s.makespan(), t_expect, 1e-12);
  EXPECT_NEAR(kin.decay_time_to_zero(w, rho), t_expect, 1e-12);
}

TEST(CMachine, HdfOrderWithPreemption) {
  // Low-density job first; a high-density job arrives and must preempt.
  const Instance inst({Job{kNoJob, 0.0, 4.0, 1.0}, Job{kNoJob, 0.1, 0.5, 10.0}});
  const Schedule s = run_algorithm_c(inst, 2.0);
  // Find who runs just after t = 0.1.
  bool preempted = false;
  for (const Segment& seg : s.segments()) {
    if (seg.t0 >= 0.1 - 1e-12 && seg.t0 < 0.1 + 1e-9) {
      EXPECT_EQ(seg.job, 1);
      preempted = true;
    }
  }
  EXPECT_TRUE(preempted);
  // Job 1 completes before job 0.
  EXPECT_LT(s.completion(1), s.completion(0));
  s.validate(inst);
}

TEST(CMachine, FifoWithinDensityLevel) {
  const Instance inst({Job{kNoJob, 0.0, 1.0, 2.0}, Job{kNoJob, 0.5, 1.0, 2.0}});
  const Schedule s = run_algorithm_c(inst, 2.0);
  EXPECT_LT(s.completion(0), s.completion(1));
  // Job 0 is never interrupted by job 1.
  for (const Segment& seg : s.segments()) {
    if (seg.job == 1) {
      EXPECT_GE(seg.t0, s.completion(0) - 1e-12);
    }
  }
}

TEST(CMachine, WorkConservingAndIdle) {
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 10.0, 1.0, 1.0}});
  const Schedule s = run_algorithm_c(inst, 2.0);
  // Gap between first completion and t=10.
  EXPECT_LT(s.completion(0), 10.0);
  EXPECT_GT(s.completion(1), 10.0);
  EXPECT_DOUBLE_EQ(s.speed_at(0.5 * (s.completion(0) + 10.0)), 0.0);
}

TEST(CMachine, RemainingWeightLeftIsLeftLimit) {
  const double alpha = 2.0;
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 0.5, 1.0, 1.0}});
  CMachine m(alpha);
  for (const Job& j : inst.jobs()) m.add_job(j);
  m.run_to_completion();
  const PowerLawKinematics kin(alpha);
  // Just before the second release: W decayed from 1 for 0.5 time units.
  const double expect = kin.decay_weight_after(1.0, 1.0, 0.5);
  EXPECT_NEAR(m.remaining_weight_left(0.5), expect, 1e-12);
  // Just after: the jump is visible in remaining_weight at a later query
  // point, not in the left limit.
  EXPECT_NEAR(m.remaining_weight_left(0.5 + 1e-9), expect + 1.0, 1e-6);
}

TEST(CMachine, IncrementalAdditionMatchesBatch) {
  const double alpha = 2.5;
  const Instance inst = workload::generate({.n_jobs = 20, .seed = 42});
  // Batch: all jobs up front.
  const Schedule batch = run_algorithm_c(inst, alpha);
  // Incremental: feed each job right at its release.
  CMachine m(alpha);
  for (JobId jid : inst.fifo_order()) {
    m.advance_to(inst.job(jid).release);
    m.add_job(inst.job(jid));
  }
  m.run_to_completion();
  for (const Job& j : inst.jobs()) {
    EXPECT_NEAR(m.schedule().completion(j.id), batch.completion(j.id), 1e-9);
  }
}

TEST(CMachine, CompletionTimeOfAllIsNonMutating) {
  CMachine m(2.0);
  m.add_job(Job{0, 0.0, 1.0, 1.0});
  const double t_all = m.completion_time_of_all();
  EXPECT_DOUBLE_EQ(m.now(), 0.0);  // frontier unchanged
  m.run_to_completion();
  EXPECT_NEAR(m.now(), t_all, 1e-12);
}

TEST(CMachine, RejectsMisuse) {
  CMachine m(2.0);
  m.add_job(Job{0, 1.0, 1.0, 1.0});
  EXPECT_THROW(m.add_job(Job{0, 2.0, 1.0, 1.0}), ModelError);   // duplicate id
  EXPECT_THROW(m.add_job(Job{kNoJob, 2.0, 1.0, 1.0}), ModelError);
  m.advance_to(5.0);
  EXPECT_THROW(m.add_job(Job{1, 2.0, 1.0, 1.0}), ModelError);   // past release
  EXPECT_THROW(m.advance_to(1.0), ModelError);                  // backwards
  EXPECT_THROW((void)m.remaining_weight_left(99.0), ModelError);      // beyond frontier
  EXPECT_THROW((void)m.remaining_volume(77), ModelError);             // unknown id
}

TEST(CMachine, VolumeConservation) {
  const Instance inst = workload::generate(
      {.n_jobs = 30, .density_mode = workload::DensityMode::kLogUniform, .seed = 3});
  const Schedule s = run_algorithm_c(inst, 3.0);
  s.validate(inst);
  const auto v = s.processed_volumes(inst.size());
  for (const Job& j : inst.jobs()) {
    EXPECT_NEAR(v[static_cast<std::size_t>(j.id)], j.volume, 1e-8 * std::max(1.0, j.volume));
  }
}

TEST(CMachine, PartialAdvanceRemainingVolumes) {
  const double alpha = 2.0;
  CMachine m(alpha);
  m.add_job(Job{0, 0.0, 1.0, 1.0});
  m.advance_to(0.3);
  const PowerLawKinematics kin(alpha);
  const double w = kin.decay_weight_after(1.0, 1.0, 0.3);
  EXPECT_NEAR(m.remaining_weight(), w, 1e-12);
  EXPECT_NEAR(m.remaining_volume(0), w, 1e-12);  // unit density
  EXPECT_NEAR(m.remaining_weight_of(0), w, 1e-12);
  EXPECT_EQ(m.active_count(), 1u);
  EXPECT_FALSE(m.drained());
}

// Property sweep: for every alpha and seed, the Algorithm C invariant
// "energy == fractional flow" holds exactly (both equal int W dt).
class CMachineProperty : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(CMachineProperty, EnergyEqualsFractionalFlow) {
  const auto [alpha, seed] = GetParam();
  const Instance inst = workload::generate({.n_jobs = 25,
                                            .arrival_rate = 1.5,
                                            .density_mode = workload::DensityMode::kClasses,
                                            .seed = static_cast<std::uint64_t>(seed)});
  const Schedule s = run_algorithm_c(inst, alpha);
  const PowerLaw p(alpha);
  const Metrics m = compute_metrics(inst, s, p);
  EXPECT_NEAR(m.energy, m.fractional_flow, 1e-9 * std::max(1.0, m.energy));
}

INSTANTIATE_TEST_SUITE_P(Sweep, CMachineProperty,
                         ::testing::Combine(::testing::Values(1.5, 2.0, 3.0),
                                            ::testing::Values(1, 2, 3, 4, 5)));

}  // namespace
}  // namespace speedscale
