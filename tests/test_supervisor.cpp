// Multi-process sweep fleet: supervisor, worker checkpoints, chaos harness
// (PR 7).
//
// The load-bearing property: the fleet's artifacts — suite JSON, certificate
// JSONL, merged counters — are byte-identical to a serial --jobs 1 sweep,
// *including under injected failure*: workers SIGKILLed mid-shard, shard-log
// tails torn mid-append, workers hung without heartbeats, and shards so
// crashy they finish on the supervisor's in-process degradation ladder.
// These tests spawn the real sweep_worker binary (SPEEDSCALE_SWEEP_WORKER,
// set by CMake) and drive real fork/exec/waitpid supervision.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/sweep.h"
#include "src/obs/history/cost_model.h"
#include "src/obs/metrics_registry.h"
#include "src/robust/diagnostics.h"
#include "src/robust/supervisor/item_runner.h"
#include "src/robust/supervisor/shard_log.h"
#include "src/robust/supervisor/supervisor.h"
#include "src/robust/supervisor/work_spec.h"
#include "src/workload/generators.h"

namespace speedscale {
namespace {

namespace rs = robust::supervisor;

/// The pinned grid every test sweeps: same shape as test_sweep's determinism
/// fixture (4 uniform instances, certificates on, no nonuniform pass).
std::vector<analysis::SuitePoint> pinned_grid() {
  std::vector<analysis::SuitePoint> points;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    points.push_back(
        {workload::generate({.n_jobs = 6, .arrival_rate = 2.0, .seed = seed}), 2.0});
  }
  return points;
}

analysis::SuiteOptions pinned_suite_options() {
  analysis::SuiteOptions suite;
  suite.include_nonuniform = false;
  suite.certify = true;
  suite.opt_slots = 120;
  return suite;
}

std::map<std::string, std::int64_t> nonzero_counters() {
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, v] : obs::registry().counter_values()) {
    if (v != 0) out[name] = v;
  }
  return out;
}

struct Artifacts {
  std::string suite_json;
  std::string cert_jsonl;
  std::map<std::string, std::int64_t> counters;
};

/// The reference execution the fleet must reproduce byte-for-byte.
Artifacts serial_reference() {
  obs::set_metrics_enabled(true);
  obs::registry().reset_all();
  analysis::SweepOptions sweep;
  sweep.jobs = 1;
  const analysis::SuiteSweepResult r =
      analysis::run_suite_sweep(pinned_grid(), pinned_suite_options(), sweep);
  return {r.suite_json(), r.cert_jsonl(), nonzero_counters()};
}

/// A scratch fleet directory under the test temp root.
std::string fresh_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "speedscale_fleet_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

rs::FleetOptions base_options(const std::string& dir) {
  rs::FleetOptions options;
  options.worker_binary = SPEEDSCALE_SWEEP_WORKER;
  options.work_dir = dir;
  options.poll_ms = 5;
  options.backoff_base_ms = 5;
  options.backoff_cap_ms = 50;
  return options;
}

struct FleetRun {
  rs::FleetResult result;
  std::map<std::string, std::int64_t> counters;  // supervisor-process registry
};

FleetRun run_fleet(const rs::FleetOptions& options, std::size_t workers = 2) {
  obs::set_metrics_enabled(true);
  obs::registry().reset_all();
  FleetRun run;
  run.result =
      rs::run_suite_sweep_fleet(pinned_grid(), pinned_suite_options(), workers, options);
  run.counters = nonzero_counters();
  return run;
}

void expect_matches_serial(const FleetRun& fleet, const Artifacts& serial) {
  EXPECT_TRUE(fleet.result.completed);
  EXPECT_FALSE(fleet.result.interrupted);
  EXPECT_EQ(fleet.result.suite_json, serial.suite_json);
  EXPECT_EQ(fleet.result.cert_jsonl, serial.cert_jsonl);
  // Work counters merged toward the supervisor must match the serial run's.
  // Two deliberate exclusions: robust.checkpoint.torn_lines is recovery
  // diagnostics (visible by design, never part of the work), and
  // analysis.thread_pool.tasks counts how the serial backend executed —
  // a pool task per item — where the fleet uses processes.  Neither enters
  // any artifact (the suite JSON's merged counters already compared equal).
  auto fleet_counters = fleet.counters;
  fleet_counters.erase("robust.checkpoint.torn_lines");
  auto serial_counters = serial.counters;
  serial_counters.erase("analysis.thread_pool.tasks");
  EXPECT_EQ(fleet_counters, serial_counters);
}

// --- Work specs ----------------------------------------------------------

TEST(FleetWorkSpec, SuitePointsRoundTripBitExactly) {
  rs::FleetWorkSpec spec;
  spec.kind = rs::FleetWorkKind::kSuitePoints;
  spec.shards = 3;
  spec.points = pinned_grid();
  spec.suite_options = pinned_suite_options();
  const rs::FleetWorkSpec back = rs::parse_work_spec(spec.to_json());
  // Instances hold generator-produced doubles; "%.17g" must round-trip them
  // to the last bit, so the reserialization is byte-identical.
  EXPECT_EQ(back.to_json(), spec.to_json());
  ASSERT_EQ(back.points.size(), spec.points.size());
  EXPECT_EQ(back.points[2].instance.jobs()[3].volume,
            spec.points[2].instance.jobs()[3].volume);
  EXPECT_EQ(back.n_items(), spec.n_items());
}

TEST(FleetWorkSpec, PinnedBenchRoundTrip) {
  rs::FleetWorkSpec spec;
  spec.kind = rs::FleetWorkKind::kPinnedBench;
  spec.shards = 2;
  spec.opt_cache_capacity = 0;
  spec.bench_names = {"numerics.roots/sweep", "sim.nc_uniform/1024"};
  spec.bench_reps = 3;
  const rs::FleetWorkSpec back = rs::parse_work_spec(spec.to_json());
  EXPECT_EQ(back.to_json(), spec.to_json());
  EXPECT_EQ(back.n_items(), 6u);
  // Static ownership: item i belongs to shard i % shards, split 3/3 here.
  EXPECT_EQ(back.items_in_shard(0), 3u);
  EXPECT_EQ(back.items_in_shard(1), 3u);
  EXPECT_TRUE(back.owns(1, 3));
  EXPECT_FALSE(back.owns(0, 3));
}

TEST(FleetWorkSpec, MalformedDocumentsThrowTyped) {
  EXPECT_THROW((void)rs::parse_work_spec("not json"), robust::RobustError);
  EXPECT_THROW((void)rs::parse_work_spec("{\"schema\":\"nope\"}"), robust::RobustError);
  // Structurally valid JSON, missing the work-list.
  EXPECT_THROW((void)rs::parse_work_spec("{\"schema\":\"speedscale.fleet_spec/1\","
                                         "\"kind\":\"suite_points\",\"shards\":2,"
                                         "\"opt_cache_capacity\":0}"),
               robust::RobustError);
}

TEST(FleetWorkSpec, AssignmentOverridesStaticOwnershipAndRoundTrips) {
  rs::FleetWorkSpec spec;
  spec.kind = rs::FleetWorkKind::kPinnedBench;
  spec.shards = 2;
  spec.opt_cache_capacity = 0;
  spec.bench_names = {"numerics.roots/sweep", "sim.nc_uniform/1024"};
  spec.bench_reps = 3;  // 6 items
  spec.assignment = {1, 1, 1, 0, 0, 0};  // inverts the static i % 2 split
  const rs::FleetWorkSpec back = rs::parse_work_spec(spec.to_json());
  EXPECT_EQ(back.to_json(), spec.to_json());
  ASSERT_EQ(back.assignment, spec.assignment);
  EXPECT_EQ(back.items_in_shard(0), 3u);
  EXPECT_EQ(back.items_in_shard(1), 3u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(back.owns(spec.assignment[i], i), true);
    EXPECT_EQ(back.owns(1 - spec.assignment[i], i), false);
  }
  // An empty assignment keeps the static split (the seed behavior).
  rs::FleetWorkSpec plain = spec;
  plain.assignment.clear();
  EXPECT_TRUE(plain.owns(0, 2));
  EXPECT_FALSE(plain.owns(1, 2));
}

TEST(FleetWorkSpec, MalformedAssignmentRejectedTyped) {
  rs::FleetWorkSpec spec;
  spec.kind = rs::FleetWorkKind::kPinnedBench;
  spec.shards = 2;
  spec.opt_cache_capacity = 0;
  spec.bench_names = {"numerics.roots/sweep"};
  spec.bench_reps = 3;  // 3 items
  // Wrong length: assignment must cover every item exactly.
  spec.assignment = {0, 1};
  EXPECT_THROW((void)rs::parse_work_spec(spec.to_json()), robust::RobustError);
  // Shard id out of range.
  spec.assignment = {0, 1, 2};
  EXPECT_THROW((void)rs::parse_work_spec(spec.to_json()), robust::RobustError);
  // Valid again after repair.
  spec.assignment = {0, 1, 1};
  EXPECT_NO_THROW((void)rs::parse_work_spec(spec.to_json()));
}

// --- Shard logs and heartbeats -------------------------------------------

TEST(ShardLog, RoundTripsEmbeddedArtifacts) {
  const std::string dir = fresh_dir("shardlog");
  const std::string path = dir + "/shard_0.jsonl";
  rs::ItemResult a;
  a.index = 0;
  a.wall_ns = 123456.0;
  a.payload_json = "{\"point\":0,\"quote\":\"\\\"\"}";
  a.cert_jsonl = "line one\nline two\n\ttabbed\n";  // newlines must survive
  a.counters = {{"sim.segments", 42}, {"opt.cache.hits", 0}};
  rs::ItemResult b;
  b.index = 2;
  b.wall_ns = 1.5;
  rs::append_item_result(path, a);
  rs::append_item_result(path, b);
  std::size_t skipped = 99;
  const auto loaded = rs::load_shard_log(path, &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.at(0).payload_json, a.payload_json);
  EXPECT_EQ(loaded.at(0).cert_jsonl, a.cert_jsonl);
  EXPECT_EQ(loaded.at(0).counters, a.counters);
  EXPECT_EQ(loaded.at(0).wall_ns, a.wall_ns);
  EXPECT_EQ(loaded.at(2).counters, b.counters);
}

TEST(ShardLog, TornTailSkippedCountedAndSurfaced) {
  const std::string dir = fresh_dir("torn");
  const std::string path = dir + "/shard_0.jsonl";
  rs::ItemResult a;
  a.index = 4;
  a.counters = {{"x", 1}};
  rs::append_item_result(path, a);
  {
    // A crash mid-append: half a line, no newline.
    std::ofstream f(path, std::ios::app);
    f << "{\"kind\":\"item\",\"index\":6,\"wall";
  }
  obs::Counter& torn = obs::registry().counter("robust.checkpoint.torn_lines");
  const std::int64_t before = torn.value();
  std::size_t skipped = 0;
  const auto loaded = rs::load_shard_log(path, &skipped);
  EXPECT_EQ(skipped, 1u);
  EXPECT_EQ(torn.value(), before + 1);  // satellite: torn tails are never silent
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.count(4), 1u);
}

TEST(Heartbeat, RoundTripsAndToleratesAbsence) {
  const std::string dir = fresh_dir("heartbeat");
  const std::string path = dir + "/hb.json";
  EXPECT_FALSE(rs::read_heartbeat(path).has_value());
  rs::WorkerHeartbeat hb;
  hb.pid = 4242;
  hb.seq = 7;
  hb.items_done = 3;
  hb.current_item = 11;
  hb.busy_seconds = 0.25;
  rs::write_heartbeat(path, hb);
  const auto back = rs::read_heartbeat(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->pid, 4242);
  EXPECT_EQ(back->seq, 7u);
  EXPECT_EQ(back->items_done, 3);
  EXPECT_EQ(back->current_item, 11);
  EXPECT_EQ(back->busy_seconds, 0.25);
  EXPECT_FALSE(back->done);
}

// --- The item runner: one item, same bytes anywhere ----------------------

TEST(ItemRunner, ReproducesSerialFragmentsAndDeltas) {
  obs::set_metrics_enabled(true);
  obs::registry().reset_all();
  analysis::SweepOptions sweep;
  sweep.jobs = 1;
  const analysis::SuiteSweepResult serial =
      analysis::run_suite_sweep(pinned_grid(), pinned_suite_options(), sweep);

  rs::FleetWorkSpec spec;
  spec.kind = rs::FleetWorkKind::kSuitePoints;
  spec.shards = 2;
  spec.points = pinned_grid();
  spec.suite_options = pinned_suite_options();
  for (std::size_t i = 0; i < spec.n_items(); ++i) {
    const rs::ItemResult item = rs::run_fleet_item(spec, i);
    EXPECT_EQ(item.payload_json,
              analysis::suite_point_json(i, serial.info[i], serial.suites[i]));
    EXPECT_EQ(item.cert_jsonl, analysis::suite_point_cert_jsonl(i, serial.suites[i]));
    EXPECT_EQ(item.counters, serial.point_counters[i]);
  }
  EXPECT_THROW((void)rs::run_fleet_item(spec, spec.n_items()), robust::RobustError);
}

// --- The fleet, clean and under chaos ------------------------------------

TEST(Fleet, CleanRunByteIdenticalToSerial) {
  const Artifacts serial = serial_reference();
  const FleetRun fleet = run_fleet(base_options(fresh_dir("clean")));
  expect_matches_serial(fleet, serial);
}

TEST(Fleet, CostBalancedPlanByteIdenticalToSerial) {
  const Artifacts serial = serial_reference();
  const std::string dir = fresh_dir("balanced");

  // Same work-list as every other fleet test, but with a cost-model plan
  // that moves items off their static i % N shard: the plan may change only
  // WHERE an item runs, never any merged artifact.
  rs::FleetWorkSpec spec;
  spec.kind = rs::FleetWorkKind::kSuitePoints;
  spec.shards = 2;
  spec.points = pinned_grid();
  spec.suite_options = pinned_suite_options();
  const obs::history::ShardPlan plan =
      obs::history::plan_assignment({9.0, 1.0, 1.0, 1.0}, spec.shards);
  ASSERT_GT(plan.moved_items, 0u);
  ASSERT_LT(plan.makespan, plan.static_makespan);
  spec.assignment = plan.assignment;

  obs::set_metrics_enabled(true);
  obs::registry().reset_all();
  rs::Supervisor sup(spec, base_options(dir));
  FleetRun fleet;
  fleet.result = sup.run();
  fleet.counters = nonzero_counters();
  expect_matches_serial(fleet, serial);

  // The plan rides in fleet_state.json next to the run it shaped.
  std::ifstream state(dir + "/fleet_state.json");
  ASSERT_TRUE(static_cast<bool>(state));
  std::ostringstream ss;
  ss << state.rdbuf();
  EXPECT_NE(ss.str().find("\"plan\":{\"items_per_shard\":"), std::string::npos);
  EXPECT_NE(ss.str().find("\"source\":\"cost_model\""), std::string::npos);
  EXPECT_EQ(fleet.result.restarts, 0);
  EXPECT_EQ(fleet.result.hung_kills, 0);
  EXPECT_TRUE(fleet.result.degraded_shards.empty());
  EXPECT_EQ(fleet.result.torn_lines, 0u);
}

TEST(Fleet, WorkerCrashMidShardRestartsAndMatchesSerial) {
  const Artifacts serial = serial_reference();
  rs::FleetOptions options = base_options(fresh_dir("crash"));
  // Both first incarnations compute their first item, then SIGKILL
  // themselves before committing it; the respawns run clean.
  options.first_spawn_args = {"--fault", "worker_crash_mid_shard@0"};
  const FleetRun fleet = run_fleet(options);
  expect_matches_serial(fleet, serial);
  EXPECT_GE(fleet.result.restarts, 2);
  EXPECT_GE(fleet.result.requeued_items, 2);
  // Fleet health is published as supervisor.* gauges (never counters).
  EXPECT_EQ(obs::registry().gauge("supervisor.restarts").value(),
            static_cast<double>(fleet.result.restarts));
  EXPECT_EQ(obs::registry().gauge("supervisor.active").value(), 0.0);
}

TEST(Fleet, TornCheckpointTailRecoveredAndMatchesSerial) {
  const Artifacts serial = serial_reference();
  rs::FleetOptions options = base_options(fresh_dir("torn_tail"));
  // First incarnations die mid-append, leaving half a line without a
  // newline; the loader must skip-and-count it and the respawn recomputes
  // exactly the torn item.
  options.first_spawn_args = {"--fault", "checkpoint_torn_tail@0"};
  const FleetRun fleet = run_fleet(options);
  expect_matches_serial(fleet, serial);
  EXPECT_GE(fleet.result.restarts, 2);
  EXPECT_GE(fleet.result.torn_lines, 1u);
  EXPECT_GE(fleet.counters.count("robust.checkpoint.torn_lines"), 1u);
}

TEST(Fleet, WatchdogKillsHungWorkerAndMatchesSerial) {
  const Artifacts serial = serial_reference();
  rs::FleetOptions options = base_options(fresh_dir("hung"));
  // First incarnations stop heartbeating before their first item; the
  // watchdog must declare them hung, SIGKILL, and restart.
  options.first_spawn_args = {"--fault", "heartbeat_stall@0"};
  options.heartbeat_factor = 1.0;
  options.heartbeat_min_seconds = 0.3;
  const FleetRun fleet = run_fleet(options);
  expect_matches_serial(fleet, serial);
  EXPECT_GE(fleet.result.hung_kills, 2);
  EXPECT_GE(fleet.result.restarts, 2);
}

TEST(Fleet, DegradationLadderFinishesInProcess) {
  const Artifacts serial = serial_reference();
  rs::FleetOptions options = base_options(fresh_dir("ladder"));
  // A worker that always exits 0 with an empty shard log: the lying-worker
  // guard routes it through the restart ladder, the restart cap trips
  // immediately, and the supervisor finishes every item in-process.
  options.worker_binary = "/bin/true";
  options.max_restarts_per_shard = 0;
  const FleetRun fleet = run_fleet(options);
  expect_matches_serial(fleet, serial);
  ASSERT_EQ(fleet.result.degraded_shards.size(), 2u);
  EXPECT_GE(fleet.result.restarts, 2);
}

TEST(Fleet, StopFlagInterruptsResumablyThenResumeCompletes) {
  const Artifacts serial = serial_reference();
  const std::string dir = fresh_dir("resume");
  std::atomic<bool> stop{true};  // stop before the first poll
  rs::FleetOptions options = base_options(dir);
  options.stop_flag = &stop;
  const FleetRun interrupted = run_fleet(options);
  EXPECT_TRUE(interrupted.result.interrupted);
  EXPECT_FALSE(interrupted.result.completed);
  EXPECT_TRUE(interrupted.result.suite_json.empty());  // nothing merged

  // Same work_dir, no stop flag: the fleet resumes whatever the interrupted
  // run already logged and completes identically.
  options.stop_flag = nullptr;
  const FleetRun resumed = run_fleet(options);
  expect_matches_serial(resumed, serial);
}

TEST(Fleet, PermanentWorkerFailureThrowsTyped) {
  rs::FleetOptions options = base_options(fresh_dir("permanent"));
  options.worker_binary = "/nonexistent/sweep_worker";  // exec fails: exit 127
  obs::set_metrics_enabled(true);
  EXPECT_THROW((void)rs::run_suite_sweep_fleet(pinned_grid(), pinned_suite_options(), 2,
                                               options),
               robust::RobustError);
}

}  // namespace
}  // namespace speedscale
