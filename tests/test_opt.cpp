// Tests for the offline-optimum module: closed-form single-job optimum and
// the discretized convex solver.
#include <gtest/gtest.h>

#include <cmath>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/bounds.h"
#include "src/opt/convex_opt.h"
#include "src/opt/single_job_opt.h"
#include "src/workload/generators.h"

namespace speedscale {
namespace {

class SingleJobOptAlpha : public ::testing::TestWithParam<double> {};

TEST_P(SingleJobOptAlpha, SpeedProfileProcessesExactlyTheVolume) {
  const double alpha = GetParam();
  const double V = 2.3, rho = 1.7;
  const SingleJobFracOpt opt = single_job_frac_opt(V, rho, alpha);
  // Quadrature of the Euler-Lagrange speed profile must reproduce V.
  const int n = 200000;
  double vol = 0.0;
  for (int i = 0; i < n; ++i) {
    const double a = opt.horizon * i / n, b = opt.horizon * (i + 1) / n;
    vol += 0.5 * (opt.speed_at(a, rho, alpha) + opt.speed_at(b, rho, alpha)) * (b - a);
  }
  EXPECT_NEAR(vol, V, 1e-3 * V);
}

TEST_P(SingleJobOptAlpha, ClosedFormMatchesQuadrature) {
  const double alpha = GetParam();
  const double V = 1.0, rho = 1.0;
  const SingleJobFracOpt opt = single_job_frac_opt(V, rho, alpha);
  const int n = 200000;
  double energy = 0.0, flow = 0.0;
  double remaining = V;
  for (int i = 0; i < n; ++i) {
    const double a = opt.horizon * i / n, b = opt.horizon * (i + 1) / n;
    const double s = opt.speed_at(0.5 * (a + b), rho, alpha);
    energy += std::pow(s, alpha) * (b - a);
    flow += rho * remaining * (b - a);
    remaining -= s * (b - a);
  }
  EXPECT_NEAR(opt.energy, energy, 2e-3 * std::max(energy, 1e-9));
  EXPECT_NEAR(opt.fractional_flow, flow, 2e-3 * std::max(flow, 1e-9));
}

TEST_P(SingleJobOptAlpha, OptimalityAgainstPerturbations) {
  // Constant-speed and C-style schedules cannot beat the closed form.
  const double alpha = GetParam();
  const double V = 1.5, rho = 2.0;
  const SingleJobFracOpt opt = single_job_frac_opt(V, rho, alpha);
  const Instance inst({Job{kNoJob, 0.0, V, rho}});
  const RunResult c = run_c(inst, alpha);
  EXPECT_LE(opt.objective, c.metrics.fractional_objective() + 1e-9);
  for (double T : {0.5 * opt.horizon, opt.horizon, 2.0 * opt.horizon}) {
    const double s = V / T;
    const double const_cost = std::pow(s, alpha) * T + rho * 0.5 * V * T;
    EXPECT_LE(opt.objective, const_cost + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AlphaGrid, SingleJobOptAlpha, ::testing::Values(1.5, 2.0, 2.5, 3.0));

TEST(SingleJobIntOpt, FirstOrderOptimality) {
  const double alpha = 3.0, V = 2.0, rho = 1.5;
  const SingleJobIntOpt opt = single_job_int_opt(V, rho, alpha);
  const auto cost = [&](double s) {
    return std::pow(s, alpha - 1.0) * V + rho * V * V / s;
  };
  EXPECT_NEAR(opt.objective, cost(opt.speed), 1e-9);
  // Local minimum: nudging the speed cannot help.
  EXPECT_LE(cost(opt.speed), cost(opt.speed * 1.01) + 1e-12);
  EXPECT_LE(cost(opt.speed), cost(opt.speed * 0.99) + 1e-12);
}

TEST(SingleJobOpt, RejectsBadParameters) {
  EXPECT_THROW((void)single_job_frac_opt(0.0, 1.0, 2.0), ModelError);
  EXPECT_THROW((void)single_job_frac_opt(1.0, -1.0, 2.0), ModelError);
  EXPECT_THROW((void)single_job_frac_opt(1.0, 1.0, 1.0), ModelError);
  EXPECT_THROW((void)single_job_int_opt(1.0, 1.0, 0.9), ModelError);
}

TEST(ConvexOpt, MatchesSingleJobClosedForm) {
  const double alpha = 2.0;
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}});
  const SingleJobFracOpt exact = single_job_frac_opt(1.0, 1.0, alpha);
  const ConvexOptResult num = solve_fractional_opt(inst, alpha, {.slots = 800});
  EXPECT_NEAR(num.objective, exact.objective, 0.02 * exact.objective);
  // Discretized feasible solutions can only be >= the continuum optimum
  // (up to midpoint-rule wobble).
  EXPECT_GE(num.objective, exact.objective * 0.999);
}

TEST(ConvexOpt, LowerBoundsAlgorithmCosts) {
  const double alpha = 2.5;
  const Instance inst = workload::generate({.n_jobs = 10, .arrival_rate = 1.5, .seed = 12});
  const ConvexOptResult opt = solve_fractional_opt(inst, alpha, {.slots = 600});
  const RunResult c = run_c(inst, alpha);
  EXPECT_LE(opt.objective, c.metrics.fractional_objective() * (1.0 + 1e-6));
  // Theorem 1: C is 2-competitive.
  EXPECT_LE(c.metrics.fractional_objective(), 2.0 * opt.objective * 1.05);
}

TEST(ConvexOpt, SpeedsAreNonnegativeAndVolumeFeasible) {
  const double alpha = 2.0;
  const Instance inst = workload::generate({.n_jobs = 6, .seed = 77});
  const ConvexOptResult opt = solve_fractional_opt(inst, alpha, {.slots = 400});
  double volume = 0.0;
  const double h = opt.horizon / static_cast<double>(opt.slot_speed.size());
  for (double s : opt.slot_speed) {
    EXPECT_GE(s, -1e-12);
    volume += s * h;
  }
  EXPECT_NEAR(volume, inst.total_volume(), 1e-6 * inst.total_volume());
}

TEST(ConvexOpt, RefinementImprovesOrMatches) {
  const double alpha = 2.0;
  const Instance inst = workload::generate({.n_jobs = 8, .seed = 5});
  const ConvexOptResult coarse = solve_fractional_opt(inst, alpha, {.slots = 150});
  const ConvexOptResult fine = solve_fractional_opt(inst, alpha, {.slots = 900});
  // Finer grids approximate the continuum better: objective should not grow
  // by more than the coarse grid's discretization wobble.
  EXPECT_LE(fine.objective, coarse.objective * 1.01);
}

TEST(ConvexOpt, EmptyInstance) {
  const ConvexOptResult opt = solve_fractional_opt(Instance(), 2.0);
  EXPECT_DOUBLE_EQ(opt.objective, 0.0);
}

}  // namespace
}  // namespace speedscale
