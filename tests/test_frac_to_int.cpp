// Tests for the Lemma 15 fractional -> integral reduction.
#include <gtest/gtest.h>

#include <cmath>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/bounds.h"
#include "src/algo/frac_to_int.h"
#include "src/core/kinematics.h"
#include "src/workload/generators.h"

namespace speedscale {
namespace {

TEST(FracToInt, SingleJobExactAccounting) {
  const double alpha = 2.0, eps = 1.0;
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}});
  const RunResult nc = run_nc_uniform(inst, alpha);
  const IntReductionRun red = reduce_frac_to_int(inst, nc.schedule, eps);
  // A_int finishes when A_frac has processed 1/2 of the job.  A_frac's
  // growth curve: U^{1/2} = t/2 (alpha=2, rho=1) => U(t) = t^2/4; U = 1/2 at
  // t = sqrt(2).
  EXPECT_NEAR(red.completions.at(0), std::sqrt(2.0), 1e-12);
  // Integral flow: W * tau = sqrt(2).
  EXPECT_NEAR(red.integral_flow, std::sqrt(2.0), 1e-12);
  // Energy: (1+eps)^alpha * int_0^tau U dt = 4 * tau^3/12.
  EXPECT_NEAR(red.energy, 4.0 * std::pow(std::sqrt(2.0), 3.0) / 12.0, 1e-12);
}

TEST(FracToInt, CompletionsPrecedeFractionalCompletions) {
  const Instance inst = workload::generate({.n_jobs = 20, .seed = 2});
  const double alpha = 2.5;
  const RunResult nc = run_nc_uniform(inst, alpha);
  const IntReductionRun red = reduce_frac_to_int(inst, nc.schedule, 0.5);
  for (const Job& j : inst.jobs()) {
    EXPECT_LE(red.completions.at(j.id), nc.schedule.completion(j.id) + 1e-12);
    EXPECT_GE(red.completions.at(j.id), j.release);
  }
}

class FracToIntSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FracToIntSweep, Lemma15Bounds) {
  const auto [alpha, eps] = GetParam();
  const Instance inst = workload::generate({.n_jobs = 18, .arrival_rate = 1.2, .seed = 8});
  const RunResult nc = run_nc_uniform(inst, alpha);
  const IntReductionRun red = reduce_frac_to_int(inst, nc.schedule, eps);
  // Lemma 15's two component bounds.
  EXPECT_LE(red.energy, std::pow(1.0 + eps, alpha) * nc.metrics.energy * (1.0 + 1e-9));
  EXPECT_LE(red.integral_flow,
            (1.0 + 1.0 / eps) * nc.metrics.fractional_flow * (1.0 + 1e-9));
  // And the combined objective bound.
  EXPECT_LE(red.integral_objective(), bounds::reduction_factor(alpha, eps) *
                                          nc.metrics.fractional_objective() * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Grid, FracToIntSweep,
                         ::testing::Combine(::testing::Values(1.5, 2.0, 3.0),
                                            ::testing::Values(0.25, 0.5, 1.0, 2.0)));

TEST(FracToInt, EnergyScalesExactlyForFullyProcessedParts) {
  // With a tiny eps, A_int runs nearly the whole fractional schedule at
  // speed ~(1+eps): its energy must approach (1+eps)^alpha * E_frac.
  const double alpha = 2.0, eps = 1e-4;
  const Instance inst = workload::generate({.n_jobs = 10, .seed = 3});
  const RunResult nc = run_nc_uniform(inst, alpha);
  const IntReductionRun red = reduce_frac_to_int(inst, nc.schedule, eps);
  EXPECT_NEAR(red.energy, std::pow(1.0 + eps, alpha) * nc.metrics.energy,
              1e-2 * nc.metrics.energy);
}

TEST(FracToInt, HandlesPreemptedMultiSegmentJobs) {
  // Algorithm C preempts low-density jobs, so a job's volume is spread over
  // several segments — exercising the cross-segment accumulation and the
  // mid-segment inversion of the reduction.
  const Instance inst({Job{kNoJob, 0.0, 4.0, 1.0}, Job{kNoJob, 0.3, 0.3, 30.0},
                       Job{kNoJob, 1.4, 0.3, 30.0}, Job{kNoJob, 2.6, 0.2, 30.0}});
  const double alpha = 2.0, eps = 0.8;
  const RunResult c = run_c(inst, alpha);
  // Ensure the low-density job really is split.
  int segments_of_job0 = 0;
  for (const Segment& seg : c.schedule.segments()) {
    if (seg.job == 0) ++segments_of_job0;
  }
  ASSERT_GE(segments_of_job0, 3);
  const IntReductionRun red = reduce_frac_to_int(inst, c.schedule, eps);
  EXPECT_LE(red.energy, std::pow(1.0 + eps, alpha) * c.metrics.energy * (1.0 + 1e-9));
  EXPECT_LE(red.integral_flow,
            (1.0 + 1.0 / eps) * c.metrics.fractional_flow * (1.0 + 1e-9));
  for (const Job& j : inst.jobs()) {
    EXPECT_LE(red.completions.at(j.id), c.schedule.completion(j.id) + 1e-12);
    EXPECT_GE(red.completions.at(j.id), j.release - 1e-12);
  }
}

TEST(FracToInt, CompletionIsExactVolumeInversion) {
  // Single job under C: tau solves processed(tau) = V/(1+eps) on the decay
  // law; check against the closed-form inversion.
  const double alpha = 2.0, eps = 1.0, V = 2.0;
  const Instance inst({Job{kNoJob, 0.0, V, 1.0}});
  const RunResult c = run_c(inst, alpha);
  const IntReductionRun red = reduce_frac_to_int(inst, c.schedule, eps);
  const PowerLawKinematics kin(alpha);
  // Weight drops from V to V - V/(1+eps) = V/2.
  const double tau_expect = kin.decay_time_to_weight(V, V / 2.0, 1.0);
  EXPECT_NEAR(red.completions.at(0), tau_expect, 1e-12);
}

TEST(FracToInt, RejectsBadEps) {
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}});
  const RunResult nc = run_nc_uniform(inst, 2.0);
  EXPECT_THROW(reduce_frac_to_int(inst, nc.schedule, 0.0), ModelError);
  EXPECT_THROW(reduce_frac_to_int(inst, nc.schedule, -0.5), ModelError);
}

TEST(FracToInt, ThrowsOnIncompleteSchedule) {
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}});
  Schedule partial(2.0);
  partial.append({0.0, 0.1, 0, SpeedLaw::kConstant, 1.0, 1.0});
  EXPECT_THROW(reduce_frac_to_int(inst, partial, 1.0), ModelError);
}

}  // namespace
}  // namespace speedscale
