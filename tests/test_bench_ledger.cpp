// Tests for the bench telemetry pipeline: the minimal JSON parser
// (src/obs/json_min.h), the canonical bench ledger and its round-trip
// (src/obs/perf/bench_ledger.h), and the Chrome trace exporter's golden
// output (src/obs/perf/chrome_trace.h) — the byte-level contracts that
// BENCH_PR3.json and scripts/bench_compare.py rely on.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/obs/json_min.h"
#include "src/obs/json_util.h"
#include "src/obs/perf/bench_ledger.h"
#include "src/obs/perf/chrome_trace.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"

namespace speedscale {
namespace {

using obs::JsonValue;
using obs::parse_json;
using obs::perf::BenchEntry;
using obs::perf::BenchLedger;

// ---------------------------------------------------------------- json_min

TEST(JsonMin, ParsesScalarsArraysAndNestedObjects) {
  const JsonValue v = parse_json(
      R"({"a":[1,2.5,-3e2],"b":{"t":true,"f":false,"n":null},"s":"x\ny \u0041\\"})");
  ASSERT_TRUE(v.is_object());
  const JsonValue& a = v.at("a");
  ASSERT_TRUE(a.is_array());
  ASSERT_EQ(a.array.size(), 3u);
  EXPECT_DOUBLE_EQ(a.array[0].number, 1.0);
  EXPECT_DOUBLE_EQ(a.array[1].number, 2.5);
  EXPECT_DOUBLE_EQ(a.array[2].number, -300.0);
  EXPECT_TRUE(v.at("b").at("t").boolean);
  EXPECT_FALSE(v.at("b").at("f").boolean);
  EXPECT_TRUE(v.at("b").at("n").is_null());
  EXPECT_EQ(v.at("s").string, "x\ny A\\");
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), ModelError);
}

TEST(JsonMin, RejectsMalformedDocuments) {
  EXPECT_THROW((void)parse_json(""), ModelError);
  EXPECT_THROW((void)parse_json("{"), ModelError);
  EXPECT_THROW((void)parse_json("[1,]"), ModelError);
  EXPECT_THROW((void)parse_json("{\"a\":1,}"), ModelError);
  EXPECT_THROW((void)parse_json("{'a':1}"), ModelError);
  EXPECT_THROW((void)parse_json("nul"), ModelError);
  EXPECT_THROW((void)parse_json("1 2"), ModelError);  // trailing garbage
  EXPECT_THROW((void)parse_json("\"\\q\""), ModelError);
}

TEST(JsonMin, RoundTripsJsonUtilStringEscapes) {
  std::string encoded;
  obs::append_json_string(encoded, "quote\" slash\\ ctrl\x01 tab\t");
  const JsonValue v = parse_json(encoded);
  EXPECT_EQ(v.string, "quote\" slash\\ ctrl\x01 tab\t");
}

// ------------------------------------------------------------ bench ledger

BenchLedger sample_ledger() {
  BenchLedger ledger("unit-test");
  ledger.set_config("alpha", "2");
  ledger.set_config("mode", "full");
  BenchEntry& a = ledger.entry("sim.algorithm_c/64");
  a.repetitions = 3;
  a.wall_ns = {1500.0, 1200.0, 1300.0};
  a.counters = {{"sim.c_machine.segments", 127}, {"sim.c_machine.steps", 64}};
  BenchEntry& b = ledger.entry("gbench.perf/BM_X");
  b.source = "google_benchmark";
  b.repetitions = 1;
  b.wall_ns = {2500.5};
  return ledger;
}

TEST(BenchLedger, WallStatisticsAreNoiseRobust) {
  const BenchLedger ledger = sample_ledger();
  const BenchEntry& a = ledger.entries().at("sim.algorithm_c/64");
  EXPECT_DOUBLE_EQ(a.wall_min_ns(), 1200.0);
  EXPECT_DOUBLE_EQ(a.wall_median_ns(), 1300.0);
  const BenchEntry empty;
  EXPECT_DOUBLE_EQ(empty.wall_min_ns(), 0.0);
  EXPECT_DOUBLE_EQ(empty.wall_median_ns(), 0.0);
}

TEST(BenchLedger, SerializationIsCanonical) {
  const std::string json = sample_ledger().to_json();
  // Top-level and per-entry keys in sorted order; schema version present.
  const auto pos = [&json](const char* needle) { return json.find(needle); };
  EXPECT_LT(pos("\"config\""), pos("\"entries\""));
  EXPECT_LT(pos("\"entries\""), pos("\"schema\""));
  EXPECT_LT(pos("\"schema\""), pos("\"suite\""));
  EXPECT_LT(pos("\"counters\""), pos("\"repetitions\""));
  EXPECT_LT(pos("\"repetitions\""), pos("\"source\""));
  EXPECT_LT(pos("\"source\""), pos("\"wall_ns\""));
  EXPECT_LT(pos("sim.c_machine.segments"), pos("sim.c_machine.steps"));
  EXPECT_NE(pos("\"speedscale.bench_ledger/1\""), std::string::npos);
  EXPECT_NE(pos("\"gbench.perf/BM_X\""), std::string::npos);
}

TEST(BenchLedger, RoundTripsByteIdentically) {
  const std::string json = sample_ledger().to_json();
  const BenchLedger back = BenchLedger::from_json(json);
  EXPECT_EQ(back.suite(), "unit-test");
  EXPECT_EQ(back.config().at("alpha"), "2");
  EXPECT_EQ(back.entries().at("sim.algorithm_c/64").counters.at("sim.c_machine.segments"), 127);
  EXPECT_EQ(back.entries().at("gbench.perf/BM_X").source, "google_benchmark");
  // The serialize -> parse -> serialize fixed point: byte identity is what
  // makes committed ledgers diffable.
  EXPECT_EQ(back.to_json(), json);
}

TEST(BenchLedger, FromJsonRejectsWrongSchemaAndMalformedInput) {
  EXPECT_THROW((void)BenchLedger::from_json("{}"), ModelError);
  EXPECT_THROW((void)BenchLedger::from_json("not json"), ModelError);
  std::string wrong = sample_ledger().to_json();
  const std::string::size_type at = wrong.find("bench_ledger/1");
  ASSERT_NE(at, std::string::npos);
  wrong.replace(at, 14, "bench_ledger/9");
  EXPECT_THROW((void)BenchLedger::from_json(wrong), ModelError);
}

TEST(BenchLedger, WriteFileCommitsAtomically) {
  const std::string path = ::testing::TempDir() + "ledger_atomic.json";
  sample_ledger().write_file(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.is_open());
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), sample_ledger().to_json() + "\n");
  // No ".tmp" sibling is left behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").is_open());
  std::remove(path.c_str());
}

// ----------------------------------------------------------- chrome trace

/// A fixed event stream + profiler aggregate: two jobs, one preemption, a
/// speed staircase.  Everything below is model data, so the exporter's
/// output is a pure function of it — pinned by the golden file.
std::vector<obs::TraceEvent> golden_events() {
  using obs::EventKind;
  return {
      {.kind = EventKind::kPhaseBoundary, .t = 0.0, .value = 2.0, .aux = 2.0, .label = "golden"},
      {.kind = EventKind::kJobRelease, .t = 0.0, .job = 0, .value = 1.0, .aux = 1.0},
      {.kind = EventKind::kSpeedChange, .t = 0.0, .value = 1.0, .aux = 1.0},
      {.kind = EventKind::kJobRelease, .t = 0.25, .job = 1, .value = 0.5, .aux = 2.0},
      {.kind = EventKind::kPreemption, .t = 0.25, .job = 0, .value = 1.0, .aux = 0.75},
      {.kind = EventKind::kSpeedChange, .t = 0.25, .value = 1.5, .aux = 2.0},
      {.kind = EventKind::kJobComplete, .t = 0.5, .job = 1, .value = 0.8, .aux = 0.3},
      {.kind = EventKind::kSpeedChange, .t = 0.5, .value = 1.0, .aux = 1.0},
      {.kind = EventKind::kJobComplete, .t = 1.25, .job = 0, .value = 1.9, .aux = 1.4},
      {.kind = EventKind::kPhaseBoundary, .t = 1.25, .value = 2.0, .aux = 2.0,
       .label = "golden.end"},
  };
}

std::vector<obs::ProfileEntry> golden_profile() {
  return {
      {.label = "sim.run", .count = 2, .total_ns = 3000, .min_ns = 1000, .max_ns = 2000},
      {.label = "analysis.export", .count = 1, .total_ns = 500, .min_ns = 500, .max_ns = 500},
  };
}

TEST(ChromeTrace, MatchesGoldenFile) {
  const std::string actual =
      obs::perf::chrome_trace_json(golden_events(), golden_profile());

  const std::string golden_path =
      std::string(SPEEDSCALE_TEST_DATA_DIR) + "/golden/chrome_trace_golden.json";
  std::ifstream f(golden_path);
  ASSERT_TRUE(f.is_open()) << "missing golden file " << golden_path;
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string expected = ss.str();

  if (actual + "\n" != expected) {
    const std::string dump = ::testing::TempDir() + "chrome_trace_actual.json";
    std::ofstream(dump) << actual << "\n";
    FAIL() << "chrome trace drifted from " << golden_path << "\nactual written to " << dump
           << "\nif the change is intentional, update the golden file to match";
  }
}

TEST(ChromeTrace, OutputIsValidJsonWithExpectedStructure) {
  const JsonValue doc =
      parse_json(obs::perf::chrome_trace_json(golden_events(), golden_profile()));
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  const JsonValue& evs = doc.at("traceEvents");
  ASSERT_TRUE(evs.is_array());

  int slices = 0, counters = 0, instants = 0, meta = 0;
  bool saw_profile_pid = false;
  for (const JsonValue& ev : evs.array) {
    const std::string& ph = ev.at("ph").string;
    if (ph == "X") ++slices;
    if (ph == "C") ++counters;
    if (ph == "i") ++instants;
    if (ph == "M") ++meta;
    if (ev.at("pid").number == 2.0) saw_profile_pid = true;
  }
  // 2 job slices + 2 profiler slices, 3 speed-counter samples, a preemption
  // + 2 completions + 2 phase boundaries as instants, 2 process names.
  EXPECT_EQ(slices, 4);
  EXPECT_EQ(counters, 3);
  EXPECT_EQ(instants, 5);
  EXPECT_EQ(meta, 2);
  EXPECT_TRUE(saw_profile_pid);
}

TEST(ChromeTrace, ModelTimeScaleIsConfigurable) {
  obs::perf::ChromeTraceOptions opts;
  opts.model_time_scale = 1e3;  // model seconds -> 1000 trace microseconds each
  const JsonValue doc = parse_json(obs::perf::chrome_trace_json(golden_events(), {}, opts));
  double max_ts = 0.0;
  for (const JsonValue& ev : doc.at("traceEvents").array) {
    if (const JsonValue* ts = ev.find("ts")) max_ts = std::max(max_ts, ts->number);
  }
  // The last model event is at t=1.25 -> 1250 under the 1e3 scale.
  EXPECT_DOUBLE_EQ(max_ts, 1250.0);
}

}  // namespace
}  // namespace speedscale
