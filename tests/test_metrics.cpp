// Unit tests for replay-based metric evaluation (core/metrics.h).
#include <gtest/gtest.h>

#include <cmath>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_nonuniform.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/core/metrics.h"
#include "src/workload/generators.h"

namespace speedscale {
namespace {

// One job processed at constant speed: everything is hand-computable.
TEST(Metrics, SingleJobConstantSpeed) {
  const Instance inst({Job{kNoJob, 0.0, 2.0, 3.0}});  // V=2, rho=3, W=6
  const double alpha = 2.0;
  Schedule s(alpha);
  s.append({0.0, 4.0, 0, SpeedLaw::kConstant, 0.5, 3.0});  // speed 1/2 for 4s
  s.set_completion(0, 4.0);
  const PowerLaw p(alpha);
  const Metrics m = compute_metrics(inst, s, p);
  EXPECT_NEAR(m.energy, 0.25 * 4.0, 1e-12);           // s^2 * t
  EXPECT_NEAR(m.integral_flow, 6.0 * 4.0, 1e-12);     // W * (c - r)
  // V(t) = 2 - t/2; int_0^4 V dt = 8 - 4 = 4; flow = rho * 4 = 12.
  EXPECT_NEAR(m.fractional_flow, 12.0, 1e-12);
}

TEST(Metrics, DelayedReleaseAccruesNoFlowBeforeRelease) {
  const Instance inst({Job{kNoJob, 2.0, 1.0, 1.0}});
  Schedule s(2.0);
  s.append({2.0, 3.0, 0, SpeedLaw::kConstant, 1.0, 1.0});
  s.set_completion(0, 3.0);
  const PowerLaw p(2.0);
  const Metrics m = compute_metrics(inst, s, p);
  EXPECT_NEAR(m.integral_flow, 1.0, 1e-12);
  EXPECT_NEAR(m.fractional_flow, 0.5, 1e-12);  // int (1 - u) du over 1s
}

TEST(Metrics, WaitingJobAccruesFullWeight) {
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 0.0, 1.0, 2.0}});
  Schedule s(2.0);
  s.append({0.0, 1.0, 1, SpeedLaw::kConstant, 1.0, 2.0});  // job 1 first
  s.append({1.0, 2.0, 0, SpeedLaw::kConstant, 1.0, 1.0});
  s.set_completion(1, 1.0);
  s.set_completion(0, 2.0);
  const PowerLaw p(2.0);
  const Metrics m = compute_metrics(inst, s, p);
  // Job1: int 2*(1-t) over [0,1] = 1.  Job0 waits [0,1]: 1*1 = 1; then
  // processes: int (1-u) du = 0.5.  Total = 2.5.
  EXPECT_NEAR(m.fractional_flow, 2.5, 1e-12);
  EXPECT_NEAR(m.integral_flow, 2.0 * 1.0 + 1.0 * 2.0, 1e-12);
  EXPECT_NEAR(m.energy, 2.0, 1e-12);
}

TEST(Metrics, PowerLawSegmentEnergyEqualsWeightIntegral) {
  // A decay segment under P = s^alpha has energy int W dt: check against a
  // quadrature of P(speed(t)).
  const double alpha = 3.0;
  const Instance inst({Job{kNoJob, 0.0, 2.0, 1.0}});
  const PowerLawKinematics kin(alpha);
  const double w0 = 2.0;
  const double t_end = kin.decay_time_to_zero(w0, 1.0);
  Schedule s(alpha);
  s.append({0.0, t_end, 0, SpeedLaw::kPowerDecay, w0, 1.0});
  s.set_completion(0, t_end);
  const PowerLaw p(alpha);
  const Metrics m = compute_metrics(inst, s, p);

  const int n = 200000;
  double quad = 0.0;
  for (int i = 0; i < n; ++i) {
    const double a = t_end * i / n;
    const double b = t_end * (i + 1) / n;
    quad += 0.5 * (std::pow(s.speed_at(a), alpha) + std::pow(s.speed_at(b), alpha)) * (b - a);
  }
  EXPECT_NEAR(m.energy, quad, 1e-4 * quad);
}

TEST(Metrics, GrowSegmentFractionalFlowMatchesQuadrature) {
  const double alpha = 2.0;
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}});
  const PowerLawKinematics kin(alpha);
  const double t_end = kin.grow_time_to_weight(0.0, 1.0, 1.0);
  Schedule s(alpha);
  s.append({0.0, t_end, 0, SpeedLaw::kPowerGrow, 0.0, 1.0});
  s.set_completion(0, t_end);
  const PowerLaw p(alpha);
  const Metrics m = compute_metrics(inst, s, p);

  // V(t) = 1 - U(t) (unit density): quadrature of int V dt.
  const int n = 200000;
  double quad = 0.0;
  for (int i = 0; i < n; ++i) {
    const double a = t_end * i / n;
    const double b = t_end * (i + 1) / n;
    const double va = 1.0 - kin.grow_weight_after(0.0, 1.0, a);
    const double vb = 1.0 - kin.grow_weight_after(0.0, 1.0, b);
    quad += 0.5 * (va + vb) * (b - a);
  }
  EXPECT_NEAR(m.fractional_flow, quad, 1e-4 * std::max(quad, 1e-9));
}

TEST(Metrics, ThrowsOnIncompleteJob) {
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}});
  Schedule s(2.0);
  const PowerLaw p(2.0);
  EXPECT_THROW((void)compute_metrics(inst, s, p), ModelError);
}

TEST(Metrics, RejectsMismatchedPowerFunctionForPowerLawSegments) {
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}});
  const PowerLawKinematics kin(2.0);
  Schedule s(2.0);
  s.append({0.0, kin.decay_time_to_zero(1.0, 1.0), 0, SpeedLaw::kPowerDecay, 1.0, 1.0});
  s.set_completion(0, kin.decay_time_to_zero(1.0, 1.0));
  const PowerLaw wrong_alpha(3.0);
  EXPECT_THROW((void)compute_metrics(inst, s, wrong_alpha), ModelError);
  const LeakyPowerLaw not_power_law(2.0, 0.5);
  EXPECT_THROW((void)compute_metrics(inst, s, not_power_law), ModelError);
}

// The incremental (Kahan-compensated) replay must agree with the reference
// per-piece re-summation on every schedule family.
class MetricsFastVsReference : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(MetricsFastVsReference, AgreeOnAlgorithmC) {
  const auto [alpha, seed] = GetParam();
  const Instance inst = workload::generate({.n_jobs = 40,
                                            .arrival_rate = 2.0,
                                            .density_mode = workload::DensityMode::kClasses,
                                            .seed = static_cast<std::uint64_t>(seed)});
  const Schedule s = run_algorithm_c(inst, alpha);
  const PowerLaw p(alpha);
  const Metrics fast = compute_metrics(inst, s, p);
  const Metrics ref = compute_metrics_reference(inst, s, p);
  EXPECT_NEAR(fast.fractional_flow, ref.fractional_flow, 1e-9 * std::max(1.0, ref.fractional_flow));
  EXPECT_NEAR(fast.energy, ref.energy, 1e-12 * std::max(1.0, ref.energy));
  EXPECT_DOUBLE_EQ(fast.integral_flow, ref.integral_flow);
}

TEST_P(MetricsFastVsReference, AgreeOnAlgorithmNC) {
  const auto [alpha, seed] = GetParam();
  const Instance inst =
      workload::generate({.n_jobs = 40, .arrival_rate = 2.0,
                          .seed = static_cast<std::uint64_t>(seed)});
  const Schedule s = run_nc_uniform(inst, alpha).schedule;
  const PowerLaw p(alpha);
  const Metrics fast = compute_metrics(inst, s, p);
  const Metrics ref = compute_metrics_reference(inst, s, p);
  EXPECT_NEAR(fast.fractional_flow, ref.fractional_flow,
              1e-9 * std::max(1.0, ref.fractional_flow));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MetricsFastVsReference,
                         ::testing::Combine(::testing::Values(1.5, 2.0, 3.0),
                                            ::testing::Values(1, 2, 3)));

TEST(MetricsFastVsReference, AgreeOnSteppedNonUniformSchedule) {
  // Many thousands of constant segments: the drift stress test.
  const Instance inst = workload::generate({.n_jobs = 8,
                                            .arrival_rate = 1.0,
                                            .density_mode = workload::DensityMode::kClasses,
                                            .density_spread = 20.0,
                                            .seed = 5});
  const NCNonUniformRun run = run_nc_nonuniform(inst, 2.0);
  const PowerLaw p(2.0);
  const Metrics fast = compute_metrics(inst, run.result.schedule, p);
  const Metrics ref = compute_metrics_reference(inst, run.result.schedule, p);
  EXPECT_NEAR(fast.fractional_flow, ref.fractional_flow,
              1e-9 * std::max(1.0, ref.fractional_flow));
  EXPECT_NEAR(fast.energy, ref.energy, 1e-12 * std::max(1.0, ref.energy));
}

TEST(Metrics, CombineAdds) {
  Metrics a{1.0, 2.0, 3.0};
  Metrics b{0.5, 0.25, 0.125};
  const Metrics c = combine(a, b);
  EXPECT_DOUBLE_EQ(c.energy, 1.5);
  EXPECT_DOUBLE_EQ(c.fractional_flow, 2.25);
  EXPECT_DOUBLE_EQ(c.integral_flow, 3.125);
  EXPECT_DOUBLE_EQ(c.fractional_objective(), 3.75);
  EXPECT_DOUBLE_EQ(c.integral_objective(), 4.625);
}

}  // namespace
}  // namespace speedscale
