// End-to-end integration tests: pipelines that thread multiple subsystems
// together the way a downstream user would.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_nonuniform.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/frac_to_int.h"
#include "src/algo/parallel.h"
#include "src/analysis/export.h"
#include "src/analysis/ratio_harness.h"
#include "src/opt/convex_opt.h"
#include "src/sim/speed_profile.h"
#include "src/workload/generators.h"
#include "src/workload/trace_io.h"

namespace speedscale {
namespace {

TEST(Integration, TraceRoundTripPreservesAlgorithmBehaviour) {
  // Generate -> serialize -> parse -> run: bit-identical costs.
  const Instance orig = workload::cloud_trace({});
  std::stringstream ss;
  workload::write_trace(ss, orig);
  const Instance back = workload::read_trace(ss);
  const double alpha = 2.5;
  const RunResult a = run_c(orig, alpha);
  const RunResult b = run_c(back, alpha);
  EXPECT_DOUBLE_EQ(a.metrics.fractional_objective(), b.metrics.fractional_objective());
  EXPECT_DOUBLE_EQ(a.metrics.integral_objective(), b.metrics.integral_objective());
}

TEST(Integration, FileBasedTraceWorkflow) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "speedscale_it";
  fs::create_directories(dir);
  const fs::path trace = dir / "trace.csv";
  const fs::path profile = dir / "profile.csv";

  const Instance inst = workload::generate({.n_jobs = 8, .seed = 42});
  workload::write_trace_file(trace.string(), inst);
  const Instance loaded = workload::read_trace_file(trace.string());
  const RunResult nc = run_nc_uniform(loaded, 2.0);
  analysis::export_speed_profile_file(profile.string(), nc.schedule, 64);

  std::ifstream pf(profile.string());
  ASSERT_TRUE(pf.good());
  std::string header;
  std::getline(pf, header);
  EXPECT_EQ(header, "t,speed,power");
  int rows = 0;
  for (std::string line; std::getline(pf, line);) ++rows;
  EXPECT_EQ(rows, 65);
  fs::remove_all(dir);
}

TEST(Integration, ReductionOfParallelPerMachineSchedules) {
  // Theorem 17 covers the integral objective; one way to realize it is the
  // Lemma 15 reduction applied per machine to NC-PAR's schedules.
  const Instance inst = workload::generate({.n_jobs = 24, .arrival_rate = 3.0, .seed = 10});
  const double alpha = 2.0, eps = 0.5;
  const ParallelRun nc = run_nc_par(inst, alpha, 3);
  double int_objective = 0.0;
  for (int m = 0; m < 3; ++m) {
    // Build this machine's sub-instance (local ids) and reduce its schedule.
    std::vector<Job> local_jobs;
    std::vector<JobId> orig;
    for (const Job& j : inst.jobs()) {
      if (nc.assignment[static_cast<std::size_t>(j.id)] == m) {
        local_jobs.push_back(j);
        orig.push_back(j.id);
      }
    }
    if (local_jobs.empty()) continue;
    const Instance local(std::move(local_jobs));
    Schedule local_sched(alpha);
    for (Segment seg : nc.schedules[static_cast<std::size_t>(m)].segments()) {
      const auto it = std::find(orig.begin(), orig.end(), seg.job);
      ASSERT_NE(it, orig.end());
      seg.job = static_cast<JobId>(it - orig.begin());
      local_sched.append(seg);
    }
    for (std::size_t i = 0; i < orig.size(); ++i) {
      local_sched.set_completion(static_cast<JobId>(i),
                                 nc.schedules[static_cast<std::size_t>(m)].completion(orig[i]));
    }
    const IntReductionRun red = reduce_frac_to_int(local, local_sched, eps);
    int_objective += red.integral_objective();
  }
  // The combined bound: Gamma_int <= max((1+eps)^a, 1+1/eps) * frac objective.
  const double factor = std::max(std::pow(1.0 + eps, alpha), 1.0 + 1.0 / eps);
  EXPECT_LE(int_objective, factor * nc.metrics.fractional_objective() * (1.0 + 1e-9));
  EXPECT_GT(int_objective, 0.0);
}

TEST(Integration, SuiteOnMixedDensityCloudTrace) {
  workload::CloudParams cp;
  cp.n_interactive = 10;
  cp.n_batch = 4;
  cp.seed = 77;
  const Instance trace = workload::cloud_trace(cp);
  const analysis::SuiteResult suite =
      analysis::run_suite(trace, 2.0, {.include_nonuniform = true, .opt_slots = 300});
  ASSERT_TRUE(suite.opt_fractional.has_value());
  // Every algorithm beats OPT by at most its regime's constant; and the
  // clairvoyant C respects Theorem 1 with slack.
  for (const auto& o : suite.outcomes) {
    if (o.integral_only) continue;
    EXPECT_GT(suite.frac_ratio(o), 0.85) << o.name;
    EXPECT_LT(suite.frac_ratio(o), 60.0) << o.name;
    if (o.name == "C (clairvoyant)") {
      EXPECT_LT(suite.frac_ratio(o), 2.1);
    }
  }
}

TEST(Integration, NonUniformScheduleFeedsAllAnalyses) {
  // One non-uniform run drives: metrics, validation, level sets, export.
  const Instance inst = workload::generate({.n_jobs = 8,
                                            .arrival_rate = 1.0,
                                            .density_mode = workload::DensityMode::kClasses,
                                            .seed = 21});
  const NCNonUniformRun run = run_nc_nonuniform(inst, 2.0);
  run.result.schedule.validate(inst);
  EXPECT_GT(time_at_or_above(run.result.schedule,
                             0.5 * run.result.schedule.speed_at(
                                       0.5 * run.result.schedule.makespan()) +
                                 1e-9),
            0.0);
  std::ostringstream os;
  analysis::export_job_summary(os, inst, run.result.schedule);
  EXPECT_NE(os.str().find("flow_time"), std::string::npos);
}

TEST(Integration, OptHorizonOverrideIsRespected) {
  const Instance inst = workload::generate({.n_jobs = 5, .seed = 31});
  const ConvexOptResult a = solve_fractional_opt(inst, 2.0, {.slots = 200, .horizon = 40.0});
  EXPECT_DOUBLE_EQ(a.horizon, 40.0);
  EXPECT_EQ(a.slot_speed.size(), 200u);
  // A too-short horizon must still produce a feasible (if worse) objective.
  const ConvexOptResult b = solve_fractional_opt(inst, 2.0, {.slots = 200});
  EXPECT_GE(a.objective, b.objective * 0.8);
}

}  // namespace
}  // namespace speedscale
