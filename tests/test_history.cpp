// Perf-history observatory tests: speedscale.history/1 wire format (golden
// byte-pin + strict/lenient fuzz corpus in the test_fuzz tradition),
// sentinel verdict policy (counters hard, wall advisory, drift, changepoint
// determinism), and the cost model + LPT shard planner.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/fleet/cost_ledger.h"
#include "src/obs/history/cost_model.h"
#include "src/obs/history/history_store.h"
#include "src/obs/history/sentinel.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/perf/bench_ledger.h"
#include "src/robust/diagnostics.h"

namespace speedscale {
namespace {

namespace hist = obs::history;

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(static_cast<bool>(f)) << "cannot open " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// A fixed synthetic ledger: `steps` lets tests inject a counter regression.
std::string make_ledger(std::int64_t steps, double wall_base = 1000.0) {
  obs::perf::BenchLedger ledger("history-test");
  ledger.set_config("git_hash", "deadbeefcafe");
  ledger.set_config("mode", "pinned");
  auto& a = ledger.entry("sim.alpha/16");
  a.repetitions = 3;
  a.wall_ns = {wall_base, wall_base + 25.0, wall_base - 10.0};
  a.counters["sim.steps"] = steps;
  a.counters["opt.iters"] = 77;
  auto& b = ledger.entry("sim.beta/32");
  b.repetitions = 3;
  b.wall_ns = {2.0 * wall_base, 2.0 * wall_base + 50.0, 2.0 * wall_base - 20.0};
  b.counters["sim.steps"] = 2 * steps;
  return ledger.to_json();
}

/// A fixed cost report (one fleet run worth of per-item prices).
std::string make_cost_report() {
  std::vector<obs::fleet::CostRow> rows;
  for (std::int64_t i = 0; i < 6; ++i) {
    obs::fleet::CostRow row;
    row.index = i;
    row.shard = i % 2;
    row.incarnation = 0;
    row.wall_ms = 1.0 + static_cast<double>(i) * 0.5;
    row.work = {{"sim.segments", 10 + i}};
    rows.push_back(std::move(row));
  }
  return obs::fleet::build_cost_report(std::move(rows), "history-test").to_json();
}

/// The golden trajectory: two clean bench runs plus one cost run.  The
/// committed tests/golden/history_golden.jsonl pins these exact bytes.
hist::HistoryStore make_golden_store() {
  hist::HistoryStore store;
  store.ingest_bench_ledger(make_ledger(500));
  store.ingest_bench_ledger(make_ledger(500, 1040.0));
  store.ingest_cost_report(make_cost_report());
  return store;
}

// --- Wire format ----------------------------------------------------------

TEST(HistoryStore, GoldenWireFormatBytePinned) {
  const std::string golden_path =
      std::string(SPEEDSCALE_TEST_DATA_DIR) + "/golden/history_golden.jsonl";
  const std::string expected = read_file(golden_path);
  const hist::HistoryStore store = make_golden_store();
  const std::string actual = store.to_jsonl();
  if (actual != expected) {
    const std::string dump = ::testing::TempDir() + "history_golden.jsonl.actual";
    std::ofstream(dump) << actual;
    FAIL() << "speedscale.history/1 drifted from " << golden_path << "\nactual written to "
           << dump;
  }
  // The committed bytes also reparse (strict) to the same bytes.
  const hist::HistoryStore back = hist::HistoryStore::parse(expected, hist::LoadMode::kStrict);
  EXPECT_EQ(back.to_jsonl(), expected);
}

TEST(HistoryStore, RecordRoundTripAndCanonicalOrder) {
  const hist::HistoryStore store = make_golden_store();
  ASSERT_FALSE(store.records().empty());
  EXPECT_EQ(store.runs(), 3u);
  EXPECT_EQ(store.bench_entries(), 2u);
  EXPECT_EQ(store.cost_rows(), 6u);
  EXPECT_EQ(store.next_run(), 3);
  // Canonical (run, kind, entry) order, and every line reparses to itself.
  for (std::size_t i = 1; i < store.records().size(); ++i) {
    const auto& a = store.records()[i - 1];
    const auto& b = store.records()[i];
    EXPECT_LE(std::make_tuple(a.run, a.kind, a.entry),
              std::make_tuple(b.run, b.kind, b.entry));
  }
}

TEST(HistoryStore, OutOfOrderLinesCanonicalizeToSameBytes) {
  const hist::HistoryStore store = make_golden_store();
  const std::string doc = store.to_jsonl();
  // Reverse the record lines; both modes must restore canonical order.
  std::istringstream in(doc);
  std::string line, header;
  std::getline(in, header);
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  std::string shuffled = header + '\n';
  for (auto it = lines.rbegin(); it != lines.rend(); ++it) shuffled += *it + '\n';
  for (const auto mode : {hist::LoadMode::kStrict, hist::LoadMode::kLenient}) {
    const hist::HistoryStore back = hist::HistoryStore::parse(shuffled, mode);
    EXPECT_EQ(back.to_jsonl(), doc);
  }
}

TEST(HistoryStore, WriteFileLoadFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "history_roundtrip.jsonl";
  const hist::HistoryStore store = make_golden_store();
  store.write_file(path);
  const hist::HistoryStore back = hist::HistoryStore::load_file(path, hist::LoadMode::kStrict);
  EXPECT_EQ(back.to_jsonl(), store.to_jsonl());
  std::filesystem::remove(path);
  // Missing file: strict throws typed, lenient returns empty.
  EXPECT_THROW((void)hist::HistoryStore::load_file(path, hist::LoadMode::kStrict),
               robust::RobustError);
  hist::LoadStats stats;
  const hist::HistoryStore empty =
      hist::HistoryStore::load_file(path, hist::LoadMode::kLenient, &stats);
  EXPECT_TRUE(empty.records().empty());
  EXPECT_EQ(stats.skipped_lines, 0u);
}

TEST(HistoryStore, IngestCostAcceptsEmbeddedFleetState) {
  // fleet_state.json embeds the cost ledger under "cost"; ingest must accept
  // the wrapper document and produce the same records as the bare ledger.
  hist::HistoryStore bare;
  bare.ingest_cost_report(make_cost_report());
  hist::HistoryStore wrapped;
  wrapped.ingest_cost_report("{\"schema\":\"speedscale.fleet_state/1\",\"cost\":" +
                             make_cost_report() + ",\"restarts\":0,\"workers\":[]}");
  EXPECT_EQ(wrapped.to_jsonl(), bare.to_jsonl());
  EXPECT_EQ(wrapped.cost_rows(), 6u);
}

// --- Fuzz corpus: torn / duplicated / out-of-order lines ------------------

struct HistoryCorpusCase {
  const char* name;
  const char* input;  ///< appended after a valid header + one valid record
  std::size_t lenient_records;
  std::size_t lenient_skipped;
  std::size_t lenient_duplicates;
  bool strict_throws;
};

constexpr const char kValidRecord[] =
    "{\"config\":{},\"counters\":{\"c\":1},\"entry\":\"e/1\",\"kind\":\"bench\",\"run\":0,"
    "\"suite\":\"s\",\"wall_ns\":[1]}";

class HistoryCorpus : public ::testing::TestWithParam<HistoryCorpusCase> {};

TEST_P(HistoryCorpus, LenientSkipsAndCountsStrictThrowsTyped) {
  const HistoryCorpusCase& c = GetParam();
  std::string doc = "{\"schema\":\"speedscale.history/1\"}\n";
  doc += std::string(kValidRecord) + "\n";
  doc += c.input;

  hist::LoadStats stats;
  const hist::HistoryStore lenient =
      hist::HistoryStore::parse(doc, hist::LoadMode::kLenient, &stats);
  EXPECT_EQ(lenient.records().size(), c.lenient_records) << c.name;
  EXPECT_EQ(stats.skipped_lines, c.lenient_skipped) << c.name;
  EXPECT_EQ(stats.duplicates, c.lenient_duplicates) << c.name;

  if (c.strict_throws) {
    try {
      (void)hist::HistoryStore::parse(doc, hist::LoadMode::kStrict);
      FAIL() << c.name << ": strict load did not throw";
    } catch (const robust::RobustError& e) {
      EXPECT_EQ(e.code(), robust::ErrorCode::kIoMalformed) << c.name;
      // The typed context names the offending line.
      EXPECT_NE(e.diagnostic().context.find("line"), std::string::npos) << c.name;
    }
  } else {
    EXPECT_NO_THROW((void)hist::HistoryStore::parse(doc, hist::LoadMode::kStrict)) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, HistoryCorpus,
    ::testing::Values(
        HistoryCorpusCase{"clean", "", 1, 0, 0, false},
        HistoryCorpusCase{"torn_tail",
                          "{\"config\":{},\"counters\":{\"c\":2},\"entry\":\"e/2\",\"ki", 1, 1,
                          0, true},
        HistoryCorpusCase{"duplicate_key_last_wins",
                          "{\"config\":{},\"counters\":{\"c\":9},\"entry\":\"e/1\",\"kind\":"
                          "\"bench\",\"run\":0,\"suite\":\"s\",\"wall_ns\":[2]}\n",
                          1, 0, 1, true},
        HistoryCorpusCase{"out_of_order_runs_legal",
                          "{\"config\":{},\"counters\":{\"c\":1},\"entry\":\"e/1\",\"kind\":"
                          "\"bench\",\"run\":2,\"suite\":\"s\",\"wall_ns\":[1]}\n"
                          "{\"config\":{},\"counters\":{\"c\":1},\"entry\":\"e/1\",\"kind\":"
                          "\"bench\",\"run\":1,\"suite\":\"s\",\"wall_ns\":[1]}\n",
                          3, 0, 0, false},
        HistoryCorpusCase{"unknown_kind",
                          "{\"entry\":\"e/9\",\"kind\":\"mystery\",\"run\":0}\n", 1, 1, 0,
                          true},
        HistoryCorpusCase{"missing_required_key",
                          "{\"counters\":{},\"entry\":\"e/3\",\"kind\":\"bench\",\"run\":1,"
                          "\"suite\":\"s\",\"wall_ns\":[]}\n",
                          1, 1, 0, true},
        HistoryCorpusCase{"wrong_type_run",
                          "{\"config\":{},\"counters\":{},\"entry\":\"e/4\",\"kind\":"
                          "\"bench\",\"run\":\"zero\",\"suite\":\"s\",\"wall_ns\":[]}\n",
                          1, 1, 0, true},
        HistoryCorpusCase{"cost_row_ok",
                          "{\"entry\":\"item/0\",\"kind\":\"cost\",\"run\":1,\"run_id\":"
                          "\"r\",\"shard\":0,\"wall_ms\":1.5,\"work_units\":12}\n",
                          2, 0, 0, false},
        HistoryCorpusCase{"blank_lines_ignored", "\n\n", 1, 0, 0, false}));

TEST(HistoryStore, MissingHeaderStrictThrowsLenientSkips) {
  const std::string doc = std::string(kValidRecord) + "\n";
  EXPECT_THROW((void)hist::HistoryStore::parse(doc, hist::LoadMode::kStrict),
               robust::RobustError);
  hist::LoadStats stats;
  const hist::HistoryStore lenient =
      hist::HistoryStore::parse(doc, hist::LoadMode::kLenient, &stats);
  // Without a header nothing is trusted: the record line is counted, not kept.
  EXPECT_TRUE(lenient.records().empty());
  EXPECT_EQ(stats.skipped_lines, 1u);
}

// --- Sentinel -------------------------------------------------------------

TEST(Sentinel, NoChangeRerunIsOk) {
  hist::HistoryStore store;
  for (int i = 0; i < 4; ++i) store.ingest_bench_ledger(make_ledger(500));
  const hist::SentinelReport report = hist::analyze(store);
  EXPECT_EQ(report.overall(), hist::Verdict::kOk);
  EXPECT_EQ(report.n_regression, 0u);
  EXPECT_EQ(report.n_advisory, 0u);
}

TEST(Sentinel, InjectedCounterRegressionFlaggedDeterministically) {
  hist::HistoryStore store;
  for (int i = 0; i < 4; ++i) store.ingest_bench_ledger(make_ledger(500));
  store.ingest_bench_ledger(make_ledger(525));  // the seeded regression
  // Deterministic: two analyses of the same trajectory agree exactly.
  for (int round = 0; round < 2; ++round) {
    const hist::SentinelReport report = hist::analyze(store);
    EXPECT_EQ(report.overall(), hist::Verdict::kRegression);
    // sim.steps moved in both entries (500->525 and 1000->1050).
    EXPECT_EQ(report.n_regression, 2u);
    for (const hist::SeriesVerdict& sv : report.series) {
      if (sv.verdict != hist::Verdict::kRegression) continue;
      EXPECT_EQ(sv.metric, "sim.steps");
      EXPECT_EQ(sv.changepoint_run, 4);
      EXPECT_NE(sv.reason.find("counter moved"), std::string::npos);
    }
    // opt.iters never moved: its series stays ok.
    bool opt_ok = false;
    for (const hist::SeriesVerdict& sv : report.series) {
      if (sv.metric == "opt.iters") opt_ok = sv.verdict == hist::Verdict::kOk;
    }
    EXPECT_TRUE(opt_ok);
  }
}

TEST(Sentinel, WallExcursionIsAdvisoryNotRegression) {
  hist::HistoryStore store;
  for (int i = 0; i < 6; ++i) {
    store.ingest_bench_ledger(make_ledger(500, 1000.0 + 5.0 * (i % 3)));
  }
  store.ingest_bench_ledger(make_ledger(500, 4000.0));  // 4x wall, same counters
  const hist::SentinelReport report = hist::analyze(store);
  EXPECT_EQ(report.overall(), hist::Verdict::kAdvisory);
  EXPECT_EQ(report.n_regression, 0u);
  bool wall_flagged = false;
  for (const hist::SeriesVerdict& sv : report.series) {
    if (sv.metric == "wall_min_ns" && sv.verdict == hist::Verdict::kAdvisory) {
      wall_flagged = true;
      EXPECT_EQ(sv.changepoint_run, 6);
    }
  }
  EXPECT_TRUE(wall_flagged);
}

TEST(Sentinel, MonotoneWallDriftIsAdvisory) {
  hist::HistoryStore store;
  // Flat for four runs, then a strictly-rising ramp: the cumulative rise
  // over the last drift_runs runs exceeds the (flat-history) band.
  for (int i = 0; i < 4; ++i) store.ingest_bench_ledger(make_ledger(500, 1000.0));
  for (int i = 0; i < 4; ++i) {
    store.ingest_bench_ledger(make_ledger(500, 1200.0 + 200.0 * i));
  }
  const hist::SentinelReport report = hist::analyze(store);
  bool drift_seen = false;
  for (const hist::SeriesVerdict& sv : report.series) {
    if (sv.metric == "wall_min_ns" && sv.drift) {
      drift_seen = true;
      EXPECT_EQ(sv.verdict, hist::Verdict::kAdvisory);
    }
  }
  EXPECT_TRUE(drift_seen);
  EXPECT_EQ(report.n_regression, 0u);
}

TEST(Sentinel, SingleRunHasNothingToJudge) {
  hist::HistoryStore store;
  store.ingest_bench_ledger(make_ledger(500));
  const hist::SentinelReport report = hist::analyze(store);
  EXPECT_EQ(report.overall(), hist::Verdict::kOk);
  for (const hist::SeriesVerdict& sv : report.series) {
    EXPECT_EQ(sv.n_points, 1u);
    EXPECT_EQ(sv.verdict, hist::Verdict::kOk);
  }
}

TEST(Sentinel, GaugesPublishVerdictTallies) {
  hist::HistoryStore store;
  for (int i = 0; i < 3; ++i) store.ingest_bench_ledger(make_ledger(500));
  store.ingest_bench_ledger(make_ledger(510));
  const hist::SentinelReport report = hist::analyze(store);
  hist::publish_sentinel_gauges(report);
  hist::LoadStats stats;
  stats.skipped_lines = 3;
  stats.duplicates = 1;
  store.publish_gauges(&stats);
  auto& reg = obs::MetricsRegistry::instance();
  EXPECT_EQ(reg.gauge("history.sentinel_regression").value(),
            static_cast<double>(report.n_regression));
  EXPECT_EQ(reg.gauge("history.runs").value(), 4.0);
  EXPECT_EQ(reg.gauge("history.load_skipped_lines").value(), 3.0);
  EXPECT_EQ(reg.gauge("history.load_duplicates").value(), 1.0);
}

// --- Cost model & shard planner -------------------------------------------

TEST(CostModel, FitsMediansAndFallsBackUniform) {
  hist::HistoryStore store;
  store.ingest_cost_report(make_cost_report());  // item i costs 1.0 + 0.5 i
  const hist::CostModel model = hist::CostModel::fit(store);
  EXPECT_FALSE(model.uniform());
  EXPECT_EQ(model.known_items(), 6u);
  EXPECT_DOUBLE_EQ(model.item_cost(0), 1.0);
  EXPECT_DOUBLE_EQ(model.item_cost(5), 3.5);
  // Unmeasured item: the uniform fallback (median of known medians).
  EXPECT_DOUBLE_EQ(model.item_cost(100), 2.25);
  EXPECT_EQ(model.item_work(3), 13);
  // An empty store prices everything at 1.0.
  const hist::CostModel empty = hist::CostModel::fit(hist::HistoryStore{});
  EXPECT_TRUE(empty.uniform());
  EXPECT_DOUBLE_EQ(empty.item_cost(7), 1.0);
}

TEST(CostModel, LptPlanIsDeterministicValidAndNoWorseThanStatic) {
  std::vector<double> costs;
  for (std::size_t i = 0; i < 64; ++i) {
    costs.push_back(1.0 + static_cast<double>(i % 13) + (i % 7 == 0 ? 11.0 : 0.0));
  }
  for (const std::size_t shards : {1u, 2u, 3u, 5u, 8u}) {
    const hist::ShardPlan plan = hist::plan_assignment(costs, shards);
    ASSERT_EQ(plan.assignment.size(), costs.size());
    for (std::uint32_t s : plan.assignment) EXPECT_LT(s, shards);
    EXPECT_LE(plan.makespan, plan.static_makespan + 1e-12);
    const hist::ShardPlan again = hist::plan_assignment(costs, shards);
    EXPECT_EQ(plan.assignment, again.assignment);
    // Conservation: every item assigned exactly once (sizes add up).
    double total = 0.0;
    for (double c : plan.shard_cost) total += c;
    double expected = 0.0;
    for (double c : costs) expected += c;
    EXPECT_NEAR(total, expected, 1e-9);
  }
}

TEST(CostModel, SkewedCostsBeatStaticMakespan) {
  // One huge item per stripe position 0: static sharding piles them onto
  // shard 0; LPT must spread them.
  std::vector<double> costs(32, 1.0);
  for (std::size_t i = 0; i < costs.size(); i += 4) costs[i] = 20.0;
  const hist::ShardPlan plan = hist::plan_assignment(costs, 4);
  EXPECT_LT(plan.makespan, plan.static_makespan);
  EXPECT_GT(plan.moved_items, 0u);
}

}  // namespace
}  // namespace speedscale
