// Tests for Algorithm NC, uniform density (paper Section 3).
//
// These verify the paper's *exact* lemma-level identities to ~1e-9 —
// possible because the simulator is closed-form exact — plus the theorem
// bounds against the numerical offline optimum.
#include <gtest/gtest.h>

#include <cmath>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/baselines.h"
#include "src/algo/bounds.h"
#include "src/opt/convex_opt.h"
#include "src/sim/speed_profile.h"
#include "src/workload/generators.h"

namespace speedscale {
namespace {

Instance uniform_instance(int n, std::uint64_t seed, double rate = 1.0) {
  return workload::generate({.n_jobs = n,
                             .arrival_rate = rate,
                             .volume_dist = workload::VolumeDist::kExponential,
                             .seed = seed});
}

TEST(NCUniform, RejectsNonUniformDensities) {
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 1.0, 1.0, 2.0}});
  EXPECT_THROW(run_nc_uniform(inst, 2.0), ModelError);
}

TEST(NCUniform, SingleJobClosedForm) {
  // The Section 1.2 story: V = 1, rho = 1, alpha = 2.
  const double alpha = 2.0;
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}});
  const RunResult nc = run_nc_uniform(inst, alpha);
  const RunResult c = run_c(inst, alpha);
  // Both take time 2 and spend energy 2/3.
  EXPECT_NEAR(nc.schedule.completion(0), 2.0, 1e-12);
  EXPECT_NEAR(c.schedule.completion(0), 2.0, 1e-12);
  EXPECT_NEAR(nc.metrics.energy, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.metrics.energy, 2.0 / 3.0, 1e-12);
  // C: flow = energy.  NC: flow = energy / (1 - 1/alpha) = 4/3.
  EXPECT_NEAR(c.metrics.fractional_flow, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(nc.metrics.fractional_flow, 4.0 / 3.0, 1e-12);
  // Lemma 8 is tight for a single job: Fint = (2 - 1/alpha) * Ffrac = 2.
  EXPECT_NEAR(nc.metrics.integral_flow, 2.0, 1e-12);
}

TEST(NCUniform, FifoProcessingOrder) {
  const Instance inst = uniform_instance(12, 9);
  const NCUniformRun run = run_nc_uniform_detailed(inst, 2.0);
  double prev_release = -1.0;
  for (const Segment& seg : run.result.schedule.segments()) {
    const double r = inst.job(seg.job).release;
    EXPECT_GE(r, prev_release - 1e-12);
    prev_release = r;
  }
  run.result.schedule.validate(inst);
}

TEST(NCUniform, OffsetsMatchVirtualCRuns) {
  const Instance inst = uniform_instance(10, 4);
  const NCUniformRun run = run_nc_uniform_detailed(inst, 2.5);
  for (const Job& j : inst.jobs()) {
    // The offset must equal the clairvoyant remaining weight just before the
    // job's release (distinct releases here).
    const double w = c_remaining_weight_left(run.c_schedule, j.release);
    EXPECT_NEAR(run.offsets[static_cast<std::size_t>(j.id)], w, 1e-9);
  }
}

// --- The paper's exact identities, swept over alpha x seeds -------------

class NCUniformIdentity : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(NCUniformIdentity, Lemma3EnergyEquality) {
  const auto [alpha, seed] = GetParam();
  const Instance inst = uniform_instance(24, static_cast<std::uint64_t>(seed));
  const RunResult nc = run_nc_uniform(inst, alpha);
  const RunResult c = run_c(inst, alpha);
  EXPECT_NEAR(nc.metrics.energy, c.metrics.energy, 1e-9 * std::max(1.0, c.metrics.energy));
}

TEST_P(NCUniformIdentity, Lemma4FlowRatioExact) {
  const auto [alpha, seed] = GetParam();
  const Instance inst = uniform_instance(24, static_cast<std::uint64_t>(seed));
  const RunResult nc = run_nc_uniform(inst, alpha);
  const RunResult c = run_c(inst, alpha);
  const double expect = c.metrics.fractional_flow * bounds::nc_over_c_flow(alpha);
  EXPECT_NEAR(nc.metrics.fractional_flow, expect, 1e-9 * std::max(1.0, expect));
}

TEST_P(NCUniformIdentity, Lemma6MeasurePreservingSpeedProfiles) {
  const auto [alpha, seed] = GetParam();
  const Instance inst = uniform_instance(16, static_cast<std::uint64_t>(seed));
  const RunResult nc = run_nc_uniform(inst, alpha);
  const RunResult c = run_c(inst, alpha);
  const double scale = std::max(1.0, c.schedule.makespan());
  EXPECT_LE(rearrangement_distance(nc.schedule, c.schedule), 1e-8 * scale);
}

TEST_P(NCUniformIdentity, Lemma8IntegralVsFractionalFlow) {
  const auto [alpha, seed] = GetParam();
  const Instance inst = uniform_instance(24, static_cast<std::uint64_t>(seed));
  const RunResult nc = run_nc_uniform(inst, alpha);
  EXPECT_LE(nc.metrics.integral_flow, bounds::nc_integral_over_fractional_flow(alpha) *
                                              nc.metrics.fractional_flow * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Sweep, NCUniformIdentity,
                         ::testing::Combine(::testing::Values(1.3, 1.5, 2.0, 2.5, 3.0, 5.0),
                                            ::testing::Values(1, 2, 3, 4)));

// The identities must hold on every workload shape: sweep volume
// distributions and burstiness too.
class NCUniformShapes
    : public ::testing::TestWithParam<std::tuple<workload::VolumeDist, double, int>> {};

TEST_P(NCUniformShapes, IdentitiesAcrossWorkloadShapes) {
  const auto [dist, rate, seed] = GetParam();
  const double alpha = 2.5;
  const Instance inst = workload::generate({.n_jobs = 20,
                                            .arrival_rate = rate,
                                            .volume_dist = dist,
                                            .volume_param = 1.7,
                                            .seed = static_cast<std::uint64_t>(seed)});
  const RunResult nc = run_nc_uniform(inst, alpha);
  const RunResult c = run_c(inst, alpha);
  EXPECT_NEAR(nc.metrics.energy, c.metrics.energy, 1e-9 * std::max(1.0, c.metrics.energy));
  EXPECT_NEAR(nc.metrics.fractional_flow,
              c.metrics.fractional_flow * bounds::nc_over_c_flow(alpha),
              1e-9 * std::max(1.0, nc.metrics.fractional_flow));
  nc.schedule.validate(inst);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NCUniformShapes,
    ::testing::Combine(::testing::Values(workload::VolumeDist::kUniform,
                                         workload::VolumeDist::kPareto,
                                         workload::VolumeDist::kLognormal,
                                         workload::VolumeDist::kFixed),
                       ::testing::Values(0.4, 2.0, 8.0), ::testing::Values(1, 2)));

TEST(NCUniform, IdentitiesOnDiurnalTraces) {
  const double alpha = 2.0;
  const Instance inst =
      workload::diurnal_trace({.n_jobs = 60, .base_rate = 2.0, .amplitude = 0.8, .seed = 6});
  const RunResult nc = run_nc_uniform(inst, alpha);
  const RunResult c = run_c(inst, alpha);
  EXPECT_NEAR(nc.metrics.energy, c.metrics.energy, 1e-9 * std::max(1.0, c.metrics.energy));
  EXPECT_NEAR(nc.metrics.fractional_flow, 2.0 * c.metrics.fractional_flow,
              1e-9 * std::max(1.0, nc.metrics.fractional_flow));
}

// Ties in release times resolve as the limit of distinct releases, so the
// identities must still hold exactly.
TEST(NCUniform, IdentitiesHoldWithTiedReleases) {
  const double alpha = 2.0;
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 0.0, 2.0, 1.0},
                       Job{kNoJob, 0.0, 0.5, 1.0}, Job{kNoJob, 1.0, 1.0, 1.0},
                       Job{kNoJob, 1.0, 0.25, 1.0}});
  const RunResult nc = run_nc_uniform(inst, alpha);
  const RunResult c = run_c(inst, alpha);
  EXPECT_NEAR(nc.metrics.energy, c.metrics.energy, 1e-9);
  EXPECT_NEAR(nc.metrics.fractional_flow, c.metrics.fractional_flow * 2.0, 1e-9);
}

// --- Theorem-level bounds against the numerical offline optimum ---------

class NCUniformBound : public ::testing::TestWithParam<double> {};

TEST_P(NCUniformBound, Theorem5FractionalCompetitiveness) {
  const double alpha = GetParam();
  const Instance inst = uniform_instance(12, 17, 2.0);
  const RunResult nc = run_nc_uniform(inst, alpha);
  const ConvexOptResult opt = solve_fractional_opt(inst, alpha, {.slots = 700});
  ASSERT_GT(opt.objective, 0.0);
  const double ratio = nc.metrics.fractional_objective() / opt.objective;
  // 5% slack for the discretized OPT.
  EXPECT_LE(ratio, bounds::nc_uniform_fractional(alpha) * 1.05);
  EXPECT_GE(ratio, 1.0 - 0.05);  // OPT really is (near) a lower bound
}

TEST_P(NCUniformBound, Theorem9IntegralCompetitiveness) {
  const double alpha = GetParam();
  const Instance inst = uniform_instance(12, 23, 2.0);
  const RunResult nc = run_nc_uniform(inst, alpha);
  const ConvexOptResult opt = solve_fractional_opt(inst, alpha, {.slots = 700});
  ASSERT_GT(opt.objective, 0.0);
  // fractional OPT <= integral OPT, so this ratio upper-bounds the true one.
  const double ratio = nc.metrics.integral_objective() / opt.objective;
  EXPECT_LE(ratio, bounds::nc_uniform_integral(alpha) * 1.05);
}

INSTANTIATE_TEST_SUITE_P(AlphaGrid, NCUniformBound, ::testing::Values(1.5, 2.0, 3.0));

// Ablation sanity: the naive speed rule (no clairvoyant offset) must NOT
// satisfy the Lemma 3 energy identity on instances with waiting.
TEST(NCUniform, NaiveRuleBreaksEnergyIdentity) {
  // Sparse arrivals: the naive rule keeps growing from the total completed
  // weight, so later jobs run absurdly fast and waste energy.
  const Instance inst = uniform_instance(16, 31, 0.3);
  const double alpha = 2.0;
  const RunResult naive = run_naive_nc(inst, alpha);
  const RunResult c = run_c(inst, alpha);
  EXPECT_GT(std::abs(naive.metrics.energy - c.metrics.energy),
            1e-6 * std::max(1.0, c.metrics.energy));
}

}  // namespace
}  // namespace speedscale
