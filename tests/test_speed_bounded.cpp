// Tests for the bounded-maximum-speed extension (algo/speed_bounded.h).
#include <gtest/gtest.h>

#include <cmath>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/speed_bounded.h"
#include "src/sim/speed_profile.h"
#include "src/workload/generators.h"

namespace speedscale {
namespace {

Instance uniform_instance(int n, std::uint64_t seed) {
  return workload::generate({.n_jobs = n, .arrival_rate = 2.0, .seed = seed});
}

TEST(BoundedC, SingleJobHandComputable) {
  // alpha = 2, W = 4, s_max = 1 (cap power 1): capped 3 time units at speed
  // 1, then the usual decay from weight 1 (2 more time units).
  const Instance one({Job{kNoJob, 0.0, 4.0, 1.0}});
  const BoundedRun run = run_c_bounded(one, 2.0, 1.0);
  EXPECT_NEAR(run.result.schedule.completion(0), 5.0, 1e-12);
  // Energy: 1 * 3 (capped) + int W dt over decay 1 -> 0 = 1/1.5.
  EXPECT_NEAR(run.result.metrics.energy, 3.0 + 2.0 / 3.0, 1e-12);
  run.result.schedule.validate(one);
}

TEST(BoundedC, LooseCapup_MatchesUnbounded) {
  const Instance inst = uniform_instance(10, 5);
  const BoundedRun b = run_c_bounded(inst, 2.0, 1e6);
  const RunResult u = run_c(inst, 2.0);
  EXPECT_NEAR(b.result.metrics.fractional_objective(), u.metrics.fractional_objective(),
              1e-9 * u.metrics.fractional_objective());
}

TEST(BoundedNC, LooseCapMatchesUnbounded) {
  const Instance inst = uniform_instance(10, 5);
  const BoundedRun b = run_nc_bounded(inst, 2.0, 1e6);
  const RunResult u = run_nc_uniform(inst, 2.0);
  EXPECT_NEAR(b.result.metrics.fractional_objective(), u.metrics.fractional_objective(),
              1e-9 * u.metrics.fractional_objective());
}

TEST(BoundedC, SpeedNeverExceedsCap) {
  const Instance inst = uniform_instance(12, 7);
  const double s_max = 0.8;
  const BoundedRun run = run_c_bounded(inst, 2.0, s_max);
  const double T = run.result.schedule.makespan();
  for (int i = 0; i <= 4000; ++i) {
    EXPECT_LE(run.result.schedule.speed_at(T * i / 4000.0), s_max + 1e-9);
  }
  run.result.schedule.validate(inst);
}

TEST(BoundedC, RemainingWeightLeftConsistent) {
  const Instance inst({Job{kNoJob, 0.0, 4.0, 1.0}, Job{kNoJob, 1.0, 1.0, 1.0}});
  const BoundedRun run = run_c_bounded(inst, 2.0, 1.0);
  // At t = 1^- the machine has run capped at speed 1 for 1 unit: W = 4 - 1.
  EXPECT_NEAR(bounded_remaining_weight_left(run, 1.0), 3.0, 1e-12);
  EXPECT_NEAR(bounded_remaining_weight_left(run, 0.5), 3.5, 1e-12);
}

class BoundedIdentity : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

// The general-power-function lemmas transfer to the capped model:
// equal energy (Lemma 3) ...
TEST_P(BoundedIdentity, EnergyEquality) {
  const auto [alpha, s_max, seed] = GetParam();
  const Instance inst = uniform_instance(18, static_cast<std::uint64_t>(seed));
  const BoundedRun c = run_c_bounded(inst, alpha, s_max);
  const BoundedRun nc = run_nc_bounded(inst, alpha, s_max);
  EXPECT_NEAR(nc.result.metrics.energy, c.result.metrics.energy,
              1e-9 * std::max(1.0, c.result.metrics.energy));
}

// ... and measure-preserving speed profiles (Lemma 6).
TEST_P(BoundedIdentity, MeasurePreservingProfiles) {
  const auto [alpha, s_max, seed] = GetParam();
  const Instance inst = uniform_instance(14, static_cast<std::uint64_t>(seed));
  const BoundedRun c = run_c_bounded(inst, alpha, s_max);
  const BoundedRun nc = run_nc_bounded(inst, alpha, s_max);
  const double scale = std::max(1.0, c.result.schedule.makespan());
  EXPECT_LE(rearrangement_distance(nc.result.schedule, c.result.schedule), 1e-8 * scale);
}

INSTANTIATE_TEST_SUITE_P(Grid, BoundedIdentity,
                         ::testing::Combine(::testing::Values(1.5, 2.0, 3.0),
                                            ::testing::Values(0.5, 0.9, 2.0),
                                            ::testing::Values(1, 2)));

TEST(Bounded, FlowRatioDriftsWhenCapBinds) {
  // Lemma 4's 1/(1-1/alpha) is power-law-specific: a binding cap breaks it.
  const double alpha = 2.0;
  const Instance inst = uniform_instance(12, 3);
  const BoundedRun c = run_c_bounded(inst, alpha, 0.4);  // tight cap
  const BoundedRun nc = run_nc_bounded(inst, alpha, 0.4);
  const double ratio = nc.result.metrics.fractional_flow / c.result.metrics.fractional_flow;
  EXPECT_GT(std::abs(ratio - 2.0), 0.01);
}

TEST(Bounded, CostMonotoneInCap) {
  const Instance one({Job{kNoJob, 0.0, 4.0, 1.0}});
  double prev = kInf;
  for (double s_max : {0.25, 0.5, 1.0, 2.0, 8.0}) {
    const double cost = run_c_bounded(one, 2.0, s_max).result.metrics.fractional_objective();
    EXPECT_LE(cost, prev + 1e-12);
    prev = cost;
  }
}

TEST(Bounded, RejectsBadInputs) {
  const Instance one({Job{kNoJob, 0.0, 1.0, 1.0}});
  EXPECT_THROW(run_c_bounded(one, 2.0, 0.0), ModelError);
  EXPECT_THROW(run_nc_bounded(one, 2.0, -1.0), ModelError);
  const Instance mixed({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 0.0, 1.0, 2.0}});
  EXPECT_THROW(run_nc_bounded(mixed, 2.0, 1.0), ModelError);
}

TEST(Bounded, TiedReleasesKeepEnergyIdentity) {
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 0.0, 2.0, 1.0},
                       Job{kNoJob, 0.5, 0.5, 1.0}});
  const BoundedRun c = run_c_bounded(inst, 2.0, 0.9);
  const BoundedRun nc = run_nc_bounded(inst, 2.0, 0.9);
  EXPECT_NEAR(nc.result.metrics.energy, c.result.metrics.energy, 1e-9);
}

}  // namespace
}  // namespace speedscale
