// Tests for immediate dispatch and the Section 6 lower-bound adversary.
#include <gtest/gtest.h>

#include <cmath>

#include "src/algo/bounds.h"
#include "src/algo/dispatch.h"
#include "src/numerics/stats.h"

namespace speedscale {
namespace {

TEST(Dispatch, RoundRobinBalancesExactly) {
  const auto a = dispatch_identical(DispatchPolicy::kRoundRobin, 4, 16);
  std::vector<int> count(4, 0);
  for (MachineId m : a) ++count[static_cast<std::size_t>(m)];
  for (int c : count) EXPECT_EQ(c, 4);
}

TEST(Dispatch, LeastCountBalances) {
  const auto a = dispatch_identical(DispatchPolicy::kLeastCount, 3, 10);
  std::vector<int> count(3, 0);
  for (MachineId m : a) ++count[static_cast<std::size_t>(m)];
  EXPECT_EQ(*std::max_element(count.begin(), count.end()) -
                *std::min_element(count.begin(), count.end()),
            1);
}

TEST(Dispatch, FirstFitFillsInOrder) {
  const auto a = dispatch_identical(DispatchPolicy::kFirstFit, 2, 4);
  EXPECT_EQ(a[0], 0);
  EXPECT_EQ(a[1], 0);
  EXPECT_EQ(a[2], 1);
  EXPECT_EQ(a[3], 1);
}

class AdversaryPolicy : public ::testing::TestWithParam<DispatchPolicy> {};

TEST_P(AdversaryPolicy, PigeonholeLoadsAtLeastKJobs) {
  const AdversaryOutcome out = run_sec6_adversary(5, 2.0, GetParam());
  EXPECT_GE(out.loaded_count, 5);
  EXPECT_GE(out.loaded_machine, 0);
}

TEST_P(AdversaryPolicy, RatioIsAtLeastKToTheBeta) {
  // k heavy jobs stacked on one machine vs one each: the exact closed form
  // gives a ratio of k^{1-1/alpha} (batch of m unit jobs under C costs
  // m^{2-1/alpha} times a single job's cost... per-machine cost scales as
  // W^{1+b}).  The tiny light jobs only perturb this.
  for (const double alpha : {1.5, 2.0, 3.0}) {
    for (const int k : {2, 4, 8}) {
      const AdversaryOutcome out = run_sec6_adversary(k, alpha, GetParam());
      const double expect = std::pow(static_cast<double>(k), 1.0 - 1.0 / alpha);
      EXPECT_GT(out.ratio, 0.9 * expect) << "k=" << k << " alpha=" << alpha;
      EXPECT_LT(out.ratio, 1.1 * expect) << "k=" << k << " alpha=" << alpha;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, AdversaryPolicy,
                         ::testing::Values(DispatchPolicy::kRoundRobin,
                                           DispatchPolicy::kLeastCount,
                                           DispatchPolicy::kFirstFit));

TEST(Adversary, GrowthExponentMatchesTheory) {
  const double alpha = 2.0;
  std::vector<double> ks, ratios;
  for (int k = 2; k <= 16; k *= 2) {
    ks.push_back(k);
    ratios.push_back(run_sec6_adversary(k, alpha, DispatchPolicy::kRoundRobin).ratio);
  }
  const double slope = numerics::fit_log_log_slope(ks, ratios);
  EXPECT_NEAR(slope, bounds::lower_bound_exponent(alpha), 0.08);
}

TEST(Adversary, AlgorithmNeverBeatsSpread) {
  const AdversaryOutcome out = run_sec6_adversary(3, 2.5, DispatchPolicy::kLeastCount);
  EXPECT_GE(out.algo_cost, out.opt_cost);
  EXPECT_GT(out.opt_cost, 0.0);
}

}  // namespace
}  // namespace speedscale
