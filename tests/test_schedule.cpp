// Unit tests for Schedule recording and replay (core/schedule.h).
#include <gtest/gtest.h>

#include "src/core/schedule.h"

namespace speedscale {
namespace {

TEST(Schedule, AppendEnforcesTimeOrder) {
  Schedule s(2.0);
  s.append({0.0, 1.0, 0, SpeedLaw::kConstant, 1.0, 1.0});
  EXPECT_THROW(s.append({0.5, 2.0, 1, SpeedLaw::kConstant, 1.0, 1.0}), ModelError);
  EXPECT_THROW(s.append({3.0, 2.0, 1, SpeedLaw::kConstant, 1.0, 1.0}), ModelError);
  // Gaps are fine (implicit idle).
  s.append({2.0, 3.0, 1, SpeedLaw::kConstant, 2.0, 1.0});
  EXPECT_EQ(s.segments().size(), 2u);
  EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
}

TEST(Schedule, DropsEmptySegments) {
  Schedule s(2.0);
  s.append({1.0, 1.0, 0, SpeedLaw::kConstant, 1.0, 1.0});
  EXPECT_TRUE(s.segments().empty());
  EXPECT_DOUBLE_EQ(s.makespan(), 0.0);
}

TEST(Schedule, SpeedAtConstantAndIdle) {
  Schedule s(2.0);
  s.append({0.0, 1.0, 0, SpeedLaw::kConstant, 3.0, 1.0});
  s.append({2.0, 3.0, 1, SpeedLaw::kConstant, 5.0, 1.0});
  EXPECT_DOUBLE_EQ(s.speed_at(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.speed_at(1.5), 0.0);  // gap
  EXPECT_DOUBLE_EQ(s.speed_at(2.5), 5.0);
  EXPECT_DOUBLE_EQ(s.speed_at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(s.speed_at(10.0), 0.0);
}

TEST(Schedule, PowerDecaySpeedEvolution) {
  const double alpha = 2.0;
  Schedule s(alpha);
  const double w0 = 4.0;
  s.append({0.0, 1.0, 0, SpeedLaw::kPowerDecay, w0, 1.0});
  // At t=0 the speed is w0^{1/alpha} = 2.
  EXPECT_NEAR(s.speed_at(0.0), 2.0, 1e-12);
  // Speed decreases over the segment.
  EXPECT_LT(s.speed_at(0.9), s.speed_at(0.1));
}

TEST(Schedule, PowerGrowSpeedEvolution) {
  Schedule s(2.0);
  s.append({0.0, 2.0, 0, SpeedLaw::kPowerGrow, 0.0, 1.0});
  EXPECT_NEAR(s.speed_at(0.0), 0.0, 1e-12);
  EXPECT_GT(s.speed_at(1.9), s.speed_at(0.1));
}

TEST(Schedule, SegmentVolumeConsistency) {
  const PowerLawKinematics kin(2.5);
  Schedule s(2.5);
  const Segment seg{0.0, 1.5, 0, SpeedLaw::kPowerDecay, 6.0, 2.0};
  s.append(seg);
  // Whole-segment volume equals sum of halves.
  const double whole = s.segment_volume(seg, 0.0, 1.5);
  const double a = s.segment_volume(seg, 0.0, 0.7);
  const double b = s.segment_volume(seg, 0.7, 1.5);
  EXPECT_NEAR(whole, a + b, 1e-12);
  // And equals the kinematics bookkeeping.
  const double w1 = kin.decay_weight_after(6.0, 2.0, 1.5);
  EXPECT_NEAR(whole, (6.0 - w1) / 2.0, 1e-12);
}

TEST(Schedule, ProcessedVolumesAccumulateAcrossSegments) {
  Schedule s(2.0);
  s.append({0.0, 1.0, 0, SpeedLaw::kConstant, 2.0, 1.0});
  s.append({1.0, 2.0, 1, SpeedLaw::kConstant, 1.0, 1.0});
  s.append({2.0, 3.0, 0, SpeedLaw::kConstant, 0.5, 1.0});
  const auto v = s.processed_volumes(2);
  EXPECT_DOUBLE_EQ(v[0], 2.5);
  EXPECT_DOUBLE_EQ(v[1], 1.0);
}

TEST(Schedule, CompletionAccessors) {
  Schedule s(2.0);
  s.set_completion(3, 7.5);
  EXPECT_TRUE(s.completed(3));
  EXPECT_FALSE(s.completed(4));
  EXPECT_DOUBLE_EQ(s.completion(3), 7.5);
  EXPECT_THROW((void)s.completion(4), ModelError);
}

TEST(Schedule, ValidateCatchesViolations) {
  const Instance inst({Job{kNoJob, 1.0, 2.0, 1.0}});
  {
    // Processing before release.
    Schedule s(2.0);
    s.append({0.0, 1.0, 0, SpeedLaw::kConstant, 1.0, 1.0});
    EXPECT_THROW(s.validate(inst), ModelError);
  }
  {
    // Completed job with wrong processed volume.
    Schedule s(2.0);
    s.append({1.0, 2.0, 0, SpeedLaw::kConstant, 1.0, 1.0});
    s.set_completion(0, 2.0);
    EXPECT_THROW(s.validate(inst), ModelError);
  }
  {
    // Correct schedule passes.
    Schedule s(2.0);
    s.append({1.0, 3.0, 0, SpeedLaw::kConstant, 1.0, 1.0});
    s.set_completion(0, 3.0);
    EXPECT_NO_THROW(s.validate(inst));
  }
  {
    // Over-processing an incomplete job.
    Schedule s(2.0);
    s.append({1.0, 5.0, 0, SpeedLaw::kConstant, 1.0, 1.0});
    EXPECT_THROW(s.validate(inst), ModelError);
  }
}

}  // namespace
}  // namespace speedscale
