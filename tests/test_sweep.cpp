// Sweep engine, shard metric capture, OPT solve cache, and the thread-pool
// fixes that ride with them (PR 5).
//
// The load-bearing property throughout: parallelism must be unobservable in
// every recorded artifact.  The headline test runs the same suite sweep at
// --jobs 1/2/4 and asserts the suite JSON, the concatenated certificate
// JSONL, and the merged registry counter snapshot are byte-identical.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/algo/algorithm_nc_uniform.h"
#include "src/analysis/sweep.h"
#include "src/analysis/thread_pool.h"
#include "src/analysis/worst_case.h"
#include "src/core/power.h"
#include "src/obs/cert/potential_tracker.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/shard_scope.h"
#include "src/obs/trace.h"
#include "src/opt/convex_opt.h"
#include "src/opt/opt_cache.h"
#include "src/robust/fault_injection.h"
#include "src/robust/guarded_engine.h"
#include "src/workload/generators.h"

namespace speedscale {
namespace {

// --- ShardMetricsScope --------------------------------------------------

TEST(ShardScope, CapturesAddsAndMergesOnRequest) {
  obs::set_metrics_enabled(true);
  obs::Counter& c = obs::registry().counter("test.shard.capture");
  const std::int64_t base = c.value();
  obs::ShardMetricsScope scope;
  OBS_COUNT("test.shard.capture", 5);
  OBS_COUNT("test.shard.capture", 2);
  scope.stop();
  // Diverted: nothing reached the registry while the scope was active.
  EXPECT_EQ(c.value(), base);
  const auto deltas = scope.counters();
  ASSERT_EQ(deltas.count("test.shard.capture"), 1u);
  EXPECT_EQ(deltas.at("test.shard.capture"), 7);
  scope.merge_into_parent();
  EXPECT_EQ(c.value(), base + 7);
}

TEST(ShardScope, NestedMergeRoutesToEnclosingScope) {
  obs::set_metrics_enabled(true);
  obs::Counter& c = obs::registry().counter("test.shard.nested");
  const std::int64_t base = c.value();
  obs::ShardMetricsScope outer;
  {
    obs::ShardMetricsScope inner;
    OBS_COUNT("test.shard.nested", 3);
    inner.merge_into_parent();
  }
  // The inner merge must land in `outer`, not leak to the registry.
  EXPECT_EQ(c.value(), base);
  outer.stop();
  const auto deltas = outer.counters();
  ASSERT_EQ(deltas.count("test.shard.nested"), 1u);
  EXPECT_EQ(deltas.at("test.shard.nested"), 3);
  outer.merge_into_parent();
  EXPECT_EQ(c.value(), base + 3);
}

TEST(ShardScope, DroppedScopeContributesNothing) {
  obs::set_metrics_enabled(true);
  obs::Counter& c = obs::registry().counter("test.shard.dropped");
  const std::int64_t base = c.value();
  {
    obs::ShardMetricsScope scope;
    OBS_COUNT("test.shard.dropped", 11);
    // No merge: destructor only pops the scope (rejected-attempt semantics).
  }
  EXPECT_EQ(c.value(), base);
}

// --- OptSolveCache ------------------------------------------------------

TEST(OptSolveCache, MemoizesExactRepeatsOnly) {
  const Instance inst = workload::generate({.n_jobs = 6, .arrival_rate = 2.0, .seed = 3});
  ConvexOptParams params;
  params.slots = 100;
  OptSolveCache cache(16);
  ScopedOptSolveCache bind(&cache);
  const ConvexOptResult a = solve_fractional_opt(inst, 2.0, params);
  const ConvexOptResult b = solve_fractional_opt(inst, 2.0, params);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.iterations, b.iterations);

  // Any parameter change is a different key — no epsilon matching.
  params.slots = 101;
  (void)solve_fractional_opt(inst, 2.0, params);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(OptSolveCache, UninstalledMeansUncached) {
  const Instance inst = workload::generate({.n_jobs = 4, .arrival_rate = 2.0, .seed = 9});
  OptSolveCache cache(16);
  {
    ScopedOptSolveCache bind(&cache);
    (void)solve_fractional_opt(inst, 2.0, {});
  }
  (void)solve_fractional_opt(inst, 2.0, {});  // outside the scope: no lookup
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

// --- ThreadPool regressions ---------------------------------------------

TEST(ThreadPoolRegression, NestedSubmitDrainsBeforeWaitIdleReturns) {
  analysis::ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&] {
    ran.fetch_add(1);
    pool.submit([&] {
      ran.fetch_add(1);
      pool.submit([&] { ran.fetch_add(1); });
    });
  });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPoolRegression, FailureCountersSurviveTeardown) {
  obs::set_metrics_enabled(true);
  obs::Counter& failures = obs::registry().counter("analysis.thread_pool.task_failures");
  obs::Counter& dropped = obs::registry().counter("analysis.thread_pool.dropped_errors");
  const std::int64_t f0 = failures.value();
  const std::int64_t d0 = dropped.value();
  {
    analysis::ThreadPool pool(2);
    for (int i = 0; i < 3; ++i) {
      pool.submit([] { throw std::runtime_error("boom"); });
    }
    // No wait_idle(): teardown drains the queue, counts every failure, and
    // reports the uncollected first error instead of swallowing it.
  }
  EXPECT_EQ(failures.value() - f0, 3);
  EXPECT_EQ(dropped.value() - d0, 1);
}

TEST(ThreadPoolRegression, CollectedErrorIsNotDropped) {
  obs::Counter& dropped = obs::registry().counter("analysis.thread_pool.dropped_errors");
  const std::int64_t d0 = dropped.value();
  {
    analysis::ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("collected"); });
    EXPECT_THROW(pool.wait_idle(), std::runtime_error);
    EXPECT_EQ(pool.failed_tasks(), 1u);
  }
  EXPECT_EQ(dropped.value() - d0, 0);
}

// --- SweepScheduler -----------------------------------------------------

TEST(SweepScheduler, DeltasAreIndexAddressed) {
  obs::set_metrics_enabled(true);
  analysis::SweepOptions options;
  options.jobs = 3;
  analysis::SweepScheduler scheduler(options);
  const auto deltas = scheduler.run(5, [](std::size_t i) {
    OBS_COUNT("test.sweep.work", static_cast<std::int64_t>(i + 1));
  });
  ASSERT_EQ(deltas.size(), 5u);
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    ASSERT_EQ(deltas[i].count("test.sweep.work"), 1u) << "item " << i;
    EXPECT_EQ(deltas[i].at("test.sweep.work"), static_cast<std::int64_t>(i + 1));
  }
}

TEST(SweepScheduler, ItemFailureRethrownAndNothingMerged) {
  obs::set_metrics_enabled(true);
  obs::Counter& c = obs::registry().counter("test.sweep.failed_sweep");
  const std::int64_t base = c.value();
  analysis::SweepOptions options;
  options.jobs = 4;
  analysis::SweepScheduler scheduler(options);
  EXPECT_THROW(scheduler.run(8,
                             [](std::size_t i) {
                               OBS_COUNT("test.sweep.failed_sweep", 1);
                               if (i == 3) throw std::runtime_error("item failed");
                             }),
               std::runtime_error);
  // A failed sweep contributes nothing to the ledger.
  EXPECT_EQ(c.value(), base);
}

// --- Determinism: the tentpole contract ---------------------------------

/// Runs the pinned suite sweep at `jobs` workers and returns every recorded
/// artifact: the suite JSON, the certificate JSONL, and the (nonzero) merged
/// registry counter snapshot.
struct SweepArtifacts {
  std::string suite_json;
  std::string cert_jsonl;
  std::map<std::string, std::int64_t> counters;
};

SweepArtifacts run_pinned_sweep(std::size_t jobs) {
  obs::registry().reset_all();
  std::vector<analysis::SuitePoint> points;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    points.push_back(
        {workload::generate({.n_jobs = 6, .arrival_rate = 2.0, .seed = seed}), 2.0});
  }
  analysis::SuiteOptions suite;
  suite.include_nonuniform = false;
  suite.certify = true;
  suite.opt_slots = 120;
  analysis::SweepOptions sweep;
  sweep.jobs = jobs;
  const analysis::SuiteSweepResult r = analysis::run_suite_sweep(points, suite, sweep);
  SweepArtifacts out;
  out.suite_json = r.suite_json();
  out.cert_jsonl = r.cert_jsonl();
  for (const auto& [name, v] : obs::registry().counter_values()) {
    if (v != 0) out.counters[name] = v;
  }
  return out;
}

TEST(SweepDeterminism, ArtifactsByteIdenticalAcrossJobs) {
  obs::set_metrics_enabled(true);
  const SweepArtifacts serial = run_pinned_sweep(1);
  const SweepArtifacts two = run_pinned_sweep(2);
  const SweepArtifacts four = run_pinned_sweep(4);

  EXPECT_EQ(serial.suite_json, two.suite_json);
  EXPECT_EQ(serial.suite_json, four.suite_json);
  EXPECT_EQ(serial.cert_jsonl, two.cert_jsonl);
  EXPECT_EQ(serial.cert_jsonl, four.cert_jsonl);
  EXPECT_EQ(serial.counters, two.counters);
  EXPECT_EQ(serial.counters, four.counters);

  // Sanity: the artifacts actually contain the interesting parts.
  EXPECT_NE(serial.suite_json.find("\"schema\":\"speedscale.suite_sweep/1\""),
            std::string::npos);
  EXPECT_NE(serial.suite_json.find("cert_records"), std::string::npos);
  EXPECT_FALSE(serial.cert_jsonl.empty());
  // The per-point OPT caches saw repeats (C and NC certify the same prefix
  // chain), and the hit counter made it into the merged snapshot.
  ASSERT_EQ(serial.counters.count("opt.cache.hits"), 1u);
  EXPECT_GT(serial.counters.at("opt.cache.hits"), 0);
}

TEST(WorstCaseRestarts, ResultIdenticalAtAnyJobs) {
  analysis::WorstCaseOptions options;
  options.n_jobs = 2;
  options.rounds = 2;
  options.opt_slots = 80;
  options.seed = 3;
  options.restarts = 3;
  options.jobs = 1;
  const analysis::WorstCaseResult serial = analysis::find_worst_nc_instance(2.0, options);
  options.jobs = 3;
  const analysis::WorstCaseResult parallel = analysis::find_worst_nc_instance(2.0, options);

  EXPECT_EQ(serial.ratio, parallel.ratio);
  EXPECT_EQ(serial.evaluations, parallel.evaluations);
  EXPECT_EQ(serial.failed_evaluations, parallel.failed_evaluations);
  EXPECT_EQ(serial.rounds_completed, parallel.rounds_completed);
  EXPECT_EQ(serial.restarts_run, 3);
  EXPECT_EQ(parallel.restarts_run, 3);
  ASSERT_EQ(serial.instance.size(), parallel.instance.size());
  for (std::size_t i = 0; i < serial.instance.size(); ++i) {
    EXPECT_EQ(serial.instance.jobs()[i].release, parallel.instance.jobs()[i].release);
    EXPECT_EQ(serial.instance.jobs()[i].volume, parallel.instance.jobs()[i].volume);
  }
}

TEST(CertifySolverJobs, LedgerByteIdenticalAtAnyJobs) {
  const Instance inst = workload::generate({.n_jobs = 10, .arrival_rate = 2.0, .seed = 2});
  obs::RingBufferSink ring(1 << 16);
  {
    obs::ScopedThreadCapture capture(&ring);
    (void)run_nc_uniform(inst, 2.0);
  }
  obs::cert::CertOptions options;
  options.opt_slots = 120;
  options.solver_jobs = 1;
  const obs::cert::CertificateLedger serial =
      obs::cert::certify_events(ring.events(), 2.0, options);
  options.solver_jobs = 4;
  const obs::cert::CertificateLedger parallel =
      obs::cert::certify_events(ring.events(), 2.0, options);
  EXPECT_EQ(serial.records.size(), parallel.records.size());
  EXPECT_EQ(serial.opt_lb_updates, parallel.opt_lb_updates);
  EXPECT_EQ(obs::cert::certificates_jsonl(serial), obs::cert::certificates_jsonl(parallel));
}

// --- Guarded engine: attempted vs committed work ------------------------

TEST(GuardedWork, CleanRunCommitsEverythingItAttempts) {
  obs::set_metrics_enabled(true);
  obs::Counter& attempted = obs::registry().counter("robust.work.attempted_units");
  obs::Counter& committed = obs::registry().counter("robust.work.committed_units");
  const Instance inst = workload::generate({.n_jobs = 4, .arrival_rate = 1.5, .seed = 1});
  const PowerLaw p(2.0);
  robust::GuardedNumericOptions options;
  options.base.substeps_per_interval = 64;
  options.alpha = 2.0;
  robust::FaultInjector::instance().clear();
  const std::int64_t a0 = attempted.value();
  const std::int64_t c0 = committed.value();
  const auto outcome = robust::run_generic_c_guarded(inst, p, options);
  EXPECT_TRUE(outcome.ok());
  const std::int64_t did = attempted.value() - a0;
  EXPECT_GT(did, 0);
  EXPECT_EQ(did, committed.value() - c0);
}

TEST(GuardedWork, RejectedAttemptCountsAsAttemptedNotCommitted) {
  obs::set_metrics_enabled(true);
  obs::Counter& attempted = obs::registry().counter("robust.work.attempted_units");
  obs::Counter& committed = obs::registry().counter("robust.work.committed_units");
  const Instance inst = workload::generate({.n_jobs = 4, .arrival_rate = 1.5, .seed = 1});
  const PowerLaw p(2.0);
  robust::GuardedNumericOptions options;
  options.base.substeps_per_interval = 64;
  options.alpha = 2.0;
  const std::int64_t a0 = attempted.value();
  const std::int64_t c0 = committed.value();
  {
    // NaN at substep 10 rejects attempt 0; the ladder retries clean (the
    // plan's index is absolute, so it never re-fires on the retry).
    robust::ScopedFaultPlan plan(
        robust::FaultPlan{}.fire(robust::FaultSite::kOdeSubstepNaN, {10}));
    const auto outcome = robust::run_generic_c_guarded(inst, p, options);
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.attempts, 2);
  }
  const std::int64_t did_attempt = attempted.value() - a0;
  const std::int64_t did_commit = committed.value() - c0;
  EXPECT_GT(did_commit, 0);
  // The rejected rung's substeps are attempted-only: no double counting in
  // the committed (ledger-visible) totals.
  EXPECT_GT(did_attempt, did_commit);
}

}  // namespace
}  // namespace speedscale
