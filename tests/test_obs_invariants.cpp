// Event-level replay of the paper's Lemma 3 / Lemma 4 identities.
//
// The simulators annotate every completion event with cumulative energy
// (value) and cumulative fractional flow (aux).  Because the simulators are
// closed-form exact, the lemmas hold *at every completion event*, not just
// in aggregate:
//
//   * Algorithm C runs at P(s) = W, so its cumulative energy and cumulative
//     fractional flow are the same integral: aux == value at every event.
//   * Algorithm NC sweeps, for job j, exactly the C weight band
//     [offset_j, offset_j + W_j] (Lemma 3 per job): the cumulative energy at
//     the k-th completion is the sum of the first k band integrals, and the
//     total equals C's energy.
//   * Each job's whole-lifetime fractional flow is E_j / (1 - 1/alpha)
//     (Lemma 4 per job), so cumulative aux == cumulative value / (1 - 1/alpha)
//     at every completion event.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/core/kinematics.h"
#include "src/obs/trace.h"
#include "src/workload/generators.h"

namespace speedscale {
namespace {

using obs::EventKind;
using obs::TraceEvent;

class ObsInvariantsTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().clear_sinks();
  }
};

Instance uniform_instance(int n, std::uint64_t seed) {
  return workload::generate({.n_jobs = n,
                             .arrival_rate = 1.2,
                             .volume_dist = workload::VolumeDist::kExponential,
                             .seed = seed});
}

std::vector<TraceEvent> capture(const std::function<void()>& run) {
  auto ring = std::make_shared<obs::RingBufferSink>(1 << 18);
  obs::ScopedTracing tracing(ring);
  run();
  EXPECT_EQ(ring->dropped(), 0u);
  return ring->events();
}

TEST_F(ObsInvariantsTest, AlgorithmCFlowEqualsEnergyAtEveryCompletion) {
  for (const double alpha : {1.5, 2.0, 3.0}) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      const Instance inst = uniform_instance(24, seed);
      RunResult c(alpha);
      const std::vector<TraceEvent> evs = capture([&] { c = run_c(inst, alpha); });

      std::size_t completions = 0;
      double last_energy = 0.0;
      for (const TraceEvent& ev : evs) {
        if (ev.kind != EventKind::kJobComplete) continue;
        ++completions;
        // P(s) = W makes cumulative flow == cumulative energy, event by event.
        EXPECT_DOUBLE_EQ(ev.aux, ev.value);
        EXPECT_GE(ev.value, last_energy);
        last_energy = ev.value;
      }
      EXPECT_EQ(completions, inst.size());
      EXPECT_NEAR(last_energy, c.metrics.energy, 1e-9 * std::max(1.0, c.metrics.energy));
      EXPECT_NEAR(last_energy, c.metrics.fractional_flow,
                  1e-9 * std::max(1.0, c.metrics.fractional_flow));
    }
  }
}

TEST_F(ObsInvariantsTest, NCCompletionEventsReplayLemma3And4) {
  for (const double alpha : {1.5, 2.0, 2.5, 3.0}) {
    const PowerLawKinematics kin(alpha);
    for (const std::uint64_t seed : {11u, 12u, 13u}) {
      const Instance inst = uniform_instance(20, seed);
      NCUniformRun nc(alpha);
      const std::vector<TraceEvent> evs =
          capture([&] { nc = run_nc_uniform_detailed(inst, alpha); });

      // Every job appears exactly once as a release and once as a completion;
      // the virtual clairvoyant run inside NC must stay invisible.
      std::map<JobId, int> released, completed;
      for (const TraceEvent& ev : evs) {
        if (ev.kind == EventKind::kJobRelease) ++released[ev.job];
        if (ev.kind == EventKind::kJobComplete) ++completed[ev.job];
      }
      EXPECT_EQ(released.size(), inst.size());
      EXPECT_EQ(completed.size(), inst.size());
      for (const auto& [jid, cnt] : released) EXPECT_EQ(cnt, 1) << "job " << jid;
      for (const auto& [jid, cnt] : completed) EXPECT_EQ(cnt, 1) << "job " << jid;

      double band_energy = 0.0;  // sum of C weight-band integrals (Lemma 3)
      double last_energy = 0.0, last_flow = 0.0;
      for (const TraceEvent& ev : evs) {
        if (ev.kind == EventKind::kJobRelease) {
          const Job& job = inst.job(ev.job);
          EXPECT_DOUBLE_EQ(ev.t, job.release);
          EXPECT_DOUBLE_EQ(ev.value, job.volume);
          EXPECT_DOUBLE_EQ(ev.aux, job.density);
          continue;
        }
        if (ev.kind != EventKind::kJobComplete) continue;
        const Job& job = inst.job(ev.job);
        const double u0 = nc.offsets[static_cast<std::size_t>(ev.job)];
        // Lemma 3, per job: NC spends on job j exactly the C energy of the
        // weight band [offset_j, offset_j + W_j].
        band_energy += kin.grow_integral(u0, u0 + job.weight(), job.density);
        EXPECT_NEAR(ev.value, band_energy, 1e-9 * std::max(1.0, band_energy));
        // Lemma 4, per job: flow_j == E_j / (1 - 1/alpha), so the cumulative
        // ratio holds at every completion event.
        EXPECT_NEAR(ev.aux, ev.value / (1.0 - 1.0 / alpha),
                    1e-9 * std::max(1.0, ev.aux));
        last_energy = ev.value;
        last_flow = ev.aux;
      }

      // The event stream's running totals land exactly on the run's metrics.
      EXPECT_NEAR(last_energy, nc.result.metrics.energy,
                  1e-9 * std::max(1.0, nc.result.metrics.energy));
      EXPECT_NEAR(last_flow, nc.result.metrics.fractional_flow,
                  1e-9 * std::max(1.0, nc.result.metrics.fractional_flow));

      // Lemma 3 in aggregate: NC's energy equals the clairvoyant C's energy.
      RunResult c(alpha);
      {
        obs::TraceSuppressGuard quiet;
        c = run_c(inst, alpha);
      }
      EXPECT_NEAR(last_energy, c.metrics.energy, 1e-9 * std::max(1.0, c.metrics.energy));
    }
  }
}

TEST_F(ObsInvariantsTest, NCEventsInterleaveInTimeOrderWithinKind) {
  const double alpha = 2.0;
  const Instance inst = uniform_instance(16, 99);
  const std::vector<TraceEvent> evs = capture([&] { (void)run_nc_uniform(inst, alpha); });
  double last_release = -kInf, last_complete = -kInf;
  for (const TraceEvent& ev : evs) {
    if (ev.kind == EventKind::kJobRelease) {
      EXPECT_GE(ev.t, last_release);
      last_release = ev.t;
    } else if (ev.kind == EventKind::kJobComplete) {
      EXPECT_GE(ev.t, last_complete);
      last_complete = ev.t;
    }
  }
  // NC completes in FIFO order, so the last completion is the makespan.
  EXPECT_GT(last_complete, 0.0);
}

}  // namespace
}  // namespace speedscale
