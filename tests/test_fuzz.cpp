// Randomized cross-algorithm invariants ("fuzz"): on a wide spread of
// workload shapes, every algorithm must produce a valid schedule and the
// model-level orderings must hold.  These are cheap per-instance checks, so
// the sweep covers many seeds and distributions.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/baselines.h"
#include "src/algo/bounds.h"
#include "src/algo/frac_to_int.h"
#include "src/algo/parallel.h"
#include "src/robust/diagnostics.h"
#include "src/workload/generators.h"
#include "src/workload/trace_io.h"

namespace speedscale {
namespace {

struct FuzzCase {
  workload::VolumeDist dist;
  double rate;
  int n;
};

class Fuzz : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  [[nodiscard]] Instance make() const {
    const auto [shape, seed] = GetParam();
    static const FuzzCase cases[] = {
        {workload::VolumeDist::kUniform, 0.3, 9},
        {workload::VolumeDist::kExponential, 1.0, 17},
        {workload::VolumeDist::kPareto, 2.0, 23},
        {workload::VolumeDist::kLognormal, 5.0, 30},
        {workload::VolumeDist::kFixed, 10.0, 12},
    };
    const FuzzCase& c = cases[static_cast<std::size_t>(shape)];
    return workload::generate({.n_jobs = c.n,
                               .arrival_rate = c.rate,
                               .volume_dist = c.dist,
                               .volume_param = 1.8,
                               .seed = static_cast<std::uint64_t>(seed * 7919 + shape)});
  }
};

TEST_P(Fuzz, AllAlgorithmsProduceValidFiniteSchedules) {
  const Instance inst = make();
  const double alpha = 2.0;
  const RunResult c = run_c(inst, alpha);
  const RunResult nc = run_nc_uniform(inst, alpha);
  const RunResult naive = run_naive_nc(inst, alpha);
  const RunResult doubling = run_doubling_nc(inst, alpha);
  for (const RunResult* r : {&c, &nc, &naive, &doubling}) {
    r->schedule.validate(inst);
    EXPECT_TRUE(std::isfinite(r->metrics.fractional_objective()));
    EXPECT_TRUE(std::isfinite(r->metrics.integral_objective()));
    EXPECT_GT(r->metrics.energy, 0.0);
    for (const Job& j : inst.jobs()) {
      EXPECT_GE(r->schedule.completion(j.id), j.release);
    }
  }
}

TEST_P(Fuzz, FractionalFlowNeverExceedsIntegralFlow) {
  // Each infinitesimal piece of a job finishes no later than the job, so
  // F[j] <= Fint[j] for every schedule.
  const Instance inst = make();
  for (const double alpha : {1.5, 3.0}) {
    const RunResult c = run_c(inst, alpha);
    const RunResult nc = run_nc_uniform(inst, alpha);
    EXPECT_LE(c.metrics.fractional_flow, c.metrics.integral_flow * (1.0 + 1e-9));
    EXPECT_LE(nc.metrics.fractional_flow, nc.metrics.integral_flow * (1.0 + 1e-9));
  }
}

TEST_P(Fuzz, PaperIdentitiesAndOrderings) {
  const Instance inst = make();
  const double alpha = 2.5;
  const RunResult c = run_c(inst, alpha);
  const RunResult nc = run_nc_uniform(inst, alpha);
  // Lemma 3/4 identities on every fuzzed shape.
  EXPECT_NEAR(nc.metrics.energy, c.metrics.energy, 1e-9 * std::max(1.0, c.metrics.energy));
  EXPECT_NEAR(nc.metrics.fractional_flow,
              bounds::nc_over_c_flow(alpha) * c.metrics.fractional_flow,
              1e-9 * std::max(1.0, nc.metrics.fractional_flow));
  // Algorithm C's energy = flow identity.
  EXPECT_NEAR(c.metrics.energy, c.metrics.fractional_flow,
              1e-9 * std::max(1.0, c.metrics.energy));
  // Lemma 8 on every fuzzed shape.
  EXPECT_LE(nc.metrics.integral_flow,
            bounds::nc_integral_over_fractional_flow(alpha) * nc.metrics.fractional_flow *
                (1.0 + 1e-9));
}

TEST_P(Fuzz, ReductionBoundsAcrossShapes) {
  const Instance inst = make();
  const double alpha = 2.0, eps = 0.7;
  const RunResult nc = run_nc_uniform(inst, alpha);
  const IntReductionRun red = reduce_frac_to_int(inst, nc.schedule, eps);
  EXPECT_LE(red.energy, std::pow(1.0 + eps, alpha) * nc.metrics.energy * (1.0 + 1e-9));
  EXPECT_LE(red.integral_flow, (1.0 + 1.0 / eps) * nc.metrics.fractional_flow * (1.0 + 1e-9));
  for (const Job& j : inst.jobs()) {
    EXPECT_LE(red.completions.at(j.id), nc.schedule.completion(j.id) + 1e-12);
  }
}

TEST_P(Fuzz, ParallelIdentitiesAcrossShapes) {
  const Instance inst = make();
  const double alpha = 2.0;
  const int k = 3;
  const ParallelRun c = run_c_par(inst, alpha, k);
  const ParallelRun nc = run_nc_par(inst, alpha, k);
  for (std::size_t i = 0; i < inst.size(); ++i) {
    ASSERT_EQ(c.assignment[i], nc.assignment[i]);
  }
  EXPECT_NEAR(nc.metrics.energy, c.metrics.energy, 1e-9 * std::max(1.0, c.metrics.energy));
}

INSTANTIATE_TEST_SUITE_P(Shapes, Fuzz,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Values(1, 2, 3, 4)));

// --- read_trace corpus fuzz -------------------------------------------------
//
// Hostile trace inputs must never crash the reader: strict mode raises a
// line-numbered TraceIoError, lenient mode skips-and-counts, and both leave
// the stream fully drained.

struct TraceCorpusCase {
  const char* name;
  const char* input;
  std::size_t lenient_jobs;     // jobs surviving a lenient read
  std::size_t lenient_skipped;  // bad lines counted by a lenient read
  bool strict_throws;
};

class TraceCorpus : public ::testing::TestWithParam<TraceCorpusCase> {};

TEST_P(TraceCorpus, StrictThrowsTypedLenientSkipsAndCounts) {
  const TraceCorpusCase& c = GetParam();
  {
    std::istringstream is(c.input);
    if (c.strict_throws) {
      try {
        (void)workload::read_trace(is);
        FAIL() << c.name << ": strict read accepted hostile input";
      } catch (const workload::TraceIoError& e) {
        EXPECT_EQ(e.diagnostic().code, robust::ErrorCode::kIoMalformed) << c.name;
        EXPECT_NE(e.diagnostic().context.find("line"), std::string::npos) << c.name;
      }
    } else {
      EXPECT_NO_THROW((void)workload::read_trace(is)) << c.name;
    }
  }
  // Lenient mode: bad data lines are skipped, never fatal (header faults
  // still throw — there is nothing to resynchronize on).
  std::istringstream is(c.input);
  if (std::string(c.input).rfind("id,", 0) != 0) {
    EXPECT_THROW((void)workload::read_trace(
                     is, {.mode = workload::TraceReadMode::kLenient}),
                 workload::TraceIoError)
        << c.name;
    return;
  }
  workload::TraceReadStats stats;
  const Instance got =
      workload::read_trace(is, {.mode = workload::TraceReadMode::kLenient}, &stats);
  EXPECT_EQ(got.jobs().size(), c.lenient_jobs) << c.name;
  EXPECT_EQ(stats.lines_skipped, c.lenient_skipped) << c.name;
}

std::string corpus_name(const ::testing::TestParamInfo<TraceCorpusCase>& info) {
  return info.param.name;
}

const TraceCorpusCase kTraceCorpus[] = {
    {"truncated_line", "id,release,volume,density\n0,0,1,1\n1,0.5,\n", 1, 1, true},
    {"wrong_header", "volume,id\n0,0,1,1\n", 0, 0, true},
    {"no_header", "0,0,1,1\n", 0, 0, true},
    {"empty_stream", "", 0, 0, true},
    {"header_only", "id,release,volume,density\n", 0, 0, false},
    {"too_many_fields", "id,release,volume,density\n0,0,1,1,42\n1,1,1,1\n", 1, 1, true},
    {"trailing_junk_number", "id,release,volume,density\n0,0,1abc,1\n", 0, 1, true},
    {"non_finite_value", "id,release,volume,density\n0,0,inf,1\n1,1,1,1\n", 1, 1, true},
    {"nan_density", "id,release,volume,density\n0,0,1,nan\n", 0, 1, true},
    {"blank_lines_between_rows", "id,release,volume,density\n0,0,1,1\n\n\n1,1,1,1\n", 2, 0,
     false},
    // A crash-truncated tail (no trailing '\n', as left by interrupted
    // ".tmp" writers).  The parsable variant is the regression: the torn
    // fragment "1,1,2,1" (say, cut from "1,1,2,1.5") reads as 4 valid
    // fields, and lenient mode used to accept it silently instead of
    // counting it as skipped.
    {"torn_tail_parsable", "id,release,volume,density\n0,0,1,1\n1,1,2,1", 1, 1, true},
    {"torn_tail_unparsable", "id,release,volume,density\n0,0,1,1\n1,0.5,2", 1, 1, true},
};

INSTANTIATE_TEST_SUITE_P(Corpus, TraceCorpus, ::testing::ValuesIn(kTraceCorpus), corpus_name);

TEST(TraceFuzz, NegativeVolumeFailsModelValidationStrictButLenientDrops) {
  // The row parses numerically, so strict mode hands it to Instance, whose
  // own validation rejects it (ModelError); lenient mode pre-drops it.
  const char* input = "id,release,volume,density\n0,0,-3,1\n1,1,1,1\n";
  std::istringstream strict(input);
  EXPECT_THROW((void)workload::read_trace(strict), ModelError);
  std::istringstream lenient(input);
  workload::TraceReadStats stats;
  const Instance got = workload::read_trace(
      lenient, {.mode = workload::TraceReadMode::kLenient}, &stats);
  EXPECT_EQ(got.jobs().size(), 1u);
  EXPECT_EQ(stats.lines_skipped, 1u);
}

TEST(TraceFuzz, EmbeddedNulByteIsRejectedNotCrash) {
  std::string input = "id,release,volume,density\n0,0,1,1\n1,0.5,2,1\n";
  input[input.find("2,1") + 0] = '\0';  // NUL inside the volume field
  std::istringstream strict(input);
  EXPECT_THROW((void)workload::read_trace(strict), workload::TraceIoError);
  std::istringstream lenient(input);
  workload::TraceReadStats stats;
  const Instance got = workload::read_trace(
      lenient, {.mode = workload::TraceReadMode::kLenient}, &stats);
  EXPECT_EQ(got.jobs().size(), 1u);
  EXPECT_EQ(stats.lines_skipped, 1u);
}

TEST(TraceFuzz, TenThousandFieldLineIsRejectedNotCrash) {
  std::string line = "0";
  for (int i = 0; i < 10000; ++i) line += ",1";
  const std::string input = "id,release,volume,density\n" + line + "\n0,0,1,1\n";
  std::istringstream strict(input);
  EXPECT_THROW((void)workload::read_trace(strict), workload::TraceIoError);
  std::istringstream lenient(input);
  workload::TraceReadStats stats;
  const Instance got = workload::read_trace(
      lenient, {.mode = workload::TraceReadMode::kLenient}, &stats);
  EXPECT_EQ(got.jobs().size(), 1u);
  EXPECT_EQ(stats.lines_skipped, 1u);
}

TEST(TraceFuzz, WriteReadRoundTripOnFuzzedInstances) {
  for (int seed = 1; seed <= 6; ++seed) {
    const Instance inst = workload::generate(
        {.n_jobs = 12, .arrival_rate = 1.5, .seed = static_cast<std::uint64_t>(seed)});
    std::ostringstream os;
    workload::write_trace(os, inst);
    std::istringstream is(os.str());
    const Instance got = workload::read_trace(is);
    ASSERT_EQ(got.jobs().size(), inst.jobs().size());
    for (std::size_t i = 0; i < inst.size(); ++i) {
      EXPECT_EQ(got.jobs()[i].release, inst.jobs()[i].release);    // 17-digit exact
      EXPECT_EQ(got.jobs()[i].volume, inst.jobs()[i].volume);
      EXPECT_EQ(got.jobs()[i].density, inst.jobs()[i].density);
    }
  }
}

}  // namespace
}  // namespace speedscale
