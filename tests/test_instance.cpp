// Unit tests for Instance (core/instance.h) and the trace I/O round trip.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/core/instance.h"
#include "src/workload/trace_io.h"

namespace speedscale {
namespace {

Instance small() {
  return Instance({
      Job{kNoJob, 0.0, 2.0, 1.0},
      Job{kNoJob, 1.0, 0.5, 4.0},
      Job{kNoJob, 0.5, 1.0, 2.0},
  });
}

TEST(Instance, AssignsContiguousIds) {
  const Instance inst = small();
  ASSERT_EQ(inst.size(), 3u);
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_EQ(inst.jobs()[i].id, static_cast<JobId>(i));
  }
}

TEST(Instance, Aggregates) {
  const Instance inst = small();
  EXPECT_DOUBLE_EQ(inst.total_volume(), 3.5);
  EXPECT_DOUBLE_EQ(inst.total_weight(), 2.0 + 2.0 + 2.0);
  EXPECT_DOUBLE_EQ(inst.max_release(), 1.0);
  EXPECT_DOUBLE_EQ(inst.min_density(), 1.0);
  EXPECT_DOUBLE_EQ(inst.max_density(), 4.0);
}

TEST(Instance, ValidationRejectsBadJobs) {
  EXPECT_THROW(Instance({Job{kNoJob, -1.0, 1.0, 1.0}}), ModelError);
  EXPECT_THROW(Instance({Job{kNoJob, 0.0, 0.0, 1.0}}), ModelError);
  EXPECT_THROW(Instance({Job{kNoJob, 0.0, 1.0, -2.0}}), ModelError);
  EXPECT_THROW(Instance({Job{kNoJob, 0.0, 1.0, 0.0}}), ModelError);
}

TEST(Instance, UniformDensityDetection) {
  EXPECT_FALSE(small().uniform_density());
  const Instance u({Job{kNoJob, 0.0, 1.0, 2.0}, Job{kNoJob, 1.0, 3.0, 2.0}});
  EXPECT_TRUE(u.uniform_density());
  EXPECT_TRUE(Instance().uniform_density());
}

TEST(Instance, FifoOrderSortsByReleaseThenId) {
  const Instance inst = small();
  const auto order = inst.fifo_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 1);
}

TEST(Instance, FifoOrderStableOnTies) {
  const Instance inst({Job{kNoJob, 1.0, 1.0, 1.0}, Job{kNoJob, 1.0, 2.0, 1.0},
                       Job{kNoJob, 0.0, 1.0, 1.0}});
  const auto order = inst.fifo_order();
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 0);
  EXPECT_EQ(order[2], 1);
}

TEST(Instance, RoundedDensitiesArePowersOfBeta) {
  const double beta = 4.5;
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 0.0, 1.0, 7.3},
                       Job{kNoJob, 0.0, 1.0, 0.02}, Job{kNoJob, 0.0, 1.0, 4.5}});
  const Instance rounded = inst.rounded_densities(beta);
  for (std::size_t i = 0; i < inst.size(); ++i) {
    const double d = rounded.jobs()[i].density;
    const double orig = inst.jobs()[i].density;
    // Rounded down: d <= orig < d * beta.
    EXPECT_LE(d, orig * (1.0 + 1e-9));
    EXPECT_GT(d * beta, orig * (1.0 - 1e-9));
    // Is an integer power of beta.
    const double k = std::log(d) / std::log(beta);
    EXPECT_NEAR(k, std::round(k), 1e-9);
  }
  // Exact powers map to themselves.
  EXPECT_NEAR(rounded.jobs()[3].density, 4.5, 1e-12);
}

TEST(Instance, RoundedDensitiesRejectsBadBeta) {
  EXPECT_THROW(small().rounded_densities(1.0), ModelError);
}

TEST(Instance, ReleasedBefore) {
  const Instance inst = small();
  std::vector<JobId> orig;
  const Instance sub = inst.released_before(1.0, &orig);
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(orig[0], 0);
  EXPECT_EQ(orig[1], 2);
  // Strict: jobs released exactly at t are excluded.
  EXPECT_EQ(inst.released_before(0.0).size(), 0u);
}

TEST(TraceIo, RoundTrip) {
  const Instance inst = small();
  std::stringstream ss;
  workload::write_trace(ss, inst);
  const Instance back = workload::read_trace(ss);
  ASSERT_EQ(back.size(), inst.size());
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.jobs()[i].release, inst.jobs()[i].release);
    EXPECT_DOUBLE_EQ(back.jobs()[i].volume, inst.jobs()[i].volume);
    EXPECT_DOUBLE_EQ(back.jobs()[i].density, inst.jobs()[i].density);
  }
}

TEST(TraceIo, RejectsMalformedInput) {
  std::stringstream empty;
  EXPECT_THROW(workload::read_trace(empty), ModelError);
  std::stringstream no_header("0,1,2,3\n");
  EXPECT_THROW(workload::read_trace(no_header), ModelError);
  std::stringstream bad_field("id,release,volume,density\n0,zero,1,1\n");
  EXPECT_THROW(workload::read_trace(bad_field), ModelError);
}

}  // namespace
}  // namespace speedscale
